#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace pmx {

/// Key=value configuration bag used by the bench harnesses and examples:
/// parses `key=value` tokens (command-line style) and simple config-file
/// text (one pair per line, '#' comments). Typed getters validate on
/// access; unknown_keys() supports strict CLI parsing.
class Config {
 public:
  Config() = default;

  /// Parse argv-style tokens of the form key=value. Tokens without '=' are
  /// rejected with std::runtime_error.
  static Config from_args(const std::vector<std::string>& args);
  /// Parse config-file text: one key=value per line, blank lines and
  /// '#'-comments ignored.
  static Config from_text(const std::string& text);
  /// Parse a main()'s argument vector. Accepts `key=value`, `--key=value`,
  /// `--key value` and bare `--flag` (stored as "true"). Anything else is
  /// rejected with std::runtime_error.
  static Config from_cli(int argc, char** argv);

  void set(const std::string& key, const std::string& value);
  [[nodiscard]] bool has(const std::string& key) const;

  /// Typed getters: return the value or `fallback`; throw
  /// std::runtime_error when the stored text does not parse as the type.
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const;
  [[nodiscard]] std::uint64_t get_uint(const std::string& key,
                                       std::uint64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  /// Accepts true/false/1/0/yes/no (case-sensitive).
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;
  /// Comma-separated list (sweep axes, e.g. policies=timeout:200,lru:12).
  /// Items are trimmed; empty items are dropped; an all-empty value yields
  /// an empty list, an unset key yields `fallback`.
  [[nodiscard]] std::vector<std::string> get_csv(
      const std::string& key, const std::vector<std::string>& fallback) const;

  /// Keys that were set but never read through a getter -- catches typos in
  /// benchmark invocations.
  [[nodiscard]] std::vector<std::string> unread_keys() const;

  /// Strict-CLI guard: call after every option has been read. If any key
  /// was set but never consumed by a getter (a typo'd or unknown option),
  /// prints them to stderr prefixed with `context` and exits with status 2.
  void fail_unread(const std::string& context) const;

  [[nodiscard]] std::size_t size() const { return values_.size(); }

 private:
  [[nodiscard]] std::optional<std::string> lookup(
      const std::string& key) const;

  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> read_;
};

}  // namespace pmx
