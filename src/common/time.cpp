#include "common/time.hpp"

namespace pmx {

std::string to_string(TimeNs t) { return std::to_string(t.ns()) + " ns"; }

}  // namespace pmx
