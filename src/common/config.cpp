#include "common/config.hpp"

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string_view>

namespace pmx {

namespace {

[[noreturn]] void bad_value(const std::string& key, const std::string& value,
                            const char* type) {
  throw std::runtime_error("config key '" + key + "': cannot parse '" +
                           value + "' as " + type);
}

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) {
    return "";
  }
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

}  // namespace

Config Config::from_args(const std::vector<std::string>& args) {
  Config config;
  for (const auto& arg : args) {
    const auto eq = arg.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::runtime_error("expected key=value, got '" + arg + "'");
    }
    config.set(arg.substr(0, eq), arg.substr(eq + 1));
  }
  return config;
}

Config Config::from_text(const std::string& text) {
  Config config;
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) {
      line.erase(hash);
    }
    line = trim(line);
    if (line.empty()) {
      continue;
    }
    const auto eq = line.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::runtime_error("config line " + std::to_string(lineno) +
                               ": expected key=value");
    }
    config.set(trim(line.substr(0, eq)), trim(line.substr(eq + 1)));
  }
  return config;
}

Config Config::from_cli(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.starts_with("--")) {
      arg.erase(0, 2);
    }
    if (arg.empty()) {
      throw std::runtime_error("empty command-line option");
    }
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      if (eq == 0) {
        throw std::runtime_error("expected key=value, got '" +
                                 std::string(argv[i]) + "'");
      }
      config.set(arg.substr(0, eq), arg.substr(eq + 1));
      continue;
    }
    // `--key value` when a value token follows, bare `--flag` otherwise.
    if (i + 1 < argc && !std::string_view(argv[i + 1]).starts_with("--")) {
      config.set(arg, argv[++i]);
    } else {
      config.set(arg, "true");
    }
  }
  return config;
}

void Config::fail_unread(const std::string& context) const {
  const auto unread = unread_keys();
  if (unread.empty()) {
    return;
  }
  for (const auto& key : unread) {
    std::cerr << context << ": unknown option '" << key << "'\n";
  }
  std::cerr << context << ": aborting (typo'd options would silently fall "
            << "back to defaults)\n";
  std::exit(2);
}

void Config::set(const std::string& key, const std::string& value) {
  values_[key] = value;
  read_[key] = false;
}

bool Config::has(const std::string& key) const {
  return values_.contains(key);
}

std::optional<std::string> Config::lookup(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    return std::nullopt;
  }
  read_[key] = true;
  return it->second;
}

std::string Config::get_string(const std::string& key,
                               const std::string& fallback) const {
  return lookup(key).value_or(fallback);
}

std::int64_t Config::get_int(const std::string& key,
                             std::int64_t fallback) const {
  const auto value = lookup(key);
  if (!value) {
    return fallback;
  }
  try {
    std::size_t pos = 0;
    const std::int64_t parsed = std::stoll(*value, &pos);
    if (pos != value->size()) {
      bad_value(key, *value, "int");
    }
    return parsed;
  } catch (const std::invalid_argument&) {
    bad_value(key, *value, "int");
  } catch (const std::out_of_range&) {
    bad_value(key, *value, "int");
  }
}

std::uint64_t Config::get_uint(const std::string& key,
                               std::uint64_t fallback) const {
  const auto value = lookup(key);
  if (!value) {
    return fallback;
  }
  try {
    if (!value->empty() && (*value)[0] == '-') {
      bad_value(key, *value, "uint");
    }
    std::size_t pos = 0;
    const std::uint64_t parsed = std::stoull(*value, &pos);
    if (pos != value->size()) {
      bad_value(key, *value, "uint");
    }
    return parsed;
  } catch (const std::invalid_argument&) {
    bad_value(key, *value, "uint");
  } catch (const std::out_of_range&) {
    bad_value(key, *value, "uint");
  }
}

double Config::get_double(const std::string& key, double fallback) const {
  const auto value = lookup(key);
  if (!value) {
    return fallback;
  }
  try {
    std::size_t pos = 0;
    const double parsed = std::stod(*value, &pos);
    if (pos != value->size()) {
      bad_value(key, *value, "double");
    }
    return parsed;
  } catch (const std::invalid_argument&) {
    bad_value(key, *value, "double");
  } catch (const std::out_of_range&) {
    bad_value(key, *value, "double");
  }
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  const auto value = lookup(key);
  if (!value) {
    return fallback;
  }
  if (*value == "true" || *value == "1" || *value == "yes") {
    return true;
  }
  if (*value == "false" || *value == "0" || *value == "no") {
    return false;
  }
  bad_value(key, *value, "bool");
}

std::vector<std::string> Config::get_csv(
    const std::string& key, const std::vector<std::string>& fallback) const {
  const auto value = lookup(key);
  if (!value) {
    return fallback;
  }
  std::vector<std::string> items;
  std::string item;
  std::istringstream in(*value);
  while (std::getline(in, item, ',')) {
    item = trim(item);
    if (!item.empty()) {
      items.push_back(item);
    }
  }
  return items;
}

std::vector<std::string> Config::unread_keys() const {
  std::vector<std::string> keys;
  for (const auto& [key, was_read] : read_) {
    if (!was_read) {
      keys.push_back(key);
    }
  }
  return keys;
}

}  // namespace pmx
