#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "common/time.hpp"

namespace pmx {

/// Online accumulator for a stream of samples (Welford's algorithm for the
/// variance). Used for message latencies, queue depths, slot occupancy.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

  void merge(const RunningStats& other);

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-width-bucket histogram with overflow bucket; supports approximate
/// percentile queries. Bucket width chosen at construction.
class Histogram {
 public:
  Histogram(double bucket_width, std::size_t num_buckets);

  void add(double x);
  [[nodiscard]] std::uint64_t count() const { return total_; }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    return buckets_[i];
  }
  [[nodiscard]] std::size_t num_buckets() const { return buckets_.size(); }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  /// Approximate p-quantile (0 < q <= 1) via bucket interpolation.
  [[nodiscard]] double quantile(double q) const;

 private:
  double width_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

/// Named counter set attached to simulation components; dumped at the end of
/// a run. Lookup cost is irrelevant (counters are bumped via cached refs).
class CounterSet {
 public:
  std::uint64_t& counter(const std::string& name) { return counters_[name]; }
  [[nodiscard]] std::uint64_t value(const std::string& name) const;
  [[nodiscard]] const std::map<std::string, std::uint64_t>& all() const {
    return counters_;
  }

 private:
  std::map<std::string, std::uint64_t> counters_;
};

}  // namespace pmx
