#include "common/bitvector.hpp"

#include <algorithm>
#include <bit>

namespace pmx {

BitVector::BitVector(std::size_t size, bool value)
    : size_(size), words_((size + 63) / 64, value ? ~std::uint64_t{0} : 0) {
  trim_tail();
}

void BitVector::trim_tail() {
  if (size_ % 64 != 0 && !words_.empty()) {
    const std::uint64_t mask = (std::uint64_t{1} << (size_ % 64)) - 1;
    words_.back() &= mask;
  }
}

void BitVector::reset() { std::ranges::fill(words_, 0); }

void BitVector::fill() {
  std::ranges::fill(words_, ~std::uint64_t{0});
  trim_tail();
}

std::size_t BitVector::count() const {
  std::size_t total = 0;
  for (const std::uint64_t w : words_) {
    total += static_cast<std::size_t>(std::popcount(w));
  }
  return total;
}

bool BitVector::none() const {
  return std::ranges::all_of(words_, [](std::uint64_t w) { return w == 0; });
}

std::size_t BitVector::find_first() const { return find_next(0); }

std::size_t BitVector::find_next(std::size_t from) const {
  if (from >= size_) {
    return size_;
  }
  std::size_t wi = from >> 6;
  std::uint64_t w = words_[wi] & (~std::uint64_t{0} << (from & 63));
  while (true) {
    if (w != 0) {
      const std::size_t bit =
          (wi << 6) + static_cast<std::size_t>(std::countr_zero(w));
      return bit < size_ ? bit : size_;
    }
    if (++wi >= words_.size()) {
      return size_;
    }
    w = words_[wi];
  }
}

std::size_t BitVector::find_next_wrap(std::size_t from) const {
  if (size_ == 0) {
    return 0;
  }
  from %= size_;
  const std::size_t hit = find_next(from);
  if (hit < size_) {
    return hit;
  }
  const std::size_t wrapped = find_first();
  return wrapped;  // size() when all zero
}

std::size_t BitVector::find_next_and_not(const BitVector& mask,
                                         std::size_t from) const {
  PMX_CHECK(size_ == mask.size_, "BitVector size mismatch in masked scan");
  if (from >= size_) {
    return size_;
  }
  std::size_t wi = from >> 6;
  std::uint64_t w =
      words_[wi] & ~mask.words_[wi] & (~std::uint64_t{0} << (from & 63));
  while (true) {
    if (w != 0) {
      const std::size_t bit =
          (wi << 6) + static_cast<std::size_t>(std::countr_zero(w));
      return bit < size_ ? bit : size_;
    }
    if (++wi >= words_.size()) {
      return size_;
    }
    w = words_[wi] & ~mask.words_[wi];
  }
}

bool BitVector::intersects(const BitVector& rhs) const {
  PMX_CHECK(size_ == rhs.size_, "BitVector size mismatch in intersects");
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & rhs.words_[i]) != 0) {
      return true;
    }
  }
  return false;
}

BitVector& BitVector::and_not(const BitVector& rhs) {
  PMX_CHECK(size_ == rhs.size_, "BitVector size mismatch in and_not");
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] &= ~rhs.words_[i];
  }
  return *this;
}

BitVector& BitVector::operator|=(const BitVector& rhs) {
  PMX_CHECK(size_ == rhs.size_, "BitVector size mismatch in |=");
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] |= rhs.words_[i];
  }
  return *this;
}

BitVector& BitVector::operator&=(const BitVector& rhs) {
  PMX_CHECK(size_ == rhs.size_, "BitVector size mismatch in &=");
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] &= rhs.words_[i];
  }
  return *this;
}

BitVector& BitVector::operator^=(const BitVector& rhs) {
  PMX_CHECK(size_ == rhs.size_, "BitVector size mismatch in ^=");
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] ^= rhs.words_[i];
  }
  return *this;
}

std::string BitVector::to_string() const {
  std::string s(size_, '0');
  for (std::size_t i = 0; i < size_; ++i) {
    if (get(i)) {
      s[i] = '1';
    }
  }
  return s;
}

}  // namespace pmx
