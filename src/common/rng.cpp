#include "common/rng.hpp"

#include <bit>
#include <cmath>
#include <numeric>

namespace pmx {

namespace {

// splitmix64: seeds the xoshiro state from a single 64-bit value.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) {
    s = splitmix64(x);
  }
}

std::uint64_t Rng::next() {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  PMX_CHECK(bound > 0, "Rng::below requires bound > 0");
  // Lemire's multiply-shift with rejection for exact uniformity.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  PMX_CHECK(lo <= hi, "Rng::range requires lo <= hi");
  const auto span =
      static_cast<std::uint64_t>(hi - lo) + 1;  // may wrap only at full range
  if (span == 0) {
    return static_cast<std::int64_t>(next());
  }
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) { return uniform() < p; }

double Rng::exponential(double mean) {
  PMX_CHECK(mean > 0.0, "Rng::exponential requires mean > 0");
  double u = uniform();
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -mean * std::log(1.0 - u);
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  std::iota(p.begin(), p.end(), std::size_t{0});
  shuffle(std::span<std::size_t>{p});
  return p;
}

Rng Rng::split() { return Rng{next() ^ 0xA0761D6478BD642FULL}; }

}  // namespace pmx
