#include "common/bitmatrix.hpp"

namespace pmx {

BitMatrix::BitMatrix(std::size_t n) : n_(n), rows_(n, BitVector(n)) {}

void BitMatrix::reset() {
  for (auto& r : rows_) {
    r.reset();
  }
}

void BitMatrix::set_row(std::size_t u, const BitVector& r) {
  PMX_CHECK(u < n_ && r.size() == n_, "BitMatrix::set_row shape mismatch");
  rows_[u] = r;
}

void BitMatrix::row_xor(std::size_t u, const BitVector& r) {
  PMX_CHECK(u < n_ && r.size() == n_, "BitMatrix::row_xor shape mismatch");
  rows_[u] ^= r;
}

std::size_t BitMatrix::count() const {
  std::size_t total = 0;
  for (const auto& r : rows_) {
    total += r.count();
  }
  return total;
}

bool BitMatrix::none() const {
  for (const auto& r : rows_) {
    if (r.any()) {
      return false;
    }
  }
  return true;
}

bool BitMatrix::col_any(std::size_t v) const {
  for (const auto& r : rows_) {
    if (r.get(v)) {
      return true;
    }
  }
  return false;
}

BitVector BitMatrix::row_or() const {
  BitVector ai(n_);
  for (std::size_t u = 0; u < n_; ++u) {
    ai.set(u, rows_[u].any());
  }
  return ai;
}

BitVector BitMatrix::col_or() const {
  BitVector ao(n_);
  for (const auto& r : rows_) {
    ao |= r;
  }
  return ao;
}

bool BitMatrix::is_partial_permutation() const {
  BitVector seen_cols(n_);
  for (const auto& r : rows_) {
    if (r.count() > 1) {
      return false;
    }
    const std::size_t v = r.find_first();
    if (v < n_) {
      if (seen_cols.get(v)) {
        return false;
      }
      seen_cols.set(v);
    }
  }
  return true;
}

BitMatrix& BitMatrix::operator|=(const BitMatrix& rhs) {
  PMX_CHECK(n_ == rhs.n_, "BitMatrix size mismatch in |=");
  for (std::size_t u = 0; u < n_; ++u) {
    rows_[u] |= rhs.rows_[u];
  }
  return *this;
}

BitMatrix& BitMatrix::operator&=(const BitMatrix& rhs) {
  PMX_CHECK(n_ == rhs.n_, "BitMatrix size mismatch in &=");
  for (std::size_t u = 0; u < n_; ++u) {
    rows_[u] &= rhs.rows_[u];
  }
  return *this;
}

std::string BitMatrix::to_string() const {
  std::string s;
  s.reserve(n_ * (n_ + 1));
  for (const auto& r : rows_) {
    s += r.to_string();
    s += '\n';
  }
  return s;
}

}  // namespace pmx
