#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace pmx {

/// Aligned-column text table used by the benchmark harnesses to print the
/// rows/series of the paper's tables and figures, plus a CSV emitter so the
/// same data can be post-processed.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles with fixed precision.
  static std::string fmt(double v, int precision = 2);
  static std::string fmt(std::int64_t v);
  static std::string fmt(std::uint64_t v);

  void print(std::ostream& os) const;
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pmx
