#pragma once

#include <cstddef>
#include <cstdint>

#include "common/time.hpp"

namespace pmx {

using NodeId = std::size_t;
using MessageId = std::uint64_t;

/// One end-to-end transfer request, the unit the traffic generators emit.
struct Message {
  MessageId id = 0;
  NodeId src = 0;
  NodeId dst = 0;
  std::uint64_t bytes = 0;
  TimeNs submit_time{};  ///< when the NIC accepted it
  std::size_t phase = 0;  ///< program phase (for compiled communication)
};

/// A connection endpoint pair (input port -> output port).
struct Conn {
  NodeId src = 0;
  NodeId dst = 0;
  bool operator==(const Conn&) const = default;
};

/// Completed-transfer record kept by every network model for metrics.
struct MessageRecord {
  Message msg;
  TimeNs send_done{};  ///< last byte left the source NIC
  TimeNs delivered{};  ///< last byte arrived at the destination NIC

  [[nodiscard]] TimeNs latency() const { return delivered - msg.submit_time; }
};

}  // namespace pmx
