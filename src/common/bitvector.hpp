#pragma once

#include <bit>
#include <cstddef>
#include <span>
#include <cstdint>
#include <string>
#include <vector>

#include "common/assert.hpp"

namespace pmx {

/// Dynamically sized bit vector backed by 64-bit words.
///
/// Used for the scheduler's availability vectors (AO, AI), per-NIC request
/// and grant signals, and the rows of configuration matrices. The hardware
/// these model is plain wires/registers, so the operations here are the
/// bit-parallel equivalents (OR, AND, population count, reductions).
class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(std::size_t size, bool value = false);

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  [[nodiscard]] bool get(std::size_t i) const {
    PMX_CHECK(i < size_, "BitVector index out of range");
    return (words_[i >> 6] >> (i & 63)) & 1U;
  }
  void set(std::size_t i, bool value = true) {
    PMX_CHECK(i < size_, "BitVector index out of range");
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    if (value) {
      words_[i >> 6] |= mask;
    } else {
      words_[i >> 6] &= ~mask;
    }
  }
  void clear(std::size_t i) { set(i, false); }
  /// In-place toggle of bit i -- one XOR instead of the read-modify-write a
  /// get()+set() pair would cost (the SL array applies toggle matrices on
  /// every scheduling pass, so this is on the hot path).
  void flip(std::size_t i) {
    PMX_CHECK(i < size_, "BitVector index out of range");
    words_[i >> 6] ^= std::uint64_t{1} << (i & 63);
  }
  void reset();  ///< Clear all bits.
  void fill();   ///< Set all bits.

  /// Number of set bits.
  [[nodiscard]] std::size_t count() const;
  /// True if no bit is set.
  [[nodiscard]] bool none() const;
  /// True if at least one bit is set (the OR-reduction a hardware tree does).
  [[nodiscard]] bool any() const { return !none(); }

  /// Index of the first set bit, or size() when none is set.
  [[nodiscard]] std::size_t find_first() const;
  /// Index of the first set bit at position >= from, or size().
  [[nodiscard]] std::size_t find_next(std::size_t from) const;
  /// Index of the first set bit at or after `from`, wrapping around;
  /// size() when the vector is all zero. Used for round-robin scans.
  [[nodiscard]] std::size_t find_next_wrap(std::size_t from) const;

  /// Masked scan: index of the first bit at position >= `from` that is set
  /// here but clear in `mask`, or size(). Equivalent to
  /// (*this & ~mask).find_next(from) without materializing the temporary --
  /// this is the word-parallel SL array's "first requesting column whose
  /// output port is free" lookup.
  [[nodiscard]] std::size_t find_next_and_not(const BitVector& mask,
                                              std::size_t from) const;

  /// True when (*this & rhs) has at least one set bit, computed word-wise
  /// with early exit.
  [[nodiscard]] bool intersects(const BitVector& rhs) const;

  /// In-place AND with the complement of rhs (this &= ~rhs).
  BitVector& and_not(const BitVector& rhs);

  /// Invoke fn(index) for every set bit in increasing index order, scanning
  /// whole zero words at a time.
  template <typename Fn>
  void for_each_set(Fn&& fn) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      for (std::uint64_t bits = words_[wi]; bits != 0; bits &= bits - 1) {
        fn((wi << 6) + static_cast<std::size_t>(std::countr_zero(bits)));
      }
    }
  }

  BitVector& operator|=(const BitVector& rhs);
  BitVector& operator&=(const BitVector& rhs);
  BitVector& operator^=(const BitVector& rhs);
  friend BitVector operator|(BitVector a, const BitVector& b) { return a |= b; }
  friend BitVector operator&(BitVector a, const BitVector& b) { return a &= b; }
  friend BitVector operator^(BitVector a, const BitVector& b) { return a ^= b; }

  bool operator==(const BitVector& rhs) const = default;

  /// "0"/"1" characters, index 0 first.
  [[nodiscard]] std::string to_string() const;

  /// Raw 64-bit words (low bit = index 0); tail bits beyond size() are zero.
  [[nodiscard]] std::span<const std::uint64_t> words() const {
    return words_;
  }

 private:
  void trim_tail();

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace pmx
