#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/bitvector.hpp"

namespace pmx {

/// Square Boolean matrix, the paper's representation of requests (R),
/// configurations (B^(s)) and the established-connection aggregate (B*).
///
/// B[u][v] == 1 means "input port u drives output port v" (configuration) or
/// "NIC u requests a connection to NIC v" (request matrix). Rows are stored
/// as BitVectors so the scheduler's row/column OR-reductions (the AI/AO
/// availability vectors of Section 4) are single bit-parallel passes.
class BitMatrix {
 public:
  BitMatrix() = default;
  explicit BitMatrix(std::size_t n);

  [[nodiscard]] std::size_t size() const { return n_; }

  [[nodiscard]] bool get(std::size_t u, std::size_t v) const {
    return rows_[u].get(v);
  }
  void set(std::size_t u, std::size_t v, bool value = true) {
    rows_[u].set(v, value);
  }
  void toggle(std::size_t u, std::size_t v) { rows_[u].flip(v); }
  void reset();

  [[nodiscard]] const BitVector& row(std::size_t u) const { return rows_[u]; }
  void set_row(std::size_t u, const BitVector& r);
  /// XOR `r` into row u word-wise -- applies a whole row of an SL toggle
  /// matrix in one bit-parallel pass.
  void row_xor(std::size_t u, const BitVector& r);

  /// Number of set entries.
  [[nodiscard]] std::size_t count() const;
  [[nodiscard]] bool none() const;
  [[nodiscard]] bool any() const { return !none(); }

  /// OR-reduction of row u — AI_u in the paper: 1 iff input u is in use.
  [[nodiscard]] bool row_any(std::size_t u) const { return rows_[u].any(); }
  /// OR-reduction of column v — AO_v in the paper: 1 iff output v is in use.
  [[nodiscard]] bool col_any(std::size_t v) const;

  /// Vector of row reductions: AI_u for all u.
  [[nodiscard]] BitVector row_or() const;
  /// Vector of column reductions: AO_v for all v.
  [[nodiscard]] BitVector col_or() const;

  /// True when every row and every column has at most one set bit —
  /// the crossbar constraint on a configuration matrix (Section 4).
  [[nodiscard]] bool is_partial_permutation() const;

  /// Bit-wise OR (the paper's B* = B^(0) + ... + B^(K-1)).
  BitMatrix& operator|=(const BitMatrix& rhs);
  friend BitMatrix operator|(BitMatrix a, const BitMatrix& b) { return a |= b; }
  BitMatrix& operator&=(const BitMatrix& rhs);
  friend BitMatrix operator&(BitMatrix a, const BitMatrix& b) { return a &= b; }

  bool operator==(const BitMatrix& rhs) const = default;

  /// Multi-line dump, one row per line, for debugging and golden tests.
  [[nodiscard]] std::string to_string() const;

 private:
  std::size_t n_ = 0;
  std::vector<BitVector> rows_;
};

}  // namespace pmx
