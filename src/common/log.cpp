#include "common/log.hpp"

#include <iostream>

namespace pmx {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_sink(std::ostream* sink) { sink_ = sink; }

void Logger::write(LogLevel level, const std::string& message) {
  if (!enabled(level)) {
    return;
  }
  std::ostream& out = sink_ != nullptr ? *sink_ : std::cerr;
  out << "[" << to_string(level) << "] " << message << "\n";
  ++written_;
}

std::string to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "?";
}

}  // namespace pmx
