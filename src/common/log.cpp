#include "common/log.hpp"

#include <iostream>
#include <mutex>

namespace pmx {

namespace {
// Diagnostics may now fire from sweep worker threads; serialize the sink so
// interleaved messages stay whole lines.
std::mutex g_write_mutex;
}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_sink(std::ostream* sink) {
  const std::lock_guard<std::mutex> lock(g_write_mutex);
  sink_ = sink;
}

void Logger::write(LogLevel level, const std::string& message) {
  if (!enabled(level)) {
    return;
  }
  const std::lock_guard<std::mutex> lock(g_write_mutex);
  std::ostream& out = sink_ != nullptr ? *sink_ : std::cerr;
  out << "[" << to_string(level) << "] " << message << "\n";
  written_.fetch_add(1, std::memory_order_relaxed);
}

std::string to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "?";
}

}  // namespace pmx
