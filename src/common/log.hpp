#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <sstream>
#include <string>

namespace pmx {

enum class LogLevel : std::uint8_t { kDebug = 0, kInfo, kWarn, kError, kOff };

/// Minimal leveled logger for the simulation tools.
///
/// Simulation output must stay machine-parseable (the bench harnesses print
/// tables), so diagnostics go to a single global sink (stderr by default)
/// behind a level gate that defaults to warnings-and-up. Each simulation is
/// single-threaded, but the sweep runner executes independent simulations on
/// worker threads, so write() serializes emission and the level gate and
/// message counter are atomics (TSan tier, DESIGN.md §9). The sink pointer
/// is mutex-guarded alongside emission; redirecting it mid-sweep is safe,
/// though tests normally do so before workers start.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  [[nodiscard]] LogLevel level() const {
    return level_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled(LogLevel level) const {
    return level >= level_.load(std::memory_order_relaxed);
  }

  /// Redirect output (tests capture it); pass nullptr to restore stderr.
  void set_sink(std::ostream* sink);

  void write(LogLevel level, const std::string& message);

  [[nodiscard]] std::uint64_t messages_written() const {
    return written_.load(std::memory_order_relaxed);
  }

 private:
  Logger() = default;
  std::atomic<LogLevel> level_{LogLevel::kWarn};
  std::ostream* sink_ = nullptr;  ///< guarded by the emission mutex
  std::atomic<std::uint64_t> written_{0};
};

[[nodiscard]] std::string to_string(LogLevel level);

namespace detail {
/// Builds the message only when the level is enabled.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::instance().write(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace pmx

#define PMX_LOG(level)                                   \
  if (!::pmx::Logger::instance().enabled(level)) {       \
  } else                                                 \
    ::pmx::detail::LogLine(level)

#define PMX_LOG_DEBUG PMX_LOG(::pmx::LogLevel::kDebug)
#define PMX_LOG_INFO PMX_LOG(::pmx::LogLevel::kInfo)
#define PMX_LOG_WARN PMX_LOG(::pmx::LogLevel::kWarn)
#define PMX_LOG_ERROR PMX_LOG(::pmx::LogLevel::kError)
