#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <string>

namespace pmx {

/// Simulation time in nanoseconds.
///
/// All timing constants in the paper (NIC cycle, serdes, wire propagation,
/// scheduler pass, TDM slot) are integral nanosecond quantities, so the whole
/// simulation runs on an integral ns clock. A strong type keeps raw integers
/// (byte counts, node ids) from silently mixing with times.
class TimeNs {
 public:
  constexpr TimeNs() = default;
  constexpr explicit TimeNs(std::int64_t ns) : ns_(ns) {}

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double us() const {
    return static_cast<double>(ns_) / 1e3;
  }

  /// A time far beyond any simulation horizon; used as "never".
  [[nodiscard]] static constexpr TimeNs never() {
    return TimeNs{std::numeric_limits<std::int64_t>::max() / 4};
  }
  [[nodiscard]] static constexpr TimeNs zero() { return TimeNs{0}; }

  constexpr auto operator<=>(const TimeNs&) const = default;

  constexpr TimeNs& operator+=(TimeNs rhs) {
    ns_ += rhs.ns_;
    return *this;
  }
  constexpr TimeNs& operator-=(TimeNs rhs) {
    ns_ -= rhs.ns_;
    return *this;
  }

  friend constexpr TimeNs operator+(TimeNs a, TimeNs b) {
    return TimeNs{a.ns_ + b.ns_};
  }
  friend constexpr TimeNs operator-(TimeNs a, TimeNs b) {
    return TimeNs{a.ns_ - b.ns_};
  }
  friend constexpr TimeNs operator*(TimeNs a, std::int64_t k) {
    return TimeNs{a.ns_ * k};
  }
  friend constexpr TimeNs operator*(std::int64_t k, TimeNs a) { return a * k; }
  /// Truncating division (how many whole `b` intervals fit in `a`).
  friend constexpr std::int64_t operator/(TimeNs a, TimeNs b) {
    return a.ns_ / b.ns_;
  }
  friend constexpr TimeNs operator%(TimeNs a, TimeNs b) {
    return TimeNs{a.ns_ % b.ns_};
  }

 private:
  std::int64_t ns_ = 0;
};

namespace literals {
constexpr TimeNs operator""_ns(unsigned long long v) {
  return TimeNs{static_cast<std::int64_t>(v)};
}
constexpr TimeNs operator""_us(unsigned long long v) {
  return TimeNs{static_cast<std::int64_t>(v) * 1000};
}
}  // namespace literals

[[nodiscard]] std::string to_string(TimeNs t);

}  // namespace pmx
