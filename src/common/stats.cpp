#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace pmx {

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) {
    return;
  }
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double bucket_width, std::size_t num_buckets)
    : width_(bucket_width), buckets_(num_buckets, 0) {
  PMX_CHECK(bucket_width > 0.0, "Histogram bucket width must be positive");
  PMX_CHECK(num_buckets > 0, "Histogram needs at least one bucket");
}

void Histogram::add(double x) {
  ++total_;
  if (x < 0.0) {
    x = 0.0;
  }
  const auto idx = static_cast<std::size_t>(x / width_);
  if (idx < buckets_.size()) {
    ++buckets_[idx];
  } else {
    ++overflow_;
  }
}

double Histogram::quantile(double q) const {
  PMX_CHECK(q > 0.0 && q <= 1.0, "quantile requires q in (0, 1]");
  if (total_ == 0) {
    return 0.0;
  }
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total_)));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cum += buckets_[i];
    if (cum >= target) {
      // Linear interpolation inside the bucket.
      const std::uint64_t before = cum - buckets_[i];
      const double frac =
          buckets_[i] > 0
              ? static_cast<double>(target - before) /
                    static_cast<double>(buckets_[i])
              : 0.0;
      return (static_cast<double>(i) + frac) * width_;
    }
  }
  return static_cast<double>(buckets_.size()) * width_;  // in overflow
}

std::uint64_t CounterSet::value(const std::string& name) const {
  const auto it = counters_.find(name);
  return it != counters_.end() ? it->second : 0;
}

}  // namespace pmx
