#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/assert.hpp"

namespace pmx {

/// Deterministic pseudo-random generator (xoshiro256**).
///
/// Workload generation must be reproducible across runs and platforms, so we
/// carry our own generator instead of std::mt19937 + std:: distributions
/// (whose outputs are implementation-defined for some distributions).
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds are always explicit: every engine must trace back to a Config /
  /// params seed so runs are reproducible from their recorded inputs alone.
  /// (A silent default seed would let unseeded engines hide in new code.)
  explicit Rng(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next(); }
  std::uint64_t next();

  /// Uniform integer in [0, bound), bias-free (Lemire rejection).
  std::uint64_t below(std::uint64_t bound);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);
  /// Uniform double in [0, 1).
  double uniform();
  /// Bernoulli trial with success probability p.
  bool chance(double p);
  /// Exponentially distributed double with the given mean.
  double exponential(double mean);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Random permutation of 0..n-1.
  std::vector<std::size_t> permutation(std::size_t n);

  /// Derive an independent stream (for per-node generators).
  [[nodiscard]] Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace pmx
