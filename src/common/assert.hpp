#pragma once

#include <cstdio>
#include <cstdlib>

namespace pmx::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "pmx assertion failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg);
  std::abort();
}

}  // namespace pmx::detail

/// Always-on invariant check. Simulation correctness depends on these
/// invariants (e.g. a configuration being a partial permutation); they are
/// cheap relative to event processing, so they stay enabled in release builds.
#define PMX_CHECK(expr, msg)                                            \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::pmx::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));     \
    }                                                                   \
  } while (false)
