#include "common/table.hpp"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/assert.hpp"

namespace pmx {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  PMX_CHECK(!headers_.empty(), "Table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  PMX_CHECK(cells.size() == headers_.size(),
            "Table row width does not match header");
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::fmt(std::int64_t v) { return std::to_string(v); }
std::string Table::fmt(std::uint64_t v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::setw(static_cast<int>(widths[c])) << cells[c];
      os << (c + 1 < cells.size() ? "  " : "\n");
    }
  };
  emit(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c], '-') << (c + 1 < headers_.size() ? "  " : "\n");
  }
  for (const auto& row : rows_) {
    emit(row);
  }
}

void Table::print_csv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c] << (c + 1 < cells.size() ? "," : "\n");
    }
  };
  emit(headers_);
  for (const auto& row : rows_) {
    emit(row);
  }
}

}  // namespace pmx
