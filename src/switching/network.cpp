#include "switching/network.hpp"

#include "common/assert.hpp"

namespace pmx {

Network::Network(Simulator& sim, const SystemParams& params)
    : sim_(sim), params_(params), link_(params.link) {
  params_.validate();
}

Message Network::submit(NodeId src, NodeId dst, std::uint64_t bytes,
                        std::size_t phase) {
  PMX_CHECK(src < params_.num_nodes && dst < params_.num_nodes,
            "node id out of range");
  PMX_CHECK(src != dst, "self-send is not routed through the fabric");
  PMX_CHECK(bytes > 0, "empty message");
  Message msg;
  msg.id = next_id_++;
  msg.src = src;
  msg.dst = dst;
  msg.bytes = bytes;
  msg.submit_time = sim_.now();
  msg.phase = phase;
  counters_.counter("submitted") += 1;
  do_submit(msg);
  return msg;
}

void Network::notify_send_done(const Message& msg, TimeNs when) {
  PMX_CHECK(when >= sim_.now(), "send-done in the past");
  if (send_done_) {
    sim_.schedule_at(when, [this, msg] { send_done_(msg); });
  }
}

void Network::notify_delivered(const Message& msg, TimeNs send_done,
                               TimeNs when) {
  PMX_CHECK(when >= sim_.now(), "delivery in the past");
  sim_.schedule_at(when, [this, msg, send_done] {
    MessageRecord rec;
    rec.msg = msg;
    rec.send_done = send_done;
    rec.delivered = sim_.now();
    records_.push_back(rec);
    delivered_bytes_ += msg.bytes;
    if (rec.delivered > last_delivery_) {
      last_delivery_ = rec.delivered;
    }
    counters_.counter("delivered") += 1;
    if (delivered_) {
      delivered_(rec);
    }
  });
}

}  // namespace pmx
