#include "switching/network.hpp"

#include "common/assert.hpp"

namespace pmx {

Network::Network(Simulator& sim, const SystemParams& params)
    : sim_(sim), params_(params), link_(params.link) {
  params_.validate();
  if (params_.fault.enabled()) {
    fault_ = std::make_unique<FaultModel>(sim_, params_.fault,
                                          params_.num_nodes);
    // The base class observes link edges first (fault accounting and
    // recovery tracking); paradigm-specific reactions subscribe after.
    fault_->subscribe(
        [this](NodeId node, bool up) { on_link_event(node, up); });
  }
  if (params_.ctrl.enabled()) {
    ctrl_ = std::make_unique<ControlFaultModel>(sim_, params_.ctrl,
                                                params_.slot_length);
  }
  if (params_.audit.enabled) {
    auditor_ = std::make_unique<SlotAuditor>(sim_, params_.audit,
                                             params_.slot_length);
    // The checks run at audit-tick time (as simulation events), long after
    // the derived class finished constructing, so the virtual dispatch
    // below resolves to the paradigm's overrides.
    auditor_->add_check("conservation", [this](std::vector<std::string>& out) {
      audit_conservation(out);
    });
    auditor_->add_check("control", [this](std::vector<std::string>& out) {
      audit_control(out);
    });
    auditor_->set_resync([this] { resync_control(); });
    auditor_->start();
  }
}

void Network::audit_conservation(std::vector<std::string>& out) const {
  const std::size_t delivered = records_.size();
  const std::size_t submitted = submitted_count();
  if (fault_ == nullptr) {
    // Without the reliability layer in-flight messages are not tracked;
    // delivered + shed <= submitted is all that can be asserted.
    if (delivered + shed_ > submitted) {
      out.push_back("delivered " + std::to_string(delivered) + " + shed " +
                    std::to_string(shed_) + " messages but only " +
                    std::to_string(submitted) + " were submitted");
    }
    return;
  }
  if (delivered + dropped_ + shed_ + outstanding_ != submitted) {
    out.push_back("message conservation broken: delivered " +
                  std::to_string(delivered) + " + dropped " +
                  std::to_string(dropped_) + " + shed " +
                  std::to_string(shed_) + " + in-flight " +
                  std::to_string(outstanding_) + " != submitted " +
                  std::to_string(submitted));
  }
}

Message Network::make_message(NodeId src, NodeId dst, std::uint64_t bytes,
                              std::size_t phase) {
  Message msg;
  msg.id = next_id_++;
  msg.src = src;
  msg.dst = dst;
  msg.bytes = bytes;
  msg.submit_time = sim_.now();
  msg.phase = phase;
  counters_.counter("submitted") += 1;
  submitted_bytes_ += bytes;
  if (submitted_count() == 1) {
    first_submit_ = msg.submit_time;
  }
  last_submit_ = msg.submit_time;
  return msg;
}

void Network::settle_shed(const Message& msg, bool was_queued,
                          const char* tag) {
  counters_.counter("shed_messages") += 1;
  counters_.counter(tag) += 1;
  ++shed_;
  shed_bytes_ += msg.bytes;
  if (fault_ && was_queued) {
    // The victim had ARQ state from its own admission; it leaves the
    // reliability machine without ever touching the wire.
    arq_.erase(msg.id);
    --outstanding_;
  }
  on_message_shed(msg);
  if (fault_ && was_queued) {
    on_message_settled(msg);
  }
  if (shed_fn_) {
    // Synchronous on purpose: the driver must observe the resolution
    // before deciding whether a pending barrier can release.
    shed_fn_(msg);
  }
}

Network::SubmitOutcome Network::try_submit(NodeId src, NodeId dst,
                                           std::uint64_t bytes,
                                           std::size_t phase) {
  PMX_CHECK(src < params_.num_nodes && dst < params_.num_nodes,
            "node id out of range");
  PMX_CHECK(src != dst, "self-send is not routed through the fabric");
  PMX_CHECK(bytes > 0, "empty message");
  const AdmissionParams& adm = params_.admission;
  if (adm.enabled()) {
    // A message larger than the whole byte budget can never be admitted;
    // evicting the entire queue for it would be pointless, so it is shed
    // outright under every policy.
    const bool oversize = adm.capacity_bytes > 0 && bytes > adm.capacity_bytes;
    const auto overflowing = [&] {
      if (adm.capacity_bytes > 0 &&
          source_queue_bytes(src) + bytes > adm.capacity_bytes) {
        return true;
      }
      return adm.capacity_msgs > 0 &&
             source_queue_msgs(src) + 1 > adm.capacity_msgs;
    };
    if (oversize) {
      const Message msg = make_message(src, dst, bytes, phase);
      settle_shed(msg, false, "shed_oversize");
      return {SubmitStatus::kShed, msg};
    }
    if (overflowing()) {
      switch (adm.policy) {
        case ShedPolicy::kBackpressure:
          // Closed-loop: nothing enters, no id is consumed; the caller
          // stalls and retries. The stall time is accounted driver-side.
          counters_.counter("backpressure_rejects") += 1;
          return {SubmitStatus::kBackpressure, Message{}};
        case ShedPolicy::kDropOldest:
          while (overflowing()) {
            auto victim = remove_shed_victim(src, true, TimeNs::never());
            if (!victim.has_value()) {
              break;  // everything queued is in flight: shed the newcomer
            }
            settle_shed(*victim, true, "shed_oldest");
          }
          break;
        case ShedPolicy::kDropNewest:
          while (overflowing()) {
            auto victim = remove_shed_victim(src, false, TimeNs::never());
            if (!victim.has_value()) {
              break;
            }
            settle_shed(*victim, true, "shed_newest");
          }
          break;
        case ShedPolicy::kDeadline: {
          // Only messages whose deadline rank has expired may be evicted
          // (rank = submit_time + deadline, expired when rank <= now --
          // the same integer-rank encoding the PolicyEngine uses).
          const TimeNs cutoff = sim_.now() - adm.deadline;
          while (overflowing()) {
            auto victim = remove_shed_victim(src, true, cutoff);
            if (!victim.has_value()) {
              break;  // nothing expired: the newcomer is shed instead
            }
            settle_shed(*victim, true, "shed_deadline");
          }
          break;
        }
        case ShedPolicy::kTailDrop:
          break;  // the newcomer is the victim
      }
      if (overflowing()) {
        const Message msg = make_message(src, dst, bytes, phase);
        settle_shed(msg, false, "shed_newest");
        return {SubmitStatus::kShed, msg};
      }
    }
  }
  const Message msg = make_message(src, dst, bytes, phase);
  if (fault_) {
    arq_.emplace(msg.id, ArqState{});
    ++outstanding_;
  }
  do_submit(msg);
  if (adm.enabled()) {
    depth_samples_.push_back(source_queue_bytes(src));
  }
  return {SubmitStatus::kAccepted, msg};
}

Message Network::submit(NodeId src, NodeId dst, std::uint64_t bytes,
                        std::size_t phase) {
  const SubmitOutcome out = try_submit(src, dst, bytes, phase);
  PMX_CHECK(out.status != SubmitStatus::kBackpressure,
            "submit() refused by backpressure admission; use try_submit()");
  return out.msg;
}

void Network::notify_send_done(const Message& msg, TimeNs when) {
  PMX_CHECK(when >= sim_.now(), "send-done in the past");
  if (fault_) {
    // The processor-visible send completes once; retransmissions are
    // autonomous NIC activity.
    const auto it = arq_.find(msg.id);
    if (it != arq_.end()) {
      if (it->second.send_done_fired) {
        return;
      }
      it->second.send_done_fired = true;
    }
  }
  if (send_done_) {
    sim_.schedule_at(when, [this, msg] { send_done_(msg); });
  }
}

void Network::notify_delivered(const Message& msg, TimeNs send_done,
                               TimeNs when) {
  PMX_CHECK(when >= sim_.now(), "delivery in the past");
  if (!fault_) {
    sim_.schedule_at(when,
                     [this, msg, send_done] { record_delivery(msg, send_done); });
    return;
  }
  // CRC decision point: the copy that just finished its transfer is either
  // intact or corrupted -- by a transient bit error (seeded draw) or by a
  // hard fault that cut the link mid-transfer (poisoned).
  wire_bytes_ += msg.bytes;
  const bool poisoned = poisoned_.erase(msg.id) > 0;
  const bool corrupt = fault_->corrupts_payload(msg.bytes) || poisoned;
  sim_.schedule_at(when, [this, msg, send_done, corrupt] {
    handle_arrival(msg, send_done, corrupt);
  });
}

void Network::record_delivery(const Message& msg, TimeNs send_done) {
  MessageRecord rec;
  rec.msg = msg;
  rec.send_done = send_done;
  rec.delivered = sim_.now();
  records_.push_back(rec);
  delivered_bytes_ += msg.bytes;
  if (rec.delivered > last_delivery_) {
    last_delivery_ = rec.delivered;
  }
  counters_.counter("delivered") += 1;
  if (delivered_) {
    delivered_(rec);
  }
}

void Network::handle_arrival(const Message& msg, TimeNs send_done,
                             bool corrupt) {
  const auto it = arq_.find(msg.id);
  PMX_CHECK(it != arq_.end(), "arrival for unknown message id");
  ArqState& st = it->second;

  if (corrupt) {
    // Receiver's CRC check failed: the payload is discarded and a NACK
    // crosses the control wire back to the sender.
    counters_.counter("crc_corruptions") += 1;
    if (st.attempts >= fault_->params().retry_budget) {
      if (st.recorded) {
        // A clean copy already reached the receiver on an earlier attempt
        // and only the sender's confirmation is missing (this corrupted
        // arrival is a timeout duplicate). Settle as complete, mirroring
        // the lost-ACK exhaustion path below: the drop path would count a
        // delivered message as dropped too, and the driver's progress
        // accounting (delivered + dropped == submitted) could never
        // balance again.
        counters_.counter("ack_retries_exhausted") += 1;
        arq_.erase(it);
        on_message_settled(msg);
        return;
      }
      counters_.counter("messages_dropped") += 1;
      ++dropped_;
      --outstanding_;
      arq_.erase(it);
      on_message_settled(msg);
      if (dropped_fn_) {
        dropped_fn_(msg);
      }
      return;
    }
    ++st.attempts;
    schedule_retransmit(msg, params_.control_wire_latency());
    return;
  }

  if (!st.recorded) {
    st.recorded = true;
    --outstanding_;
    record_delivery(msg, send_done);
    note_recovery(msg);
  } else {
    // A timeout retransmission raced a successfully delivered (but
    // unacknowledged) copy: same sequence number, receiver drops it.
    counters_.counter("duplicates_suppressed") += 1;
  }

  // ACK return path. A corrupted/lost ACK leaves the sender waiting; it
  // retransmits after the ACK timeout and the receiver re-acknowledges the
  // duplicate.
  if (fault_->corrupts_ack()) {
    counters_.counter("acks_lost") += 1;
    if (st.attempts >= fault_->params().retry_budget) {
      // The sender gives up re-sending; the data did arrive, so the
      // message is complete from the network's point of view.
      counters_.counter("ack_retries_exhausted") += 1;
      arq_.erase(it);
      on_message_settled(msg);
      return;
    }
    ++st.attempts;
    schedule_retransmit(msg, fault_->params().retransmit_timeout);
    return;
  }
  arq_.erase(it);
  on_message_settled(msg);
}

void Network::schedule_retransmit(const Message& msg, TimeNs extra_delay) {
  counters_.counter("retransmits") += 1;
  const std::size_t attempt = arq_.at(msg.id).attempts;
  const TimeNs delay = extra_delay + fault_->backoff(attempt);
  sim_.schedule_after(delay, [this, msg] { do_retransmit(msg); });
}

void Network::mark_poisoned(MessageId id) {
  if (fault_) {
    poisoned_.insert(id);
  }
}

void Network::on_link_event(NodeId node, bool up) {
  if (!up) {
    counters_.counter("link_faults") += 1;
    RecoveryRecord rec;
    rec.node = node;
    rec.down = sim_.now();
    recoveries_.push_back(rec);
    ++unrecovered_;
    return;
  }
  counters_.counter("link_repairs") += 1;
  for (auto it = recoveries_.rbegin(); it != recoveries_.rend(); ++it) {
    if (it->node == node && !it->repaired.has_value()) {
      it->repaired = sim_.now();
      break;
    }
  }
}

void Network::note_recovery(const Message& msg) {
  if (unrecovered_ == 0) {
    return;
  }
  for (auto& rec : recoveries_) {
    if (rec.recovered.has_value()) {
      continue;
    }
    if (rec.node != msg.src && rec.node != msg.dst) {
      continue;
    }
    if (!fault_->link_up(rec.node)) {
      // A transfer that finished before the fault can still have its
      // delivery event fire during the outage; that is not a recovery.
      continue;
    }
    rec.recovered = sim_.now();
    --unrecovered_;
  }
}

}  // namespace pmx
