#include "switching/tdm.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace pmx {

namespace {

TdmScheduler::Options scheduler_options(const SystemParams& params,
                                        const TdmNetwork::Options& options) {
  TdmScheduler::Options o;
  o.num_ports = params.num_nodes;
  o.num_slots = params.mux_degree;
  o.rotate_priority = options.rotate_priority;
  o.multi_slot_connections = options.multi_slot_connections;
  o.skip_unrequested_slots = options.skip_idle_slots;
  return o;
}

}  // namespace

TdmNetwork::TdmNetwork(Simulator& sim, const SystemParams& params)
    : TdmNetwork(sim, params, Options{}) {}

TdmNetwork::TdmNetwork(Simulator& sim, const SystemParams& params,
                       Options options)
    : Network(sim, params),
      sched_(scheduler_options(params, options)),
      xbar_(params.num_nodes, FabricKind::kLvds),
      voqs_(params.num_nodes, VoqSet(params.num_nodes)),
      predictor_(options.predictor ? std::move(options.predictor)
                                   : make_no_predictor()),
      slot_clock_(sim, params.slot_length, [this] { on_slot_tick(); }),
      sl_clock_(sim, params.scheduler_latency, [this] { on_sl_tick(); }),
      sl_units_(options.sl_units == 0 ? 1 : options.sl_units),
      rx_buffer_(options.receiver_buffer_bytes),
      rx_drain_(options.receiver_drain_per_slot) {
  if (rx_buffer_ > 0) {
    PMX_CHECK(rx_buffer_ >= params.slot_payload_bytes(),
              "receive buffer smaller than one slot payload would deadlock");
    PMX_CHECK(rx_drain_ > 0, "finite receive buffer needs a drain rate");
    rx_occupancy_.assign(params.num_nodes, 0);
  }
  if (admission_enabled()) {
    for (auto& voq : voqs_) {
      voq.set_capacity(params.admission.capacity_bytes,
                       params.admission.capacity_msgs);
    }
  }
  starvation_slots_ = options.starvation_slots;
  if (starvation_slots_ > 0) {
    starve_.assign(params.num_nodes, 0);
    progress_.assign(params.num_nodes, 0);
  }
  if (FaultModel* fm = fault_model()) {
    // Stuck SL cells are permanent manufacturing faults: masked from every
    // scheduling pass from the start.
    for (const auto& [u, v] : fm->stuck_cells()) {
      sched_.set_stuck_cell(u, v);
    }
    fm->subscribe([this](NodeId node, bool up) { on_link_change(node, up); });
  }
  if (control_faulty()) {
    ControlPlane::Options po;
    po.num_nodes = params.num_nodes;
    po.wire_latency = params.control_wire_latency();
    po.grant_line = true;
    po.heal = params.ctrl.heal;
    plane_ = std::make_unique<ControlPlane>(
        sim, *control_fault(), po, counters(),
        [this](NodeId u, NodeId v, bool value) { apply_request(u, v, value); });
  }
  if (params.reopt.enabled()) {
    ReoptService::Hooks hooks;
    hooks.applier.apply = [this](const std::vector<BitMatrix>& tables,
                                 bool pinned) {
      return apply_reopt(tables, pinned);
    };
    hooks.applier.capture = [this] {
      std::vector<BitMatrix> tables;
      tables.reserve(sched_.num_slots());
      for (std::size_t s = 0; s < sched_.num_slots(); ++s) {
        tables.push_back(sched_.config(s));
      }
      return tables;
    };
    hooks.applier.delivered_bytes = [this] { return delivered_bytes(); };
    hooks.applier.violations = [this]() -> std::uint64_t {
      return auditor() ? auditor()->stats().violations : 0;
    };
    hooks.visit_queues =
        [this](const std::function<void(NodeId, NodeId, std::uint64_t)>& fn) {
          for (NodeId u = 0; u < params_.num_nodes; ++u) {
            voqs_[u].pending().for_each_set([&](std::size_t v) {
              fn(u, static_cast<NodeId>(v), voqs_[u].bytes(v));
            });
          }
        };
    reopt_ = std::make_unique<ReoptService>(
        sim, control_fault(), params.reopt, params.num_nodes, params.mux_degree,
        params.slot_length, params.control_wire_latency(),
        params.scheduler_latency, std::move(hooks));
    reopt_->start();
  }
  slot_clock_.start();
  sl_clock_.start();
}

std::uint64_t TdmNetwork::apply_reopt(const std::vector<BitMatrix>& tables,
                                      bool pinned) {
  PMX_CHECK(tables.size() == sched_.num_slots(),
            "reopt proposal must cover every configuration register");
  // The new tables own the fabric: discard every learned (unpinned) slot and
  // hold latch, then write the configuration registers directly.
  sched_.flush_dynamic();
  predictor_->on_flush();
  for (std::size_t s = 0; s < tables.size(); ++s) {
    if (tables[s].none()) {
      sched_.unload(s);
    } else {
      sched_.preload(s, tables[s], pinned);
    }
  }
  counters().counter(pinned ? "reopt_applies" : "reopt_rollbacks") += 1;
  // A7 resync: invalidate in-flight request/grant traffic from the old
  // table regime and rebuild both views from ground truth, exactly as the
  // auditor's recovery path does.
  return resync_views();
}

void TdmNetwork::apply_request(NodeId u, NodeId v, bool value) {
  if (!value) {
    sched_.set_request(u, v, false);
    return;
  }
  plane_->refresh_lease(u, v);
  sched_.set_request(u, v, true);
  if (sched_.is_established(u, v)) {
    // Duplicate request on a live connection (watchdog reissue after a lost
    // grant): re-acknowledge so the NIC's granted-belief converges.
    plane_->send_grant(u, v, true);
  }
}

void TdmNetwork::lease_scan() {
  const BitMatrix& requests = sched_.requests();
  std::vector<std::pair<NodeId, NodeId>> expired;
  for (NodeId u = 0; u < params_.num_nodes; ++u) {
    requests.row(u).for_each_set([&](std::size_t v) {
      if (plane_->lease_expired(u, v)) {
        expired.emplace_back(u, v);
      }
    });
  }
  for (const auto& [u, v] : expired) {
    // The NIC has been silent on (u, v) longer than the lease: its release
    // message was lost. Drop the stale request bit (the next SL pass over
    // the slot releases the connection) and tell the NIC; a NIC that still
    // wants the pair re-requests on revoke arrival.
    counters().counter("lease_expiries") += 1;
    sched_.set_request(u, v, false);
    plane_->send_grant(u, v, false);
  }
}

void TdmNetwork::on_link_change(NodeId node, bool up) {
  if (!up) {
    // Mask the dead port out of the request/grant matrices and
    // force-release its established connections so their slots are
    // reclaimed; the predictors evict them like any other release.
    for (const auto& [u, v] : sched_.set_port_fault(node, true)) {
      sched_.unhold(u, v);
      predictor_->on_release(Conn{u, v}, sim_.now());
      counters().counter("forced_releases") += 1;
    }
    return;
  }
  // Repair: unmask. Pending requests (messages still queued in the VOQs)
  // re-establish on the following scheduling passes.
  sched_.set_port_fault(node, false);
}

void TdmNetwork::preload(std::size_t slot, const BitMatrix& config,
                         bool pinned) {
  sched_.preload(slot, config, pinned);
  counters().counter("preloads") += 1;
}

void TdmNetwork::flush_hint() {
  sched_.flush_dynamic();
  predictor_->on_flush();
  counters().counter("flushes") += 1;
}

std::uint64_t TdmNetwork::queued_bytes() const {
  std::uint64_t total = 0;
  for (const auto& voq : voqs_) {
    total += voq.total_bytes();
  }
  return total;
}

void TdmNetwork::do_submit(const Message& msg) {
  voqs_[msg.src].push(msg);
  if (plane_) {
    plane_->want(msg.src, msg.dst);
  } else {
    sched_.set_request(msg.src, msg.dst, true);
  }
}

std::optional<Message> TdmNetwork::remove_shed_victim(NodeId src, bool oldest,
                                                      TimeNs cutoff) {
  auto victim = voqs_[src].evict(oldest, cutoff, std::nullopt);
  if (victim.has_value() && voqs_[src].empty(victim->dst)) {
    // The eviction drained the VOQ: withdraw the request exactly like the
    // slot-drain path does, or the scheduler would keep a slot established
    // for traffic that no longer exists.
    if (plane_) {
      plane_->unwant(src, victim->dst);
    } else {
      sched_.set_request(src, victim->dst, false);
    }
  }
  return victim;
}

void TdmNetwork::on_slot_tick() {
  // A predictor that detects a communication-phase change (Section 3.3)
  // may ask for a wholesale flush of the learned working set.
  if (predictor_->recommend_flush(sim_.now())) {
    sched_.flush_dynamic();
    predictor_->on_flush();
    counters().counter("auto_flushes") += 1;
  }
  // Starvation watchdog: a source with queued traffic that moves nothing
  // for starvation_slots_ consecutive slots (holds, preloads, or skew have
  // crowded it out of every configuration) triggers a flush of the learned
  // schedule state so the reactive path re-inserts the starved requests.
  const auto starvation_scan = [this] {
    if (starvation_slots_ == 0) {
      return;
    }
    bool intervene = false;
    for (NodeId u = 0; u < params_.num_nodes; ++u) {
      if (voqs_[u].total_bytes() == 0 || progress_[u] != 0) {
        starve_[u] = 0;
        continue;
      }
      if (++starve_[u] >= starvation_slots_) {
        intervene = true;
      }
    }
    if (intervene) {
      sched_.flush_dynamic();
      predictor_->on_flush();
      counters().counter("starvation_interventions") += 1;
      std::fill(starve_.begin(), starve_.end(), 0);
    }
  };
  if (starvation_slots_ > 0) {
    std::fill(progress_.begin(), progress_.end(), 0);
  }
  // Predictor evictions unlatch idle connections; the next SL pass over
  // their slot releases them.
  for (const Conn& c : predictor_->collect_evictions(sim_.now())) {
    sched_.unhold(c.src, c.dst);
    counters().counter("evictions") += 1;
  }

  const auto slot = sched_.advance_slot();
  xbar_.load(sched_.active_config());
  if (!slot) {
    counters().counter("idle_slots") += 1;
    starvation_scan();
    if (plane_) {
      lease_scan();
    }
    return;
  }

  const std::size_t n = params_.num_nodes;
  const TimeNs slot_start = sim_.now();
  // Receiving processors consume from their input buffers once per slot.
  if (rx_buffer_ > 0) {
    for (auto& occupancy : rx_occupancy_) {
      occupancy -= std::min(occupancy, rx_drain_);
    }
  }
  for (NodeId u = 0; u < n; ++u) {
    const auto granted = sched_.granted_output(u);
    if (!granted) {
      continue;
    }
    const NodeId v = *granted;
    if (voqs_[u].empty(v)) {
      counters().counter("idle_grants") += 1;
      continue;
    }
    if (plane_ && !plane_->granted(u, v)) {
      // The connection is live in the fabric but the grant reply has not
      // reached (or was lost on the way to) NIC u: it will not drive data
      // it does not know it may drive.
      counters().counter("grant_stalls") += 1;
      continue;
    }
    std::uint64_t budget = params_.slot_payload_bytes();
    if (rx_buffer_ > 0) {
      // Credit-based end-to-end flow control: never exceed the space the
      // receiver's input buffer has left.
      const std::uint64_t credit = rx_buffer_ - rx_occupancy_[v];
      if (credit < budget) {
        budget = credit;
        counters().counter("backpressure_stalls") += 1;
      }
    }
    std::uint64_t sent = 0;
    while (budget > 0 && !voqs_[u].empty(v)) {
      Message completed;
      const std::uint64_t taken = voqs_[u].consume(v, budget, &completed);
      budget -= taken;
      sent += taken;
      if (completed.id != 0) {
        // Last byte of this message leaves the NIC `sent` bytes into the
        // slot's data window; it lands after the passive-fabric pipe plus
        // the receive NIC cycle.
        const TimeNs done = slot_start + link_.serialization(sent);
        notify_send_done(completed, done);
        notify_delivered(completed, done,
                         done + params_.passive_path_latency() +
                             params_.nic_cycle);
      }
    }
    counters().counter("slot_bytes") += sent;
    if (reopt_ && sent > 0) {
      reopt_->observe(u, v, sent);
    }
    if (starvation_slots_ > 0 && sent > 0) {
      progress_[u] = 1;
    }
    if (rx_buffer_ > 0) {
      rx_occupancy_[v] += sent;
    }
    if (plane_ && sent > 0) {
      plane_->note_progress(u, v);
      plane_->refresh_lease(u, v);
    }
    predictor_->on_use(Conn{u, v}, slot_start);
    if (voqs_[u].empty(v)) {
      if (plane_) {
        // The release crosses the lossy control channel; R[u][v] clears on
        // arrival (or by lease expiry if the message is lost).
        plane_->unwant(u, v);
      } else {
        sched_.set_request(u, v, false);
      }
      if (predictor_->should_hold(Conn{u, v})) {
        sched_.hold(u, v);
        predictor_->on_hold(Conn{u, v}, slot_start);
      }
    }
  }
  starvation_scan();
  if (plane_) {
    lease_scan();
  }
}

void TdmNetwork::on_sl_tick() {
  // With parallel SL units (Section 4 extension 1) several slots are
  // scheduled per SL clock; the sequential emulation is conservative (the
  // later unit sees the earlier unit's insertions in B*, so no conflicts).
  for (std::size_t unit = 0; unit < sl_units_; ++unit) {
    const auto pass = sched_.run_pass();
    for (const auto& [u, v] : pass.established_pairs) {
      predictor_->on_establish(Conn{u, v}, sim_.now());
      if (plane_) {
        plane_->refresh_lease(u, v);
        plane_->send_grant(u, v, true);
      }
    }
    for (const auto& [u, v] : pass.released_pairs) {
      // Defensive: a released connection must not stay latched.
      sched_.unhold(u, v);
      predictor_->on_release(Conn{u, v}, sim_.now());
      if (plane_) {
        plane_->send_grant(u, v, false);
      }
    }
  }
}

void TdmNetwork::audit_control(std::vector<std::string>& out) {
  sched_.audit_invariants(out);
  const std::size_t n = params_.num_nodes;
  if (predictor_->mirrors_holds()) {
    // Hold conservation: the policy engine mirrors every hold latch, and
    // every unlatch path notifies it, so the two hold sets must be
    // bit-identical. Divergence means a policy-engine bookkeeping bug that
    // would otherwise only show up as silent goodput loss.
    std::size_t held = 0;
    for (NodeId u = 0; u < n; ++u) {
      sched_.holds().row(u).for_each_set([&](std::size_t v) {
        ++held;
        if (!predictor_->believes_held(Conn{u, v})) {
          out.push_back("hold divergence (" + std::to_string(u) + " -> " +
                        std::to_string(v) +
                        "): scheduler latched a hold the predictor's mirror "
                        "does not have");
        }
      });
    }
    if (held != predictor_->held_count()) {
      out.push_back("hold count divergence: scheduler latches " +
                    std::to_string(held) + " holds, predictor '" +
                    predictor_->name() + "' mirrors " +
                    std::to_string(predictor_->held_count()));
    }
  }
  if (!plane_) {
    return;
  }
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u == v) {
        continue;
      }
      const bool r = sched_.request(u, v);
      const bool wants = plane_->wants(u, v);
      if (r && !wants && !plane_->inflight(u, v) && !plane_->lease_active()) {
        // Leak: the scheduler serves a request the NIC abandoned, no release
        // is in flight, and no lease will ever reap it.
        out.push_back("leaked request (" + std::to_string(u) + " -> " +
                      std::to_string(v) +
                      "): scheduler holds R for a NIC that dropped it");
      }
      if (wants && !r && !sched_.is_established(u, v) &&
          !plane_->inflight(u, v) && !plane_->watchdog_armed(u, v)) {
        // Wedge: the NIC waits for a connection the scheduler never heard
        // of, and nothing (in-flight message or watchdog) can fix that.
        out.push_back("wedged NIC (" + std::to_string(u) + " -> " +
                      std::to_string(v) +
                      "): intent raised but no request, grant, or watchdog "
                      "pending");
      }
      if (wants && sched_.is_established(u, v) && !plane_->granted(u, v) &&
          !plane_->inflight(u, v) && !plane_->watchdog_armed(u, v)) {
        // Wedge: the connection is live but the grant reply was lost and
        // nothing will ever re-deliver it -- the slot burns idle grants.
        out.push_back("wedged NIC (" + std::to_string(u) + " -> " +
                      std::to_string(v) +
                      "): connection established but the grant was lost");
      }
    }
  }
}

std::size_t TdmNetwork::resync_views() {
  // Full out-of-band state exchange: both views are rebuilt from ground
  // truth (the VOQ occupancy on the NIC side, B* on the scheduler side).
  // Resync is lossless by construction -- it models a maintenance channel,
  // not the lossy request/grant wires.
  const std::size_t invalidated = plane_ ? plane_->begin_resync() : 0;
  const std::size_t n = params_.num_nodes;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u == v) {
        continue;
      }
      const bool truth = !voqs_[u].empty(v);
      if (plane_) {
        plane_->force_state(u, v, truth, sched_.is_established(u, v));
      }
      sched_.set_request(u, v, truth);
    }
  }
  return invalidated;
}

void TdmNetwork::resync_control() {
  if (!plane_) {
    return;
  }
  resync_views();
}

}  // namespace pmx
