#include "switching/preload_tdm.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace pmx {

namespace {

TdmScheduler::Options scheduler_options(const SystemParams& params) {
  TdmScheduler::Options o;
  o.num_ports = params.num_nodes;
  o.num_slots = params.mux_degree;
  o.skip_unrequested_slots = true;  // idle preloaded slots cost no time
  return o;
}

/// Consecutive zero-progress slots tolerated before the loaded-configuration
/// window is reshuffled towards head-of-line demand (see preemption note in
/// the class description of fill_free_slots/on_slot_tick).
constexpr std::uint64_t kStallSlots = 3;

}  // namespace

PreloadTdmNetwork::PreloadTdmNetwork(Simulator& sim,
                                     const SystemParams& params,
                                     CompiledPlan plan)
    : Network(sim, params),
      sched_(scheduler_options(params)),
      xbar_(params.num_nodes, FabricKind::kLvds),
      voqs_(params.num_nodes, VoqSet(params.num_nodes)),
      plan_(std::move(plan)),
      slot_config_(params.mux_degree),
      slot_clock_(sim, params.slot_length, [this] { on_slot_tick(); }) {
  PMX_CHECK(!plan_.phases.empty(), "compiled plan has no phases");
  config_sent_.assign(plan_.phases[0].configs.size(), 0);
  phase_unsettled_.assign(plan_.phases.size(), 0);
  if (admission_enabled()) {
    for (auto& voq : voqs_) {
      voq.set_capacity(params.admission.capacity_bytes,
                       params.admission.capacity_msgs);
    }
  }
  if (control_faulty()) {
    ControlPlane::Options po;
    po.num_nodes = params.num_nodes;
    po.wire_latency = params.control_wire_latency();
    // Configuration registers are preloaded directly (out of band); only
    // the request/release wires are lossy, there is no grant reply to lose.
    po.grant_line = false;
    po.heal = params.ctrl.heal;
    plane_ = std::make_unique<ControlPlane>(
        sim, *control_fault(), po, counters(),
        [this](NodeId u, NodeId v, bool value) { apply_request(u, v, value); });
  }
  if (params.reopt.enabled()) {
    demand_ = std::make_unique<DemandEstimator>(params.num_nodes,
                                                params.reopt.ewma_shift);
    demand_clock_ = std::make_unique<Clock>(
        sim,
        params.slot_length * static_cast<std::int64_t>(
                                 params.reopt.period_slots),
        [this] { on_demand_roll(); });
    demand_clock_->start();
  }
  maybe_advance_phase();  // skips leading empty phases
  fill_free_slots();
  slot_clock_.start();
}

void PreloadTdmNetwork::on_demand_roll() {
  if (params_.reopt.fold_occupancy) {
    for (NodeId u = 0; u < params_.num_nodes; ++u) {
      voqs_[u].pending().for_each_set([&](std::size_t v) {
        demand_->observe(u, static_cast<NodeId>(v),
                         voqs_[u].bytes(static_cast<NodeId>(v)));
      });
    }
  }
  demand_->roll();
}

void PreloadTdmNetwork::apply_request(NodeId u, NodeId v, bool value) {
  if (value) {
    plane_->refresh_lease(u, v);
  }
  sched_.set_request(u, v, value);
}

void PreloadTdmNetwork::lease_scan() {
  const BitMatrix& requests = sched_.requests();
  std::vector<std::pair<NodeId, NodeId>> expired;
  for (NodeId u = 0; u < params_.num_nodes; ++u) {
    requests.row(u).for_each_set([&](std::size_t v) {
      if (plane_->lease_expired(u, v)) {
        expired.emplace_back(u, v);
      }
    });
  }
  for (const auto& [u, v] : expired) {
    counters().counter("lease_expiries") += 1;
    sched_.set_request(u, v, false);
  }
}

std::uint64_t PreloadTdmNetwork::queued_bytes() const {
  std::uint64_t total = 0;
  for (const auto& voq : voqs_) {
    total += voq.total_bytes();
  }
  return total;
}

void PreloadTdmNetwork::do_submit(const Message& msg) {
  PMX_CHECK(msg.phase < plan_.phases.size(), "message phase beyond plan");
  PMX_CHECK(plan_.phases[msg.phase].config_of(msg.src, msg.dst) !=
                PhasePlan::kNoConfig,
            "message pair missing from compiled plan");
  voqs_[msg.src].push(msg);
  if (plane_) {
    plane_->want(msg.src, msg.dst);
  } else {
    sched_.set_request(msg.src, msg.dst, true);
  }
  if (fault_tolerant() && !retransmitting_) {
    ++phase_unsettled_[msg.phase];
  }
}

void PreloadTdmNetwork::do_retransmit(const Message& msg) {
  // The phase is held open (maybe_advance_phase) while any of its messages
  // is unsettled, so the copy always re-enters its own phase.
  PMX_CHECK(msg.phase == phase_, "retransmission crossed a phase boundary");
  const std::size_t cfg = plan_.phases[phase_].config_of(msg.src, msg.dst);
  if (cfg != PhasePlan::kNoConfig) {
    // Give the bytes back to the compiled budget: the configuration must
    // stay loadable until the retransmitted copy has drained through it.
    config_sent_[cfg] -= std::min<std::uint64_t>(config_sent_[cfg], msg.bytes);
  }
  retransmitting_ = true;
  do_submit(msg);
  retransmitting_ = false;
}

void PreloadTdmNetwork::on_message_settled(const Message& msg) {
  PMX_CHECK(phase_unsettled_[msg.phase] > 0,
            "settling a message its phase never counted");
  --phase_unsettled_[msg.phase];
}

std::optional<Message> PreloadTdmNetwork::remove_shed_victim(NodeId src,
                                                             bool oldest,
                                                             TimeNs cutoff) {
  auto victim = voqs_[src].evict(oldest, cutoff, std::nullopt);
  if (victim.has_value() && voqs_[src].empty(victim->dst)) {
    if (plane_) {
      plane_->unwant(src, victim->dst);
    } else {
      sched_.set_request(src, victim->dst, false);
    }
  }
  return victim;
}

void PreloadTdmNetwork::on_message_shed(const Message& msg) {
  const std::size_t cfg = plan_.phases[msg.phase].config_of(msg.src, msg.dst);
  if (cfg == PhasePlan::kNoConfig) {
    return;
  }
  if (msg.phase == phase_) {
    config_sent_[cfg] += msg.bytes;
    return;
  }
  if (msg.phase < phase_) {
    return;  // its phase already retired; nothing to credit
  }
  // Queued victim from a phase not yet entered: bank the credit so the
  // phase starts with its budget already partially drained.
  if (shed_credit_.empty()) {
    shed_credit_.resize(plan_.phases.size());
  }
  auto& credit = shed_credit_[msg.phase];
  if (credit.empty()) {
    credit.assign(plan_.phases[msg.phase].configs.size(), 0);
  }
  credit[cfg] += msg.bytes;
}

bool PreloadTdmNetwork::phase_drained() const {
  const PhasePlan& phase = plan_.phases[phase_];
  for (std::size_t i = 0; i < phase.configs.size(); ++i) {
    if (config_sent_[i] < phase.config_bytes[i]) {
      return false;
    }
  }
  return true;
}

void PreloadTdmNetwork::maybe_advance_phase() {
  while (phase_drained() && phase_ + 1 < plan_.phases.size()) {
    if (fault_tolerant() && phase_unsettled_[phase_] > 0) {
      // Every byte crossed the fabric, but some message is still awaiting
      // its ACK (or a retransmission): hold the phase so a late copy can
      // re-credit and reuse this phase's configurations.
      return;
    }
    ++phase_;
    if (phase_ < shed_credit_.size() && !shed_credit_[phase_].empty()) {
      config_sent_ = shed_credit_[phase_];
    } else {
      config_sent_.assign(plan_.phases[phase_].configs.size(), 0);
    }
    for (std::size_t s = 0; s < slot_config_.size(); ++s) {
      PMX_CHECK(!slot_config_[s].has_value(),
                "advancing phase with configurations still loaded");
    }
    counters().counter("phase_advances") += 1;
  }
}

void PreloadTdmNetwork::fill_free_slots() {
  if (std::all_of(slot_config_.begin(), slot_config_.end(),
                  [](const auto& s) { return s.has_value(); })) {
    return;  // nothing to fill; skip the ranking work entirely
  }
  const PhasePlan& phase = plan_.phases[phase_];
  // Pending = not loaded and not drained. Prefer configurations that some
  // node's head-of-line message needs right now; break ties by index (the
  // compiler's load-time order).
  std::vector<std::uint64_t> head_demand(phase.configs.size(), 0);
  for (NodeId u = 0; u < params_.num_nodes; ++u) {
    voqs_[u].pending().for_each_set([&](std::size_t v) {
      const std::size_t cfg = phase.config_of(u, static_cast<NodeId>(v));
      if (cfg != PhasePlan::kNoConfig) {
        head_demand[cfg] += voqs_[u].head_remaining(static_cast<NodeId>(v));
      }
    });
  }
  // Estimator stage of the re-optimization service: once the EWMA has
  // rolled at least once, rank pending configurations by smoothed measured
  // demand instead, which survives churn that instantaneous head-of-line
  // bytes cannot see. Ties keep the compiler's index order.
  std::vector<std::uint64_t> est_demand;
  if (demand_ != nullptr && demand_->rolls() > 0) {
    est_demand.assign(phase.configs.size(), 0);
    for (const DemandEstimator::Demand& d : demand_->snapshot()) {
      const std::size_t cfg = phase.config_of(d.src, d.dst);
      if (cfg != PhasePlan::kNoConfig) {
        est_demand[cfg] += d.demand;
      }
    }
  }
  const auto loaded = [&](std::size_t cfg) {
    return std::any_of(slot_config_.begin(), slot_config_.end(),
                       [&](const auto& s) { return s == cfg; });
  };
  const auto next_pending = [&]() -> std::size_t {
    std::size_t hol = PhasePlan::kNoConfig;   // lowest index, head demand
    std::size_t idle = PhasePlan::kNoConfig;  // lowest index, pending at all
    std::size_t ranked = PhasePlan::kNoConfig;
    std::uint64_t ranked_demand = 0;
    for (std::size_t c = 0; c < phase.configs.size(); ++c) {
      if (config_sent_[c] >= phase.config_bytes[c] || loaded(c)) {
        continue;
      }
      if (idle == PhasePlan::kNoConfig) {
        idle = c;
      }
      if (hol == PhasePlan::kNoConfig && head_demand[c] > 0) {
        hol = c;
      }
      if (!est_demand.empty() && est_demand[c] > ranked_demand) {
        ranked = c;  // strict > keeps the lowest index on ties
        ranked_demand = est_demand[c];
      }
    }
    if (ranked != PhasePlan::kNoConfig) {
      counters().counter("reopt_ranked_loads") += 1;
      return ranked;
    }
    return hol != PhasePlan::kNoConfig ? hol : idle;
  };

  for (std::size_t s = 0; s < slot_config_.size(); ++s) {
    if (slot_config_[s].has_value()) {
      continue;
    }
    const std::size_t cfg = next_pending();
    if (cfg == PhasePlan::kNoConfig) {
      break;
    }
    slot_config_[s] = cfg;
    counters().counter("config_loads") += 1;
    // Writing a configuration register costs one scheduler pass.
    sim_.schedule_after(params_.scheduler_latency, [this, s, cfg] {
      // The slot may have been retargeted while the write was in flight.
      if (slot_config_[s] == cfg) {
        sched_.preload(s, plan_.phases[phase_].configs[cfg], true);
      }
    });
  }
}

void PreloadTdmNetwork::on_slot_tick() {
  const auto slot = sched_.advance_slot();
  xbar_.load(sched_.active_config());
  const TimeNs slot_start = sim_.now();
  std::uint64_t transmitted = 0;

  if (slot) {
    const FaultModel* fm = fault_model();
    const PhasePlan& phase = plan_.phases[phase_];
    for (NodeId u = 0; u < params_.num_nodes; ++u) {
      const auto granted = sched_.granted_output(u);
      if (!granted || voqs_[u].empty(*granted)) {
        continue;
      }
      const NodeId v = *granted;
      if (fm != nullptr && (!fm->link_up(u) || !fm->link_up(v))) {
        // The preloaded configuration stays pinned through the outage; the
        // pair simply transmits nothing until the cable is repaired.
        continue;
      }
      const std::size_t cfg = phase.config_of(u, v);
      std::uint64_t budget = params_.slot_payload_bytes();
      std::uint64_t sent = 0;
      while (budget > 0 && !voqs_[u].empty(v)) {
        // Only consume traffic belonging to the current phase: a head
        // message tagged for a later phase waits for its own configs.
        if (voqs_[u].head(v).phase != phase_) {
          break;
        }
        Message completed;
        const std::uint64_t taken = voqs_[u].consume(v, budget, &completed);
        budget -= taken;
        sent += taken;
        if (completed.id != 0) {
          const TimeNs done = slot_start + link_.serialization(sent);
          notify_send_done(completed, done);
          notify_delivered(completed, done,
                           done + params_.passive_path_latency() +
                               params_.nic_cycle);
        }
      }
      transmitted += sent;
      if (demand_ != nullptr && sent > 0) {
        demand_->observe(u, v, sent);
      }
      if (plane_ && sent > 0) {
        plane_->note_progress(u, v);
        plane_->refresh_lease(u, v);
      }
      if (voqs_[u].empty(v)) {
        if (plane_) {
          plane_->unwant(u, v);
        } else {
          sched_.set_request(u, v, false);
        }
      }
      if (cfg != PhasePlan::kNoConfig) {
        config_sent_[cfg] += sent;
      }
    }
    counters().counter("slot_bytes") += transmitted;
  }
  if (plane_) {
    lease_scan();
  }

  // Retire drained configurations and hand their slots to pending ones.
  const PhasePlan& phase = plan_.phases[phase_];
  for (std::size_t s = 0; s < slot_config_.size(); ++s) {
    if (!slot_config_[s].has_value()) {
      continue;
    }
    const std::size_t cfg = *slot_config_[s];
    if (config_sent_[cfg] >= phase.config_bytes[cfg]) {
      sched_.unload(s);
      slot_config_[s].reset();
    }
  }
  maybe_advance_phase();

  // Stall recovery: the compiler's load order may disagree with the actual
  // interleaving of sequential per-node programs (a head-of-line message may
  // need a configuration that is still pending while every loaded one is
  // waiting for traffic queued *behind* such heads). After kStallSlots
  // zero-progress slots, evict one demandless loaded configuration so
  // fill_free_slots can bring in a demanded one -- the "temporary
  /// preemption" escape hatch of Section 3.3.
  if (transmitted == 0 && queued_bytes() > 0) {
    ++stall_slots_;
    if (stall_slots_ >= kStallSlots) {
      stall_slots_ = 0;
      for (std::size_t s = 0; s < slot_config_.size(); ++s) {
        if (slot_config_[s].has_value()) {
          counters().counter("stall_preemptions") += 1;
          sched_.unload(s);
          slot_config_[s].reset();
          break;
        }
      }
    }
  } else {
    stall_slots_ = 0;
  }

  fill_free_slots();
}

void PreloadTdmNetwork::audit_control(std::vector<std::string>& out) {
  sched_.audit_invariants(out);
  if (!plane_) {
    return;
  }
  const std::size_t n = params_.num_nodes;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u == v) {
        continue;
      }
      const bool r = sched_.request(u, v);
      const bool wants = plane_->wants(u, v);
      if (r && !wants && !plane_->inflight(u, v) && !plane_->lease_active()) {
        out.push_back("leaked request (" + std::to_string(u) + " -> " +
                      std::to_string(v) +
                      "): scheduler holds R for a NIC that dropped it");
      }
      if (wants && !r && !plane_->inflight(u, v) &&
          !plane_->watchdog_armed(u, v)) {
        // Wedge: with the request bit lost, skip-unrequested-slots rotation
        // will never dwell on this pair's configuration.
        out.push_back("wedged NIC (" + std::to_string(u) + " -> " +
                      std::to_string(v) +
                      "): intent raised but no request or watchdog pending");
      }
    }
  }
}

void PreloadTdmNetwork::resync_control() {
  if (!plane_) {
    return;
  }
  plane_->begin_resync();
  const std::size_t n = params_.num_nodes;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u == v) {
        continue;
      }
      const bool truth = !voqs_[u].empty(v);
      plane_->force_state(u, v, truth, false);
      sched_.set_request(u, v, truth);
    }
  }
}

}  // namespace pmx
