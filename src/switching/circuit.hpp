#pragma once

#include <deque>
#include <optional>
#include <vector>

#include "switching/network.hpp"

namespace pmx {

/// Circuit-switched baseline (Section 5): TDM with a multiplexing degree of
/// one, re-establishing a dedicated pipe per message.
///
/// Timing model, straight from the paper:
///  * establishment: 80 ns cable delay to send the request + 80 ns to
///    schedule it + 80 ns to send the grant back;
///  * data then flows at full line rate over the LVDS fabric with a
///    30+20+20+30 ns point-to-point head latency;
///  * contended requests queue FIFO at the scheduler per output port and are
///    granted when the holder's circuit is torn down (teardown notice costs
///    one more 80 ns control-wire delay).
///
/// `hold_circuits` keeps a circuit up after its message completes and reuses
/// it if the very next message from that source has the same destination --
/// the "established connections are repeatedly used" regime of Section 1.
class CircuitNetwork final : public Network {
 public:
  struct Options {
    bool hold_circuits = false;
  };

  CircuitNetwork(Simulator& sim, const SystemParams& params);
  CircuitNetwork(Simulator& sim, const SystemParams& params,
                 const Options& options);

  [[nodiscard]] std::string name() const override { return "circuit"; }

 protected:
  void do_submit(const Message& msg) override;

 private:
  struct SourceState {
    std::deque<Message> fifo;
    bool busy = false;
    Message active;
    /// Destination of a circuit this source still holds (hold_circuits).
    std::optional<NodeId> held_circuit;
    /// Head message waits for this NIC's own dead cable to be repaired.
    bool waiting_repair = false;
  };

  struct OutputState {
    bool busy = false;
    std::deque<NodeId> waiters;
  };

  void start_next_message(NodeId src);
  /// Request reaches the scheduler (after the control-wire delay).
  void request_arrived(NodeId src);
  /// Scheduler granted the circuit; grant is on its way back to the NIC.
  void grant_circuit(NodeId src);
  /// Grant arrived; transmit the message over the dedicated pipe.
  void transmit(NodeId src);
  /// Source finished transmitting; tear down or hold the circuit.
  void send_complete(NodeId src);
  /// Teardown notice reached the scheduler: free the port, serve waiters.
  void release_output(NodeId out);
  /// Fault reaction: poison in-flight transfers, drop held circuits on the
  /// dead link, resume stalled sources/waiters on repair.
  void on_link_change(NodeId node, bool up);

  Options options_;
  std::vector<SourceState> sources_;
  std::vector<OutputState> outputs_;
};

}  // namespace pmx
