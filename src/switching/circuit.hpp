#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "switching/network.hpp"

namespace pmx {

/// Circuit-switched baseline (Section 5): TDM with a multiplexing degree of
/// one, re-establishing a dedicated pipe per message.
///
/// Timing model, straight from the paper:
///  * establishment: 80 ns cable delay to send the request + 80 ns to
///    schedule it + 80 ns to send the grant back;
///  * data then flows at full line rate over the LVDS fabric with a
///    30+20+20+30 ns point-to-point head latency;
///  * contended requests queue FIFO at the scheduler per output port and are
///    granted when the holder's circuit is torn down (teardown notice costs
///    one more 80 ns control-wire delay).
///
/// `hold_circuits` keeps a circuit up after its message completes and reuses
/// it if the very next message from that source has the same destination --
/// the "established connections are repeatedly used" regime of Section 1.
class CircuitNetwork final : public Network {
 public:
  struct Options {
    bool hold_circuits = false;
  };

  CircuitNetwork(Simulator& sim, const SystemParams& params);
  CircuitNetwork(Simulator& sim, const SystemParams& params,
                 const Options& options);

  [[nodiscard]] std::string name() const override { return "circuit"; }

 protected:
  void do_submit(const Message& msg) override;
  void audit_control(std::vector<std::string>& out) override;
  void resync_control() override;
  [[nodiscard]] std::uint64_t source_queue_bytes(NodeId src) const override {
    return sources_[src].fifo_bytes;
  }
  [[nodiscard]] std::size_t source_queue_msgs(NodeId src) const override {
    return sources_[src].fifo.size();
  }
  /// Per-source FIFO order is submit order, so the oldest victim is the
  /// front and the youngest the back; the active (in-service) message has
  /// a circuit established or establishing for it and is never shed.
  std::optional<Message> remove_shed_victim(NodeId src, bool oldest,
                                            TimeNs cutoff) override;

 private:
  struct SourceState {
    std::deque<Message> fifo;
    std::uint64_t fifo_bytes = 0;  ///< queued payload (excludes active)
    bool busy = false;
    Message active;
    /// Destination of a circuit this source still holds (hold_circuits).
    std::optional<NodeId> held_circuit;
    /// Head message waits for this NIC's own dead cable to be repaired.
    bool waiting_repair = false;
    // --- Lossy control channel only ---------------------------------------
    /// Request sent, grant not yet received (the NIC is blocked on it).
    bool waiting_grant = false;
    std::size_t attempts = 1;            ///< watchdog backoff level
    EventId watchdog = 0;                ///< 0 = unarmed
    std::uint32_t pending_request = 0;   ///< request messages in flight
    std::uint32_t pending_grant = 0;     ///< grant messages in flight
  };

  struct OutputState {
    bool busy = false;
    std::deque<NodeId> waiters;
    // --- Lossy control channel only ---------------------------------------
    /// Source the scheduler granted this output to (its lease subject).
    std::optional<NodeId> holder;
    TimeNs last_activity{};              ///< backs the idle-hold lease
    std::uint64_t lease_seq = 0;         ///< invalidates stale lease checks
    std::uint32_t pending_release = 0;   ///< release messages in flight
  };

  void start_next_message(NodeId src);
  /// Request reaches the scheduler (lossless control wire).
  void request_arrived(NodeId src);
  /// Lossy-channel variant: `dst` is the destination the request was sent
  /// for, so a delayed duplicate cannot grab an output the source no longer
  /// wants.
  void request_arrived_ctrl(NodeId src, NodeId dst);
  /// Allocate output `out` to `src` (sets the holder/lease under the lossy
  /// channel) and send the grant.
  void grant_to(NodeId out, NodeId src);
  /// Scheduler granted the circuit; grant is on its way back to the NIC.
  void grant_circuit(NodeId src);
  /// Grant arrived; transmit the message over the dedicated pipe.
  void transmit(NodeId src);
  /// Source finished transmitting; tear down or hold the circuit.
  void send_complete(NodeId src);
  /// Teardown notice reached the scheduler: free the port, serve waiters.
  void release_output(NodeId out);
  /// Free the output and serve the next waiter (shared tail of release and
  /// lease expiry).
  void free_output(NodeId out);
  /// Park `src` in `out`'s FIFO waiter queue. Idempotent: a source that is
  /// already parked (a retransmitted or resync-replayed request) keeps its
  /// original slot and the call returns false. Capacity is enforced: every
  /// source occupies at most one slot across the whole scheduler, so no
  /// waiter list can exceed `num_nodes`; the check turns a future protocol
  /// change that breaks that bound into a loud failure instead of silent
  /// queue growth.
  bool enqueue_waiter(NodeId out, NodeId src);
  /// Route a teardown notice over the (possibly lossy) control wire.
  void schedule_release(NodeId out);
  /// Fault reaction: poison in-flight transfers, drop held circuits on the
  /// dead link, resume stalled sources/waiters on repair.
  void on_link_change(NodeId node, bool up);

  // --- Lossy control channel only -----------------------------------------
  void send_request(NodeId src, NodeId dst, TimeNs latency);
  void send_grant_msg(NodeId src, NodeId dst);
  void grant_arrived(NodeId src, NodeId dst);
  void arm_watchdog(NodeId src);
  void on_watchdog(NodeId src);
  /// Arm (or re-arm) the idle-hold lease on output `out`.
  void arm_lease(NodeId out);
  void lease_check(NodeId out, std::uint64_t seq);

  Options options_;
  std::vector<SourceState> sources_;
  std::vector<OutputState> outputs_;
  /// Bumped by resync_control(); in-flight control events go inert.
  std::uint64_t ctrl_epoch_ = 0;
};

}  // namespace pmx
