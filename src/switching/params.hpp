#pragma once

#include <cstddef>
#include <cstdint>

#include "common/time.hpp"
#include "control/reopt_params.hpp"
#include "fabric/link.hpp"
#include "fault/control_fault.hpp"
#include "fault/fault_model.hpp"
#include "nic/admission.hpp"
#include "switching/slot_auditor.hpp"

namespace pmx {

/// All timing constants of the evaluated system (Section 5 of the paper),
/// in one place. The defaults reproduce the paper's 128-processor setup.
struct SystemParams {
  std::size_t num_nodes = 128;

  /// Serial link: 6.4 Gb/s, 10-foot cables, 30/20/30 ns serdes + wire.
  LinkModel::Params link{};

  /// Single-cycle NIC delay "to send or receive data".
  TimeNs nic_cycle{10};

  /// Propagation through a digital crossbar (wormhole baseline).
  TimeNs digital_switch_hop{10};
  /// Propagation through the LVDS/optical crossbar: <2 ns, neglected.
  TimeNs passive_switch_hop{0};

  /// One scheduling pass, ASIC estimate for the 128x128 SL array.
  TimeNs scheduler_latency{80};

  /// TDM slot clock period ("Each cycle is fixed at 100 ns or 80 bytes").
  TimeNs slot_length{100};
  /// Guard band at the end of each slot during which circuits must not be
  /// used (fabric reconfiguration + grant-line skew). With 20 ns of guard a
  /// 100 ns slot carries 64 usable bytes, matching the 64->80 byte knee the
  /// paper reports for the Scatter test.
  TimeNs guard_band{20};

  /// K: number of TDM configuration registers (the maximum multiplexing
  /// degree). Figure 4 uses 4; Figure 5 uses 3.
  std::size_t mux_degree = 4;

  /// Wormhole parameters: 8-byte flits, worms limited to 128 bytes.
  std::uint64_t flit_bytes = 8;
  std::uint64_t max_worm_bytes = 128;

  /// Fault injection and NIC retransmission. All rates default to zero, in
  /// which case the fault layer is not instantiated at all and the system
  /// behaves bit-identically to the fault-free design.
  FaultParams fault{};

  /// Control-plane fault injection (lossy request/grant/release channel)
  /// plus the NIC grant watchdog and scheduler lease that heal it. All
  /// rates default to zero: no control-fault machinery is instantiated.
  ControlFaultParams ctrl{};

  /// Periodic slot-state auditor (invariant checks, strict abort or
  /// resync recovery). Disabled by default.
  AuditParams audit{};

  /// NIC-side admission control: per-source VOQ capacity and the policy
  /// (backpressure / shed) applied at overflow. Capacities default to zero,
  /// in which case no admission machinery runs and the system behaves
  /// bit-identically to the unbounded design.
  AdmissionParams admission{};

  /// Online slot-table re-optimization service loop (DESIGN.md §14).
  /// Disabled by default (period_slots == 0): no service is instantiated
  /// and the system behaves bit-identically to the static design.
  ReoptParams reopt{};

  [[nodiscard]] LinkModel link_model() const { return LinkModel{link}; }

  /// Sanity-check the parameter set; called by every network constructor.
  void validate() const;

  /// Usable data window within one TDM slot.
  [[nodiscard]] TimeNs slot_window() const { return slot_length - guard_band; }
  /// Payload bytes transferable per connection per slot.
  [[nodiscard]] std::uint64_t slot_payload_bytes() const {
    return link_model().bytes_in(slot_window());
  }

  /// Head-of-line latency NIC-to-NIC through the passive (LVDS/optical)
  /// fabric: 30+20+0+20+30 = 100 ns.
  [[nodiscard]] TimeNs passive_path_latency() const {
    return link_model().through_passive_switch(passive_switch_hop);
  }
  /// Head latency through the digital fabric (wormhole): 30+20+10+20+30.
  [[nodiscard]] TimeNs digital_path_latency() const {
    return link_model().through_passive_switch(digital_switch_hop);
  }

  /// One-way control-message latency NIC <-> scheduler ("the cable delay of
  /// 80 ns to send the request"): p2s + wire + s2p.
  [[nodiscard]] TimeNs control_wire_latency() const {
    return link_model().segment_latency();
  }
};

}  // namespace pmx
