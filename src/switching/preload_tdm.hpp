#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "compiled/plan.hpp"
#include "control/demand_estimator.hpp"
#include "fabric/crossbar.hpp"
#include "nic/control_plane.hpp"
#include "nic/voq.hpp"
#include "sched/tdm_scheduler.hpp"
#include "sim/clock.hpp"
#include "switching/network.hpp"

namespace pmx {

/// Proactive (compiled-communication) multiplexed switching -- Section 3.1
/// applied to the Section 4 switch.
///
/// The whole workload is analyzed up front (compile/load time): each
/// barrier-delimited phase's working set W^(j) is decomposed into
/// conflict-free configurations. At run time no dynamic scheduling happens
/// at all; the network streams the precomputed configurations through the K
/// configuration registers, replacing a configuration as soon as its traffic
/// budget has drained (the compiler knows exactly how many bytes each
/// configuration will carry). Loading a register costs one scheduler pass
/// (80 ns), overlapped with traffic in the other slots.
class PreloadTdmNetwork final : public Network {
 public:
  PreloadTdmNetwork(Simulator& sim, const SystemParams& params,
                    CompiledPlan plan);

  [[nodiscard]] std::string name() const override { return "preload-tdm"; }

  [[nodiscard]] const TdmScheduler& scheduler() const { return sched_; }
  [[nodiscard]] std::size_t current_phase() const { return phase_; }
  [[nodiscard]] std::uint64_t queued_bytes() const;

  /// The EWMA demand estimator driving configuration load ranking, when
  /// params.reopt.enabled(). Preloaded plans are immutable (the compiler
  /// owns the tables), so this paradigm uses the service loop's estimator
  /// stage only: pending configurations are ranked by smoothed measured
  /// demand instead of instantaneous head-of-line bytes.
  [[nodiscard]] const DemandEstimator* demand_estimator() const {
    return demand_.get();
  }

 protected:
  void do_submit(const Message& msg) override;
  /// A retransmitted copy re-enters the NIC: its bytes are re-credited to
  /// the compiled configuration budget so the phase does not retire before
  /// the copy has actually crossed the fabric.
  void do_retransmit(const Message& msg) override;
  void on_message_settled(const Message& msg) override;
  void audit_control(std::vector<std::string>& out) override;
  void resync_control() override;
  [[nodiscard]] std::uint64_t source_queue_bytes(NodeId src) const override {
    return voqs_[src].total_bytes();
  }
  [[nodiscard]] std::size_t source_queue_msgs(NodeId src) const override {
    return voqs_[src].total_depth();
  }
  std::optional<Message> remove_shed_victim(NodeId src, bool oldest,
                                            TimeNs cutoff) override;
  /// A shed message's bytes will never cross the fabric, yet the compiled
  /// budget expects them: credit the configuration so the phase can retire.
  void on_message_shed(const Message& msg) override;

 private:
  void on_slot_tick();
  /// Scheduler-side arrival of a request/release message (lossy control
  /// channel only). Configurations are preloaded directly, so R only feeds
  /// the skip-unrequested-slots rotation -- there is no grant line.
  void apply_request(NodeId u, NodeId v, bool value);
  /// Clear request bits whose NIC went silent past the lease (lost release).
  void lease_scan();
  /// Load pending configurations of the current phase into free slots.
  void fill_free_slots();
  /// Demand-window roll tick (reopt service period): fold VOQ occupancy
  /// into the window, then roll the EWMA.
  void on_demand_roll();
  /// True when every configuration of the current phase has drained.
  [[nodiscard]] bool phase_drained() const;
  /// Move to the next phase once the current one drains.
  void maybe_advance_phase();

  TdmScheduler sched_;
  Crossbar xbar_;
  std::vector<VoqSet> voqs_;
  /// Lossy request/release endpoints (no grant line); nullptr when the
  /// control-fault layer is off.
  std::unique_ptr<ControlPlane> plane_;
  CompiledPlan plan_;

  std::size_t phase_ = 0;
  std::vector<std::uint64_t> config_sent_;
  /// Bytes shed from not-yet-current phases, by [phase][config]: applied as
  /// starting credit when the phase is entered (lazily sized).
  std::vector<std::vector<std::uint64_t>> shed_credit_;
  /// Per-phase count of messages still inside the reliability state machine
  /// (fault layer only). A phase is held open until its count hits zero so
  /// retransmissions never cross a phase boundary.
  std::vector<std::uint64_t> phase_unsettled_;
  bool retransmitting_ = false;
  /// Which plan configuration each scheduler slot currently holds.
  std::vector<std::optional<std::size_t>> slot_config_;
  /// Consecutive slots with queued traffic but no transmission.
  std::uint64_t stall_slots_ = 0;

  /// Estimator stage of the re-optimization service (load ranking only);
  /// nullptr when params.reopt is disabled.
  std::unique_ptr<DemandEstimator> demand_;
  std::unique_ptr<Clock> demand_clock_;

  Clock slot_clock_;
};

}  // namespace pmx
