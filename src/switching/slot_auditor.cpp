#include "switching/slot_auditor.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace pmx {

void AuditParams::validate() const {
  PMX_CHECK(period_slots >= 1, "audit period must be at least one slot");
}

SlotAuditor::SlotAuditor(Simulator& sim, const AuditParams& params,
                         TimeNs slot_length)
    : sim_(sim),
      params_(params),
      clock_(sim, slot_length * static_cast<std::int64_t>(params.period_slots),
             [this] { audit_now(); }) {
  params_.validate();
  PMX_CHECK(slot_length > TimeNs::zero(), "audit needs a positive slot");
}

void SlotAuditor::add_check(std::string name, CheckFn fn) {
  checks_.emplace_back(std::move(name), std::move(fn));
}

void SlotAuditor::start() { clock_.start(clock_.period()); }

void SlotAuditor::audit_now() {
  ++stats_.audits;
  last_violations_.clear();
  for (const auto& [name, check] : checks_) {
    const std::size_t before = last_violations_.size();
    check(last_violations_);
    for (std::size_t i = before; i < last_violations_.size(); ++i) {
      last_violations_[i] = name + ": " + last_violations_[i];
    }
  }

  if (last_violations_.empty()) {
    if (in_violation_) {
      // Episode healed: the resync (or the paradigm's own watchdog/lease
      // machinery) brought the views back into agreement.
      in_violation_ = false;
      ++stats_.recoveries;
      const TimeNs took = sim_.now() - episode_start_;
      stats_.recovery_total += took;
      stats_.recovery_max = std::max(stats_.recovery_max, took);
    }
    return;
  }

  ++stats_.violating_audits;
  stats_.violations += last_violations_.size();
  if (params_.strict) {
    std::string all = "slot audit failed:";
    for (const auto& v : last_violations_) {
      all += "\n    " + v;
    }
    PMX_CHECK(false, all.c_str());
  }
  if (!in_violation_) {
    in_violation_ = true;
    episode_start_ = sim_.now();
  }
  if (resync_) {
    ++stats_.resyncs;
    resync_();
  }
}

}  // namespace pmx
