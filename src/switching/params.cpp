#include "switching/params.hpp"

#include "common/assert.hpp"

namespace pmx {

void SystemParams::validate() const {
  PMX_CHECK(num_nodes >= 2, "system needs at least two nodes");
  PMX_CHECK(link.bandwidth_dgbps > 0, "link bandwidth must be positive");
  PMX_CHECK(nic_cycle >= TimeNs::zero(), "negative NIC cycle");
  PMX_CHECK(scheduler_latency > TimeNs::zero(),
            "scheduler latency must be positive");
  PMX_CHECK(slot_length > TimeNs::zero(), "slot length must be positive");
  PMX_CHECK(guard_band >= TimeNs::zero() && guard_band < slot_length,
            "guard band must be shorter than the slot");
  PMX_CHECK(slot_payload_bytes() > 0,
            "slot data window carries no payload at this link rate");
  PMX_CHECK(mux_degree >= 1, "multiplexing degree must be at least 1");
  PMX_CHECK(flit_bytes > 0 && max_worm_bytes >= flit_bytes,
            "worm limit must fit at least one flit");
  fault.validate(num_nodes);
  ctrl.validate(slot_length);
  audit.validate();
  admission.validate();
  reopt.validate();
}

}  // namespace pmx
