#include "switching/wormhole.hpp"

#include <algorithm>
#include <string>

#include "common/assert.hpp"

namespace pmx {

WormholeNetwork::WormholeNetwork(Simulator& sim, const SystemParams& params)
    : Network(sim, params),
      sources_(params.num_nodes, SourceState(params.num_nodes)),
      output_busy_(params.num_nodes, false),
      output_rr_(params.num_nodes, 0) {
  if (admission_enabled()) {
    for (auto& src : sources_) {
      src.voqs.set_capacity(params.admission.capacity_bytes,
                            params.admission.capacity_msgs);
    }
  }
  if (FaultModel* fm = fault_model()) {
    fm->subscribe([this](NodeId node, bool up) { on_link_change(node, up); });
  }
}

std::optional<Message> WormholeNetwork::remove_shed_victim(NodeId src_id,
                                                           bool oldest,
                                                           TimeNs cutoff) {
  SourceState& src = sources_[src_id];
  const std::optional<NodeId> protect =
      src.busy ? std::optional<NodeId>(src.active_dst) : std::nullopt;
  return src.voqs.evict(oldest, cutoff, protect);
}

void WormholeNetwork::on_link_change(NodeId node, bool up) {
  if (!up) {
    // Worms crossing the dead link lose flits; the end-to-end CRC over the
    // whole message fails and the NIC retransmits the message.
    for (NodeId u = 0; u < params_.num_nodes; ++u) {
      SourceState& src = sources_[u];
      if (src.busy && (u == node || src.active_dst == node)) {
        mark_poisoned(src.active_msg);
      }
    }
    return;
  }
  // Repair: idle inputs may now have dispatchable traffic again (either
  // their own link returned or the repaired output unblocks a VOQ).
  for (NodeId u = 0; u < params_.num_nodes; ++u) {
    if (!sources_[u].busy) {
      try_dispatch(u);
    }
  }
}

std::uint64_t WormholeNetwork::queued_bytes() const {
  std::uint64_t total = 0;
  for (const auto& src : sources_) {
    total += src.voqs.total_bytes();
  }
  return total;
}

void WormholeNetwork::do_submit(const Message& msg) {
  sources_[msg.src].voqs.push(msg);
  // One NIC cycle before the freshly queued message can contend.
  sim_.schedule_after(params_.nic_cycle,
                      [this, src = msg.src] { try_dispatch(src); });
}

void WormholeNetwork::try_dispatch(NodeId src_id) {
  SourceState& src = sources_[src_id];
  if (src.busy) {
    return;
  }
  const FaultModel* fm = fault_model();
  if (fm != nullptr && !fm->link_up(src_id)) {
    return;  // input cable dead: nothing leaves this NIC until repair
  }
  const std::size_t n = params_.num_nodes;
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId v = (src.rr + i) % n;
    if (src.voqs.empty(v) || output_busy_[v]) {
      continue;
    }
    if (fm != nullptr && !fm->link_up(v)) {
      continue;  // output cable dead: keep the VOQ queued until repair
    }
    if (ControlFaultModel* cf = control_fault()) {
      // The head-flit arbitration request crosses the lossy control plane.
      const auto verdict = cf->decide(CtrlMsg::kRequest);
      if (verdict == ControlFaultModel::Verdict::kDelay) {
        if (!src.retry_armed) {
          src.retry_armed = true;
          sim_.schedule_after(cf->params().delay, [this, src_id] {
            sources_[src_id].retry_armed = false;
            try_dispatch(src_id);
          });
        }
        return;
      }
      if (verdict != ControlFaultModel::Verdict::kDeliver) {
        // Lost (or corrupted) arbitration request: the arbiter never saw
        // it, so no ports are reserved. Without healing the source stays
        // idle until some other wake-up -- the wedge the auditor hunts.
        if (params_.ctrl.heal && !src.retry_armed) {
          src.retry_armed = true;
          counters().counter("ctrl_rerequests") += 1;
          const TimeNs delay = cf->watchdog_delay(src.attempts);
          ++src.attempts;
          sim_.schedule_after(delay, [this, src_id] {
            sources_[src_id].retry_armed = false;
            try_dispatch(src_id);
          });
        }
        return;
      }
      src.attempts = 1;
    }
    src.rr = (v + 1) % n;
    src.busy = true;
    src.active_dst = v;
    src.active_msg = src.voqs.head(v).id;
    output_busy_[v] = true;
    const std::uint64_t worm_bytes =
        std::min(src.voqs.head_remaining(v), params_.max_worm_bytes);
    counters().counter("worms") += 1;
    // Head-flit arbitration (80 ns) + flit stream at line rate; input and
    // output are both held for the duration.
    const TimeNs duration =
        params_.scheduler_latency + link_.serialization(worm_bytes);
    sim_.schedule_after(duration, [this, src_id, v, worm_bytes] {
      worm_done(src_id, v, worm_bytes);
    });
    return;
  }
  counters().counter("dispatch_misses") += 1;
}

void WormholeNetwork::worm_done(NodeId src_id, NodeId dst,
                                std::uint64_t worm_bytes) {
  SourceState& src = sources_[src_id];
  Message completed;
  const std::uint64_t taken = src.voqs.consume(dst, worm_bytes, &completed);
  PMX_CHECK(taken == worm_bytes, "worm consumed unexpected byte count");
  if (completed.id != 0) {
    const TimeNs send_done = sim_.now();
    // The tail of the message still crosses the digital fabric: cable +
    // switch head latency is charged once per message (later worms were
    // buffered in the switch), plus the receive-side NIC cycle.
    notify_send_done(completed, send_done);
    notify_delivered(completed, send_done,
                     send_done + params_.digital_path_latency() +
                         params_.nic_cycle);
  }

  src.busy = false;
  output_busy_[dst] = false;

  // Fairness: wake a *different* input waiting for this output before the
  // just-served input can re-take it (the worm size limit exists precisely
  // so competing messages interleave at worm granularity). The round-robin
  // scan starts just past the input that was served.
  output_rr_[dst] = (src_id + 1) % params_.num_nodes;
  const std::size_t n = params_.num_nodes;
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId u = (output_rr_[dst] + i) % n;
    if (!sources_[u].busy && !sources_[u].voqs.empty(dst)) {
      output_rr_[dst] = (u + 1) % n;
      try_dispatch(u);
      break;
    }
  }
  // Then the freed input picks its next worm (possibly another output).
  try_dispatch(src_id);
}

void WormholeNetwork::audit_control(std::vector<std::string>& out) {
  if (!control_faulty()) {
    return;
  }
  const FaultModel* fm = fault_model();
  const std::size_t n = params_.num_nodes;
  for (NodeId u = 0; u < n; ++u) {
    SourceState& src = sources_[u];
    if (src.busy || src.retry_armed || (fm != nullptr && !fm->link_up(u))) {
      src.audit_stall = false;
      continue;
    }
    bool dispatchable = false;
    for (NodeId v = 0; v < n && !dispatchable; ++v) {
      dispatchable = !src.voqs.empty(v) && !output_busy_[v] &&
                     (fm == nullptr || fm->link_up(v));
    }
    if (!dispatchable) {
      src.audit_stall = false;
      continue;
    }
    // Idle with dispatchable traffic and no retry pending. Transient
    // matching gaps resolve within one audit period, so only flag a source
    // seen stalled on two consecutive audits.
    if (src.audit_stall) {
      out.push_back("wedged wormhole input " + std::to_string(u) +
                    ": dispatchable traffic but no worm and no retry "
                    "pending across two audits");
    } else {
      src.audit_stall = true;
    }
  }
}

void WormholeNetwork::resync_control() {
  if (!control_faulty()) {
    return;
  }
  for (SourceState& src : sources_) {
    src.attempts = 1;
    src.audit_stall = false;
  }
  // Re-run the matching for every idle input (in id order, the same order
  // worm_done wake-ups use).
  for (NodeId u = 0; u < params_.num_nodes; ++u) {
    if (!sources_[u].busy && !sources_[u].retry_armed) {
      try_dispatch(u);
    }
  }
}

}  // namespace pmx
