#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "core/params.hpp"
#include "nic/message.hpp"
#include "sim/simulator.hpp"

namespace pmx {

/// Common interface of all switching paradigms (wormhole, circuit switching,
/// dynamic TDM, preloaded TDM). Each network model owns its control state
/// and shares the Simulator with the traffic driver; completed messages are
/// recorded uniformly so the benchmark harness can compute identical metrics
/// for every paradigm.
class Network {
 public:
  /// Invoked (as a simulation event) when the last byte of a message has
  /// left the source NIC; the traffic driver issues the node's next command
  /// on this edge.
  using SendDoneFn = std::function<void(const Message&)>;
  /// Invoked when the last byte arrives at the destination NIC.
  using DeliveredFn = std::function<void(const MessageRecord&)>;

  Network(Simulator& sim, const SystemParams& params);
  virtual ~Network() = default;
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Hand a message to the source NIC. Submission is the only entry point;
  /// timestamping happens here.
  Message submit(NodeId src, NodeId dst, std::uint64_t bytes,
                 std::size_t phase = 0);

  /// Compiler hint (Section 3.3): a communication-locality boundary was
  /// crossed; dynamically learned state should be discarded.
  virtual void flush_hint() {}

  void set_send_done_handler(SendDoneFn fn) { send_done_ = std::move(fn); }
  void set_delivered_handler(DeliveredFn fn) { delivered_ = std::move(fn); }

  [[nodiscard]] const std::vector<MessageRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::uint64_t delivered_bytes() const {
    return delivered_bytes_;
  }
  [[nodiscard]] std::size_t delivered_count() const { return records_.size(); }
  [[nodiscard]] std::size_t submitted_count() const {
    return static_cast<std::size_t>(next_id_ - 1);
  }
  /// Time the last record was delivered (zero when nothing delivered).
  [[nodiscard]] TimeNs last_delivery() const { return last_delivery_; }

  [[nodiscard]] const SystemParams& params() const { return params_; }
  [[nodiscard]] CounterSet& counters() { return counters_; }
  [[nodiscard]] const CounterSet& counters() const { return counters_; }

 protected:
  /// Paradigm-specific acceptance of a submitted message.
  virtual void do_submit(const Message& msg) = 0;

  /// Record completion of the source side and fire the send-done handler.
  /// `when` must be >= now; the callback runs as an event at that time.
  void notify_send_done(const Message& msg, TimeNs when);
  /// Record delivery and fire the delivered handler at `when`.
  void notify_delivered(const Message& msg, TimeNs send_done, TimeNs when);

  Simulator& sim_;
  SystemParams params_;
  LinkModel link_;

 private:
  SendDoneFn send_done_;
  DeliveredFn delivered_;
  std::vector<MessageRecord> records_;
  std::uint64_t delivered_bytes_ = 0;
  TimeNs last_delivery_{};
  MessageId next_id_ = 1;
  CounterSet counters_;
};

}  // namespace pmx
