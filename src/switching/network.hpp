#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/stats.hpp"
#include "core/params.hpp"
#include "core/slot_auditor.hpp"
#include "fault/control_fault.hpp"
#include "fault/fault_model.hpp"
#include "nic/message.hpp"
#include "sim/simulator.hpp"

namespace pmx {

/// One hard-fault episode and how long delivery took to resume across the
/// failed link (metrics: "time to recover").
struct RecoveryRecord {
  NodeId node = 0;
  TimeNs down{};                     ///< when the link failed
  std::optional<TimeNs> repaired;    ///< when it came back (if it did)
  std::optional<TimeNs> recovered;   ///< first clean delivery touching the
                                     ///< node after the fault
};

/// Common interface of all switching paradigms (wormhole, circuit switching,
/// dynamic TDM, preloaded TDM). Each network model owns its control state
/// and shares the Simulator with the traffic driver; completed messages are
/// recorded uniformly so the benchmark harness can compute identical metrics
/// for every paradigm.
///
/// When `params.fault.enabled()`, the base class additionally owns the
/// FaultModel and a NIC reliability layer shared by every paradigm:
/// messages are sequence-numbered (their MessageId), the receiver models a
/// CRC check over the payload, corrupted arrivals are NACKed and
/// retransmitted with exponential backoff under a bounded retry budget,
/// lost ACKs trigger timeout retransmissions whose duplicates the receiver
/// suppresses. Derived classes only decide *how* a retransmitted copy
/// re-enters the NIC (do_retransmit) and may mark in-flight transfers as
/// poisoned when a hard fault cuts the link under them.
class Network {
 public:
  /// Invoked (as a simulation event) when the last byte of a message has
  /// left the source NIC; the traffic driver issues the node's next command
  /// on this edge. Fired once per message (the first attempt), never for
  /// retransmissions.
  using SendDoneFn = std::function<void(const Message&)>;
  /// Invoked when the last byte arrives at the destination NIC.
  using DeliveredFn = std::function<void(const MessageRecord&)>;
  /// Invoked when the NIC permanently drops a message after exhausting its
  /// retry budget (fault layer only). Progress accounting must treat the
  /// message as resolved or a dead link would hang the run forever.
  using DroppedFn = std::function<void(const Message&)>;

  Network(Simulator& sim, const SystemParams& params);
  virtual ~Network() = default;
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Hand a message to the source NIC. Submission is the only entry point;
  /// timestamping happens here.
  Message submit(NodeId src, NodeId dst, std::uint64_t bytes,
                 std::size_t phase = 0);

  /// Compiler hint (Section 3.3): a communication-locality boundary was
  /// crossed; dynamically learned state should be discarded.
  virtual void flush_hint() {}

  void set_send_done_handler(SendDoneFn fn) { send_done_ = std::move(fn); }
  void set_delivered_handler(DeliveredFn fn) { delivered_ = std::move(fn); }
  void set_dropped_handler(DroppedFn fn) { dropped_fn_ = std::move(fn); }

  [[nodiscard]] const std::vector<MessageRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::uint64_t delivered_bytes() const {
    return delivered_bytes_;
  }
  [[nodiscard]] std::size_t delivered_count() const { return records_.size(); }
  [[nodiscard]] std::size_t submitted_count() const {
    return static_cast<std::size_t>(next_id_ - 1);
  }
  /// Time the last record was delivered (zero when nothing delivered).
  [[nodiscard]] TimeNs last_delivery() const { return last_delivery_; }

  [[nodiscard]] const SystemParams& params() const { return params_; }
  [[nodiscard]] CounterSet& counters() { return counters_; }
  [[nodiscard]] const CounterSet& counters() const { return counters_; }

  // --- Fault tolerance ----------------------------------------------------
  /// True when the fault model and the NIC reliability layer are active.
  [[nodiscard]] bool fault_tolerant() const { return fault_ != nullptr; }
  [[nodiscard]] FaultModel* fault_model() { return fault_.get(); }
  [[nodiscard]] const FaultModel* fault_model() const { return fault_.get(); }
  /// Bytes that crossed the fabric, including retransmitted copies (equals
  /// delivered_bytes() when nothing ever failed; zero when the fault layer
  /// is disabled -- use delivered_bytes() then).
  [[nodiscard]] std::uint64_t wire_bytes() const { return wire_bytes_; }
  /// Messages submitted but not yet delivered clean nor dropped.
  [[nodiscard]] std::size_t outstanding_reliable() const {
    return outstanding_;
  }
  /// Messages permanently dropped after exhausting the retry budget.
  [[nodiscard]] std::size_t dropped_messages() const { return dropped_; }
  /// Hard-fault episodes observed by this network, with recovery times.
  [[nodiscard]] const std::vector<RecoveryRecord>& recoveries() const {
    return recoveries_;
  }

  // --- Control-plane fault tolerance --------------------------------------
  /// True when the lossy control channel is active.
  [[nodiscard]] bool control_faulty() const { return ctrl_ != nullptr; }
  [[nodiscard]] ControlFaultModel* control_fault() { return ctrl_.get(); }
  [[nodiscard]] const ControlFaultModel* control_fault() const {
    return ctrl_.get();
  }
  /// The periodic invariant auditor, when params.audit.enabled.
  [[nodiscard]] SlotAuditor* auditor() { return auditor_.get(); }
  [[nodiscard]] const SlotAuditor* auditor() const { return auditor_.get(); }

 protected:
  /// Paradigm-specific acceptance of a submitted message.
  virtual void do_submit(const Message& msg) = 0;
  /// Paradigm-specific acceptance of a retransmitted copy. The default
  /// re-enters through do_submit (same VOQ/FIFO path as a fresh message);
  /// paradigms with compiled traffic budgets override this to re-credit
  /// the retransmitted bytes.
  virtual void do_retransmit(const Message& msg) { do_submit(msg); }
  /// A message left the reliability state machine for good: acknowledged
  /// clean, dropped after the retry budget, or abandoned after repeated ACK
  /// loss. No further retransmitted copy of it will ever enter the network.
  /// Paradigms with phase-scoped budgets hook this to know when a phase can
  /// safely retire. Only fired when the fault layer is active.
  virtual void on_message_settled(const Message& msg) { (void)msg; }

  /// Record completion of the source side and fire the send-done handler.
  /// `when` must be >= now; the callback runs as an event at that time.
  void notify_send_done(const Message& msg, TimeNs when);
  /// Record delivery and fire the delivered handler at `when`. With the
  /// fault layer active this is the CRC/ACK decision point instead.
  void notify_delivered(const Message& msg, TimeNs send_done, TimeNs when);

  /// Mark an in-flight transfer as corrupted by a hard fault: its next
  /// arrival fails the CRC check regardless of the transient-error draw.
  /// Called by paradigms when a link dies under an active transfer.
  void mark_poisoned(MessageId id);

  /// Paradigm-specific control-plane audit: append one line per violated
  /// invariant (leaked crosspoints, wedged NICs, scheduler parity). Runs as
  /// an auditor check, i.e. at event time, never from the constructor.
  virtual void audit_control(std::vector<std::string>& out) { (void)out; }
  /// Paradigm-specific full NIC <-> scheduler state resync (auditor
  /// recovery mode): rebuild the scheduler's view from NIC ground truth.
  virtual void resync_control() {}

  Simulator& sim_;
  SystemParams params_;
  LinkModel link_;

 private:
  /// Per-message ARQ state (stop-and-wait per message id).
  struct ArqState {
    std::size_t attempts = 1;
    bool send_done_fired = false;
    bool recorded = false;  ///< a clean copy reached the receiver
  };

  void record_delivery(const Message& msg, TimeNs send_done);
  void handle_arrival(const Message& msg, TimeNs send_done, bool corrupt);
  void schedule_retransmit(const Message& msg, TimeNs extra_delay);
  void on_link_event(NodeId node, bool up);
  void note_recovery(const Message& msg);
  /// Message conservation: injected == delivered + dropped + in-flight.
  void audit_conservation(std::vector<std::string>& out) const;

  SendDoneFn send_done_;
  DeliveredFn delivered_;
  DroppedFn dropped_fn_;
  std::vector<MessageRecord> records_;
  std::uint64_t delivered_bytes_ = 0;
  TimeNs last_delivery_{};
  MessageId next_id_ = 1;
  CounterSet counters_;

  std::unique_ptr<FaultModel> fault_;
  std::unique_ptr<ControlFaultModel> ctrl_;
  std::unique_ptr<SlotAuditor> auditor_;
  std::unordered_map<MessageId, ArqState> arq_;
  std::unordered_set<MessageId> poisoned_;
  std::vector<RecoveryRecord> recoveries_;
  std::size_t unrecovered_ = 0;
  std::uint64_t wire_bytes_ = 0;
  std::size_t outstanding_ = 0;
  std::size_t dropped_ = 0;
};

}  // namespace pmx
