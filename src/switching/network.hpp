#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/message.hpp"
#include "common/stats.hpp"
#include "fault/control_fault.hpp"
#include "fault/fault_model.hpp"
#include "sim/simulator.hpp"
#include "switching/params.hpp"
#include "switching/slot_auditor.hpp"

namespace pmx {

struct ReoptStats;  // control/reconfig_applier.hpp

/// One hard-fault episode and how long delivery took to resume across the
/// failed link (metrics: "time to recover").
struct RecoveryRecord {
  NodeId node = 0;
  TimeNs down{};                     ///< when the link failed
  std::optional<TimeNs> repaired;    ///< when it came back (if it did)
  std::optional<TimeNs> recovered;   ///< first clean delivery touching the
                                     ///< node after the fault
};

/// Common interface of all switching paradigms (wormhole, circuit switching,
/// dynamic TDM, preloaded TDM). Each network model owns its control state
/// and shares the Simulator with the traffic driver; completed messages are
/// recorded uniformly so the benchmark harness can compute identical metrics
/// for every paradigm.
///
/// When `params.fault.enabled()`, the base class additionally owns the
/// FaultModel and a NIC reliability layer shared by every paradigm:
/// messages are sequence-numbered (their MessageId), the receiver models a
/// CRC check over the payload, corrupted arrivals are NACKed and
/// retransmitted with exponential backoff under a bounded retry budget,
/// lost ACKs trigger timeout retransmissions whose duplicates the receiver
/// suppresses. Derived classes only decide *how* a retransmitted copy
/// re-enters the NIC (do_retransmit) and may mark in-flight transfers as
/// poisoned when a hard fault cuts the link under them.
class Network {
 public:
  /// Invoked (as a simulation event) when the last byte of a message has
  /// left the source NIC; the traffic driver issues the node's next command
  /// on this edge. Fired once per message (the first attempt), never for
  /// retransmissions.
  using SendDoneFn = std::function<void(const Message&)>;
  /// Invoked when the last byte arrives at the destination NIC.
  using DeliveredFn = std::function<void(const MessageRecord&)>;
  /// Invoked when the NIC permanently drops a message after exhausting its
  /// retry budget (fault layer only). Progress accounting must treat the
  /// message as resolved or a dead link would hang the run forever.
  using DroppedFn = std::function<void(const Message&)>;
  /// Invoked synchronously when the admission controller sheds a message
  /// (overflow verdict at submit, or a queued victim pushed out to make
  /// room). Like drops, shed messages count as resolved for progress
  /// accounting -- overload can never wedge a run.
  using ShedFn = std::function<void(const Message&)>;

  /// Admission verdict of try_submit().
  enum class SubmitStatus : std::uint8_t {
    kAccepted,      ///< message entered the source NIC's queues
    kShed,          ///< message was counted as submitted, then shed
    kBackpressure,  ///< queue full, nothing submitted: retry later
  };
  struct SubmitOutcome {
    SubmitStatus status = SubmitStatus::kAccepted;
    Message msg{};  ///< valid unless status == kBackpressure
  };

  Network(Simulator& sim, const SystemParams& params);
  virtual ~Network() = default;
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Hand a message to the source NIC. Submission is the only entry point;
  /// timestamping happens here. With admission control armed the message
  /// may be shed (the outcome says so); under the backpressure policy a
  /// full queue refuses the submission entirely and the caller must retry.
  SubmitOutcome try_submit(NodeId src, NodeId dst, std::uint64_t bytes,
                           std::size_t phase = 0);
  /// try_submit for callers that cannot handle backpressure (tests, closed
  /// workloads): aborts if the submission was refused.
  Message submit(NodeId src, NodeId dst, std::uint64_t bytes,
                 std::size_t phase = 0);

  /// Compiler hint (Section 3.3): a communication-locality boundary was
  /// crossed; dynamically learned state should be discarded.
  virtual void flush_hint() {}

  void set_send_done_handler(SendDoneFn fn) { send_done_ = std::move(fn); }
  void set_delivered_handler(DeliveredFn fn) { delivered_ = std::move(fn); }
  void set_dropped_handler(DroppedFn fn) { dropped_fn_ = std::move(fn); }
  void set_shed_handler(ShedFn fn) { shed_fn_ = std::move(fn); }

  [[nodiscard]] const std::vector<MessageRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::uint64_t delivered_bytes() const {
    return delivered_bytes_;
  }
  [[nodiscard]] std::size_t delivered_count() const { return records_.size(); }
  [[nodiscard]] std::size_t submitted_count() const {
    return static_cast<std::size_t>(next_id_ - 1);
  }
  /// Time the last record was delivered (zero when nothing delivered).
  [[nodiscard]] TimeNs last_delivery() const { return last_delivery_; }

  // --- Admission control / overload ---------------------------------------
  /// True when the admission controller (bounded VOQs) is armed.
  [[nodiscard]] bool admission_enabled() const {
    return params_.admission.enabled();
  }
  /// Messages shed by the admission controller (counted as submitted).
  [[nodiscard]] std::size_t shed_messages() const { return shed_; }
  [[nodiscard]] std::uint64_t shed_bytes() const { return shed_bytes_; }
  /// Total payload bytes ever submitted (including shed messages).
  [[nodiscard]] std::uint64_t submitted_bytes() const {
    return submitted_bytes_;
  }
  /// Submission window, for offered-load accounting. Zero-valued when
  /// nothing was submitted.
  [[nodiscard]] TimeNs first_submit() const { return first_submit_; }
  [[nodiscard]] TimeNs last_submit() const { return last_submit_; }
  /// Source-queue depth (bytes) sampled at every admitted submission.
  /// Only collected while admission control is armed.
  [[nodiscard]] const std::vector<std::uint64_t>& depth_samples() const {
    return depth_samples_;
  }

  [[nodiscard]] const SystemParams& params() const { return params_; }
  [[nodiscard]] CounterSet& counters() { return counters_; }
  [[nodiscard]] const CounterSet& counters() const { return counters_; }

  // --- Fault tolerance ----------------------------------------------------
  /// True when the fault model and the NIC reliability layer are active.
  [[nodiscard]] bool fault_tolerant() const { return fault_ != nullptr; }
  [[nodiscard]] FaultModel* fault_model() { return fault_.get(); }
  [[nodiscard]] const FaultModel* fault_model() const { return fault_.get(); }
  /// Bytes that crossed the fabric, including retransmitted copies (equals
  /// delivered_bytes() when nothing ever failed; zero when the fault layer
  /// is disabled -- use delivered_bytes() then).
  [[nodiscard]] std::uint64_t wire_bytes() const { return wire_bytes_; }
  /// Messages submitted but not yet delivered clean nor dropped.
  [[nodiscard]] std::size_t outstanding_reliable() const {
    return outstanding_;
  }
  /// Messages permanently dropped after exhausting the retry budget.
  [[nodiscard]] std::size_t dropped_messages() const { return dropped_; }
  /// Hard-fault episodes observed by this network, with recovery times.
  [[nodiscard]] const std::vector<RecoveryRecord>& recoveries() const {
    return recoveries_;
  }

  // --- Control-plane fault tolerance --------------------------------------
  /// True when the lossy control channel is active.
  [[nodiscard]] bool control_faulty() const { return ctrl_ != nullptr; }
  [[nodiscard]] ControlFaultModel* control_fault() { return ctrl_.get(); }
  [[nodiscard]] const ControlFaultModel* control_fault() const {
    return ctrl_.get();
  }
  /// The periodic invariant auditor, when params.audit.enabled.
  [[nodiscard]] SlotAuditor* auditor() { return auditor_.get(); }
  [[nodiscard]] const SlotAuditor* auditor() const { return auditor_.get(); }

  // --- Re-optimization service ---------------------------------------------
  /// Disruption accounting of the online re-optimization service loop, or
  /// null for paradigms without one (or with the service disabled).
  [[nodiscard]] virtual const ReoptStats* reopt_stats() const {
    return nullptr;
  }

 protected:
  /// Paradigm-specific acceptance of a submitted message.
  virtual void do_submit(const Message& msg) = 0;
  /// Paradigm-specific acceptance of a retransmitted copy. The default
  /// re-enters through do_submit (same VOQ/FIFO path as a fresh message);
  /// paradigms with compiled traffic budgets override this to re-credit
  /// the retransmitted bytes.
  virtual void do_retransmit(const Message& msg) { do_submit(msg); }
  /// A message left the reliability state machine for good: acknowledged
  /// clean, dropped after the retry budget, or abandoned after repeated ACK
  /// loss. No further retransmitted copy of it will ever enter the network.
  /// Paradigms with phase-scoped budgets hook this to know when a phase can
  /// safely retire. Only fired when the fault layer is active.
  virtual void on_message_settled(const Message& msg) { (void)msg; }

  /// Record completion of the source side and fire the send-done handler.
  /// `when` must be >= now; the callback runs as an event at that time.
  void notify_send_done(const Message& msg, TimeNs when);
  /// Record delivery and fire the delivered handler at `when`. With the
  /// fault layer active this is the CRC/ACK decision point instead.
  void notify_delivered(const Message& msg, TimeNs send_done, TimeNs when);

  /// Mark an in-flight transfer as corrupted by a hard fault: its next
  /// arrival fails the CRC check regardless of the transient-error draw.
  /// Called by paradigms when a link dies under an active transfer.
  void mark_poisoned(MessageId id);

  /// Paradigm-specific control-plane audit: append one line per violated
  /// invariant (leaked crosspoints, wedged NICs, scheduler parity). Runs as
  /// an auditor check, i.e. at event time, never from the constructor.
  virtual void audit_control(std::vector<std::string>& out) { (void)out; }
  /// Paradigm-specific full NIC <-> scheduler state resync (auditor
  /// recovery mode): rebuild the scheduler's view from NIC ground truth.
  virtual void resync_control() {}

  // --- Admission hooks (overridden by paradigms with bounded queues) ------
  /// Bytes currently queued at the source NIC awaiting transmission.
  [[nodiscard]] virtual std::uint64_t source_queue_bytes(NodeId src) const {
    (void)src;
    return 0;
  }
  /// Messages currently queued at the source NIC.
  [[nodiscard]] virtual std::size_t source_queue_msgs(NodeId src) const {
    (void)src;
    return 0;
  }
  /// Remove and return one shed victim from the source queue: the oldest
  /// (`oldest`) or youngest fully-unsent message with submit_time <= cutoff.
  /// Returns nullopt when nothing qualifies (everything is in flight).
  virtual std::optional<Message> remove_shed_victim(NodeId src, bool oldest,
                                                    TimeNs cutoff) {
    (void)src;
    (void)oldest;
    (void)cutoff;
    return std::nullopt;
  }
  /// A message was shed -- either refused at submit or evicted from the
  /// source queue. Paradigms with compiled traffic budgets re-credit the
  /// bytes here so the schedule does not hold slots for dead traffic.
  virtual void on_message_shed(const Message& msg) { (void)msg; }

  Simulator& sim_;
  SystemParams params_;
  LinkModel link_;

 private:
  /// Per-message ARQ state (stop-and-wait per message id).
  struct ArqState {
    std::size_t attempts = 1;
    bool send_done_fired = false;
    bool recorded = false;  ///< a clean copy reached the receiver
  };

  void record_delivery(const Message& msg, TimeNs send_done);
  void handle_arrival(const Message& msg, TimeNs send_done, bool corrupt);
  void schedule_retransmit(const Message& msg, TimeNs extra_delay);
  void on_link_event(NodeId node, bool up);
  void note_recovery(const Message& msg);
  /// Message conservation: injected == delivered + dropped + shed +
  /// in-flight.
  void audit_conservation(std::vector<std::string>& out) const;
  /// Stamp a fresh message: allocates the id and updates the submission
  /// ledgers (counter, byte totals, submission window).
  Message make_message(NodeId src, NodeId dst, std::uint64_t bytes,
                       std::size_t phase);
  /// Retire a shed message: counters, ARQ/settlement bookkeeping when the
  /// victim was already queued, the paradigm hook, and the shed handler
  /// (synchronously -- the driver must see the resolution before it decides
  /// whether a barrier can release).
  void settle_shed(const Message& msg, bool was_queued, const char* tag);

  SendDoneFn send_done_;
  DeliveredFn delivered_;
  DroppedFn dropped_fn_;
  ShedFn shed_fn_;
  std::vector<MessageRecord> records_;
  std::uint64_t delivered_bytes_ = 0;
  TimeNs last_delivery_{};
  MessageId next_id_ = 1;
  CounterSet counters_;

  std::uint64_t submitted_bytes_ = 0;
  TimeNs first_submit_{};
  TimeNs last_submit_{};
  std::size_t shed_ = 0;
  std::uint64_t shed_bytes_ = 0;
  std::vector<std::uint64_t> depth_samples_;

  std::unique_ptr<FaultModel> fault_;
  std::unique_ptr<ControlFaultModel> ctrl_;
  std::unique_ptr<SlotAuditor> auditor_;
  std::unordered_map<MessageId, ArqState> arq_;
  std::unordered_set<MessageId> poisoned_;
  std::vector<RecoveryRecord> recoveries_;
  std::size_t unrecovered_ = 0;
  std::uint64_t wire_bytes_ = 0;
  std::size_t outstanding_ = 0;
  std::size_t dropped_ = 0;
};

}  // namespace pmx
