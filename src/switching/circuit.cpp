#include "switching/circuit.hpp"

#include "common/assert.hpp"

namespace pmx {

CircuitNetwork::CircuitNetwork(Simulator& sim, const SystemParams& params)
    : CircuitNetwork(sim, params, Options{}) {}

CircuitNetwork::CircuitNetwork(Simulator& sim, const SystemParams& params,
                               const Options& options)
    : Network(sim, params),
      options_(options),
      sources_(params.num_nodes),
      outputs_(params.num_nodes) {
  if (FaultModel* fm = fault_model()) {
    fm->subscribe([this](NodeId node, bool up) { on_link_change(node, up); });
  }
}

void CircuitNetwork::on_link_change(NodeId node, bool up) {
  if (!up) {
    for (NodeId u = 0; u < params_.num_nodes; ++u) {
      SourceState& src = sources_[u];
      // Transfers (or establishments) crossing the dead cable lose data;
      // the message fails its CRC on arrival and is retransmitted.
      if (src.busy && (u == node || src.active.dst == node)) {
        mark_poisoned(src.active.id);
      }
      // An idle held circuit through the dead link is torn down so waiters
      // are not starved across the outage.
      if (!src.busy && src.held_circuit.has_value() &&
          (u == node || *src.held_circuit == node)) {
        const NodeId out = *src.held_circuit;
        src.held_circuit.reset();
        sim_.schedule_after(params_.control_wire_latency(),
                            [this, out] { release_output(out); });
      }
    }
    return;
  }
  // Repair. A source stalled on its own dead cable resumes...
  SourceState& src = sources_[node];
  if (src.waiting_repair) {
    src.waiting_repair = false;
    if (!src.busy) {
      start_next_message(node);
    }
  }
  // ...and requests parked on the repaired output port get granted.
  OutputState& out = outputs_[node];
  if (!out.busy && !out.waiters.empty()) {
    const NodeId next = out.waiters.front();
    out.waiters.pop_front();
    out.busy = true;
    grant_circuit(next);
  }
}

void CircuitNetwork::do_submit(const Message& msg) {
  SourceState& src = sources_[msg.src];
  src.fifo.push_back(msg);
  if (!src.busy) {
    start_next_message(msg.src);
  }
}

void CircuitNetwork::start_next_message(NodeId src_id) {
  SourceState& src = sources_[src_id];
  if (src.fifo.empty()) {
    src.busy = false;
    // An idle source gives up its held circuit so waiters cannot starve.
    if (src.held_circuit.has_value()) {
      const NodeId old_out = *src.held_circuit;
      src.held_circuit.reset();
      sim_.schedule_after(params_.control_wire_latency(),
                          [this, old_out] { release_output(old_out); });
    }
    return;
  }
  if (const FaultModel* fm = fault_model();
      fm != nullptr && !fm->link_up(src_id)) {
    // This NIC's own cable is dead: the head message waits for repair. The
    // source must read as idle (we can arrive here from send_complete with
    // busy still set) or the repair handler would never resume it.
    src.busy = false;
    src.waiting_repair = true;
    return;
  }
  src.busy = true;
  src.active = src.fifo.front();
  src.fifo.pop_front();

  if (src.held_circuit == src.active.dst) {
    // Circuit reuse: the pipe is already up; skip establishment entirely.
    counters().counter("circuit_reuses") += 1;
    sim_.schedule_after(params_.nic_cycle,
                        [this, src_id] { transmit(src_id); });
    return;
  }
  // A held circuit to a different destination must be torn down first; its
  // teardown notice travels to the scheduler while we send the new request
  // (both are control-wire messages, so they overlap).
  if (src.held_circuit.has_value()) {
    const NodeId old_out = *src.held_circuit;
    src.held_circuit.reset();
    sim_.schedule_after(params_.control_wire_latency(),
                        [this, old_out] { release_output(old_out); });
  }
  // NIC cycle, then the request crosses the control wire to the scheduler.
  sim_.schedule_after(params_.nic_cycle + params_.control_wire_latency(),
                      [this, src_id] { request_arrived(src_id); });
}

void CircuitNetwork::request_arrived(NodeId src_id) {
  SourceState& src = sources_[src_id];
  OutputState& out = outputs_[src.active.dst];
  const FaultModel* fm = fault_model();
  const bool dst_down = fm != nullptr && !fm->link_up(src.active.dst);
  if (out.busy || dst_down) {
    // Busy output or dead destination cable: queue FIFO at the scheduler.
    out.waiters.push_back(src_id);
    counters().counter("circuit_waits") += 1;
    return;
  }
  out.busy = true;
  grant_circuit(src_id);
}

void CircuitNetwork::grant_circuit(NodeId src_id) {
  counters().counter("circuits_established") += 1;
  // 80 ns to schedule, 80 ns for the grant to reach the NIC.
  sim_.schedule_after(
      params_.scheduler_latency + params_.control_wire_latency(),
      [this, src_id] { transmit(src_id); });
}

void CircuitNetwork::transmit(NodeId src_id) {
  SourceState& src = sources_[src_id];
  const TimeNs tx = link_.serialization(src.active.bytes);
  sim_.schedule_after(tx, [this, src_id] { send_complete(src_id); });
}

void CircuitNetwork::send_complete(NodeId src_id) {
  SourceState& src = sources_[src_id];
  const Message msg = src.active;
  const TimeNs send_done = sim_.now();
  notify_send_done(msg, send_done);
  // Tail byte drains through the passive fabric to the destination NIC.
  notify_delivered(
      msg, send_done,
      send_done + params_.passive_path_latency() + params_.nic_cycle);

  const FaultModel* fm = fault_model();
  const bool pipe_alive =
      fm == nullptr || (fm->link_up(src_id) && fm->link_up(msg.dst));
  if (options_.hold_circuits && pipe_alive) {
    src.held_circuit = msg.dst;
  } else {
    // Teardown notice crosses the control wire; the output frees then.
    const NodeId out = msg.dst;
    sim_.schedule_after(params_.control_wire_latency(),
                        [this, out] { release_output(out); });
  }
  start_next_message(src_id);
}

void CircuitNetwork::release_output(NodeId out_id) {
  OutputState& out = outputs_[out_id];
  PMX_CHECK(out.busy, "releasing an idle circuit output");
  out.busy = false;
  if (const FaultModel* fm = fault_model();
      fm != nullptr && !fm->link_up(out_id)) {
    return;  // dead output: waiters stay parked until the repair event
  }
  if (!out.waiters.empty()) {
    const NodeId next = out.waiters.front();
    out.waiters.pop_front();
    out.busy = true;
    grant_circuit(next);
  }
}

}  // namespace pmx
