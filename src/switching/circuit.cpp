#include "switching/circuit.hpp"

#include <algorithm>
#include <string>

#include "common/assert.hpp"

namespace pmx {

CircuitNetwork::CircuitNetwork(Simulator& sim, const SystemParams& params)
    : CircuitNetwork(sim, params, Options{}) {}

CircuitNetwork::CircuitNetwork(Simulator& sim, const SystemParams& params,
                               const Options& options)
    : Network(sim, params),
      options_(options),
      sources_(params.num_nodes),
      outputs_(params.num_nodes) {
  if (FaultModel* fm = fault_model()) {
    fm->subscribe([this](NodeId node, bool up) { on_link_change(node, up); });
  }
}

void CircuitNetwork::on_link_change(NodeId node, bool up) {
  if (!up) {
    for (NodeId u = 0; u < params_.num_nodes; ++u) {
      SourceState& src = sources_[u];
      // Transfers (or establishments) crossing the dead cable lose data;
      // the message fails its CRC on arrival and is retransmitted.
      if (src.busy && (u == node || src.active.dst == node)) {
        mark_poisoned(src.active.id);
      }
      // An idle held circuit through the dead link is torn down so waiters
      // are not starved across the outage.
      if (!src.busy && src.held_circuit.has_value() &&
          (u == node || *src.held_circuit == node)) {
        const NodeId out = *src.held_circuit;
        src.held_circuit.reset();
        schedule_release(out);
      }
    }
    return;
  }
  // Repair. A source stalled on its own dead cable resumes...
  SourceState& src = sources_[node];
  if (src.waiting_repair) {
    src.waiting_repair = false;
    if (!src.busy) {
      start_next_message(node);
    }
  }
  // ...and requests parked on the repaired output port get granted.
  OutputState& out = outputs_[node];
  if (!out.busy && !out.waiters.empty()) {
    const NodeId next = out.waiters.front();
    out.waiters.pop_front();
    grant_to(node, next);
  }
}

void CircuitNetwork::do_submit(const Message& msg) {
  SourceState& src = sources_[msg.src];
  src.fifo.push_back(msg);  // pmx-lint: allow(unbounded-queue)
  src.fifo_bytes += msg.bytes;  // admission layer bounds the fifo
  if (!src.busy) {
    start_next_message(msg.src);
  }
}

std::optional<Message> CircuitNetwork::remove_shed_victim(NodeId src_id,
                                                          bool oldest,
                                                          TimeNs cutoff) {
  SourceState& src = sources_[src_id];
  if (src.fifo.empty()) {
    return std::nullopt;
  }
  const Message victim = oldest ? src.fifo.front() : src.fifo.back();
  if (victim.submit_time > cutoff) {
    return std::nullopt;
  }
  if (oldest) {
    src.fifo.pop_front();
  } else {
    src.fifo.pop_back();
  }
  src.fifo_bytes -= victim.bytes;
  return victim;
}

void CircuitNetwork::start_next_message(NodeId src_id) {
  SourceState& src = sources_[src_id];
  if (src.fifo.empty()) {
    src.busy = false;
    // An idle source gives up its held circuit so waiters cannot starve.
    if (src.held_circuit.has_value()) {
      const NodeId old_out = *src.held_circuit;
      src.held_circuit.reset();
      schedule_release(old_out);
    }
    return;
  }
  if (const FaultModel* fm = fault_model();
      fm != nullptr && !fm->link_up(src_id)) {
    // This NIC's own cable is dead: the head message waits for repair. The
    // source must read as idle (we can arrive here from send_complete with
    // busy still set) or the repair handler would never resume it.
    src.busy = false;
    src.waiting_repair = true;
    return;
  }
  src.busy = true;
  src.active = src.fifo.front();
  src.fifo.pop_front();
  src.fifo_bytes -= src.active.bytes;

  if (src.held_circuit == src.active.dst) {
    if (control_faulty() && outputs_[src.active.dst].holder != src_id) {
      // The NIC believes it still holds this pipe, but the scheduler's
      // lease already reclaimed it (the revoke notice was lost). Driving
      // data into an unconnected fabric would lose it silently; fall back
      // to a fresh establishment instead.
      counters().counter("stale_holds") += 1;
      src.held_circuit.reset();
    } else {
      // Circuit reuse: the pipe is already up; skip establishment entirely.
      counters().counter("circuit_reuses") += 1;
      if (control_faulty()) {
        outputs_[src.active.dst].last_activity = sim_.now();
      }
      sim_.schedule_after(params_.nic_cycle,
                          [this, src_id] { transmit(src_id); });
      return;
    }
  }
  // A held circuit to a different destination must be torn down first; its
  // teardown notice travels to the scheduler while we send the new request
  // (both are control-wire messages, so they overlap).
  if (src.held_circuit.has_value()) {
    const NodeId old_out = *src.held_circuit;
    src.held_circuit.reset();
    schedule_release(old_out);
  }
  if (control_faulty()) {
    src.waiting_grant = true;
    src.attempts = 1;
    // NIC cycle, then the request crosses the lossy control wire.
    send_request(src_id, src.active.dst,
                 params_.nic_cycle + params_.control_wire_latency());
    if (params_.ctrl.heal) {
      arm_watchdog(src_id);
    }
    return;
  }
  // NIC cycle, then the request crosses the control wire to the scheduler.
  sim_.schedule_after(params_.nic_cycle + params_.control_wire_latency(),
                      [this, src_id] { request_arrived(src_id); });
}

void CircuitNetwork::request_arrived(NodeId src_id) {
  SourceState& src = sources_[src_id];
  OutputState& out = outputs_[src.active.dst];
  const FaultModel* fm = fault_model();
  const bool dst_down = fm != nullptr && !fm->link_up(src.active.dst);
  if (out.busy || dst_down) {
    // Busy output or dead destination cable: queue FIFO at the scheduler.
    if (enqueue_waiter(src.active.dst, src_id)) {
      counters().counter("circuit_waits") += 1;
    }
    return;
  }
  grant_to(src.active.dst, src_id);
}

void CircuitNetwork::request_arrived_ctrl(NodeId src_id, NodeId dst) {
  SourceState& src = sources_[src_id];
  if (!src.busy || !src.waiting_grant || src.active.dst != dst) {
    // Delayed duplicate of a request already served (the source has moved
    // on): the scheduler drops it rather than allocate an unwanted output.
    counters().counter("duplicate_requests") += 1;
    return;
  }
  OutputState& out = outputs_[dst];
  if (out.busy && out.holder == src_id) {
    // The output is already ours -- the grant was lost or is still in
    // flight and the watchdog re-requested. Re-acknowledge.
    counters().counter("duplicate_requests") += 1;
    out.last_activity = sim_.now();
    send_grant_msg(src_id, dst);
    return;
  }
  const FaultModel* fm = fault_model();
  const bool dst_down = fm != nullptr && !fm->link_up(dst);
  if (out.busy || dst_down) {
    if (enqueue_waiter(dst, src_id)) {
      counters().counter("circuit_waits") += 1;
    }
    return;
  }
  grant_to(dst, src_id);
}

void CircuitNetwork::grant_to(NodeId out_id, NodeId src_id) {
  OutputState& out = outputs_[out_id];
  out.busy = true;
  if (control_faulty()) {
    out.holder = src_id;
    out.last_activity = sim_.now();
    arm_lease(out_id);
  }
  grant_circuit(src_id);
}

void CircuitNetwork::grant_circuit(NodeId src_id) {
  counters().counter("circuits_established") += 1;
  if (control_faulty()) {
    send_grant_msg(src_id, sources_[src_id].active.dst);
    return;
  }
  // 80 ns to schedule, 80 ns for the grant to reach the NIC.
  sim_.schedule_after(
      params_.scheduler_latency + params_.control_wire_latency(),
      [this, src_id] { transmit(src_id); });
}

void CircuitNetwork::send_request(NodeId src_id, NodeId dst, TimeNs latency) {
  SourceState& src = sources_[src_id];
  const bool scheduled = control_fault()->send(
      CtrlMsg::kRequest, latency, [this, src_id, dst, ep = ctrl_epoch_] {
        if (ep != ctrl_epoch_) {
          counters().counter("ctrl_stale") += 1;
          return;
        }
        SourceState& s = sources_[src_id];
        if (s.pending_request > 0) {
          --s.pending_request;
        }
        request_arrived_ctrl(src_id, dst);
      });
  if (scheduled) {
    ++src.pending_request;
  }
}

void CircuitNetwork::send_grant_msg(NodeId src_id, NodeId dst) {
  SourceState& src = sources_[src_id];
  const bool scheduled = control_fault()->send(
      CtrlMsg::kGrant,
      params_.scheduler_latency + params_.control_wire_latency(),
      [this, src_id, dst, ep = ctrl_epoch_] {
        if (ep != ctrl_epoch_) {
          counters().counter("ctrl_stale") += 1;
          return;
        }
        SourceState& s = sources_[src_id];
        if (s.pending_grant > 0) {
          --s.pending_grant;
        }
        grant_arrived(src_id, dst);
      });
  if (scheduled) {
    ++src.pending_grant;
  }
}

void CircuitNetwork::grant_arrived(NodeId src_id, NodeId dst) {
  SourceState& src = sources_[src_id];
  if (!src.waiting_grant || src.active.dst != dst) {
    // A watchdog re-request raced the original grant: both eventually
    // arrive, the second is a no-op.
    counters().counter("duplicate_grants") += 1;
    return;
  }
  src.waiting_grant = false;
  src.attempts = 1;
  if (src.watchdog != 0) {
    sim_.cancel(src.watchdog);
    src.watchdog = 0;
  }
  transmit(src_id);
}

void CircuitNetwork::arm_watchdog(NodeId src_id) {
  SourceState& src = sources_[src_id];
  src.watchdog = sim_.schedule_after(
      control_fault()->watchdog_delay(src.attempts),
      [this, src_id, ep = ctrl_epoch_] {
        if (ep != ctrl_epoch_) {
          return;
        }
        on_watchdog(src_id);
      });
}

void CircuitNetwork::on_watchdog(NodeId src_id) {
  SourceState& src = sources_[src_id];
  src.watchdog = 0;
  if (!src.waiting_grant) {
    return;
  }
  // Neither a grant nor a wait-queue slot ever acknowledges a request, so
  // the only safe read of silence is "lost": reissue with backoff. A
  // duplicate of a parked request deduplicates at the scheduler.
  ++src.attempts;
  counters().counter("ctrl_rerequests") += 1;
  send_request(src_id, src.active.dst, params_.control_wire_latency());
  arm_watchdog(src_id);
}

void CircuitNetwork::arm_lease(NodeId out_id) {
  ControlFaultModel* cf = control_fault();
  if (!params_.ctrl.heal || cf->params().lease <= TimeNs::zero()) {
    return;
  }
  OutputState& out = outputs_[out_id];
  const std::uint64_t seq = ++out.lease_seq;
  sim_.schedule_after(cf->params().lease, [this, out_id, seq] {
    lease_check(out_id, seq);
  });
}

void CircuitNetwork::lease_check(NodeId out_id, std::uint64_t seq) {
  OutputState& out = outputs_[out_id];
  if (seq != out.lease_seq || !out.busy) {
    return;
  }
  ControlFaultModel* cf = control_fault();
  const TimeNs lease = cf->params().lease;
  if (out.holder.has_value()) {
    const SourceState& h = sources_[*out.holder];
    if ((h.busy && h.active.dst == out_id) || h.held_circuit == out_id) {
      // The holder demonstrably still uses the pipe (mid-transfer, waiting
      // for its grant, or holding with queued traffic): not idle.
      out.last_activity = sim_.now();
    }
  }
  const TimeNs expiry = out.last_activity + lease;
  if (sim_.now() < expiry) {
    sim_.schedule_after(expiry - sim_.now(), [this, out_id, seq] {
      lease_check(out_id, seq);
    });
    return;
  }
  // The holder went silent past the lease: its teardown notice was lost.
  // Reclaim the output and tell the holder its hold is void (that revoke
  // itself crosses the lossy wire; the reuse guard covers its loss).
  counters().counter("lease_expiries") += 1;
  if (out.holder.has_value()) {
    const NodeId holder = *out.holder;
    cf->send(CtrlMsg::kGrant, params_.control_wire_latency(),
             [this, holder, out_id, ep = ctrl_epoch_] {
               if (ep != ctrl_epoch_) {
                 return;
               }
               if (sources_[holder].held_circuit == out_id) {
                 sources_[holder].held_circuit.reset();
               }
             });
  }
  free_output(out_id);
}

void CircuitNetwork::transmit(NodeId src_id) {
  SourceState& src = sources_[src_id];
  const TimeNs tx = link_.serialization(src.active.bytes);
  sim_.schedule_after(tx, [this, src_id] { send_complete(src_id); });
}

void CircuitNetwork::send_complete(NodeId src_id) {
  SourceState& src = sources_[src_id];
  const Message msg = src.active;
  const TimeNs send_done = sim_.now();
  notify_send_done(msg, send_done);
  // Tail byte drains through the passive fabric to the destination NIC.
  notify_delivered(
      msg, send_done,
      send_done + params_.passive_path_latency() + params_.nic_cycle);

  const FaultModel* fm = fault_model();
  const bool pipe_alive =
      fm == nullptr || (fm->link_up(src_id) && fm->link_up(msg.dst));
  if (options_.hold_circuits && pipe_alive) {
    src.held_circuit = msg.dst;
    if (control_faulty()) {
      outputs_[msg.dst].last_activity = sim_.now();
    }
  } else {
    // Teardown notice crosses the control wire; the output frees then.
    schedule_release(msg.dst);
  }
  start_next_message(src_id);
}

void CircuitNetwork::schedule_release(NodeId out_id) {
  ControlFaultModel* cf = control_fault();
  if (cf == nullptr) {
    sim_.schedule_after(params_.control_wire_latency(),
                        [this, out_id] { release_output(out_id); });
    return;
  }
  OutputState& out = outputs_[out_id];
  const bool scheduled = cf->send(
      CtrlMsg::kRelease, params_.control_wire_latency(),
      [this, out_id, ep = ctrl_epoch_] {
        if (ep != ctrl_epoch_) {
          counters().counter("ctrl_stale") += 1;
          return;
        }
        OutputState& o = outputs_[out_id];
        if (o.pending_release > 0) {
          --o.pending_release;
        }
        release_output(out_id);
      });
  if (scheduled) {
    ++out.pending_release;
  }
}

void CircuitNetwork::release_output(NodeId out_id) {
  OutputState& out = outputs_[out_id];
  if (control_faulty() && !out.busy) {
    // The lease (or a resync) already reclaimed this output; the delayed
    // teardown notice is stale.
    counters().counter("stale_releases") += 1;
    return;
  }
  PMX_CHECK(out.busy, "releasing an idle circuit output");
  free_output(out_id);
}

void CircuitNetwork::free_output(NodeId out_id) {
  OutputState& out = outputs_[out_id];
  out.busy = false;
  out.holder.reset();
  ++out.lease_seq;  // disarm any pending lease check
  if (const FaultModel* fm = fault_model();
      fm != nullptr && !fm->link_up(out_id)) {
    return;  // dead output: waiters stay parked until the repair event
  }
  if (!out.waiters.empty()) {
    const NodeId next = out.waiters.front();
    out.waiters.pop_front();
    grant_to(out_id, next);
  }
}

bool CircuitNetwork::enqueue_waiter(NodeId out_id, NodeId src_id) {
  OutputState& out = outputs_[out_id];
  if (std::find(out.waiters.begin(), out.waiters.end(), src_id) !=
      out.waiters.end()) {
    return false;  // already parked: a duplicate keeps its original slot
  }
  // Capacity tied to the retry protocol: requests are deduplicated above, so
  // however many times the watchdog retransmits, a source holds at most one
  // slot and the list can never outgrow the source population.
  const std::size_t capacity = sources_.size();
  PMX_CHECK(out.waiters.size() < capacity,
            "circuit waiter list exceeded its structural capacity");
  out.waiters.push_back(src_id);
  return true;
}

void CircuitNetwork::audit_control(std::vector<std::string>& out) {
  if (!control_faulty()) {
    return;
  }
  const bool lease_armed =
      params_.ctrl.heal && control_fault()->params().lease > TimeNs::zero();
  for (NodeId o = 0; o < params_.num_nodes; ++o) {
    const OutputState& os = outputs_[o];
    if (!os.busy) {
      continue;
    }
    bool claimed = false;
    if (os.holder.has_value()) {
      const SourceState& h = sources_[*os.holder];
      claimed = (h.busy && h.active.dst == o) || h.held_circuit == o;
    }
    if (!claimed && os.pending_release == 0 && !lease_armed) {
      // Leak: the output is allocated, no source claims it, no teardown is
      // in flight, and no lease will ever reclaim it.
      out.push_back("leaked circuit output " + std::to_string(o) +
                    ": busy with no claiming source, release, or lease");
    }
  }
  for (NodeId u = 0; u < params_.num_nodes; ++u) {
    const SourceState& s = sources_[u];
    if (!s.busy || !s.waiting_grant) {
      continue;
    }
    const auto& waiters = outputs_[s.active.dst].waiters;
    const bool parked =
        std::find(waiters.begin(), waiters.end(), u) != waiters.end();
    if (!parked && s.pending_request == 0 && s.pending_grant == 0 &&
        s.watchdog == 0) {
      // Wedge: the NIC waits for a grant, but no request or grant is in
      // flight, it is not queued at the scheduler, and no watchdog will
      // ever retry.
      out.push_back("wedged circuit NIC " + std::to_string(u) + " -> " +
                    std::to_string(s.active.dst) +
                    ": waiting for a grant nothing can deliver");
    }
  }
}

void CircuitNetwork::resync_control() {
  if (!control_faulty()) {
    return;
  }
  // Out-of-band full state exchange: invalidate every in-flight control
  // event, then rebuild the scheduler's output table from NIC ground truth.
  ++ctrl_epoch_;
  for (OutputState& out : outputs_) {
    out.busy = false;
    out.holder.reset();
    out.waiters.clear();
    out.pending_release = 0;
    ++out.lease_seq;
  }
  for (SourceState& src : sources_) {
    src.pending_request = 0;
    src.pending_grant = 0;
    src.attempts = 1;
    if (src.watchdog != 0) {
      sim_.cancel(src.watchdog);
      src.watchdog = 0;
    }
  }
  // Pass 1: transmitting sources (and live holds) truly own their outputs.
  for (NodeId u = 0; u < params_.num_nodes; ++u) {
    SourceState& src = sources_[u];
    std::optional<NodeId> owned;
    if (src.busy && !src.waiting_grant) {
      owned = src.active.dst;
    } else if (!src.busy && src.held_circuit.has_value()) {
      owned = src.held_circuit;
    }
    if (!owned.has_value()) {
      continue;
    }
    OutputState& out = outputs_[*owned];
    if (out.busy) {
      // Conflicting claims can only come from a stale hold.
      counters().counter("stale_holds") += 1;
      src.held_circuit.reset();
      continue;
    }
    out.busy = true;
    out.holder = u;
    out.last_activity = sim_.now();
    arm_lease(*owned);
  }
  // Pass 2: re-play blocked requests at the scheduler in id order.
  const FaultModel* fm = fault_model();
  for (NodeId u = 0; u < params_.num_nodes; ++u) {
    SourceState& src = sources_[u];
    if (!src.busy || !src.waiting_grant) {
      continue;
    }
    const NodeId dst = src.active.dst;
    OutputState& out = outputs_[dst];
    const bool dst_down = fm != nullptr && !fm->link_up(dst);
    if (out.busy || dst_down) {
      // Resync replay does not recount circuit_waits: the wait was already
      // counted when the request first queued.
      enqueue_waiter(dst, u);
    } else {
      grant_to(dst, u);
    }
    if (params_.ctrl.heal) {
      arm_watchdog(u);
    }
  }
}

}  // namespace pmx
