#include "switching/circuit.hpp"

#include "common/assert.hpp"

namespace pmx {

CircuitNetwork::CircuitNetwork(Simulator& sim, const SystemParams& params)
    : CircuitNetwork(sim, params, Options{}) {}

CircuitNetwork::CircuitNetwork(Simulator& sim, const SystemParams& params,
                               const Options& options)
    : Network(sim, params),
      options_(options),
      sources_(params.num_nodes),
      outputs_(params.num_nodes) {}

void CircuitNetwork::do_submit(const Message& msg) {
  SourceState& src = sources_[msg.src];
  src.fifo.push_back(msg);
  if (!src.busy) {
    start_next_message(msg.src);
  }
}

void CircuitNetwork::start_next_message(NodeId src_id) {
  SourceState& src = sources_[src_id];
  if (src.fifo.empty()) {
    src.busy = false;
    // An idle source gives up its held circuit so waiters cannot starve.
    if (src.held_circuit.has_value()) {
      const NodeId old_out = *src.held_circuit;
      src.held_circuit.reset();
      sim_.schedule_after(params_.control_wire_latency(),
                          [this, old_out] { release_output(old_out); });
    }
    return;
  }
  src.busy = true;
  src.active = src.fifo.front();
  src.fifo.pop_front();

  if (src.held_circuit == src.active.dst) {
    // Circuit reuse: the pipe is already up; skip establishment entirely.
    counters().counter("circuit_reuses") += 1;
    sim_.schedule_after(params_.nic_cycle,
                        [this, src_id] { transmit(src_id); });
    return;
  }
  // A held circuit to a different destination must be torn down first; its
  // teardown notice travels to the scheduler while we send the new request
  // (both are control-wire messages, so they overlap).
  if (src.held_circuit.has_value()) {
    const NodeId old_out = *src.held_circuit;
    src.held_circuit.reset();
    sim_.schedule_after(params_.control_wire_latency(),
                        [this, old_out] { release_output(old_out); });
  }
  // NIC cycle, then the request crosses the control wire to the scheduler.
  sim_.schedule_after(params_.nic_cycle + params_.control_wire_latency(),
                      [this, src_id] { request_arrived(src_id); });
}

void CircuitNetwork::request_arrived(NodeId src_id) {
  SourceState& src = sources_[src_id];
  OutputState& out = outputs_[src.active.dst];
  if (out.busy) {
    out.waiters.push_back(src_id);
    counters().counter("circuit_waits") += 1;
    return;
  }
  out.busy = true;
  grant_circuit(src_id);
}

void CircuitNetwork::grant_circuit(NodeId src_id) {
  counters().counter("circuits_established") += 1;
  // 80 ns to schedule, 80 ns for the grant to reach the NIC.
  sim_.schedule_after(
      params_.scheduler_latency + params_.control_wire_latency(),
      [this, src_id] { transmit(src_id); });
}

void CircuitNetwork::transmit(NodeId src_id) {
  SourceState& src = sources_[src_id];
  const TimeNs tx = link_.serialization(src.active.bytes);
  sim_.schedule_after(tx, [this, src_id] { send_complete(src_id); });
}

void CircuitNetwork::send_complete(NodeId src_id) {
  SourceState& src = sources_[src_id];
  const Message msg = src.active;
  const TimeNs send_done = sim_.now();
  notify_send_done(msg, send_done);
  // Tail byte drains through the passive fabric to the destination NIC.
  notify_delivered(
      msg, send_done,
      send_done + params_.passive_path_latency() + params_.nic_cycle);

  if (options_.hold_circuits) {
    src.held_circuit = msg.dst;
  } else {
    // Teardown notice crosses the control wire; the output frees then.
    const NodeId out = msg.dst;
    sim_.schedule_after(params_.control_wire_latency(),
                        [this, out] { release_output(out); });
  }
  start_next_message(src_id);
}

void CircuitNetwork::release_output(NodeId out_id) {
  OutputState& out = outputs_[out_id];
  PMX_CHECK(out.busy, "releasing an idle circuit output");
  out.busy = false;
  if (!out.waiters.empty()) {
    const NodeId next = out.waiters.front();
    out.waiters.pop_front();
    out.busy = true;
    grant_circuit(next);
  }
}

}  // namespace pmx
