#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/time.hpp"
#include "sim/clock.hpp"
#include "sim/simulator.hpp"

namespace pmx {

/// Configuration of the periodic slot-state auditor. Disabled by default:
/// no auditor is instantiated and the system behaves exactly as the seed.
struct AuditParams {
  bool enabled = false;
  /// Audit every this many TDM slots (the audit clock's period is
  /// period_slots * slot_length). 1 = every slot.
  std::size_t period_slots = 1;
  /// Strict mode: abort on the first violation (for tests proving that a
  /// leak/wedge actually occurs). Recovery mode (the default) triggers a
  /// full NIC <-> scheduler resync instead and counts it.
  bool strict = false;

  void validate() const;
};

/// Aggregate auditor statistics, surfaced through RunMetrics.
struct AuditStats {
  std::uint64_t audits = 0;            ///< audit ticks executed
  std::uint64_t violating_audits = 0;  ///< ticks with >= 1 violation
  std::uint64_t violations = 0;        ///< individual violations found
  std::uint64_t resyncs = 0;           ///< recovery resyncs triggered
  std::uint64_t recoveries = 0;        ///< violation episodes that healed
  /// Sum / max of (first clean audit - first violating audit) per episode.
  TimeNs recovery_total{};
  TimeNs recovery_max{};
};

/// Periodic global-invariant checker (the tentpole's watchdog of last
/// resort). Every `period_slots` TDM slots it runs all registered checks --
/// crosspoint double-allocation, AI/AO occupancy parity, message
/// conservation, NIC/scheduler view divergence -- and on violation either
/// aborts (strict mode) or invokes the resync hook and tracks how long the
/// system took to audit clean again (recovery mode).
///
/// Checks are registered by the Network base and by each paradigm; they run
/// in registration order and append one human-readable line per violation.
class SlotAuditor {
 public:
  using CheckFn = std::function<void(std::vector<std::string>&)>;

  SlotAuditor(Simulator& sim, const AuditParams& params, TimeNs slot_length);

  void add_check(std::string name, CheckFn fn);
  void set_resync(std::function<void()> fn) { resync_ = std::move(fn); }

  /// Start the periodic audit clock (first audit one period from now, so
  /// every audit lands on a slot boundary after that slot's work is done).
  void start();

  /// Run one audit immediately (also used for the final post-quiesce audit).
  void audit_now();

  [[nodiscard]] const AuditParams& params() const { return params_; }
  [[nodiscard]] const AuditStats& stats() const { return stats_; }
  /// Violations found by the most recent audit (empty when it was clean).
  [[nodiscard]] const std::vector<std::string>& last_violations() const {
    return last_violations_;
  }

 private:
  Simulator& sim_;
  AuditParams params_;
  std::vector<std::pair<std::string, CheckFn>> checks_;
  std::function<void()> resync_;
  Clock clock_;
  AuditStats stats_;
  std::vector<std::string> last_violations_;
  /// Open violation episode: set at the first violating audit, cleared
  /// (and its duration recorded) at the first clean audit after it.
  bool in_violation_ = false;
  TimeNs episode_start_{};
};

}  // namespace pmx
