#pragma once

#include <memory>
#include <vector>

#include "control/reopt_service.hpp"
#include "fabric/crossbar.hpp"
#include "nic/control_plane.hpp"
#include "nic/voq.hpp"
#include "predictor/predictor.hpp"
#include "sched/tdm_scheduler.hpp"
#include "sim/clock.hpp"
#include "switching/network.hpp"

namespace pmx {

/// Dynamic (reactive) multiplexed switching -- the system of Section 4.
///
/// NICs keep one logical output queue per destination; the non-empty bitmap
/// of those queues is the request matrix R presented to the scheduler. Every
/// SL-clock period (one scheduler pass, 80 ns) the scheduler inserts newly
/// requested connections into one of the K slot configurations and releases
/// connections whose requests (and holds) have dropped. Every time-slot
/// clock period (100 ns) the TDM counter advances to the next non-empty
/// configuration, the crossbar is reconfigured, and every granted connection
/// moves up to slot_payload_bytes() of data (the rest of the slot is the
/// guard band).
///
/// An eviction predictor (Section 3.2) may latch connections past the drop
/// of their request signal (Section 4, extension 3); preloading pinned
/// configurations before the run turns this into the hybrid
/// preload+dynamic network of Figure 5.
class TdmNetwork : public Network {
 public:
  struct Options {
    /// Eviction predictor; nullptr means NoPredictor (pure reactive).
    std::unique_ptr<Predictor> predictor;
    /// Section 4 extension 2: replicate connections into idle slots.
    bool multi_slot_connections = false;
    bool rotate_priority = true;
    /// Skip slots whose connections have no pending requests (see
    /// TdmScheduler::Options::skip_unrequested_slots).
    bool skip_idle_slots = true;
    /// Section 4 extension 1: number of scheduling-logic copies. Each SL
    /// clock edge runs this many passes against successive slots, modeling
    /// parallel SL units with the requests partitioned among them.
    std::size_t sl_units = 1;
    /// End-to-end flow control (Section 2: "only end-to-end flow control is
    /// required"): receive-buffer capacity per NIC in bytes; 0 = unlimited.
    /// Senders see the receiver's credit and never overrun it.
    std::uint64_t receiver_buffer_bytes = 0;
    /// Bytes the receiving processor consumes from its input buffer per
    /// TDM slot (only meaningful with a finite buffer).
    std::uint64_t receiver_drain_per_slot = 64;
    /// Starvation watchdog (graceful degradation under overload): if a
    /// source sits on queued traffic for this many consecutive slots
    /// without moving a byte, the learned schedule state is flushed so the
    /// reactive path can re-insert the starved requests. 0 = off.
    std::size_t starvation_slots = 0;
  };

  TdmNetwork(Simulator& sim, const SystemParams& params);
  TdmNetwork(Simulator& sim, const SystemParams& params, Options options);

  [[nodiscard]] std::string name() const override { return "dynamic-tdm"; }

  /// Preload a pinned configuration before (or during) the run -- the
  /// compiled-communication entry point that makes this the hybrid network.
  void preload(std::size_t slot, const BitMatrix& config, bool pinned = true);

  void flush_hint() override;

  [[nodiscard]] const TdmScheduler& scheduler() const { return sched_; }
  [[nodiscard]] const Crossbar& crossbar() const { return xbar_; }
  [[nodiscard]] const Predictor& predictor() const { return *predictor_; }

  /// The online re-optimization service, when params.reopt.enabled().
  [[nodiscard]] const ReoptService* reopt() const { return reopt_.get(); }
  /// NIC-side control-plane endpoints; non-null only with a lossy control
  /// channel. Mutable access is for the epoch wraparound soak tests.
  [[nodiscard]] ControlPlane* control_plane() { return plane_.get(); }
  [[nodiscard]] const ReoptStats* reopt_stats() const override {
    return reopt_ ? &reopt_->stats() : nullptr;
  }

  /// Pending bytes still queued in the VOQs (for drain checks in tests).
  [[nodiscard]] std::uint64_t queued_bytes() const;
  /// Current input-buffer occupancy of node `v` (0 with unlimited buffers).
  [[nodiscard]] std::uint64_t receiver_occupancy(NodeId v) const {
    return rx_occupancy_.empty() ? 0 : rx_occupancy_[v];
  }

 protected:
  void do_submit(const Message& msg) override;
  void audit_control(std::vector<std::string>& out) override;
  void resync_control() override;
  [[nodiscard]] std::uint64_t source_queue_bytes(NodeId src) const override {
    return voqs_[src].total_bytes();
  }
  [[nodiscard]] std::size_t source_queue_msgs(NodeId src) const override {
    return voqs_[src].total_depth();
  }
  std::optional<Message> remove_shed_victim(NodeId src, bool oldest,
                                            TimeNs cutoff) override;

 private:
  void on_slot_tick();
  void on_sl_tick();
  void on_link_change(NodeId node, bool up);
  /// Scheduler-side arrival of a request (value) or release (!value)
  /// message from NIC u for destination v (lossy control channel only).
  void apply_request(NodeId u, NodeId v, bool value);
  /// Lease sweep: clear request bits whose NIC has been silent longer than
  /// the lease (the release message was lost) and revoke their grants.
  void lease_scan();
  /// Rebuild the NIC and scheduler request views from ground truth (VOQ
  /// occupancy / B*). Returns the number of in-flight control messages the
  /// epoch bump invalidated (0 without a lossy control plane).
  std::size_t resync_views();
  /// The re-optimization service's apply hook: install the proposed tables
  /// (pinned on apply, unpinned on rollback), flush learned state, and
  /// resync both control views through the A7 path. Returns the invalidated
  /// in-flight control-message count (disruption accounting).
  std::uint64_t apply_reopt(const std::vector<BitMatrix>& tables, bool pinned);

  TdmScheduler sched_;
  Crossbar xbar_;
  std::vector<VoqSet> voqs_;
  /// Lossy request/grant/release endpoints; nullptr when the control-fault
  /// layer is off (requests then drive R as lossless wires, the seed model).
  std::unique_ptr<ControlPlane> plane_;
  std::unique_ptr<Predictor> predictor_;
  /// Online slot-table re-optimization service; nullptr when disabled.
  std::unique_ptr<ReoptService> reopt_;
  Clock slot_clock_;
  Clock sl_clock_;
  std::size_t sl_units_ = 1;
  std::uint64_t rx_buffer_ = 0;  ///< 0 = unlimited
  std::uint64_t rx_drain_ = 0;
  std::vector<std::uint64_t> rx_occupancy_;  ///< empty when unlimited
  std::size_t starvation_slots_ = 0;  ///< 0 = watchdog off
  std::vector<std::size_t> starve_;   ///< consecutive zero-progress slots
  std::vector<char> progress_;        ///< per-slot scratch: source moved data
};

}  // namespace pmx
