#pragma once

#include <vector>

#include "nic/voq.hpp"
#include "switching/network.hpp"

namespace pmx {

/// Wormhole-routed crossbar baseline (Section 5).
///
/// The NIC is the same one the TDM system uses (Section 4): N logical output
/// queues per node. Worm dispatch works like an input-queued switch with
/// per-worm matching:
///  * messages are cut into worms of at most `max_worm_bytes` (128 B) to
///    ensure fairness; flits are 8 B;
///  * every worm pays the 80 ns scheduling (arbitration) delay for its head
///    flit; subsequent flits stream at 10 ns each (= flit serialization at
///    6.4 Gb/s), so a worm holds its input and output port for
///    sched + bytes/rate;
///  * an input port transmits one worm at a time but picks any non-empty
///    VOQ whose output is free (round-robin), so a blocked destination does
///    not head-of-line-block the node -- which is also why the mesh
///    patterns' ordering regularity is *not* exploited by wormhole, as the
///    paper observes;
///  * the cable + digital-switch head latency (30+20+10+20+30 ns) is paid
///    once per message: later worms are buffered inside the switch.
class WormholeNetwork final : public Network {
 public:
  WormholeNetwork(Simulator& sim, const SystemParams& params);

  [[nodiscard]] std::string name() const override { return "wormhole"; }

  [[nodiscard]] std::uint64_t queued_bytes() const;

 protected:
  void do_submit(const Message& msg) override;
  void audit_control(std::vector<std::string>& out) override;
  void resync_control() override;
  [[nodiscard]] std::uint64_t source_queue_bytes(NodeId src) const override {
    return sources_[src].voqs.total_bytes();
  }
  [[nodiscard]] std::size_t source_queue_msgs(NodeId src) const override {
    return sources_[src].voqs.total_depth();
  }
  /// The in-flight worm's head (active_dst) is never a shed victim even
  /// when its remaining count still equals its size (bytes are consumed at
  /// worm completion, not dispatch) -- shedding it would strand the busy
  /// output port. This is also the deadlock-freedom argument under full
  /// buffers: a dispatched worm owns its input and output port outright,
  /// always completes after sched + serialization, and completion both
  /// consumes queued bytes and rematches waiting inputs, so some port
  /// always drains no matter how full every VOQ is.
  std::optional<Message> remove_shed_victim(NodeId src, bool oldest,
                                            TimeNs cutoff) override;

 private:
  /// Try to dispatch one worm from input `src` (if idle) to any pending
  /// destination with a free output port. Under the lossy control channel
  /// the head-flit arbitration request itself can be dropped or delayed;
  /// a lost request is retried with backoff when healing is on.
  void try_dispatch(NodeId src);
  /// End-of-worm bookkeeping: release ports, finish messages, rematch.
  void worm_done(NodeId src, NodeId dst, std::uint64_t worm_bytes);
  /// Fault reaction: poison in-flight worms on a dead link; rematch idle
  /// inputs when a link comes back.
  void on_link_change(NodeId node, bool up);

  struct SourceState {
    VoqSet voqs;
    bool busy = false;     ///< a worm from this input is in flight
    std::size_t rr = 0;    ///< round-robin cursor over destinations
    NodeId active_dst = 0;      ///< destination of the in-flight worm
    MessageId active_msg = 0;   ///< message the in-flight worm belongs to
    // --- Lossy control channel only ---------------------------------------
    bool retry_armed = false;   ///< a dispatch retry event is pending
    std::size_t attempts = 1;   ///< arbitration-retry backoff level
    /// Audit debounce: was this source idle with dispatchable traffic at
    /// the previous audit already?
    bool audit_stall = false;
    explicit SourceState(std::size_t n) : voqs(n) {}
  };

  std::vector<SourceState> sources_;
  std::vector<bool> output_busy_;
  std::vector<std::size_t> output_rr_;  ///< per-output wake-up rotation
};

}  // namespace pmx
