#include "control/demand_estimator.hpp"

#include "common/assert.hpp"

namespace pmx {

DemandEstimator::DemandEstimator(std::size_t num_nodes,
                                 std::uint32_t ewma_shift)
    : n_(num_nodes),
      shift_(ewma_shift),
      ewma_(num_nodes * num_nodes, 0),
      window_(num_nodes * num_nodes, 0) {
  PMX_CHECK(n_ >= 2, "demand estimator needs at least two nodes");
  PMX_CHECK(shift_ >= 1 && shift_ <= 16, "EWMA shift must be in [1, 16]");
}

void DemandEstimator::observe(NodeId u, NodeId v, std::uint64_t bytes) {
  window_[index(u, v)] += bytes;
}

void DemandEstimator::roll() {
  ++rolls_;
  for (std::size_t i = 0; i < ewma_.size(); ++i) {
    // Signed gap so decay (sample below the average) moves the accumulator
    // down; C++20 guarantees arithmetic right shift on negative values, so
    // the step is floor(gap / 2^shift) -- an EWMA that always reaches zero.
    const auto target =
        static_cast<std::int64_t>(window_[i] << kFracBits);
    const auto gap = target - static_cast<std::int64_t>(ewma_[i]);
    ewma_[i] = static_cast<std::uint64_t>(static_cast<std::int64_t>(ewma_[i]) +
                                          (gap >> shift_));
    window_[i] = 0;
  }
}

std::vector<DemandEstimator::Demand> DemandEstimator::snapshot() const {
  std::vector<Demand> out;
  for (NodeId u = 0; u < n_; ++u) {
    for (NodeId v = 0; v < n_; ++v) {
      const std::uint64_t d = demand(u, v);
      if (d > 0) {
        out.push_back(Demand{u, v, d});
      }
    }
  }
  return out;
}

}  // namespace pmx
