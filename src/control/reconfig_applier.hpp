#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/bitmatrix.hpp"
#include "common/time.hpp"
#include "control/reopt_params.hpp"
#include "control/slot_optimizer.hpp"
#include "fault/control_fault.hpp"
#include "sim/simulator.hpp"

namespace pmx {

/// Disruption ledger of the re-optimization loop, surfaced via RunMetrics.
/// All accounting is integral; percentiles are computed at metrics time.
struct ReoptStats {
  std::uint64_t solves = 0;            ///< service ticks that ran the solver
  std::uint64_t proposals = 0;         ///< proposals staged (incl. chaos)
  std::uint64_t chaos_proposals = 0;   ///< chaos-hook poison proposals
  std::uint64_t cmds_lost = 0;         ///< reconfig commands lost in transit
  std::uint64_t applies = 0;           ///< proposals applied to the fabric
  std::uint64_t rollbacks = 0;         ///< applies reverted by the guard
  std::uint64_t invalidated_ctrl = 0;  ///< in-flight ctrl msgs invalidated
                                       ///< by apply/rollback resyncs
  /// Stage-to-apply latency of every applied proposal, in ns.
  std::vector<std::int64_t> apply_latency_ns;
  /// Worst probation shortfall: baseline-expected bytes minus bytes
  /// actually delivered, over the probations that rolled back.
  std::uint64_t dip_depth_bytes = 0;
  /// Total time spent inside probation windows that ended in rollback.
  std::int64_t dip_duration_ns = 0;
};

/// Epoch-safe apply path of the service loop (DESIGN.md §14).
///
/// State machine: Idle -> Staged (reconfig command in flight on the lossy
/// control channel) -> Probation (new tables live, goodput and auditor
/// watched) -> Idle, either by commit or by rollback to the stashed
/// pre-apply tables. At most one proposal is ever in flight -- the next
/// solve waits until the applier returns to Idle, which bounds disruption
/// to one reconfiguration per probation window.
///
/// The apply hook is provided by the owning network: it installs the
/// tables, drains/re-credits in-flight state through the A7 resync path
/// (ControlPlane epoch bump), and returns how many in-flight control
/// messages the epoch bump invalidated. Rollback reuses the same hook with
/// the stashed tables, unpinned, so the reactive path owns every slot again
/// after a failed reconfiguration.
class ReconfigApplier {
 public:
  enum class State : std::uint8_t { kIdle, kStaged, kProbation };

  struct Hooks {
    /// Install `tables` (pin when `pinned`), resync in-flight state, and
    /// return the number of invalidated in-flight control messages.
    std::function<std::uint64_t(const std::vector<BitMatrix>&, bool pinned)>
        apply;
    /// Live configuration registers (stashed for rollback).
    std::function<std::vector<BitMatrix>()> capture;
    /// Monotonic count of payload bytes delivered so far.
    std::function<std::uint64_t()> delivered_bytes;
    /// Monotonic count of auditor violations so far (0 when no auditor).
    std::function<std::uint64_t()> violations;
  };

  /// `ctrl` may be null: reconfig commands then use a lossless scheduled
  /// delivery (the maintenance channel of a fault-free configuration).
  ReconfigApplier(Simulator& sim, ControlFaultModel* ctrl,
                  const ReoptParams& params, TimeNs slot_length,
                  TimeNs wire_latency, Hooks hooks, ReoptStats& stats);

  /// Stage one proposal: the reconfig command crosses the control channel
  /// after `stage_latency` (the budgeted solve cost) plus the wire. May be
  /// dropped (counted, applier returns to Idle). `baseline_window_bytes`
  /// is the goodput of the service window preceding the stage, used to
  /// size the probation guard; `queued_bytes` is the VOQ backlog at stage
  /// time, which keeps the guard armed even when that window delivered
  /// nothing (a starved fabric is not an idle one). `chaos` marks a poison
  /// proposal.
  void stage(SlotOptimizer::Proposal proposal, TimeNs stage_latency,
             std::uint64_t baseline_window_bytes, TimeNs baseline_window,
             std::uint64_t queued_bytes, bool chaos);

  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] bool idle() const { return state_ == State::kIdle; }

 private:
  void on_command_arrival(std::uint64_t gen);
  void on_probation_end(std::uint64_t gen);

  Simulator& sim_;
  ControlFaultModel* ctrl_;
  ReoptParams params_;
  TimeNs slot_length_;
  TimeNs wire_;
  Hooks hooks_;
  ReoptStats& stats_;

  State state_ = State::kIdle;
  /// Generation guard for the in-flight command / probation-end events;
  /// bumped whenever the state machine resets, mirroring the ControlPlane
  /// epoch pattern (equality-compared, so wraparound is harmless).
  std::uint64_t gen_ = 0;

  SlotOptimizer::Proposal staged_;
  std::vector<BitMatrix> stashed_;     ///< pre-apply tables for rollback
  TimeNs stage_time_{};
  std::uint64_t expected_probation_bytes_ = 0;
  TimeNs apply_time_{};
  std::uint64_t bytes_at_apply_ = 0;
  std::uint64_t violations_at_apply_ = 0;
};

}  // namespace pmx
