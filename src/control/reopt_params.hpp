#pragma once

#include <cstddef>
#include <cstdint>

#include "common/time.hpp"

namespace pmx {

/// Configuration of the online slot-table re-optimization service loop
/// (DESIGN.md §14). Disabled by default: no service is instantiated and the
/// system behaves bit-identically to the static design, mirroring the
/// fault/ctrl/audit/admission sub-parameter conventions.
struct ReoptParams {
  /// Re-solve cadence in TDM slots (the service clock's period is
  /// period_slots * slot_length). 0 disables the loop entirely.
  std::size_t period_slots = 0;

  /// EWMA smoothing shift k: at every service tick the per-pair demand
  /// average moves toward the window sample by 1/2^k of the gap. All
  /// arithmetic is integral fixed-point (see DemandEstimator).
  std::uint32_t ewma_shift = 2;

  /// Fold current VOQ occupancy (queued-but-undelivered bytes) into the
  /// window sample, so backlogged pairs count as demand even when starved
  /// of slots (delivery counters alone would under-report exactly the
  /// pairs the current table is failing).
  bool fold_occupancy = true;

  /// Reconfiguration penalty: demand units charged per crosspoint that
  /// differs between the proposed and the live tables ("Costly Circuits" --
  /// reconfiguration has a cost that must be traded against coverage).
  std::uint64_t change_penalty = 64;

  /// Hysteresis: a proposal is staged only when its score exceeds the
  /// score of the live tables (coverage under the same demand, zero change
  /// cost) by at least this many demand units. Suppresses churn-for-churn.
  std::uint64_t min_gain = 64;

  /// Budgeted greedy solve: at most this many demand pairs are examined
  /// per solve. Each examined batch of `num_nodes` pairs costs one
  /// scheduler pass (80 ns) of staging latency, modeling the SL-array
  /// cost of evaluating candidate insertions.
  std::size_t work_budget = 256;

  /// Probation window after an apply, in TDM slots: goodput and auditor
  /// state are watched for this long before the new tables are committed.
  std::size_t probation_slots = 32;

  /// Rollback guard: if goodput delivered during probation drops below
  /// this percentage of the pre-apply baseline window, the apply is rolled
  /// back to the stashed tables.
  std::uint32_t guard_threshold_pct = 50;

  /// Chaos hook for forced-rollback testing: every Nth staged proposal is
  /// replaced with deliberately demandless poison tables (a full rotation
  /// permutation pinned into every slot), guaranteeing a goodput collapse
  /// the probation guard must catch and roll back. 0 = off.
  std::size_t chaos_empty_every = 0;

  [[nodiscard]] bool enabled() const { return period_slots > 0; }

  /// Fail fast on nonsensical knobs; aborts via PMX_CHECK (definition in
  /// reopt_service.cpp so this header stays dependency-light).
  void validate() const;
};

}  // namespace pmx
