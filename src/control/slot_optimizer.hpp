#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bitmatrix.hpp"
#include "control/demand_estimator.hpp"

namespace pmx {

/// Budgeted greedy slot-table re-solver (Minaeva et al.'s budgeted framing
/// of TDM slot allocation, scaled to the 80 ns SL-array cost model).
///
/// Given a demand snapshot and the live K configuration registers, proposes
/// new partial-permutation tables maximizing covered demand minus a
/// reconfiguration penalty per changed crosspoint. Greedy by (demand desc,
/// src, dst), crosspoint-stable: a pair that is already realized in a live
/// slot is re-placed in that same slot whenever its ports are still free
/// there, so the change cost of a stable demand pattern is zero.
///
/// Everything is integral and index-ordered; for one (demand, current)
/// input the proposal is byte-identical across runs and thread counts.
class SlotOptimizer {
 public:
  struct Options {
    std::size_t num_nodes = 0;
    std::size_t num_slots = 1;         ///< K configuration registers
    std::uint64_t change_penalty = 0;  ///< demand units per changed crosspoint
    std::size_t work_budget = 256;     ///< max demand pairs examined
  };

  struct Proposal {
    std::vector<BitMatrix> tables;     ///< K partial permutations
    std::uint64_t covered = 0;         ///< demand covered by the tables
    std::uint64_t changed = 0;         ///< crosspoints differing from live
    std::int64_t score = 0;            ///< covered - penalty * changed
    std::size_t pairs_examined = 0;    ///< greedy work actually spent
  };

  explicit SlotOptimizer(const Options& options);

  /// Propose new tables for `demand` given the live `current` tables
  /// (`current` may be shorter than K; missing slots count as empty).
  [[nodiscard]] Proposal solve(const std::vector<DemandEstimator::Demand>& demand,
                               const std::vector<BitMatrix>& current) const;

  /// Score the live tables against the same demand (coverage only, zero
  /// change cost) -- the hysteresis baseline a proposal must beat.
  [[nodiscard]] std::int64_t baseline_score(
      const std::vector<DemandEstimator::Demand>& demand,
      const std::vector<BitMatrix>& current) const;

  /// Staging latency of one solve under the 80 ns pass cost model: one
  /// scheduler pass per examined batch of `num_nodes` pairs, plus one pass
  /// per configuration register written.
  [[nodiscard]] std::size_t solve_passes(std::size_t pairs_examined) const;

  [[nodiscard]] const Options& options() const { return opt_; }

 private:
  Options opt_;
};

}  // namespace pmx
