#include "control/reopt_service.hpp"

#include <utility>

#include "common/assert.hpp"

namespace pmx {

void ReoptParams::validate() const {
  if (!enabled()) {
    return;
  }
  PMX_CHECK(ewma_shift >= 1 && ewma_shift <= 16,
            "EWMA shift must be in [1, 16]");
  PMX_CHECK(work_budget >= 1, "work budget must be positive");
  PMX_CHECK(probation_slots >= 1, "probation window must be positive");
  PMX_CHECK(guard_threshold_pct <= 100,
            "goodput guard is a percentage of the baseline");
}

ReoptService::ReoptService(Simulator& sim, ControlFaultModel* ctrl,
                           const ReoptParams& params, std::size_t num_nodes,
                           std::size_t num_slots, TimeNs slot_length,
                           TimeNs wire_latency, TimeNs scheduler_latency,
                           Hooks hooks)
    : sim_(sim),
      params_(params),
      num_slots_(num_slots),
      scheduler_latency_(scheduler_latency),
      hooks_(std::move(hooks)),
      estimator_(num_nodes, params.ewma_shift),
      // The optimizer plans over K-1 registers: the last register is never
      // pinned by a proposal, so the reactive path always has at least one
      // slot to establish connections the plan does not cover. Pinning all
      // K would lock uncovered (src, dst) pairs out of the fabric forever.
      optimizer_(SlotOptimizer::Options{num_nodes, num_slots - 1,
                                        params.change_penalty,
                                        params.work_budget}),
      clock_(sim, slot_length * static_cast<std::int64_t>(params.period_slots),
             [this] { on_tick(); }) {
  PMX_CHECK(params_.enabled(), "reopt service constructed while disabled");
  PMX_CHECK(num_slots >= 2,
            "re-optimization needs at least two configuration registers "
            "(one always stays with the reactive scheduler)");
  params_.validate();
  applier_ = std::make_unique<ReconfigApplier>(
      sim, ctrl, params_, slot_length, wire_latency, hooks_.applier, stats_);
}

void ReoptService::start() { clock_.start(); }

void ReoptService::on_tick() {
  // Close the demand window: fold queued-but-undelivered backlog in first
  // (starved pairs are demand too), then roll the EWMA. The backlog total
  // also arms the probation guard's starvation floor below.
  std::uint64_t queued = 0;
  if (hooks_.visit_queues) {
    hooks_.visit_queues(
        [this, &queued](NodeId u, NodeId v, std::uint64_t bytes) {
          queued += bytes;
          if (params_.fold_occupancy) {
            estimator_.observe(u, v, bytes);
          }
        });
  }
  estimator_.roll();

  const std::uint64_t delivered = hooks_.applier.delivered_bytes();
  last_window_bytes_ = delivered - bytes_at_last_tick_;
  bytes_at_last_tick_ = delivered;

  if (!applier_->idle()) {
    // Bounded disruption: at most one reconfiguration in flight. The next
    // window's solve sees fresher demand anyway.
    return;
  }

  const std::vector<DemandEstimator::Demand> demand = estimator_.snapshot();
  if (demand.empty()) {
    return;
  }
  ++stats_.solves;
  const std::vector<BitMatrix> current = hooks_.applier.capture();
  SlotOptimizer::Proposal proposal = optimizer_.solve(demand, current);
  const TimeNs stage_latency =
      scheduler_latency_ *
      static_cast<std::int64_t>(optimizer_.solve_passes(
          proposal.pairs_examined));

  ++proposal_counter_;
  const bool chaos = params_.chaos_empty_every > 0 &&
                     proposal_counter_ % params_.chaos_empty_every == 0;
  if (chaos) {
    // Poison proposal: every slot -- including the register normally
    // reserved for the reactive path -- pinned to a demandless full
    // permutation (u -> u+1 mod n). With skip-unrequested rotation the
    // fabric idles and the reactive path has no unpinned slot to recover
    // through -- exactly the catastrophic wrong-table case the probation
    // guard and rollback must catch.
    const std::size_t n = estimator_.num_nodes();
    BitMatrix poison(n);
    for (NodeId u = 0; u < n; ++u) {
      poison.set(u, (u + 1) % n);
    }
    proposal.tables.assign(num_slots_, poison);
    proposal.covered = 0;
  } else {
    // Hysteresis: only reconfigure when the proposal beats what the live
    // tables already cover by at least min_gain demand units.
    const std::int64_t base = optimizer_.baseline_score(demand, current);
    if (proposal.score < base + static_cast<std::int64_t>(params_.min_gain)) {
      return;
    }
    // Pad to the full register count: the reserved last table is empty, so
    // the apply unloads that slot and hands it to the reactive scheduler.
    proposal.tables.resize(num_slots_, BitMatrix(estimator_.num_nodes()));
  }

  applier_->stage(std::move(proposal), stage_latency, last_window_bytes_,
                  period(), queued, chaos);
}

}  // namespace pmx
