#include "control/slot_optimizer.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace pmx {

SlotOptimizer::SlotOptimizer(const Options& options) : opt_(options) {
  PMX_CHECK(opt_.num_nodes >= 2, "slot optimizer needs at least two nodes");
  PMX_CHECK(opt_.num_slots >= 1, "slot optimizer needs at least one slot");
  PMX_CHECK(opt_.work_budget >= 1, "work budget must be positive");
}

std::size_t SlotOptimizer::solve_passes(std::size_t pairs_examined) const {
  const std::size_t batches =
      (pairs_examined + opt_.num_nodes - 1) / opt_.num_nodes;
  return batches + opt_.num_slots;
}

std::int64_t SlotOptimizer::baseline_score(
    const std::vector<DemandEstimator::Demand>& demand,
    const std::vector<BitMatrix>& current) const {
  std::int64_t covered = 0;
  for (const auto& d : demand) {
    for (const auto& table : current) {
      if (table.get(d.src, d.dst)) {
        covered += static_cast<std::int64_t>(d.demand);
        break;
      }
    }
  }
  return covered;
}

SlotOptimizer::Proposal SlotOptimizer::solve(
    const std::vector<DemandEstimator::Demand>& demand,
    const std::vector<BitMatrix>& current) const {
  const std::size_t n = opt_.num_nodes;
  const std::size_t k = opt_.num_slots;

  // Budgeted greedy: heaviest demand first, ties by (src, dst) so the
  // placement order is a total function of the snapshot.
  std::vector<DemandEstimator::Demand> order = demand;
  std::stable_sort(order.begin(), order.end(),
                   [](const DemandEstimator::Demand& a,
                      const DemandEstimator::Demand& b) {
                     if (a.demand != b.demand) {
                       return a.demand > b.demand;
                     }
                     if (a.src != b.src) {
                       return a.src < b.src;
                     }
                     return a.dst < b.dst;
                   });
  if (order.size() > opt_.work_budget) {
    order.resize(opt_.work_budget);
  }

  Proposal p;
  p.tables.assign(k, BitMatrix(n));
  p.pairs_examined = order.size();

  // Per-slot port occupancy of the proposal under construction.
  std::vector<std::vector<char>> row_used(k, std::vector<char>(n, 0));
  std::vector<std::vector<char>> col_used(k, std::vector<char>(n, 0));

  const auto live_in = [&](NodeId u, NodeId v) -> std::size_t {
    for (std::size_t s = 0; s < current.size() && s < k; ++s) {
      if (current[s].get(u, v)) {
        return s;
      }
    }
    return k;
  };
  const auto place = [&](std::size_t s, NodeId u, NodeId v) {
    p.tables[s].set(u, v);
    row_used[s][u] = 1;
    col_used[s][v] = 1;
  };

  for (const auto& d : order) {
    // Crosspoint stability first: keep the pair in its live slot when that
    // slot's ports are still free, so unchanged demand costs no change.
    const std::size_t home = live_in(d.src, d.dst);
    if (home < k && row_used[home][d.src] == 0 &&
        col_used[home][d.dst] == 0) {
      place(home, d.src, d.dst);
      p.covered += d.demand;
      continue;
    }
    for (std::size_t s = 0; s < k; ++s) {
      if (row_used[s][d.src] == 0 && col_used[s][d.dst] == 0) {
        place(s, d.src, d.dst);
        p.covered += d.demand;
        break;
      }
    }
  }

  for (std::size_t s = 0; s < k; ++s) {
    const BitMatrix* live = s < current.size() ? &current[s] : nullptr;
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = 0; v < n; ++v) {
        const bool now = live != nullptr && live->get(u, v);
        if (p.tables[s].get(u, v) != now) {
          ++p.changed;
        }
      }
    }
  }
  p.score = static_cast<std::int64_t>(p.covered) -
            static_cast<std::int64_t>(opt_.change_penalty) *
                static_cast<std::int64_t>(p.changed);
  return p;
}

}  // namespace pmx
