#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/bitmatrix.hpp"
#include "common/time.hpp"
#include "control/demand_estimator.hpp"
#include "control/reconfig_applier.hpp"
#include "control/reopt_params.hpp"
#include "control/slot_optimizer.hpp"
#include "sim/clock.hpp"
#include "sim/simulator.hpp"

namespace pmx {

/// The online slot-table re-optimization service loop (DESIGN.md §14):
/// DemandEstimator -> SlotOptimizer -> ReconfigApplier on one periodic
/// clock. Owned by a network paradigm, which supplies the fabric hooks; the
/// service itself never touches NIC or scheduler types directly, keeping
/// control/ below nic/ in the layer DAG.
///
/// Every tick: fold VOQ occupancy into the demand window, roll the EWMA,
/// and -- when no reconfiguration is already in flight -- solve for new
/// tables and stage them if they beat the live tables by the hysteresis
/// margin. The staged command crosses the (possibly lossy) control channel;
/// the applier watches a probation window and rolls back on goodput dips
/// or auditor violations.
class ReoptService {
 public:
  struct Hooks {
    ReconfigApplier::Hooks applier;
    /// Walk the current VOQ backlog: call the visitor once per (src, dst)
    /// pair with queued bytes. May be empty when occupancy folding is off.
    std::function<void(
        const std::function<void(NodeId, NodeId, std::uint64_t)>&)>
        visit_queues;
  };

  /// `ctrl` may be null (lossless maintenance channel).
  ReoptService(Simulator& sim, ControlFaultModel* ctrl,
               const ReoptParams& params, std::size_t num_nodes,
               std::size_t num_slots, TimeNs slot_length, TimeNs wire_latency,
               TimeNs scheduler_latency, Hooks hooks);

  /// Start the service clock (first tick one period from now).
  void start();

  /// Account delivered bytes for (u, v) in the current demand window
  /// (called by the owning network on every slot's transfers).
  void observe(NodeId u, NodeId v, std::uint64_t bytes) {
    estimator_.observe(u, v, bytes);
  }

  [[nodiscard]] const ReoptStats& stats() const { return stats_; }
  [[nodiscard]] const DemandEstimator& estimator() const { return estimator_; }
  [[nodiscard]] const ReconfigApplier& applier() const { return *applier_; }
  [[nodiscard]] TimeNs period() const { return clock_.period(); }

 private:
  void on_tick();

  Simulator& sim_;
  ReoptParams params_;
  std::size_t num_slots_;  ///< K registers; the optimizer plans over K-1
  TimeNs scheduler_latency_;
  Hooks hooks_;
  ReoptStats stats_;
  DemandEstimator estimator_;
  SlotOptimizer optimizer_;
  std::unique_ptr<ReconfigApplier> applier_;
  Clock clock_;
  std::uint64_t bytes_at_last_tick_ = 0;
  std::uint64_t last_window_bytes_ = 0;
  std::uint64_t proposal_counter_ = 0;  ///< chaos-hook cadence
};

}  // namespace pmx
