#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/message.hpp"

namespace pmx {

/// Per-(src, dst) demand estimator behind the re-optimization service loop.
///
/// Delivery and VOQ-occupancy bytes observed since the last roll() are
/// accumulated into a window sample; roll() folds the sample into a
/// fixed-point EWMA:
///
///   ewma += ((sample << kFracBits) - ewma) >> shift
///
/// All arithmetic is integral (pmx-lint float rules apply to control/), the
/// update is a pure function of the observation sequence, and state is a
/// flat row-major vector walked in index order, so snapshots are
/// deterministic regardless of observation interleaving within a window.
class DemandEstimator {
 public:
  /// Fixed-point fractional bits of the EWMA accumulator.
  static constexpr std::uint32_t kFracBits = 16;

  /// One demand pair of a snapshot, in (src, dst) index order.
  struct Demand {
    NodeId src = 0;
    NodeId dst = 0;
    std::uint64_t demand = 0;  ///< integer part of the EWMA, in bytes
  };

  DemandEstimator(std::size_t num_nodes, std::uint32_t ewma_shift);

  /// Account `bytes` of demand evidence for (u, v) in the current window
  /// (slot deliveries and, optionally, VOQ backlog).
  void observe(NodeId u, NodeId v, std::uint64_t bytes);

  /// Close the window: fold every pair's sample into its EWMA and zero the
  /// samples. Windows with no observations decay toward zero.
  void roll();

  /// Smoothed demand of (u, v) in bytes (integer part of the EWMA).
  [[nodiscard]] std::uint64_t demand(NodeId u, NodeId v) const {
    return ewma_[index(u, v)] >> kFracBits;
  }
  /// Raw fixed-point accumulator (differential tests).
  [[nodiscard]] std::uint64_t raw(NodeId u, NodeId v) const {
    return ewma_[index(u, v)];
  }

  /// Every pair with nonzero smoothed demand, in (src, dst) order.
  [[nodiscard]] std::vector<Demand> snapshot() const;

  [[nodiscard]] std::size_t num_nodes() const { return n_; }
  [[nodiscard]] std::uint32_t shift() const { return shift_; }
  [[nodiscard]] std::uint64_t rolls() const { return rolls_; }

 private:
  [[nodiscard]] std::size_t index(NodeId u, NodeId v) const {
    return u * n_ + v;
  }

  std::size_t n_;
  std::uint32_t shift_;
  std::uint64_t rolls_ = 0;
  std::vector<std::uint64_t> ewma_;    ///< fixed-point, kFracBits fractional
  std::vector<std::uint64_t> window_;  ///< bytes observed since last roll
};

}  // namespace pmx
