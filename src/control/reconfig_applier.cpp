#include "control/reconfig_applier.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"

namespace pmx {

ReconfigApplier::ReconfigApplier(Simulator& sim, ControlFaultModel* ctrl,
                                 const ReoptParams& params, TimeNs slot_length,
                                 TimeNs wire_latency, Hooks hooks,
                                 ReoptStats& stats)
    : sim_(sim),
      ctrl_(ctrl),
      params_(params),
      slot_length_(slot_length),
      wire_(wire_latency),
      hooks_(std::move(hooks)),
      stats_(stats) {
  params_.validate();
  PMX_CHECK(hooks_.apply && hooks_.capture && hooks_.delivered_bytes &&
                hooks_.violations,
            "reconfig applier needs all four hooks");
}

void ReconfigApplier::stage(SlotOptimizer::Proposal proposal,
                            TimeNs stage_latency,
                            std::uint64_t baseline_window_bytes,
                            TimeNs baseline_window,
                            std::uint64_t queued_bytes, bool chaos) {
  PMX_CHECK(state_ == State::kIdle, "staging while a reconfig is in flight");
  staged_ = std::move(proposal);
  stage_time_ = sim_.now();
  ++stats_.proposals;
  if (chaos) {
    ++stats_.chaos_proposals;
  }
  // Probation guard baseline: scale the last service window's goodput to
  // the probation length. Integral throughout; a truly idle baseline (zero
  // bytes delivered AND zero bytes queued) disarms the goodput guard for
  // this apply -- reconfiguring an idle fabric cannot dip what is not
  // flowing. A starved fabric is different: when traffic is queued but the
  // last window delivered nothing, the guard stays armed at a one-byte
  // floor so a probation that still moves nothing rolls back. Without the
  // floor, one wedged window would disarm the guard for the next apply and
  // a catastrophic table could pin itself in forever.
  const TimeNs probation = slot_length_ * static_cast<std::int64_t>(
                                              params_.probation_slots);
  expected_probation_bytes_ = 0;
  if (baseline_window > TimeNs::zero()) {
    expected_probation_bytes_ =
        baseline_window_bytes *
        static_cast<std::uint64_t>(probation.ns()) /
        static_cast<std::uint64_t>(baseline_window.ns());
  }
  if (expected_probation_bytes_ == 0 && queued_bytes > 0) {
    expected_probation_bytes_ = 1;
  }

  state_ = State::kStaged;
  const std::uint64_t gen = ++gen_;
  const TimeNs latency = stage_latency + wire_;
  if (ctrl_ != nullptr) {
    // The optimizer's apply command rides the same lossy channel as every
    // other control message: a lost command is a skipped reconfiguration,
    // retried naturally at the next service tick.
    const bool scheduled = ctrl_->send(
        CtrlMsg::kReconfig, latency, [this, gen] { on_command_arrival(gen); });
    if (!scheduled) {
      ++stats_.cmds_lost;
      state_ = State::kIdle;
    }
    return;
  }
  sim_.schedule_after(latency, [this, gen] { on_command_arrival(gen); });
}

void ReconfigApplier::on_command_arrival(std::uint64_t gen) {
  if (gen != gen_ || state_ != State::kStaged) {
    return;
  }
  stashed_ = hooks_.capture();
  apply_time_ = sim_.now();
  stats_.invalidated_ctrl += hooks_.apply(staged_.tables, /*pinned=*/true);
  ++stats_.applies;
  stats_.apply_latency_ns.push_back((apply_time_ - stage_time_).ns());
  bytes_at_apply_ = hooks_.delivered_bytes();
  violations_at_apply_ = hooks_.violations();
  state_ = State::kProbation;
  const TimeNs probation = slot_length_ * static_cast<std::int64_t>(
                                              params_.probation_slots);
  sim_.schedule_after(probation, [this, gen] { on_probation_end(gen); });
}

void ReconfigApplier::on_probation_end(std::uint64_t gen) {
  if (gen != gen_ || state_ != State::kProbation) {
    return;
  }
  const std::uint64_t delivered = hooks_.delivered_bytes() - bytes_at_apply_;
  const bool violated = hooks_.violations() > violations_at_apply_;
  // Goodput guard: delivered * 100 < expected * pct, all integral.
  const bool dipped =
      delivered * 100 < expected_probation_bytes_ * params_.guard_threshold_pct;
  if (violated || dipped) {
    // Roll back to the stashed pre-apply tables, unpinned: the reactive
    // path owns every slot again until the next solve earns trust. The
    // rollback command uses the lossless maintenance channel (like the A7
    // resync itself) -- an un-revertable bad table would be a wedge.
    stats_.invalidated_ctrl += hooks_.apply(stashed_, /*pinned=*/false);
    ++stats_.rollbacks;
    if (expected_probation_bytes_ > delivered) {
      stats_.dip_depth_bytes = std::max(stats_.dip_depth_bytes,
                                        expected_probation_bytes_ - delivered);
    }
    stats_.dip_duration_ns += (sim_.now() - apply_time_).ns();
  }
  state_ = State::kIdle;
  ++gen_;
}

}  // namespace pmx
