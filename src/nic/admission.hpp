#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/time.hpp"

namespace pmx {

/// What the NIC-side admission controller does with an arriving message when
/// the source's virtual output queues are at capacity.
enum class ShedPolicy : std::uint8_t {
  /// Reject the arriving message (classic tail drop at the NIC queue).
  kTailDrop,
  /// Push out the youngest fully-unsent queued message to admit the
  /// newcomer (LIFO push-out: preserves the oldest queued work).
  kDropNewest,
  /// Push out the oldest fully-unsent queued message to admit the newcomer
  /// (FIFO push-out: bounds queueing delay of what stays).
  kDropOldest,
  /// Shed only queued messages whose age exceeds `AdmissionParams::deadline`
  /// (their delivery would be useless anyway); if nothing has expired the
  /// newcomer is rejected instead. The expiry is encoded as an integer Rank
  /// exactly like the policy engine's deadline rank function
  /// (make_deadline_rank): rank = submit_time + deadline, expired when
  /// rank <= now, evicted lowest-rank-first with (rank, src, dst)
  /// tie-breaking.
  kDeadline,
  /// Do not shed at all: refuse the submission and make the source retry
  /// later (closed-loop backpressure; the driver accounts the stall time).
  kBackpressure,
};

[[nodiscard]] std::string to_string(ShedPolicy policy);
/// Parse "tail-drop" | "drop-newest" | "drop-oldest" | "deadline" |
/// "backpressure" (bench sweep axes). Aborts on unknown names.
[[nodiscard]] ShedPolicy parse_shed_policy(const std::string& name);

/// NIC-side admission control: bounds on the per-source output queues and
/// the policy applied when an arrival would overflow them. Both capacities
/// default to zero (= unbounded), in which case no admission machinery runs
/// at all and the system behaves bit-identically to the unbounded design.
struct AdmissionParams {
  /// Per-source queued-byte budget across all destinations (0 = unbounded).
  std::uint64_t capacity_bytes = 0;
  /// Per-source queued-message budget across all destinations (0 = none).
  std::size_t capacity_msgs = 0;
  ShedPolicy policy = ShedPolicy::kTailDrop;
  /// kDeadline only: a queued message older than this has missed its
  /// deadline and may be shed to make room.
  TimeNs deadline{5'000};

  [[nodiscard]] bool enabled() const {
    return capacity_bytes > 0 || capacity_msgs > 0;
  }

  void validate() const;
};

}  // namespace pmx
