#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/message.hpp"
#include "common/stats.hpp"
#include "common/time.hpp"
#include "fault/control_fault.hpp"
#include "sim/simulator.hpp"

namespace pmx {

/// The NIC <-> TdmScheduler control endpoints under a lossy control channel.
///
/// With the control-fault layer off, a NIC's request bit R[u][v] is a wire
/// the scheduler reads instantly and losslessly (the seed model). With it
/// on, request/release updates and grant/revoke replies become messages
/// routed through the ControlFaultModel, and the two ends keep *views* that
/// can diverge:
///   * NIC side  -- wants (the true intent, mirrors the VOQ), granted (the
///     NIC's belief about its connection), a per-pair grant watchdog that
///     reissues unacknowledged requests with exponential backoff;
///   * scheduler side -- the R matrix itself (owned by TdmScheduler) plus a
///     per-pair activity stamp backing the lease that auto-expires holds
///     whose release was lost.
///
/// One instance serves a whole network (state is per source-destination
/// pair); TdmNetwork models the grant line (data gated on `granted`),
/// PreloadTdmNetwork runs request/release only (grant_line = false --
/// preloaded configuration registers are written directly, so there is no
/// grant reply to lose).
class ControlPlane {
 public:
  struct Options {
    std::size_t num_nodes = 0;
    /// One-way NIC <-> scheduler control latency.
    TimeNs wire_latency{};
    /// Model scheduler -> NIC grant/revoke replies and track the NIC's
    /// granted-belief (dynamic TDM). Off, send_grant() is a no-op.
    bool grant_line = true;
    /// Self-healing on (watchdog reissue + lease expiry).
    bool heal = true;
  };

  /// Runs at the scheduler when a request (value=true) or release
  /// (value=false) message arrives.
  using ApplyRequestFn = std::function<void(NodeId, NodeId, bool)>;

  ControlPlane(Simulator& sim, ControlFaultModel& ctrl, const Options& options,
               CounterSet& counters, ApplyRequestFn apply);

  // --- NIC side ------------------------------------------------------------
  /// Raise intent for (u, v): sends a request message and arms the grant
  /// watchdog. Idempotent while intent is already raised.
  void want(NodeId u, NodeId v);
  /// Drop intent: sends a release message, disarms the watchdog. A lost
  /// release is healed scheduler-side by the lease.
  void unwant(NodeId u, NodeId v);
  [[nodiscard]] bool wants(NodeId u, NodeId v) const {
    return pair(u, v).wants;
  }
  /// The NIC's belief that the scheduler holds its connection. Always true
  /// when the grant line is not modeled.
  [[nodiscard]] bool granted(NodeId u, NodeId v) const {
    return !grant_line_ || pair(u, v).granted;
  }
  /// Data moved for (u, v): feeds the watchdog's progress detector so an
  /// active pair is never spuriously reissued.
  void note_progress(NodeId u, NodeId v);

  // --- Scheduler side ------------------------------------------------------
  /// Send a grant (value=true) or revoke (value=false) reply to the NIC.
  /// On revoke arrival the NIC re-requests immediately if it still wants
  /// the pair. No-op when the grant line is not modeled.
  void send_grant(NodeId u, NodeId v, bool value);
  /// Stamp scheduler-side activity for (u, v): request arrival,
  /// establishment, or data observed in a slot.
  void refresh_lease(NodeId u, NodeId v);
  /// True when healing leases are armed (heal && lease > 0).
  [[nodiscard]] bool lease_active() const;
  /// True when (u, v)'s activity stamp is older than the lease.
  [[nodiscard]] bool lease_expired(NodeId u, NodeId v) const;

  // --- Audit hooks ---------------------------------------------------------
  /// Control messages for (u, v) still in flight (scheduled deliveries).
  [[nodiscard]] bool inflight(NodeId u, NodeId v) const {
    const PairState& p = pair(u, v);
    return p.pending_request > 0 || p.pending_grant > 0;
  }
  [[nodiscard]] bool watchdog_armed(NodeId u, NodeId v) const {
    return pair(u, v).watchdog != 0;
  }
  [[nodiscard]] bool healing() const { return heal_; }

  // --- Resync (auditor recovery mode) --------------------------------------
  /// Invalidate every in-flight control message and watchdog (epoch bump);
  /// callers then rebuild both views pair by pair via force_state(). Returns
  /// how many in-flight messages were invalidated (disruption accounting for
  /// the re-optimization service).
  std::size_t begin_resync();
  /// Current resync epoch. All epoch guards compare for equality only, so
  /// the counter is wraparound-safe; see jump_epoch().
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  /// Maintenance/test hook: jump the epoch counter to an arbitrary value
  /// (e.g. near 2^64 for wraparound soak tests). In-flight messages from the
  /// old epoch go stale, exactly as under begin_resync().
  void jump_epoch(std::uint64_t epoch) { epoch_ = epoch; }
  /// Overwrite (u, v)'s state with ground truth: NIC intent and the
  /// scheduler's established bit. Re-arms the watchdog for wanted pairs and
  /// refreshes the lease.
  void force_state(NodeId u, NodeId v, bool wants, bool granted);

 private:
  struct PairState {
    bool wants = false;
    bool granted = false;
    /// Progress (data or a grant) observed since the watchdog last fired.
    bool progressed = false;
    std::uint32_t attempts = 1;
    std::uint32_t pending_request = 0;  ///< requests/releases in flight
    std::uint32_t pending_grant = 0;    ///< grants/revokes in flight
    EventId watchdog = 0;               ///< 0 = unarmed
    TimeNs lease_stamp{};
  };

  [[nodiscard]] PairState& pair(NodeId u, NodeId v) {
    return pairs_[u * n_ + v];
  }
  [[nodiscard]] const PairState& pair(NodeId u, NodeId v) const {
    return pairs_[u * n_ + v];
  }

  void send_request(NodeId u, NodeId v, bool value);
  void arm_watchdog(NodeId u, NodeId v);
  void on_watchdog(NodeId u, NodeId v);

  Simulator& sim_;
  ControlFaultModel& ctrl_;
  std::size_t n_;
  TimeNs wire_;
  bool grant_line_;
  bool heal_;
  CounterSet& counters_;
  ApplyRequestFn apply_;
  std::vector<PairState> pairs_;
  /// Bumped by begin_resync(); in-flight deliveries and watchdogs capture
  /// the epoch they were scheduled under and go inert on mismatch.
  std::uint64_t epoch_ = 0;
};

}  // namespace pmx
