#include "nic/voq.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace pmx {

VoqSet::VoqSet(std::size_t num_dests)
    : queues_(num_dests), pending_(num_dests) {}

void VoqSet::set_capacity(std::uint64_t max_bytes, std::size_t max_msgs) {
  max_bytes_ = max_bytes;
  max_msgs_ = max_msgs;
}

bool VoqSet::would_overflow(std::uint64_t bytes) const {
  if (max_bytes_ > 0 && total_bytes_ + bytes > max_bytes_) {
    return true;
  }
  return max_msgs_ > 0 && total_msgs_ + 1 > max_msgs_;
}

void VoqSet::push(const Message& msg) {
  PMX_CHECK(msg.dst < queues_.size(), "VOQ destination out of range");
  PMX_CHECK(msg.bytes > 0, "zero-byte message");
  queues_[msg.dst].push_back(  // pmx-lint: allow(unbounded-queue)
      Entry{msg, msg.bytes});  // admission layer enforces would_overflow
  pending_.set(msg.dst);
  total_bytes_ += msg.bytes;
  peak_bytes_ = std::max(peak_bytes_, total_bytes_);
  ++total_msgs_;
}

std::size_t VoqSet::total_depth() const { return total_msgs_; }

std::uint64_t VoqSet::total_bytes() const { return total_bytes_; }

const Message& VoqSet::head(NodeId dst) const {
  PMX_CHECK(!queues_[dst].empty(), "head of empty VOQ");
  return queues_[dst].front().msg;
}

std::uint64_t VoqSet::head_remaining(NodeId dst) const {
  PMX_CHECK(!queues_[dst].empty(), "head of empty VOQ");
  return queues_[dst].front().remaining;
}

// pmx-hot
std::uint64_t VoqSet::consume(NodeId dst, std::uint64_t budget,
                              Message* completed) {
  PMX_CHECK(!queues_[dst].empty(), "consume from empty VOQ");
  Entry& e = queues_[dst].front();
  const std::uint64_t taken = std::min(budget, e.remaining);
  e.remaining -= taken;
  total_bytes_ -= taken;
  if (e.remaining == 0) {
    if (completed != nullptr) {
      *completed = e.msg;
    }
    queues_[dst].pop_front();
    --total_msgs_;
    if (queues_[dst].empty()) {
      pending_.clear(dst);
    }
  } else if (completed != nullptr) {
    *completed = Message{};  // sentinel: id 0, bytes 0
  }
  return taken;
}

std::optional<Message> VoqSet::evict(bool oldest, TimeNs cutoff,
                                     std::optional<NodeId> protect_dst) {
  NodeId best_dst = 0;
  std::size_t best_pos = 0;
  const Message* best = nullptr;
  const auto better = [&](const Message& m) {
    if (best == nullptr) {
      return true;
    }
    if (m.submit_time != best->submit_time) {
      return oldest ? m.submit_time < best->submit_time
                    : m.submit_time > best->submit_time;
    }
    return oldest ? m.id < best->id : m.id > best->id;
  };
  pending_.for_each_set([&](std::size_t d) {
    const auto& q = queues_[d];
    for (std::size_t pos = 0; pos < q.size(); ++pos) {
      const Entry& e = q[pos];
      if (pos == 0) {
        // A partially-drained head (or the protected in-flight head) has
        // bytes on the wire already; it must complete normally.
        if (e.remaining != e.msg.bytes ||
            (protect_dst.has_value() && *protect_dst == d)) {
          continue;
        }
      }
      if (e.msg.submit_time > cutoff) {
        continue;
      }
      if (better(e.msg)) {
        best = &e.msg;
        best_dst = static_cast<NodeId>(d);
        best_pos = pos;
      }
    }
  });
  if (best == nullptr) {
    return std::nullopt;
  }
  const Message victim = *best;
  auto& q = queues_[best_dst];
  q.erase(q.begin() + static_cast<std::ptrdiff_t>(best_pos));
  total_bytes_ -= victim.bytes;
  --total_msgs_;
  if (q.empty()) {
    pending_.clear(best_dst);
  }
  return victim;
}

}  // namespace pmx
