#include "nic/voq.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace pmx {

VoqSet::VoqSet(std::size_t num_dests) : queues_(num_dests) {}

void VoqSet::push(const Message& msg) {
  PMX_CHECK(msg.dst < queues_.size(), "VOQ destination out of range");
  PMX_CHECK(msg.bytes > 0, "zero-byte message");
  queues_[msg.dst].push_back(Entry{msg, msg.bytes});
  total_bytes_ += msg.bytes;
  ++total_msgs_;
}

std::size_t VoqSet::total_depth() const { return total_msgs_; }

std::uint64_t VoqSet::total_bytes() const { return total_bytes_; }

const Message& VoqSet::head(NodeId dst) const {
  PMX_CHECK(!queues_[dst].empty(), "head of empty VOQ");
  return queues_[dst].front().msg;
}

std::uint64_t VoqSet::head_remaining(NodeId dst) const {
  PMX_CHECK(!queues_[dst].empty(), "head of empty VOQ");
  return queues_[dst].front().remaining;
}

std::uint64_t VoqSet::consume(NodeId dst, std::uint64_t budget,
                              Message* completed) {
  PMX_CHECK(!queues_[dst].empty(), "consume from empty VOQ");
  Entry& e = queues_[dst].front();
  const std::uint64_t taken = std::min(budget, e.remaining);
  e.remaining -= taken;
  total_bytes_ -= taken;
  if (e.remaining == 0) {
    if (completed != nullptr) {
      *completed = e.msg;
    }
    queues_[dst].pop_front();
    --total_msgs_;
  } else if (completed != nullptr) {
    *completed = Message{};  // sentinel: id 0, bytes 0
  }
  return taken;
}

std::vector<NodeId> VoqSet::pending_destinations() const {
  std::vector<NodeId> dests;
  for (NodeId d = 0; d < queues_.size(); ++d) {
    if (!queues_[d].empty()) {
      dests.push_back(d);
    }
  }
  return dests;
}

}  // namespace pmx
