#include "nic/control_plane.hpp"

#include "common/assert.hpp"

namespace pmx {

ControlPlane::ControlPlane(Simulator& sim, ControlFaultModel& ctrl,
                           const Options& options, CounterSet& counters,
                           ApplyRequestFn apply)
    : sim_(sim),
      ctrl_(ctrl),
      n_(options.num_nodes),
      wire_(options.wire_latency),
      grant_line_(options.grant_line),
      heal_(options.heal),
      counters_(counters),
      apply_(std::move(apply)),
      pairs_(options.num_nodes * options.num_nodes) {
  PMX_CHECK(n_ >= 2, "control plane needs at least two nodes");
  PMX_CHECK(wire_ >= TimeNs::zero(), "negative control wire latency");
  PMX_CHECK(apply_ != nullptr, "control plane needs an apply hook");
}

void ControlPlane::want(NodeId u, NodeId v) {
  PairState& p = pair(u, v);
  if (p.wants) {
    return;
  }
  p.wants = true;
  p.attempts = 1;
  p.progressed = false;
  send_request(u, v, true);
  if (heal_) {
    arm_watchdog(u, v);
  }
}

void ControlPlane::unwant(NodeId u, NodeId v) {
  PairState& p = pair(u, v);
  if (!p.wants) {
    return;
  }
  p.wants = false;
  p.attempts = 1;
  if (p.watchdog != 0) {
    sim_.cancel(p.watchdog);
    p.watchdog = 0;
  }
  send_request(u, v, false);
}

void ControlPlane::note_progress(NodeId u, NodeId v) {
  pair(u, v).progressed = true;
}

void ControlPlane::send_request(NodeId u, NodeId v, bool value) {
  PairState& p = pair(u, v);
  const CtrlMsg kind = value ? CtrlMsg::kRequest : CtrlMsg::kRelease;
  const bool scheduled =
      ctrl_.send(kind, wire_, [this, u, v, value, ep = epoch_] {
        if (ep != epoch_) {
          counters_.counter("ctrl_stale") += 1;
          return;
        }
        PairState& q = pair(u, v);
        if (q.pending_request > 0) {
          --q.pending_request;
        }
        apply_(u, v, value);
      });
  if (scheduled) {
    ++p.pending_request;
  }
}

void ControlPlane::arm_watchdog(NodeId u, NodeId v) {
  PairState& p = pair(u, v);
  p.watchdog = sim_.schedule_after(ctrl_.watchdog_delay(p.attempts),
                                   [this, u, v, ep = epoch_] {
                                     if (ep != epoch_) {
                                       return;
                                     }
                                     on_watchdog(u, v);
                                   });
}

void ControlPlane::on_watchdog(NodeId u, NodeId v) {
  PairState& p = pair(u, v);
  p.watchdog = 0;
  if (!p.wants || !heal_) {
    return;
  }
  if (p.progressed) {
    // The pair made progress (grant arrived or data flowed) since the last
    // check: the request evidently got through. Reset the backoff.
    p.progressed = false;
    p.attempts = 1;
    arm_watchdog(u, v);
    return;
  }
  // No evidence the scheduler ever heard us: reissue with backoff. Safe
  // when the original was merely delayed -- a duplicate request on an
  // established pair just refreshes its lease.
  ++p.attempts;
  counters_.counter("ctrl_rerequests") += 1;
  send_request(u, v, true);
  arm_watchdog(u, v);
}

void ControlPlane::send_grant(NodeId u, NodeId v, bool value) {
  if (!grant_line_) {
    return;
  }
  PairState& p = pair(u, v);
  const bool scheduled =
      ctrl_.send(CtrlMsg::kGrant, wire_, [this, u, v, value, ep = epoch_] {
        if (ep != epoch_) {
          counters_.counter("ctrl_stale") += 1;
          return;
        }
        PairState& q = pair(u, v);
        if (q.pending_grant > 0) {
          --q.pending_grant;
        }
        if (value) {
          q.granted = true;
          q.progressed = true;
          return;
        }
        q.granted = false;
        if (q.wants) {
          // Revoked while traffic is still queued (lease expiry racing new
          // demand, or a predictor release): re-request immediately.
          counters_.counter("ctrl_rerequests") += 1;
          send_request(u, v, true);
        }
      });
  if (scheduled) {
    ++p.pending_grant;
  }
}

void ControlPlane::refresh_lease(NodeId u, NodeId v) {
  pair(u, v).lease_stamp = sim_.now();
}

bool ControlPlane::lease_active() const {
  return heal_ && ctrl_.params().lease > TimeNs::zero();
}

bool ControlPlane::lease_expired(NodeId u, NodeId v) const {
  if (!lease_active()) {
    return false;
  }
  return sim_.now() - pair(u, v).lease_stamp >= ctrl_.params().lease;
}

std::size_t ControlPlane::begin_resync() {
  ++epoch_;
  std::size_t invalidated = 0;
  for (PairState& p : pairs_) {
    if (p.watchdog != 0) {
      sim_.cancel(p.watchdog);
      p.watchdog = 0;
    }
    invalidated += p.pending_request + p.pending_grant;
    p.pending_request = 0;
    p.pending_grant = 0;
    p.attempts = 1;
    p.progressed = false;
  }
  return invalidated;
}

void ControlPlane::force_state(NodeId u, NodeId v, bool wants, bool granted) {
  PairState& p = pair(u, v);
  p.wants = wants;
  p.granted = granted;
  p.lease_stamp = sim_.now();
  if (wants && heal_) {
    arm_watchdog(u, v);
  }
}

}  // namespace pmx
