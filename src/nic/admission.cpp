#include "nic/admission.hpp"

#include "common/assert.hpp"

namespace pmx {

std::string to_string(ShedPolicy policy) {
  switch (policy) {
    case ShedPolicy::kTailDrop:
      return "tail-drop";
    case ShedPolicy::kDropNewest:
      return "drop-newest";
    case ShedPolicy::kDropOldest:
      return "drop-oldest";
    case ShedPolicy::kDeadline:
      return "deadline";
    case ShedPolicy::kBackpressure:
      return "backpressure";
  }
  return "unknown";
}

ShedPolicy parse_shed_policy(const std::string& name) {
  if (name == "tail-drop") {
    return ShedPolicy::kTailDrop;
  }
  if (name == "drop-newest") {
    return ShedPolicy::kDropNewest;
  }
  if (name == "drop-oldest") {
    return ShedPolicy::kDropOldest;
  }
  if (name == "deadline") {
    return ShedPolicy::kDeadline;
  }
  if (name == "backpressure") {
    return ShedPolicy::kBackpressure;
  }
  PMX_CHECK(false, ("unknown shed policy: " + name).c_str());
  return ShedPolicy::kTailDrop;
}

void AdmissionParams::validate() const {
  if (!enabled()) {
    return;
  }
  if (policy == ShedPolicy::kDeadline) {
    PMX_CHECK(deadline > TimeNs::zero(),
              "deadline shed policy needs a positive deadline");
  }
}

}  // namespace pmx
