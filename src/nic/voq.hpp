#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "nic/message.hpp"

namespace pmx {

/// The N logical output queues of one NIC (Section 4): one FIFO per
/// destination, plus per-head "remaining bytes" tracking so a message can be
/// fragmented across TDM slots.
///
/// The request signal R_u that the NIC sends to the scheduler is exactly the
/// non-empty bitmap of these queues.
class VoqSet {
 public:
  explicit VoqSet(std::size_t num_dests);

  [[nodiscard]] std::size_t num_dests() const { return queues_.size(); }

  /// Enqueue a message for its destination.
  void push(const Message& msg);

  [[nodiscard]] bool empty(NodeId dst) const { return queues_[dst].empty(); }
  [[nodiscard]] std::size_t depth(NodeId dst) const {
    return queues_[dst].size();
  }
  /// Total queued messages across all destinations.
  [[nodiscard]] std::size_t total_depth() const;
  /// Total queued bytes (remaining, across all destinations).
  [[nodiscard]] std::uint64_t total_bytes() const;

  /// Message at the head of queue `dst`. Precondition: !empty(dst).
  [[nodiscard]] const Message& head(NodeId dst) const;
  /// Unsent bytes of the head message.
  [[nodiscard]] std::uint64_t head_remaining(NodeId dst) const;

  /// Consume up to `budget` bytes from the head of queue `dst`.
  /// Returns the number of bytes actually consumed; if this completes the
  /// head message it is popped and `*completed` receives it.
  std::uint64_t consume(NodeId dst, std::uint64_t budget, Message* completed);

  /// Destinations with pending traffic (the request vector R_u).
  [[nodiscard]] std::vector<NodeId> pending_destinations() const;

 private:
  struct Entry {
    Message msg;
    std::uint64_t remaining;
  };
  std::vector<std::deque<Entry>> queues_;
  std::uint64_t total_bytes_ = 0;
  std::size_t total_msgs_ = 0;
};

}  // namespace pmx
