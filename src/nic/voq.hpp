#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "common/bitvector.hpp"
#include "common/message.hpp"

namespace pmx {

/// The N logical output queues of one NIC (Section 4): one FIFO per
/// destination, plus per-head "remaining bytes" tracking so a message can be
/// fragmented across TDM slots.
///
/// The request signal R_u that the NIC sends to the scheduler is exactly the
/// non-empty bitmap of these queues, exposed as the maintained `pending()`
/// BitVector (no per-pass allocation).
///
/// Queues may be bounded: `set_capacity` arms a byte/message budget across
/// all destinations and `would_overflow` is the explicit overflow verdict
/// the NIC-side admission controller consults before push. The VoqSet never
/// sheds on its own -- the admission layer decides, using the eviction
/// helpers below to remove a victim.
class VoqSet {
 public:
  explicit VoqSet(std::size_t num_dests);

  [[nodiscard]] std::size_t num_dests() const { return queues_.size(); }

  /// Arm (or change) the capacity budget; 0 means unbounded on that axis.
  void set_capacity(std::uint64_t max_bytes, std::size_t max_msgs);
  [[nodiscard]] std::uint64_t capacity_bytes() const { return max_bytes_; }
  [[nodiscard]] std::size_t capacity_msgs() const { return max_msgs_; }

  /// Overflow verdict: would enqueueing `bytes` more (one more message)
  /// exceed the armed capacity? Always false when unbounded.
  [[nodiscard]] bool would_overflow(std::uint64_t bytes) const;

  /// Enqueue a message for its destination.
  void push(const Message& msg);

  [[nodiscard]] bool empty(NodeId dst) const { return queues_[dst].empty(); }
  [[nodiscard]] std::size_t depth(NodeId dst) const {
    return queues_[dst].size();
  }
  /// Total queued messages across all destinations.
  [[nodiscard]] std::size_t total_depth() const;
  /// Total queued bytes (remaining, across all destinations).
  [[nodiscard]] std::uint64_t total_bytes() const;
  /// Queued bytes (remaining) awaiting destination `dst` -- the demand
  /// estimator's occupancy fold. O(depth of that queue).
  [[nodiscard]] std::uint64_t bytes(NodeId dst) const {
    std::uint64_t total = 0;
    for (const Entry& e : queues_[dst]) {
      total += e.remaining;
    }
    return total;
  }
  /// High-water mark of total_bytes() over the VoqSet's lifetime (bounded-
  /// occupancy assertions in the overload tests).
  [[nodiscard]] std::uint64_t peak_bytes() const { return peak_bytes_; }

  /// Message at the head of queue `dst`. Precondition: !empty(dst).
  [[nodiscard]] const Message& head(NodeId dst) const;
  /// Unsent bytes of the head message.
  [[nodiscard]] std::uint64_t head_remaining(NodeId dst) const;

  /// Consume up to `budget` bytes from the head of queue `dst`.
  /// Returns the number of bytes actually consumed; if this completes the
  /// head message it is popped and `*completed` receives it.
  std::uint64_t consume(NodeId dst, std::uint64_t budget, Message* completed);

  /// Destinations with pending traffic: the request vector R_u, maintained
  /// incrementally (bit d set iff !empty(d)). Scheduler passes iterate this
  /// view directly instead of materializing a vector per pass.
  [[nodiscard]] const BitVector& pending() const { return pending_; }

  /// Remove and return the oldest (`oldest == true`) or youngest queued
  /// message with submit_time <= cutoff, by (submit_time, id) order.
  /// Only fully-unsent messages qualify: a partially-consumed head has
  /// already moved bytes through the fabric and cannot be shed without
  /// corrupting delivery accounting, and the head of `protect_dst` (an
  /// in-flight worm's message) is never touched. Returns nullopt when no
  /// queued message qualifies.
  std::optional<Message> evict(bool oldest, TimeNs cutoff,
                               std::optional<NodeId> protect_dst);

 private:
  struct Entry {
    Message msg;
    std::uint64_t remaining;
  };
  std::vector<std::deque<Entry>> queues_;
  BitVector pending_;
  std::uint64_t total_bytes_ = 0;
  std::size_t total_msgs_ = 0;
  std::uint64_t peak_bytes_ = 0;
  std::uint64_t max_bytes_ = 0;  ///< 0 = unbounded
  std::size_t max_msgs_ = 0;     ///< 0 = unbounded
};

}  // namespace pmx
