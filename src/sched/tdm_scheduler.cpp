#include "sched/tdm_scheduler.hpp"

#include "common/assert.hpp"
#include "sched/presched.hpp"
#include "sched/sl_array.hpp"

namespace pmx {

TdmScheduler::TdmScheduler(const Options& options)
    : n_(options.num_ports),
      k_(options.num_slots),
      rotate_priority_(options.rotate_priority),
      multi_slot_(options.multi_slot_connections),
      skip_unrequested_(options.skip_unrequested_slots),
      requests_(n_),
      holds_(n_),
      down_ports_(n_),
      up_cols_(n_, true),
      usable_(n_),
      slots_(k_, BitMatrix(n_)),
      slot_ai_(k_, BitVector(n_)),
      slot_ao_(k_, BitVector(n_)),
      pinned_(k_, false),
      b_star_(n_),
      zero_(n_),
      slot_clean_(k_, false) {
  PMX_CHECK(n_ >= 2, "scheduler needs at least two ports");
  PMX_CHECK(k_ >= 1, "scheduler needs at least one slot");
  const BitVector ones(n_, true);
  for (std::size_t u = 0; u < n_; ++u) {
    usable_.set_row(u, ones);
  }
}

void TdmScheduler::set_request(std::size_t u, std::size_t v, bool value) {
  PMX_CHECK(u < n_ && v < n_, "request port out of range");
  if (requests_.get(u, v) != value) {
    requests_.set(u, v, value);
    mark_all_dirty();
  }
}

void TdmScheduler::mark_all_dirty() {
  std::fill(slot_clean_.begin(), slot_clean_.end(), false);
}

void TdmScheduler::apply_toggles(std::size_t s, const BitMatrix& toggles) {
  BitMatrix& config = slots_[s];
  BitVector col_flip(n_);
  for (std::size_t u = 0; u < n_; ++u) {
    const BitVector& row = toggles.row(u);
    if (row.none()) {
      continue;
    }
    config.row_xor(u, row);
    col_flip ^= row;
    if (row.count() % 2 == 1) {
      slot_ai_[s].flip(u);
    }
  }
  slot_ao_[s] ^= col_flip;
}

void TdmScheduler::rebuild_slot_occupancy(std::size_t s) {
  slot_ai_[s] = slots_[s].row_or();
  slot_ao_[s] = slots_[s].col_or();
}

void TdmScheduler::preload(std::size_t slot, const BitMatrix& config,
                           bool pinned) {
  PMX_CHECK(slot < k_, "preload slot out of range");
  PMX_CHECK(config.size() == n_, "preload configuration size mismatch");
  PMX_CHECK(config.is_partial_permutation(),
            "preloaded configuration must be a partial permutation");
  slots_[slot] = config;
  pinned_[slot] = pinned;
  rebuild_slot_occupancy(slot);
  rebuild_b_star();
  mark_all_dirty();
}

void TdmScheduler::unload(std::size_t slot) {
  PMX_CHECK(slot < k_, "unload slot out of range");
  slots_[slot].reset();
  slot_ai_[slot].reset();
  slot_ao_[slot].reset();
  pinned_[slot] = false;
  rebuild_b_star();
  mark_all_dirty();
}

std::size_t TdmScheduler::num_pinned() const {
  std::size_t count = 0;
  for (const bool p : pinned_) {
    count += p ? 1U : 0U;
  }
  return count;
}

void TdmScheduler::flush_dynamic() {
  for (std::size_t s = 0; s < k_; ++s) {
    if (!pinned_[s]) {
      slots_[s].reset();
      slot_ai_[s].reset();
      slot_ao_[s].reset();
    }
  }
  holds_.reset();
  rebuild_b_star();
  mark_all_dirty();
  ++stats_.flushes;
}

BitMatrix TdmScheduler::effective_requests() const {
  BitMatrix r_eff = requests_ | holds_;
  if (!any_fault_ && !any_stuck_) {
    return r_eff;
  }
  const BitVector empty_row(n_);
  for (std::size_t u = 0; u < n_; ++u) {
    if (any_fault_ && down_ports_.get(u)) {
      r_eff.set_row(u, empty_row);
      continue;
    }
    BitVector row = r_eff.row(u);
    if (any_fault_) {
      row &= up_cols_;
    }
    if (any_stuck_) {
      row &= usable_.row(u);
    }
    r_eff.set_row(u, row);
  }
  return r_eff;
}

void TdmScheduler::force_clear(
    std::size_t u, std::size_t v,
    std::vector<std::pair<std::size_t, std::size_t>>* released) {
  bool was_established = false;
  for (std::size_t s = 0; s < k_; ++s) {
    if (slots_[s].get(u, v)) {
      slots_[s].set(u, v, false);
      // Partial permutation: (u, v) was the only connection on either port
      // in this slot, so clearing it frees both occupancy bits.
      slot_ai_[s].clear(u);
      slot_ao_[s].clear(v);
      was_established = true;
    }
  }
  if (was_established) {
    ++stats_.forced_releases;
    if (released != nullptr) {
      released->emplace_back(u, v);
    }
  }
}

std::vector<std::pair<std::size_t, std::size_t>> TdmScheduler::set_port_fault(
    std::size_t port, bool down) {
  PMX_CHECK(port < n_, "fault port out of range");
  std::vector<std::pair<std::size_t, std::size_t>> released;
  if (down_ports_.get(port) == down) {
    return released;  // no edge
  }
  down_ports_.set(port, down);
  up_cols_.set(port, !down);
  any_fault_ = down_ports_.any();
  if (down) {
    // Force-release every established connection whose input or output
    // port just died -- reusing the flush machinery's bookkeeping so the
    // slots are reclaimed immediately.
    for (std::size_t v = 0; v < n_; ++v) {
      if (v != port && b_star_.get(port, v)) {
        force_clear(port, v, &released);
      }
      if (v != port && b_star_.get(v, port)) {
        force_clear(v, port, &released);
      }
    }
    rebuild_b_star();
  }
  mark_all_dirty();
  return released;
}

bool TdmScheduler::set_stuck_cell(std::size_t u, std::size_t v) {
  PMX_CHECK(u < n_ && v < n_ && u != v, "invalid stuck cell");
  usable_.set(u, v, false);
  any_stuck_ = true;
  bool released = false;
  if (b_star_.get(u, v)) {
    force_clear(u, v, nullptr);
    rebuild_b_star();
    released = true;
  }
  mark_all_dirty();
  return released;
}

std::optional<std::size_t> TdmScheduler::next_unpinned_slot() {
  for (std::size_t i = 0; i < k_; ++i) {
    const std::size_t s = (sl_cursor_ + i) % k_;
    if (!pinned_[s]) {
      sl_cursor_ = (s + 1) % k_;
      return s;
    }
  }
  return std::nullopt;
}

TdmScheduler::PassResult TdmScheduler::run_pass() {
  PassResult result;
  const auto slot = next_unpinned_slot();
  if (!slot) {
    return result;  // every slot is pinned: nothing to schedule dynamically
  }
  const std::size_t s = *slot;
  result.slot = s;

  if (slot_clean_[s]) {
    // Provably quiescent: the hardware pass would produce an all-zero T.
    ++stats_.passes_elided;
    return result;
  }

  const BitMatrix r_eff = effective_requests();
  const BitMatrix l = preschedule(r_eff, b_star_, slots_[s]);
  const std::size_t origin = rotate_priority_ ? priority_origin_ : 0;

  const BitMatrix b_star_before = b_star_;

  bool touched = false;
  if (l.any()) {
    const SlPassResult pass = sl_array_pass_fast(
        l, slots_[s], slot_ai_[s], slot_ao_[s], origin, origin);
    apply_toggles(s, pass.toggles);
    result.establishes = pass.establishes;
    result.releases = pass.releases;
    result.blocked = pass.blocked;
    touched = pass.toggles.any();
  }

  if (multi_slot_) {
    // Extension 2: replicate already-established, still-requested
    // connections into this slot's idle ports for extra bandwidth.
    BitMatrix l2 = r_eff;
    l2 &= b_star_;
    for (std::size_t u = 0; u < n_; ++u) {
      BitVector row = l2.row(u);
      row.and_not(slots_[s].row(u));
      l2.set_row(u, row);
    }
    if (l2.any()) {
      const SlPassResult dup = sl_array_pass_fast(
          l2, slots_[s], slot_ai_[s], slot_ao_[s], origin, origin);
      apply_toggles(s, dup.toggles);
      result.establishes += dup.establishes;
      touched = touched || dup.toggles.any();
      PMX_CHECK(dup.releases == 0, "duplication pass cannot release");
    }
  }

  if (touched) {
    PMX_CHECK(slots_[s].is_partial_permutation(),
              "SL pass corrupted slot configuration");
    rebuild_b_star();
    // B* feeds every slot's pre-scheduling logic.
    mark_all_dirty();
  } else {
    slot_clean_[s] = true;
  }

  // Report network-level (B*) membership changes for the predictor.
  for (std::size_t u = 0; u < n_; ++u) {
    const BitVector delta = b_star_before.row(u) ^ b_star_.row(u);
    for (std::size_t v = delta.find_first(); v < n_;
         v = delta.find_next(v + 1)) {
      if (b_star_.get(u, v)) {
        result.established_pairs.emplace_back(u, v);
      } else {
        result.released_pairs.emplace_back(u, v);
      }
    }
  }

  if (rotate_priority_) {
    priority_origin_ = (priority_origin_ + 1) % n_;
  }

  ++stats_.passes;
  stats_.establishes += result.establishes;
  stats_.releases += result.releases;
  stats_.blocked += result.blocked;
  return result;
}

std::optional<std::size_t> TdmScheduler::advance_slot() {
  ++stats_.slot_advances;
  const std::size_t start = current_slot_ ? (*current_slot_ + 1) % k_ : 0;
  for (std::size_t i = 0; i < k_; ++i) {
    const std::size_t s = (start + i) % k_;
    const bool live = skip_unrequested_ ? (slots_[s] & requests_).any()
                                        : slots_[s].any();
    if (live) {
      current_slot_ = s;
      stats_.slots_skipped += i;
      return s;
    }
  }
  stats_.slots_skipped += k_;
  current_slot_ = std::nullopt;
  return std::nullopt;
}

const BitMatrix& TdmScheduler::config(std::size_t slot) const {
  PMX_CHECK(slot < k_, "slot out of range");
  return slots_[slot];
}

const BitMatrix& TdmScheduler::active_config() const {
  return current_slot_ ? slots_[*current_slot_] : zero_;
}

bool TdmScheduler::grant(std::size_t u, std::size_t v) const {
  return active_config().get(u, v);
}

std::optional<std::size_t> TdmScheduler::granted_output(std::size_t u) const {
  const std::size_t v = active_config().row(u).find_first();
  if (v < n_) {
    return v;
  }
  return std::nullopt;
}

std::size_t TdmScheduler::live_mux_degree() const {
  std::size_t degree = 0;
  for (const auto& slot : slots_) {
    degree += slot.any() ? 1U : 0U;
  }
  return degree;
}

std::vector<std::size_t> TdmScheduler::slots_of(std::size_t u,
                                                std::size_t v) const {
  std::vector<std::size_t> result;
  for (std::size_t s = 0; s < k_; ++s) {
    if (slots_[s].get(u, v)) {
      result.push_back(s);
    }
  }
  return result;
}

void TdmScheduler::rebuild_b_star() {
  b_star_.reset();
  for (const auto& slot : slots_) {
    b_star_ |= slot;
  }
}

void TdmScheduler::audit_invariants(std::vector<std::string>& out) const {
  BitMatrix all(n_);
  for (std::size_t s = 0; s < k_; ++s) {
    if (!slots_[s].is_partial_permutation()) {
      out.push_back("slot " + std::to_string(s) +
                    " double-allocates a crosspoint (configuration is not "
                    "a partial permutation)");
    }
    if (slot_ai_[s] != slots_[s].row_or()) {
      out.push_back("slot " + std::to_string(s) +
                    " AI occupancy cache diverged from its configuration");
    }
    if (slot_ao_[s] != slots_[s].col_or()) {
      out.push_back("slot " + std::to_string(s) +
                    " AO occupancy cache diverged from its configuration");
    }
    all |= slots_[s];
  }
  if (!(all == b_star_)) {
    out.push_back("B* diverged from the union of the slot configurations");
  }
}

}  // namespace pmx
