#include "sched/sl_array.hpp"

#include <vector>

#include "common/assert.hpp"

namespace pmx {

SlCellOut sl_cell(bool l, bool b_s, bool a_in, bool d_in) {
  if (!l) {
    return {false, a_in, d_in};  // row 1 of Table 2: pass through
  }
  if (b_s) {
    // Release: the connection (u,v) itself holds both ports, so a_in and
    // d_in are necessarily 1 here; releasing frees them for later cells.
    PMX_CHECK(a_in && d_in, "release cell must see both ports occupied");
    return {true, false, false};  // row 2: release, free the ports
  }
  if (!a_in && !d_in) {
    return {true, true, true};  // row 5: establish, occupy the ports
  }
  return {false, a_in, d_in};  // rows 3-4: blocked, resources unavailable
}

SlPassResult sl_array_pass(const BitMatrix& l, const BitMatrix& slot_config,
                           std::size_t a, std::size_t b) {
  const std::size_t n = l.size();
  PMX_CHECK(slot_config.size() == n, "SL array matrix size mismatch");
  PMX_CHECK(a < n && b < n, "priority rotation origin out of range");

  SlPassResult result{BitMatrix(n), 0, 0, 0};

  // A_{0,v} = AO_v (output-port occupancy), D_{u,0} = AI_u (input-port
  // occupancy) in rotated coordinates: the wavefront starts at row a /
  // column b and wraps.
  std::vector<bool> col_avail(n);
  for (std::size_t v = 0; v < n; ++v) {
    col_avail[v] = slot_config.col_any(v);
  }

  for (std::size_t du = 0; du < n; ++du) {
    const std::size_t u = (a + du) % n;
    if (l.row(u).none()) {
      // Every cell in this row is the Table-2 pass-through case: the
      // availability signals cross it unchanged, so skip it wholesale.
      continue;
    }
    bool row_avail = slot_config.row_any(u);  // AI_u
    for (std::size_t dv = 0; dv < n; ++dv) {
      const std::size_t v = (b + dv) % n;
      const SlCellOut out =
          sl_cell(l.get(u, v), slot_config.get(u, v), col_avail[v], row_avail);
      if (out.toggle) {
        result.toggles.set(u, v);
        if (slot_config.get(u, v)) {
          ++result.releases;
        } else {
          ++result.establishes;
        }
      } else if (l.get(u, v)) {
        ++result.blocked;
      }
      col_avail[v] = out.a_out;
      row_avail = out.d_out;
    }
  }
  return result;
}

}  // namespace pmx
