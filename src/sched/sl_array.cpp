#include "sched/sl_array.hpp"

#include "common/assert.hpp"

namespace pmx {

SlCellOut sl_cell(bool l, bool b_s, bool a_in, bool d_in) {
  if (!l) {
    return {false, a_in, d_in};  // row 1 of Table 2: pass through
  }
  if (b_s) {
    // Release: the connection (u,v) itself holds both ports, so a_in and
    // d_in are necessarily 1 here; releasing frees them for later cells.
    PMX_CHECK(a_in && d_in, "release cell must see both ports occupied");
    return {true, false, false};  // row 2: release, free the ports
  }
  if (!a_in && !d_in) {
    return {true, true, true};  // row 5: establish, occupy the ports
  }
  return {false, a_in, d_in};  // rows 3-4: blocked, resources unavailable
}

SlPassResult sl_array_pass_ref(const BitMatrix& l,
                               const BitMatrix& slot_config, std::size_t a,
                               std::size_t b) {
  const std::size_t n = l.size();
  PMX_CHECK(slot_config.size() == n, "SL array matrix size mismatch");
  PMX_CHECK(a < n && b < n, "priority rotation origin out of range");

  SlPassResult result{BitMatrix(n), 0, 0, 0};

  // A_{0,v} = AO_v (output-port occupancy), D_{u,0} = AI_u (input-port
  // occupancy) in rotated coordinates: the wavefront starts at row a /
  // column b and wraps. AO is one column reduction of the configuration,
  // not N separate col_any probes.
  BitVector col_avail = slot_config.col_or();

  for (std::size_t du = 0; du < n; ++du) {
    const std::size_t u = (a + du) % n;
    if (l.row(u).none()) {
      // Every cell in this row is the Table-2 pass-through case: the
      // availability signals cross it unchanged, so skip it wholesale.
      continue;
    }
    bool row_avail = slot_config.row_any(u);  // AI_u
    for (std::size_t dv = 0; dv < n; ++dv) {
      const std::size_t v = (b + dv) % n;
      const SlCellOut out = sl_cell(l.get(u, v), slot_config.get(u, v),
                                    col_avail.get(v), row_avail);
      if (out.toggle) {
        result.toggles.set(u, v);
        if (slot_config.get(u, v)) {
          ++result.releases;
        } else {
          ++result.establishes;
        }
      } else if (l.get(u, v)) {
        ++result.blocked;
      }
      col_avail.set(v, out.a_out);
      row_avail = out.d_out;
    }
  }
  return result;
}

// pmx-hot
SlPassResult sl_array_pass_fast(const BitMatrix& l,
                                const BitMatrix& slot_config,
                                const BitVector& ai, const BitVector& ao,
                                std::size_t a, std::size_t b) {
  const std::size_t n = l.size();
  PMX_CHECK(slot_config.size() == n, "SL array matrix size mismatch");
  PMX_CHECK(ai.size() == n && ao.size() == n,
            "SL array occupancy vector size mismatch");
  PMX_CHECK(a < n && b < n, "priority rotation origin out of range");

  SlPassResult result{BitMatrix(n), 0, 0, 0};
  // Occupied-column state threaded through the wavefront, seeded from the
  // caller-maintained AO reduction. 1 = output port taken so far.
  BitVector col_occ = ao;

  for (std::size_t du = 0; du < n; ++du) {
    const std::size_t u = (a + du) % n;
    const BitVector& row_l = l.row(u);
    if (row_l.none()) {
      continue;  // pass-through row: availability crosses it unchanged
    }
    const BitVector& slot_row = slot_config.row(u);
    const bool row_occ = ai.get(u);  // AI_u: input port already driving?

    if (!row_occ) {
      // Input port free and (partial permutation) no connection to release
      // in this row: the first change request in rotated column order whose
      // output port is free establishes; every other request is blocked.
      const std::size_t requests = row_l.count();
      std::size_t win = row_l.find_next_and_not(col_occ, b);
      if (win >= n) {
        const std::size_t wrapped = row_l.find_next_and_not(col_occ, 0);
        win = wrapped < b ? wrapped : n;
      }
      if (win < n) {
        result.toggles.set(u, win);
        ++result.establishes;
        col_occ.set(win);
        result.blocked += requests - 1;
      } else {
        result.blocked += requests;
      }
      continue;
    }

    if (!row_l.intersects(slot_row)) {
      // Input port busy and its connection is not being released this pass:
      // every change request in the row is blocked on D, no state changes.
      result.blocked += row_l.count();
      continue;
    }

    // Release path (rare: at most one row per pass releases in a valid
    // configuration). Walk only the set bits of L in rotated order; each
    // step is the exact Table-2 cell on the threaded availability state.
    bool row_busy = true;
    const auto cell = [&](std::size_t v) {
      const bool col_busy = col_occ.get(v);
      if (slot_row.get(v)) {
        PMX_CHECK(col_busy && row_busy,
                  "release cell must see both ports occupied");
        result.toggles.set(u, v);
        ++result.releases;
        col_occ.clear(v);
        row_busy = false;
      } else if (!col_busy && !row_busy) {
        result.toggles.set(u, v);
        ++result.establishes;
        col_occ.set(v);
        row_busy = true;
      } else {
        ++result.blocked;
      }
    };
    for (std::size_t v = row_l.find_next(b); v < n;
         v = row_l.find_next(v + 1)) {
      cell(v);
    }
    for (std::size_t v = row_l.find_first(); v < b;
         v = row_l.find_next(v + 1)) {
      cell(v);
    }
  }
  return result;
}

SlPassResult sl_array_pass(const BitMatrix& l, const BitMatrix& slot_config,
                           std::size_t a, std::size_t b) {
  return sl_array_pass_fast(l, slot_config, slot_config.row_or(),
                            slot_config.col_or(), a, b);
}

}  // namespace pmx
