#include "sched/latency_model.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace pmx {

namespace {

constexpr double kAsicSpeedup = 385.0 / 80.0;  // paper: "about 5x better"

/// Solve the 3x3 linear system M x = y by Gaussian elimination with partial
/// pivoting. M is well conditioned here (normal equations over 6 spread-out
/// sample points).
std::array<double, 3> solve3(std::array<std::array<double, 4>, 3> m) {
  for (std::size_t col = 0; col < 3; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < 3; ++r) {
      if (std::fabs(m[r][col]) > std::fabs(m[pivot][col])) {
        pivot = r;
      }
    }
    std::swap(m[col], m[pivot]);
    PMX_CHECK(std::fabs(m[col][col]) > 1e-12, "singular normal equations");
    for (std::size_t r = 0; r < 3; ++r) {
      if (r == col) {
        continue;
      }
      const double f = m[r][col] / m[col][col];
      for (std::size_t c = col; c < 4; ++c) {
        m[r][c] -= f * m[col][c];
      }
    }
  }
  return {m[0][3] / m[0][0], m[1][3] / m[1][1], m[2][3] / m[2][2]};
}

}  // namespace

const std::array<SchedulerLatencyModel::Point, 6>&
SchedulerLatencyModel::paper_table3() {
  static const std::array<Point, 6> kTable{{
      {4, 34.0},
      {8, 49.0},
      {16, 76.0},
      {32, 120.0},
      {64, 213.0},
      {128, 385.0},
  }};
  return kTable;
}

SchedulerLatencyModel::SchedulerLatencyModel() {
  // Least-squares fit of y = c0 + c1*log2(N) + c2*N over the 6 points:
  // accumulate the normal equations A^T A c = A^T y.
  std::array<std::array<double, 4>, 3> m{};
  for (const auto& p : paper_table3()) {
    const double x1 = std::log2(static_cast<double>(p.n));
    const double x2 = static_cast<double>(p.n);
    const std::array<double, 3> row{1.0, x1, x2};
    for (std::size_t i = 0; i < 3; ++i) {
      for (std::size_t j = 0; j < 3; ++j) {
        m[i][j] += row[i] * row[j];
      }
      m[i][3] += row[i] * p.fpga_ns;
    }
  }
  c_ = solve3(m);
}

double SchedulerLatencyModel::fpga_ns(std::size_t n) const {
  PMX_CHECK(n >= 2, "scheduler needs at least 2 ports");
  return c_[0] + c_[1] * std::log2(static_cast<double>(n)) +
         c_[2] * static_cast<double>(n);
}

double SchedulerLatencyModel::asic_ns(std::size_t n) const {
  return fpga_ns(n) / kAsicSpeedup;
}

TimeNs SchedulerLatencyModel::asic_latency(std::size_t n) const {
  return TimeNs{static_cast<std::int64_t>(std::llround(asic_ns(n)))};
}

double SchedulerLatencyModel::rms_error() const {
  double sq = 0.0;
  for (const auto& p : paper_table3()) {
    const double e = fpga_ns(p.n) - p.fpga_ns;
    sq += e * e;
  }
  return std::sqrt(sq / static_cast<double>(paper_table3().size()));
}

}  // namespace pmx
