#include "sched/presched.hpp"

#include <bit>

#include "common/assert.hpp"

namespace pmx {

bool preschedule_cell(bool r, bool b_star, bool b_s) {
  if (!r) {
    return b_s;  // release if realized in this slot
  }
  return !b_star;  // establish if not realized anywhere
}

BitMatrix preschedule(const BitMatrix& requests, const BitMatrix& established,
                      const BitMatrix& slot_config) {
  const std::size_t n = requests.size();
  PMX_CHECK(established.size() == n && slot_config.size() == n,
            "preschedule matrix size mismatch");
  BitMatrix l(n);
  // Word-parallel form of the truth table: L = (~R & B(s)) | (R & ~B*).
  BitVector row(n);
  for (std::size_t u = 0; u < n; ++u) {
    const auto r = requests.row(u).words();
    const auto bs = slot_config.row(u).words();
    const auto bstar = established.row(u).words();
    for (std::size_t w = 0; w < r.size(); ++w) {
      const std::uint64_t word = (~r[w] & bs[w]) | (r[w] & ~bstar[w]);
      for (std::uint64_t bits = word; bits != 0; bits &= bits - 1) {
        row.set((w << 6) +
                static_cast<std::size_t>(std::countr_zero(bits)));
      }
    }
    l.set_row(u, row);
    row.reset();
  }
  return l;
}

}  // namespace pmx
