#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/bitmatrix.hpp"

namespace pmx {

/// Aggregate counters maintained by the scheduler.
struct SchedulerStats {
  std::uint64_t passes = 0;         ///< SL-array evaluations
  std::uint64_t establishes = 0;    ///< connections inserted
  std::uint64_t releases = 0;       ///< connections removed
  std::uint64_t blocked = 0;        ///< change requests that found no ports
  std::uint64_t slot_advances = 0;  ///< TDM counter increments
  std::uint64_t slots_skipped = 0;  ///< empty configurations skipped
  std::uint64_t flushes = 0;        ///< flush-dynamic commands served
  /// Connections force-released because their link died or their SL cell
  /// is stuck (degraded-mode operation, not normal scheduling).
  std::uint64_t forced_releases = 0;
  /// Passes elided because the slot was quiescent (its previous pass made
  /// no change and no scheduler input has changed since) -- a simulator
  /// optimization, not hardware behaviour: the hardware would evaluate the
  /// combinational array and produce the same all-zero T matrix.
  std::uint64_t passes_elided = 0;
};

/// The TDM connection scheduler of Section 4 (Figure 2).
///
/// Maintains K configuration registers B^(0)..B^(K-1) plus the aggregate
/// B* = B^(0) | ... | B^(K-1). NICs raise request bits R[u][v]; every SL
/// clock the scheduler runs one combinational pass (pre-scheduling logic +
/// SL array) against one slot, inserting newly requested connections and
/// releasing ones that are no longer requested. Every time-slot clock the
/// TDM counter advances to the next non-empty configuration (empty slots are
/// skipped, which is how the effective multiplexing degree shrinks).
///
/// Extensions from Section 4 that are implemented:
///  2. multi-slot connections — when enabled, a request that is already
///     realized may be inserted into additional slots if ports are idle,
///     increasing that connection's bandwidth share;
///  3. request latches ("holds") — a hold keeps a connection established
///     after the NIC drops its request; predictors drive hold/unhold;
///  4. flush — clears every unpinned slot (compiler phase-boundary hint);
///  5. preload — load a predefined configuration into a specific slot,
///     optionally pinning it so dynamic scheduling cannot alter it.
class TdmScheduler {
 public:
  struct Options {
    std::size_t num_ports = 0;
    std::size_t num_slots = 1;  ///< K, the maximum multiplexing degree
    bool rotate_priority = true;
    bool multi_slot_connections = false;  ///< Section 4 extension 2
    /// TDM-counter refinement: besides all-zero configurations (Section 4),
    /// also skip slots none of whose connections has a pending request --
    /// the scheduler already holds both B(s) and R, so this is one extra
    /// AND/OR-reduction of existing signals. Held-but-idle and preloaded-
    /// but-idle connections then cost no slot time.
    bool skip_unrequested_slots = false;
  };

  explicit TdmScheduler(const Options& options);

  [[nodiscard]] std::size_t num_ports() const { return n_; }
  [[nodiscard]] std::size_t num_slots() const { return k_; }

  // --- Request interface (NIC side) -------------------------------------
  void set_request(std::size_t u, std::size_t v, bool value);
  [[nodiscard]] bool request(std::size_t u, std::size_t v) const {
    return requests_.get(u, v);
  }
  [[nodiscard]] const BitMatrix& requests() const { return requests_; }

  // --- Hold latches (extension 3, driven by predictors) ------------------
  void hold(std::size_t u, std::size_t v) {
    if (!holds_.get(u, v)) {
      holds_.set(u, v);
      mark_all_dirty();
    }
  }
  void unhold(std::size_t u, std::size_t v) {
    if (holds_.get(u, v)) {
      holds_.set(u, v, false);
      mark_all_dirty();
    }
  }
  void clear_holds() {
    holds_.reset();
    mark_all_dirty();
  }
  [[nodiscard]] bool held(std::size_t u, std::size_t v) const {
    return holds_.get(u, v);
  }
  /// The full hold matrix (slot-auditor cross-check against the
  /// predictor's hold mirror).
  [[nodiscard]] const BitMatrix& holds() const { return holds_; }

  // --- Compiled communication (extension 5) ------------------------------
  /// Load a predefined configuration into `slot`. A pinned slot is excluded
  /// from dynamic scheduling passes. The configuration must be a partial
  /// permutation.
  void preload(std::size_t slot, const BitMatrix& config, bool pinned = true);
  /// Clear a slot and unpin it.
  void unload(std::size_t slot);
  [[nodiscard]] bool pinned(std::size_t slot) const { return pinned_[slot]; }
  [[nodiscard]] std::size_t num_pinned() const;

  /// Extension 4: clear every unpinned configuration (and all holds).
  void flush_dynamic();

  // --- Degraded-mode operation (fault tolerance) --------------------------
  /// Mark port `p`'s link down or repaired. Going down masks row p and
  /// column p out of every scheduling pass and force-releases established
  /// connections on the dead link from every slot (pinned included --
  /// the fabric cannot drive a dead cable); the released (u, v) pairs are
  /// returned so predictors can evict them. Repair just unmasks: pending
  /// requests re-establish on the next passes.
  std::vector<std::pair<std::size_t, std::size_t>> set_port_fault(
      std::size_t port, bool down);
  [[nodiscard]] bool port_failed(std::size_t port) const {
    return down_ports_.get(port);
  }
  /// Model SL cell (u, v) stuck at zero: the cell can never toggle, so the
  /// connection cannot be established (or released) reactively. If the
  /// connection is currently established it is force-released. Preloading
  /// still works -- configuration registers are written directly, bypassing
  /// the SL array. Returns true when a live connection was released.
  bool set_stuck_cell(std::size_t u, std::size_t v);
  [[nodiscard]] bool cell_stuck(std::size_t u, std::size_t v) const {
    return !usable_.get(u, v);
  }

  // --- Scheduling pass (SL clock edge) ------------------------------------
  struct PassResult {
    std::optional<std::size_t> slot;  ///< slot scheduled, nullopt if none
    std::size_t establishes = 0;
    std::size_t releases = 0;
    std::size_t blocked = 0;
    /// Connections that entered/left the network as a whole (B* changes),
    /// for predictor bookkeeping. A multi-slot duplicate insertion or a
    /// release of one replica of a multi-slot connection does not appear
    /// here.
    std::vector<std::pair<std::size_t, std::size_t>> established_pairs;
    std::vector<std::pair<std::size_t, std::size_t>> released_pairs;
  };
  /// Run one SL-array pass against the next unpinned slot (round robin).
  PassResult run_pass();

  // --- TDM rotation (time-slot clock edge) --------------------------------
  /// Advance the TDM counter to the next non-empty slot (with
  /// skip_unrequested_slots: next slot with a requested connection).
  /// Returns the new active slot, or nullopt when every configuration is
  /// empty (fabric idles). Pinned and dynamic slots rotate together.
  std::optional<std::size_t> advance_slot();
  [[nodiscard]] std::optional<std::size_t> current_slot() const {
    return current_slot_;
  }

  // --- State inspection ----------------------------------------------------
  [[nodiscard]] const BitMatrix& config(std::size_t slot) const;
  /// Configuration driving the fabric right now (all-zero when idle).
  [[nodiscard]] const BitMatrix& active_config() const;
  /// B*: every connection established in any slot.
  [[nodiscard]] const BitMatrix& established() const { return b_star_; }
  [[nodiscard]] bool is_established(std::size_t u, std::size_t v) const {
    return b_star_.get(u, v);
  }
  /// Grant signal G[u][v]: connection (u,v) is live in the active slot.
  [[nodiscard]] bool grant(std::size_t u, std::size_t v) const;
  /// Output granted to input u in the active slot, if any.
  [[nodiscard]] std::optional<std::size_t> granted_output(std::size_t u) const;

  /// Number of currently non-empty slots (the live multiplexing degree).
  [[nodiscard]] std::size_t live_mux_degree() const;
  /// Slots in which connection (u,v) is realized.
  [[nodiscard]] std::vector<std::size_t> slots_of(std::size_t u,
                                                  std::size_t v) const;

  [[nodiscard]] const SchedulerStats& stats() const { return stats_; }

  /// Slot-auditor hook: verify every configuration is a partial permutation
  /// (no crosspoint double-allocation), the incrementally maintained AI/AO
  /// occupancy caches match their configurations (XOR-parity bookkeeping),
  /// and B* equals the union of the slots. Appends one line per violation.
  void audit_invariants(std::vector<std::string>& out) const;

 private:
  void rebuild_b_star();
  /// Flip the toggled entries of slot `s` word-wise and update its cached
  /// AI/AO occupancy vectors incrementally (XOR parity: in a partial
  /// permutation every row/column holds 0 or 1 connections, so a row or
  /// column is occupied after the pass iff its occupancy XOR'd with the
  /// parity of its toggle count is 1).
  void apply_toggles(std::size_t s, const BitMatrix& toggles);
  /// Recompute slot `s`'s cached AI/AO from scratch (preload/unload paths).
  void rebuild_slot_occupancy(std::size_t s);
  [[nodiscard]] std::optional<std::size_t> next_unpinned_slot();
  /// Effective request matrix for a scheduling pass: (R | holds) with dead
  /// ports and stuck cells masked out.
  [[nodiscard]] BitMatrix effective_requests() const;
  /// Clear (u, v) from every slot; appends the pair to `released` when it
  /// was established. Caller rebuilds B* and marks dirty.
  void force_clear(std::size_t u, std::size_t v,
                   std::vector<std::pair<std::size_t, std::size_t>>* released);

  std::size_t n_;
  std::size_t k_;
  bool rotate_priority_;
  bool multi_slot_;
  bool skip_unrequested_;

  BitMatrix requests_;
  BitMatrix holds_;
  BitVector down_ports_;  ///< ports whose link is currently dead
  BitVector up_cols_;     ///< complement of down_ports_ (column mask)
  BitMatrix usable_;      ///< all-ones minus stuck SL cells
  bool any_fault_ = false;
  bool any_stuck_ = false;
  std::vector<BitMatrix> slots_;
  /// Cached per-slot occupancy reductions, maintained incrementally:
  /// slot_ai_[s] == slots_[s].row_or() and slot_ao_[s] == slots_[s].col_or()
  /// at all times. Seeds every SL pass without an O(N^2/64) recomputation.
  std::vector<BitVector> slot_ai_;
  std::vector<BitVector> slot_ao_;
  std::vector<bool> pinned_;
  BitMatrix b_star_;
  BitMatrix zero_;

  /// Quiescence memo: slot_clean_[s] means the last pass on s produced no
  /// toggles and no request/hold/configuration input has changed since, so
  /// re-evaluating the SL array would provably produce no change.
  void mark_all_dirty();
  std::vector<bool> slot_clean_;

  std::optional<std::size_t> current_slot_;
  std::size_t sl_cursor_ = 0;        ///< round-robin slot selector (SL counter)
  std::size_t priority_origin_ = 0;  ///< rotating wavefront origin (a == b)

  SchedulerStats stats_;
};

}  // namespace pmx
