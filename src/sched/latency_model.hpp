#pragma once

#include <array>
#include <cstddef>

#include "common/time.hpp"

namespace pmx {

/// Scheduler latency model reproducing Table 3 of the paper.
///
/// The paper synthesizes the SL-array scheduler onto an Altera Stratix FPGA
/// (EP1S25F1020C-5) and reports the combinational latency for system sizes
/// 4..128. We cannot synthesize hardware here, so we substitute an analytic
/// model fitted to the paper's own measurements:
///
///     latency(N) = c0 + c1*log2(N) + c2*N
///
/// The log term captures the AO/AI OR-reduction trees and the request
/// multiplexers (depth log2 N); the linear term captures the availability
/// wavefront that crosses the NxN array (2N-1 cells on the critical path,
/// Section 4: "the scheduling delay should be linearly proportional to the
/// system size N").
///
/// The ASIC estimate follows the paper's rule: "we conservatively chose the
/// ASIC performance to be 80 ns for a 128x128 scheduler (about 5x better)",
/// i.e. a constant 385/80 speed-up over the FPGA numbers.
class SchedulerLatencyModel {
 public:
  struct Point {
    std::size_t n;
    double fpga_ns;
  };

  /// The measured FPGA latencies from Table 3.
  [[nodiscard]] static const std::array<Point, 6>& paper_table3();

  /// Fits the model to paper_table3() by least squares.
  SchedulerLatencyModel();

  /// Modelled FPGA latency for an NxN scheduler.
  [[nodiscard]] double fpga_ns(std::size_t n) const;
  /// Modelled ASIC latency (FPGA / 4.8125, anchoring 128 -> 80 ns).
  [[nodiscard]] double asic_ns(std::size_t n) const;
  /// ASIC latency rounded to the nearest whole ns, as a simulation constant.
  [[nodiscard]] TimeNs asic_latency(std::size_t n) const;

  [[nodiscard]] double c0() const { return c_[0]; }
  [[nodiscard]] double c1() const { return c_[1]; }
  [[nodiscard]] double c2() const { return c_[2]; }

  /// Root-mean-square error of the fit against the paper's points.
  [[nodiscard]] double rms_error() const;

 private:
  std::array<double, 3> c_{};
};

}  // namespace pmx
