#pragma once

#include "common/bitmatrix.hpp"

namespace pmx {

/// Pre-scheduling logic (Table 1 of the paper).
///
/// Compares the request matrix R, the aggregate of established connections
/// B* (OR of all slot configurations), and the configuration of the slot
/// currently being scheduled B^(s), and emits the "change needed" matrix L:
///
///   L[u][v] = 1  when the connection (u,v) is realized in slot s but no
///                longer requested (should be released), or requested but not
///                realized in any slot (should be established);
///   L[u][v] = 0  otherwise.
///
/// The truth table (X = don't care):
///   R=0, B(s)=0          -> L=0   not requested, not in this slot
///   R=0, B(s)=1          -> L=1   release from this slot
///   R=1, B*=1            -> L=0   already realized in some slot
///   R=1, B*=0, B(s)=0    -> L=1   establish in this slot
/// (R=1, B*=0, B(s)=1 cannot occur because B(s) is a subset of B*.)
[[nodiscard]] BitMatrix preschedule(const BitMatrix& requests,
                                    const BitMatrix& established,
                                    const BitMatrix& slot_config);

/// Single-cell version, exposed so tests can exercise each Table-1 row.
[[nodiscard]] bool preschedule_cell(bool r, bool b_star, bool b_s);

}  // namespace pmx
