#pragma once

#include <cstddef>

#include "common/bitmatrix.hpp"
#include "common/bitvector.hpp"

namespace pmx {

/// One scheduling-logic cell SL(u,v) — Table 2 of the paper.
///
/// Inputs:
///   l     — change request from the pre-scheduling logic (Table 1)
///   b_s   — current state of the connection (u,v) in the slot being
///           scheduled. Table 2 leaves the release/establish distinction
///           implicit (a release always sees A=D=1 *because of its own
///           connection*); the cell needs b_s to tell "release" apart from
///           "establish blocked on both ports", otherwise a blocked
///           establish with A=D=1 would toggle 0->1 and create a conflict.
///   a_in  — output-port availability arriving from the previous row
///           (0 = output v free so far)
///   d_in  — input-port availability arriving from the previous column
///           (0 = input u free so far)
/// Outputs:
///   toggle — T(u,v): flip B(s)[u][v]
///   a_out / d_out — availability propagated onward
struct SlCellOut {
  bool toggle;
  bool a_out;
  bool d_out;
};

[[nodiscard]] SlCellOut sl_cell(bool l, bool b_s, bool a_in, bool d_in);

/// Result of one combinational pass through the whole SL array.
struct SlPassResult {
  BitMatrix toggles;        ///< T matrix: entries of B(s) to flip
  std::size_t establishes;  ///< connections inserted into slot s
  std::size_t releases;     ///< connections removed from slot s
  std::size_t blocked;      ///< requested but a port was already taken
};

/// Evaluate the NxN SL array (Figure 3) for slot configuration `slot_config`
/// and change matrix `l`.
///
/// Availability signals propagate through rows in the rotated order
/// a, a+1, ..., N-1, 0, ..., a-1 and through columns in the order starting
/// at b, mirroring the priority-rotation scheme of Section 4: the wavefront
/// start (a,b) determines which requests see free ports first. AO/AI are
/// derived internally from the slot configuration (column/row ORs).
///
/// This is the word-parallel implementation (it calls sl_array_pass_fast
/// below); sl_array_pass_ref is the gate-accurate cell-by-cell oracle the
/// differential tests compare against. Both produce bit-identical
/// SlPassResults for any `slot_config` that is a partial permutation.
[[nodiscard]] SlPassResult sl_array_pass(const BitMatrix& l,
                                         const BitMatrix& slot_config,
                                         std::size_t a, std::size_t b);

/// Reference oracle: evaluates every SL cell of Figure 3 one at a time,
/// exactly as the hardware wavefront would. O(N^2) sl_cell evaluations --
/// kept for differential testing and as executable documentation of Table 2.
[[nodiscard]] SlPassResult sl_array_pass_ref(const BitMatrix& l,
                                             const BitMatrix& slot_config,
                                             std::size_t a, std::size_t b);

/// Word-parallel pass with precomputed port-occupancy vectors:
/// `ai` must equal slot_config.row_or() (input-port occupancy AI) and
/// `ao` must equal slot_config.col_or() (output-port occupancy AO).
/// The TDM scheduler maintains these incrementally across passes, so the
/// O(N^2/64) reduction is not repaid on every SL clock.
///
/// Instead of evaluating N cells per row, each requesting row is resolved
/// with word operations: pass-through rows are skipped wholesale, a row
/// whose input port stays busy is popcount-blocked in one step, and the
/// winning establish column is found by a masked find-first-set scan over
/// the request word ANDed with the complement of the occupancy vector.
[[nodiscard]] SlPassResult sl_array_pass_fast(const BitMatrix& l,
                                              const BitMatrix& slot_config,
                                              const BitVector& ai,
                                              const BitVector& ao,
                                              std::size_t a, std::size_t b);

}  // namespace pmx
