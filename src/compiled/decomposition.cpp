#include "compiled/decomposition.hpp"

#include <algorithm>
#include <limits>

#include "common/assert.hpp"

namespace pmx {

namespace {

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

void check_conns(std::size_t n, const std::vector<Conn>& conns) {
  for (const Conn& c : conns) {
    PMX_CHECK(c.src < n && c.dst < n, "connection endpoint out of range");
  }
}

}  // namespace

std::size_t working_set_degree(std::size_t n, const std::vector<Conn>& conns) {
  check_conns(n, conns);
  std::vector<std::size_t> out_deg(n, 0);
  std::vector<std::size_t> in_deg(n, 0);
  std::size_t degree = 0;
  for (const Conn& c : conns) {
    degree = std::max({degree, ++out_deg[c.src], ++in_deg[c.dst]});
  }
  return degree;
}

Decomposition decompose_optimal(std::size_t n, const std::vector<Conn>& conns) {
  check_conns(n, conns);
  const std::size_t k = working_set_degree(n, conns);
  Decomposition result;
  result.color_of.assign(conns.size(), kNone);
  if (k == 0) {
    return result;
  }

  // Bipartite edge coloring with k = max degree colors (Konig's theorem).
  // The graph's left side is the source ports, the right side the
  // destination ports. For each port and color we track the incident edge
  // index: out_edge[u][c] is u's edge colored c, in_edge[v][c] is v's.
  std::vector<std::vector<std::size_t>> out_edge(
      n, std::vector<std::size_t>(k, kNone));
  std::vector<std::vector<std::size_t>> in_edge(
      n, std::vector<std::size_t>(k, kNone));

  const auto free_color = [&](const std::vector<std::size_t>& table) {
    for (std::size_t c = 0; c < k; ++c) {
      if (table[c] == kNone) {
        return c;
      }
    }
    PMX_CHECK(false, "no free color: degree bound violated");
    return kNone;
  };

  const auto assign = [&](std::size_t e, std::size_t c) {
    result.color_of[e] = c;
    out_edge[conns[e].src][c] = e;
    in_edge[conns[e].dst][c] = e;
  };

  const auto unassign = [&](std::size_t e) {
    const std::size_t c = result.color_of[e];
    out_edge[conns[e].src][c] = kNone;
    in_edge[conns[e].dst][c] = kNone;
    result.color_of[e] = kNone;
  };

  for (std::size_t e = 0; e < conns.size(); ++e) {
    const Conn& conn = conns[e];
    PMX_CHECK(std::none_of(out_edge[conn.src].begin(),
                           out_edge[conn.src].end(),
                           [&](std::size_t idx) {
                             return idx != kNone && conns[idx].dst == conn.dst;
                           }),
              "duplicate connection in working set");
    const std::size_t alpha = free_color(out_edge[conn.src]);
    if (in_edge[conn.dst][alpha] == kNone) {
      assign(e, alpha);
      continue;
    }
    const std::size_t beta = free_color(in_edge[conn.dst]);
    // Kempe chain: starting at conn.dst, follow the alternating
    // alpha/beta/alpha/... path. Konig's argument guarantees the path is
    // simple and never reaches conn.src (src has no alpha edge, and left
    // nodes are only entered through alpha edges), so flipping every edge's
    // color along the path frees alpha at conn.dst while keeping the
    // coloring proper.
    std::vector<std::size_t> path;
    std::size_t node = conn.dst;
    bool right_side = true;  // conn.dst is a destination (right) node
    std::size_t color = alpha;
    while (true) {
      const std::size_t edge =
          right_side ? in_edge[node][color] : out_edge[node][color];
      if (edge == kNone) {
        break;
      }
      path.push_back(edge);
      node = right_side ? conns[edge].src : conns[edge].dst;
      right_side = !right_side;
      color = color == alpha ? beta : alpha;
    }
    for (const std::size_t edge : path) {
      unassign(edge);
    }
    // Re-assign in reverse order with flipped colors; reverse order keeps
    // the intermediate states conflict-free (the far end of the path gets
    // its new color first).
    std::size_t flip = path.size() % 2 == 1 ? beta : alpha;
    for (auto it = path.rbegin(); it != path.rend(); ++it) {
      assign(*it, flip);
      flip = flip == alpha ? beta : alpha;
    }
    PMX_CHECK(in_edge[conn.dst][alpha] == kNone &&
                  out_edge[conn.src][alpha] == kNone,
              "Kempe chain did not free the color");
    assign(e, alpha);
  }

  result.configs.assign(k, BitMatrix(n));
  for (std::size_t e = 0; e < conns.size(); ++e) {
    PMX_CHECK(result.color_of[e] != kNone, "uncolored connection");
    result.configs[result.color_of[e]].set(conns[e].src, conns[e].dst);
  }
  for (const auto& cfg : result.configs) {
    PMX_CHECK(cfg.is_partial_permutation(), "invalid configuration produced");
  }
  return result;
}

Decomposition decompose_greedy(std::size_t n, const std::vector<Conn>& conns) {
  check_conns(n, conns);
  Decomposition result;
  result.color_of.assign(conns.size(), kNone);
  std::vector<BitVector> out_used;  // per config: inputs in use
  std::vector<BitVector> in_used;   // per config: outputs in use
  for (std::size_t e = 0; e < conns.size(); ++e) {
    const Conn& c = conns[e];
    std::size_t slot = kNone;
    for (std::size_t s = 0; s < result.configs.size(); ++s) {
      if (!out_used[s].get(c.src) && !in_used[s].get(c.dst)) {
        slot = s;
        break;
      }
    }
    if (slot == kNone) {
      slot = result.configs.size();
      result.configs.emplace_back(n);
      out_used.emplace_back(n);
      in_used.emplace_back(n);
    }
    result.configs[slot].set(c.src, c.dst);
    out_used[slot].set(c.src);
    in_used[slot].set(c.dst);
    result.color_of[e] = slot;
  }
  return result;
}

}  // namespace pmx
