#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/bitmatrix.hpp"
#include "compiled/decomposition.hpp"
#include "fabric/fattree.hpp"
#include "fabric/omega.hpp"
#include "traffic/program.hpp"

namespace pmx {

/// The compiled-communication plan for one barrier-delimited phase of a
/// workload: the phase's connection working set W^(j), decomposed into
/// configurations, plus per-configuration traffic budgets so a preloading
/// network knows when a configuration's traffic has drained and the slot
/// can be handed to the next configuration.
struct PhasePlan {
  std::vector<BitMatrix> configs;
  /// Total payload bytes that will flow over each configuration.
  std::vector<std::uint64_t> config_bytes;
  /// Configuration index serving connection (u,v), or kNoConfig.
  [[nodiscard]] std::size_t config_of(NodeId src, NodeId dst) const;

  static constexpr std::size_t kNoConfig = static_cast<std::size_t>(-1);

  std::unordered_map<std::uint64_t, std::size_t> pair_to_config;
  /// The phase's multiplexing requirement (max port degree of W^(j)).
  std::size_t degree = 0;
};

/// Whole-program compiled plan: one PhasePlan per phase, in order.
///
/// This models the output of the compiler/load-time analysis of Section 3.1:
/// the sequence of communication working sets W^(1)..W^(p) with each W^(j)
/// decomposed into conflict-free configurations.
struct CompiledPlan {
  std::vector<PhasePlan> phases;

  [[nodiscard]] std::size_t num_phases() const { return phases.size(); }
  /// Largest per-phase multiplexing requirement.
  [[nodiscard]] std::size_t max_degree() const;
};

/// Analyze a workload and produce its compiled plan. `optimal` selects the
/// Konig edge-coloring decomposition; otherwise first-fit greedy.
[[nodiscard]] CompiledPlan compile_workload(const Workload& workload,
                                            bool optimal = true);

/// Compile for an Omega multistage fabric: each phase's working set is
/// decomposed into configurations that are conflict-free on the Omega
/// network's internal lines, not just on crossbar ports. Such plans
/// generally need a higher multiplexing degree -- the bandwidth price of
/// the cheaper fabric (Section 4's "limited permutation capabilities").
[[nodiscard]] CompiledPlan compile_workload_omega(const Workload& workload,
                                                  const OmegaNetwork& omega);

/// Compile for a two-level fat tree: configurations additionally respect
/// each leaf switch's uplink/downlink capacity. Oversubscribed trees need
/// proportionally more configurations for inter-leaf-heavy working sets.
[[nodiscard]] CompiledPlan compile_workload_fattree(const Workload& workload,
                                                    const FatTree& tree);

}  // namespace pmx
