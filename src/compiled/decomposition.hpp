#pragma once

#include <cstddef>
#include <vector>

#include "common/bitmatrix.hpp"
#include "common/message.hpp"

namespace pmx {

/// Result of decomposing a connection set C into network configurations
/// C_1..C_k (Section 2): each configuration is a partial permutation, the
/// union of all configurations is exactly C, and `color_of[i]` gives the
/// configuration index of input edge i.
struct Decomposition {
  std::vector<BitMatrix> configs;
  std::vector<std::size_t> color_of;

  [[nodiscard]] std::size_t degree() const { return configs.size(); }
};

/// Maximum in/out degree of the connection set: the lower bound on the
/// multiplexing degree needed to realize it (Konig's theorem makes this
/// bound achievable for crossbars).
[[nodiscard]] std::size_t working_set_degree(std::size_t n,
                                             const std::vector<Conn>& conns);

/// Optimal decomposition by bipartite edge coloring (Kempe-chain recoloring):
/// always uses exactly working_set_degree(conns) configurations.
[[nodiscard]] Decomposition decompose_optimal(std::size_t n,
                                              const std::vector<Conn>& conns);

/// First-fit greedy decomposition: assign each connection to the first slot
/// where both ports are free, opening a new slot when none fits. Simpler
/// hardware/runtime, may use up to 2*degree-1 configurations. Kept as the
/// baseline for the decomposition ablation.
[[nodiscard]] Decomposition decompose_greedy(std::size_t n,
                                             const std::vector<Conn>& conns);

}  // namespace pmx
