#include "compiled/plan.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace pmx {

namespace {

std::uint64_t pair_key(NodeId src, NodeId dst) {
  return (static_cast<std::uint64_t>(src) << 32) | dst;
}

}  // namespace

std::size_t PhasePlan::config_of(NodeId src, NodeId dst) const {
  const auto it = pair_to_config.find(pair_key(src, dst));
  return it != pair_to_config.end() ? it->second : kNoConfig;
}

std::size_t CompiledPlan::max_degree() const {
  std::size_t degree = 0;
  for (const auto& phase : phases) {
    degree = std::max(degree, phase.degree);
  }
  return degree;
}

namespace {

/// Gathered per-phase connection sets and per-pair byte totals.
struct PhaseTraffic {
  std::vector<std::vector<Conn>> conns;
  std::vector<std::unordered_map<std::uint64_t, std::uint64_t>> bytes;
};

PhaseTraffic gather(const Workload& workload) {
  const std::size_t n = workload.num_nodes();
  const std::size_t num_phases = workload.num_phases();
  PhaseTraffic traffic;
  traffic.conns.resize(num_phases);
  traffic.bytes.resize(num_phases);
  for (NodeId u = 0; u < n; ++u) {
    std::size_t phase = 0;
    for (const auto& cmd : workload.programs[u]) {
      if (cmd.kind == Command::Kind::kBarrier) {
        ++phase;
        continue;
      }
      if (cmd.kind != Command::Kind::kSend) {
        continue;
      }
      const std::uint64_t key = pair_key(u, cmd.dst);
      auto& bytes = traffic.bytes[phase][key];
      if (bytes == 0) {
        traffic.conns[phase].push_back(Conn{u, cmd.dst});
      }
      bytes += cmd.bytes;
    }
  }
  return traffic;
}

/// Assemble PhasePlans from a per-phase decomposition callback.
template <typename DecomposeFn>
CompiledPlan assemble(const Workload& workload, DecomposeFn&& decompose) {
  const PhaseTraffic traffic = gather(workload);
  CompiledPlan plan;
  plan.phases.resize(traffic.conns.size());
  for (std::size_t p = 0; p < plan.phases.size(); ++p) {
    PhasePlan& phase = plan.phases[p];
    const auto& conns = traffic.conns[p];
    const auto [configs, color_of] = decompose(conns);
    phase.configs = configs;
    phase.degree = configs.size();
    phase.config_bytes.assign(phase.configs.size(), 0);
    for (std::size_t e = 0; e < conns.size(); ++e) {
      const std::size_t color = color_of[e];
      const std::uint64_t key = pair_key(conns[e].src, conns[e].dst);
      phase.pair_to_config.emplace(key, color);
      phase.config_bytes[color] += traffic.bytes[p].at(key);
    }
  }
  return plan;
}

}  // namespace

CompiledPlan compile_workload(const Workload& workload, bool optimal) {
  const std::size_t n = workload.num_nodes();
  return assemble(workload, [&](const std::vector<Conn>& conns) {
    const Decomposition d =
        optimal ? decompose_optimal(n, conns) : decompose_greedy(n, conns);
    return std::make_pair(d.configs, d.color_of);
  });
}

CompiledPlan compile_workload_omega(const Workload& workload,
                                    const OmegaNetwork& omega) {
  PMX_CHECK(omega.size() == workload.num_nodes(),
            "omega network and workload disagree on node count");
  return assemble(workload, [&](const std::vector<Conn>& conns) {
    const OmegaDecomposition d = decompose_omega(omega, conns);
    return std::make_pair(d.configs, d.color_of);
  });
}

CompiledPlan compile_workload_fattree(const Workload& workload,
                                      const FatTree& tree) {
  PMX_CHECK(tree.size() == workload.num_nodes(),
            "fat tree and workload disagree on node count");
  return assemble(workload, [&](const std::vector<Conn>& conns) {
    const FatTreeDecomposition d = decompose_fattree(tree, conns);
    return std::make_pair(d.configs, d.color_of);
  });
}

}  // namespace pmx
