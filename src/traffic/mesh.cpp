#include "traffic/mesh.hpp"

#include "common/assert.hpp"

namespace pmx {

Mesh2D Mesh2D::square_ish(std::size_t n) {
  PMX_CHECK(n >= 1, "mesh must have at least one node");
  std::size_t best = 1;
  for (std::size_t w = 1; w * w <= n; ++w) {
    if (n % w == 0) {
      best = w;
    }
  }
  return Mesh2D{n / best, best};
}

Mesh2D::Mesh2D(std::size_t width, std::size_t height)
    : width_(width), height_(height) {
  PMX_CHECK(width_ >= 1 && height_ >= 1, "degenerate mesh");
}

NodeId Mesh2D::neighbor(NodeId node, Dir dir) const {
  PMX_CHECK(node < size(), "node out of range");
  const std::size_t x = x_of(node);
  const std::size_t y = y_of(node);
  switch (dir) {
    case Dir::kEast:
      return node_at((x + 1) % width_, y);
    case Dir::kWest:
      return node_at((x + width_ - 1) % width_, y);
    case Dir::kNorth:
      return node_at(x, (y + height_ - 1) % height_);
    case Dir::kSouth:
      return node_at(x, (y + 1) % height_);
  }
  PMX_CHECK(false, "invalid direction");
  return 0;
}

std::array<NodeId, 4> Mesh2D::neighbors(NodeId node) const {
  return {neighbor(node, Dir::kEast), neighbor(node, Dir::kWest),
          neighbor(node, Dir::kNorth), neighbor(node, Dir::kSouth)};
}

}  // namespace pmx
