#pragma once

#include <cstdint>
#include <vector>

#include "common/message.hpp"
#include "common/time.hpp"

namespace pmx {

/// One step of a per-processor "command file" (Section 5: "Each of the 128
/// processors ... contains a command file that defines the type and sequence
/// of communications that occur").
struct Command {
  enum class Kind : std::uint8_t {
    kSend,     ///< transmit `bytes` to `dst`; next command issues when the
               ///< last byte has left this NIC
    kBarrier,  ///< wait until every node has reached this barrier
    kFlush,    ///< compiler hint: flush dynamically established connections
               ///< (Section 3.3), then continue
    kCompute,  ///< local computation for `delay` ns (no communication)
  };

  Kind kind = Kind::kSend;
  NodeId dst = 0;
  std::uint64_t bytes = 0;
  TimeNs delay{};

  static Command send(NodeId dst, std::uint64_t bytes) {
    return Command{Kind::kSend, dst, bytes, TimeNs::zero()};
  }
  static Command barrier() {
    return Command{Kind::kBarrier, 0, 0, TimeNs::zero()};
  }
  static Command flush() { return Command{Kind::kFlush, 0, 0, TimeNs::zero()}; }
  static Command compute(TimeNs delay) {
    return Command{Kind::kCompute, 0, 0, delay};
  }

  bool operator==(const Command&) const = default;
};

using Program = std::vector<Command>;

/// A complete workload: one program per node.
struct Workload {
  std::vector<Program> programs;

  [[nodiscard]] std::size_t num_nodes() const { return programs.size(); }
  /// Total payload bytes across all sends.
  [[nodiscard]] std::uint64_t total_bytes() const;
  /// Number of send commands.
  [[nodiscard]] std::size_t num_messages() const;
  /// Number of barrier-delimited phases (1 + number of barriers in the
  /// longest program; all programs must agree on barrier count).
  [[nodiscard]] std::size_t num_phases() const;
  /// Heaviest per-node injection load in bytes (max over sources of the sum
  /// of their send sizes).
  [[nodiscard]] std::uint64_t max_injection_bytes() const;
  /// Heaviest per-node ejection load in bytes (max over destinations).
  [[nodiscard]] std::uint64_t max_ejection_bytes() const;
  /// Serialization lower bound on the makespan at `bytes_per_ns` line rate:
  /// the busiest port, summed per phase (barriers serialize phases).
  [[nodiscard]] TimeNs ideal_makespan(double bytes_per_ns) const;
};

}  // namespace pmx
