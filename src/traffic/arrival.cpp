#include "traffic/arrival.hpp"

#include <cmath>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace pmx {

void ArrivalParams::validate() const {
  PMX_CHECK(offered_load > 0.0, "offered load must be positive");
  PMX_CHECK(rate_skew >= 0.0 && rate_skew < 1.0, "rate skew must be in [0,1)");
  PMX_CHECK(dest_skew >= 0.0 && dest_skew <= 1.0,
            "destination skew must be in [0,1]");
  PMX_CHECK(hot_rotate_period >= TimeNs::zero(),
            "negative hot-set rotation period");
  PMX_CHECK(mean_msg_bytes > 0, "empty messages carry no load");
  PMX_CHECK(duration > TimeNs::zero(), "injection window must be positive");
  if (process == Process::kOnOff) {
    PMX_CHECK(burst_peak > 1.0, "burst peak must exceed the mean rate");
    PMX_CHECK(mean_on > TimeNs::zero(), "ON period must be positive");
  }
}

namespace {

/// Arrival instants (ns) of one node's stream over [0, duration).
std::vector<std::int64_t> draw_arrivals(Rng& rng, const ArrivalParams& p,
                                        double rate) {
  std::vector<std::int64_t> times;
  const double dur = static_cast<double>(p.duration.ns());
  const double mean_gap = static_cast<double>(p.mean_msg_bytes) / rate;
  if (p.process == ArrivalParams::Process::kPoisson) {
    double t = rng.exponential(mean_gap);
    while (t < dur) {
      times.push_back(static_cast<std::int64_t>(t));
      t += rng.exponential(mean_gap);
    }
    return times;
  }
  // ON/OFF: exponential ON bursts at burst_peak times the mean rate,
  // separated by OFF periods sized so the long-run average is `rate`.
  const double gap_on = mean_gap / p.burst_peak;
  const double mean_on = static_cast<double>(p.mean_on.ns());
  const double mean_off = mean_on * (p.burst_peak - 1.0);
  double t = 0.0;
  while (t < dur) {
    const double on_end = t + rng.exponential(mean_on);
    t += rng.exponential(gap_on);
    while (t < on_end && t < dur) {
      times.push_back(static_cast<std::int64_t>(t));
      t += rng.exponential(gap_on);
    }
    t = std::max(t, on_end) + rng.exponential(mean_off);
  }
  return times;
}

}  // namespace

Workload open_loop(std::size_t n, const ArrivalParams& params,
                   double bytes_per_ns) {
  params.validate();
  PMX_CHECK(n >= 2, "open-loop traffic needs at least two nodes");
  PMX_CHECK(bytes_per_ns > 0.0, "line rate must be positive");

  Rng master(params.seed);
  const std::size_t hot_count = std::max<std::size_t>(1, n / 16);
  Workload workload;
  workload.programs.resize(n);
  for (NodeId u = 0; u < n; ++u) {
    Rng rng = master.split();
    // Linear rate skew across node ids: the mean over nodes stays at
    // offered_load, the hottest node injects up to (1 + rate_skew)x.
    double weight = 1.0;
    if (n > 1) {
      const double pos =
          2.0 * static_cast<double>(u) / static_cast<double>(n - 1) - 1.0;
      weight += params.rate_skew * pos;
    }
    const double rate = params.offered_load * weight * bytes_per_ns;
    const auto times = draw_arrivals(rng, params, rate);

    Program& prog = workload.programs[u];
    prog.reserve(times.size() * 2);
    std::int64_t prev = 0;
    for (const std::int64_t at : times) {
      NodeId dst = u;
      while (dst == u) {
        // Hot-set draw first so the uniform fallback stays unbiased.
        if (params.dest_skew > 0.0 && rng.chance(params.dest_skew)) {
          // Churn: the hot set's base node advances by hot_count every
          // rotation period of arrival time -- a pure function of the
          // arrival instant, so per-node streams stay independent.
          std::size_t base = 0;
          if (params.hot_rotate_period > TimeNs::zero()) {
            const auto epoch = static_cast<std::size_t>(
                at / params.hot_rotate_period.ns());
            base = (epoch * hot_count) % n;
          }
          dst = static_cast<NodeId>((base + rng.below(hot_count)) % n);
        } else {
          dst = static_cast<NodeId>(rng.below(n));
        }
      }
      const std::int64_t gap = at - prev;
      if (gap > 0) {
        prog.push_back(Command::compute(TimeNs{gap}));
      }
      prog.push_back(Command::send(dst, params.mean_msg_bytes));
      prev = at;
    }
  }
  return workload;
}

}  // namespace pmx
