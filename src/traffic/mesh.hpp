#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "common/message.hpp"

namespace pmx {

/// 2D torus/mesh node arithmetic for the nearest-neighbour patterns.
///
/// The paper's Random/Ordered Mesh tests use "nearest neighbor
/// communications for a 2D mesh" with 4 destinations per node; we use a
/// torus so every node has exactly four neighbours (the natural embedding of
/// a 128-node machine is 16x8).
class Mesh2D {
 public:
  enum class Dir : std::size_t { kEast = 0, kWest = 1, kNorth = 2, kSouth = 3 };
  static constexpr std::array<Dir, 4> kDirs{Dir::kEast, Dir::kWest,
                                            Dir::kNorth, Dir::kSouth};

  /// Build a mesh of `n` nodes with automatically chosen near-square
  /// dimensions (largest divisor pair).
  static Mesh2D square_ish(std::size_t n);

  Mesh2D(std::size_t width, std::size_t height);

  [[nodiscard]] std::size_t width() const { return width_; }
  [[nodiscard]] std::size_t height() const { return height_; }
  [[nodiscard]] std::size_t size() const { return width_ * height_; }

  [[nodiscard]] std::size_t x_of(NodeId node) const { return node % width_; }
  [[nodiscard]] std::size_t y_of(NodeId node) const { return node / width_; }
  [[nodiscard]] NodeId node_at(std::size_t x, std::size_t y) const {
    return y * width_ + x;
  }

  /// Torus neighbour in the given direction.
  [[nodiscard]] NodeId neighbor(NodeId node, Dir dir) const;
  /// All four torus neighbours in direction order E, W, N, S.
  [[nodiscard]] std::array<NodeId, 4> neighbors(NodeId node) const;

 private:
  std::size_t width_;
  std::size_t height_;
};

}  // namespace pmx
