#include "traffic/patterns.hpp"

#include <cmath>
#include <span>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "traffic/mesh.hpp"

namespace pmx::patterns {

Workload scatter(std::size_t n, std::uint64_t bytes, NodeId root) {
  PMX_CHECK(root < n, "scatter root out of range");
  Workload w;
  w.programs.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    if (v != root) {
      w.programs[root].push_back(Command::send(v, bytes));
    }
  }
  return w;
}

Workload ordered_mesh(std::size_t n, std::uint64_t bytes, std::size_t rounds) {
  const Mesh2D mesh = Mesh2D::square_ish(n);
  Workload w;
  w.programs.resize(n);
  for (std::size_t r = 0; r < rounds; ++r) {
    for (const Mesh2D::Dir dir : Mesh2D::kDirs) {
      for (NodeId u = 0; u < n; ++u) {
        w.programs[u].push_back(Command::send(mesh.neighbor(u, dir), bytes));
      }
    }
  }
  return w;
}

Workload random_mesh(std::size_t n, std::uint64_t bytes, std::size_t rounds,
                     std::uint64_t seed) {
  const Mesh2D mesh = Mesh2D::square_ish(n);
  Workload w;
  w.programs.resize(n);
  Rng master(seed);
  for (NodeId u = 0; u < n; ++u) {
    Rng rng = master.split();
    // Same traffic volume as ordered_mesh (each neighbour `rounds` times)
    // but in a per-node random order: nearest-neighbour locality with no
    // predictability, which is how the paper distinguishes the two.
    std::vector<Mesh2D::Dir> dirs;
    dirs.reserve(4 * rounds);
    for (std::size_t r = 0; r < rounds; ++r) {
      dirs.insert(dirs.end(), Mesh2D::kDirs.begin(), Mesh2D::kDirs.end());
    }
    rng.shuffle(std::span<Mesh2D::Dir>{dirs});
    for (const Mesh2D::Dir dir : dirs) {
      w.programs[u].push_back(Command::send(mesh.neighbor(u, dir), bytes));
    }
  }
  return w;
}

Workload all_to_all(std::size_t n, std::uint64_t bytes) {
  Workload w;
  w.programs.resize(n);
  for (NodeId u = 0; u < n; ++u) {
    for (std::size_t step = 1; step < n; ++step) {
      w.programs[u].push_back(Command::send((u + step) % n, bytes));
    }
  }
  return w;
}

Workload two_phase(std::size_t n, std::uint64_t bytes, std::uint64_t seed,
                   std::size_t mesh_rounds) {
  Workload w = all_to_all(n, bytes);
  const Mesh2D mesh = Mesh2D::square_ish(n);
  Rng master(seed);
  for (NodeId u = 0; u < n; ++u) {
    Rng rng = master.split();
    w.programs[u].push_back(Command::barrier());
    // "followed by 16 random nearest neighbor communications"
    for (std::size_t i = 0; i < 4 * mesh_rounds; ++i) {
      const auto dir = static_cast<Mesh2D::Dir>(rng.below(4));
      w.programs[u].push_back(Command::send(mesh.neighbor(u, dir), bytes));
    }
  }
  return w;
}

NodeId favored_destination(std::size_t n, NodeId node, std::size_t j,
                           std::size_t favored) {
  PMX_CHECK(favored >= 1 && j < favored, "favored index out of range");
  // Spread the favored destinations so that destination set j forms a
  // permutation across nodes (preloadable as one configuration each).
  return (node + j * (n / favored) + 1) % n;
}

Workload determinism_mix(std::size_t n, std::uint64_t bytes,
                         double determinism, std::size_t count,
                         std::size_t favored, std::uint64_t seed) {
  PMX_CHECK(determinism >= 0.0 && determinism <= 1.0,
            "determinism must be in [0,1]");
  Workload w;
  w.programs.resize(n);
  Rng master(seed);
  for (NodeId u = 0; u < n; ++u) {
    Rng rng = master.split();
    for (std::size_t i = 0; i < count; ++i) {
      NodeId dst;
      if (rng.chance(determinism)) {
        dst = favored_destination(n, u, rng.below(favored), favored);
      } else {
        dst = static_cast<NodeId>(rng.below(n - 1));
        if (dst >= u) {
          ++dst;  // skip self
        }
      }
      w.programs[u].push_back(Command::send(dst, bytes));
    }
  }
  return w;
}

Workload uniform_random(std::size_t n, std::uint64_t bytes, std::size_t count,
                        std::uint64_t seed) {
  PMX_CHECK(n >= 2, "uniform traffic needs at least two nodes");
  Workload w;
  w.programs.resize(n);
  Rng master(seed);
  for (NodeId u = 0; u < n; ++u) {
    Rng rng = master.split();
    for (std::size_t i = 0; i < count; ++i) {
      auto dst = static_cast<NodeId>(rng.below(n - 1));
      if (dst >= u) {
        ++dst;
      }
      w.programs[u].push_back(Command::send(dst, bytes));
    }
  }
  return w;
}

Workload hotspot(std::size_t n, std::uint64_t bytes, std::size_t count,
                 NodeId hot, double fraction, std::uint64_t seed) {
  PMX_CHECK(hot < n, "hotspot node out of range");
  PMX_CHECK(fraction >= 0.0 && fraction <= 1.0, "fraction must be in [0,1]");
  Workload w;
  w.programs.resize(n);
  Rng master(seed);
  for (NodeId u = 0; u < n; ++u) {
    Rng rng = master.split();
    for (std::size_t i = 0; i < count; ++i) {
      NodeId dst;
      if (u != hot && rng.chance(fraction)) {
        dst = hot;
      } else {
        dst = static_cast<NodeId>(rng.below(n - 1));
        if (dst >= u) {
          ++dst;
        }
      }
      w.programs[u].push_back(Command::send(dst, bytes));
    }
  }
  return w;
}

Workload transpose(std::size_t n, std::uint64_t bytes, std::size_t rounds) {
  const auto side = static_cast<std::size_t>(std::llround(std::sqrt(
      static_cast<double>(n))));
  PMX_CHECK(side * side == n, "transpose requires a square node count");
  Workload w;
  w.programs.resize(n);
  for (NodeId u = 0; u < n; ++u) {
    const std::size_t x = u % side;
    const std::size_t y = u / side;
    const NodeId dst = x * side + y;
    if (dst == u) {
      continue;  // diagonal nodes have no partner
    }
    for (std::size_t r = 0; r < rounds; ++r) {
      w.programs[u].push_back(Command::send(dst, bytes));
    }
  }
  return w;
}

}  // namespace pmx::patterns
