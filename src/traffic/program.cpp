#include "traffic/program.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace pmx {

std::uint64_t Workload::total_bytes() const {
  std::uint64_t total = 0;
  for (const auto& prog : programs) {
    for (const auto& cmd : prog) {
      if (cmd.kind == Command::Kind::kSend) {
        total += cmd.bytes;
      }
    }
  }
  return total;
}

std::size_t Workload::num_messages() const {
  std::size_t count = 0;
  for (const auto& prog : programs) {
    count += static_cast<std::size_t>(
        std::count_if(prog.begin(), prog.end(), [](const Command& c) {
          return c.kind == Command::Kind::kSend;
        }));
  }
  return count;
}

std::size_t Workload::num_phases() const {
  std::size_t barriers = 0;
  bool first = true;
  for (const auto& prog : programs) {
    const auto b = static_cast<std::size_t>(
        std::count_if(prog.begin(), prog.end(), [](const Command& c) {
          return c.kind == Command::Kind::kBarrier;
        }));
    if (first) {
      barriers = b;
      first = false;
    } else {
      PMX_CHECK(b == barriers, "programs disagree on barrier count");
    }
  }
  return barriers + 1;
}

std::uint64_t Workload::max_injection_bytes() const {
  std::uint64_t worst = 0;
  for (const auto& prog : programs) {
    std::uint64_t sum = 0;
    for (const auto& cmd : prog) {
      if (cmd.kind == Command::Kind::kSend) {
        sum += cmd.bytes;
      }
    }
    worst = std::max(worst, sum);
  }
  return worst;
}

std::uint64_t Workload::max_ejection_bytes() const {
  std::vector<std::uint64_t> in(programs.size(), 0);
  for (const auto& prog : programs) {
    for (const auto& cmd : prog) {
      if (cmd.kind == Command::Kind::kSend) {
        PMX_CHECK(cmd.dst < in.size(), "send destination out of range");
        in[cmd.dst] += cmd.bytes;
      }
    }
  }
  std::uint64_t worst = 0;
  for (const auto b : in) {
    worst = std::max(worst, b);
  }
  return worst;
}

TimeNs Workload::ideal_makespan(double bytes_per_ns) const {
  PMX_CHECK(bytes_per_ns > 0.0, "line rate must be positive");
  const std::size_t phases = num_phases();
  const std::size_t n = programs.size();
  double total_ns = 0.0;
  for (std::size_t phase = 0; phase < phases; ++phase) {
    std::vector<std::uint64_t> inj(n, 0);
    std::vector<std::uint64_t> ej(n, 0);
    for (std::size_t u = 0; u < n; ++u) {
      std::size_t p = 0;
      for (const auto& cmd : programs[u]) {
        if (cmd.kind == Command::Kind::kBarrier) {
          ++p;
          continue;
        }
        if (p == phase && cmd.kind == Command::Kind::kSend) {
          inj[u] += cmd.bytes;
          ej[cmd.dst] += cmd.bytes;
        }
      }
    }
    std::uint64_t worst = 0;
    for (std::size_t u = 0; u < n; ++u) {
      worst = std::max({worst, inj[u], ej[u]});
    }
    // Analytic lower bound, summed in fixed phase order: reproducible.
    const double phase_ns = static_cast<double>(worst) / bytes_per_ns;
    total_ns += phase_ns;  // pmx-lint: allow(float-accum)
  }
  return TimeNs{static_cast<std::int64_t>(total_ns)};
}

}  // namespace pmx
