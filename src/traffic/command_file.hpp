#pragma once

#include <iosfwd>
#include <string>

#include "traffic/program.hpp"

namespace pmx {

/// Textual "command file" format describing each processor's communication
/// sequence (the simulator input format of Section 5).
///
/// Grammar (one statement per line, '#' starts a comment):
///
///   nodes <n>          -- declares the node count; must come first
///   node <id>          -- subsequent commands belong to this node
///   send <dst> <bytes> -- transmit
///   barrier            -- global barrier (applies to the current node's
///                         program; every node must list it)
///   flush              -- compiler flush hint
///   compute <ns>       -- local computation delay
///
/// Example:
///   nodes 4
///   node 0
///   send 1 64
///   barrier
///   send 2 64
///   node 1
///   barrier
namespace command_file {

/// Parse a workload. Throws std::runtime_error with a line number on
/// malformed input.
[[nodiscard]] Workload parse(std::istream& in);
[[nodiscard]] Workload parse_string(const std::string& text);
/// Read a workload from a file path.
[[nodiscard]] Workload load(const std::string& path);

/// Serialize a workload in the same format (stable round-trip).
void write(std::ostream& out, const Workload& workload);
[[nodiscard]] std::string to_string(const Workload& workload);
/// Write a workload to a file path.
void save(const std::string& path, const Workload& workload);

}  // namespace command_file
}  // namespace pmx
