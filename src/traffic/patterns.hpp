#pragma once

#include <cstdint>

#include "traffic/program.hpp"

namespace pmx {

/// Generators for the test patterns of Section 5 plus standard synthetic
/// patterns. All generators are deterministic given their seed.
namespace patterns {

/// Scatter: `root` sends one unique message to every other node, in node
/// order, one at a time.
[[nodiscard]] Workload scatter(std::size_t n, std::uint64_t bytes,
                               NodeId root = 0);

/// Ordered Mesh: every node sends to its four torus neighbours in the same
/// global direction order (E, W, N, S), `rounds` times. Each direction step
/// is a permutation, so the pattern is perfectly predictable.
[[nodiscard]] Workload ordered_mesh(std::size_t n, std::uint64_t bytes,
                                    std::size_t rounds = 2);

/// Random Mesh: same communication volume as ordered_mesh (4*rounds sends
/// per node, all to nearest neighbours) but each node picks a uniformly
/// random neighbour for every send -- nearest-neighbour locality with no
/// predictability.
[[nodiscard]] Workload random_mesh(std::size_t n, std::uint64_t bytes,
                                   std::size_t rounds = 2,
                                   std::uint64_t seed = 1);

/// Staggered all-to-all: node u sends to u+1, u+2, ..., u+n-1 (mod n), so
/// every step is a full permutation.
[[nodiscard]] Workload all_to_all(std::size_t n, std::uint64_t bytes);

/// Two Phase (Section 5): one 128-processor all-to-all, a barrier, then 16
/// random nearest-neighbour communications per node.
[[nodiscard]] Workload two_phase(std::size_t n, std::uint64_t bytes,
                                 std::uint64_t seed = 1,
                                 std::size_t mesh_rounds = 4);

/// Figure 5 workload: each node issues `count` sends; with probability
/// `determinism` the destination is one of the node's `favored` statically
/// known destinations (the preloadable pattern), otherwise it is a uniformly
/// random other node.
[[nodiscard]] Workload determinism_mix(std::size_t n, std::uint64_t bytes,
                                       double determinism, std::size_t count,
                                       std::size_t favored = 2,
                                       std::uint64_t seed = 1);

/// The favored destinations used by determinism_mix, exposed so the compiled
/// planner can preload the same static pattern: destination j of node u is
/// (u + j * n / favored + 1) mod n.
[[nodiscard]] NodeId favored_destination(std::size_t n, NodeId node,
                                         std::size_t j, std::size_t favored);

/// Uniform random traffic: `count` sends per node to random other nodes.
[[nodiscard]] Workload uniform_random(std::size_t n, std::uint64_t bytes,
                                      std::size_t count,
                                      std::uint64_t seed = 1);

/// Hotspot: every node sends `count` messages; a `fraction` of them target
/// the single hotspot node, the rest are uniform.
[[nodiscard]] Workload hotspot(std::size_t n, std::uint64_t bytes,
                               std::size_t count, NodeId hot, double fraction,
                               std::uint64_t seed = 1);

/// Bit-transpose permutation traffic (classic NoC stressor): node with index
/// bits (hi,lo) sends to (lo,hi). `rounds` messages per node. n must be a
/// perfect square... of the index space: we require n to be 4^k or use
/// (i % s, i / s) swap on the s = floor(sqrt(n)) grid.
[[nodiscard]] Workload transpose(std::size_t n, std::uint64_t bytes,
                                 std::size_t rounds = 1);

}  // namespace patterns
}  // namespace pmx
