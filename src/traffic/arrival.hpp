#pragma once

#include <cstddef>
#include <cstdint>

#include "common/time.hpp"
#include "traffic/program.hpp"

namespace pmx {

/// Seeded open-loop arrival-process generator for the overload campaign.
///
/// Unlike the barrier-phased patterns (traffic/patterns.hpp), these
/// workloads inject continuously: each node's program is an alternating
/// [compute(gap), send(dst, bytes)] stream with no barriers, so injection
/// pressure is set entirely by the arrival process, not by closed-loop
/// drain feedback. Offered load is expressed as a fraction of per-port
/// line rate; values above 1.0 deliberately exceed what the fabric can
/// carry and exercise the admission controller.
struct ArrivalParams {
  enum class Process : std::uint8_t {
    kPoisson,  ///< exponential inter-arrival gaps at the offered rate
    kOnOff,    ///< bursty: exponential ON periods at `burst_peak` times the
               ///< offered rate, alternating with exponential OFF periods
               ///< sized so the long-run average equals the offered rate
  };

  Process process = Process::kPoisson;

  /// Mean injection rate per node as a fraction of per-port line rate
  /// (bytes_per_ns). 1.0 saturates every injection port; 2.0 offers twice
  /// the bisection capacity.
  double offered_load = 1.0;

  /// Per-node rate skew in [0, 1): node i's rate is scaled by
  /// 1 + rate_skew * (2i/(n-1) - 1), so the mean over nodes stays at
  /// offered_load while the hottest node injects up to (1 + rate_skew)x.
  double rate_skew = 0.0;

  /// Destination skew in [0, 1): probability that a message targets the
  /// small hot set (max(1, n/16) nodes) instead of a uniform destination.
  double dest_skew = 0.0;

  /// Demand churn: rotate the hot set's base node every this many ns of
  /// arrival time, so which destinations are hot changes deterministically
  /// over the run (the re-optimization campaign's churn axis). Zero keeps
  /// the hot set fixed at nodes [0, hot_count).
  TimeNs hot_rotate_period{};

  /// Mean message size; each send uses exactly this size so offered load
  /// is controlled by the gaps alone.
  std::uint64_t mean_msg_bytes = 512;

  /// Injection window: arrivals are generated until this time, after which
  /// the node's program ends (the drain deadline is the run horizon).
  TimeNs duration{100'000};

  /// ON/OFF only: peak-to-mean ratio of the ON-period rate (> 1.0) and the
  /// mean ON-period length. The mean OFF period is derived as
  /// mean_on * (burst_peak - 1) so the long-run rate matches offered_load.
  double burst_peak = 4.0;
  TimeNs mean_on{2'000};

  std::uint64_t seed = 1;

  void validate() const;
};

/// Generate one open-loop workload: `n` programs of interleaved
/// compute/send commands. `bytes_per_ns` is the per-port line rate the
/// offered_load fraction is taken against. Deterministic for a given
/// (params, n); per-node streams come from seed splits, so changing one
/// knob never reshuffles another node's arrivals.
[[nodiscard]] Workload open_loop(std::size_t n, const ArrivalParams& params,
                                 double bytes_per_ns);

}  // namespace pmx
