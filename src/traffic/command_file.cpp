#include "traffic/command_file.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace pmx::command_file {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::runtime_error("command file line " + std::to_string(line) + ": " +
                           what);
}

void expect_line_end(std::istringstream& ls, std::size_t lineno) {
  std::string extra;
  if (ls >> extra) {
    fail(lineno, "trailing tokens after command");
  }
}

}  // namespace

Workload parse(std::istream& in) {
  Workload w;
  bool have_nodes = false;
  std::size_t current = 0;
  bool have_current = false;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream ls(line);
    std::string op;
    if (!(ls >> op)) {
      continue;  // blank or comment-only line
    }
    if (op == "nodes") {
      // Reject a duplicate declaration before touching w.programs: a second
      // 'nodes' line must never shrink (and orphan) already-parsed programs.
      if (have_nodes) {
        fail(lineno, "duplicate 'nodes' declaration");
      }
      std::size_t n = 0;
      if (!(ls >> n) || n == 0) {
        fail(lineno, "expected positive node count");
      }
      expect_line_end(ls, lineno);
      w.programs.resize(n);
      have_nodes = true;
      continue;
    }
    if (!have_nodes) {
      fail(lineno, "'nodes <n>' must come first");
    }
    if (op == "node") {
      std::size_t id = 0;
      if (!(ls >> id) || id >= w.programs.size()) {
        fail(lineno, "invalid node id");
      }
      expect_line_end(ls, lineno);
      current = id;
      have_current = true;
      continue;
    }
    if (!have_current) {
      fail(lineno, "command before any 'node' declaration");
    }
    if (op == "send") {
      std::size_t dst = 0;
      std::uint64_t bytes = 0;
      if (!(ls >> dst >> bytes) || dst >= w.programs.size() || bytes == 0) {
        fail(lineno, "expected 'send <dst> <bytes>'");
      }
      if (dst == current) {
        fail(lineno, "send to self");
      }
      w.programs[current].push_back(Command::send(dst, bytes));
    } else if (op == "barrier") {
      w.programs[current].push_back(Command::barrier());
    } else if (op == "flush") {
      w.programs[current].push_back(Command::flush());
    } else if (op == "compute") {
      std::int64_t ns = 0;
      if (!(ls >> ns) || ns < 0) {
        fail(lineno, "expected 'compute <ns>'");
      }
      w.programs[current].push_back(Command::compute(TimeNs{ns}));
    } else {
      fail(lineno, "unknown command '" + op + "'");
    }
    expect_line_end(ls, lineno);
  }
  if (!have_nodes) {
    // Not attributed to a line: an empty stream never advanced lineno past
    // zero, and "line 0" would point at nothing.
    throw std::runtime_error(
        lineno == 0 ? "command file is empty (expected 'nodes <n>')"
                    : "command file has no 'nodes <n>' declaration");
  }
  return w;
}

Workload parse_string(const std::string& text) {
  std::istringstream in(text);
  return parse(in);
}

Workload load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open command file: " + path);
  }
  return parse(in);
}

void write(std::ostream& out, const Workload& workload) {
  out << "nodes " << workload.programs.size() << "\n";
  for (std::size_t u = 0; u < workload.programs.size(); ++u) {
    if (workload.programs[u].empty()) {
      continue;
    }
    out << "node " << u << "\n";
    for (const auto& cmd : workload.programs[u]) {
      switch (cmd.kind) {
        case Command::Kind::kSend:
          out << "send " << cmd.dst << " " << cmd.bytes << "\n";
          break;
        case Command::Kind::kBarrier:
          out << "barrier\n";
          break;
        case Command::Kind::kFlush:
          out << "flush\n";
          break;
        case Command::Kind::kCompute:
          out << "compute " << cmd.delay.ns() << "\n";
          break;
      }
    }
  }
}

std::string to_string(const Workload& workload) {
  std::ostringstream out;
  write(out, workload);
  return out.str();
}

void save(const std::string& path, const Workload& workload) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot write command file: " + path);
  }
  write(out, workload);
}

}  // namespace pmx::command_file
