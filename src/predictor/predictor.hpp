#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/message.hpp"
#include "common/time.hpp"

namespace pmx {

/// Eviction predictor interface (Section 3.2). Connections are identified
/// by Conn pairs (see common/message.hpp).
///
/// The paper inverts the usual prediction problem: instead of predicting
/// which connection to *add*, the predictor decides when to *remove* a
/// connection from the communication working set so the multiplexing degree
/// stays small. The network calls:
///   on_establish  — when the scheduler inserts a connection,
///   on_use        — every time data moves over the connection,
///   on_release    — when the connection leaves the network,
/// and periodically collect_evictions() to learn which held connections
/// should be dropped (unheld). should_hold() decides whether a connection is
/// latched at all once the NIC's request signal goes away (Section 4,
/// extension 3).
///
/// Every concrete policy is a rank function run by the PolicyEngine
/// (policy_engine.hpp); this interface is what the network layer sees.
class Predictor {
 public:
  virtual ~Predictor() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Latch this connection when its request drops?
  [[nodiscard]] virtual bool should_hold(const Conn& c) const = 0;

  virtual void on_establish(const Conn& c, TimeNs now) = 0;
  virtual void on_use(const Conn& c, TimeNs now) = 0;
  virtual void on_release(const Conn& c, TimeNs now) = 0;

  /// Connections whose hold should now be dropped. Called periodically
  /// (every TDM slot in the provided networks); returned connections are
  /// forgotten by the predictor.
  [[nodiscard]] virtual std::vector<Conn> collect_evictions(TimeNs now) = 0;

  /// A compiler flush (Section 3.3) removed every dynamic connection:
  /// discard all learned state.
  virtual void on_flush() {}

  /// Polled once per TDM slot: should the network flush its dynamically
  /// learned connections right now (a detected phase change, Section 3.3)?
  /// The default never recommends flushing.
  [[nodiscard]] virtual bool recommend_flush(TimeNs now) {
    (void)now;
    return false;
  }

  // --- Hold-latch mirroring (slot-auditor cross-check) --------------------
  /// Notified right after the scheduler latches a hold on `c`. A predictor
  /// that mirrors the hold set (mirrors_holds() == true) must keep its
  /// mirror bit-identical to the scheduler's hold matrix: every unlatch
  /// path (evict batch, release, fault force-release, flush) already has a
  /// matching predictor callback. The slot auditor compares the two and
  /// reports any divergence as a conservation violation.
  virtual void on_hold(const Conn& c, TimeNs now) {
    (void)c;
    (void)now;
  }
  /// Does this predictor maintain a hold mirror the auditor may check?
  [[nodiscard]] virtual bool mirrors_holds() const { return false; }
  [[nodiscard]] virtual std::size_t held_count() const { return 0; }
  [[nodiscard]] virtual bool believes_held(const Conn& c) const {
    (void)c;
    return false;
  }
};

/// Pure reactive TDM: connections are never latched; they are released as
/// soon as the request signal drops. (The "none" policy.)
std::unique_ptr<Predictor> make_no_predictor();
/// Hold everything forever: the degenerate upper bound on working-set
/// size. (The "never-evict" policy.)
std::unique_ptr<Predictor> make_never_evict_predictor();

}  // namespace pmx
