#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/time.hpp"
#include "nic/message.hpp"

namespace pmx {

/// Eviction predictor interface (Section 3.2). Connections are identified
/// by Conn pairs (see nic/message.hpp).
///
/// The paper inverts the usual prediction problem: instead of predicting
/// which connection to *add*, the predictor decides when to *remove* a
/// connection from the communication working set so the multiplexing degree
/// stays small. The network calls:
///   on_establish  — when the scheduler inserts a connection,
///   on_use        — every time data moves over the connection,
///   on_release    — when the connection leaves the network,
/// and periodically collect_evictions() to learn which held connections
/// should be dropped (unheld). should_hold() decides whether a connection is
/// latched at all once the NIC's request signal goes away (Section 4,
/// extension 3).
class Predictor {
 public:
  virtual ~Predictor() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Latch this connection when its request drops?
  [[nodiscard]] virtual bool should_hold(const Conn& c) const = 0;

  virtual void on_establish(const Conn& c, TimeNs now) = 0;
  virtual void on_use(const Conn& c, TimeNs now) = 0;
  virtual void on_release(const Conn& c, TimeNs now) = 0;

  /// Connections whose hold should now be dropped. Called periodically
  /// (every TDM slot in the provided networks); returned connections are
  /// forgotten by the predictor.
  [[nodiscard]] virtual std::vector<Conn> collect_evictions(TimeNs now) = 0;

  /// A compiler flush (Section 3.3) removed every dynamic connection:
  /// discard all learned state.
  virtual void on_flush() {}

  /// Polled once per TDM slot: should the network flush its dynamically
  /// learned connections right now (a detected phase change, Section 3.3)?
  /// The default never recommends flushing.
  [[nodiscard]] virtual bool recommend_flush(TimeNs now) {
    (void)now;
    return false;
  }
};

/// No prediction: connections are never latched; they are released as soon
/// as the request signal drops (pure reactive TDM).
class NoPredictor final : public Predictor {
 public:
  [[nodiscard]] std::string name() const override { return "none"; }
  [[nodiscard]] bool should_hold(const Conn&) const override { return false; }
  void on_establish(const Conn&, TimeNs) override {}
  void on_use(const Conn&, TimeNs) override {}
  void on_release(const Conn&, TimeNs) override {}
  [[nodiscard]] std::vector<Conn> collect_evictions(TimeNs) override {
    return {};
  }
};

/// Never evict: connections stay latched until the slot capacity forces
/// conflicts. The degenerate upper bound on working-set size.
class NeverEvictPredictor final : public Predictor {
 public:
  [[nodiscard]] std::string name() const override { return "never-evict"; }
  [[nodiscard]] bool should_hold(const Conn&) const override { return true; }
  void on_establish(const Conn&, TimeNs) override {}
  void on_use(const Conn&, TimeNs) override {}
  void on_release(const Conn&, TimeNs) override {}
  [[nodiscard]] std::vector<Conn> collect_evictions(TimeNs) override {
    return {};
  }
};

std::unique_ptr<Predictor> make_no_predictor();
std::unique_ptr<Predictor> make_never_evict_predictor();

}  // namespace pmx
