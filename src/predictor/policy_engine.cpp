#include "predictor/policy_engine.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"

namespace pmx {

namespace {

/// Min-heap comparator for std::push_heap/pop_heap (which build max-heaps):
/// "greater" entries sink, so the front is the smallest (rank, src, dst).
/// The order is total -- (src, dst) is unique per connection -- so the pop
/// sequence never depends on the heap's internal array layout.
bool later(const Rank& a_key, const Conn& a_conn, const Rank& b_key,
           const Conn& b_conn) {
  if (a_key != b_key) {
    return a_key > b_key;
  }
  if (a_conn.src != b_conn.src) {
    return a_conn.src > b_conn.src;
  }
  return a_conn.dst > b_conn.dst;
}

// Eviction order feeds scheduler unhold calls and the eviction counter, so
// it is normalized to (src, dst) order like the pre-engine predictors.
void sort_evictions(std::vector<Conn>& evict) {
  std::sort(evict.begin(), evict.end(), [](const Conn& a, const Conn& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });
}

}  // namespace

PolicyEngine::PolicyEngine(std::string name, std::unique_ptr<RankFn> rank,
                           std::unique_ptr<WorkingSetTracker> tracker,
                           TimeNs idle_ttl)
    : name_(std::move(name)),
      rank_(std::move(rank)),
      tracker_(std::move(tracker)),
      idle_ttl_(idle_ttl) {
  PMX_CHECK(rank_ != nullptr, "policy engine needs a rank function");
}

void PolicyEngine::push_key(const Conn& c, const FlowState& s,
                            const EngineView& v) {
  heap_.push_back(HeapEntry{rank_->rank(s, v), c});
  std::push_heap(heap_.begin(), heap_.end(),
                 [](const HeapEntry& a, const HeapEntry& b) {
                   return later(a.key, a.conn, b.key, b.conn);
                 });
}

void PolicyEngine::upsert(const Conn& c, TimeNs now, Event event) {
  const EngineView v = view(now);
  const auto [it, inserted] = entries_.try_emplace(c);
  FlowState& s = it->second;
  if (inserted) {
    s.conn = c;
    s.established = now;
    s.last_use = now;
    s.last_use_epoch = use_epoch_;
  } else if (event == Event::kHold) {
    // Hold latches only guarantee the entry exists; an already-tracked
    // entry is left untouched so latching is rank-neutral.
    return;
  }
  rank_->touch(s, v, event == Event::kUse);
  if (event == Event::kEstablish) {
    s.established = now;  // re-establish restarts deadline leases
  }
  s.last_use = now;
  s.last_use_epoch = use_epoch_;
  if (event == Event::kUse) {
    ++s.uses;
  }
  push_key(c, s, v);
  compact_if_oversized(v);
}

void PolicyEngine::on_establish(const Conn& c, TimeNs now) {
  upsert(c, now, Event::kEstablish);
}

void PolicyEngine::on_use(const Conn& c, TimeNs now) {
  // Using a connection ages every other one (the counter policy's global
  // epoch); the epoch advances before the entry is marked, matching the
  // pre-engine CounterPredictor exactly.
  ++use_epoch_;
  upsert(c, now, Event::kUse);
  if (tracker_) {
    tracker_->observe(c, now);
  }
}

void PolicyEngine::on_release(const Conn& c, TimeNs) {
  entries_.erase(c);  // heap copies go stale; reaped at pop/compaction
  held_.erase(c);
}

void PolicyEngine::on_hold(const Conn& c, TimeNs now) {
  held_.insert(c);
  upsert(c, now, Event::kHold);
}

bool PolicyEngine::settle_front(const EngineView& v) {
  while (!heap_.empty()) {
    const HeapEntry& top = heap_.front();
    const auto it = entries_.find(top.conn);
    if (it != entries_.end() && rank_->rank(it->second, v) == top.key) {
      return true;  // live: this key is the entry's current rank
    }
    // Stale: the connection was released, or was re-ranked by a later
    // touch (its current key sits elsewhere in the heap).
    std::pop_heap(heap_.begin(), heap_.end(),
                  [](const HeapEntry& a, const HeapEntry& b) {
                    return later(a.key, a.conn, b.key, b.conn);
                  });
    heap_.pop_back();
  }
  return false;
}

std::vector<Conn> PolicyEngine::collect_evictions(TimeNs now) {
  std::vector<Conn> evict;
  const EngineView v = view(now);
  const auto pop_front = [&] {
    std::pop_heap(heap_.begin(), heap_.end(),
                  [](const HeapEntry& a, const HeapEntry& b) {
                    return later(a.key, a.conn, b.key, b.conn);
                  });
    heap_.pop_back();
  };

  // Idle-TTL safety valve (capacity policies only): expire by last_use so
  // a drained network cannot wedge on held slots that nothing overflows.
  // The batch is sorted below, so map iteration order cannot leak out.
  if (idle_ttl_ > TimeNs{0}) {
    auto it = entries_.begin();  // pmx-lint: allow(unordered-iter)
    while (it != entries_.end()) {
      if (it->second.last_use.ns() + idle_ttl_.ns() <= now.ns()) {
        evict.push_back(it->first);
        held_.erase(it->first);
        it = entries_.erase(it);
      } else {
        ++it;
      }
    }
  }

  // Deadline expiry: everything ranked at or below the policy's horizon.
  const Rank horizon = rank_->horizon(v);
  if (horizon != kNoHorizon) {
    while (settle_front(v) && heap_.front().key <= horizon) {
      evict.push_back(heap_.front().conn);
      entries_.erase(heap_.front().conn);
      held_.erase(heap_.front().conn);
      pop_front();
    }
  }

  // Capacity overflow: shed lowest-ranked entries until the set fits.
  const std::size_t cap = rank_->capacity();
  if (cap > 0) {
    while (entries_.size() > cap && settle_front(v)) {
      evict.push_back(heap_.front().conn);
      entries_.erase(heap_.front().conn);
      held_.erase(heap_.front().conn);
      pop_front();
    }
  }

  compact_if_oversized(v);
  sort_evictions(evict);
  return evict;
}

void PolicyEngine::compact_if_oversized(const EngineView& v) {
  if (heap_.size() <= 64 || heap_.size() <= 4 * entries_.size()) {
    return;
  }
  // Rebuild with exactly one live key per tracked entry. Visit order is
  // irrelevant: the comparator's total order makes the pop sequence of a
  // heap independent of its construction order.
  heap_.clear();
  heap_.reserve(entries_.size());
  for (const auto& [c, s] : entries_) {  // pmx-lint: allow(unordered-iter)
    heap_.push_back(HeapEntry{rank_->rank(s, v), c});
  }
  std::make_heap(heap_.begin(), heap_.end(),
                 [](const HeapEntry& a, const HeapEntry& b) {
                   return later(a.key, a.conn, b.key, b.conn);
                 });
}

void PolicyEngine::on_flush() {
  // A flush forgets every learned entry (and the scheduler resets its hold
  // matrix in the same breath) but keeps the global use epoch: the
  // pre-engine CounterPredictor's counters survived flushes the same way.
  entries_.clear();
  held_.clear();
  heap_.clear();
}

bool PolicyEngine::recommend_flush(TimeNs now) {
  return tracker_ && tracker_->phase_shifted(now);
}

std::unique_ptr<Predictor> make_policy(const PolicySpec& spec) {
  spec.validate();
  std::unique_ptr<WorkingSetTracker> tracker;
  if (spec.policy == "phase") {
    tracker = std::make_unique<WorkingSetTracker>(TimeNs{spec.phase_epoch_ns},
                                                  spec.phase_shift_threshold);
  }
  // Only the pure-capacity policies get the idle-TTL valve; the horizon
  // policies already expire on their own and must stay byte-identical to
  // the pre-engine predictors (conformance goldens).
  const bool capacity_policy = spec.policy == "lru" ||
                               spec.policy == "lfu-decay" ||
                               spec.policy == "hybrid";
  const TimeNs idle_ttl =
      capacity_policy ? TimeNs{spec.idle_ttl_ns} : TimeNs{0};
  return std::make_unique<PolicyEngine>(spec.policy, make_rank_fn(spec),
                                        std::move(tracker), idle_ttl);
}

}  // namespace pmx
