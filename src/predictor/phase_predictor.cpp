#include "predictor/phase_predictor.hpp"

namespace pmx {

PhasePredictor::PhasePredictor(TimeNs timeout, TimeNs epoch,
                               double shift_threshold)
    : timeout_(timeout), tracker_(epoch, shift_threshold) {}

std::unique_ptr<Predictor> make_phase_predictor(TimeNs timeout, TimeNs epoch,
                                                double shift_threshold) {
  return std::make_unique<PhasePredictor>(timeout, epoch, shift_threshold);
}

}  // namespace pmx
