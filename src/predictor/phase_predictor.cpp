#include "predictor/phase_predictor.hpp"

#include "predictor/policy_engine.hpp"

namespace pmx {

std::unique_ptr<Predictor> make_phase_predictor(TimeNs timeout, TimeNs epoch,
                                                double shift_threshold) {
  return std::make_unique<PolicyEngine>(
      "phase", make_timeout_rank(timeout),
      std::make_unique<WorkingSetTracker>(epoch, shift_threshold));
}

}  // namespace pmx
