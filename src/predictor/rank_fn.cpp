#include "predictor/rank_fn.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"

namespace pmx {

namespace {

/// Fixed-point scale for decayed frequencies: one use contributes 16
/// units, halved for every elapsed half-life. Integer throughout, so the
/// decayed-frequency policies stay inside the all-integer rank contract.
constexpr std::uint64_t kFreqScale = 16;

/// Shared decay step for the frequency-tracking policies: halve `freq`
/// once per elapsed half-life (cheap shift; >= 64 half-lives clears it),
/// then credit the event. Runs before the engine refreshes last_use, so
/// the elapsed span is the true inter-event gap.
void decay_and_credit(FlowState& s, const EngineView& view, bool is_use,
                      TimeNs half_life) {
  const std::int64_t elapsed = (view.now - s.last_use).ns();
  const std::int64_t steps = elapsed / half_life.ns();
  if (steps >= 64) {
    s.freq = 0;
  } else {
    s.freq >>= static_cast<unsigned>(steps);
  }
  if (is_use) {
    s.freq += kFreqScale;
  }
}

class NoneRank final : public RankFn {
 public:
  [[nodiscard]] std::string name() const override { return "none"; }
  [[nodiscard]] bool holds() const override { return false; }
  [[nodiscard]] Rank rank(const FlowState&, const EngineView&) const override {
    return 0;
  }
};

class NeverEvictRank final : public RankFn {
 public:
  [[nodiscard]] std::string name() const override { return "never-evict"; }
  [[nodiscard]] Rank rank(const FlowState&, const EngineView&) const override {
    return 0;
  }
};

class TimeoutRank final : public RankFn {
 public:
  explicit TimeoutRank(TimeNs timeout) : timeout_(timeout) {
    PMX_CHECK(timeout_ > TimeNs::zero(), "timeout must be positive");
  }
  [[nodiscard]] std::string name() const override { return "timeout"; }
  /// Rank = the entry's idle deadline; expired once `now` reaches it.
  [[nodiscard]] Rank rank(const FlowState& s,
                          const EngineView&) const override {
    return s.last_use.ns() + timeout_.ns();
  }
  [[nodiscard]] Rank horizon(const EngineView& view) const override {
    return view.now.ns();
  }

 private:
  TimeNs timeout_;
};

class CounterRank final : public RankFn {
 public:
  explicit CounterRank(std::uint64_t threshold) : threshold_(threshold) {
    PMX_CHECK(threshold_ > 0, "threshold must be positive");
  }
  [[nodiscard]] std::string name() const override { return "counter"; }
  /// Rank = the use-epoch at which the entry's counter hits the threshold;
  /// the horizon is the engine's current use-epoch (virtual time).
  [[nodiscard]] Rank rank(const FlowState& s,
                          const EngineView&) const override {
    return static_cast<Rank>(s.last_use_epoch + threshold_);
  }
  [[nodiscard]] Rank horizon(const EngineView& view) const override {
    return static_cast<Rank>(view.use_epoch);
  }

 private:
  std::uint64_t threshold_;
};

class LruRank final : public RankFn {
 public:
  explicit LruRank(std::size_t capacity) : capacity_(capacity) {
    PMX_CHECK(capacity_ > 0, "capacity must be positive");
  }
  [[nodiscard]] std::string name() const override { return "lru"; }
  [[nodiscard]] Rank rank(const FlowState& s,
                          const EngineView&) const override {
    return s.last_use.ns();
  }
  [[nodiscard]] std::size_t capacity() const override { return capacity_; }

 private:
  std::size_t capacity_;
};

class LfuDecayRank final : public RankFn {
 public:
  LfuDecayRank(std::size_t capacity, TimeNs half_life)
      : capacity_(capacity), half_life_(half_life) {
    PMX_CHECK(capacity_ > 0, "capacity must be positive");
    PMX_CHECK(half_life_ > TimeNs::zero(), "half-life must be positive");
  }
  [[nodiscard]] std::string name() const override { return "lfu-decay"; }
  [[nodiscard]] Rank rank(const FlowState& s,
                          const EngineView&) const override {
    return static_cast<Rank>(s.freq);
  }
  [[nodiscard]] std::size_t capacity() const override { return capacity_; }
  void touch(FlowState& s, const EngineView& view, bool is_use) const override {
    decay_and_credit(s, view, is_use, half_life_);
  }

 private:
  std::size_t capacity_;
  TimeNs half_life_;
};

class DeadlineRank final : public RankFn {
 public:
  explicit DeadlineRank(TimeNs lifetime) : lifetime_(lifetime) {
    PMX_CHECK(lifetime_ > TimeNs::zero(), "lifetime must be positive");
  }
  [[nodiscard]] std::string name() const override { return "deadline"; }
  /// Lease semantics: the deadline runs from establish, so a busy
  /// connection is still recycled once its lifetime elapses.
  [[nodiscard]] Rank rank(const FlowState& s,
                          const EngineView&) const override {
    return s.established.ns() + lifetime_.ns();
  }
  [[nodiscard]] Rank horizon(const EngineView& view) const override {
    return view.now.ns();
  }

 private:
  TimeNs lifetime_;
};

class HybridRank final : public RankFn {
 public:
  HybridRank(std::size_t capacity, std::uint64_t weight_recency,
             std::uint64_t weight_frequency, TimeNs recency_quantum,
             TimeNs half_life)
      : capacity_(capacity),
        weight_recency_(weight_recency),
        weight_frequency_(weight_frequency),
        recency_quantum_(recency_quantum),
        half_life_(half_life) {
    PMX_CHECK(capacity_ > 0, "capacity must be positive");
    PMX_CHECK(recency_quantum_ > TimeNs::zero(),
              "recency quantum must be positive");
    PMX_CHECK(half_life_ > TimeNs::zero(), "half-life must be positive");
    PMX_CHECK(weight_recency_ + weight_frequency_ > 0,
              "hybrid weights must be positive");
  }
  [[nodiscard]] std::string name() const override { return "hybrid"; }
  /// Weighted sum of the LRU rank (quantized so frequency can break near
  /// ties in recency) and the decayed-frequency rank. All integer.
  [[nodiscard]] Rank rank(const FlowState& s,
                          const EngineView&) const override {
    const Rank recency = s.last_use.ns() / recency_quantum_.ns();
    return static_cast<Rank>(weight_recency_) * recency +
           static_cast<Rank>(weight_frequency_) * static_cast<Rank>(s.freq);
  }
  [[nodiscard]] std::size_t capacity() const override { return capacity_; }
  void touch(FlowState& s, const EngineView& view, bool is_use) const override {
    decay_and_credit(s, view, is_use, half_life_);
  }

 private:
  std::size_t capacity_;
  std::uint64_t weight_recency_;
  std::uint64_t weight_frequency_;
  TimeNs recency_quantum_;
  TimeNs half_life_;
};

/// Per-source-port dispatcher over the horizon-encoded ranks: a flow whose
/// source port has an override is ranked by that port's knob; every other
/// flow by the global rank. All instances of one horizon policy share the
/// same horizon formula (virtual time), so the horizon delegates to the
/// global rank. Built only when PolicySpec::port_overrides is non-empty --
/// a global-only spec never goes through this wrapper.
class PerPortRank final : public RankFn {
 public:
  PerPortRank(std::unique_ptr<RankFn> global,
              std::vector<std::pair<NodeId, std::unique_ptr<RankFn>>> ports)
      : global_(std::move(global)), ports_(std::move(ports)) {}

  [[nodiscard]] std::string name() const override {
    return global_->name() + "+per-port";
  }
  [[nodiscard]] bool holds() const override { return global_->holds(); }
  [[nodiscard]] Rank rank(const FlowState& s,
                          const EngineView& view) const override {
    return select(s.conn.src).rank(s, view);
  }
  [[nodiscard]] Rank horizon(const EngineView& view) const override {
    return global_->horizon(view);
  }

 private:
  [[nodiscard]] const RankFn& select(NodeId src) const {
    const auto it = std::lower_bound(
        ports_.begin(), ports_.end(), src,
        [](const auto& entry, NodeId port) { return entry.first < port; });
    if (it != ports_.end() && it->first == src) {
      return *it->second;
    }
    return *global_;
  }

  std::unique_ptr<RankFn> global_;
  /// Override ranks, sorted by port id (validated strictly increasing).
  std::vector<std::pair<NodeId, std::unique_ptr<RankFn>>> ports_;
};

/// Wrap `global` in the per-port dispatcher when the spec has overrides;
/// return it untouched (the exact global-only object) otherwise.
std::unique_ptr<RankFn> wrap_per_port(const PolicySpec& spec,
                                      std::unique_ptr<RankFn> global) {
  if (spec.port_overrides.empty()) {
    return global;
  }
  std::vector<std::pair<NodeId, std::unique_ptr<RankFn>>> ports;
  ports.reserve(spec.port_overrides.size());
  for (const auto& [port, value] : spec.port_overrides) {
    PolicySpec per = spec;
    per.port_overrides.clear();
    if (spec.policy == "timeout" || spec.policy == "phase") {
      per.timeout_ns = value;
    } else if (spec.policy == "counter") {
      per.threshold = static_cast<std::uint64_t>(value);
    } else {
      per.lifetime_ns = value;
    }
    ports.emplace_back(port, make_rank_fn(per));
  }
  return std::make_unique<PerPortRank>(std::move(global), std::move(ports));
}

}  // namespace

const std::vector<std::string>& PolicySpec::known_policies() {
  static const std::vector<std::string> kPolicies{
      "none",      "never-evict", "timeout",  "counter", "lru",
      "lfu-decay", "deadline",    "phase",    "hybrid"};
  return kPolicies;
}

PolicySpec PolicySpec::from_config(const Config& cfg) {
  PolicySpec spec;
  spec.policy = cfg.get_string("policy", spec.policy);
  spec.timeout_ns = cfg.get_int("policy-timeout", spec.timeout_ns);
  spec.threshold = cfg.get_uint("policy-threshold", spec.threshold);
  spec.capacity = cfg.get_uint("policy-capacity", spec.capacity);
  spec.half_life_ns = cfg.get_int("policy-half-life", spec.half_life_ns);
  spec.lifetime_ns = cfg.get_int("policy-lifetime", spec.lifetime_ns);
  spec.phase_epoch_ns = cfg.get_int("policy-epoch", spec.phase_epoch_ns);
  spec.phase_shift_threshold =
      cfg.get_double("policy-shift", spec.phase_shift_threshold);
  spec.weight_recency = cfg.get_uint("policy-w-recency", spec.weight_recency);
  spec.weight_frequency =
      cfg.get_uint("policy-w-frequency", spec.weight_frequency);
  spec.recency_quantum_ns =
      cfg.get_int("policy-quantum", spec.recency_quantum_ns);
  spec.idle_ttl_ns = cfg.get_int("policy-idle-ttl", spec.idle_ttl_ns);
  for (const std::string& item :
       cfg.get_csv("policy-port-overrides", {})) {
    const auto colon = item.find(':');
    PMX_CHECK(colon != std::string::npos && colon > 0 &&
                  colon + 1 < item.size(),
              "port override must be port:value");
    std::size_t port_pos = 0;
    std::size_t value_pos = 0;
    std::int64_t port = 0;
    std::int64_t value = 0;
    try {
      port = std::stoll(item.substr(0, colon), &port_pos);
      value = std::stoll(item.substr(colon + 1), &value_pos);
    } catch (...) {
      port_pos = 0;
    }
    PMX_CHECK(port_pos == colon && value_pos == item.size() - colon - 1,
              "port override must be port:value with integer fields");
    PMX_CHECK(port >= 0, "override port must be non-negative");
    spec.port_overrides.emplace_back(static_cast<NodeId>(port), value);
  }
  std::ranges::sort(spec.port_overrides);
  spec.validate();
  return spec;
}

PolicySpec PolicySpec::parse(const std::string& token) {
  PolicySpec spec;
  const auto colon = token.find(':');
  spec.policy = token.substr(0, colon);
  if (colon != std::string::npos) {
    const std::string value = token.substr(colon + 1);
    std::size_t pos = 0;
    std::int64_t parsed = 0;
    try {
      parsed = std::stoll(value, &pos);
    } catch (...) {
      pos = 0;
    }
    PMX_CHECK(!value.empty() && pos == value.size(),
              "policy token parameter must be an integer");
    if (spec.policy == "timeout" || spec.policy == "phase") {
      spec.timeout_ns = parsed;
    } else if (spec.policy == "counter") {
      spec.threshold = static_cast<std::uint64_t>(parsed);
    } else if (spec.policy == "lru" || spec.policy == "lfu-decay" ||
               spec.policy == "hybrid") {
      spec.capacity = static_cast<std::uint64_t>(parsed);
    } else if (spec.policy == "deadline") {
      spec.lifetime_ns = parsed;
    } else {
      PMX_CHECK(false, "policy takes no parameter");
    }
  }
  spec.validate();
  return spec;
}

std::string PolicySpec::label() const {
  std::string suffix;
  if (!port_overrides.empty()) {
    suffix = "+pp" + std::to_string(port_overrides.size());
  }
  if (policy == "timeout" || policy == "phase") {
    return policy + "-" + std::to_string(timeout_ns) + suffix;
  }
  if (policy == "counter") {
    return policy + "-" + std::to_string(threshold) + suffix;
  }
  if (policy == "lru" || policy == "lfu-decay" || policy == "hybrid") {
    return policy + "-" + std::to_string(capacity);
  }
  if (policy == "deadline") {
    return policy + "-" + std::to_string(lifetime_ns) + suffix;
  }
  return policy;  // none / never-evict take no parameter
}

void PolicySpec::validate() const {
  bool known = false;
  for (const auto& name : known_policies()) {
    known = known || name == policy;
  }
  PMX_CHECK(known, "unknown policy name");
  if (policy == "timeout" || policy == "phase") {
    PMX_CHECK(timeout_ns > 0, "policy timeout must be positive");
  }
  if (policy == "phase") {
    PMX_CHECK(phase_epoch_ns > 0, "phase epoch must be positive");
    PMX_CHECK(phase_shift_threshold >= 0.0 && phase_shift_threshold <= 1.0,
              "phase shift threshold must be in [0, 1]");
  }
  if (policy == "counter") {
    PMX_CHECK(threshold > 0, "policy threshold must be positive");
  }
  if (policy == "lru" || policy == "lfu-decay" || policy == "hybrid") {
    PMX_CHECK(capacity > 0, "policy capacity must be positive");
    PMX_CHECK(idle_ttl_ns >= 0, "idle ttl must be non-negative");
  }
  if (policy == "lfu-decay" || policy == "hybrid") {
    PMX_CHECK(half_life_ns > 0, "policy half-life must be positive");
  }
  if (policy == "deadline") {
    PMX_CHECK(lifetime_ns > 0, "policy lifetime must be positive");
  }
  if (policy == "hybrid") {
    PMX_CHECK(recency_quantum_ns > 0, "recency quantum must be positive");
    PMX_CHECK(weight_recency + weight_frequency > 0,
              "hybrid weights must be positive");
  }
  if (!port_overrides.empty()) {
    // Per-port knobs are only meaningful for the horizon-encoded policies:
    // a per-port capacity would change what "tracked-set overflow" means
    // across the shared queue, so the capacity policies reject them.
    PMX_CHECK(policy == "timeout" || policy == "phase" ||
                  policy == "counter" || policy == "deadline",
              "per-port overrides require a horizon policy "
              "(timeout/phase/counter/deadline)");
    for (std::size_t i = 0; i < port_overrides.size(); ++i) {
      PMX_CHECK(port_overrides[i].second > 0,
                "per-port override values must be positive");
      PMX_CHECK(i == 0 || port_overrides[i - 1].first < port_overrides[i].first,
                "per-port overrides must name distinct ports");
    }
  }
}

std::unique_ptr<RankFn> make_none_rank() {
  return std::make_unique<NoneRank>();
}

std::unique_ptr<RankFn> make_never_evict_rank() {
  return std::make_unique<NeverEvictRank>();
}

std::unique_ptr<RankFn> make_timeout_rank(TimeNs timeout) {
  return std::make_unique<TimeoutRank>(timeout);
}

std::unique_ptr<RankFn> make_counter_rank(std::uint64_t threshold) {
  return std::make_unique<CounterRank>(threshold);
}

std::unique_ptr<RankFn> make_lru_rank(std::size_t capacity) {
  return std::make_unique<LruRank>(capacity);
}

std::unique_ptr<RankFn> make_lfu_decay_rank(std::size_t capacity,
                                            TimeNs half_life) {
  return std::make_unique<LfuDecayRank>(capacity, half_life);
}

std::unique_ptr<RankFn> make_deadline_rank(TimeNs lifetime) {
  return std::make_unique<DeadlineRank>(lifetime);
}

std::unique_ptr<RankFn> make_hybrid_rank(std::size_t capacity,
                                         std::uint64_t weight_recency,
                                         std::uint64_t weight_frequency,
                                         TimeNs recency_quantum,
                                         TimeNs half_life) {
  return std::make_unique<HybridRank>(capacity, weight_recency,
                                      weight_frequency, recency_quantum,
                                      half_life);
}

std::unique_ptr<RankFn> make_rank_fn(const PolicySpec& spec) {
  spec.validate();
  if (spec.policy == "none") {
    return make_none_rank();
  }
  if (spec.policy == "never-evict") {
    return make_never_evict_rank();
  }
  if (spec.policy == "timeout" || spec.policy == "phase") {
    // Phase-predictive = the timeout rank plus a WorkingSetTracker flush
    // trigger; the tracker is attached by make_policy().
    return wrap_per_port(spec, make_timeout_rank(TimeNs{spec.timeout_ns}));
  }
  if (spec.policy == "counter") {
    return wrap_per_port(spec, make_counter_rank(spec.threshold));
  }
  if (spec.policy == "lru") {
    return make_lru_rank(spec.capacity);
  }
  if (spec.policy == "lfu-decay") {
    return make_lfu_decay_rank(spec.capacity, TimeNs{spec.half_life_ns});
  }
  if (spec.policy == "deadline") {
    return wrap_per_port(spec, make_deadline_rank(TimeNs{spec.lifetime_ns}));
  }
  return make_hybrid_rank(spec.capacity, spec.weight_recency,
                          spec.weight_frequency,
                          TimeNs{spec.recency_quantum_ns},
                          TimeNs{spec.half_life_ns});
}

}  // namespace pmx
