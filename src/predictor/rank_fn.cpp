#include "predictor/rank_fn.hpp"

#include "common/assert.hpp"

namespace pmx {

namespace {

/// Fixed-point scale for decayed frequencies: one use contributes 16
/// units, halved for every elapsed half-life. Integer throughout, so the
/// decayed-frequency policies stay inside the all-integer rank contract.
constexpr std::uint64_t kFreqScale = 16;

/// Shared decay step for the frequency-tracking policies: halve `freq`
/// once per elapsed half-life (cheap shift; >= 64 half-lives clears it),
/// then credit the event. Runs before the engine refreshes last_use, so
/// the elapsed span is the true inter-event gap.
void decay_and_credit(FlowState& s, const EngineView& view, bool is_use,
                      TimeNs half_life) {
  const std::int64_t elapsed = (view.now - s.last_use).ns();
  const std::int64_t steps = elapsed / half_life.ns();
  if (steps >= 64) {
    s.freq = 0;
  } else {
    s.freq >>= static_cast<unsigned>(steps);
  }
  if (is_use) {
    s.freq += kFreqScale;
  }
}

class NoneRank final : public RankFn {
 public:
  [[nodiscard]] std::string name() const override { return "none"; }
  [[nodiscard]] bool holds() const override { return false; }
  [[nodiscard]] Rank rank(const FlowState&, const EngineView&) const override {
    return 0;
  }
};

class NeverEvictRank final : public RankFn {
 public:
  [[nodiscard]] std::string name() const override { return "never-evict"; }
  [[nodiscard]] Rank rank(const FlowState&, const EngineView&) const override {
    return 0;
  }
};

class TimeoutRank final : public RankFn {
 public:
  explicit TimeoutRank(TimeNs timeout) : timeout_(timeout) {
    PMX_CHECK(timeout_ > TimeNs::zero(), "timeout must be positive");
  }
  [[nodiscard]] std::string name() const override { return "timeout"; }
  /// Rank = the entry's idle deadline; expired once `now` reaches it.
  [[nodiscard]] Rank rank(const FlowState& s,
                          const EngineView&) const override {
    return s.last_use.ns() + timeout_.ns();
  }
  [[nodiscard]] Rank horizon(const EngineView& view) const override {
    return view.now.ns();
  }

 private:
  TimeNs timeout_;
};

class CounterRank final : public RankFn {
 public:
  explicit CounterRank(std::uint64_t threshold) : threshold_(threshold) {
    PMX_CHECK(threshold_ > 0, "threshold must be positive");
  }
  [[nodiscard]] std::string name() const override { return "counter"; }
  /// Rank = the use-epoch at which the entry's counter hits the threshold;
  /// the horizon is the engine's current use-epoch (virtual time).
  [[nodiscard]] Rank rank(const FlowState& s,
                          const EngineView&) const override {
    return static_cast<Rank>(s.last_use_epoch + threshold_);
  }
  [[nodiscard]] Rank horizon(const EngineView& view) const override {
    return static_cast<Rank>(view.use_epoch);
  }

 private:
  std::uint64_t threshold_;
};

class LruRank final : public RankFn {
 public:
  explicit LruRank(std::size_t capacity) : capacity_(capacity) {
    PMX_CHECK(capacity_ > 0, "capacity must be positive");
  }
  [[nodiscard]] std::string name() const override { return "lru"; }
  [[nodiscard]] Rank rank(const FlowState& s,
                          const EngineView&) const override {
    return s.last_use.ns();
  }
  [[nodiscard]] std::size_t capacity() const override { return capacity_; }

 private:
  std::size_t capacity_;
};

class LfuDecayRank final : public RankFn {
 public:
  LfuDecayRank(std::size_t capacity, TimeNs half_life)
      : capacity_(capacity), half_life_(half_life) {
    PMX_CHECK(capacity_ > 0, "capacity must be positive");
    PMX_CHECK(half_life_ > TimeNs::zero(), "half-life must be positive");
  }
  [[nodiscard]] std::string name() const override { return "lfu-decay"; }
  [[nodiscard]] Rank rank(const FlowState& s,
                          const EngineView&) const override {
    return static_cast<Rank>(s.freq);
  }
  [[nodiscard]] std::size_t capacity() const override { return capacity_; }
  void touch(FlowState& s, const EngineView& view, bool is_use) const override {
    decay_and_credit(s, view, is_use, half_life_);
  }

 private:
  std::size_t capacity_;
  TimeNs half_life_;
};

class DeadlineRank final : public RankFn {
 public:
  explicit DeadlineRank(TimeNs lifetime) : lifetime_(lifetime) {
    PMX_CHECK(lifetime_ > TimeNs::zero(), "lifetime must be positive");
  }
  [[nodiscard]] std::string name() const override { return "deadline"; }
  /// Lease semantics: the deadline runs from establish, so a busy
  /// connection is still recycled once its lifetime elapses.
  [[nodiscard]] Rank rank(const FlowState& s,
                          const EngineView&) const override {
    return s.established.ns() + lifetime_.ns();
  }
  [[nodiscard]] Rank horizon(const EngineView& view) const override {
    return view.now.ns();
  }

 private:
  TimeNs lifetime_;
};

class HybridRank final : public RankFn {
 public:
  HybridRank(std::size_t capacity, std::uint64_t weight_recency,
             std::uint64_t weight_frequency, TimeNs recency_quantum,
             TimeNs half_life)
      : capacity_(capacity),
        weight_recency_(weight_recency),
        weight_frequency_(weight_frequency),
        recency_quantum_(recency_quantum),
        half_life_(half_life) {
    PMX_CHECK(capacity_ > 0, "capacity must be positive");
    PMX_CHECK(recency_quantum_ > TimeNs::zero(),
              "recency quantum must be positive");
    PMX_CHECK(half_life_ > TimeNs::zero(), "half-life must be positive");
    PMX_CHECK(weight_recency_ + weight_frequency_ > 0,
              "hybrid weights must be positive");
  }
  [[nodiscard]] std::string name() const override { return "hybrid"; }
  /// Weighted sum of the LRU rank (quantized so frequency can break near
  /// ties in recency) and the decayed-frequency rank. All integer.
  [[nodiscard]] Rank rank(const FlowState& s,
                          const EngineView&) const override {
    const Rank recency = s.last_use.ns() / recency_quantum_.ns();
    return static_cast<Rank>(weight_recency_) * recency +
           static_cast<Rank>(weight_frequency_) * static_cast<Rank>(s.freq);
  }
  [[nodiscard]] std::size_t capacity() const override { return capacity_; }
  void touch(FlowState& s, const EngineView& view, bool is_use) const override {
    decay_and_credit(s, view, is_use, half_life_);
  }

 private:
  std::size_t capacity_;
  std::uint64_t weight_recency_;
  std::uint64_t weight_frequency_;
  TimeNs recency_quantum_;
  TimeNs half_life_;
};

}  // namespace

const std::vector<std::string>& PolicySpec::known_policies() {
  static const std::vector<std::string> kPolicies{
      "none",      "never-evict", "timeout",  "counter", "lru",
      "lfu-decay", "deadline",    "phase",    "hybrid"};
  return kPolicies;
}

PolicySpec PolicySpec::from_config(const Config& cfg) {
  PolicySpec spec;
  spec.policy = cfg.get_string("policy", spec.policy);
  spec.timeout_ns = cfg.get_int("policy-timeout", spec.timeout_ns);
  spec.threshold = cfg.get_uint("policy-threshold", spec.threshold);
  spec.capacity = cfg.get_uint("policy-capacity", spec.capacity);
  spec.half_life_ns = cfg.get_int("policy-half-life", spec.half_life_ns);
  spec.lifetime_ns = cfg.get_int("policy-lifetime", spec.lifetime_ns);
  spec.phase_epoch_ns = cfg.get_int("policy-epoch", spec.phase_epoch_ns);
  spec.phase_shift_threshold =
      cfg.get_double("policy-shift", spec.phase_shift_threshold);
  spec.weight_recency = cfg.get_uint("policy-w-recency", spec.weight_recency);
  spec.weight_frequency =
      cfg.get_uint("policy-w-frequency", spec.weight_frequency);
  spec.recency_quantum_ns =
      cfg.get_int("policy-quantum", spec.recency_quantum_ns);
  spec.idle_ttl_ns = cfg.get_int("policy-idle-ttl", spec.idle_ttl_ns);
  spec.validate();
  return spec;
}

PolicySpec PolicySpec::parse(const std::string& token) {
  PolicySpec spec;
  const auto colon = token.find(':');
  spec.policy = token.substr(0, colon);
  if (colon != std::string::npos) {
    const std::string value = token.substr(colon + 1);
    std::size_t pos = 0;
    std::int64_t parsed = 0;
    try {
      parsed = std::stoll(value, &pos);
    } catch (...) {
      pos = 0;
    }
    PMX_CHECK(!value.empty() && pos == value.size(),
              "policy token parameter must be an integer");
    if (spec.policy == "timeout" || spec.policy == "phase") {
      spec.timeout_ns = parsed;
    } else if (spec.policy == "counter") {
      spec.threshold = static_cast<std::uint64_t>(parsed);
    } else if (spec.policy == "lru" || spec.policy == "lfu-decay" ||
               spec.policy == "hybrid") {
      spec.capacity = static_cast<std::uint64_t>(parsed);
    } else if (spec.policy == "deadline") {
      spec.lifetime_ns = parsed;
    } else {
      PMX_CHECK(false, "policy takes no parameter");
    }
  }
  spec.validate();
  return spec;
}

std::string PolicySpec::label() const {
  if (policy == "timeout" || policy == "phase") {
    return policy + "-" + std::to_string(timeout_ns);
  }
  if (policy == "counter") {
    return policy + "-" + std::to_string(threshold);
  }
  if (policy == "lru" || policy == "lfu-decay" || policy == "hybrid") {
    return policy + "-" + std::to_string(capacity);
  }
  if (policy == "deadline") {
    return policy + "-" + std::to_string(lifetime_ns);
  }
  return policy;  // none / never-evict take no parameter
}

void PolicySpec::validate() const {
  bool known = false;
  for (const auto& name : known_policies()) {
    known = known || name == policy;
  }
  PMX_CHECK(known, "unknown policy name");
  if (policy == "timeout" || policy == "phase") {
    PMX_CHECK(timeout_ns > 0, "policy timeout must be positive");
  }
  if (policy == "phase") {
    PMX_CHECK(phase_epoch_ns > 0, "phase epoch must be positive");
    PMX_CHECK(phase_shift_threshold >= 0.0 && phase_shift_threshold <= 1.0,
              "phase shift threshold must be in [0, 1]");
  }
  if (policy == "counter") {
    PMX_CHECK(threshold > 0, "policy threshold must be positive");
  }
  if (policy == "lru" || policy == "lfu-decay" || policy == "hybrid") {
    PMX_CHECK(capacity > 0, "policy capacity must be positive");
    PMX_CHECK(idle_ttl_ns >= 0, "idle ttl must be non-negative");
  }
  if (policy == "lfu-decay" || policy == "hybrid") {
    PMX_CHECK(half_life_ns > 0, "policy half-life must be positive");
  }
  if (policy == "deadline") {
    PMX_CHECK(lifetime_ns > 0, "policy lifetime must be positive");
  }
  if (policy == "hybrid") {
    PMX_CHECK(recency_quantum_ns > 0, "recency quantum must be positive");
    PMX_CHECK(weight_recency + weight_frequency > 0,
              "hybrid weights must be positive");
  }
}

std::unique_ptr<RankFn> make_none_rank() {
  return std::make_unique<NoneRank>();
}

std::unique_ptr<RankFn> make_never_evict_rank() {
  return std::make_unique<NeverEvictRank>();
}

std::unique_ptr<RankFn> make_timeout_rank(TimeNs timeout) {
  return std::make_unique<TimeoutRank>(timeout);
}

std::unique_ptr<RankFn> make_counter_rank(std::uint64_t threshold) {
  return std::make_unique<CounterRank>(threshold);
}

std::unique_ptr<RankFn> make_lru_rank(std::size_t capacity) {
  return std::make_unique<LruRank>(capacity);
}

std::unique_ptr<RankFn> make_lfu_decay_rank(std::size_t capacity,
                                            TimeNs half_life) {
  return std::make_unique<LfuDecayRank>(capacity, half_life);
}

std::unique_ptr<RankFn> make_deadline_rank(TimeNs lifetime) {
  return std::make_unique<DeadlineRank>(lifetime);
}

std::unique_ptr<RankFn> make_hybrid_rank(std::size_t capacity,
                                         std::uint64_t weight_recency,
                                         std::uint64_t weight_frequency,
                                         TimeNs recency_quantum,
                                         TimeNs half_life) {
  return std::make_unique<HybridRank>(capacity, weight_recency,
                                      weight_frequency, recency_quantum,
                                      half_life);
}

std::unique_ptr<RankFn> make_rank_fn(const PolicySpec& spec) {
  spec.validate();
  if (spec.policy == "none") {
    return make_none_rank();
  }
  if (spec.policy == "never-evict") {
    return make_never_evict_rank();
  }
  if (spec.policy == "timeout" || spec.policy == "phase") {
    // Phase-predictive = the timeout rank plus a WorkingSetTracker flush
    // trigger; the tracker is attached by make_policy().
    return make_timeout_rank(TimeNs{spec.timeout_ns});
  }
  if (spec.policy == "counter") {
    return make_counter_rank(spec.threshold);
  }
  if (spec.policy == "lru") {
    return make_lru_rank(spec.capacity);
  }
  if (spec.policy == "lfu-decay") {
    return make_lfu_decay_rank(spec.capacity, TimeNs{spec.half_life_ns});
  }
  if (spec.policy == "deadline") {
    return make_deadline_rank(TimeNs{spec.lifetime_ns});
  }
  return make_hybrid_rank(spec.capacity, spec.weight_recency,
                          spec.weight_frequency,
                          TimeNs{spec.recency_quantum_ns},
                          TimeNs{spec.half_life_ns});
}

}  // namespace pmx
