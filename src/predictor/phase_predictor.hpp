#pragma once

#include <memory>

#include "predictor/timeout_predictor.hpp"
#include "predictor/working_set.hpp"

namespace pmx {

/// Self-flushing predictor (Section 3.3 without compiler assistance).
///
/// Combines the time-out eviction policy with a WorkingSetTracker: when two
/// consecutive tracking epochs barely overlap, the application has crossed a
/// communication-locality boundary (new loop nest, remapping, algorithm
/// phase), and the predictor recommends flushing every dynamically learned
/// connection instead of letting the stale working set be evicted one
/// time-out at a time.
class PhasePredictor final : public Predictor {
 public:
  PhasePredictor(TimeNs timeout, TimeNs epoch, double shift_threshold = 0.25);

  [[nodiscard]] std::string name() const override { return "phase"; }
  [[nodiscard]] bool should_hold(const Conn& c) const override {
    return timeout_.should_hold(c);
  }

  void on_establish(const Conn& c, TimeNs now) override {
    timeout_.on_establish(c, now);
  }
  void on_use(const Conn& c, TimeNs now) override {
    timeout_.on_use(c, now);
    tracker_.observe(c, now);
  }
  void on_release(const Conn& c, TimeNs now) override {
    timeout_.on_release(c, now);
  }
  [[nodiscard]] std::vector<Conn> collect_evictions(TimeNs now) override {
    return timeout_.collect_evictions(now);
  }
  void on_flush() override { timeout_.on_flush(); }

  [[nodiscard]] bool recommend_flush(TimeNs now) override {
    return tracker_.phase_shifted(now);
  }

  [[nodiscard]] const WorkingSetTracker& tracker() const { return tracker_; }

 private:
  TimeoutPredictor timeout_;
  WorkingSetTracker tracker_;
};

std::unique_ptr<Predictor> make_phase_predictor(TimeNs timeout, TimeNs epoch,
                                                double shift_threshold = 0.25);

}  // namespace pmx
