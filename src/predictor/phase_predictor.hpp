#pragma once

#include <memory>

#include "predictor/predictor.hpp"

namespace pmx {

/// Self-flushing predictor (Section 3.3 without compiler assistance).
///
/// Combines the time-out eviction policy with a WorkingSetTracker: when two
/// consecutive tracking epochs barely overlap, the application has crossed a
/// communication-locality boundary (new loop nest, remapping, algorithm
/// phase), and the predictor recommends flushing every dynamically learned
/// connection instead of letting the stale working set be evicted one
/// time-out at a time.
///
/// Since the policy-engine refactor this is the timeout rank plus a
/// WorkingSetTracker attached to the engine ("phase" policy).
std::unique_ptr<Predictor> make_phase_predictor(TimeNs timeout, TimeNs epoch,
                                                double shift_threshold = 0.25);

}  // namespace pmx
