#pragma once

#include <unordered_map>

#include "predictor/predictor.hpp"

namespace pmx {

/// The paper's experimental predictor: "a connection is removed if it is not
/// used for a certain period of time" (Section 3.2).
class TimeoutPredictor final : public Predictor {
 public:
  explicit TimeoutPredictor(TimeNs timeout);

  [[nodiscard]] std::string name() const override { return "timeout"; }
  [[nodiscard]] bool should_hold(const Conn&) const override { return true; }

  void on_establish(const Conn& c, TimeNs now) override;
  void on_use(const Conn& c, TimeNs now) override;
  void on_release(const Conn& c, TimeNs now) override;
  [[nodiscard]] std::vector<Conn> collect_evictions(TimeNs now) override;
  void on_flush() override { last_use_.clear(); }

  [[nodiscard]] TimeNs timeout() const { return timeout_; }
  [[nodiscard]] std::size_t tracked() const { return last_use_.size(); }

 private:
  struct ConnHash {
    std::size_t operator()(const Conn& c) const {
      return c.src * 0x9E3779B9u + c.dst;
    }
  };

  TimeNs timeout_;
  std::unordered_map<Conn, TimeNs, ConnHash> last_use_;
};

/// The alternative predictor sketched in Section 3.2: each connection has a
/// counter that resets to zero when the connection is used and increments
/// whenever *another* connection is used; at `threshold` the connection is
/// evicted. Unlike the timeout, a connection is not evicted during pure
/// computation phases when nothing communicates.
///
/// Implemented with a global use epoch (counter value = uses observed since
/// this connection's last use), which is O(1) per use instead of touching
/// every tracked counter. `threshold` therefore counts *network-wide* uses,
/// so it should scale with the number of active connections.
class CounterPredictor final : public Predictor {
 public:
  explicit CounterPredictor(std::uint64_t threshold);

  [[nodiscard]] std::string name() const override { return "counter"; }
  [[nodiscard]] bool should_hold(const Conn&) const override { return true; }

  void on_establish(const Conn& c, TimeNs now) override;
  void on_use(const Conn& c, TimeNs now) override;
  void on_release(const Conn& c, TimeNs now) override;
  [[nodiscard]] std::vector<Conn> collect_evictions(TimeNs now) override;
  void on_flush() override { last_use_epoch_.clear(); }

  [[nodiscard]] std::uint64_t threshold() const { return threshold_; }
  [[nodiscard]] std::size_t tracked() const { return last_use_epoch_.size(); }

 private:
  struct ConnHash {
    std::size_t operator()(const Conn& c) const {
      return c.src * 0x9E3779B9u + c.dst;
    }
  };

  std::uint64_t threshold_;
  std::uint64_t epoch_ = 0;  ///< total on_use events observed
  std::unordered_map<Conn, std::uint64_t, ConnHash> last_use_epoch_;
};

std::unique_ptr<Predictor> make_timeout_predictor(TimeNs timeout);
std::unique_ptr<Predictor> make_counter_predictor(std::uint64_t threshold);

}  // namespace pmx
