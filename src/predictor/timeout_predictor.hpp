#pragma once

#include <memory>

#include "predictor/predictor.hpp"

namespace pmx {

/// The paper's experimental predictor: "a connection is removed if it is not
/// used for a certain period of time" (Section 3.2). Since the policy-engine
/// refactor this is a thin configuration of the PolicyEngine (the timeout
/// rank encodes each entry's idle deadline; the horizon is the clock), kept
/// as a named factory because it is the paper's headline policy.
std::unique_ptr<Predictor> make_timeout_predictor(TimeNs timeout);

/// The alternative predictor sketched in Section 3.2: each connection has a
/// counter that resets to zero when the connection is used and increments
/// whenever *another* connection is used; at `threshold` the connection is
/// evicted. Unlike the timeout, a connection is not evicted during pure
/// computation phases when nothing communicates.
///
/// Encoded with a global use epoch (counter value = uses observed since
/// this connection's last use), which is O(1) per use instead of touching
/// every tracked counter. `threshold` therefore counts *network-wide* uses,
/// so it should scale with the number of active connections.
std::unique_ptr<Predictor> make_counter_predictor(std::uint64_t threshold);

}  // namespace pmx
