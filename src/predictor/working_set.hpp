#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/message.hpp"
#include "common/time.hpp"

namespace pmx {

/// Tracks the communication working set (Section 2): the set of connections
/// used within a sliding time window, using the classic two-epoch scheme.
/// Each completed non-empty epoch is compared against the previous
/// *non-empty* epoch (so pure-computation gaps neither trigger nor mask a
/// shift). Reports the set size, the port degree (the multiplexing
/// requirement of realizing the set without conflict), and a phase-shift
/// signal when consecutive active epochs barely overlap -- the "change in
/// communication locality" of Section 3.3.
class WorkingSetTracker {
 public:
  /// `epoch` is half the working-set window; `shift_threshold` is the
  /// Jaccard similarity below which consecutive epochs count as a phase
  /// change.
  WorkingSetTracker(TimeNs epoch, double shift_threshold = 0.25);

  /// Record a use of connection `c` at time `now`. Epoch rolling happens
  /// lazily here and in phase_shifted().
  void observe(const Conn& c, TimeNs now);

  /// Connections observed in the current window (both epochs).
  [[nodiscard]] std::size_t size() const;
  /// Maximum per-port degree of the current window's set: the multiplexing
  /// degree a crossbar needs to cache it.
  [[nodiscard]] std::size_t degree(std::size_t num_nodes) const;
  /// Similarity (Jaccard) between the two most recent *complete* epochs.
  [[nodiscard]] double last_similarity() const { return last_similarity_; }

  /// True once after each epoch boundary whose similarity fell below the
  /// threshold (a phase change); reading clears the flag.
  [[nodiscard]] bool phase_shifted(TimeNs now);

  [[nodiscard]] TimeNs epoch() const { return epoch_; }
  [[nodiscard]] std::uint64_t epochs_completed() const { return rolls_; }

 private:
  static std::uint64_t key(const Conn& c) {
    return (static_cast<std::uint64_t>(c.src) << 32) | c.dst;
  }
  void roll_if_needed(TimeNs now);

  TimeNs epoch_;
  double threshold_;
  TimeNs epoch_start_{};
  std::unordered_set<std::uint64_t> current_;
  /// The most recent completed non-empty epoch.
  std::unordered_set<std::uint64_t> previous_;
  double last_similarity_ = 1.0;
  bool shift_pending_ = false;
  std::uint64_t rolls_ = 0;
};

}  // namespace pmx
