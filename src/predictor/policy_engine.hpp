#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "predictor/predictor.hpp"
#include "predictor/rank_fn.hpp"
#include "predictor/working_set.hpp"

namespace pmx {

/// PIFO-style policy engine: the single priority-queue core behind every
/// eviction policy. Tracks one FlowState per live (src, dst) connection and
/// keeps a lazy binary min-heap of (rank, conn) keys; the pluggable RankFn
/// decides what the rank means (see rank_fn.hpp for the contract).
///
/// Laziness: establish/use events push a fresh key instead of re-heapifying
/// (stale copies are skipped at pop time by comparing the stored key with
/// the recomputed rank), and releases leave their keys behind. The heap is
/// compacted once it grows well past the tracked set, so memory stays
/// O(tracked) amortized.
///
/// Determinism: the heap comparator totally orders entries by
/// (rank, src, dst), so the pop sequence -- and therefore every eviction
/// batch -- is a pure function of the event history, independent of hash
/// ordering, heap layout, or thread count. Eviction batches are additionally
/// sorted by (src, dst) before being returned, preserving the pre-engine
/// unhold order contract.
///
/// The engine also mirrors the scheduler's hold latches (on_hold /
/// believes_held): every network path that unlatches a hold reaches the
/// predictor (evict batch, release, fault force-release, flush), so the
/// mirror must stay bit-identical to the scheduler's hold matrix. The slot
/// auditor cross-checks exactly that.
class PolicyEngine final : public Predictor {
 public:
  /// `name` is the policy's public name (it may differ from the rank's,
  /// e.g. "phase" runs the timeout rank plus a WorkingSetTracker).
  /// `tracker`, when present, drives recommend_flush() from working-set
  /// phase shifts. `idle_ttl`, when positive, expires entries idle that
  /// long regardless of rank -- the drain-time safety valve for pure
  /// capacity policies (see PolicySpec::idle_ttl_ns).
  PolicyEngine(std::string name, std::unique_ptr<RankFn> rank,
               std::unique_ptr<WorkingSetTracker> tracker = nullptr,
               TimeNs idle_ttl = TimeNs{0});

  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] bool should_hold(const Conn&) const override {
    return rank_->holds();
  }

  void on_establish(const Conn& c, TimeNs now) override;
  void on_use(const Conn& c, TimeNs now) override;
  void on_release(const Conn& c, TimeNs now) override;
  [[nodiscard]] std::vector<Conn> collect_evictions(TimeNs now) override;
  void on_flush() override;
  [[nodiscard]] bool recommend_flush(TimeNs now) override;

  void on_hold(const Conn& c, TimeNs now) override;
  [[nodiscard]] bool mirrors_holds() const override { return true; }
  [[nodiscard]] std::size_t held_count() const override {
    return held_.size();
  }
  [[nodiscard]] bool believes_held(const Conn& c) const override {
    return held_.contains(c);
  }

  // --- Introspection (tests, auditor, benches) ---------------------------
  [[nodiscard]] std::size_t tracked() const { return entries_.size(); }
  [[nodiscard]] bool is_tracked(const Conn& c) const {
    return entries_.contains(c);
  }
  [[nodiscard]] const RankFn& rank_fn() const { return *rank_; }
  [[nodiscard]] std::uint64_t use_epoch() const { return use_epoch_; }
  [[nodiscard]] std::size_t heap_size() const { return heap_.size(); }
  [[nodiscard]] const WorkingSetTracker* tracker() const {
    return tracker_.get();
  }

 private:
  struct ConnHash {
    std::size_t operator()(const Conn& c) const {
      return c.src * 0x9E3779B9u + c.dst;
    }
  };
  /// Heap key: the rank at push time plus the identity tie-breaker.
  struct HeapEntry {
    Rank key;
    Conn conn;
  };

  [[nodiscard]] EngineView view(TimeNs now) const {
    return EngineView{now, use_epoch_, entries_.size()};
  }
  enum class Event { kEstablish, kUse, kHold };
  void upsert(const Conn& c, TimeNs now, Event event);
  void push_key(const Conn& c, const FlowState& s, const EngineView& v);
  /// Pop heap entries until the front is live (its key matches the entry's
  /// current rank); returns false when the heap ran empty.
  bool settle_front(const EngineView& v);
  void compact_if_oversized(const EngineView& v);

  std::string name_;
  std::unique_ptr<RankFn> rank_;
  std::unique_ptr<WorkingSetTracker> tracker_;
  TimeNs idle_ttl_{0};  ///< 0 = disabled
  std::unordered_map<Conn, FlowState, ConnHash> entries_;
  std::unordered_set<Conn, ConnHash> held_;  ///< mirror of scheduler holds
  std::vector<HeapEntry> heap_;
  std::uint64_t use_epoch_ = 0;  ///< total on_use events engine-wide
};

/// Assemble the full predictor a PolicySpec describes (rank function plus,
/// for the phase policy, its WorkingSetTracker).
std::unique_ptr<Predictor> make_policy(const PolicySpec& spec);

}  // namespace pmx
