#include "predictor/working_set.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace pmx {

WorkingSetTracker::WorkingSetTracker(TimeNs epoch, double shift_threshold)
    : epoch_(epoch), threshold_(shift_threshold) {
  PMX_CHECK(epoch_ > TimeNs::zero(), "epoch must be positive");
  PMX_CHECK(shift_threshold >= 0.0 && shift_threshold <= 1.0,
            "threshold must be in [0,1]");
}

void WorkingSetTracker::roll_if_needed(TimeNs now) {
  while (now - epoch_start_ >= epoch_) {
    // Compare the completed epoch against the previous non-empty one; an
    // empty epoch (computation phase) is neither a shift nor an update.
    if (!current_.empty()) {
      if (!previous_.empty()) {
        std::size_t common = 0;
        // Commutative membership count; visit order cannot leak.
        for (const auto k : current_) {  // pmx-lint: allow(unordered-iter)
          common += previous_.contains(k) ? 1u : 0u;
        }
        const std::size_t unions =
            current_.size() + previous_.size() - common;
        last_similarity_ = static_cast<double>(common) /
                           static_cast<double>(unions);
        if (last_similarity_ < threshold_) {
          shift_pending_ = true;
        }
      }
      previous_ = std::move(current_);
      current_.clear();
    }
    epoch_start_ += epoch_;
    ++rolls_;
  }
}

void WorkingSetTracker::observe(const Conn& c, TimeNs now) {
  roll_if_needed(now);
  current_.insert(key(c));
}

std::size_t WorkingSetTracker::size() const {
  std::size_t count = current_.size();
  // Commutative union count; visit order cannot leak.
  for (const auto k : previous_) {  // pmx-lint: allow(unordered-iter)
    count += current_.contains(k) ? 0u : 1u;
  }
  return count;
}

std::size_t WorkingSetTracker::degree(std::size_t num_nodes) const {
  std::vector<std::size_t> out_deg(num_nodes, 0);
  std::vector<std::size_t> in_deg(num_nodes, 0);
  std::size_t degree = 0;
  const auto accumulate = [&](const std::unordered_set<std::uint64_t>& set,
                              const std::unordered_set<std::uint64_t>* skip) {
    // Max over per-node increment totals is order-independent.
    for (const auto k : set) {  // pmx-lint: allow(unordered-iter)
      if (skip != nullptr && skip->contains(k)) {
        continue;
      }
      const auto src = static_cast<std::size_t>(k >> 32);
      const auto dst = static_cast<std::size_t>(k & 0xFFFFFFFFu);
      PMX_CHECK(src < num_nodes && dst < num_nodes,
                "tracked connection out of range");
      degree = std::max({degree, ++out_deg[src], ++in_deg[dst]});
    }
  };
  accumulate(current_, nullptr);
  accumulate(previous_, &current_);
  return degree;
}

bool WorkingSetTracker::phase_shifted(TimeNs now) {
  roll_if_needed(now);
  const bool shifted = shift_pending_;
  shift_pending_ = false;
  return shifted;
}

}  // namespace pmx
