#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/config.hpp"
#include "common/message.hpp"
#include "common/time.hpp"

namespace pmx {

/// Per-connection bookkeeping maintained by the PolicyEngine and exposed to
/// rank functions. The generic fields (times, epochs, use counts) are
/// updated by the engine on every event; `freq` is policy-owned scratch
/// state written through RankFn::touch (decayed-frequency policies).
struct FlowState {
  Conn conn{};
  TimeNs established{};          ///< time of the last establish event
  TimeNs last_use{};             ///< time of the last establish/use event
  std::uint64_t uses = 0;        ///< on_use events on this connection
  std::uint64_t last_use_epoch = 0;  ///< engine use-epoch at the last touch
  std::uint64_t freq = 0;        ///< policy scratch (decayed frequency)
};

/// Engine-wide state snapshot passed to rank functions.
struct EngineView {
  TimeNs now{};                ///< event / collection time
  std::uint64_t use_epoch = 0;  ///< total on_use events engine-wide
  std::size_t tracked = 0;     ///< connections currently tracked
};

/// Integer rank. Smaller ranks evict first. Ties are broken by (src, dst),
/// so eviction order is a deterministic function of the tracked set.
using Rank = std::int64_t;

/// Sentinel horizon: no entry ever expires by deadline (rank() is required
/// to return values strictly greater than this).
inline constexpr Rank kNoHorizon = std::numeric_limits<Rank>::min();

/// PIFO-style rank function (Sivaraman et al.): a policy is a pure mapping
/// from per-flow state to an integer rank over a shared priority-queue
/// core. The engine evicts in two ways, both driven by rank():
///
///   deadline expiry  -- every entry with rank(s) <= horizon(view) is
///                       evicted at collection time (timeout/counter/
///                       deadline policies encode their deadline as the
///                       rank and advance the horizon with virtual time);
///   capacity overflow-- when capacity() > 0 and more entries are tracked,
///                       the lowest-ranked entries are evicted until the
///                       tracked set fits (LRU/LFU/hybrid policies).
///
/// Determinism contract: rank() must be a pure function of the FlowState
/// (it must NOT read EngineView::now or ::use_epoch -- time-varying urgency
/// belongs in horizon(), which is compared against the rank). Ranks are
/// integers only; pmx-lint's float rule keeps it that way. A rank may
/// change only on touch events (establish/use), which is when the engine
/// re-inserts the entry into its queue.
class RankFn {
 public:
  virtual ~RankFn() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Latch connections past the drop of their request signal at all?
  /// (Section 4 extension 3; `false` reproduces the pure reactive system.)
  [[nodiscard]] virtual bool holds() const { return true; }

  /// The entry's rank; smaller evicts first. See the class contract.
  [[nodiscard]] virtual Rank rank(const FlowState& s,
                                  const EngineView& view) const = 0;

  /// Entries with rank <= horizon are expired. kNoHorizon disables
  /// deadline expiry (pure capacity policies).
  [[nodiscard]] virtual Rank horizon(const EngineView& view) const {
    (void)view;
    return kNoHorizon;
  }

  /// Tracked-set capacity; 0 = unlimited.
  [[nodiscard]] virtual std::size_t capacity() const { return 0; }

  /// Policy hook on establish/use events, called *before* the engine
  /// updates the generic FlowState fields, so stateful ranks (decayed
  /// frequency) see the previous last_use/epoch while updating `s.freq`.
  virtual void touch(FlowState& s, const EngineView& view, bool is_use) const {
    (void)s;
    (void)view;
    (void)is_use;
  }
};

/// Policy selection plus every policy parameter, as one sweepable config
/// value. Parsed from key=value Config bags (and therefore from any bench
/// main's CLI via Config::from_cli) with the `policy` key family:
///
///   policy=lru policy-capacity=12
///   policy=timeout policy-timeout=400
///   policy=hybrid policy-capacity=8 policy-w-recency=1 policy-w-frequency=4
struct PolicySpec {
  std::string policy = "timeout";

  std::int64_t timeout_ns = 200;      ///< timeout/phase: idle horizon
  std::uint64_t threshold = 8;        ///< counter: network-wide uses
  std::uint64_t capacity = 16;        ///< lru/lfu-decay/hybrid: tracked cap
  std::int64_t half_life_ns = 400;    ///< lfu-decay/hybrid: frequency decay
  std::int64_t lifetime_ns = 1000;    ///< deadline: lease from establish
  std::int64_t phase_epoch_ns = 1000;  ///< phase: working-set epoch
  double phase_shift_threshold = 0.25;  ///< phase: Jaccard flush threshold
  std::uint64_t weight_recency = 1;    ///< hybrid: weight on recency rank
  std::uint64_t weight_frequency = 4;  ///< hybrid: weight on frequency rank
  std::int64_t recency_quantum_ns = 100;  ///< hybrid: recency quantization
  /// Safety valve for the pure-capacity policies (lru/lfu-decay/hybrid):
  /// entries idle this long are expired regardless of rank. Without it a
  /// capacity policy wedges dynamic TDM at drain time -- the last blocked
  /// senders wait on held slots that only an overflow could free, and
  /// nothing overflows once traffic stalls. 0 disables the valve. Ignored
  /// by the deadline/horizon policies (their expiry is the rank itself).
  std::int64_t idle_ttl_ns = 2000;

  /// Per-source-port overrides of the policy's primary knob (timeout/phase
  /// -> idle horizon ns, deadline -> lifetime ns, counter -> threshold):
  /// sorted (port, value) pairs parsed from `policy-port-overrides=
  /// 3:400,7:100`. Ports not listed keep the global knob. Only supported by
  /// the horizon-encoded policies -- a per-port capacity would change what
  /// "tracked-set overflow" means and is rejected by validate(). An empty
  /// list takes the exact global-only code path (byte-identical behavior).
  std::vector<std::pair<NodeId, std::int64_t>> port_overrides;

  /// Policies selectable by name.
  [[nodiscard]] static const std::vector<std::string>& known_policies();

  /// Read the `policy` key family out of a Config bag. Every key is read
  /// (with its default as fallback) so strict CLI parsing accepts any
  /// policy parameter for any policy.
  [[nodiscard]] static PolicySpec from_config(const Config& cfg);

  /// Parse a compact `name[:value]` token (bench sweep axes), where the
  /// optional value sets the policy's primary knob: timeout/phase -> the
  /// idle horizon in ns, counter -> the threshold, lru/lfu-decay/hybrid ->
  /// the capacity, deadline -> the lifetime in ns.
  [[nodiscard]] static PolicySpec parse(const std::string& token);

  /// Short display label, e.g. "timeout-200", "lru-16", "hybrid-8".
  [[nodiscard]] std::string label() const;

  /// Abort on unknown policy names or non-positive parameters.
  void validate() const;
};

// --- Rank-function factories ------------------------------------------------

/// Pure reactive: never hold, never evict.
std::unique_ptr<RankFn> make_none_rank();
/// Hold everything forever (upper bound on working-set size).
std::unique_ptr<RankFn> make_never_evict_rank();
/// The paper's experimental predictor: evict after `timeout` idle time.
std::unique_ptr<RankFn> make_timeout_rank(TimeNs timeout);
/// Section 3.2 alternative: evict after `threshold` network-wide uses.
std::unique_ptr<RankFn> make_counter_rank(std::uint64_t threshold);
/// Least-recently-used beyond a tracked-set capacity.
std::unique_ptr<RankFn> make_lru_rank(std::size_t capacity);
/// Least-frequently-used with exponential decay, beyond a capacity.
std::unique_ptr<RankFn> make_lfu_decay_rank(std::size_t capacity,
                                            TimeNs half_life);
/// Lease-style: evict `lifetime` after establish regardless of use.
std::unique_ptr<RankFn> make_deadline_rank(TimeNs lifetime);
/// Weighted composition of the LRU and LFU-decay ranks over one capacity.
std::unique_ptr<RankFn> make_hybrid_rank(std::size_t capacity,
                                         std::uint64_t weight_recency,
                                         std::uint64_t weight_frequency,
                                         TimeNs recency_quantum,
                                         TimeNs half_life);

/// Build the rank function a PolicySpec names (validates the spec). With
/// port_overrides set, the horizon-encoded policies are wrapped in a
/// per-port dispatcher that ranks each flow by its source port's knob;
/// without overrides the global rank object is returned directly.
std::unique_ptr<RankFn> make_rank_fn(const PolicySpec& spec);

}  // namespace pmx
