#include "predictor/timeout_predictor.hpp"

#include "predictor/policy_engine.hpp"

namespace pmx {

std::unique_ptr<Predictor> make_no_predictor() {
  return std::make_unique<PolicyEngine>("none", make_none_rank());
}

std::unique_ptr<Predictor> make_never_evict_predictor() {
  return std::make_unique<PolicyEngine>("never-evict",
                                        make_never_evict_rank());
}

std::unique_ptr<Predictor> make_timeout_predictor(TimeNs timeout) {
  return std::make_unique<PolicyEngine>("timeout", make_timeout_rank(timeout));
}

std::unique_ptr<Predictor> make_counter_predictor(std::uint64_t threshold) {
  return std::make_unique<PolicyEngine>("counter",
                                        make_counter_rank(threshold));
}

}  // namespace pmx
