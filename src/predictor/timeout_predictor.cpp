#include "predictor/timeout_predictor.hpp"

#include "common/assert.hpp"
#include "predictor/predictor.hpp"

namespace pmx {

std::unique_ptr<Predictor> make_no_predictor() {
  return std::make_unique<NoPredictor>();
}

std::unique_ptr<Predictor> make_never_evict_predictor() {
  return std::make_unique<NeverEvictPredictor>();
}

TimeoutPredictor::TimeoutPredictor(TimeNs timeout) : timeout_(timeout) {
  PMX_CHECK(timeout_ > TimeNs::zero(), "timeout must be positive");
}

void TimeoutPredictor::on_establish(const Conn& c, TimeNs now) {
  last_use_[c] = now;
}

void TimeoutPredictor::on_use(const Conn& c, TimeNs now) {
  last_use_[c] = now;
}

void TimeoutPredictor::on_release(const Conn& c, TimeNs) {
  last_use_.erase(c);
}

std::vector<Conn> TimeoutPredictor::collect_evictions(TimeNs now) {
  std::vector<Conn> evict;
  for (auto it = last_use_.begin(); it != last_use_.end();) {
    if (now - it->second >= timeout_) {
      evict.push_back(it->first);
      it = last_use_.erase(it);
    } else {
      ++it;
    }
  }
  return evict;
}

CounterPredictor::CounterPredictor(std::uint64_t threshold)
    : threshold_(threshold) {
  PMX_CHECK(threshold_ > 0, "threshold must be positive");
}

void CounterPredictor::on_establish(const Conn& c, TimeNs) {
  last_use_epoch_[c] = epoch_;
}

void CounterPredictor::on_use(const Conn& c, TimeNs) {
  // Using a connection ages every other one; with the epoch encoding that
  // is a single increment plus resetting this connection's mark.
  ++epoch_;
  last_use_epoch_[c] = epoch_;
}

void CounterPredictor::on_release(const Conn& c, TimeNs) {
  last_use_epoch_.erase(c);
}

std::vector<Conn> CounterPredictor::collect_evictions(TimeNs) {
  std::vector<Conn> evict;
  for (auto it = last_use_epoch_.begin(); it != last_use_epoch_.end();) {
    if (epoch_ - it->second >= threshold_) {
      evict.push_back(it->first);
      it = last_use_epoch_.erase(it);
    } else {
      ++it;
    }
  }
  return evict;
}

std::unique_ptr<Predictor> make_timeout_predictor(TimeNs timeout) {
  return std::make_unique<TimeoutPredictor>(timeout);
}

std::unique_ptr<Predictor> make_counter_predictor(std::uint64_t threshold) {
  return std::make_unique<CounterPredictor>(threshold);
}

}  // namespace pmx
