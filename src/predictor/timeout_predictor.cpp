#include "predictor/timeout_predictor.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "predictor/predictor.hpp"

namespace pmx {

namespace {

// Eviction order feeds scheduler unhold calls and the eviction counter, so
// it must not depend on unordered_map bucket order (which varies across
// standard-library implementations). Normalize to (src, dst) order.
void sort_evictions(std::vector<Conn>& evict) {
  std::sort(evict.begin(), evict.end(), [](const Conn& a, const Conn& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });
}

}  // namespace

std::unique_ptr<Predictor> make_no_predictor() {
  return std::make_unique<NoPredictor>();
}

std::unique_ptr<Predictor> make_never_evict_predictor() {
  return std::make_unique<NeverEvictPredictor>();
}

TimeoutPredictor::TimeoutPredictor(TimeNs timeout) : timeout_(timeout) {
  PMX_CHECK(timeout_ > TimeNs::zero(), "timeout must be positive");
}

void TimeoutPredictor::on_establish(const Conn& c, TimeNs now) {
  last_use_[c] = now;
}

void TimeoutPredictor::on_use(const Conn& c, TimeNs now) {
  last_use_[c] = now;
}

void TimeoutPredictor::on_release(const Conn& c, TimeNs) {
  last_use_.erase(c);
}

std::vector<Conn> TimeoutPredictor::collect_evictions(TimeNs now) {
  std::vector<Conn> evict;
  // Visit order is irrelevant: membership is decided per entry and the
  // result is sorted below.
  auto it = last_use_.begin();  // pmx-lint: allow(unordered-iter)
  while (it != last_use_.end()) {
    if (now - it->second >= timeout_) {
      evict.push_back(it->first);
      it = last_use_.erase(it);
    } else {
      ++it;
    }
  }
  sort_evictions(evict);
  return evict;
}

CounterPredictor::CounterPredictor(std::uint64_t threshold)
    : threshold_(threshold) {
  PMX_CHECK(threshold_ > 0, "threshold must be positive");
}

void CounterPredictor::on_establish(const Conn& c, TimeNs) {
  last_use_epoch_[c] = epoch_;
}

void CounterPredictor::on_use(const Conn& c, TimeNs) {
  // Using a connection ages every other one; with the epoch encoding that
  // is a single increment plus resetting this connection's mark.
  ++epoch_;
  last_use_epoch_[c] = epoch_;
}

void CounterPredictor::on_release(const Conn& c, TimeNs) {
  last_use_epoch_.erase(c);
}

std::vector<Conn> CounterPredictor::collect_evictions(TimeNs) {
  std::vector<Conn> evict;
  // Visit order is irrelevant: membership is decided per entry and the
  // result is sorted below.
  auto it = last_use_epoch_.begin();  // pmx-lint: allow(unordered-iter)
  while (it != last_use_epoch_.end()) {
    if (epoch_ - it->second >= threshold_) {
      evict.push_back(it->first);
      it = last_use_epoch_.erase(it);
    } else {
      ++it;
    }
  }
  sort_evictions(evict);
  return evict;
}

std::unique_ptr<Predictor> make_timeout_predictor(TimeNs timeout) {
  return std::make_unique<TimeoutPredictor>(timeout);
}

std::unique_ptr<Predictor> make_counter_predictor(std::uint64_t threshold) {
  return std::make_unique<CounterPredictor>(threshold);
}

}  // namespace pmx
