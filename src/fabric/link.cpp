#include "fabric/link.hpp"

#include "common/assert.hpp"

namespace pmx {

LinkModel::LinkModel(const Params& p) : p_(p) {
  PMX_CHECK(p_.bandwidth_dgbps > 0, "link bandwidth must be positive");
}

TimeNs LinkModel::serialization(std::uint64_t bytes) const {
  // ns = bytes * 8 bits / (dgbps/10 Gb/s) = bytes * 80 / dgbps, rounded up.
  const auto num = static_cast<std::int64_t>(bytes) * 80;
  return TimeNs{(num + p_.bandwidth_dgbps - 1) / p_.bandwidth_dgbps};
}

std::uint64_t LinkModel::bytes_in(TimeNs w) const {
  if (w <= TimeNs::zero()) {
    return 0;
  }
  return static_cast<std::uint64_t>(w.ns() * p_.bandwidth_dgbps / 80);
}

TimeNs LinkModel::segment_latency() const { return p_.p2s + p_.wire + p_.s2p; }

TimeNs LinkModel::through_passive_switch(TimeNs switch_hop) const {
  return p_.p2s + p_.wire + switch_hop + p_.wire + p_.s2p;
}

}  // namespace pmx
