#include "fabric/omega.hpp"

#include <bit>

#include "common/assert.hpp"
#include "common/bitvector.hpp"

namespace pmx {

OmegaNetwork::OmegaNetwork(std::size_t n)
    : n_(n), stages_(static_cast<std::size_t>(std::countr_zero(n))) {
  PMX_CHECK(n >= 2 && std::has_single_bit(n),
            "Omega network size must be a power of two");
}

std::size_t OmegaNetwork::line_after_stage(std::size_t src, std::size_t dst,
                                           std::size_t stage) const {
  PMX_CHECK(src < n_ && dst < n_, "port out of range");
  PMX_CHECK(stage < stages_, "stage out of range");
  // Destination-tag self-routing: before each stage the lines are
  // perfect-shuffled (rotate-left of the line index), then the 2x2 switch
  // outputs the line whose LSB is the destination bit consumed at that
  // stage (MSB first).
  std::size_t line = src;
  for (std::size_t s = 0; s <= stage; ++s) {
    const std::size_t dst_bit = (dst >> (stages_ - 1 - s)) & 1;
    line = ((line << 1) & (n_ - 1)) | dst_bit;
  }
  return line;
}

std::vector<std::size_t> OmegaNetwork::route(std::size_t src,
                                             std::size_t dst) const {
  std::vector<std::size_t> lines(stages_);
  std::size_t line = src;
  for (std::size_t s = 0; s < stages_; ++s) {
    const std::size_t dst_bit = (dst >> (stages_ - 1 - s)) & 1;
    line = ((line << 1) & (n_ - 1)) | dst_bit;
    lines[s] = line;
  }
  PMX_CHECK(lines.back() == dst, "destination-tag routing must end at dst");
  return lines;
}

bool OmegaNetwork::conflict(const Conn& a, const Conn& b) const {
  // The last stage's line equals the destination, so distinct destinations
  // can only collide at stages 0..stages-2; identical destinations always
  // collide (and are already excluded by the crossbar constraint).
  std::size_t line_a = a.src;
  std::size_t line_b = b.src;
  for (std::size_t s = 0; s < stages_; ++s) {
    line_a = ((line_a << 1) & (n_ - 1)) | ((a.dst >> (stages_ - 1 - s)) & 1);
    line_b = ((line_b << 1) & (n_ - 1)) | ((b.dst >> (stages_ - 1 - s)) & 1);
    if (line_a == line_b) {
      return true;
    }
  }
  return false;
}

bool OmegaNetwork::routable(const BitMatrix& config) const {
  PMX_CHECK(config.size() == n_, "configuration size mismatch");
  PMX_CHECK(config.is_partial_permutation(),
            "Omega routability is checked on top of the crossbar constraint");
  // Occupancy bitmaps, one per stage.
  std::vector<BitVector> used(stages_, BitVector(n_));
  for (std::size_t u = 0; u < n_; ++u) {
    const std::size_t v = config.row(u).find_first();
    if (v >= n_) {
      continue;
    }
    std::size_t line = u;
    for (std::size_t s = 0; s < stages_; ++s) {
      line = ((line << 1) & (n_ - 1)) | ((v >> (stages_ - 1 - s)) & 1);
      if (used[s].get(line)) {
        return false;
      }
      used[s].set(line);
    }
  }
  return true;
}

OmegaDecomposition decompose_omega(const OmegaNetwork& omega,
                                   const std::vector<Conn>& conns) {
  const std::size_t n = omega.size();
  const std::size_t stages = omega.stages();
  OmegaDecomposition result;
  result.color_of.assign(conns.size(), static_cast<std::size_t>(-1));

  // Per config: per-stage line occupancy plus crossbar port occupancy.
  struct Slot {
    std::vector<BitVector> lines;
    BitVector in_used;
    BitVector out_used;
  };
  std::vector<Slot> slots;

  for (std::size_t e = 0; e < conns.size(); ++e) {
    const Conn& c = conns[e];
    PMX_CHECK(c.src < n && c.dst < n, "connection endpoint out of range");
    const auto lines = omega.route(c.src, c.dst);
    std::size_t chosen = static_cast<std::size_t>(-1);
    for (std::size_t s = 0; s < slots.size(); ++s) {
      Slot& slot = slots[s];
      if (slot.in_used.get(c.src) || slot.out_used.get(c.dst)) {
        continue;
      }
      bool free = true;
      for (std::size_t st = 0; st < stages && free; ++st) {
        free = !slot.lines[st].get(lines[st]);
      }
      if (free) {
        chosen = s;
        break;
      }
    }
    if (chosen == static_cast<std::size_t>(-1)) {
      chosen = slots.size();
      slots.push_back(Slot{std::vector<BitVector>(stages, BitVector(n)),
                           BitVector(n), BitVector(n)});
      result.configs.emplace_back(n);
    }
    Slot& slot = slots[chosen];
    for (std::size_t st = 0; st < stages; ++st) {
      slot.lines[st].set(lines[st]);
    }
    slot.in_used.set(c.src);
    slot.out_used.set(c.dst);
    result.configs[chosen].set(c.src, c.dst);
    result.color_of[e] = chosen;
  }

  for (const auto& cfg : result.configs) {
    PMX_CHECK(omega.routable(cfg), "omega decomposition produced a blocked "
                                   "configuration");
  }
  return result;
}

}  // namespace pmx
