#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/bitmatrix.hpp"
#include "common/time.hpp"

namespace pmx {

/// The signalling technology of the switching fabric (Section 5).
/// Digital crossbars (wormhole baseline) buffer and re-time flits and add a
/// 10 ns hop; LVDS/optical fabrics keep the signal in the analog domain and
/// their propagation (<2 ns) is neglected, with no serdes at the switch.
enum class FabricKind : std::uint8_t { kDigital, kLvds, kOptical };

/// Passive NxN crossbar with a double-buffered configuration register.
///
/// The fabric has no buffering or control logic of its own (Section 4): the
/// scheduler writes a configuration (a partial permutation) into the staging
/// register and commits it at a slot boundary. Connectivity queries are what
/// NIC models use to decide whether their byte streams reach the other side.
class Crossbar {
 public:
  Crossbar(std::size_t n, FabricKind kind);

  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] FabricKind kind() const { return kind_; }

  /// Propagation delay through the fabric for the head of a signal.
  [[nodiscard]] TimeNs hop_delay() const;

  /// Stage a configuration for the next commit. Rejected (PMX_CHECK) if it
  /// is not a partial permutation -- the hardware register cannot represent
  /// a conflicted state.
  void stage(const BitMatrix& config);
  /// Copy the staged configuration into the active register (the "copy
  /// config to fabric" edge of the time-slot clock in Figure 2).
  void commit();
  /// stage + commit in one step, for models that reconfigure immediately.
  void load(const BitMatrix& config);

  [[nodiscard]] bool connected(std::size_t in, std::size_t out) const {
    return active_.get(in, out);
  }
  /// Output port that input `in` currently drives, if any.
  [[nodiscard]] std::optional<std::size_t> output_of(std::size_t in) const;
  /// Input port currently driving output `out`, if any.
  [[nodiscard]] std::optional<std::size_t> input_of(std::size_t out) const;

  [[nodiscard]] const BitMatrix& active() const { return active_; }
  [[nodiscard]] std::uint64_t commits() const { return commits_; }
  /// Commits that actually changed the active configuration.
  [[nodiscard]] std::uint64_t reconfigurations() const { return reconfigs_; }

 private:
  std::size_t n_;
  FabricKind kind_;
  BitMatrix active_;
  BitMatrix staged_;
  std::uint64_t commits_ = 0;
  std::uint64_t reconfigs_ = 0;
};

}  // namespace pmx
