#include "fabric/fattree.hpp"

#include "common/assert.hpp"
#include "common/bitvector.hpp"

namespace pmx {

FatTree::FatTree(std::size_t num_leaves, std::size_t leaf_ports,
                 std::size_t num_spines)
    : num_leaves_(num_leaves),
      leaf_ports_(leaf_ports),
      num_spines_(num_spines) {
  PMX_CHECK(num_leaves_ >= 1 && leaf_ports_ >= 1 && num_spines_ >= 1,
            "degenerate fat tree");
}

bool FatTree::routable(const BitMatrix& config) const {
  PMX_CHECK(config.size() == size(), "configuration size mismatch");
  PMX_CHECK(config.is_partial_permutation(),
            "fat-tree routability is checked on top of the crossbar "
            "constraint");
  std::vector<std::size_t> up(num_leaves_, 0);
  std::vector<std::size_t> down(num_leaves_, 0);
  for (std::size_t u = 0; u < size(); ++u) {
    const std::size_t v = config.row(u).find_first();
    if (v >= size()) {
      continue;
    }
    const std::size_t src_leaf = leaf_of(u);
    const std::size_t dst_leaf = leaf_of(v);
    if (src_leaf == dst_leaf) {
      continue;  // stays inside the leaf switch
    }
    if (++up[src_leaf] > num_spines_ || ++down[dst_leaf] > num_spines_) {
      return false;
    }
  }
  return true;
}

FatTreeDecomposition decompose_fattree(const FatTree& tree,
                                       const std::vector<Conn>& conns) {
  const std::size_t n = tree.size();
  FatTreeDecomposition result;
  result.color_of.assign(conns.size(), static_cast<std::size_t>(-1));

  struct Slot {
    BitVector in_used;
    BitVector out_used;
    std::vector<std::size_t> up;
    std::vector<std::size_t> down;
  };
  std::vector<Slot> slots;

  for (std::size_t e = 0; e < conns.size(); ++e) {
    const Conn& c = conns[e];
    PMX_CHECK(c.src < n && c.dst < n, "connection endpoint out of range");
    const std::size_t src_leaf = tree.leaf_of(c.src);
    const std::size_t dst_leaf = tree.leaf_of(c.dst);
    const bool local = src_leaf == dst_leaf;

    std::size_t chosen = static_cast<std::size_t>(-1);
    for (std::size_t s = 0; s < slots.size(); ++s) {
      Slot& slot = slots[s];
      if (slot.in_used.get(c.src) || slot.out_used.get(c.dst)) {
        continue;
      }
      if (!local && (slot.up[src_leaf] >= tree.num_spines() ||
                     slot.down[dst_leaf] >= tree.num_spines())) {
        continue;
      }
      chosen = s;
      break;
    }
    if (chosen == static_cast<std::size_t>(-1)) {
      chosen = slots.size();
      slots.push_back(Slot{BitVector(n), BitVector(n),
                           std::vector<std::size_t>(tree.num_leaves(), 0),
                           std::vector<std::size_t>(tree.num_leaves(), 0)});
      result.configs.emplace_back(n);
    }
    Slot& slot = slots[chosen];
    slot.in_used.set(c.src);
    slot.out_used.set(c.dst);
    if (!local) {
      ++slot.up[src_leaf];
      ++slot.down[dst_leaf];
    }
    result.configs[chosen].set(c.src, c.dst);
    result.color_of[e] = chosen;
  }

  for (const auto& cfg : result.configs) {
    PMX_CHECK(tree.routable(cfg),
              "fat-tree decomposition produced an over-capacity config");
  }
  return result;
}

}  // namespace pmx
