#pragma once

#include <cstdint>

#include "common/time.hpp"

namespace pmx {

/// Serial link timing model (Section 5 of the paper).
///
/// 10-foot cables carrying high-speed serial signals at 6.4 Gb/s:
/// 30 ns parallel-to-serial conversion, 20 ns wire propagation and 30 ns
/// serial-to-parallel conversion. Bandwidth is expressed in tenths of
/// Gb/s so all per-byte times stay exact in integer arithmetic
/// (6.4 Gb/s = 0.8 B/ns: an 8-byte flit takes exactly 10 ns).
class LinkModel {
 public:
  struct Params {
    std::int64_t bandwidth_dgbps = 64;  ///< tenths of Gb/s (64 -> 6.4 Gb/s)
    TimeNs p2s{30};                     ///< parallel-to-serial conversion
    TimeNs s2p{30};                     ///< serial-to-parallel conversion
    TimeNs wire{20};                    ///< propagation down one 10-ft cable
  };

  LinkModel() : LinkModel(Params{}) {}
  explicit LinkModel(const Params& p);

  /// Time to clock `bytes` onto the serial wire (ceil at ns resolution).
  [[nodiscard]] TimeNs serialization(std::uint64_t bytes) const;

  /// Largest payload that fits in a window of `w` ns at line rate.
  [[nodiscard]] std::uint64_t bytes_in(TimeNs w) const;

  /// One-way latency of the head of a transfer across one cable segment
  /// including both conversions: p2s + wire + s2p.
  [[nodiscard]] TimeNs segment_latency() const;

  /// Head latency through NIC->switch->NIC where the switch keeps the signal
  /// in the analog/differential domain (LVDS or optical, Section 5): no
  /// serdes at the switch, negligible switch propagation. p2s + wire +
  /// switch_hop + wire + s2p.
  [[nodiscard]] TimeNs through_passive_switch(TimeNs switch_hop) const;

  [[nodiscard]] const Params& params() const { return p_; }

 private:
  Params p_;
};

}  // namespace pmx
