#pragma once

#include <cstddef>
#include <vector>

#include "common/bitmatrix.hpp"
#include "common/message.hpp"

namespace pmx {

/// Two-level fat-tree (folded Clos) fabric model.
///
/// Section 4 lists fat trees among the fabrics the passive switching system
/// can use, noting they have "multi-paths from inputs to outputs". We model
/// the standard two-level organization: `num_leaves` leaf switches of
/// `leaf_ports` node ports each, every leaf connected to `num_spines` spine
/// switches by one uplink each. A connection between nodes under different
/// leaves consumes one uplink at the source leaf and one downlink at the
/// destination leaf (any spine works -- the multipath property); traffic
/// within a leaf never leaves it.
///
/// A configuration is realizable iff, besides the crossbar port constraint,
/// every leaf's inter-leaf connection count stays within `num_spines` in
/// each direction (Hall's condition for the spine bipartite graph is then
/// satisfiable because any spine can carry any pair, i.e. the spine stage
/// is rearrangeably non-blocking).
class FatTree {
 public:
  FatTree(std::size_t num_leaves, std::size_t leaf_ports,
          std::size_t num_spines);

  [[nodiscard]] std::size_t size() const { return num_leaves_ * leaf_ports_; }
  [[nodiscard]] std::size_t num_leaves() const { return num_leaves_; }
  [[nodiscard]] std::size_t leaf_ports() const { return leaf_ports_; }
  [[nodiscard]] std::size_t num_spines() const { return num_spines_; }

  /// Leaf switch housing node `u`.
  [[nodiscard]] std::size_t leaf_of(NodeId u) const { return u / leaf_ports_; }
  /// True when the connection stays inside one leaf switch.
  [[nodiscard]] bool is_local(const Conn& c) const {
    return leaf_of(c.src) == leaf_of(c.dst);
  }

  /// Oversubscription ratio: node ports per leaf divided by uplinks.
  [[nodiscard]] double oversubscription() const {
    return static_cast<double>(leaf_ports_) /
           static_cast<double>(num_spines_);
  }

  /// True when `config` (a partial permutation) fits the uplink/downlink
  /// capacities of every leaf.
  [[nodiscard]] bool routable(const BitMatrix& config) const;

 private:
  std::size_t num_leaves_;
  std::size_t leaf_ports_;
  std::size_t num_spines_;
};

/// Decompose a connection set into fat-tree-realizable configurations
/// (greedy first-fit over leaf capacities). With num_spines == leaf_ports
/// (full bisection) this matches the crossbar's greedy decomposition; with
/// oversubscription it needs proportionally more configurations for
/// inter-leaf-heavy working sets.
struct FatTreeDecomposition {
  std::vector<BitMatrix> configs;
  std::vector<std::size_t> color_of;

  [[nodiscard]] std::size_t degree() const { return configs.size(); }
};

[[nodiscard]] FatTreeDecomposition decompose_fattree(
    const FatTree& tree, const std::vector<Conn>& conns);

}  // namespace pmx
