#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bitmatrix.hpp"
#include "common/message.hpp"

namespace pmx {

/// Omega multistage interconnection network model.
///
/// Section 4 notes that the passive fabric "can represent a crossbar
/// interconnection, a multistage fabric, a fat tree organization ..." and
/// that "more complicated constraints may be derived for fabrics that have
/// limited permutation capabilities (e.g. multistage networks)". This class
/// derives those constraints for the classic Omega network: log2(N) stages
/// of 2x2 switches with a perfect shuffle between stages, destination-tag
/// (self-routing) paths.
///
/// A configuration is realizable exactly when no two connections share an
/// internal line at any stage. Because the Omega network is blocking, a
/// partial permutation that a crossbar realizes in one slot may need
/// several slots here -- decompose_omega() computes such a slot assignment
/// and quantifies the multiplexing-degree cost of the cheaper fabric.
class OmegaNetwork {
 public:
  /// `n` must be a power of two (>= 2).
  explicit OmegaNetwork(std::size_t n);

  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] std::size_t stages() const { return stages_; }

  /// The internal line (0..n-1) occupied by connection (src,dst) entering
  /// stage `s+1`; i.e. after s+1 shuffle+switch steps, s in [0, stages).
  [[nodiscard]] std::size_t line_after_stage(std::size_t src, std::size_t dst,
                                             std::size_t stage) const;

  /// Full per-stage line trace for one connection (length == stages()).
  [[nodiscard]] std::vector<std::size_t> route(std::size_t src,
                                               std::size_t dst) const;

  /// True when the two connections can coexist (no shared line anywhere).
  [[nodiscard]] bool conflict(const Conn& a, const Conn& b) const;

  /// True when every pair of connections in `config` is conflict-free.
  /// `config` must be a partial permutation (crossbar-feasible); this
  /// checks the *additional* Omega constraint.
  [[nodiscard]] bool routable(const BitMatrix& config) const;

 private:
  std::size_t n_;
  std::size_t stages_;
};

/// Decompose a connection set into Omega-routable configurations
/// (greedy first-fit over per-stage line occupancy). The result satisfies
/// both the crossbar and the Omega constraints; its size is the
/// multiplexing degree the Omega fabric needs for this working set.
struct OmegaDecomposition {
  std::vector<BitMatrix> configs;
  std::vector<std::size_t> color_of;

  [[nodiscard]] std::size_t degree() const { return configs.size(); }
};

[[nodiscard]] OmegaDecomposition decompose_omega(const OmegaNetwork& omega,
                                                 const std::vector<Conn>&
                                                     conns);

}  // namespace pmx
