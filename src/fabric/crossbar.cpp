#include "fabric/crossbar.hpp"

#include "common/assert.hpp"

namespace pmx {

Crossbar::Crossbar(std::size_t n, FabricKind kind)
    : n_(n), kind_(kind), active_(n), staged_(n) {
  PMX_CHECK(n > 0, "crossbar must have at least one port");
}

TimeNs Crossbar::hop_delay() const {
  switch (kind_) {
    case FabricKind::kDigital:
      return TimeNs{10};
    case FabricKind::kLvds:
    case FabricKind::kOptical:
      return TimeNs{0};  // <2 ns, neglected per the paper
  }
  return TimeNs{0};
}

void Crossbar::stage(const BitMatrix& config) {
  PMX_CHECK(config.size() == n_, "configuration size mismatch");
  PMX_CHECK(config.is_partial_permutation(),
            "crossbar configuration must be a partial permutation");
  staged_ = config;
}

void Crossbar::commit() {
  ++commits_;
  if (active_ != staged_) {
    ++reconfigs_;
    active_ = staged_;
  }
}

void Crossbar::load(const BitMatrix& config) {
  stage(config);
  commit();
}

std::optional<std::size_t> Crossbar::output_of(std::size_t in) const {
  PMX_CHECK(in < n_, "input port out of range");
  const std::size_t v = active_.row(in).find_first();
  if (v < n_) {
    return v;
  }
  return std::nullopt;
}

std::optional<std::size_t> Crossbar::input_of(std::size_t out) const {
  PMX_CHECK(out < n_, "output port out of range");
  for (std::size_t u = 0; u < n_; ++u) {
    if (active_.get(u, out)) {
      return u;
    }
  }
  return std::nullopt;
}

}  // namespace pmx
