#include "fault/control_fault.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"

namespace pmx {

const char* to_string(CtrlMsg kind) {
  switch (kind) {
    case CtrlMsg::kRequest:
      return "request";
    case CtrlMsg::kGrant:
      return "grant";
    case CtrlMsg::kRelease:
      return "release";
    case CtrlMsg::kReconfig:
      return "reconfig";
  }
  return "unknown";
}

double ControlFaultParams::effective_loss(CtrlMsg kind) const {
  switch (kind) {
    case CtrlMsg::kGrant:
      return grant_loss < 0.0 ? loss : grant_loss;
    case CtrlMsg::kRelease:
      return release_loss < 0.0 ? loss : release_loss;
    case CtrlMsg::kReconfig:
      return reconfig_loss < 0.0 ? loss : reconfig_loss;
    case CtrlMsg::kRequest:
      break;
  }
  return loss;
}

void ControlFaultParams::validate(TimeNs slot_length) const {
  PMX_CHECK(loss >= 0.0 && loss <= 1.0,
            "control loss rate must be in [0, 1]");
  PMX_CHECK(corrupt >= 0.0 && corrupt <= 1.0,
            "control corruption rate must be in [0, 1]");
  PMX_CHECK(delay_rate >= 0.0 && delay_rate <= 1.0,
            "control delay rate must be in [0, 1]");
  PMX_CHECK(delay >= TimeNs::zero(), "negative control delay");
  PMX_CHECK(grant_loss <= 1.0, "grant loss rate must be <= 1");
  PMX_CHECK(release_loss <= 1.0, "release loss rate must be <= 1");
  PMX_CHECK(reconfig_loss <= 1.0, "reconfig loss rate must be <= 1");
  PMX_CHECK(watchdog_timeout > TimeNs::zero(),
            "grant watchdog timeout must be positive: a zero timeout would "
            "reissue every request in the same instant it was sent");
  PMX_CHECK(watchdog_cap >= watchdog_timeout,
            "watchdog backoff cap below the base timeout");
  PMX_CHECK(lease == TimeNs::zero() || lease >= slot_length,
            "scheduler lease shorter than one TDM slot would expire live "
            "connections between their own data slots (0 disables leases)");
}

ControlFaultModel::ControlFaultModel(Simulator& sim,
                                     const ControlFaultParams& params,
                                     TimeNs slot_length)
    : sim_(sim), params_(params), rng_(params.seed) {
  params_.validate(slot_length);
}

ControlFaultModel::Verdict ControlFaultModel::decide(CtrlMsg kind) {
  const auto k = static_cast<std::size_t>(kind);
  KindStats& st = stats_[k];
  ++st.sent;
  // Scripted overrides first; they never consume the RNG stream, so a test
  // can force one exact loss without perturbing the seeded timeline.
  if (forced_drops_[k] > 0) {
    --forced_drops_[k];
    ++st.dropped;
    return Verdict::kDrop;
  }
  if (forced_corrupts_[k] > 0) {
    --forced_corrupts_[k];
    ++st.corrupted;
    return Verdict::kCorrupt;
  }
  if (forced_delays_[k] > 0) {
    --forced_delays_[k];
    ++st.delayed;
    return Verdict::kDelay;
  }
  // Zero-rate draws consume no RNG: the force-enabled model with all rates
  // zero is bit-identical to no model at all.
  const double loss = params_.effective_loss(kind);
  if (loss > 0.0 && rng_.chance(loss)) {
    ++st.dropped;
    return Verdict::kDrop;
  }
  if (params_.corrupt > 0.0 && rng_.chance(params_.corrupt)) {
    ++st.corrupted;
    return Verdict::kCorrupt;
  }
  if (params_.delay_rate > 0.0 && rng_.chance(params_.delay_rate)) {
    ++st.delayed;
    return Verdict::kDelay;
  }
  return Verdict::kDeliver;
}

bool ControlFaultModel::send(CtrlMsg kind, TimeNs latency, EventFn deliver) {
  switch (decide(kind)) {
    case Verdict::kDeliver:
      sim_.schedule_after(latency, std::move(deliver));
      return true;
    case Verdict::kDelay:
      sim_.schedule_after(latency + params_.delay, std::move(deliver));
      return true;
    case Verdict::kDrop:
    case Verdict::kCorrupt:
      // A corrupted control message fails the receiver's check and is
      // discarded: behaviorally a drop, counted separately.
      return false;
  }
  return false;
}

void ControlFaultModel::force_drop(CtrlMsg kind, std::size_t n) {
  forced_drops_[static_cast<std::size_t>(kind)] += n;
}

void ControlFaultModel::force_corrupt(CtrlMsg kind, std::size_t n) {
  forced_corrupts_[static_cast<std::size_t>(kind)] += n;
}

void ControlFaultModel::force_delay(CtrlMsg kind, std::size_t n) {
  forced_delays_[static_cast<std::size_t>(kind)] += n;
}

TimeNs ControlFaultModel::watchdog_delay(std::size_t attempt) const {
  PMX_CHECK(attempt >= 1, "watchdog attempts are 1-based");
  std::int64_t d = params_.watchdog_timeout.ns();
  for (std::size_t i = 1; i < attempt && d < params_.watchdog_cap.ns(); ++i) {
    d *= 2;
  }
  return std::min(TimeNs{d}, params_.watchdog_cap);
}

std::uint64_t ControlFaultModel::total_sent() const {
  std::uint64_t total = 0;
  for (const KindStats& st : stats_) {
    total += st.sent;
  }
  return total;
}

std::uint64_t ControlFaultModel::total_dropped() const {
  std::uint64_t total = 0;
  for (const KindStats& st : stats_) {
    total += st.dropped;
  }
  return total;
}

std::uint64_t ControlFaultModel::total_corrupted() const {
  std::uint64_t total = 0;
  for (const KindStats& st : stats_) {
    total += st.corrupted;
  }
  return total;
}

std::uint64_t ControlFaultModel::total_delayed() const {
  std::uint64_t total = 0;
  for (const KindStats& st : stats_) {
    total += st.delayed;
  }
  return total;
}

}  // namespace pmx
