#include "fault/fault_model.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace pmx {

void FaultParams::validate(std::size_t num_nodes) const {
  PMX_CHECK(ber >= 0.0 && ber <= 1.0, "bit-error rate must be in [0, 1]");
  PMX_CHECK(ack_ber <= 1.0, "ack bit-error rate must be <= 1");
  PMX_CHECK(link_mtbf >= TimeNs::zero(), "negative link MTBF");
  PMX_CHECK(link_repair >= TimeNs::zero(), "negative link repair time");
  PMX_CHECK(link_mtbf == TimeNs::zero() || link_repair > TimeNs::zero(),
            "random link faults require link_repair > 0: a permanently dead "
            "link parks queued traffic forever (scripted inject_link_fault "
            "still allows permanent outages)");
  PMX_CHECK(retry_budget >= 1, "retry budget must allow at least one attempt");
  PMX_CHECK(retransmit_timeout > TimeNs::zero(),
            "retransmit timeout must be positive");
  PMX_CHECK(backoff_base > TimeNs::zero(), "backoff base must be positive");
  PMX_CHECK(backoff_cap >= backoff_base, "backoff cap below backoff base");
  PMX_CHECK(stuck_cells <= num_nodes * (num_nodes - 1),
            "more stuck cells than off-diagonal SL cells");
}

FaultModel::FaultModel(Simulator& sim, const FaultParams& params,
                       std::size_t num_nodes)
    : sim_(sim),
      params_(params),
      corrupt_rng_(params.seed),
      fault_rng_(Rng(params.seed).split()),
      up_(num_nodes, true) {
  params_.validate(num_nodes);
  payload_log1m_ber_ = params_.ber > 0.0 ? std::log1p(-params_.ber) : 0.0;
  const double ack_ber = params_.effective_ack_ber();
  ack_corrupt_p_ =
      ack_ber > 0.0
          ? -std::expm1(static_cast<double>(kAckBytes) * std::log1p(-ack_ber))
          : 0.0;

  if (params_.stuck_cells > 0) {
    // Rejection-sample distinct off-diagonal cells from the hard-fault
    // stream (drawn before any timeline draw, so the set is stable).
    while (stuck_cells_.size() < params_.stuck_cells) {
      const auto u = static_cast<std::size_t>(fault_rng_.below(num_nodes));
      const auto v = static_cast<std::size_t>(fault_rng_.below(num_nodes));
      if (u == v) {
        continue;
      }
      bool duplicate = false;
      for (const auto& cell : stuck_cells_) {
        duplicate = duplicate || cell == std::make_pair(u, v);
      }
      if (!duplicate) {
        stuck_cells_.emplace_back(u, v);
      }
    }
  }

  if (params_.link_mtbf > TimeNs::zero()) {
    for (NodeId node = 0; node < num_nodes; ++node) {
      schedule_next_failure(node);
    }
  }
}

bool FaultModel::corrupts_payload(std::uint64_t bytes) {
  if (forced_corruptions_ > 0) {
    --forced_corruptions_;
    return true;
  }
  if (params_.ber <= 0.0) {
    return false;  // no RNG draw: the zero-rate model stays timing-neutral
  }
  const double p =
      -std::expm1(static_cast<double>(bytes) * payload_log1m_ber_);
  return corrupt_rng_.chance(p);
}

bool FaultModel::corrupts_ack() {
  if (forced_ack_corruptions_ > 0) {
    --forced_ack_corruptions_;
    return true;
  }
  if (ack_corrupt_p_ <= 0.0) {
    return false;
  }
  return corrupt_rng_.chance(ack_corrupt_p_);
}

TimeNs FaultModel::backoff(std::size_t attempt) const {
  PMX_CHECK(attempt >= 2, "backoff applies to retransmissions only");
  std::int64_t b = params_.backoff_base.ns();
  for (std::size_t i = 2; i < attempt && b < params_.backoff_cap.ns(); ++i) {
    b *= 2;
  }
  return std::min(TimeNs{b}, params_.backoff_cap);
}

void FaultModel::inject_link_fault(NodeId node, TimeNs at, TimeNs duration) {
  PMX_CHECK(node < up_.size(), "fault node out of range");
  PMX_CHECK(at >= sim_.now(), "cannot inject a fault in the past");
  sim_.schedule_at(at, [this, node, duration] {
    fail_link(node, duration, /*scripted=*/true);
  });
}

void FaultModel::schedule_next_failure(NodeId node) {
  const double mean = static_cast<double>(params_.link_mtbf.ns());
  const auto wait =
      std::max<std::int64_t>(1, std::llround(fault_rng_.exponential(mean)));
  sim_.schedule_after(TimeNs{wait}, [this, node] {
    fail_link(node, params_.link_repair, /*scripted=*/false);
  });
}

void FaultModel::fail_link(NodeId node, TimeNs repair_after, bool scripted) {
  if (!scripted && injected_ >= params_.max_link_faults) {
    return;  // cap reached: the random timeline goes quiet
  }
  if (!up_[node]) {
    // Already down (overlapping scripted/random faults): keep the earlier
    // outage, but stay on the random timeline.
    if (!scripted && params_.link_repair > TimeNs::zero()) {
      schedule_next_failure(node);
    }
    return;
  }
  up_[node] = false;
  ++links_down_;
  ++injected_;
  notify(node, /*up=*/false);
  if (repair_after > TimeNs::zero()) {
    sim_.schedule_after(repair_after, [this, node, scripted] {
      repair_link(node);
      if (!scripted && params_.link_mtbf > TimeNs::zero()) {
        schedule_next_failure(node);
      }
    });
  }
}

void FaultModel::repair_link(NodeId node) {
  if (up_[node]) {
    return;
  }
  up_[node] = true;
  --links_down_;
  notify(node, /*up=*/true);
}

void FaultModel::notify(NodeId node, bool up) {
  for (const auto& listener : listeners_) {
    listener(node, up);
  }
}

}  // namespace pmx
