#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "sim/simulator.hpp"

namespace pmx {

/// The message classes of the scheduling circuit's control path (Section
/// 4): a NIC raising a request bit, the scheduler's grant/revoke reply, the
/// NIC dropping its request (release), and the re-optimization service's
/// apply command (reconfig, DESIGN.md §14). The data-plane FaultModel never
/// touches these; this enum keys the control-plane fault injector.
enum class CtrlMsg : std::uint8_t {
  kRequest = 0,
  kGrant = 1,
  kRelease = 2,
  kReconfig = 3,
};

/// Number of CtrlMsg kinds (stats/script array extents).
inline constexpr std::size_t kNumCtrlMsgKinds = 4;

[[nodiscard]] const char* to_string(CtrlMsg kind);

/// Configuration of the control-plane fault injector. All rates default to
/// zero, in which case no ControlFaultModel is instantiated and every
/// network's control path behaves exactly as the lossless seed system.
/// Mirrors the FaultParams API (seeded, scripted, rate-based).
struct ControlFaultParams {
  /// Seed for the injector's private RNG stream; independent of the
  /// data-plane fault seed and the workload seed.
  std::uint64_t seed = 0xC7A15EEDu;

  /// Probability that one control message is silently dropped in transit.
  /// Applies to every kind unless overridden per kind below.
  double loss = 0.0;
  /// Probability that a control message arrives corrupted and is discarded
  /// by the receiver's check ("effectively dropped", counted separately).
  double corrupt = 0.0;
  /// Probability that a control message is delayed by `delay` (skew,
  /// serialization queueing on the control wire).
  double delay_rate = 0.0;
  /// Extra latency applied to delayed messages.
  TimeNs delay{160};

  /// Per-kind loss overrides. Negative (the default) falls back to `loss`;
  /// zero makes that kind reliable.
  double grant_loss = -1.0;
  double release_loss = -1.0;
  /// Loss override for the re-optimization service's reconfig commands
  /// (they ride the same lossy channel as request/grant/release).
  double reconfig_loss = -1.0;

  // --- NIC grant watchdog --------------------------------------------------
  /// How long a NIC waits for evidence of its request (a grant, or data
  /// progress) before reissuing it. Doubles per attempt (exponential
  /// backoff), capped at `watchdog_cap`. Must be positive.
  TimeNs watchdog_timeout{500};
  TimeNs watchdog_cap{16'000};

  // --- Scheduler-side lease ------------------------------------------------
  /// A request/connection the scheduler holds that shows no activity (no
  /// data, no request refresh) for this long is auto-expired, healing lost
  /// releases. Zero disables leases; otherwise must be at least one TDM
  /// slot (an active connection proves liveness once per slot).
  TimeNs lease{5'000};

  /// Master switch for the self-healing machinery (watchdog reissue +
  /// lease expiry). Disabled, lost control messages wedge or leak -- which
  /// is exactly what the strict-mode auditor tests prove.
  bool heal = true;

  /// Instantiate the control-fault machinery even with all rates zero --
  /// used by tests that script faults and to verify the watchdog/lease
  /// layer is timing-neutral when nothing is ever lost.
  bool force_enable = false;

  /// True when any control-fault source (or force_enable) is configured.
  [[nodiscard]] bool enabled() const {
    return force_enable || loss > 0.0 || corrupt > 0.0 || delay_rate > 0.0 ||
           grant_loss > 0.0 || release_loss > 0.0 || reconfig_loss > 0.0;
  }

  /// Effective loss probability for one message kind.
  [[nodiscard]] double effective_loss(CtrlMsg kind) const;

  /// Fail fast on nonsensical knobs; `slot_length` bounds the lease.
  void validate(TimeNs slot_length) const;
};

/// Deterministic fault injector for the NIC <-> scheduler control channel.
///
/// Every control message is routed through send(): one seeded draw decides
/// whether it is delivered (possibly delayed), dropped, or corrupted
/// (discarded by the receiver, i.e. dropped with a separate count).
/// Scripted force_* hooks override the next n draws of one kind without
/// consuming the RNG stream, mirroring FaultModel::force_corrupt_payloads /
/// inject_link_fault.
class ControlFaultModel {
 public:
  /// What the channel decided for one message.
  enum class Verdict : std::uint8_t { kDeliver, kDrop, kCorrupt, kDelay };

  /// Per-kind delivery statistics.
  struct KindStats {
    std::uint64_t sent = 0;
    std::uint64_t dropped = 0;
    std::uint64_t corrupted = 0;
    std::uint64_t delayed = 0;
  };

  ControlFaultModel(Simulator& sim, const ControlFaultParams& params,
                    TimeNs slot_length);

  [[nodiscard]] const ControlFaultParams& params() const { return params_; }

  /// Draw the channel's verdict for one message of `kind` (consumes RNG
  /// only for rates that are nonzero; scripted overrides consume none).
  /// Counts the message in stats(). Callers that model a zero-latency
  /// control path (wormhole arbitration) use this directly.
  [[nodiscard]] Verdict decide(CtrlMsg kind);

  /// Route one control message through the lossy channel: schedules
  /// `deliver` after `latency` (plus `delay` when delayed) and returns true,
  /// or drops/corrupts it and returns false (nothing scheduled).
  bool send(CtrlMsg kind, TimeNs latency, EventFn deliver);

  /// Scripted faults: the next `n` messages of `kind` are dropped /
  /// corrupted / delayed regardless of the random draws (which are not
  /// consumed). Deterministic test hooks.
  void force_drop(CtrlMsg kind, std::size_t n);
  void force_corrupt(CtrlMsg kind, std::size_t n);
  void force_delay(CtrlMsg kind, std::size_t n);

  /// Watchdog backoff before reissue attempt `attempt` (attempt 1 is the
  /// initial wait): watchdog_timeout * 2^(attempt-1), capped.
  [[nodiscard]] TimeNs watchdog_delay(std::size_t attempt) const;

  [[nodiscard]] const KindStats& stats(CtrlMsg kind) const {
    return stats_[static_cast<std::size_t>(kind)];
  }
  /// Sums over all message kinds.
  [[nodiscard]] std::uint64_t total_sent() const;
  [[nodiscard]] std::uint64_t total_dropped() const;
  [[nodiscard]] std::uint64_t total_corrupted() const;
  [[nodiscard]] std::uint64_t total_delayed() const;

 private:
  Simulator& sim_;
  ControlFaultParams params_;
  Rng rng_;
  std::array<KindStats, kNumCtrlMsgKinds> stats_{};
  std::array<std::size_t, kNumCtrlMsgKinds> forced_drops_{};
  std::array<std::size_t, kNumCtrlMsgKinds> forced_corrupts_{};
  std::array<std::size_t, kNumCtrlMsgKinds> forced_delays_{};
};

}  // namespace pmx
