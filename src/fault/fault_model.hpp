#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/message.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "sim/simulator.hpp"

namespace pmx {

/// Configuration of the fault-injection subsystem. All rates default to
/// zero, in which case no FaultModel is instantiated at all and every
/// network behaves exactly as the fault-free seed system (strict no-op).
struct FaultParams {
  /// Seed for the fault model's private RNG streams. Two runs with the same
  /// seed (and the same workload) inject bit-identical fault sequences.
  std::uint64_t seed = 0x5EEDF417u;

  /// Per-byte probability that a byte of payload is corrupted in transit
  /// (transient bit errors on the serial link). A message of `b` bytes
  /// arrives corrupted with probability 1 - (1-ber)^b and is caught by the
  /// receiver's CRC check.
  double ber = 0.0;

  /// Per-byte corruption probability of the 8-byte ACK/NACK control
  /// messages on the reverse path. Negative (the default) derives it from
  /// `ber`; zero makes acknowledgements reliable.
  double ack_ber = -1.0;

  /// Mean time between hard failures of one node's cable (exponentially
  /// distributed, independent per link). Zero disables hard link faults.
  TimeNs link_mtbf{0};
  /// Time a failed link stays down before it is repaired. Must be positive
  /// whenever `link_mtbf` is nonzero (validated): the retry budget is only
  /// consumed by arrivals, so traffic queued to or from a permanently dead
  /// link would wait for the repair forever and the run would hang instead
  /// of degrading. Permanent outages are still available for tests via the
  /// scripted `FaultModel::inject_link_fault` with a zero duration -- the
  /// caller then owns the no-hang guarantee (don't route barrier traffic
  /// over the dead node, or bound the run with a horizon).
  TimeNs link_repair{0};
  /// Global cap on randomly injected hard link faults (keeps long
  /// simulations from degenerating into permanent outage churn).
  std::size_t max_link_faults = 1'000'000;

  /// Number of SL-array cells stuck at zero (chosen uniformly at random at
  /// construction). A stuck cell can never establish its connection
  /// reactively; preloaded configurations bypass the SL array and still
  /// work (the registers are written directly).
  std::size_t stuck_cells = 0;

  // --- NIC retransmission (ARQ) knobs -----------------------------------
  /// Maximum transmission attempts per message before the NIC gives up and
  /// drops it permanently.
  std::size_t retry_budget = 16;
  /// How long the sender waits for an ACK before assuming it was lost.
  TimeNs retransmit_timeout{500};
  /// First retransmission backoff; doubles per attempt (exponential).
  TimeNs backoff_base{200};
  /// Upper bound on the exponential backoff.
  TimeNs backoff_cap{25'000};

  /// Instantiate the fault machinery even with all rates at zero -- used by
  /// tests that inject scripted faults, and to verify the reliability layer
  /// is timing-neutral when nothing ever fails.
  bool force_enable = false;

  /// True when any fault source (or force_enable) is configured.
  [[nodiscard]] bool enabled() const {
    return force_enable || ber > 0.0 || ack_ber > 0.0 ||
           link_mtbf > TimeNs::zero() || stuck_cells > 0;
  }

  /// Effective per-byte ACK corruption probability.
  [[nodiscard]] double effective_ack_ber() const {
    return ack_ber < 0.0 ? ber : ack_ber;
  }

  void validate(std::size_t num_nodes) const;
};

/// Deterministic fault injector shared by one network instance.
///
/// Everything is driven through the DES event queue and two private RNG
/// streams (one for transient corruption, one for the hard-fault timeline),
/// so a run with a given seed is bit-reproducible and the hard-fault
/// schedule does not depend on how much traffic happens to flow.
class FaultModel {
 public:
  /// Size of the modeled ACK/NACK control message.
  static constexpr std::uint64_t kAckBytes = 8;

  /// Called on every link state edge: (node, up).
  using LinkListener = std::function<void(NodeId, bool)>;

  FaultModel(Simulator& sim, const FaultParams& params, std::size_t num_nodes);

  [[nodiscard]] const FaultParams& params() const { return params_; }

  /// Register a link up/down observer. Listeners run in registration order.
  void subscribe(LinkListener fn) { listeners_.push_back(std::move(fn)); }

  [[nodiscard]] bool link_up(NodeId node) const { return up_[node]; }
  [[nodiscard]] std::size_t num_links_down() const { return links_down_; }
  [[nodiscard]] std::uint64_t faults_injected() const { return injected_; }

  /// Transient corruption draw for a payload of `bytes` (consumes RNG).
  [[nodiscard]] bool corrupts_payload(std::uint64_t bytes);
  /// Transient corruption draw for one ACK/NACK (consumes RNG).
  [[nodiscard]] bool corrupts_ack();

  /// Scripted corruption: the next `n` payload arrivals fail their CRC
  /// check regardless of the random draw (the RNG stream is not consumed).
  /// Deterministic test hook, the transient-error analogue of
  /// inject_link_fault.
  void force_corrupt_payloads(std::size_t n) { forced_corruptions_ += n; }
  /// Scripted ACK loss: the next `n` acknowledgements are corrupted
  /// regardless of the random draw (RNG not consumed). Forces the sender
  /// onto its timeout-retransmission path deterministically, e.g. to race a
  /// duplicate against a late original delivery.
  void force_corrupt_acks(std::size_t n) { forced_ack_corruptions_ += n; }

  /// Retransmission backoff before attempt `attempt` (attempt 2 is the
  /// first retransmission): base * 2^(attempt-2), capped.
  [[nodiscard]] TimeNs backoff(std::size_t attempt) const;

  /// Scripted hard fault: take `node`'s link down at absolute time `at` and
  /// (when `duration` > 0) repair it `duration` later. Deterministic and
  /// independent of the random timeline.
  void inject_link_fault(NodeId node, TimeNs at, TimeNs duration);

  /// SL cells stuck at zero, chosen at construction.
  [[nodiscard]] const std::vector<std::pair<std::size_t, std::size_t>>&
  stuck_cells() const {
    return stuck_cells_;
  }

 private:
  void fail_link(NodeId node, TimeNs repair_after, bool scripted);
  void repair_link(NodeId node);
  void schedule_next_failure(NodeId node);
  void notify(NodeId node, bool up);

  Simulator& sim_;
  FaultParams params_;
  Rng corrupt_rng_;  ///< transient data/ACK corruption draws
  Rng fault_rng_;    ///< hard-fault timeline draws
  double payload_log1m_ber_ = 0.0;  ///< log(1-ber), cached
  double ack_corrupt_p_ = 0.0;      ///< corruption prob. of one ACK

  std::size_t forced_corruptions_ = 0;  ///< scripted CRC failures pending
  std::size_t forced_ack_corruptions_ = 0;  ///< scripted ACK losses pending

  std::vector<bool> up_;
  std::size_t links_down_ = 0;
  std::uint64_t injected_ = 0;
  std::vector<LinkListener> listeners_;
  std::vector<std::pair<std::size_t, std::size_t>> stuck_cells_;
};

}  // namespace pmx
