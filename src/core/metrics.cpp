#include "core/metrics.hpp"

#include <algorithm>
#include <vector>

#include "common/assert.hpp"
#include "control/reconfig_applier.hpp"

namespace pmx {

namespace {

void fill_fault_metrics(const Network& network, RunMetrics& m) {
  if (!network.fault_tolerant()) {
    return;
  }
  const CounterSet& c = network.counters();
  m.retransmits = c.value("retransmits");
  m.crc_corruptions = c.value("crc_corruptions");
  m.duplicates = c.value("duplicates_suppressed");
  m.acks_lost = c.value("acks_lost");
  m.dropped_messages = network.dropped_messages();
  m.link_faults = static_cast<std::size_t>(c.value("link_faults"));
  m.forced_releases = static_cast<std::size_t>(c.value("forced_releases"));
  if (m.makespan > TimeNs::zero()) {
    m.goodput = m.throughput;
    m.wire_throughput = static_cast<double>(network.wire_bytes()) /
                        static_cast<double>(m.makespan.ns());
  }
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& rec : network.recoveries()) {
    if (!rec.recovered.has_value()) {
      continue;
    }
    const auto t = static_cast<double>((*rec.recovered - rec.down).ns());
    sum += t;
    m.recovery_max_ns = std::max(m.recovery_max_ns, t);
    ++n;
  }
  if (n > 0) {
    m.recovery_mean_ns = sum / static_cast<double>(n);
  }
}

void fill_overload_metrics(const Network& network, RunMetrics& m) {
  if (!network.admission_enabled()) {
    return;
  }
  const CounterSet& c = network.counters();
  m.shed_messages = network.shed_messages();
  m.shed_bytes = network.shed_bytes();
  m.shed_newest = static_cast<std::size_t>(c.value("shed_newest"));
  m.shed_oldest = static_cast<std::size_t>(c.value("shed_oldest"));
  m.shed_deadline = static_cast<std::size_t>(c.value("shed_deadline"));
  m.shed_oversize = static_cast<std::size_t>(c.value("shed_oversize"));
  m.backpressure_rejects =
      static_cast<std::size_t>(c.value("backpressure_rejects"));
  m.backpressure_stall_ns = c.value("backpressure_stall_ns");

  // Offered/accepted load against aggregate per-port line rate over the
  // submission window. A single-instant burst has no window; the ratios
  // stay zero rather than divide by it.
  const double rate =
      static_cast<double>(network.params().link.bandwidth_dgbps) / 80.0;
  const TimeNs window = network.last_submit() - network.first_submit();
  if (window > TimeNs::zero() && network.submitted_count() > 0) {
    const double capacity = static_cast<double>(window.ns()) * rate *
                            static_cast<double>(network.params().num_nodes);
    m.offered_load = static_cast<double>(network.submitted_bytes()) / capacity;
    m.accepted_load =
        static_cast<double>(network.submitted_bytes() - network.shed_bytes()) /
        capacity;
  }
  if (network.submitted_count() > 0 && m.makespan > network.last_submit()) {
    m.recovery_after_burst_ns =
        static_cast<double>((m.makespan - network.last_submit()).ns());
  }

  std::vector<std::uint64_t> depths = network.depth_samples();
  if (!depths.empty()) {
    std::ranges::sort(depths);
    m.queue_depth_max = depths.back();
    m.queue_depth_p50 =
        static_cast<double>(depths[(depths.size() - 1) / 2]);
    const std::size_t p99_idx =
        std::min(depths.size() - 1,
                 static_cast<std::size_t>(0.99 * static_cast<double>(
                                                     depths.size())));
    m.queue_depth_p99 = static_cast<double>(depths[p99_idx]);
  }
}

void fill_ctrl_metrics(const Network& network, RunMetrics& m) {
  const CounterSet& c = network.counters();
  if (const ControlFaultModel* cf = network.control_fault()) {
    m.ctrl_messages = cf->total_sent();
    m.ctrl_dropped = cf->total_dropped();
    m.ctrl_corrupted = cf->total_corrupted();
    m.ctrl_delayed = cf->total_delayed();
    m.ctrl_rerequests = c.value("ctrl_rerequests");
    m.lease_expiries = c.value("lease_expiries");
  }
  if (const SlotAuditor* auditor = network.auditor()) {
    const AuditStats& a = auditor->stats();
    m.audits = a.audits;
    m.audit_violations = a.violations;
    m.resyncs = a.resyncs;
    if (a.recoveries > 0) {
      m.resync_latency_mean_ns = static_cast<double>(a.recovery_total.ns()) /
                                 static_cast<double>(a.recoveries);
      m.resync_latency_max_ns = static_cast<double>(a.recovery_max.ns());
    }
  }
}

void fill_reopt_metrics(const Network& network, RunMetrics& m) {
  const ReoptStats* stats = network.reopt_stats();
  if (stats == nullptr) {
    return;
  }
  m.reopt_solves = stats->solves;
  m.reopt_proposals = stats->proposals;
  m.reopt_applies = stats->applies;
  m.reopt_rollbacks = stats->rollbacks;
  m.reopt_cmds_lost = stats->cmds_lost;
  m.reopt_invalidated_ctrl = stats->invalidated_ctrl;
  m.reopt_dip_depth_bytes = stats->dip_depth_bytes;
  m.reopt_dip_duration_ns = static_cast<double>(stats->dip_duration_ns);
  if (!stats->apply_latency_ns.empty()) {
    std::vector<std::int64_t> lat = stats->apply_latency_ns;
    std::ranges::sort(lat);
    m.reopt_apply_latency_p50_ns =
        static_cast<double>(lat[(lat.size() - 1) / 2]);
    const std::size_t p99_idx =
        std::min(lat.size() - 1,
                 static_cast<std::size_t>(0.99 * static_cast<double>(
                                                     lat.size())));
    m.reopt_apply_latency_p99_ns = static_cast<double>(lat[p99_idx]);
  }
}

}  // namespace

RunMetrics compute_metrics(const Workload& workload, const Network& network) {
  RunMetrics m;
  const auto& records = network.records();
  m.messages = records.size();
  m.total_bytes = network.delivered_bytes();
  m.makespan = network.last_delivery();
  if (records.empty() || m.makespan <= TimeNs::zero()) {
    fill_fault_metrics(network, m);
    fill_overload_metrics(network, m);
    fill_ctrl_metrics(network, m);
    fill_reopt_metrics(network, m);
    return m;
  }

  const double rate =
      static_cast<double>(network.params().link.bandwidth_dgbps) / 80.0;
  const TimeNs ideal = workload.ideal_makespan(rate);
  m.efficiency =
      static_cast<double>(ideal.ns()) / static_cast<double>(m.makespan.ns());
  m.throughput = static_cast<double>(m.total_bytes) /
                 static_cast<double>(m.makespan.ns());

  std::vector<double> latencies;
  latencies.reserve(records.size());
  double sum = 0.0;
  for (const auto& rec : records) {
    const auto l = static_cast<double>(rec.latency().ns());
    latencies.push_back(l);
    sum += l;
  }
  std::ranges::sort(latencies);
  m.avg_latency_ns = sum / static_cast<double>(latencies.size());
  m.max_latency_ns = latencies.back();
  const std::size_t p99_idx =
      std::min(latencies.size() - 1,
               static_cast<std::size_t>(0.99 * static_cast<double>(
                                                   latencies.size())));
  m.p99_latency_ns = latencies[p99_idx];
  fill_fault_metrics(network, m);
  fill_overload_metrics(network, m);
  fill_ctrl_metrics(network, m);
  fill_reopt_metrics(network, m);
  return m;
}

}  // namespace pmx
