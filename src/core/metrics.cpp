#include "core/metrics.hpp"

#include <algorithm>
#include <vector>

#include "common/assert.hpp"

namespace pmx {

RunMetrics compute_metrics(const Workload& workload, const Network& network) {
  RunMetrics m;
  const auto& records = network.records();
  m.messages = records.size();
  m.total_bytes = network.delivered_bytes();
  m.makespan = network.last_delivery();
  if (records.empty() || m.makespan <= TimeNs::zero()) {
    return m;
  }

  const double rate =
      static_cast<double>(network.params().link.bandwidth_dgbps) / 80.0;
  const TimeNs ideal = workload.ideal_makespan(rate);
  m.efficiency =
      static_cast<double>(ideal.ns()) / static_cast<double>(m.makespan.ns());
  m.throughput = static_cast<double>(m.total_bytes) /
                 static_cast<double>(m.makespan.ns());

  std::vector<double> latencies;
  latencies.reserve(records.size());
  double sum = 0.0;
  for (const auto& rec : records) {
    const auto l = static_cast<double>(rec.latency().ns());
    latencies.push_back(l);
    sum += l;
  }
  std::ranges::sort(latencies);
  m.avg_latency_ns = sum / static_cast<double>(latencies.size());
  m.max_latency_ns = latencies.back();
  const std::size_t p99_idx =
      std::min(latencies.size() - 1,
               static_cast<std::size_t>(0.99 * static_cast<double>(
                                                   latencies.size())));
  m.p99_latency_ns = latencies[p99_idx];
  return m;
}

}  // namespace pmx
