#pragma once

#include <cstddef>
#include <vector>

#include "switching/network.hpp"
#include "traffic/program.hpp"

namespace pmx {

/// How a kSend command completes from the issuing processor's view.
enum class SendMode : std::uint8_t {
  /// The processor hands the message to the NIC output buffer (one NIC
  /// cycle, 10 ns) and immediately continues -- the paper's NIC design,
  /// whose N logical output queues exist precisely to hold messages to many
  /// destinations at once. This is the default.
  kEager,
  /// The processor blocks until the last byte has left the NIC (synchronous
  /// send). Serializes each node's traffic; kept for ablations.
  kBlocking,
};

/// Executes a Workload (one command program per node) against a Network.
///
/// Each node runs its program sequentially: kSend per the SendMode above;
/// kBarrier blocks until every node reaches it *and* all traffic submitted
/// so far has drained from the network (and bumps the phase counter used
/// for compiled communication); kFlush forwards the compiler hint; kCompute
/// models local work. The driver stops the simulator once every program has
/// finished AND every submitted message has been delivered, so
/// Simulator::run() terminates even though the TDM clocks are free-running.
class TrafficDriver {
 public:
  TrafficDriver(Simulator& sim, Network& network, Workload workload,
                SendMode mode = SendMode::kEager);

  /// Schedule the first command of every node at the current time.
  void start();

  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] std::size_t messages_submitted() const { return submitted_; }
  [[nodiscard]] std::size_t messages_delivered() const { return delivered_; }
  /// Messages the reliability layer gave up on (retry budget exhausted).
  [[nodiscard]] std::size_t messages_dropped() const { return dropped_; }
  /// Messages the admission controller shed under overload.
  [[nodiscard]] std::size_t messages_shed() const { return shed_; }
  /// Time processors spent stalled in backpressured sends (summed across
  /// nodes; only nonzero under ShedPolicy::kBackpressure).
  [[nodiscard]] TimeNs backpressure_stall() const {
    return backpressure_stall_;
  }
  [[nodiscard]] std::size_t current_phase(NodeId u) const { return phase_[u]; }

 private:
  void issue_next(NodeId u);
  void reach_barrier(NodeId node);
  void release_barrier_if_drained();
  void maybe_stop();

  Simulator& sim_;
  Network& network_;
  Workload workload_;
  SendMode mode_;

  std::vector<std::size_t> pc_;     ///< per-node program counter
  std::vector<std::size_t> phase_;  ///< per-node barrier-phase counter
  std::size_t nodes_done_ = 0;
  std::size_t barrier_arrived_ = 0;
  bool barrier_pending_ = false;  ///< all nodes arrived, waiting for drain
  std::size_t submitted_ = 0;
  std::size_t delivered_ = 0;
  std::size_t dropped_ = 0;
  std::size_t shed_ = 0;
  TimeNs backpressure_stall_{};
  bool finished_ = false;
};

}  // namespace pmx
