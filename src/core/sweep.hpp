#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "core/experiment.hpp"

namespace pmx {

/// Options for a parallel parameter sweep.
struct SweepOptions {
  /// Worker threads. 0 means "use the hardware concurrency"; 1 (the
  /// default) runs every point inline on the calling thread.
  std::size_t jobs = 1;
};

/// Resolve a --jobs value: 0 -> std::thread::hardware_concurrency (at least
/// 1), anything else unchanged.
[[nodiscard]] std::size_t resolve_jobs(std::size_t requested);

namespace detail {
/// Execute body(0), ..., body(count-1), each exactly once, on `jobs`
/// threads. Indices are handed out from an atomic counter; with jobs <= 1
/// the calling thread runs everything inline. The first exception thrown by
/// any body is rethrown on the calling thread after all workers join.
void run_indexed(std::size_t count, std::size_t jobs,
                 const std::function<void(std::size_t)>& body);
}  // namespace detail

/// Run `count` independent sweep points and collect the results in index
/// order.
///
/// Determinism contract: `point(i)` must be a pure function of its index --
/// construct the RunConfig and Workload (and any Rng, seeded from i) inside
/// the callback, and do not touch shared mutable state. Each simulation
/// point already runs on its own Simulator instance, so points never share
/// state through the core library. Under that contract the returned vector
/// -- and therefore any output formatted from it -- is byte-identical
/// regardless of options.jobs.
template <typename R>
[[nodiscard]] std::vector<R> sweep_map(
    std::size_t count, const std::function<R(std::size_t)>& point,
    const SweepOptions& options = {}) {
  std::vector<R> results(count);
  detail::run_indexed(count, resolve_jobs(options.jobs),
                      [&](std::size_t i) { results[i] = point(i); });
  return results;
}

/// The common case: one simulated run per point.
[[nodiscard]] std::vector<RunResult> run_sweep(
    std::size_t count, const std::function<RunResult(std::size_t)>& point,
    const SweepOptions& options = {});

}  // namespace pmx
