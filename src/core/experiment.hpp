#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bitmatrix.hpp"
#include "core/driver.hpp"
#include "core/metrics.hpp"
#include "predictor/rank_fn.hpp"
#include "switching/params.hpp"
#include "traffic/program.hpp"

namespace pmx {

/// Which switching paradigm to instantiate.
enum class SwitchKind : std::uint8_t {
  kWormhole,     ///< wormhole-routed digital crossbar (baseline)
  kCircuit,      ///< per-message circuit switching (baseline)
  kDynamicTdm,   ///< reactive multiplexed switching (Section 4)
  kPreloadTdm,   ///< compiled-communication preloading (Section 3.1)
};

[[nodiscard]] std::string to_string(SwitchKind kind);

/// One simulated run's full configuration.
struct RunConfig {
  SystemParams params{};
  SwitchKind kind = SwitchKind::kDynamicTdm;
  SendMode send_mode = SendMode::kEager;

  // Dynamic-TDM knobs. The eviction policy (rank function + parameters) is
  // a PolicySpec so any bench or example can sweep it straight from its
  // Config/CLI (PolicySpec::from_config / PolicySpec::parse).
  PolicySpec policy{};  ///< default: timeout, 200 ns (2 slots)
  bool multi_slot_connections = false;
  std::size_t sl_units = 1;  ///< parallel scheduling-logic copies (ext. 1)
  /// End-to-end flow control: receive-buffer bytes (0 = unlimited) and the
  /// per-slot drain rate of the receiving processor.
  std::uint64_t receiver_buffer_bytes = 0;
  std::uint64_t receiver_drain_per_slot = 64;
  /// Starvation watchdog: flush learned schedule state after a source has
  /// been stuck with queued traffic for this many slots. 0 = off.
  std::size_t starvation_slots = 0;

  // Circuit knob.
  bool hold_circuits = false;

  // Hybrid: configurations pinned into slots 0..k-1 of a dynamic TDM
  // network before the run (Figure 5's "k preloaded slots").
  std::vector<BitMatrix> pinned_configs;

  // Preload-TDM knob: use the optimal (Konig) decomposition.
  bool optimal_decomposition = true;

  /// Abort the run at this horizon even if traffic has not drained (guards
  /// against configuration mistakes wedging a benchmark).
  TimeNs horizon{TimeNs{20'000'000}};
};

/// Outcome of one run.
struct RunResult {
  RunMetrics metrics;
  bool completed = false;  ///< traffic fully drained before the horizon
  std::uint64_t sim_events = 0;
  /// Paradigm-specific counters (worms, circuits established, slot bytes,
  /// evictions, ...), flattened for reporting.
  std::vector<std::pair<std::string, std::uint64_t>> counters;

  [[nodiscard]] std::uint64_t counter(const std::string& name) const;
};

/// Build the configured network, run the workload to completion (or the
/// horizon) and report metrics. Deterministic for a given config+workload.
[[nodiscard]] RunResult run_workload(const RunConfig& config,
                                     const Workload& workload);

}  // namespace pmx
