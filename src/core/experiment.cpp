#include "core/experiment.hpp"

#include <memory>

#include "common/assert.hpp"
#include "compiled/plan.hpp"
#include "core/driver.hpp"
#include "predictor/policy_engine.hpp"
#include "sim/simulator.hpp"
#include "switching/circuit.hpp"
#include "switching/preload_tdm.hpp"
#include "switching/tdm.hpp"
#include "switching/wormhole.hpp"

namespace pmx {

std::string to_string(SwitchKind kind) {
  switch (kind) {
    case SwitchKind::kWormhole:
      return "wormhole";
    case SwitchKind::kCircuit:
      return "circuit";
    case SwitchKind::kDynamicTdm:
      return "dynamic-tdm";
    case SwitchKind::kPreloadTdm:
      return "preload-tdm";
  }
  return "unknown";
}

std::uint64_t RunResult::counter(const std::string& name) const {
  for (const auto& [key, value] : counters) {
    if (key == name) {
      return value;
    }
  }
  return 0;
}

namespace {

std::unique_ptr<Network> make_network(const RunConfig& config,
                                      const Workload& workload,
                                      Simulator& sim) {
  switch (config.kind) {
    case SwitchKind::kWormhole:
      return std::make_unique<WormholeNetwork>(sim, config.params);
    case SwitchKind::kCircuit: {
      CircuitNetwork::Options o;
      o.hold_circuits = config.hold_circuits;
      return std::make_unique<CircuitNetwork>(sim, config.params, o);
    }
    case SwitchKind::kDynamicTdm: {
      TdmNetwork::Options o;
      o.predictor = make_policy(config.policy);
      o.multi_slot_connections = config.multi_slot_connections;
      o.sl_units = config.sl_units;
      o.receiver_buffer_bytes = config.receiver_buffer_bytes;
      o.receiver_drain_per_slot = config.receiver_drain_per_slot;
      o.starvation_slots = config.starvation_slots;
      auto net = std::make_unique<TdmNetwork>(sim, config.params,
                                              std::move(o));
      PMX_CHECK(config.pinned_configs.size() <= config.params.mux_degree,
                "more pinned configurations than TDM slots");
      for (std::size_t s = 0; s < config.pinned_configs.size(); ++s) {
        net->preload(s, config.pinned_configs[s], /*pinned=*/true);
      }
      return net;
    }
    case SwitchKind::kPreloadTdm: {
      CompiledPlan plan =
          compile_workload(workload, config.optimal_decomposition);
      return std::make_unique<PreloadTdmNetwork>(sim, config.params,
                                                 std::move(plan));
    }
  }
  PMX_CHECK(false, "unknown switch kind");
  return nullptr;
}

}  // namespace

RunResult run_workload(const RunConfig& config, const Workload& workload) {
  Simulator sim;
  const auto network = make_network(config, workload, sim);
  TrafficDriver driver(sim, *network, workload, config.send_mode);
  driver.start();
  sim.run_until(config.horizon);

  if (SlotAuditor* auditor = network->auditor()) {
    if (driver.finished()) {
      // Quiesce window: let in-flight control traffic settle (pending
      // releases, the last watchdog tick, a full lease round) so the final
      // audit judges the steady state, not a message still on the wire.
      TimeNs window = config.params.slot_length * 8;
      if (network->control_faulty()) {
        window = window + config.params.ctrl.watchdog_cap +
                 config.params.ctrl.lease * 2;
      }
      sim.run_until(sim.now() + window);
    }
    // Every campaign ends on an explicit audit: zero leaked crosspoints,
    // zero wedged NICs, conservation intact -- or a violation on record.
    auditor->audit_now();
  }

  RunResult result;
  result.completed = driver.finished();
  result.sim_events = sim.events_processed();
  result.metrics = compute_metrics(workload, *network);
  const auto& counters = network->counters().all();
  result.counters.reserve(counters.size());
  for (const auto& [name, value] : counters) {
    result.counters.emplace_back(name, value);
  }
  return result;
}

}  // namespace pmx
