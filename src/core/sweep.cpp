#include "core/sweep.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace pmx {

std::size_t resolve_jobs(std::size_t requested) {
  if (requested != 0) {
    return requested;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

namespace detail {

void run_indexed(std::size_t count, std::size_t jobs,
                 const std::function<void(std::size_t)>& body) {
  if (count == 0) {
    return;
  }
  if (jobs <= 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) {
      body(i);
    }
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  const auto worker = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) {
        return;
      }
      try {
        body(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) {
          first_error = std::current_exception();
        }
      }
    }
  };

  std::vector<std::thread> pool;
  const std::size_t workers = jobs < count ? jobs : count;
  pool.reserve(workers - 1);
  for (std::size_t t = 1; t < workers; ++t) {
    pool.emplace_back(worker);
  }
  worker();  // the calling thread pulls its share instead of idling
  for (auto& thread : pool) {
    thread.join();
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

}  // namespace detail

std::vector<RunResult> run_sweep(
    std::size_t count, const std::function<RunResult(std::size_t)>& point,
    const SweepOptions& options) {
  return sweep_map<RunResult>(count, point, options);
}

}  // namespace pmx
