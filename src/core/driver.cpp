#include "core/driver.hpp"

#include "common/assert.hpp"

namespace pmx {

TrafficDriver::TrafficDriver(Simulator& sim, Network& network,
                             Workload workload, SendMode mode)
    : sim_(sim),
      network_(network),
      workload_(std::move(workload)),
      mode_(mode),
      pc_(workload_.num_nodes(), 0),
      phase_(workload_.num_nodes(), 0) {
  PMX_CHECK(workload_.num_nodes() == network_.params().num_nodes,
            "workload and network disagree on node count");
  // Validates that every program agrees on the barrier count; unequal
  // counts would deadlock the barrier protocol below.
  (void)workload_.num_phases();
  if (mode_ == SendMode::kBlocking) {
    network_.set_send_done_handler(
        [this](const Message& msg) { issue_next(msg.src); });
  }
  network_.set_delivered_handler([this](const MessageRecord&) {
    ++delivered_;
    release_barrier_if_drained();
    maybe_stop();
  });
  // A permanently dropped message will never be delivered; count it as
  // resolved so barriers release and the run terminates on a dead link
  // instead of hanging forever.
  network_.set_dropped_handler([this](const Message&) {
    ++dropped_;
    release_barrier_if_drained();
    maybe_stop();
  });
  // Shed messages resolve the same way (the handler fires synchronously
  // from inside try_submit, which is safe: the submitting node is mid-send,
  // so no barrier can be pending and no spurious release is possible).
  network_.set_shed_handler([this](const Message&) {
    ++shed_;
    release_barrier_if_drained();
    maybe_stop();
  });
}

void TrafficDriver::start() {
  for (NodeId u = 0; u < workload_.num_nodes(); ++u) {
    sim_.schedule_after(TimeNs::zero(), [this, u] { issue_next(u); });
  }
}

void TrafficDriver::issue_next(NodeId u) {
  while (true) {
    if (pc_[u] >= workload_.programs[u].size()) {
      ++nodes_done_;
      maybe_stop();
      return;
    }
    const Command& cmd = workload_.programs[u][pc_[u]];
    switch (cmd.kind) {
      case Command::Kind::kSend: {
        const auto outcome =
            network_.try_submit(u, cmd.dst, cmd.bytes, phase_[u]);
        if (outcome.status == Network::SubmitStatus::kBackpressure) {
          // Closed-loop flow control: the NIC queue is full and refuses the
          // message. The processor stalls one slot and retries without
          // advancing its program counter; the stall time is the
          // backpressure overload metric.
          const TimeNs stall = network_.params().slot_length;
          backpressure_stall_ += stall;
          network_.counters().counter("backpressure_stall_ns") +=
              static_cast<std::uint64_t>(stall.ns());
          sim_.schedule_after(stall, [this, u] { issue_next(u); });
          return;
        }
        ++pc_[u];
        ++submitted_;
        if (outcome.status == Network::SubmitStatus::kShed) {
          // The message was counted and immediately shed; no send-done will
          // ever fire for it, so resume the node directly in either mode.
          sim_.schedule_after(network_.params().nic_cycle,
                              [this, u] { issue_next(u); });
          return;
        }
        if (mode_ == SendMode::kEager) {
          // One NIC cycle to hand the message to the output buffer, then
          // the processor moves on.
          sim_.schedule_after(network_.params().nic_cycle,
                              [this, u] { issue_next(u); });
        }
        // kBlocking resumes from the send-done handler instead.
        return;
      }
      case Command::Kind::kBarrier:
        reach_barrier(u);
        return;  // resume on barrier release
      case Command::Kind::kFlush:
        ++pc_[u];
        network_.flush_hint();
        continue;
      case Command::Kind::kCompute: {
        ++pc_[u];
        const TimeNs delay = cmd.delay;
        sim_.schedule_after(delay, [this, u] { issue_next(u); });
        return;
      }
    }
  }
}

void TrafficDriver::reach_barrier(NodeId /*node*/) {
  ++barrier_arrived_;
  if (barrier_arrived_ < workload_.num_nodes()) {
    return;  // this node blocks; the last arriver triggers the release check
  }
  barrier_pending_ = true;
  release_barrier_if_drained();
}

void TrafficDriver::release_barrier_if_drained() {
  if (!barrier_pending_ || delivered_ + dropped_ + shed_ != submitted_) {
    return;
  }
  barrier_pending_ = false;
  barrier_arrived_ = 0;
  for (NodeId v = 0; v < workload_.num_nodes(); ++v) {
    PMX_CHECK(pc_[v] < workload_.programs[v].size() &&
                  workload_.programs[v][pc_[v]].kind ==
                      Command::Kind::kBarrier,
              "barrier release with a node not at its barrier");
    ++pc_[v];
    ++phase_[v];
    sim_.schedule_after(TimeNs::zero(), [this, v] { issue_next(v); });
  }
}

void TrafficDriver::maybe_stop() {
  if (!finished_ && nodes_done_ == workload_.num_nodes() &&
      delivered_ + dropped_ + shed_ == submitted_) {
    finished_ = true;
    sim_.stop();
  }
}

}  // namespace pmx
