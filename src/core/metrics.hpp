#pragma once

#include <cstdint>

#include "switching/network.hpp"
#include "traffic/program.hpp"

namespace pmx {

/// Uniform result metrics for one simulated run, computed identically for
/// every switching paradigm so the Figure 4/5 comparisons are apples to
/// apples.
struct RunMetrics {
  TimeNs makespan{};            ///< time of the last delivery
  std::uint64_t total_bytes = 0;
  std::size_t messages = 0;
  /// Bandwidth efficiency: serialization lower bound on the makespan (the
  /// busiest injection/ejection port, summed across barrier phases) divided
  /// by the achieved makespan. 1.0 means the bottleneck link never idled.
  double efficiency = 0.0;
  /// Aggregate delivered throughput in bytes/ns.
  double throughput = 0.0;
  double avg_latency_ns = 0.0;
  double p99_latency_ns = 0.0;
  double max_latency_ns = 0.0;

  // --- Fault-tolerance metrics (all zero when the fault layer is off) -----
  /// Bytes that crossed the fabric including retransmitted copies, per ns.
  /// goodput == throughput when nothing was ever corrupted; the gap between
  /// the two is the bandwidth tax of the reliability layer.
  double wire_throughput = 0.0;
  /// Delivered (useful) bytes per ns -- alias of `throughput`, named for
  /// the goodput-vs-throughput comparison in the fault ablation.
  double goodput = 0.0;
  std::uint64_t retransmits = 0;
  std::uint64_t crc_corruptions = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t acks_lost = 0;
  std::size_t dropped_messages = 0;
  std::size_t link_faults = 0;
  std::size_t forced_releases = 0;
  /// Mean/max time from a hard link fault to the first clean delivery
  /// touching the failed node afterwards (0 when no fault recovered).
  double recovery_mean_ns = 0.0;
  double recovery_max_ns = 0.0;

  // --- Overload metrics (zero when admission control is off) --------------
  /// Injection pressure: submitted payload bytes per node-ns of submission
  /// window, as a fraction of per-port line rate. > 1.0 means the sources
  /// asked for more than the bisection can carry.
  double offered_load = 0.0;
  /// Same ratio for the traffic that was actually admitted (not shed).
  double accepted_load = 0.0;
  std::size_t shed_messages = 0;
  std::uint64_t shed_bytes = 0;
  std::size_t shed_newest = 0;    ///< tail/LIFO drops (incl. deadline misses
                                  ///< that fell back to the newcomer)
  std::size_t shed_oldest = 0;    ///< FIFO push-out drops
  std::size_t shed_deadline = 0;  ///< expired-rank evictions
  std::size_t shed_oversize = 0;  ///< larger than the whole queue budget
  std::size_t backpressure_rejects = 0;
  /// Processor time lost stalling on full NIC queues (kBackpressure only).
  std::uint64_t backpressure_stall_ns = 0;
  /// Source-queue occupancy (bytes) sampled at every admitted submission.
  double queue_depth_p50 = 0.0;
  double queue_depth_p99 = 0.0;
  std::uint64_t queue_depth_max = 0;
  /// Drain tail after the sources stop injecting: makespan minus the last
  /// submission time (time to recover to an empty network after a burst).
  double recovery_after_burst_ns = 0.0;

  // --- Control-plane metrics (zero when the control-fault layer is off) ---
  std::uint64_t ctrl_messages = 0;   ///< request/grant/release sends
  std::uint64_t ctrl_dropped = 0;
  std::uint64_t ctrl_corrupted = 0;
  std::uint64_t ctrl_delayed = 0;
  std::uint64_t ctrl_rerequests = 0;  ///< watchdog/revoke reissues
  std::uint64_t lease_expiries = 0;   ///< idle holds reclaimed by the lease
  std::uint64_t audits = 0;           ///< slot-auditor passes
  std::uint64_t audit_violations = 0;
  std::uint64_t resyncs = 0;          ///< full NIC <-> scheduler resyncs
  /// Mean/max time from the audit that opened a violation episode to the
  /// first clean audit afterwards (0 when nothing ever recovered).
  double resync_latency_mean_ns = 0.0;
  double resync_latency_max_ns = 0.0;

  // --- Re-optimization service metrics (zero when the service is off) -----
  std::uint64_t reopt_solves = 0;       ///< service ticks that ran the solver
  std::uint64_t reopt_proposals = 0;    ///< proposals staged (incl. chaos)
  std::uint64_t reopt_applies = 0;      ///< proposals applied to the fabric
  std::uint64_t reopt_rollbacks = 0;    ///< applies reverted by the guard
  std::uint64_t reopt_cmds_lost = 0;    ///< reconfig commands lost in transit
  /// In-flight control messages invalidated by apply/rollback resyncs.
  std::uint64_t reopt_invalidated_ctrl = 0;
  /// Stage-to-apply latency percentiles over all applied proposals.
  double reopt_apply_latency_p50_ns = 0.0;
  double reopt_apply_latency_p99_ns = 0.0;
  /// Worst probation goodput shortfall (baseline-expected minus delivered
  /// bytes) and total time spent in probations that ended in rollback.
  std::uint64_t reopt_dip_depth_bytes = 0;
  double reopt_dip_duration_ns = 0.0;

  friend bool operator==(const RunMetrics&, const RunMetrics&) = default;
};

/// Compute metrics after a run has finished. The workload provides the
/// ideal-makespan bound; the network provides the per-message records.
[[nodiscard]] RunMetrics compute_metrics(const Workload& workload,
                                         const Network& network);

}  // namespace pmx
