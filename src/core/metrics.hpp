#pragma once

#include <cstdint>

#include "switching/network.hpp"
#include "traffic/program.hpp"

namespace pmx {

/// Uniform result metrics for one simulated run, computed identically for
/// every switching paradigm so the Figure 4/5 comparisons are apples to
/// apples.
struct RunMetrics {
  TimeNs makespan{};            ///< time of the last delivery
  std::uint64_t total_bytes = 0;
  std::size_t messages = 0;
  /// Bandwidth efficiency: serialization lower bound on the makespan (the
  /// busiest injection/ejection port, summed across barrier phases) divided
  /// by the achieved makespan. 1.0 means the bottleneck link never idled.
  double efficiency = 0.0;
  /// Aggregate delivered throughput in bytes/ns.
  double throughput = 0.0;
  double avg_latency_ns = 0.0;
  double p99_latency_ns = 0.0;
  double max_latency_ns = 0.0;
};

/// Compute metrics after a run has finished. The workload provides the
/// ideal-makespan bound; the network provides the per-message records.
[[nodiscard]] RunMetrics compute_metrics(const Workload& workload,
                                         const Network& network);

}  // namespace pmx
