#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/time.hpp"

namespace pmx {

using EventFn = std::function<void()>;
using EventId = std::uint64_t;

/// Time-ordered event queue with stable FIFO ordering of simultaneous events
/// (ties broken by insertion sequence, so simulations are deterministic) and
/// lazy cancellation.
class EventQueue {
 public:
  /// Enqueue `fn` to run at absolute time `t`. Returns a handle usable with
  /// cancel().
  EventId push(TimeNs t, EventFn fn);

  /// Cancel a pending event. Cancelling an already-fired or unknown id is a
  /// harmless no-op (the usual pattern is "cancel my timeout, it may have
  /// fired already").
  void cancel(EventId id);

  /// True when no live (non-cancelled) event remains.
  [[nodiscard]] bool empty();
  /// Time of the earliest pending live event. Precondition: !empty().
  [[nodiscard]] TimeNs next_time();

  /// Pop and return the earliest live event. Precondition: !empty().
  struct Fired {
    TimeNs time;
    EventFn fn;
  };
  Fired pop();

  [[nodiscard]] std::size_t size_including_cancelled() const {
    return heap_.size();
  }

 private:
  struct Entry {
    TimeNs time;
    EventId id;
    // std::priority_queue is a max-heap; invert so earlier (time, id) wins.
    bool operator<(const Entry& rhs) const {
      if (time != rhs.time) {
        return time > rhs.time;
      }
      return id > rhs.id;
    }
  };

  void drop_cancelled();

  std::priority_queue<Entry> heap_;
  std::unordered_map<EventId, EventFn> fns_;
  EventId next_id_ = 1;
};

}  // namespace pmx
