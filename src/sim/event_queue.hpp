#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "common/time.hpp"

namespace pmx {

using EventFn = std::function<void()>;
using EventId = std::uint64_t;

/// Time-ordered event queue with stable FIFO ordering of simultaneous events
/// (ties broken by insertion sequence, so simulations are deterministic) and
/// lazy cancellation.
///
/// Callbacks live inline in the heap entries: the common push/pop path costs
/// one heap sift each way and never touches a hash table. Cancellation stays
/// lazy -- cancel() records the id in a (normally empty) tombstone set, and
/// the entry is dropped when it reaches the top of the heap. Workloads that
/// cancel heavily (watchdogs re-armed on every grant) would let dead entries
/// dominate the heap, so once tombstones outnumber half the heap cancel()
/// compacts: dead entries are erased in one linear pass and the heap is
/// rebuilt, restoring O(live) memory and sift cost.
class EventQueue {
 public:
  EventQueue() { heap_.reserve(kInitialReserve); }

  /// Enqueue `fn` to run at absolute time `t`. Returns a handle usable with
  /// cancel().
  EventId push(TimeNs t, EventFn fn);

  /// Cancel a pending event. Cancelling an already-fired or unknown id is a
  /// harmless no-op (the usual pattern is "cancel my timeout, it may have
  /// fired already").
  void cancel(EventId id);

  /// True when no live (non-cancelled) event remains.
  [[nodiscard]] bool empty();
  /// Time of the earliest pending live event. Precondition: !empty().
  [[nodiscard]] TimeNs next_time();

  /// Pop and return the earliest live event. Precondition: !empty().
  struct Fired {
    TimeNs time;
    EventFn fn;
  };
  Fired pop();

  [[nodiscard]] std::size_t size_including_cancelled() const {
    return heap_.size();
  }
  /// Pending tombstones (cancelled ids not yet swept out of the heap).
  [[nodiscard]] std::size_t tombstones() const { return cancelled_.size(); }

 private:
  /// Up-front heap capacity: push() is a `// pmx-hot` kernel, so steady-state
  /// operation must not reallocate. 1024 entries (~48 KiB) covers the event
  /// population of every bench point; larger campaigns grow once and then
  /// stay flat.
  static constexpr std::size_t kInitialReserve = 1024;

  struct Entry {
    TimeNs time;
    EventId id;
    EventFn fn;
  };
  // std::push_heap/pop_heap build a max-heap; invert so the earliest
  // (time, id) pair surfaces first.
  struct Later {
    bool operator()(const Entry& lhs, const Entry& rhs) const {
      if (lhs.time != rhs.time) {
        return lhs.time > rhs.time;
      }
      return lhs.id > rhs.id;
    }
  };

  void drop_cancelled();
  void compact();

  std::vector<Entry> heap_;
  /// Ids cancelled while (possibly) still pending. Kept small: a tombstone
  /// is erased when its entry surfaces, and once the set outgrows half the
  /// heap compact() erases the dead entries and clears it wholesale (ids
  /// are never reused, so a tombstone matching no entry is dead for good).
  std::unordered_set<EventId> cancelled_;
  EventId next_id_ = 1;
};

}  // namespace pmx
