#include "sim/simulator.hpp"

#include <utility>

#include "common/assert.hpp"

namespace pmx {

EventId Simulator::schedule_at(TimeNs t, EventFn fn) {
  PMX_CHECK(t >= now_, "cannot schedule an event in the past");
  return queue_.push(t, std::move(fn));
}

EventId Simulator::schedule_after(TimeNs delay, EventFn fn) {
  PMX_CHECK(delay >= TimeNs::zero(), "negative delay");
  return queue_.push(now_ + delay, std::move(fn));
}

void Simulator::run() { run_until(TimeNs::never()); }

void Simulator::run_until(TimeNs t) {
  stopped_ = false;
  while (!stopped_ && !queue_.empty() && queue_.next_time() <= t) {
    auto [time, fn] = queue_.pop();
    now_ = time;
    ++processed_;
    fn();
  }
  if (!stopped_ && t != TimeNs::never() && now_ < t) {
    now_ = t;
  }
}

}  // namespace pmx
