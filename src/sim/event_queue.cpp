#include "sim/event_queue.hpp"

#include <utility>

#include "common/assert.hpp"

namespace pmx {

EventId EventQueue::push(TimeNs t, EventFn fn) {
  const EventId id = next_id_++;
  heap_.push(Entry{t, id});
  fns_.emplace(id, std::move(fn));
  return id;
}

void EventQueue::cancel(EventId id) { fns_.erase(id); }

void EventQueue::drop_cancelled() {
  while (!heap_.empty() && !fns_.contains(heap_.top().id)) {
    heap_.pop();
  }
}

bool EventQueue::empty() {
  drop_cancelled();
  return heap_.empty();
}

TimeNs EventQueue::next_time() {
  drop_cancelled();
  PMX_CHECK(!heap_.empty(), "next_time on empty EventQueue");
  return heap_.top().time;
}

EventQueue::Fired EventQueue::pop() {
  drop_cancelled();
  PMX_CHECK(!heap_.empty(), "pop on empty EventQueue");
  const Entry top = heap_.top();
  heap_.pop();
  auto it = fns_.find(top.id);
  Fired fired{top.time, std::move(it->second)};
  fns_.erase(it);
  return fired;
}

}  // namespace pmx
