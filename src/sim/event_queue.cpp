#include "sim/event_queue.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"

namespace pmx {

// pmx-hot
EventId EventQueue::push(TimeNs t, EventFn fn) {
  const EventId id = next_id_++;
  heap_.push_back(Entry{t, id, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  return id;
}

void EventQueue::cancel(EventId id) {
  if (id == 0 || id >= next_id_) {
    return;  // never issued: nothing to tombstone
  }
  cancelled_.insert(id);
  compact();
}

void EventQueue::compact() {
  // Tombstones come in two kinds: entries still buried in the heap (dead
  // weight on every sift) and ids that were cancelled after firing (match
  // nothing, would linger forever). Once the set outgrows half the heap,
  // erase the dead entries in one pass, rebuild the heap, and drop the
  // whole set -- every remaining tombstone matched a removed entry or was
  // already stale, and ids are never reused.
  if (cancelled_.size() <= 64 || cancelled_.size() * 2 <= heap_.size()) {
    return;
  }
  std::erase_if(heap_,
                [this](const Entry& e) { return cancelled_.contains(e.id); });
  std::make_heap(heap_.begin(), heap_.end(), Later{});
  cancelled_.clear();
}

// pmx-hot
void EventQueue::drop_cancelled() {
  while (!heap_.empty()) {
    const auto it = cancelled_.find(heap_.front().id);
    if (it == cancelled_.end()) {
      return;
    }
    cancelled_.erase(it);
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

bool EventQueue::empty() {
  drop_cancelled();
  return heap_.empty();
}

TimeNs EventQueue::next_time() {
  drop_cancelled();
  PMX_CHECK(!heap_.empty(), "next_time on empty EventQueue");
  return heap_.front().time;
}

// pmx-hot
EventQueue::Fired EventQueue::pop() {
  drop_cancelled();
  PMX_CHECK(!heap_.empty(), "pop on empty EventQueue");
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Fired fired{heap_.back().time, std::move(heap_.back().fn)};
  heap_.pop_back();
  return fired;
}

}  // namespace pmx
