#include "sim/event_queue.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"

namespace pmx {

EventId EventQueue::push(TimeNs t, EventFn fn) {
  const EventId id = next_id_++;
  heap_.push_back(Entry{t, id, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  return id;
}

void EventQueue::cancel(EventId id) {
  if (id == 0 || id >= next_id_) {
    return;  // never issued: nothing to tombstone
  }
  cancelled_.insert(id);
  purge_stale_tombstones();
}

void EventQueue::purge_stale_tombstones() {
  // A tombstone for an id that already fired matches no heap entry and
  // would linger forever. The set is normally tiny; if it ever outgrows the
  // live heap, one linear sweep drops every id no pending entry carries.
  if (cancelled_.size() <= 64 || cancelled_.size() <= heap_.size()) {
    return;
  }
  std::unordered_set<EventId> live;
  for (const Entry& e : heap_) {
    if (cancelled_.contains(e.id)) {
      live.insert(e.id);
    }
  }
  cancelled_ = std::move(live);
}

void EventQueue::drop_cancelled() {
  while (!heap_.empty()) {
    const auto it = cancelled_.find(heap_.front().id);
    if (it == cancelled_.end()) {
      return;
    }
    cancelled_.erase(it);
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

bool EventQueue::empty() {
  drop_cancelled();
  return heap_.empty();
}

TimeNs EventQueue::next_time() {
  drop_cancelled();
  PMX_CHECK(!heap_.empty(), "next_time on empty EventQueue");
  return heap_.front().time;
}

EventQueue::Fired EventQueue::pop() {
  drop_cancelled();
  PMX_CHECK(!heap_.empty(), "pop on empty EventQueue");
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Fired fired{heap_.back().time, std::move(heap_.back().fn)};
  heap_.pop_back();
  return fired;
}

}  // namespace pmx
