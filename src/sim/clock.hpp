#pragma once

#include <functional>
#include <utility>

#include "common/assert.hpp"
#include "sim/simulator.hpp"

namespace pmx {

/// Periodic tick source built on the event queue.
///
/// Models the hardware clocks in the design: the TDM time-slot clock and the
/// independent SL (scheduling-logic) clock of Section 4. The callback runs
/// once per period until stop() is called.
class Clock {
 public:
  Clock(Simulator& sim, TimeNs period, std::function<void()> on_tick)
      : sim_(sim), period_(period), on_tick_(std::move(on_tick)) {
    PMX_CHECK(period_ > TimeNs::zero(), "clock period must be positive");
  }

  ~Clock() { stop(); }
  Clock(const Clock&) = delete;
  Clock& operator=(const Clock&) = delete;

  /// Begin ticking; first tick fires `phase` after now.
  void start(TimeNs phase = TimeNs::zero()) {
    PMX_CHECK(!running_, "clock already running");
    running_ = true;
    pending_ = sim_.schedule_after(phase, [this] { tick(); });
  }

  void stop() {
    if (running_) {
      sim_.cancel(pending_);
      running_ = false;
    }
  }

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] TimeNs period() const { return period_; }

 private:
  void tick() {
    // Re-arm first so the callback may call stop() to cancel the next tick.
    pending_ = sim_.schedule_after(period_, [this] { tick(); });
    on_tick_();
  }

  Simulator& sim_;
  TimeNs period_;
  std::function<void()> on_tick_;
  EventId pending_ = 0;
  bool running_ = false;
};

}  // namespace pmx
