#pragma once

#include <cstdint>

#include "common/time.hpp"
#include "sim/event_queue.hpp"

namespace pmx {

/// Discrete-event simulation kernel.
///
/// The whole interconnect model (NICs, scheduler, fabric, traffic sources)
/// runs on one Simulator instance. Events at the same timestamp fire in
/// schedule order, which makes runs bit-reproducible.
class Simulator {
 public:
  [[nodiscard]] TimeNs now() const { return now_; }
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

  /// Schedule at an absolute time (must not be in the past).
  EventId schedule_at(TimeNs t, EventFn fn);
  /// Schedule `delay` after now (delay must be >= 0).
  EventId schedule_after(TimeNs delay, EventFn fn);
  void cancel(EventId id) { queue_.cancel(id); }

  /// Run until the event queue drains or stop() is called.
  void run();
  /// Run events up to and including time `t`; afterwards now() == t unless
  /// the queue drained earlier or was stopped.
  void run_until(TimeNs t);
  /// Request the current run()/run_until() loop to exit after the current
  /// event.
  void stop() { stopped_ = true; }
  [[nodiscard]] bool stopped() const { return stopped_; }

 private:
  EventQueue queue_;
  TimeNs now_ = TimeNs::zero();
  std::uint64_t processed_ = 0;
  bool stopped_ = false;
};

}  // namespace pmx
