#include "traffic/command_file.hpp"

#include <gtest/gtest.h>

#include "traffic/patterns.hpp"

namespace pmx {
namespace {

TEST(CommandFile, ParsesBasicTrace) {
  const Workload w = command_file::parse_string(R"(
nodes 3
node 0
send 1 64
send 2 128
node 1
compute 500
send 0 8
)");
  EXPECT_EQ(w.num_nodes(), 3u);
  ASSERT_EQ(w.programs[0].size(), 2u);
  EXPECT_EQ(w.programs[0][0].dst, 1u);
  EXPECT_EQ(w.programs[0][0].bytes, 64u);
  ASSERT_EQ(w.programs[1].size(), 2u);
  EXPECT_EQ(w.programs[1][0].kind, Command::Kind::kCompute);
  EXPECT_EQ(w.programs[1][0].delay.ns(), 500);
  EXPECT_TRUE(w.programs[2].empty());
}

TEST(CommandFile, ParsesBarrierAndFlush) {
  const Workload w = command_file::parse_string(R"(
nodes 2
node 0
barrier
flush
node 1
barrier
)");
  EXPECT_EQ(w.programs[0][0].kind, Command::Kind::kBarrier);
  EXPECT_EQ(w.programs[0][1].kind, Command::Kind::kFlush);
  EXPECT_EQ(w.num_phases(), 2u);
}

TEST(CommandFile, IgnoresCommentsAndBlankLines) {
  const Workload w = command_file::parse_string(R"(
# full comment line
nodes 2

node 0   # trailing comment
send 1 64  # another
)");
  EXPECT_EQ(w.num_messages(), 1u);
}

TEST(CommandFile, RoundTripsScatter) {
  const Workload original = patterns::scatter(8, 256);
  const std::string text = command_file::to_string(original);
  const Workload parsed = command_file::parse_string(text);
  EXPECT_EQ(parsed.programs, original.programs);
}

TEST(CommandFile, RoundTripsTwoPhase) {
  const Workload original = patterns::two_phase(8, 64, 5);
  const Workload parsed =
      command_file::parse_string(command_file::to_string(original));
  EXPECT_EQ(parsed.programs, original.programs);
}

TEST(CommandFile, SaveAndLoadFile) {
  const Workload original = patterns::random_mesh(16, 32, 1, 7);
  const std::string path = ::testing::TempDir() + "/pmx_trace_test.trace";
  command_file::save(path, original);
  const Workload loaded = command_file::load(path);
  EXPECT_EQ(loaded.programs, original.programs);
}

TEST(CommandFile, ErrorMissingNodesHeader) {
  EXPECT_THROW((void)command_file::parse_string("node 0\nsend 1 8\n"),
               std::runtime_error);
}

TEST(CommandFile, ErrorCommandBeforeNode) {
  EXPECT_THROW((void)command_file::parse_string("nodes 2\nsend 1 8\n"),
               std::runtime_error);
}

TEST(CommandFile, ErrorNodeIdOutOfRange) {
  EXPECT_THROW((void)command_file::parse_string("nodes 2\nnode 5\n"),
               std::runtime_error);
}

TEST(CommandFile, ErrorDestinationOutOfRange) {
  EXPECT_THROW(
      (void)command_file::parse_string("nodes 2\nnode 0\nsend 7 8\n"),
      std::runtime_error);
}

TEST(CommandFile, ErrorSelfSend) {
  EXPECT_THROW(
      (void)command_file::parse_string("nodes 2\nnode 0\nsend 0 8\n"),
      std::runtime_error);
}

TEST(CommandFile, ErrorZeroBytes) {
  EXPECT_THROW(
      (void)command_file::parse_string("nodes 2\nnode 0\nsend 1 0\n"),
      std::runtime_error);
}

TEST(CommandFile, ErrorUnknownCommand) {
  EXPECT_THROW(
      (void)command_file::parse_string("nodes 2\nnode 0\nfrobnicate\n"),
      std::runtime_error);
}

TEST(CommandFile, ErrorTrailingTokens) {
  EXPECT_THROW(
      (void)command_file::parse_string("nodes 2\nnode 0\nsend 1 8 9\n"),
      std::runtime_error);
}

TEST(CommandFile, ErrorDuplicateNodesDeclaration) {
  EXPECT_THROW((void)command_file::parse_string("nodes 2\nnodes 3\n"),
               std::runtime_error);
}

TEST(CommandFile, ErrorNegativeCompute) {
  EXPECT_THROW(
      (void)command_file::parse_string("nodes 2\nnode 0\ncompute -5\n"),
      std::runtime_error);
}

TEST(CommandFile, ErrorMessageCarriesLineNumber) {
  try {
    (void)command_file::parse_string("nodes 2\nnode 0\nbogus\n");
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(CommandFile, ErrorMissingFile) {
  EXPECT_THROW((void)command_file::load("/nonexistent/path.trace"),
               std::runtime_error);
}

TEST(CommandFile, ErrorEmptyFileHasSaneMessage) {
  try {
    (void)command_file::parse_string("");
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("empty"), std::string::npos) << what;
    // An empty stream never reached line 1; the message must not invent a
    // bogus "line 0" location.
    EXPECT_EQ(what.find("line 0"), std::string::npos) << what;
  }
}

TEST(CommandFile, ErrorCommentOnlyFileMentionsMissingNodes) {
  try {
    (void)command_file::parse_string("# just a comment\n\n");
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("nodes"), std::string::npos) << what;
    EXPECT_EQ(what.find("line 0"), std::string::npos) << what;
  }
}

TEST(CommandFile, ErrorDuplicateNodesRejectedBeforeResize) {
  // The second declaration must be rejected as a duplicate even when its
  // count is unparseable -- i.e. before any attempt to resize the program
  // list with a new value.
  try {
    (void)command_file::parse_string("nodes 2\nnodes banana\n");
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate"), std::string::npos)
        << e.what();
  }
}

TEST(CommandFile, ErrorTrailingTokensOnNodesLine) {
  EXPECT_THROW((void)command_file::parse_string("nodes 2 3\n"),
               std::runtime_error);
}

TEST(CommandFile, ErrorTrailingTokensOnNodeLine) {
  EXPECT_THROW((void)command_file::parse_string("nodes 2\nnode 0 1\n"),
               std::runtime_error);
}

}  // namespace
}  // namespace pmx
