#include "traffic/mesh.hpp"

#include <gtest/gtest.h>

#include <set>

namespace pmx {
namespace {

TEST(Mesh2D, SquareIshPicksLargestDivisorPair) {
  EXPECT_EQ(Mesh2D::square_ish(128).width(), 16u);
  EXPECT_EQ(Mesh2D::square_ish(128).height(), 8u);
  EXPECT_EQ(Mesh2D::square_ish(64).width(), 8u);
  EXPECT_EQ(Mesh2D::square_ish(64).height(), 8u);
  EXPECT_EQ(Mesh2D::square_ish(7).width(), 7u);  // prime: 7x1
  EXPECT_EQ(Mesh2D::square_ish(7).height(), 1u);
}

TEST(Mesh2D, CoordinateRoundTrip) {
  const Mesh2D mesh(16, 8);
  for (NodeId u = 0; u < mesh.size(); ++u) {
    EXPECT_EQ(mesh.node_at(mesh.x_of(u), mesh.y_of(u)), u);
  }
}

TEST(Mesh2D, InteriorNeighbors) {
  const Mesh2D mesh(4, 4);
  const NodeId u = mesh.node_at(1, 1);  // node 5
  EXPECT_EQ(mesh.neighbor(u, Mesh2D::Dir::kEast), mesh.node_at(2, 1));
  EXPECT_EQ(mesh.neighbor(u, Mesh2D::Dir::kWest), mesh.node_at(0, 1));
  EXPECT_EQ(mesh.neighbor(u, Mesh2D::Dir::kNorth), mesh.node_at(1, 0));
  EXPECT_EQ(mesh.neighbor(u, Mesh2D::Dir::kSouth), mesh.node_at(1, 2));
}

TEST(Mesh2D, TorusWraparound) {
  const Mesh2D mesh(4, 4);
  EXPECT_EQ(mesh.neighbor(mesh.node_at(3, 0), Mesh2D::Dir::kEast),
            mesh.node_at(0, 0));
  EXPECT_EQ(mesh.neighbor(mesh.node_at(0, 0), Mesh2D::Dir::kWest),
            mesh.node_at(3, 0));
  EXPECT_EQ(mesh.neighbor(mesh.node_at(0, 0), Mesh2D::Dir::kNorth),
            mesh.node_at(0, 3));
  EXPECT_EQ(mesh.neighbor(mesh.node_at(0, 3), Mesh2D::Dir::kSouth),
            mesh.node_at(0, 0));
}

TEST(Mesh2D, EachDirectionIsAPermutation) {
  // The basis of the ordered-mesh preload configurations: every direction
  // step maps nodes 1:1.
  const Mesh2D mesh(16, 8);
  for (const auto dir : Mesh2D::kDirs) {
    std::set<NodeId> images;
    for (NodeId u = 0; u < mesh.size(); ++u) {
      images.insert(mesh.neighbor(u, dir));
    }
    EXPECT_EQ(images.size(), mesh.size());
  }
}

TEST(Mesh2D, NeighborsMatchDirectionOrder) {
  const Mesh2D mesh(4, 4);
  const auto n = mesh.neighbors(5);
  EXPECT_EQ(n[0], mesh.neighbor(5, Mesh2D::Dir::kEast));
  EXPECT_EQ(n[1], mesh.neighbor(5, Mesh2D::Dir::kWest));
  EXPECT_EQ(n[2], mesh.neighbor(5, Mesh2D::Dir::kNorth));
  EXPECT_EQ(n[3], mesh.neighbor(5, Mesh2D::Dir::kSouth));
}

TEST(Mesh2D, EastWestAreInverse) {
  const Mesh2D mesh(16, 8);
  for (NodeId u = 0; u < mesh.size(); ++u) {
    EXPECT_EQ(
        mesh.neighbor(mesh.neighbor(u, Mesh2D::Dir::kEast),
                      Mesh2D::Dir::kWest),
        u);
    EXPECT_EQ(
        mesh.neighbor(mesh.neighbor(u, Mesh2D::Dir::kNorth),
                      Mesh2D::Dir::kSouth),
        u);
  }
}

TEST(Mesh2D, DegenerateSingleRow) {
  const Mesh2D mesh(4, 1);
  // North/south wrap to the node itself in a height-1 torus.
  EXPECT_EQ(mesh.neighbor(2, Mesh2D::Dir::kNorth), 2u);
  EXPECT_EQ(mesh.neighbor(2, Mesh2D::Dir::kSouth), 2u);
  EXPECT_EQ(mesh.neighbor(2, Mesh2D::Dir::kEast), 3u);
}

}  // namespace
}  // namespace pmx
