// Admission-control layer: bounded VOQs with an explicit overflow verdict,
// the shed policies, and the accounting contract that overload can never
// wedge a run (every submission resolves as delivered, dropped, or shed).

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "core/experiment.hpp"
#include "nic/admission.hpp"
#include "nic/voq.hpp"
#include "sim/simulator.hpp"
#include "switching/tdm.hpp"
#include "traffic/patterns.hpp"

namespace pmx {
namespace {

using namespace pmx::literals;

Message make_msg(MessageId id, NodeId src, NodeId dst, std::uint64_t bytes,
                 TimeNs submit_time) {
  Message msg;
  msg.id = id;
  msg.src = src;
  msg.dst = dst;
  msg.bytes = bytes;
  msg.submit_time = submit_time;
  return msg;
}

TEST(VoqCapacity, VerdictCoversBothAxesAndUnboundedDefault) {
  VoqSet voqs(4);
  EXPECT_FALSE(voqs.would_overflow(1'000'000));  // unbounded by default

  voqs.set_capacity(/*max_bytes=*/256, /*max_msgs=*/0);
  voqs.push(make_msg(1, 0, 1, 200, 0_ns));
  EXPECT_FALSE(voqs.would_overflow(56));
  EXPECT_TRUE(voqs.would_overflow(57));

  voqs.set_capacity(/*max_bytes=*/0, /*max_msgs=*/2);
  EXPECT_FALSE(voqs.would_overflow(1'000'000));  // byte axis unbounded again
  voqs.push(make_msg(2, 0, 2, 8, 0_ns));
  EXPECT_TRUE(voqs.would_overflow(8));  // third message exceeds msg budget
}

TEST(VoqCapacity, PeakBytesTracksHighWater) {
  VoqSet voqs(4);
  voqs.push(make_msg(1, 0, 1, 100, 0_ns));
  voqs.push(make_msg(2, 0, 2, 50, 0_ns));
  Message done;
  EXPECT_EQ(voqs.consume(1, 100, &done), 100u);
  EXPECT_EQ(voqs.total_bytes(), 50u);
  EXPECT_EQ(voqs.peak_bytes(), 150u);
}

TEST(VoqEvict, OrdersBySubmitTimeThenId) {
  VoqSet voqs(4);
  voqs.push(make_msg(3, 0, 1, 64, 10_ns));
  voqs.push(make_msg(1, 0, 2, 64, 5_ns));
  voqs.push(make_msg(2, 0, 3, 64, 5_ns));

  // Oldest = lowest (submit_time, id); ties broken by id.
  auto victim = voqs.evict(/*oldest=*/true, TimeNs::never(), std::nullopt);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->id, 1u);

  victim = voqs.evict(/*oldest=*/false, TimeNs::never(), std::nullopt);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->id, 3u);

  EXPECT_EQ(voqs.total_depth(), 1u);
  EXPECT_EQ(voqs.total_bytes(), 64u);
  // The emptied queues' request bits are cleared, the survivor's is set.
  EXPECT_FALSE(voqs.pending().get(1));
  EXPECT_FALSE(voqs.pending().get(2));
  EXPECT_TRUE(voqs.pending().get(3));
}

TEST(VoqEvict, RespectsCutoffAndProtectedDestination) {
  VoqSet voqs(4);
  voqs.push(make_msg(1, 0, 1, 64, 100_ns));
  voqs.push(make_msg(2, 0, 2, 64, 200_ns));

  // Nothing is old enough: a cutoff before every submit time finds no victim.
  EXPECT_FALSE(voqs.evict(true, 99_ns, std::nullopt).has_value());
  // Deadline-style cutoff: only the message at/before the cutoff qualifies.
  auto victim = voqs.evict(true, 100_ns, std::nullopt);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->id, 1u);

  // The head of a protected destination (an in-flight worm) is untouchable.
  EXPECT_FALSE(voqs.evict(true, TimeNs::never(), NodeId{2}).has_value());
}

TEST(VoqEvict, SkipsPartiallyConsumedHead) {
  VoqSet voqs(4);
  voqs.push(make_msg(1, 0, 1, 100, 0_ns));
  voqs.push(make_msg(2, 0, 2, 100, 1_ns));
  Message done;
  // Move 30 bytes of the head through the fabric: it is no longer sheddable.
  EXPECT_EQ(voqs.consume(1, 30, &done), 30u);
  auto victim = voqs.evict(/*oldest=*/true, TimeNs::never(), std::nullopt);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->id, 2u);
}

// Network-level policy tests: a dynamic-TDM network at time zero queues
// every submission (no slot has ticked yet), so admission decisions are
// observable synchronously through try_submit outcomes and the shed handler.
class AdmissionPolicyTest : public ::testing::Test {
 protected:
  std::unique_ptr<TdmNetwork> make_net(ShedPolicy policy,
                                       std::size_t capacity_msgs = 2) {
    SystemParams params;
    params.num_nodes = 4;
    params.admission.capacity_msgs = capacity_msgs;
    params.admission.policy = policy;
    auto net = std::make_unique<TdmNetwork>(sim_, params, TdmNetwork::Options{});
    net->set_shed_handler([this](const Message& msg) {
      shed_ids_.push_back(msg.id);
    });
    return net;
  }

  Simulator sim_;
  std::vector<MessageId> shed_ids_;
};

TEST_F(AdmissionPolicyTest, TailDropShedsTheNewcomer) {
  auto net = make_net(ShedPolicy::kTailDrop);
  EXPECT_EQ(net->try_submit(0, 1, 64).status, Network::SubmitStatus::kAccepted);
  EXPECT_EQ(net->try_submit(0, 2, 64).status, Network::SubmitStatus::kAccepted);
  const auto outcome = net->try_submit(0, 3, 64);
  EXPECT_EQ(outcome.status, Network::SubmitStatus::kShed);
  EXPECT_EQ(shed_ids_, std::vector<MessageId>{3});
  // Shed messages still count as submitted: the ledger never loses them.
  EXPECT_EQ(net->submitted_count(), 3u);
  EXPECT_EQ(net->shed_messages(), 1u);
  EXPECT_EQ(net->shed_bytes(), 64u);
  EXPECT_EQ(net->counters().value("shed_newest"), 1u);
}

TEST_F(AdmissionPolicyTest, DropOldestEvictsToAdmitTheNewcomer) {
  auto net = make_net(ShedPolicy::kDropOldest);
  net->try_submit(0, 1, 64);
  net->try_submit(0, 2, 64);
  const auto outcome = net->try_submit(0, 3, 64);
  EXPECT_EQ(outcome.status, Network::SubmitStatus::kAccepted);
  EXPECT_EQ(shed_ids_, std::vector<MessageId>{1});  // FIFO push-out
  EXPECT_EQ(net->counters().value("shed_oldest"), 1u);
}

TEST_F(AdmissionPolicyTest, DropNewestEvictsTheYoungestQueued) {
  auto net = make_net(ShedPolicy::kDropNewest);
  net->try_submit(0, 1, 64);
  net->try_submit(0, 2, 64);
  const auto outcome = net->try_submit(0, 3, 64);
  EXPECT_EQ(outcome.status, Network::SubmitStatus::kAccepted);
  EXPECT_EQ(shed_ids_, std::vector<MessageId>{2});  // LIFO push-out
  EXPECT_EQ(net->counters().value("shed_newest"), 1u);
}

TEST_F(AdmissionPolicyTest, DeadlineFallsBackToNewcomerWhenNothingExpired) {
  auto net = make_net(ShedPolicy::kDeadline);
  net->try_submit(0, 1, 64);
  net->try_submit(0, 2, 64);
  // Everything queued is fresh (age 0 < deadline): the newcomer is shed.
  const auto outcome = net->try_submit(0, 3, 64);
  EXPECT_EQ(outcome.status, Network::SubmitStatus::kShed);
  EXPECT_EQ(shed_ids_, std::vector<MessageId>{3});
  EXPECT_EQ(net->counters().value("shed_newest"), 1u);
  EXPECT_EQ(net->counters().value("shed_deadline"), 0u);
}

TEST_F(AdmissionPolicyTest, BackpressureRefusesWithoutConsumingAnId) {
  auto net = make_net(ShedPolicy::kBackpressure);
  net->try_submit(0, 1, 64);
  net->try_submit(0, 2, 64);
  const auto outcome = net->try_submit(0, 3, 64);
  EXPECT_EQ(outcome.status, Network::SubmitStatus::kBackpressure);
  // Nothing entered the ledger: no id, no shed, retry later.
  EXPECT_EQ(net->submitted_count(), 2u);
  EXPECT_EQ(net->shed_messages(), 0u);
  EXPECT_TRUE(shed_ids_.empty());
  EXPECT_EQ(net->counters().value("backpressure_rejects"), 1u);
}

TEST_F(AdmissionPolicyTest, OversizeMessageIsShedEvenIntoAnEmptyQueue) {
  SystemParams params;
  params.num_nodes = 4;
  params.admission.capacity_bytes = 100;
  params.admission.policy = ShedPolicy::kDropOldest;
  TdmNetwork net(sim_, params, TdmNetwork::Options{});
  net.set_shed_handler(
      [this](const Message& msg) { shed_ids_.push_back(msg.id); });
  // 200 bytes can never fit a 100-byte budget: no amount of eviction helps.
  const auto outcome = net.try_submit(0, 1, 200);
  EXPECT_EQ(outcome.status, Network::SubmitStatus::kShed);
  EXPECT_EQ(shed_ids_, std::vector<MessageId>{1});
  EXPECT_EQ(net.counters().value("shed_oversize"), 1u);
}

// The robustness contract end to end: a barrier-phased closed workload with
// queues far too small for its bursts must still complete (shed messages
// settle the barrier accounting), conserving every submission.
class DriverOverloadTest : public ::testing::TestWithParam<ShedPolicy> {};

TEST_P(DriverOverloadTest, BarrieredWorkloadNeverWedges) {
  RunConfig config;
  config.params.num_nodes = 8;
  // Two 2048-byte messages fit; an all-to-all burst of seven does not.
  config.params.admission.capacity_bytes = 4096;
  config.params.admission.policy = GetParam();
  config.kind = SwitchKind::kWormhole;
  const Workload workload = patterns::all_to_all(8, 2048);
  const RunResult result = run_workload(config, workload);
  EXPECT_TRUE(result.completed);
  // Conservation: injected == delivered + shed (no fault layer, no drops).
  EXPECT_EQ(result.counter("submitted"),
            result.metrics.messages + result.counter("shed_messages"));
  if (GetParam() == ShedPolicy::kBackpressure) {
    // Backpressure sheds nothing; it pays in stall time instead.
    EXPECT_EQ(result.counter("shed_messages"), 0u);
    EXPECT_GT(result.counter("backpressure_stall_ns"), 0u);
  } else {
    EXPECT_GT(result.counter("shed_messages"), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, DriverOverloadTest,
    ::testing::Values(ShedPolicy::kTailDrop, ShedPolicy::kDropNewest,
                      ShedPolicy::kDropOldest, ShedPolicy::kDeadline,
                      ShedPolicy::kBackpressure),
    [](const auto& name_info) {
      std::string name = to_string(name_info.param);
      for (char& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name;
    });

// With the fault layer and the slot auditor armed, conservation is audited
// inside the run as well: injected == delivered + dropped + shed + in-flight
// at every audit pass, with shed on the ledger.
TEST(AdmissionAudit, ConservationHoldsWithShedOnTheLedger) {
  RunConfig config;
  config.params.num_nodes = 8;
  config.params.admission.capacity_bytes = 4096;
  config.params.admission.policy = ShedPolicy::kDropOldest;
  config.params.fault.force_enable = true;
  config.params.audit.enabled = true;
  config.params.audit.strict = true;  // a violation aborts the run
  config.kind = SwitchKind::kDynamicTdm;
  const RunResult result =
      run_workload(config, patterns::all_to_all(8, 2048));
  EXPECT_TRUE(result.completed);
  EXPECT_GT(result.metrics.audits, 0u);
  EXPECT_EQ(result.metrics.audit_violations, 0u);
  EXPECT_GT(result.counter("shed_messages"), 0u);
}

}  // namespace
}  // namespace pmx
