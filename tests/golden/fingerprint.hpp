#pragma once

#include <cstdio>
#include <sstream>
#include <string>

#include "core/experiment.hpp"

namespace pmx::golden {

/// Exact decimal rendering of a double: %.17g round-trips every IEEE-754
/// binary64 value, so two fingerprints match iff every derived statistic is
/// bit-identical.
inline std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return std::string(buf);
}

/// Canonical textual fingerprint of one run: every RunMetrics field in
/// declaration order plus every paradigm counter (already sorted -- the
/// CounterSet is a std::map). The policy-conformance suite compares these
/// byte-for-byte against goldens captured from the pre-refactor
/// TimeoutPredictor/CounterPredictor implementations.
inline std::string fingerprint(const std::string& label, const RunResult& r) {
  std::ostringstream os;
  const RunMetrics& m = r.metrics;
  os << "run " << label << "\n";
  os << "completed " << (r.completed ? 1 : 0) << "\n";
  os << "sim_events " << r.sim_events << "\n";
  os << "makespan_ns " << m.makespan.ns() << "\n";
  os << "total_bytes " << m.total_bytes << "\n";
  os << "messages " << m.messages << "\n";
  os << "efficiency " << fmt_double(m.efficiency) << "\n";
  os << "throughput " << fmt_double(m.throughput) << "\n";
  os << "avg_latency_ns " << fmt_double(m.avg_latency_ns) << "\n";
  os << "p99_latency_ns " << fmt_double(m.p99_latency_ns) << "\n";
  os << "max_latency_ns " << fmt_double(m.max_latency_ns) << "\n";
  os << "wire_throughput " << fmt_double(m.wire_throughput) << "\n";
  os << "goodput " << fmt_double(m.goodput) << "\n";
  os << "retransmits " << m.retransmits << "\n";
  os << "crc_corruptions " << m.crc_corruptions << "\n";
  os << "duplicates " << m.duplicates << "\n";
  os << "acks_lost " << m.acks_lost << "\n";
  os << "dropped_messages " << m.dropped_messages << "\n";
  os << "link_faults " << m.link_faults << "\n";
  os << "forced_releases " << m.forced_releases << "\n";
  os << "recovery_mean_ns " << fmt_double(m.recovery_mean_ns) << "\n";
  os << "recovery_max_ns " << fmt_double(m.recovery_max_ns) << "\n";
  os << "ctrl_messages " << m.ctrl_messages << "\n";
  os << "ctrl_dropped " << m.ctrl_dropped << "\n";
  os << "ctrl_corrupted " << m.ctrl_corrupted << "\n";
  os << "ctrl_delayed " << m.ctrl_delayed << "\n";
  os << "ctrl_rerequests " << m.ctrl_rerequests << "\n";
  os << "lease_expiries " << m.lease_expiries << "\n";
  os << "audits " << m.audits << "\n";
  os << "audit_violations " << m.audit_violations << "\n";
  os << "resyncs " << m.resyncs << "\n";
  os << "resync_latency_mean_ns " << fmt_double(m.resync_latency_mean_ns)
     << "\n";
  os << "resync_latency_max_ns " << fmt_double(m.resync_latency_max_ns)
     << "\n";
  for (const auto& [name, value] : r.counters) {
    os << "counter " << name << " " << value << "\n";
  }
  return os.str();
}

}  // namespace pmx::golden
