#pragma once

#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "traffic/patterns.hpp"

namespace pmx::golden {

/// One conformance scenario: a (policy, workload) pair whose RunResult
/// fingerprint is frozen as a golden file. The policy is named by string so
/// the same table drives both the pre-refactor capture (mapped onto the old
/// predictor enum) and the post-refactor suite (mapped onto PolicySpec).
struct Scenario {
  std::string id;  ///< golden file stem: <policy-label>_<workload>
  std::string policy;  ///< none | never-evict | timeout | counter | phase
  std::int64_t timeout_ns = 0;
  std::uint64_t threshold = 0;
  std::int64_t phase_epoch_ns = 0;
  std::string workload;  ///< scatter | mesh | two-phase | chaos-mesh
};

/// Clean-path scenarios use 24 nodes / 192-byte messages; the chaos-mesh
/// scenarios shrink to 16 nodes and layer lossy control + random link
/// faults + the recovery-mode auditor on top, so the goldens also freeze
/// the predictor's interaction with forced releases and resyncs.
inline std::vector<Scenario> conformance_scenarios() {
  std::vector<Scenario> out;
  struct Policy {
    std::string label;
    std::string policy;
    std::int64_t timeout_ns;
    std::uint64_t threshold;
    std::int64_t phase_epoch_ns;
  };
  const std::vector<Policy> policies{
      {"none", "none", 0, 0, 0},
      {"never-evict", "never-evict", 0, 0, 0},
      {"timeout-100", "timeout", 100, 0, 0},
      {"timeout-200", "timeout", 200, 0, 0},
      {"timeout-800", "timeout", 800, 0, 0},
      {"counter-8", "counter", 0, 8, 0},
      {"counter-64", "counter", 0, 64, 0},
      {"phase-200", "phase", 200, 0, 1000},
  };
  for (const auto& p : policies) {
    for (const std::string workload : {"scatter", "mesh", "two-phase"}) {
      out.push_back(Scenario{p.label + "_" + workload, p.policy, p.timeout_ns,
                             p.threshold, p.phase_epoch_ns, workload});
    }
  }
  for (const auto& p : policies) {
    if (p.policy == "timeout" && p.timeout_ns != 200) {
      continue;  // one timeout horizon is enough for the chaos axis
    }
    if (p.policy == "counter" && p.threshold != 64) {
      continue;
    }
    out.push_back(Scenario{p.label + "_chaos-mesh", p.policy, p.timeout_ns,
                           p.threshold, p.phase_epoch_ns, "chaos-mesh"});
  }
  return out;
}

inline Workload scenario_workload(const Scenario& s) {
  if (s.workload == "scatter") {
    return patterns::scatter(24, 192);
  }
  if (s.workload == "mesh") {
    return patterns::random_mesh(24, 192, 2, /*seed=*/7);
  }
  if (s.workload == "two-phase") {
    return patterns::two_phase(24, 192, /*seed=*/7);
  }
  // chaos-mesh: smaller fabric, more rounds, its own seed.
  return patterns::random_mesh(16, 256, 4, /*seed=*/3);
}

/// Everything about the run configuration except the predictor/policy
/// selection itself (which is the half that changed across the refactor).
inline void apply_scenario_base(RunConfig& config, const Scenario& s) {
  config.kind = SwitchKind::kDynamicTdm;
  config.multi_slot_connections = true;
  if (s.workload == "chaos-mesh") {
    config.params.num_nodes = 16;
    config.params.ctrl.loss = 0.10;
    config.params.fault.link_mtbf = TimeNs{400'000};
    config.params.fault.link_repair = TimeNs{30'000};
    config.params.audit.enabled = true;
    config.params.audit.period_slots = 4;
  } else {
    config.params.num_nodes = 24;
  }
}

}  // namespace pmx::golden
