#include "switching/tdm.hpp"

#include <gtest/gtest.h>

#include "predictor/phase_predictor.hpp"
#include "predictor/timeout_predictor.hpp"
#include "sim/simulator.hpp"

namespace pmx {
namespace {

using namespace pmx::literals;

SystemParams small_params(std::size_t n = 8, std::size_t k = 4) {
  SystemParams p;
  p.num_nodes = n;
  p.mux_degree = k;
  return p;
}

TEST(TdmNetwork, DeliversSingleMessage) {
  Simulator sim;
  TdmNetwork net(sim, small_params());
  net.submit(0, 1, 64);
  sim.run_until(10_us);
  ASSERT_EQ(net.records().size(), 1u);
  const auto& rec = net.records()[0];
  // 64 bytes fit in one slot's data window (the paper's "messages between 8
  // and 64 bytes can be transmitted in a single cycle").
  EXPECT_LE(rec.send_done.ns(), 500);  // established + first active slot
  EXPECT_EQ((rec.delivered - rec.send_done).ns(), 100 + 10);
}

TEST(TdmNetwork, LargeMessageFragmentsAcrossSlots) {
  Simulator sim;
  TdmNetwork net(sim, small_params());
  net.submit(0, 1, 256);  // 4 slot windows of 64 B
  sim.run_until(10_us);
  ASSERT_EQ(net.records().size(), 1u);
  // With only one live connection the TDM counter re-serves it every slot:
  // 4 consecutive slots minimum.
  EXPECT_GE(net.records()[0].send_done.ns(), 400);
  EXPECT_EQ(net.queued_bytes(), 0u);
}

TEST(TdmNetwork, SlotCapacityMatchesPaperKnee) {
  const SystemParams p = small_params();
  // 100 ns slot minus 20 ns guard at 0.8 B/ns = 64 bytes: the 64->80 byte
  // knee in the paper's scatter results.
  EXPECT_EQ(p.slot_payload_bytes(), 64u);
}

TEST(TdmNetwork, ManySmallMessagesShareOneSlotWindow) {
  Simulator sim;
  TdmNetwork net(sim, small_params());
  // 8 x 8 B to the same destination: one 64 B window drains all of them.
  for (int i = 0; i < 8; ++i) {
    net.submit(0, 1, 8);
  }
  sim.run_until(10_us);
  EXPECT_EQ(net.records().size(), 8u);
  // All eight share the same slot: identical delivery slot start.
  const auto first = net.records().front().delivered;
  const auto last = net.records().back().delivered;
  EXPECT_LT((last - first).ns(), 100);
}

TEST(TdmNetwork, ConflictingTrafficLandsInDifferentSlots) {
  Simulator sim;
  TdmNetwork net(sim, small_params());
  net.submit(0, 3, 640);
  net.submit(1, 3, 640);
  sim.run_until(100_us);
  EXPECT_EQ(net.records().size(), 2u);
  EXPECT_GE(net.scheduler().stats().establishes, 2u);
  EXPECT_EQ(net.queued_bytes(), 0u);
}

TEST(TdmNetwork, RequestsTrackVoqState) {
  Simulator sim;
  TdmNetwork net(sim, small_params());
  net.submit(0, 1, 64);
  EXPECT_TRUE(net.scheduler().request(0, 1));
  sim.run_until(10_us);
  EXPECT_FALSE(net.scheduler().request(0, 1));  // drained
}

TEST(TdmNetwork, TimeoutPredictorReleasesIdleConnection) {
  Simulator sim;
  TdmNetwork::Options options;
  options.predictor = make_timeout_predictor(200_ns);
  TdmNetwork net(sim, small_params(), std::move(options));
  net.submit(0, 1, 64);
  sim.run_until(5_us);
  // Long after the timeout, the connection must be gone from B*.
  EXPECT_FALSE(net.scheduler().is_established(0, 1));
}

TEST(TdmNetwork, NoPredictorReleasesImmediately) {
  Simulator sim;
  TdmNetwork net(sim, small_params());
  net.submit(0, 1, 64);
  sim.run_until(2_us);
  EXPECT_FALSE(net.scheduler().is_established(0, 1));
}

TEST(TdmNetwork, HoldKeepsConnectionForReuse) {
  Simulator sim;
  TdmNetwork::Options options;
  options.predictor = make_never_evict_predictor();
  TdmNetwork net(sim, small_params(), std::move(options));
  net.submit(0, 1, 64);
  sim.run_until(2_us);
  EXPECT_TRUE(net.scheduler().is_established(0, 1));  // latched
  // Reuse without re-establishment.
  const auto before = net.scheduler().stats().establishes;
  net.submit(0, 1, 64);
  sim.run_until(4_us);
  EXPECT_EQ(net.scheduler().stats().establishes, before);
  EXPECT_EQ(net.records().size(), 2u);
}

TEST(TdmNetwork, FlushHintDropsDynamicState) {
  Simulator sim;
  TdmNetwork::Options options;
  options.predictor = make_never_evict_predictor();
  TdmNetwork net(sim, small_params(), std::move(options));
  net.submit(0, 1, 64);
  sim.run_until(2_us);
  ASSERT_TRUE(net.scheduler().is_established(0, 1));
  net.flush_hint();
  EXPECT_FALSE(net.scheduler().is_established(0, 1));
  EXPECT_EQ(net.counters().value("flushes"), 1u);
}

TEST(TdmNetwork, PreloadedPinnedConfigServesTrafficWithoutEstablishment) {
  Simulator sim;
  TdmNetwork net(sim, small_params());
  BitMatrix cfg(8);
  cfg.set(0, 1);
  cfg.set(2, 3);
  net.preload(0, cfg, /*pinned=*/true);
  net.submit(0, 1, 128);
  net.submit(2, 3, 128);
  sim.run_until(10_us);
  EXPECT_EQ(net.records().size(), 2u);
  EXPECT_EQ(net.scheduler().stats().establishes, 0u);  // all via preload
  EXPECT_TRUE(net.scheduler().is_established(0, 1));   // pinned stays
}

TEST(TdmNetwork, HybridServesPreloadedAndDynamicTraffic) {
  Simulator sim;
  TdmNetwork net(sim, small_params(8, 3));
  BitMatrix cfg(8);
  for (NodeId u = 0; u < 8; ++u) {
    cfg.set(u, (u + 1) % 8);
  }
  net.preload(0, cfg, true);  // favored pattern pinned in slot 0
  for (NodeId u = 0; u < 8; ++u) {
    net.submit(u, (u + 1) % 8, 64);  // deterministic traffic
    net.submit(u, (u + 3) % 8, 64);  // dynamic traffic
  }
  sim.run_until(50_us);
  EXPECT_EQ(net.records().size(), 16u);
  EXPECT_GT(net.scheduler().stats().establishes, 0u);  // dynamic part
  EXPECT_EQ(net.queued_bytes(), 0u);
}

TEST(TdmNetwork, MultiSlotExtensionIncreasesBandwidth) {
  // One lonely 2048-byte flow: with the extension it replicates into all
  // slots; without, the TDM counter skipping empty slots achieves the same
  // for a single connection, so compare with two unrelated flows present.
  const auto run = [](bool multi_slot) {
    Simulator sim;
    TdmNetwork::Options options;
    options.multi_slot_connections = multi_slot;
    options.predictor = make_never_evict_predictor();
    TdmNetwork net(sim, small_params(), std::move(options));
    net.submit(0, 1, 4096);
    net.submit(2, 3, 64);  // keeps a second slot occupied briefly
    sim.run_until(100_us);
    return net.records().back().delivered;
  };
  EXPECT_LE(run(true), run(false));
}

TEST(TdmNetwork, SlotSkippingIdlesWhenNoRequests) {
  Simulator sim;
  TdmNetwork::Options options;
  options.predictor = make_never_evict_predictor();
  TdmNetwork net(sim, small_params(), std::move(options));
  net.submit(0, 1, 64);
  sim.run_until(5_us);
  // Connection latched but no pending request: slots are skipped, fabric
  // idles (idle_slots counter advances).
  EXPECT_GT(net.counters().value("idle_slots"), 0u);
}

TEST(TdmNetwork, ParallelSlUnitsEstablishFaster) {
  // Section 4 extension 1: with one SL unit per slot, a burst of
  // conflicting requests spreads over all K slots within one SL clock
  // instead of K clocks.
  const auto established_after_first_tick = [](std::size_t units) {
    Simulator sim;
    TdmNetwork::Options options;
    options.sl_units = units;
    TdmNetwork net(sim, small_params(8, 4), std::move(options));
    // Four flows all competing for output 7 need four distinct slots.
    for (NodeId u = 0; u < 4; ++u) {
      net.submit(u, 7, 640);
    }
    sim.run_until(TimeNs{1});  // exactly one SL clock edge (t = 0)
    std::size_t established = 0;
    for (NodeId u = 0; u < 4; ++u) {
      established += net.scheduler().is_established(u, 7) ? 1u : 0u;
    }
    return established;
  };
  EXPECT_EQ(established_after_first_tick(1), 1u);
  EXPECT_EQ(established_after_first_tick(4), 4u);
}

TEST(TdmNetwork, PhasePredictorAutoFlushesOnPhaseChange) {
  Simulator sim;
  TdmNetwork::Options options;
  // Long timeout so only the phase detector can clear stale state; short
  // tracking epoch so the shift is seen quickly.
  options.predictor = make_phase_predictor(50'000_ns, 500_ns, 0.5);
  TdmNetwork net(sim, small_params(8, 4), std::move(options));
  // Phase A: a stable working set.
  for (NodeId u = 0; u < 4; ++u) {
    net.submit(u, (u + 1) % 8, 640);
  }
  sim.run_until(3_us);
  // Phase B: a disjoint working set.
  for (NodeId u = 4; u < 8; ++u) {
    net.submit(u, (u + 2) % 4, 640);
  }
  sim.run_until(20_us);
  EXPECT_GT(net.counters().value("auto_flushes"), 0u);
  EXPECT_EQ(net.queued_bytes(), 0u);
}

TEST(TdmNetwork, DeterministicReplay) {
  const auto run = [] {
    Simulator sim;
    TdmNetwork net(sim, small_params());
    for (NodeId u = 0; u < 8; ++u) {
      net.submit(u, (u + 1) % 8, 200);
      net.submit(u, (u + 3) % 8, 100);
    }
    sim.run_until(100_us);
    std::vector<std::int64_t> deliveries;
    for (const auto& rec : net.records()) {
      deliveries.push_back(rec.delivered.ns());
    }
    return deliveries;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace pmx
