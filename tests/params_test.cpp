#include "switching/params.hpp"

#include <gtest/gtest.h>

namespace pmx {
namespace {

using namespace pmx::literals;

TEST(SystemParams, PaperDefaults) {
  const SystemParams p;
  EXPECT_EQ(p.num_nodes, 128u);
  EXPECT_EQ(p.link.bandwidth_dgbps, 64);  // 6.4 Gb/s
  EXPECT_EQ(p.nic_cycle, 10_ns);
  EXPECT_EQ(p.scheduler_latency, 80_ns);
  EXPECT_EQ(p.slot_length, 100_ns);
  EXPECT_EQ(p.mux_degree, 4u);
  EXPECT_EQ(p.flit_bytes, 8u);
  EXPECT_EQ(p.max_worm_bytes, 128u);
  p.validate();  // must not abort
}

TEST(SystemParams, DerivedQuantities) {
  const SystemParams p;
  EXPECT_EQ(p.slot_window(), 80_ns);
  EXPECT_EQ(p.slot_payload_bytes(), 64u);
  // Passive path: 30+20+0+20+30.
  EXPECT_EQ(p.passive_path_latency(), 100_ns);
  // Digital path adds the 10 ns switch hop.
  EXPECT_EQ(p.digital_path_latency(), 110_ns);
  // Control wire: 30+20+30.
  EXPECT_EQ(p.control_wire_latency(), 80_ns);
}

TEST(SystemParamsDeathTest, ValidateCatchesBadValues) {
  SystemParams p;
  p.num_nodes = 1;
  EXPECT_DEATH(p.validate(), "two nodes");

  p = SystemParams{};
  p.guard_band = p.slot_length;
  EXPECT_DEATH(p.validate(), "guard band");

  p = SystemParams{};
  p.slot_length = 2_ns;
  p.guard_band = 1_ns;
  EXPECT_DEATH(p.validate(), "no payload");

  p = SystemParams{};
  p.mux_degree = 0;
  EXPECT_DEATH(p.validate(), "multiplexing degree");

  p = SystemParams{};
  p.max_worm_bytes = 4;  // smaller than a flit
  EXPECT_DEATH(p.validate(), "worm limit");
}

}  // namespace
}  // namespace pmx
