// Integration tests: run_workload end-to-end at reduced scale, asserting
// the *shape* results that the paper reports (who wins, where the knee is),
// plus determinism and bookkeeping invariants across all paradigms.

#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include "traffic/patterns.hpp"

namespace pmx {
namespace {

RunConfig config_for(SwitchKind kind, std::size_t nodes,
                     std::size_t mux = 4) {
  RunConfig config;
  config.params.num_nodes = nodes;
  config.params.mux_degree = mux;
  config.kind = kind;
  config.multi_slot_connections = true;
  return config;
}

double efficiency(SwitchKind kind, const Workload& w, std::size_t nodes) {
  const RunResult result = run_workload(config_for(kind, nodes), w);
  EXPECT_TRUE(result.completed);
  return result.metrics.efficiency;
}

TEST(Experiment, AllParadigmsDeliverEverything) {
  const std::size_t n = 16;
  const Workload w = patterns::random_mesh(n, 200, 1, 3);
  for (const auto kind :
       {SwitchKind::kWormhole, SwitchKind::kCircuit, SwitchKind::kDynamicTdm,
        SwitchKind::kPreloadTdm}) {
    const RunResult result = run_workload(config_for(kind, n), w);
    EXPECT_TRUE(result.completed) << to_string(kind);
    EXPECT_EQ(result.metrics.messages, w.num_messages()) << to_string(kind);
    EXPECT_EQ(result.metrics.total_bytes, w.total_bytes()) << to_string(kind);
    EXPECT_GT(result.metrics.efficiency, 0.0) << to_string(kind);
    EXPECT_LE(result.metrics.efficiency, 1.0) << to_string(kind);
  }
}

TEST(Experiment, RunsAreDeterministic) {
  const Workload w = patterns::uniform_random(16, 128, 4, 9);
  for (const auto kind : {SwitchKind::kWormhole, SwitchKind::kCircuit,
                          SwitchKind::kDynamicTdm, SwitchKind::kPreloadTdm}) {
    const RunResult a = run_workload(config_for(kind, 16), w);
    const RunResult b = run_workload(config_for(kind, 16), w);
    EXPECT_EQ(a.metrics.makespan, b.metrics.makespan) << to_string(kind);
    EXPECT_EQ(a.sim_events, b.sim_events) << to_string(kind);
  }
}

// --- Paper shape assertions (scaled to 32 nodes for test speed) -----------

TEST(ExperimentShape, ScatterKneeAt64Bytes) {
  // "a notable increase in bandwidth utilization between 32 and 64 bytes
  // ... the efficiency flattens out from 64 to 2048 bytes"
  const std::size_t n = 32;
  const double e32 =
      efficiency(SwitchKind::kPreloadTdm, patterns::scatter(n, 32), n);
  const double e64 =
      efficiency(SwitchKind::kPreloadTdm, patterns::scatter(n, 64), n);
  const double e512 =
      efficiency(SwitchKind::kPreloadTdm, patterns::scatter(n, 512), n);
  const double e2048 =
      efficiency(SwitchKind::kPreloadTdm, patterns::scatter(n, 2048), n);
  EXPECT_GT(e64, 1.5 * e32);            // the knee
  EXPECT_NEAR(e512, e2048, 0.05);       // flat tail
  EXPECT_GT(e2048, 0.7);                // near the 0.8 guard-band ceiling
}

TEST(ExperimentShape, ScatterPreloadAndDynamicSimilar) {
  // "For Preload versus Dynamic TDM ... the Scatter performance is very
  // similar."
  const std::size_t n = 32;
  for (const std::uint64_t bytes : {256u, 1024u}) {
    const Workload w = patterns::scatter(n, bytes);
    const double dyn = efficiency(SwitchKind::kDynamicTdm, w, n);
    const double pre = efficiency(SwitchKind::kPreloadTdm, w, n);
    EXPECT_NEAR(dyn, pre, 0.08) << bytes;
  }
}

TEST(ExperimentShape, RandomMeshTdmBeatsWormholeAndCircuit) {
  // "both Preload and Dynamic TDM outperform Wormhole and Circuit
  // switching by 10 to 25%". The dynamic-TDM margin is largest at small
  // and medium message sizes; at 256 B and this reduced 32-node scale it
  // narrows to parity, so the strict margin is asserted at 64 B.
  const std::size_t n = 32;
  {
    const Workload w = patterns::random_mesh(n, 64, 2, 7);
    const double worm = efficiency(SwitchKind::kWormhole, w, n);
    const double circ = efficiency(SwitchKind::kCircuit, w, n);
    const double dyn = efficiency(SwitchKind::kDynamicTdm, w, n);
    const double pre = efficiency(SwitchKind::kPreloadTdm, w, n);
    EXPECT_GT(dyn, worm * 1.10);
    EXPECT_GT(dyn, circ * 1.10);
    EXPECT_GT(pre, worm * 1.10);
    EXPECT_GT(pre, circ * 1.10);
  }
  {
    const Workload w = patterns::random_mesh(n, 256, 2, 7);
    const double worm = efficiency(SwitchKind::kWormhole, w, n);
    const double dyn = efficiency(SwitchKind::kDynamicTdm, w, n);
    const double pre = efficiency(SwitchKind::kPreloadTdm, w, n);
    EXPECT_GT(dyn, worm * 0.95);  // at least parity at larger sizes
    EXPECT_GT(pre, worm * 1.10);
  }
}

TEST(ExperimentShape, CircuitImprovesWithMessageSize) {
  // "The performance of Circuit switching improves when the message size is
  // large."
  const std::size_t n = 32;
  const double small = efficiency(SwitchKind::kCircuit,
                                  patterns::random_mesh(n, 32, 2, 7), n);
  const double large = efficiency(SwitchKind::kCircuit,
                                  patterns::random_mesh(n, 2048, 2, 7), n);
  EXPECT_GT(large, 2.0 * small);
}

TEST(ExperimentShape, OrderedMeshPreloadBest) {
  // "The Ordered Mesh, as one would expect does very well with Preload."
  const std::size_t n = 32;
  const Workload w = patterns::ordered_mesh(n, 512, 2);
  const double pre = efficiency(SwitchKind::kPreloadTdm, w, n);
  EXPECT_GT(pre, efficiency(SwitchKind::kWormhole, w, n));
  EXPECT_GT(pre, efficiency(SwitchKind::kDynamicTdm, w, n));
  EXPECT_GT(pre, 0.7);
}

TEST(ExperimentShape, WormholeDoesNotExploitMeshRegularity) {
  // "The regularity of the pattern ... is not exploited for Wormhole or
  // Circuit switching": ordered vs random mesh within ~15% for wormhole.
  const std::size_t n = 32;
  const double ordered = efficiency(
      SwitchKind::kWormhole, patterns::ordered_mesh(n, 512, 2), n);
  const double random = efficiency(
      SwitchKind::kWormhole, patterns::random_mesh(n, 512, 2, 7), n);
  EXPECT_NEAR(ordered, random, 0.15 * ordered);
}

TEST(ExperimentShape, TwoPhasePreloadBeatsDynamicAtModerateSizes) {
  // "For the Two Phased communication test, Preload does better than the
  // rest" (at the small/moderate sizes where the effect is strongest).
  const std::size_t n = 32;
  const Workload w = patterns::two_phase(n, 64, 7);
  const double pre = efficiency(SwitchKind::kPreloadTdm, w, n);
  EXPECT_GT(pre, efficiency(SwitchKind::kDynamicTdm, w, n));
  EXPECT_GT(pre, efficiency(SwitchKind::kWormhole, w, n));
  EXPECT_GT(pre, efficiency(SwitchKind::kCircuit, w, n));
}

TEST(ExperimentShape, TwoPhaseDynamicBelowWormholeAtSmallSizes) {
  // "the performance of dynamically scheduled TDM drops below Wormhole"
  const std::size_t n = 32;
  const Workload w = patterns::two_phase(n, 32, 7);
  EXPECT_LT(efficiency(SwitchKind::kDynamicTdm, w, n),
            efficiency(SwitchKind::kWormhole, w, n));
}

TEST(ExperimentShape, HybridPreloadHelpsDeterministicTraffic) {
  // Figure 5's headline: at high determinism, pinning the static pattern
  // beats pure dynamic scheduling.
  const std::size_t n = 32;
  const Workload w = patterns::determinism_mix(n, 64, 0.9, 64, 2, 5);
  BitMatrix cfg0(n);
  BitMatrix cfg1(n);
  for (NodeId u = 0; u < n; ++u) {
    cfg0.set(u, patterns::favored_destination(n, u, 0, 2));
    cfg1.set(u, patterns::favored_destination(n, u, 1, 2));
  }
  RunConfig pure = config_for(SwitchKind::kDynamicTdm, n, 3);
  pure.multi_slot_connections = false;
  RunConfig hybrid = pure;
  hybrid.pinned_configs = {cfg0, cfg1};
  const RunResult pure_result = run_workload(pure, w);
  const RunResult hybrid_result = run_workload(hybrid, w);
  ASSERT_TRUE(pure_result.completed && hybrid_result.completed);
  EXPECT_GT(hybrid_result.metrics.efficiency,
            pure_result.metrics.efficiency * 1.05);
}

TEST(Experiment, HorizonAbortsWedgedRun) {
  // never-evict with a saturating working set livelocks by design; the
  // horizon must bail out and report completed = false.
  const std::size_t n = 16;
  RunConfig config = config_for(SwitchKind::kDynamicTdm, n);
  config.policy.policy = "never-evict";
  config.horizon = TimeNs{200'000};
  const Workload w = patterns::all_to_all(n, 64);
  const RunResult result = run_workload(config, w);
  EXPECT_FALSE(result.completed);
}

TEST(Experiment, PhasePredictorRunsEndToEnd) {
  const std::size_t n = 16;
  RunConfig config = config_for(SwitchKind::kDynamicTdm, n);
  config.policy.policy = "phase";
  config.policy.phase_epoch_ns = 500;
  const Workload w = patterns::two_phase(n, 64, 3);
  const RunResult result = run_workload(config, w);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.metrics.messages, w.num_messages());
}

TEST(Experiment, ParallelSlUnitsRunEndToEnd) {
  const std::size_t n = 16;
  RunConfig config = config_for(SwitchKind::kDynamicTdm, n);
  config.sl_units = 4;
  const Workload w = patterns::uniform_random(n, 128, 4, 5);
  const RunResult result = run_workload(config, w);
  EXPECT_TRUE(result.completed);
}

TEST(Experiment, GreedyDecompositionPreloadRuns) {
  const std::size_t n = 16;
  RunConfig config = config_for(SwitchKind::kPreloadTdm, n);
  config.optimal_decomposition = false;
  const Workload w = patterns::random_mesh(n, 128, 1, 5);
  const RunResult result = run_workload(config, w);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.metrics.messages, w.num_messages());
}

TEST(Experiment, BlockingSendModeRunsEndToEnd) {
  const std::size_t n = 16;
  RunConfig config = config_for(SwitchKind::kDynamicTdm, n);
  config.send_mode = SendMode::kBlocking;
  const Workload w = patterns::random_mesh(n, 128, 1, 5);
  const RunResult blocking = run_workload(config, w);
  config.send_mode = SendMode::kEager;
  const RunResult eager = run_workload(config, w);
  ASSERT_TRUE(blocking.completed && eager.completed);
  // Blocking serializes each node's traffic: never faster than eager.
  EXPECT_GE(blocking.metrics.makespan, eager.metrics.makespan);
}

TEST(Experiment, CounterCollectionIsExposed) {
  const Workload w = patterns::scatter(16, 64);
  const RunResult result =
      run_workload(config_for(SwitchKind::kWormhole, 16), w);
  EXPECT_GT(result.counter("worms"), 0u);
  EXPECT_EQ(result.counter("no-such-counter"), 0u);
}

TEST(Experiment, ToStringCoversAllKinds) {
  EXPECT_EQ(to_string(SwitchKind::kWormhole), "wormhole");
  EXPECT_EQ(to_string(SwitchKind::kCircuit), "circuit");
  EXPECT_EQ(to_string(SwitchKind::kDynamicTdm), "dynamic-tdm");
  EXPECT_EQ(to_string(SwitchKind::kPreloadTdm), "preload-tdm");
}

TEST(Experiment, PolicyIsSweepableConfig) {
  // The predictor is selected by the PolicySpec config value; any policy
  // name reachable from a config bag must run end to end.
  const std::size_t n = 16;
  const Workload w = patterns::random_mesh(n, 128, 1, 5);
  for (const std::string& name : PolicySpec::known_policies()) {
    if (name == "never-evict") {
      continue;  // livelocks by design on saturating sets (tested above)
    }
    RunConfig config = config_for(SwitchKind::kDynamicTdm, n);
    config.policy.policy = name;
    const RunResult result = run_workload(config, w);
    EXPECT_TRUE(result.completed) << name;
    EXPECT_EQ(result.metrics.messages, w.num_messages()) << name;
  }
}

}  // namespace
}  // namespace pmx
