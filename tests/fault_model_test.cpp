// Unit tests of the fault-injection subsystem: FaultParams gating, the
// deterministic RNG streams, the hard-fault timeline, and the scheduler's
// degraded mode (port masking + stuck cells).

#include "fault/fault_model.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "sched/tdm_scheduler.hpp"
#include "sim/simulator.hpp"

namespace pmx {
namespace {

using namespace pmx::literals;

TEST(FaultParams, DisabledByDefault) {
  const FaultParams p;
  EXPECT_FALSE(p.enabled());
}

TEST(FaultParams, AnyFaultSourceEnables) {
  FaultParams p;
  p.ber = 1e-6;
  EXPECT_TRUE(p.enabled());
  p = FaultParams{};
  p.link_mtbf = 1000_ns;
  EXPECT_TRUE(p.enabled());
  p = FaultParams{};
  p.stuck_cells = 1;
  EXPECT_TRUE(p.enabled());
  p = FaultParams{};
  p.ack_ber = 1e-6;
  EXPECT_TRUE(p.enabled());
  p = FaultParams{};
  p.force_enable = true;
  EXPECT_TRUE(p.enabled());
}

TEST(FaultParams, AckBerDerivesFromBerByDefault) {
  FaultParams p;
  p.ber = 1e-4;
  EXPECT_DOUBLE_EQ(p.effective_ack_ber(), 1e-4);
  p.ack_ber = 0.0;  // explicitly reliable ACKs
  EXPECT_DOUBLE_EQ(p.effective_ack_ber(), 0.0);
}

TEST(FaultParams, RandomFaultsWithoutRepairAreRejected) {
  // The retry budget is only consumed by arrivals, so a randomly failed
  // link that never repairs would park queued traffic forever instead of
  // degrading the run. Permanent outages are scripted-only.
  Simulator sim;
  FaultParams p;
  p.link_mtbf = 1000_ns;  // link_repair left at zero
  EXPECT_DEATH(FaultModel fm(sim, p, 8), "link_repair");
}

TEST(FaultModel, ZeroBerNeverCorrupts) {
  Simulator sim;
  FaultParams p;
  p.force_enable = true;
  FaultModel fm(sim, p, 8);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(fm.corrupts_payload(1 << 20));
    EXPECT_FALSE(fm.corrupts_ack());
  }
}

TEST(FaultModel, CorruptionDrawsAreSeedDeterministic) {
  FaultParams p;
  p.ber = 1e-3;
  Simulator sim_a;
  Simulator sim_b;
  FaultModel a(sim_a, p, 8);
  FaultModel b(sim_b, p, 8);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_EQ(a.corrupts_payload(256), b.corrupts_payload(256));
    ASSERT_EQ(a.corrupts_ack(), b.corrupts_ack());
  }
}

TEST(FaultModel, CorruptionProbabilityScalesWithSize) {
  FaultParams p;
  p.ber = 1e-4;
  Simulator sim;
  FaultModel fm(sim, p, 8);
  int small = 0;
  int large = 0;
  for (int i = 0; i < 20'000; ++i) {
    small += fm.corrupts_payload(8) ? 1 : 0;
    large += fm.corrupts_payload(4096) ? 1 : 0;
  }
  // P(8 B) ~ 0.08%, P(4096 B) ~ 33.6%: orders of magnitude apart.
  EXPECT_LT(small, 100);
  EXPECT_GT(large, 5000);
}

TEST(FaultModel, BackoffDoublesAndCaps) {
  Simulator sim;
  FaultParams p;
  p.force_enable = true;
  p.backoff_base = 200_ns;
  p.backoff_cap = 1000_ns;
  FaultModel fm(sim, p, 8);
  EXPECT_EQ(fm.backoff(2), 200_ns);  // first retransmission
  EXPECT_EQ(fm.backoff(3), 400_ns);
  EXPECT_EQ(fm.backoff(4), 800_ns);
  EXPECT_EQ(fm.backoff(5), 1000_ns);  // capped
  EXPECT_EQ(fm.backoff(50), 1000_ns);  // no overflow at silly attempts
}

TEST(FaultModel, ScriptedFaultTogglesLinkAndNotifies) {
  Simulator sim;
  FaultParams p;
  p.force_enable = true;
  FaultModel fm(sim, p, 8);
  std::vector<std::pair<NodeId, bool>> edges;
  fm.subscribe([&](NodeId n, bool up) { edges.emplace_back(n, up); });

  fm.inject_link_fault(3, 1000_ns, 500_ns);
  EXPECT_TRUE(fm.link_up(3));
  sim.run_until(1200_ns);
  EXPECT_FALSE(fm.link_up(3));
  EXPECT_EQ(fm.num_links_down(), 1u);
  sim.run_until(2000_ns);
  EXPECT_TRUE(fm.link_up(3));
  EXPECT_EQ(fm.num_links_down(), 0u);

  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], (std::pair<NodeId, bool>{3, false}));
  EXPECT_EQ(edges[1], (std::pair<NodeId, bool>{3, true}));
}

TEST(FaultModel, PermanentScriptedFaultNeverRepairs) {
  Simulator sim;
  FaultParams p;
  p.force_enable = true;
  FaultModel fm(sim, p, 8);
  fm.inject_link_fault(0, 100_ns, TimeNs::zero());
  sim.run_until(1000_us);
  EXPECT_FALSE(fm.link_up(0));
}

TEST(FaultModel, MtbfTimelineIsSeedDeterministic) {
  FaultParams p;
  p.link_mtbf = 50'000_ns;
  p.link_repair = 5'000_ns;
  const auto run = [&p] {
    Simulator sim;
    FaultModel fm(sim, p, 16);
    std::vector<std::pair<std::int64_t, NodeId>> log;
    fm.subscribe([&](NodeId n, bool up) {
      if (!up) {
        log.emplace_back(sim.now().ns(), n);
      }
    });
    sim.run_until(500'000_ns);
    return log;
  };
  const auto a = run();
  const auto b = run();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(FaultModel, MaxLinkFaultsCapsRandomTimeline) {
  Simulator sim;
  FaultParams p;
  p.link_mtbf = 1'000_ns;  // very flappy
  p.link_repair = 100_ns;
  p.max_link_faults = 5;
  FaultModel fm(sim, p, 8);
  sim.run_until(10'000'000_ns);
  EXPECT_LE(fm.faults_injected(), 5u);
}

TEST(FaultModel, StuckCellsAreUniqueOffDiagonalAndDeterministic) {
  FaultParams p;
  p.stuck_cells = 10;
  const auto cells_of = [&p] {
    Simulator sim;
    FaultModel fm(sim, p, 8);
    return fm.stuck_cells();
  };
  const auto cells = cells_of();
  EXPECT_EQ(cells.size(), 10u);
  std::set<std::pair<std::size_t, std::size_t>> unique(cells.begin(),
                                                       cells.end());
  EXPECT_EQ(unique.size(), cells.size());
  for (const auto& [u, v] : cells) {
    EXPECT_LT(u, 8u);
    EXPECT_LT(v, 8u);
    EXPECT_NE(u, v);
  }
  EXPECT_EQ(cells, cells_of());
}

// --- Scheduler degraded mode ----------------------------------------------

TdmScheduler::Options sched_opts(std::size_t n, std::size_t k) {
  TdmScheduler::Options o;
  o.num_ports = n;
  o.num_slots = k;
  return o;
}

TEST(SchedulerFaults, PortFaultForceReleasesAndMasks) {
  TdmScheduler sched(sched_opts(8, 4));
  sched.set_request(1, 5, true);
  sched.set_request(5, 2, true);
  sched.run_pass();
  sched.run_pass();
  ASSERT_TRUE(sched.is_established(1, 5));
  ASSERT_TRUE(sched.is_established(5, 2));

  // Port 5 dies: both the connection into it and the one out of it go.
  const auto released = sched.set_port_fault(5, true);
  EXPECT_EQ(released.size(), 2u);
  EXPECT_FALSE(sched.is_established(1, 5));
  EXPECT_FALSE(sched.is_established(5, 2));
  EXPECT_TRUE(sched.port_failed(5));
  EXPECT_EQ(sched.stats().forced_releases, 2u);

  // Requests are still latched in the request matrix but masked: no pass
  // may re-establish a connection touching the dead port.
  for (std::size_t i = 0; i < 2 * sched.num_slots(); ++i) {
    sched.run_pass();
  }
  EXPECT_FALSE(sched.is_established(1, 5));
  EXPECT_FALSE(sched.is_established(5, 2));
}

TEST(SchedulerFaults, RepairUnmasksAndReestablishes) {
  TdmScheduler sched(sched_opts(8, 4));
  sched.set_request(1, 5, true);
  sched.run_pass();
  sched.set_port_fault(5, true);
  EXPECT_FALSE(sched.is_established(1, 5));
  sched.set_port_fault(5, false);
  EXPECT_FALSE(sched.port_failed(5));
  for (std::size_t i = 0; i < sched.num_slots(); ++i) {
    sched.run_pass();
  }
  EXPECT_TRUE(sched.is_established(1, 5));
}

TEST(SchedulerFaults, PortFaultClearsPinnedSlots) {
  TdmScheduler sched(sched_opts(4, 2));
  BitMatrix cfg(4);
  cfg.set(0, 1);
  cfg.set(2, 3);
  sched.preload(0, cfg, /*pinned=*/true);
  ASSERT_TRUE(sched.is_established(0, 1));
  const auto released = sched.set_port_fault(1, true);
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0], (std::pair<std::size_t, std::size_t>{0, 1}));
  EXPECT_FALSE(sched.is_established(0, 1));
  EXPECT_TRUE(sched.is_established(2, 3));  // unrelated pair survives
}

TEST(SchedulerFaults, StuckCellBlocksEstablishment) {
  TdmScheduler sched(sched_opts(8, 4));
  EXPECT_FALSE(sched.set_stuck_cell(1, 5));  // not established yet
  EXPECT_TRUE(sched.cell_stuck(1, 5));
  sched.set_request(1, 5, true);
  sched.set_request(2, 6, true);
  for (std::size_t i = 0; i < 2 * sched.num_slots(); ++i) {
    sched.run_pass();
  }
  EXPECT_FALSE(sched.is_established(1, 5));  // stuck cell never connects
  EXPECT_TRUE(sched.is_established(2, 6));   // healthy cell unaffected
}

TEST(SchedulerFaults, StuckCellForceReleasesLiveConnection) {
  TdmScheduler sched(sched_opts(8, 4));
  sched.set_request(1, 5, true);
  sched.run_pass();
  ASSERT_TRUE(sched.is_established(1, 5));
  EXPECT_TRUE(sched.set_stuck_cell(1, 5));
  EXPECT_FALSE(sched.is_established(1, 5));
}

}  // namespace
}  // namespace pmx
