#include "switching/wormhole.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace pmx {
namespace {

using namespace pmx::literals;

SystemParams small_params(std::size_t n = 8) {
  SystemParams p;
  p.num_nodes = n;
  return p;
}

TEST(Wormhole, SingleSmallMessageTiming) {
  // One 64-byte message, idle network:
  //   10 ns NIC hand-off to contend, 80 ns arbitration + 80 ns transmission
  //   (64 B at 0.8 B/ns), then 110 ns digital path + 10 ns receive NIC.
  Simulator sim;
  WormholeNetwork net(sim, small_params());
  net.submit(0, 1, 64);
  sim.run();
  ASSERT_EQ(net.records().size(), 1u);
  const MessageRecord& rec = net.records()[0];
  EXPECT_EQ(rec.send_done.ns(), 10 + 80 + 80);
  EXPECT_EQ(rec.delivered.ns(), 170 + 110 + 10);
  EXPECT_EQ(net.counters().value("worms"), 1u);
}

TEST(Wormhole, MessageSplitsIntoWorms) {
  // 300 bytes -> worms of 128, 128, 44 (three arbitrations).
  Simulator sim;
  WormholeNetwork net(sim, small_params());
  net.submit(0, 1, 300);
  sim.run();
  EXPECT_EQ(net.counters().value("worms"), 3u);
  ASSERT_EQ(net.records().size(), 1u);
  // 10 + (80+160) + (80+160) + (80+55) = 625 send done.
  EXPECT_EQ(net.records()[0].send_done.ns(), 10 + 240 + 240 + 80 + 55);
}

TEST(Wormhole, OutputContentionSerializes) {
  Simulator sim;
  WormholeNetwork net(sim, small_params());
  net.submit(0, 2, 128);
  net.submit(1, 2, 128);
  sim.run();
  ASSERT_EQ(net.records().size(), 2u);
  // Worm time = 80 + 160 = 240 ns; the two transmissions cannot overlap.
  const auto t0 = net.records()[0].send_done;
  const auto t1 = net.records()[1].send_done;
  EXPECT_GE((t1 - t0).ns(), 240);
}

TEST(Wormhole, DistinctOutputsProceedInParallel) {
  Simulator sim;
  WormholeNetwork net(sim, small_params());
  net.submit(0, 2, 128);
  net.submit(1, 3, 128);
  sim.run();
  ASSERT_EQ(net.records().size(), 2u);
  EXPECT_EQ(net.records()[0].send_done, net.records()[1].send_done);
}

TEST(Wormhole, NoHeadOfLineBlockingAcrossVoqs) {
  // Source 0 queues a message to the contended output 2 and one to the idle
  // output 3. The paper's NIC has per-destination queues, so the message to
  // 3 must not wait for the full drain of the (long) contended stream.
  Simulator sim;
  WormholeNetwork net(sim, small_params());
  net.submit(1, 2, 2048);  // long occupancy of output 2
  net.submit(0, 2, 2048);
  net.submit(0, 3, 64);
  sim.run();
  ASSERT_EQ(net.records().size(), 3u);
  TimeNs to3{};
  TimeNs to2_from0{};
  for (const auto& rec : net.records()) {
    if (rec.msg.dst == 3) {
      to3 = rec.delivered;
    } else if (rec.msg.src == 0) {
      to2_from0 = rec.delivered;
    }
  }
  EXPECT_LT(to3, to2_from0);
}

TEST(Wormhole, WormInterleavingIsFair) {
  // Two messages to the same output interleave at worm granularity: the
  // second message's first worm gets through long before the first message
  // completes.
  Simulator sim;
  WormholeNetwork net(sim, small_params());
  net.submit(0, 2, 1024);
  net.submit(1, 2, 128);
  sim.run();
  TimeNs big{};
  TimeNs small{};
  for (const auto& rec : net.records()) {
    (rec.msg.bytes == 1024 ? big : small) = rec.delivered;
  }
  EXPECT_LT(small, big);
}

TEST(Wormhole, AllMessagesDelivered) {
  Simulator sim;
  WormholeNetwork net(sim, small_params(16));
  std::uint64_t bytes = 0;
  for (NodeId u = 0; u < 16; ++u) {
    for (NodeId v = 0; v < 16; ++v) {
      if (u != v) {
        net.submit(u, v, 8 * (u + 1));
        bytes += 8 * (u + 1);
      }
    }
  }
  sim.run();
  EXPECT_EQ(net.records().size(), 16u * 15u);
  EXPECT_EQ(net.delivered_bytes(), bytes);
  EXPECT_EQ(net.queued_bytes(), 0u);
}

TEST(Wormhole, LatencyIncludesQueueing) {
  Simulator sim;
  WormholeNetwork net(sim, small_params());
  net.submit(0, 1, 64);
  net.submit(0, 1, 64);
  sim.run();
  ASSERT_EQ(net.records().size(), 2u);
  EXPECT_GT(net.records()[1].latency(), net.records()[0].latency());
}

}  // namespace
}  // namespace pmx
