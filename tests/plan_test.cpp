#include "compiled/plan.hpp"

#include <gtest/gtest.h>

#include "traffic/mesh.hpp"
#include "traffic/patterns.hpp"

namespace pmx {
namespace {

TEST(CompiledPlan, SinglePhaseMesh) {
  const Workload w = patterns::ordered_mesh(16, 128, 2);
  const CompiledPlan plan = compile_workload(w);
  ASSERT_EQ(plan.num_phases(), 1u);
  const PhasePlan& phase = plan.phases[0];
  EXPECT_EQ(phase.degree, 4u);  // 4-regular neighbour graph
  EXPECT_EQ(phase.configs.size(), 4u);
  // Every connection carries 2 rounds * 128 bytes.
  const Mesh2D mesh = Mesh2D::square_ish(16);
  for (NodeId u = 0; u < 16; ++u) {
    for (const auto dir : Mesh2D::kDirs) {
      const NodeId v = mesh.neighbor(u, dir);
      const std::size_t cfg = phase.config_of(u, v);
      ASSERT_NE(cfg, PhasePlan::kNoConfig);
      EXPECT_TRUE(phase.configs[cfg].get(u, v));
    }
  }
  // Byte budgets sum to the workload's total.
  std::uint64_t total = 0;
  for (const auto b : phase.config_bytes) {
    total += b;
  }
  EXPECT_EQ(total, w.total_bytes());
}

TEST(CompiledPlan, TwoPhaseSplitsAtBarrier) {
  const Workload w = patterns::two_phase(16, 64, 3);
  const CompiledPlan plan = compile_workload(w);
  ASSERT_EQ(plan.num_phases(), 2u);
  EXPECT_EQ(plan.phases[0].degree, 15u);  // all-to-all
  EXPECT_LE(plan.phases[1].degree, 4u);   // nearest neighbour
  EXPECT_EQ(plan.max_degree(), 15u);
}

TEST(CompiledPlan, RepeatedPairsAggregateBytes) {
  Workload w;
  w.programs.resize(4);
  w.programs[0].push_back(Command::send(1, 100));
  w.programs[0].push_back(Command::send(1, 150));
  const CompiledPlan plan = compile_workload(w);
  const PhasePlan& phase = plan.phases[0];
  EXPECT_EQ(phase.configs.size(), 1u);
  EXPECT_EQ(phase.config_bytes[0], 250u);
}

TEST(CompiledPlan, UnknownPairReturnsNoConfig) {
  Workload w;
  w.programs.resize(4);
  w.programs[0].push_back(Command::send(1, 100));
  const CompiledPlan plan = compile_workload(w);
  EXPECT_EQ(plan.phases[0].config_of(2, 3), PhasePlan::kNoConfig);
}

TEST(CompiledPlan, EmptyPhaseHasNoConfigs) {
  Workload w;
  w.programs.resize(2);
  w.programs[0].push_back(Command::barrier());
  w.programs[0].push_back(Command::send(1, 10));
  w.programs[1].push_back(Command::barrier());
  const CompiledPlan plan = compile_workload(w);
  ASSERT_EQ(plan.num_phases(), 2u);
  EXPECT_TRUE(plan.phases[0].configs.empty());
  EXPECT_EQ(plan.phases[1].configs.size(), 1u);
}

TEST(CompiledPlan, GreedyVariantCoversSameConnections) {
  const Workload w = patterns::uniform_random(16, 64, 6, 11);
  const CompiledPlan optimal = compile_workload(w, /*optimal=*/true);
  const CompiledPlan greedy = compile_workload(w, /*optimal=*/false);
  ASSERT_EQ(optimal.num_phases(), greedy.num_phases());
  // Same pairs covered; greedy may use more configurations.
  EXPECT_GE(greedy.phases[0].configs.size(), optimal.phases[0].configs.size());
  for (NodeId u = 0; u < 16; ++u) {
    for (const auto& cmd : w.programs[u]) {
      EXPECT_NE(optimal.phases[0].config_of(u, cmd.dst), PhasePlan::kNoConfig);
      EXPECT_NE(greedy.phases[0].config_of(u, cmd.dst), PhasePlan::kNoConfig);
    }
  }
}

TEST(CompiledPlan, ComputeAndFlushCommandsIgnored) {
  using namespace pmx::literals;
  Workload w;
  w.programs.resize(2);
  w.programs[0].push_back(Command::compute(100_ns));
  w.programs[0].push_back(Command::flush());
  w.programs[0].push_back(Command::send(1, 64));
  const CompiledPlan plan = compile_workload(w);
  EXPECT_EQ(plan.phases[0].configs.size(), 1u);
}

}  // namespace
}  // namespace pmx
