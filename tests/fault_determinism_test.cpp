// Determinism guarantees of the fault subsystem:
//   1. Same seed + nonzero fault rates => bit-identical results across runs.
//   2. Fault layer force-enabled with all rates at zero => exactly the
//      timing/metrics of a run with the fault layer disabled (the reliability
//      layer is a strict no-op on the clean path).

#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "traffic/patterns.hpp"

namespace pmx {
namespace {

using namespace pmx::literals;

RunConfig faulty_config(SwitchKind kind) {
  RunConfig config;
  config.params.num_nodes = 16;
  config.params.fault.seed = 0xD15EA5Eu;
  config.params.fault.ber = 3e-4;
  config.params.fault.link_mtbf = 2'000'000_ns;
  config.params.fault.link_repair = 100'000_ns;
  config.params.fault.max_link_faults = 8;
  config.kind = kind;
  config.horizon = TimeNs{500'000'000};
  return config;
}

TEST(FaultDeterminism, SameSeedSameMetricsAllParadigms) {
  const Workload w = patterns::random_mesh(16, 512, /*rounds=*/2, /*seed=*/3);
  for (const auto kind :
       {SwitchKind::kWormhole, SwitchKind::kCircuit, SwitchKind::kDynamicTdm,
        SwitchKind::kPreloadTdm}) {
    const RunConfig config = faulty_config(kind);
    const RunResult a = run_workload(config, w);
    const RunResult b = run_workload(config, w);
    ASSERT_TRUE(a.completed) << to_string(kind);
    EXPECT_TRUE(a.metrics == b.metrics) << to_string(kind);
    EXPECT_EQ(a.sim_events, b.sim_events) << to_string(kind);
    EXPECT_EQ(a.counters, b.counters) << to_string(kind);
    // Faults actually fired, so the equality above is not vacuous.
    EXPECT_GT(a.metrics.retransmits + a.metrics.link_faults, 0u)
        << to_string(kind);
  }
}

TEST(FaultDeterminism, DifferentSeedDifferentCorruptionTimeline) {
  const Workload w = patterns::random_mesh(16, 512, /*rounds=*/4, /*seed=*/3);
  RunConfig config;
  config.params.num_nodes = 16;
  config.params.fault.ber = 5e-4;
  config.kind = SwitchKind::kWormhole;
  config.horizon = TimeNs{500'000'000};
  config.params.fault.seed = 1;
  const RunResult a = run_workload(config, w);
  config.params.fault.seed = 2;
  const RunResult b = run_workload(config, w);
  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(b.completed);
  // Same workload, same rates -- but independent draws, so the corruption
  // pattern (and thus the retransmit timeline and makespan) differs.
  EXPECT_FALSE(a.metrics == b.metrics);
}

TEST(FaultDeterminism, ZeroRatesReproduceFaultFreeRunExactly) {
  const Workload w = patterns::random_mesh(16, 512, /*rounds=*/2, /*seed=*/5);
  // Preload-TDM is excluded deliberately: its phase-hold logic defers phase
  // advancement to message settlement when the fault layer is active, which
  // legitimately reorders events even when no fault ever fires.
  for (const auto kind :
       {SwitchKind::kWormhole, SwitchKind::kCircuit, SwitchKind::kDynamicTdm}) {
    RunConfig off;
    off.params.num_nodes = 16;
    off.kind = kind;
    const RunResult base = run_workload(off, w);

    RunConfig on = off;
    on.params.fault.force_enable = true;  // layer active, every rate zero
    const RunResult idle = run_workload(on, w);

    ASSERT_TRUE(base.completed) << to_string(kind);
    ASSERT_TRUE(idle.completed) << to_string(kind);
    EXPECT_EQ(base.metrics.makespan, idle.metrics.makespan) << to_string(kind);
    EXPECT_EQ(base.metrics.total_bytes, idle.metrics.total_bytes)
        << to_string(kind);
    EXPECT_EQ(base.metrics.messages, idle.metrics.messages) << to_string(kind);
    EXPECT_DOUBLE_EQ(base.metrics.throughput, idle.metrics.throughput)
        << to_string(kind);
    EXPECT_DOUBLE_EQ(base.metrics.avg_latency_ns, idle.metrics.avg_latency_ns)
        << to_string(kind);
    EXPECT_DOUBLE_EQ(base.metrics.p99_latency_ns, idle.metrics.p99_latency_ns)
        << to_string(kind);
    EXPECT_DOUBLE_EQ(base.metrics.max_latency_ns, idle.metrics.max_latency_ns)
        << to_string(kind);
    // The reliability layer saw traffic but never had to act.
    EXPECT_EQ(idle.metrics.retransmits, 0u) << to_string(kind);
    EXPECT_EQ(idle.metrics.crc_corruptions, 0u) << to_string(kind);
    EXPECT_DOUBLE_EQ(idle.metrics.wire_throughput, idle.metrics.goodput)
        << to_string(kind);
  }
}

TEST(FaultDeterminism, DisabledFaultParamsLeaveNetworkUntouched) {
  RunConfig config;
  config.params.num_nodes = 8;
  config.kind = SwitchKind::kDynamicTdm;
  ASSERT_FALSE(config.params.fault.enabled());
  const Workload w = patterns::all_to_all(8, 256);
  const RunResult result = run_workload(config, w);
  ASSERT_TRUE(result.completed);
  EXPECT_DOUBLE_EQ(result.metrics.wire_throughput, 0.0);
  EXPECT_DOUBLE_EQ(result.metrics.goodput, 0.0);
  EXPECT_EQ(result.counter("retransmits"), 0u);
}

}  // namespace
}  // namespace pmx
