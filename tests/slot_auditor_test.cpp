// Unit tests of the periodic slot-state auditor: period accounting, strict
// vs recovery mode, resync hook invocation, and recovery-episode latency
// bookkeeping.

#include "switching/slot_auditor.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace pmx {
namespace {

using namespace pmx::literals;

constexpr TimeNs kSlot{100};

TEST(AuditParams, RejectsZeroPeriod) {
  AuditParams p;
  p.period_slots = 0;
  EXPECT_DEATH(p.validate(), "at least one slot");
}

TEST(SlotAuditor, AuditsOncePerPeriod) {
  Simulator sim;
  AuditParams p;
  p.enabled = true;
  p.period_slots = 4;  // audit every 400 ns
  SlotAuditor auditor(sim, p, kSlot);
  auditor.add_check("noop", [](std::vector<std::string>&) {});
  auditor.start();
  sim.run_until(4'000_ns);
  // First audit one period after start, then every period: 400, 800, ...
  EXPECT_EQ(auditor.stats().audits, 10u);
  EXPECT_EQ(auditor.stats().violations, 0u);
  EXPECT_EQ(auditor.stats().resyncs, 0u);
}

TEST(SlotAuditor, ChecksRunInOrderAndViolationsArePrefixed) {
  Simulator sim;
  AuditParams p;
  p.enabled = true;
  SlotAuditor auditor(sim, p, kSlot);
  auditor.add_check("first", [](std::vector<std::string>& out) {
    out.push_back("alpha");
  });
  auditor.add_check("second", [](std::vector<std::string>& out) {
    out.push_back("beta");
  });
  auditor.audit_now();
  ASSERT_EQ(auditor.last_violations().size(), 2u);
  EXPECT_EQ(auditor.last_violations()[0], "first: alpha");
  EXPECT_EQ(auditor.last_violations()[1], "second: beta");
  EXPECT_EQ(auditor.stats().violating_audits, 1u);
  EXPECT_EQ(auditor.stats().violations, 2u);
}

TEST(SlotAuditor, RecoveryModeInvokesResyncPerViolatingAudit) {
  Simulator sim;
  AuditParams p;
  p.enabled = true;
  p.period_slots = 1;
  SlotAuditor auditor(sim, p, kSlot);
  bool broken = true;
  auditor.add_check("state", [&broken](std::vector<std::string>& out) {
    if (broken) {
      out.push_back("divergence");
    }
  });
  int resyncs = 0;
  auditor.set_resync([&] {
    // The second resync repairs the modeled divergence.
    if (++resyncs == 2) {
      broken = false;
    }
  });
  auditor.start();
  sim.run_until(1'000_ns);
  EXPECT_EQ(resyncs, 2);
  EXPECT_EQ(auditor.stats().resyncs, 2u);
  EXPECT_EQ(auditor.stats().violating_audits, 2u);
}

TEST(SlotAuditor, RecoveryLatencySpansEpisodeFromFirstViolationToClean) {
  Simulator sim;
  AuditParams p;
  p.enabled = true;
  p.period_slots = 1;
  SlotAuditor auditor(sim, p, kSlot);
  bool broken = false;
  auditor.add_check("state", [&broken](std::vector<std::string>& out) {
    if (broken) {
      out.push_back("divergence");
    }
  });
  auditor.start();
  // Break at 150 ns: audits at 200..500 violate, 600 onward are clean. The
  // episode opens at the first violating audit (200) and closes at the
  // first clean one (600): 400 ns.
  sim.schedule_at(TimeNs{150}, [&] { broken = true; });
  sim.schedule_at(TimeNs{550}, [&] { broken = false; });
  sim.run_until(1'000_ns);
  EXPECT_EQ(auditor.stats().recoveries, 1u);
  EXPECT_EQ(auditor.stats().recovery_total, TimeNs{400});
  EXPECT_EQ(auditor.stats().recovery_max, TimeNs{400});
  EXPECT_EQ(auditor.stats().violating_audits, 4u);
}

TEST(SlotAuditorDeathTest, StrictModeAbortsOnFirstViolation) {
  EXPECT_DEATH(
      {
        Simulator sim;
        AuditParams p;
        p.enabled = true;
        p.strict = true;
        SlotAuditor auditor(sim, p, kSlot);
        auditor.add_check("state", [](std::vector<std::string>& out) {
          out.push_back("leaked crosspoint");
        });
        auditor.audit_now();
      },
      "slot audit failed");
}

}  // namespace
}  // namespace pmx
