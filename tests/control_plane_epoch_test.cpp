// Epoch wraparound hardening of the control-plane resync machinery. The
// resync epoch is a free-running counter compared only for equality, so
// wrapping 2^64 must be invisible: in-flight invalidation, watchdog
// re-arming, and delivery all keep working across the wrap. The soak
// drives thousands of resyncs through a counter parked just below the
// wrap point.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "common/stats.hpp"
#include "fault/control_fault.hpp"
#include "nic/control_plane.hpp"
#include "sim/simulator.hpp"
#include "switching/tdm.hpp"
#include "traffic/patterns.hpp"

#include "core/experiment.hpp"

namespace pmx {
namespace {

constexpr std::uint64_t kMaxEpoch = std::numeric_limits<std::uint64_t>::max();

ControlFaultParams lossless() {
  ControlFaultParams p;
  p.force_enable = true;  // all rates zero: a perfect but epoch-guarded wire
  return p;
}

struct PlaneHarness {
  Simulator sim;
  ControlFaultParams params = lossless();
  ControlFaultModel ctrl;
  CounterSet counters;
  ControlPlane plane;
  std::uint64_t requests = 0;
  std::uint64_t releases = 0;

  PlaneHarness()
      : ctrl(sim, params, TimeNs{100}),
        plane(sim, ctrl,
              ControlPlane::Options{/*num_nodes=*/4,
                                    /*wire_latency=*/TimeNs{80},
                                    /*grant_line=*/true, /*heal=*/true},
              counters, [this](NodeId, NodeId, bool value) {
                value ? ++requests : ++releases;
              }) {}
};

TEST(ControlPlaneEpoch, SoakThousandsOfResyncsAcrossTheWrap) {
  PlaneHarness h;
  h.plane.jump_epoch(kMaxEpoch - 1000);
  constexpr std::uint64_t kIterations = 3000;
  for (std::uint64_t i = 0; i < kIterations; ++i) {
    h.plane.want(0, 1);
    h.sim.run_until(h.sim.now() + TimeNs{300});  // inside the 500 ns watchdog
    h.plane.unwant(0, 1);
    h.sim.run_until(h.sim.now() + TimeNs{300});
    // Quiesced between iterations: nothing left to invalidate.
    EXPECT_EQ(h.plane.begin_resync(), 0u);
    h.plane.force_state(0, 1, /*wants=*/false, /*granted=*/false);
  }
  // Every request/release arrived, on both sides of the wrap.
  EXPECT_EQ(h.requests, kIterations);
  EXPECT_EQ(h.releases, kIterations);
  // The counter really did wrap: max - 1000 + 3000 mod 2^64.
  EXPECT_EQ(h.plane.epoch(), 1999u);
}

TEST(ControlPlaneEpoch, InFlightMessageGoesStaleAcrossTheWrapItself) {
  PlaneHarness h;
  h.plane.jump_epoch(kMaxEpoch);  // the very next resync wraps to zero
  h.plane.want(0, 1);             // request now in flight (80 ns wire)
  EXPECT_EQ(h.plane.begin_resync(), 1u);
  EXPECT_EQ(h.plane.epoch(), 0u);  // wrapped
  h.plane.force_state(0, 1, /*wants=*/true, /*granted=*/false);
  h.sim.run_until(TimeNs{200});
  // The pre-wrap delivery was invalidated, not double-applied: the
  // scheduler has not heard the request yet.
  EXPECT_EQ(h.requests, 0u);
  // The re-armed watchdog reissues under the post-wrap epoch and the
  // request eventually lands.
  h.sim.run_until(TimeNs{100'000});
  EXPECT_GE(h.requests, 1u);
}

TEST(ControlPlaneEpoch, ReoptResyncsCarryANetworkAcrossTheWrap) {
  // Poison-every-proposal re-optimization makes every service cycle an
  // apply + rollback pair, each of which runs the A7 resync path and bumps
  // the epoch. Parked just below 2^64, the run crosses the wrap while
  // traffic is in flight and must still deliver everything.
  const Workload workload = patterns::random_mesh(16, 256, 8, 3);
  Simulator sim;
  SystemParams params;
  params.num_nodes = 16;
  params.ctrl.force_enable = true;  // lossless, but epoch-guarded channel
  params.reopt.period_slots = 8;
  params.reopt.chaos_empty_every = 1;
  params.audit.enabled = true;
  params.audit.strict = false;
  params.fault.force_enable = true;
  TdmNetwork net(sim, params);
  ASSERT_NE(net.control_plane(), nullptr);
  net.control_plane()->jump_epoch(kMaxEpoch - 3);

  TrafficDriver driver(sim, net, workload, SendMode::kEager);
  driver.start();
  sim.run_until(TimeNs{500'000'000});
  EXPECT_TRUE(driver.finished());
  EXPECT_EQ(net.delivered_count(), workload.num_messages());
  // At least two poison cycles ran (four epoch bumps), so the counter is
  // far below its parked pre-wrap value: it wrapped and kept counting.
  EXPECT_GE(net.reopt_stats()->rollbacks, 2u);
  EXPECT_LT(net.control_plane()->epoch(), 1'000'000u);
}

}  // namespace
}  // namespace pmx
