#include "sched/sl_array.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sched/presched.hpp"

namespace pmx {
namespace {

// Table 2, row by row.
TEST(SlCell, NoChangePassesAvailabilityThrough) {
  for (const bool a : {false, true}) {
    for (const bool d : {false, true}) {
      const auto out = sl_cell(false, false, a, d);
      EXPECT_FALSE(out.toggle);
      EXPECT_EQ(out.a_out, a);
      EXPECT_EQ(out.d_out, d);
    }
  }
}

TEST(SlCell, ReleaseFreesBothPorts) {
  // L=1, connection present in slot: its own ports show occupied (1,1);
  // release toggles and propagates availability (0,0).
  const auto out = sl_cell(true, true, true, true);
  EXPECT_TRUE(out.toggle);
  EXPECT_FALSE(out.a_out);
  EXPECT_FALSE(out.d_out);
}

TEST(SlCell, EstablishOccupiesBothPorts) {
  const auto out = sl_cell(true, false, false, false);
  EXPECT_TRUE(out.toggle);
  EXPECT_TRUE(out.a_out);
  EXPECT_TRUE(out.d_out);
}

TEST(SlCell, BlockedWhenOutputBusy) {
  const auto out = sl_cell(true, false, true, false);
  EXPECT_FALSE(out.toggle);
  EXPECT_TRUE(out.a_out);
  EXPECT_FALSE(out.d_out);
}

TEST(SlCell, BlockedWhenInputBusy) {
  const auto out = sl_cell(true, false, false, true);
  EXPECT_FALSE(out.toggle);
  EXPECT_FALSE(out.a_out);
  EXPECT_TRUE(out.d_out);
}

TEST(SlCell, BlockedWhenBothBusy) {
  // This is the case Table 2 leaves implicit: without the b_s input the
  // cell would wrongly match the "release" row and toggle 0 -> 1.
  const auto out = sl_cell(true, false, true, true);
  EXPECT_FALSE(out.toggle);
  EXPECT_TRUE(out.a_out);
  EXPECT_TRUE(out.d_out);
}

namespace {

/// Apply a pass result to a config and return the updated matrix.
BitMatrix apply(const BitMatrix& config, const SlPassResult& pass) {
  BitMatrix next = config;
  for (std::size_t u = 0; u < config.size(); ++u) {
    for (std::size_t v = 0; v < config.size(); ++v) {
      if (pass.toggles.get(u, v)) {
        next.toggle(u, v);
      }
    }
  }
  return next;
}

}  // namespace

TEST(SlArray, EstablishesNonConflictingRequests) {
  const std::size_t n = 4;
  BitMatrix empty(n);
  BitMatrix l(n);
  l.set(0, 1);
  l.set(1, 0);
  l.set(2, 3);
  const auto pass = sl_array_pass(l, empty, 0, 0);
  EXPECT_EQ(pass.establishes, 3u);
  EXPECT_EQ(pass.releases, 0u);
  EXPECT_EQ(pass.blocked, 0u);
  const BitMatrix next = apply(empty, pass);
  EXPECT_TRUE(next.get(0, 1));
  EXPECT_TRUE(next.get(1, 0));
  EXPECT_TRUE(next.get(2, 3));
  EXPECT_TRUE(next.is_partial_permutation());
}

TEST(SlArray, ConflictingRequestsGrantOnePerPort) {
  const std::size_t n = 4;
  BitMatrix empty(n);
  BitMatrix l(n);
  l.set(0, 2);
  l.set(1, 2);
  l.set(3, 2);  // three inputs want output 2
  const auto pass = sl_array_pass(l, empty, 0, 0);
  EXPECT_EQ(pass.establishes, 1u);
  EXPECT_EQ(pass.blocked, 2u);
  const BitMatrix next = apply(empty, pass);
  EXPECT_TRUE(next.get(0, 2));  // lowest row index wins with origin 0
  EXPECT_TRUE(next.is_partial_permutation());
}

TEST(SlArray, PriorityRotationChangesWinner) {
  const std::size_t n = 4;
  BitMatrix empty(n);
  BitMatrix l(n);
  l.set(0, 2);
  l.set(1, 2);
  l.set(3, 2);
  // Wavefront origin at row 3: request from input 3 sees the ports first.
  const auto pass = sl_array_pass(l, empty, 3, 3);
  const BitMatrix next = apply(empty, pass);
  EXPECT_TRUE(next.get(3, 2));
  EXPECT_FALSE(next.get(0, 2));
}

TEST(SlArray, OneRequestPerInput) {
  const std::size_t n = 4;
  BitMatrix empty(n);
  BitMatrix l(n);
  l.set(1, 0);
  l.set(1, 2);
  l.set(1, 3);  // one input wants three outputs
  const auto pass = sl_array_pass(l, empty, 0, 0);
  EXPECT_EQ(pass.establishes, 1u);
  EXPECT_EQ(pass.blocked, 2u);
  const BitMatrix next = apply(empty, pass);
  EXPECT_TRUE(next.get(1, 0));  // lowest column wins with origin 0
}

TEST(SlArray, ReleaseMakesPortAvailableLaterInWavefront) {
  // Input 0 releases (0,1); input 2 requests (2,1) in the same pass.
  // Because availability propagates upward from row 0, the freed output is
  // visible to row 2.
  const std::size_t n = 4;
  BitMatrix config(n);
  config.set(0, 1);
  BitMatrix l(n);
  l.set(0, 1);  // release (R dropped)
  l.set(2, 1);  // establish request
  const auto pass = sl_array_pass(l, config, 0, 0);
  EXPECT_EQ(pass.releases, 1u);
  EXPECT_EQ(pass.establishes, 1u);
  const BitMatrix next = apply(config, pass);
  EXPECT_FALSE(next.get(0, 1));
  EXPECT_TRUE(next.get(2, 1));
}

TEST(SlArray, ReleaseAfterRequesterInWavefrontDoesNotHelp) {
  // Same as above but the releasing row comes later in the wavefront: the
  // combinational array cannot look ahead, so the request stays blocked
  // this pass (it will succeed next pass). This mirrors real hardware.
  const std::size_t n = 4;
  BitMatrix config(n);
  config.set(3, 1);
  BitMatrix l(n);
  l.set(3, 1);  // release, but row 3 is last in wavefront order from 0
  l.set(2, 1);  // establish request at row 2
  const auto pass = sl_array_pass(l, config, 0, 0);
  EXPECT_EQ(pass.releases, 1u);
  EXPECT_EQ(pass.establishes, 0u);
  EXPECT_EQ(pass.blocked, 1u);
}

// Property suite: for random request/config states the pass must never
// produce a conflicted configuration, never release a connection that was
// requested, and never establish one that wasn't.
class SlArrayPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(SlArrayPropertyTest, PassPreservesInvariants) {
  const auto [n, seed] = GetParam();
  Rng rng(seed);
  // Random valid slot config.
  BitMatrix config(n);
  const auto perm = rng.permutation(n);
  for (std::size_t u = 0; u < n; ++u) {
    if (rng.chance(0.5)) {
      config.set(u, perm[u]);
    }
  }
  // Random requests; also request some of the existing connections so both
  // establish and release cases appear.
  BitMatrix requests(n);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = 0; v < n; ++v) {
      if (rng.chance(0.15)) {
        requests.set(u, v);
      }
    }
  }
  const BitMatrix l = preschedule(requests, config, config);
  const std::size_t origin = static_cast<std::size_t>(rng.below(n));
  const auto pass = sl_array_pass(l, config, origin, origin);
  const BitMatrix next = apply(config, pass);

  EXPECT_TRUE(next.is_partial_permutation());
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = 0; v < n; ++v) {
      if (next.get(u, v) && !config.get(u, v)) {
        // Newly established: must have been requested and not conflict.
        EXPECT_TRUE(requests.get(u, v));
      }
      if (!next.get(u, v) && config.get(u, v)) {
        // Released: must not have been requested.
        EXPECT_FALSE(requests.get(u, v));
      }
      if (config.get(u, v) && requests.get(u, v)) {
        // Requested existing connections stay.
        EXPECT_TRUE(next.get(u, v));
      }
    }
  }
  // Releases must be total: any connection with R=0 is removed this pass.
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = 0; v < n; ++v) {
      if (config.get(u, v) && !requests.get(u, v)) {
        EXPECT_FALSE(next.get(u, v));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomStates, SlArrayPropertyTest,
    ::testing::Combine(::testing::Values<std::size_t>(2, 4, 8, 16, 32, 128),
                       ::testing::Values<std::uint64_t>(1, 2, 3, 4, 5)));

// Work conservation: after a pass on an empty slot with a dense request
// matrix, no input and output can both be idle while a request between them
// was blocked.
TEST(SlArray, WorkConservingOnEmptySlot) {
  const std::size_t n = 16;
  Rng rng(4242);
  for (int trial = 0; trial < 10; ++trial) {
    BitMatrix empty(n);
    BitMatrix requests(n);
    for (std::size_t u = 0; u < n; ++u) {
      for (std::size_t v = 0; v < n; ++v) {
        if (rng.chance(0.3)) {
          requests.set(u, v);
        }
      }
    }
    const BitMatrix l = preschedule(requests, empty, empty);
    const auto pass = sl_array_pass(l, empty, 0, 0);
    const BitMatrix next = apply(empty, pass);
    for (std::size_t u = 0; u < n; ++u) {
      for (std::size_t v = 0; v < n; ++v) {
        if (requests.get(u, v) && !next.get(u, v)) {
          // Blocked: at least one of its ports must be in use.
          EXPECT_TRUE(next.row_any(u) || next.col_any(v))
              << "request (" << u << "," << v
              << ") blocked with both ports idle";
        }
      }
    }
  }
}

}  // namespace
}  // namespace pmx
