// End-to-end control-plane hardening on the dynamic TDM paradigm: scripted
// request/grant/release losses healed by the NIC watchdog and the scheduler
// lease, strict-mode audits proving that leaks/wedges really happen when the
// healing is off, and auditor-driven resync as the recovery of last resort.

#include <gtest/gtest.h>

#include "fault/control_fault.hpp"
#include "sim/simulator.hpp"
#include "switching/slot_auditor.hpp"
#include "switching/tdm.hpp"

namespace pmx {
namespace {

using namespace pmx::literals;

SystemParams ctrl_params(bool heal = true, bool audit = false,
                         bool strict = false) {
  SystemParams p;
  p.num_nodes = 8;
  p.mux_degree = 4;
  p.ctrl.force_enable = true;  // all rates zero: faults are scripted
  p.ctrl.heal = heal;
  p.audit.enabled = audit;
  p.audit.period_slots = 4;
  p.audit.strict = strict;
  return p;
}

TEST(ControlPlane, LosslessChannelDeliversWithoutRerequests) {
  Simulator sim;
  TdmNetwork net(sim, ctrl_params());
  net.submit(0, 1, 64);
  net.submit(2, 3, 256);
  sim.run_until(100_us);
  EXPECT_EQ(net.delivered_count(), 2u);
  EXPECT_EQ(net.counters().value("ctrl_rerequests"), 0u);
  EXPECT_EQ(net.counters().value("lease_expiries"), 0u);
  EXPECT_EQ(net.control_fault()->total_dropped(), 0u);
  EXPECT_GT(net.control_fault()->total_sent(), 0u);
}

TEST(ControlPlane, LostRequestHealedByWatchdogReissue) {
  Simulator sim;
  TdmNetwork net(sim, ctrl_params());
  net.control_fault()->force_drop(CtrlMsg::kRequest, 1);
  net.submit(0, 1, 64);
  sim.run_until(100_us);
  EXPECT_EQ(net.delivered_count(), 1u);
  EXPECT_GE(net.counters().value("ctrl_rerequests"), 1u);
  // The reissue costs at least one watchdog timeout before the scheduler
  // even hears about the request.
  EXPECT_GE(net.records()[0].delivered.ns(), 500);
}

TEST(ControlPlane, LostGrantHealedByWatchdogReissue) {
  Simulator sim;
  TdmNetwork net(sim, ctrl_params());
  net.control_fault()->force_drop(CtrlMsg::kGrant, 1);
  net.submit(0, 1, 64);
  sim.run_until(100_us);
  EXPECT_EQ(net.delivered_count(), 1u);
  // The scheduler established the connection but the NIC never heard: it
  // stalls through its slots until the watchdog re-request triggers a fresh
  // grant.
  EXPECT_GE(net.counters().value("grant_stalls"), 1u);
  EXPECT_GE(net.counters().value("ctrl_rerequests"), 1u);
}

TEST(ControlPlane, LostReleaseHealedByLeaseExpiry) {
  Simulator sim;
  TdmNetwork net(sim, ctrl_params(/*heal=*/true, /*audit=*/true));
  net.control_fault()->force_drop(CtrlMsg::kRelease, 1);
  net.submit(0, 1, 64);
  sim.run_until(100_us);
  EXPECT_EQ(net.delivered_count(), 1u);
  // The scheduler kept serving slots to a dead pair until the idle lease
  // ran out, then reclaimed the hold on its own.
  EXPECT_EQ(net.counters().value("lease_expiries"), 1u);
  // After the expiry the views agree again: the periodic audit stays clean
  // and no resync was ever needed.
  net.auditor()->audit_now();
  EXPECT_TRUE(net.auditor()->last_violations().empty());
  EXPECT_EQ(net.auditor()->stats().resyncs, 0u);
}

TEST(ControlPlaneDeathTest, LostReleaseWithoutHealingLeaksTheHold) {
  // Healing off + strict audit: the lost release leaves the scheduler
  // serving a request no NIC wants, forever. The audit must catch it.
  EXPECT_DEATH(
      {
        Simulator sim;
        TdmNetwork net(sim, ctrl_params(/*heal=*/false, /*audit=*/true,
                                        /*strict=*/true));
        net.control_fault()->force_drop(CtrlMsg::kRelease, 1);
        net.submit(0, 1, 64);
        sim.run_until(100_us);
      },
      "slot audit failed");
}

TEST(ControlPlaneDeathTest, LostRequestWithoutHealingWedgesTheNic) {
  // Healing off + strict audit: the lost request leaves the NIC waiting on
  // a grant the scheduler will never send.
  EXPECT_DEATH(
      {
        Simulator sim;
        TdmNetwork net(sim, ctrl_params(/*heal=*/false, /*audit=*/true,
                                        /*strict=*/true));
        net.control_fault()->force_drop(CtrlMsg::kRequest, 1);
        net.submit(0, 1, 64);
        sim.run_until(100_us);
      },
      "slot audit failed");
}

TEST(ControlPlane, AuditorResyncRescuesWedgedNicWithoutHealing) {
  Simulator sim;
  TdmNetwork net(sim, ctrl_params(/*heal=*/false, /*audit=*/true));
  net.control_fault()->force_drop(CtrlMsg::kRequest, 1);
  net.submit(0, 1, 64);
  sim.run_until(100_us);
  // No watchdog, no lease -- only the auditor's full NIC <-> scheduler
  // resync can rebuild the request matrix from VOQ ground truth.
  EXPECT_EQ(net.delivered_count(), 1u);
  EXPECT_GE(net.auditor()->stats().resyncs, 1u);
  EXPECT_GE(net.auditor()->stats().recoveries, 1u);
  net.auditor()->audit_now();
  EXPECT_TRUE(net.auditor()->last_violations().empty());
}

TEST(ControlPlane, AuditorResyncRescuesLeakedHoldWithoutHealing) {
  Simulator sim;
  TdmNetwork net(sim, ctrl_params(/*heal=*/false, /*audit=*/true));
  net.control_fault()->force_drop(CtrlMsg::kRelease, 1);
  net.submit(0, 1, 64);
  sim.run_until(100_us);
  EXPECT_EQ(net.delivered_count(), 1u);
  EXPECT_GE(net.auditor()->stats().resyncs, 1u);
  net.auditor()->audit_now();
  EXPECT_TRUE(net.auditor()->last_violations().empty());
}

TEST(ControlPlane, DelayedGrantIsNotMistakenForALostOne) {
  Simulator sim;
  SystemParams p = ctrl_params();
  p.ctrl.delay = TimeNs{300};  // under the 500 ns watchdog timeout
  TdmNetwork net(sim, p);
  net.control_fault()->force_delay(CtrlMsg::kGrant, 1);
  net.submit(0, 1, 64);
  sim.run_until(100_us);
  EXPECT_EQ(net.delivered_count(), 1u);
  // The grant arrived late but before the watchdog fired: no reissue.
  EXPECT_EQ(net.counters().value("ctrl_rerequests"), 0u);
}

}  // namespace
}  // namespace pmx
