#include "switching/circuit.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace pmx {
namespace {

SystemParams small_params(std::size_t n = 8) {
  SystemParams p;
  p.num_nodes = n;
  return p;
}

TEST(Circuit, SingleMessageTiming) {
  // Establishment: 10 ns NIC + 80 ns request wire + 80 ns scheduling +
  // 80 ns grant wire = 250 ns; then 2048 B at 0.8 B/ns = 2560 ns;
  // delivery adds the 100 ns passive path + 10 ns receive NIC.
  Simulator sim;
  CircuitNetwork net(sim, small_params());
  net.submit(0, 1, 2048);
  sim.run();
  ASSERT_EQ(net.records().size(), 1u);
  const auto& rec = net.records()[0];
  EXPECT_EQ(rec.send_done.ns(), 250 + 2560);
  EXPECT_EQ(rec.delivered.ns(), 250 + 2560 + 100 + 10);
  EXPECT_EQ(net.counters().value("circuits_established"), 1u);
}

TEST(Circuit, SmallMessageDominatedByEstablishment) {
  Simulator sim;
  CircuitNetwork net(sim, small_params());
  net.submit(0, 1, 8);
  sim.run();
  const auto& rec = net.records()[0];
  // 250 ns of control for 10 ns of data.
  EXPECT_EQ(rec.send_done.ns(), 250 + 10);
}

TEST(Circuit, PerMessageReestablishment) {
  Simulator sim;
  CircuitNetwork net(sim, small_params());
  net.submit(0, 1, 64);
  net.submit(0, 1, 64);
  sim.run();
  // Without circuit holding, the second message pays establishment again.
  EXPECT_EQ(net.counters().value("circuits_established"), 2u);
  EXPECT_EQ(net.counters().value("circuit_reuses"), 0u);
}

TEST(Circuit, HoldingReusesCircuitForSameDestination) {
  Simulator sim;
  CircuitNetwork::Options options;
  options.hold_circuits = true;
  CircuitNetwork net(sim, small_params(), options);
  net.submit(0, 1, 64);
  net.submit(0, 1, 64);
  net.submit(0, 1, 64);
  sim.run();
  EXPECT_EQ(net.counters().value("circuits_established"), 1u);
  EXPECT_EQ(net.counters().value("circuit_reuses"), 2u);
  EXPECT_EQ(net.records().size(), 3u);
}

TEST(Circuit, HoldingTornDownOnDestinationChange) {
  Simulator sim;
  CircuitNetwork::Options options;
  options.hold_circuits = true;
  CircuitNetwork net(sim, small_params(), options);
  net.submit(0, 1, 64);
  net.submit(0, 2, 64);
  sim.run();
  EXPECT_EQ(net.counters().value("circuits_established"), 2u);
  EXPECT_EQ(net.records().size(), 2u);
}

TEST(Circuit, OutputContentionQueuesFifo) {
  Simulator sim;
  CircuitNetwork net(sim, small_params());
  net.submit(0, 3, 512);
  net.submit(1, 3, 512);
  net.submit(2, 3, 512);
  sim.run();
  ASSERT_EQ(net.records().size(), 3u);
  EXPECT_EQ(net.counters().value("circuit_waits"), 2u);
  // Transfers to one output cannot overlap: successive send_done at least
  // one transmission apart.
  std::vector<std::int64_t> done;
  for (const auto& rec : net.records()) {
    done.push_back(rec.send_done.ns());
  }
  std::sort(done.begin(), done.end());
  EXPECT_GE(done[1] - done[0], 640);
  EXPECT_GE(done[2] - done[1], 640);
}

TEST(Circuit, DisjointCircuitsOverlap) {
  Simulator sim;
  CircuitNetwork net(sim, small_params());
  net.submit(0, 2, 512);
  net.submit(1, 3, 512);
  sim.run();
  EXPECT_EQ(net.records()[0].send_done, net.records()[1].send_done);
}

TEST(Circuit, IdleSourceReleasesHeldCircuit) {
  Simulator sim;
  CircuitNetwork::Options options;
  options.hold_circuits = true;
  CircuitNetwork net(sim, small_params(), options);
  net.submit(0, 3, 64);
  sim.run();
  // Source 0 went idle and released; source 1 must be able to reach 3.
  net.submit(1, 3, 64);
  sim.run();
  EXPECT_EQ(net.records().size(), 2u);
  EXPECT_EQ(net.counters().value("circuit_waits"), 0u);
}

TEST(Circuit, PerSourceFifoOrdering) {
  Simulator sim;
  CircuitNetwork net(sim, small_params());
  net.submit(0, 1, 64);
  net.submit(0, 2, 64);
  sim.run();
  ASSERT_EQ(net.records().size(), 2u);
  EXPECT_EQ(net.records()[0].msg.dst, 1u);
  EXPECT_EQ(net.records()[1].msg.dst, 2u);
  EXPECT_LT(net.records()[0].send_done, net.records()[1].send_done);
}

TEST(Circuit, WaiterListBoundedAtOneSlotPerSource) {
  // Every source in the system contends for output 7 at once: the waiter
  // list absorbs the full source population minus the winner, exactly its
  // structural capacity, and every message still delivers. The capacity
  // PMX_CHECK in enqueue_waiter fires (aborting the test) if any source
  // ever occupies more than one slot.
  Simulator sim;
  CircuitNetwork net(sim, small_params());
  for (NodeId src = 0; src < 7; ++src) {
    net.submit(src, 7, 256);
  }
  sim.run();
  EXPECT_EQ(net.records().size(), 7u);
  EXPECT_EQ(net.counters().value("circuit_waits"), 6u);
}

TEST(Circuit, RetransmittedRequestKeepsSingleWaiterSlot) {
  // Regression for the retransmit-waiter bound: source 1 holds output 3 for
  // a long transfer while source 0's grant is lost, so 0's watchdog
  // retransmits the request several times against the still-busy output.
  // Each retransmission finds source 0 already parked and must not grow the
  // waiter list or recount the wait.
  Simulator sim;
  SystemParams p = small_params();
  p.ctrl.force_enable = true;  // all rates zero: the drop is scripted
  CircuitNetwork net(sim, p);
  net.submit(1, 3, 8192);  // ~10 us transfer holds output 3
  // Lose the first grant sent to a requester of the busy output's epoch;
  // source 0 then re-requests on watchdog timeouts (500 ns, 1 us, ...)
  // while 1's transfer is still in flight.
  net.control_fault()->force_drop(CtrlMsg::kGrant, 1);
  net.submit(0, 3, 64);
  sim.run_until(TimeNs{200'000});
  EXPECT_EQ(net.delivered_count(), 2u);
  EXPECT_EQ(net.counters().value("circuit_waits"), 1u);
  EXPECT_GE(net.counters().value("ctrl_rerequests"), 1u);
}

}  // namespace
}  // namespace pmx
