// ARQ duplicate-suppression regression: a scripted ACK corruption forces the
// sender down the timeout-retransmission path even though the original copy
// was delivered and recorded long before -- the retransmit arrives "past"
// the original delivery and must be recognized as a duplicate, keeping the
// message ledger (injected = delivered + dropped + in-flight) exactly
// balanced.

#include <gtest/gtest.h>

#include "fault/fault_model.hpp"
#include "sim/simulator.hpp"
#include "switching/slot_auditor.hpp"
#include "switching/wormhole.hpp"

namespace pmx {
namespace {

using namespace pmx::literals;

SystemParams arq_params() {
  SystemParams p;
  p.num_nodes = 4;
  p.fault.force_enable = true;  // reliability layer on, all rates zero
  p.fault.retry_budget = 8;
  p.fault.backoff_base = 200_ns;
  p.fault.backoff_cap = 800_ns;
  return p;
}

TEST(ArqReorder, ForcedAckCorruptionRacesDuplicateAgainstRecordedOriginal) {
  Simulator sim;
  WormholeNetwork net(sim, arq_params());
  // Script exactly one ACK corruption: the original delivery records clean,
  // its ACK dies, the sender times out and retransmits into a receiver
  // that finished with this message long ago.
  net.fault_model()->force_corrupt_acks(1);
  net.submit(0, 1, 128);
  sim.run_until(100_us);
  EXPECT_EQ(net.delivered_count(), 1u);  // exactly once, not twice
  EXPECT_EQ(net.counters().value("acks_lost"), 1u);
  EXPECT_EQ(net.counters().value("retransmits"), 1u);
  EXPECT_EQ(net.counters().value("duplicates_suppressed"), 1u);
  EXPECT_EQ(net.outstanding_reliable(), 0u);
  EXPECT_EQ(net.dropped_messages(), 0u);
  // The duplicate copy still crossed the wire: wire bytes exceed goodput.
  EXPECT_GT(net.wire_bytes(), net.delivered_bytes());
}

TEST(ArqReorder, RepeatedAckLossSuppressesEveryLateDuplicate) {
  Simulator sim;
  WormholeNetwork net(sim, arq_params());
  // Lose the first five ACKs of the same message: five timeout duplicates
  // arrive at an ever-later point past the original delivery.
  net.fault_model()->force_corrupt_acks(5);
  net.submit(0, 1, 128);
  sim.run_until(100_us);
  EXPECT_EQ(net.delivered_count(), 1u);
  EXPECT_EQ(net.counters().value("retransmits"), 5u);
  EXPECT_EQ(net.counters().value("duplicates_suppressed"), 5u);
  EXPECT_EQ(net.outstanding_reliable(), 0u);
}

TEST(ArqReorder, ScriptedAckFaultsKeepConservationAuditClean) {
  Simulator sim;
  SystemParams p = arq_params();
  p.audit.enabled = true;
  p.audit.period_slots = 4;
  WormholeNetwork net(sim, p);
  net.fault_model()->force_corrupt_acks(3);
  for (int i = 0; i < 10; ++i) {
    net.submit(0, 1, 64);
    net.submit(2, 3, 64);
  }
  sim.run_until(100_us);
  EXPECT_EQ(net.delivered_count(), 20u);
  // Duplicates in flight never double-count in the conservation ledger.
  net.auditor()->audit_now();
  EXPECT_TRUE(net.auditor()->last_violations().empty());
  EXPECT_EQ(net.auditor()->stats().violations, 0u);
}

TEST(ArqReorder, ForcedAckCorruptionDoesNotPerturbSeededStream) {
  // The scripted hook must not consume the seeded RNG: two networks with
  // the same nonzero ack_ber stay in lockstep even when one additionally
  // scripts a corruption (on a message the other loses too).
  SystemParams p = arq_params();
  p.fault.ack_ber = 1e-4;
  Simulator sim_a;
  Simulator sim_b;
  WormholeNetwork a(sim_a, p);
  WormholeNetwork b(sim_b, p);
  a.fault_model()->force_corrupt_acks(1);
  b.fault_model()->force_corrupt_acks(1);
  for (int i = 0; i < 20; ++i) {
    a.submit(0, 1, 128);
    b.submit(0, 1, 128);
  }
  sim_a.run_until(100_us);
  sim_b.run_until(100_us);
  EXPECT_EQ(a.counters().value("acks_lost"), b.counters().value("acks_lost"));
  EXPECT_EQ(a.counters().value("retransmits"),
            b.counters().value("retransmits"));
  EXPECT_EQ(sim_a.events_processed(), sim_b.events_processed());
}

}  // namespace
}  // namespace pmx
