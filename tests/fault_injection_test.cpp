// End-to-end fault tolerance: transient corruption, ACK loss, hard link
// faults with repair, retry-budget exhaustion, and degraded-mode behaviour
// of each switching paradigm.

#include <gtest/gtest.h>

#include <memory>

#include "core/driver.hpp"
#include "core/experiment.hpp"
#include "sim/simulator.hpp"
#include "switching/circuit.hpp"
#include "switching/tdm.hpp"
#include "switching/wormhole.hpp"
#include "traffic/patterns.hpp"

namespace pmx {
namespace {

using namespace pmx::literals;

SystemParams faulty_params(std::size_t n, double ber) {
  SystemParams p;
  p.num_nodes = n;
  p.fault.ber = ber;
  p.fault.force_enable = true;
  return p;
}

TEST(FaultInjection, CorruptedMessagesAreRetransmittedUntilClean) {
  Simulator sim;
  // ~23% corruption probability per 256-byte message.
  WormholeNetwork net(sim, faulty_params(8, 1e-3));
  for (int i = 0; i < 20; ++i) {
    net.submit(0, 1, 256);
    net.submit(2, 3, 256);
  }
  sim.run_until(10'000_us);
  EXPECT_EQ(net.delivered_count(), 40u);
  EXPECT_EQ(net.outstanding_reliable(), 0u);
  EXPECT_EQ(net.dropped_messages(), 0u);
  EXPECT_GT(net.counters().value("crc_corruptions"), 0u);
  EXPECT_GT(net.counters().value("retransmits"), 0u);
  // Every retransmitted copy costs wire bytes beyond the goodput.
  EXPECT_GT(net.wire_bytes(), net.delivered_bytes());
}

TEST(FaultInjection, LostAcksCauseDuplicatesThatAreSuppressed) {
  SystemParams p;
  p.num_nodes = 8;
  p.fault.ber = 0.0;
  p.fault.ack_ber = 0.02;  // ~15% of ACKs lost, data never corrupted
  p.fault.force_enable = true;
  Simulator sim;
  WormholeNetwork net(sim, p);
  for (int i = 0; i < 50; ++i) {
    net.submit(0, 1, 128);
  }
  sim.run_until(10'000_us);
  // Data path is clean: every message delivered exactly once.
  EXPECT_EQ(net.delivered_count(), 50u);
  EXPECT_GT(net.counters().value("acks_lost"), 0u);
  EXPECT_EQ(net.counters().value("duplicates_suppressed"),
            net.counters().value("retransmits"));
}

TEST(FaultInjection, RetryBudgetExhaustionDropsAndTerminates) {
  SystemParams p;
  p.num_nodes = 4;
  p.fault.ber = 1.0;  // every copy corrupted: delivery is impossible
  p.fault.retry_budget = 4;
  p.fault.backoff_base = 100_ns;
  p.fault.backoff_cap = 400_ns;
  Simulator sim;
  WormholeNetwork net(sim, p);
  bool dropped_seen = false;
  net.set_dropped_handler([&](const Message& msg) {
    dropped_seen = true;
    EXPECT_EQ(msg.src, 0u);
  });
  net.submit(0, 1, 64);
  sim.run_until(10'000_us);
  EXPECT_TRUE(dropped_seen);
  EXPECT_EQ(net.delivered_count(), 0u);
  EXPECT_EQ(net.dropped_messages(), 1u);
  EXPECT_EQ(net.outstanding_reliable(), 0u);
  // Exactly retry_budget copies crossed the wire.
  EXPECT_EQ(net.counters().value("crc_corruptions"), 4u);
}

TEST(FaultInjection, CorruptDuplicateAtBudgetOfDeliveredMessageSettles) {
  // Regression: a message delivered clean whose ACK keeps getting lost and
  // whose final timeout duplicate arrives *corrupted* at the retry budget
  // must settle as complete, not as a drop. The drop path would count the
  // same message as both delivered and dropped, so delivered + dropped >
  // submitted and the driver's barrier/stop accounting would never balance.
  SystemParams p;
  p.num_nodes = 4;
  p.fault.ack_ber = 1.0;  // every ACK lost: retransmit up to the budget
  p.fault.retry_budget = 2;
  p.fault.backoff_base = 100_ns;
  p.fault.backoff_cap = 200_ns;
  Simulator sim;
  WormholeNetwork net(sim, p);
  bool dropped_seen = false;
  net.set_dropped_handler([&](const Message&) { dropped_seen = true; });
  // Script the corruption of the retransmitted duplicate: the flag is set
  // when the first copy records clean, so only the second copy on the wire
  // fails its CRC check.
  net.set_delivered_handler([&](const MessageRecord&) {
    net.fault_model()->force_corrupt_payloads(1);
  });
  net.submit(0, 1, 256);
  sim.run_until(10'000_us);
  // Attempt 1 arrived clean (recorded), its ACK was lost, attempt 2 arrived
  // corrupted with the budget exhausted: complete, never dropped.
  EXPECT_EQ(net.delivered_count(), 1u);
  EXPECT_EQ(net.dropped_messages(), 0u);
  EXPECT_FALSE(dropped_seen);
  EXPECT_EQ(net.outstanding_reliable(), 0u);
  EXPECT_EQ(net.delivered_count() + net.dropped_messages(),
            net.submitted_count());
  EXPECT_EQ(net.counters().value("crc_corruptions"), 1u);
  EXPECT_EQ(net.counters().value("acks_lost"), 1u);
  EXPECT_EQ(net.counters().value("ack_retries_exhausted"), 1u);
}

TEST(FaultInjection, WormholeHealsAcrossLinkOutage) {
  SystemParams p;
  p.num_nodes = 8;
  p.fault.force_enable = true;
  Simulator sim;
  WormholeNetwork net(sim, p);
  // Kill node 1's cable while a long transfer into it is in flight.
  net.fault_model()->inject_link_fault(1, 2'000_ns, 50'000_ns);
  net.submit(0, 1, 8192);
  net.submit(1, 2, 512);  // traffic *from* the dead node also stalls
  sim.run_until(10'000_us);
  EXPECT_EQ(net.delivered_count(), 2u);
  EXPECT_EQ(net.dropped_messages(), 0u);
  ASSERT_EQ(net.recoveries().size(), 1u);
  const RecoveryRecord& rec = net.recoveries()[0];
  EXPECT_EQ(rec.node, 1u);
  ASSERT_TRUE(rec.repaired.has_value());
  EXPECT_EQ((*rec.repaired - rec.down), 50'000_ns);
  ASSERT_TRUE(rec.recovered.has_value());
  EXPECT_GE(*rec.recovered, *rec.repaired);
}

TEST(FaultInjection, CircuitHealsAcrossLinkOutage) {
  SystemParams p;
  p.num_nodes = 8;
  p.fault.force_enable = true;
  Simulator sim;
  CircuitNetwork net(sim, p, CircuitNetwork::Options{.hold_circuits = true});
  net.fault_model()->inject_link_fault(3, 1'000_ns, 30'000_ns);
  net.submit(0, 3, 4096);  // into the failing node
  net.submit(3, 5, 1024);  // out of the failing node
  net.submit(4, 5, 256);   // unrelated pair keeps working
  sim.run_until(10'000_us);
  EXPECT_EQ(net.delivered_count(), 3u);
  EXPECT_EQ(net.dropped_messages(), 0u);
  EXPECT_EQ(net.outstanding_reliable(), 0u);
}

TEST(FaultInjection, DynamicTdmMasksAndReestablishes) {
  SystemParams p;
  p.num_nodes = 8;
  p.fault.force_enable = true;
  Simulator sim;
  TdmNetwork net(sim, p);
  net.fault_model()->inject_link_fault(2, 5'000_ns, 40'000_ns);
  net.submit(0, 2, 4096);
  net.submit(2, 4, 2048);
  net.submit(5, 6, 2048);
  sim.run_until(10'000_us);
  EXPECT_EQ(net.delivered_count(), 3u);
  EXPECT_EQ(net.outstanding_reliable(), 0u);
  // The outage force-released the established connections of port 2.
  EXPECT_GT(net.counters().value("forced_releases"), 0u);
  EXPECT_GT(net.counters().value("link_faults"), 0u);
  EXPECT_GT(net.counters().value("link_repairs"), 0u);
}

TEST(FaultInjection, DynamicTdmStuckCellsRouteAroundInUnstuckPairs) {
  SystemParams p;
  p.num_nodes = 8;
  p.fault.stuck_cells = 6;
  Simulator sim;
  TdmNetwork net(sim, p);
  const auto& stuck = net.fault_model()->stuck_cells();
  ASSERT_EQ(stuck.size(), 6u);
  // Pick a pair whose SL cell is healthy and verify it still communicates.
  NodeId src = 0;
  NodeId dst = 1;
  const auto is_stuck = [&stuck](NodeId u, NodeId v) {
    for (const auto& [su, sv] : stuck) {
      if (su == u && sv == v) {
        return true;
      }
    }
    return false;
  };
  for (NodeId u = 0; u < 8 && is_stuck(src, dst); ++u) {
    for (NodeId v = 0; v < 8; ++v) {
      if (u != v && !is_stuck(u, v)) {
        src = u;
        dst = v;
      }
    }
  }
  ASSERT_FALSE(is_stuck(src, dst));
  net.submit(src, dst, 1024);
  sim.run_until(1'000_us);
  EXPECT_EQ(net.delivered_count(), 1u);
}

TEST(FaultInjection, PreloadTdmRetransmitsWithinPhaseBudget) {
  RunConfig config;
  config.params.num_nodes = 16;
  config.params.fault.ber = 5e-4;
  config.kind = SwitchKind::kPreloadTdm;
  config.horizon = TimeNs{200'000'000};
  const Workload w = patterns::ordered_mesh(16, 512, /*rounds=*/2);
  const RunResult result = run_workload(config, w);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.metrics.messages, w.num_messages());
  EXPECT_GT(result.metrics.retransmits, 0u);
  EXPECT_EQ(result.metrics.dropped_messages, 0u);
  EXPECT_GT(result.metrics.wire_throughput, result.metrics.goodput);
}

TEST(FaultInjection, AllParadigmsCompleteUnderTransientCorruption) {
  const Workload w = patterns::random_mesh(16, 256, /*rounds=*/2, /*seed=*/7);
  for (const auto kind :
       {SwitchKind::kWormhole, SwitchKind::kCircuit, SwitchKind::kDynamicTdm,
        SwitchKind::kPreloadTdm}) {
    RunConfig config;
    config.params.num_nodes = 16;
    config.params.fault.ber = 2e-4;
    config.kind = kind;
    config.horizon = TimeNs{200'000'000};
    const RunResult result = run_workload(config, w);
    EXPECT_TRUE(result.completed) << to_string(kind);
    EXPECT_EQ(result.metrics.messages, w.num_messages()) << to_string(kind);
    EXPECT_EQ(result.metrics.dropped_messages, 0u) << to_string(kind);
  }
}

TEST(FaultInjection, DriverTerminatesWhenMessagesDrop) {
  // A workload with barriers over a hopeless link must still finish: the
  // dropped messages count as resolved and release the barrier.
  SystemParams p;
  p.num_nodes = 4;
  p.fault.ber = 1.0;
  p.fault.retry_budget = 3;
  p.fault.backoff_base = 100_ns;
  p.fault.backoff_cap = 200_ns;
  Workload w;
  w.programs.resize(4);
  w.programs[0].push_back(Command::send(1, 64));
  for (auto& prog : w.programs) {
    prog.push_back(Command::barrier());
  }
  w.programs[2].push_back(Command::send(3, 64));

  Simulator sim;
  WormholeNetwork net(sim, p);
  TrafficDriver driver(sim, net, w);
  driver.start();
  sim.run_until(100'000_us);
  EXPECT_TRUE(driver.finished());
  EXPECT_EQ(driver.messages_dropped(), 2u);
}

}  // namespace
}  // namespace pmx
