#include "traffic/patterns.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "traffic/mesh.hpp"

namespace pmx {
namespace {

std::size_t send_count(const Program& p) {
  return static_cast<std::size_t>(
      std::count_if(p.begin(), p.end(), [](const Command& c) {
        return c.kind == Command::Kind::kSend;
      }));
}

TEST(Patterns, ScatterShape) {
  const Workload w = patterns::scatter(16, 64, 3);
  EXPECT_EQ(w.num_nodes(), 16u);
  EXPECT_EQ(w.num_messages(), 15u);
  EXPECT_EQ(send_count(w.programs[3]), 15u);
  for (NodeId u = 0; u < 16; ++u) {
    if (u != 3) {
      EXPECT_TRUE(w.programs[u].empty());
    }
  }
  // Root reaches every other node exactly once.
  std::set<NodeId> dests;
  for (const auto& cmd : w.programs[3]) {
    EXPECT_NE(cmd.dst, 3u);
    dests.insert(cmd.dst);
  }
  EXPECT_EQ(dests.size(), 15u);
}

TEST(Patterns, OrderedMeshIsGloballyAligned) {
  const Workload w = patterns::ordered_mesh(16, 32, 1);
  const Mesh2D mesh = Mesh2D::square_ish(16);
  for (NodeId u = 0; u < 16; ++u) {
    ASSERT_EQ(w.programs[u].size(), 4u);
    // Every node's i-th send goes in the same global direction.
    EXPECT_EQ(w.programs[u][0].dst, mesh.neighbor(u, Mesh2D::Dir::kEast));
    EXPECT_EQ(w.programs[u][1].dst, mesh.neighbor(u, Mesh2D::Dir::kWest));
    EXPECT_EQ(w.programs[u][2].dst, mesh.neighbor(u, Mesh2D::Dir::kNorth));
    EXPECT_EQ(w.programs[u][3].dst, mesh.neighbor(u, Mesh2D::Dir::kSouth));
  }
}

TEST(Patterns, RandomMeshSameVolumeAsOrdered) {
  const Workload ordered = patterns::ordered_mesh(64, 128, 2);
  const Workload random = patterns::random_mesh(64, 128, 2, 5);
  EXPECT_EQ(random.num_messages(), ordered.num_messages());
  EXPECT_EQ(random.total_bytes(), ordered.total_bytes());
  // Per node: each neighbour exactly `rounds` times, order shuffled.
  const Mesh2D mesh = Mesh2D::square_ish(64);
  for (NodeId u = 0; u < 64; ++u) {
    std::map<NodeId, int> counts;
    for (const auto& cmd : random.programs[u]) {
      counts[cmd.dst] += 1;
    }
    for (const auto dir : Mesh2D::kDirs) {
      EXPECT_EQ(counts[mesh.neighbor(u, dir)], 2) << "node " << u;
    }
  }
}

TEST(Patterns, RandomMeshOrderDiffersFromOrdered) {
  const Workload ordered = patterns::ordered_mesh(64, 128, 2);
  const Workload random = patterns::random_mesh(64, 128, 2, 5);
  std::size_t differing = 0;
  for (NodeId u = 0; u < 64; ++u) {
    if (random.programs[u] != ordered.programs[u]) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 32u);  // nearly every node shuffled
}

TEST(Patterns, RandomMeshDeterministicPerSeed) {
  const Workload a = patterns::random_mesh(32, 64, 2, 9);
  const Workload b = patterns::random_mesh(32, 64, 2, 9);
  const Workload c = patterns::random_mesh(32, 64, 2, 10);
  EXPECT_EQ(a.programs, b.programs);
  EXPECT_NE(a.programs, c.programs);
}

TEST(Patterns, AllToAllEveryPairOnce) {
  const std::size_t n = 8;
  const Workload w = patterns::all_to_all(n, 16);
  EXPECT_EQ(w.num_messages(), n * (n - 1));
  std::set<std::pair<NodeId, NodeId>> pairs;
  for (NodeId u = 0; u < n; ++u) {
    for (const auto& cmd : w.programs[u]) {
      EXPECT_NE(cmd.dst, u);
      pairs.emplace(u, cmd.dst);
    }
  }
  EXPECT_EQ(pairs.size(), n * (n - 1));
}

TEST(Patterns, AllToAllIsStaggered) {
  // Step i of the all-to-all forms a permutation: node u's i-th send goes
  // to u+i+1 mod n.
  const std::size_t n = 8;
  const Workload w = patterns::all_to_all(n, 16);
  for (NodeId u = 0; u < n; ++u) {
    for (std::size_t i = 0; i + 1 < n; ++i) {
      EXPECT_EQ(w.programs[u][i].dst, (u + i + 1) % n);
    }
  }
}

TEST(Patterns, TwoPhaseHasOneBarrierPerNode) {
  const Workload w = patterns::two_phase(16, 64, 3);
  EXPECT_EQ(w.num_phases(), 2u);
  for (NodeId u = 0; u < 16; ++u) {
    // 15 all-to-all sends + barrier + 16 mesh sends.
    EXPECT_EQ(w.programs[u].size(), 15u + 1u + 16u);
    EXPECT_EQ(w.programs[u][15].kind, Command::Kind::kBarrier);
  }
}

TEST(Patterns, TwoPhaseSecondPhaseIsNearestNeighbor) {
  const Workload w = patterns::two_phase(16, 64, 3);
  const Mesh2D mesh = Mesh2D::square_ish(16);
  for (NodeId u = 0; u < 16; ++u) {
    const auto neighbors = mesh.neighbors(u);
    for (std::size_t i = 16; i < w.programs[u].size(); ++i) {
      const NodeId dst = w.programs[u][i].dst;
      EXPECT_TRUE(std::find(neighbors.begin(), neighbors.end(), dst) !=
                  neighbors.end());
    }
  }
}

TEST(Patterns, FavoredDestinationsArePermutations) {
  // Each favored set j must form a permutation so it can be preloaded as a
  // single configuration (Figure 5).
  const std::size_t n = 32;
  for (std::size_t j = 0; j < 2; ++j) {
    std::set<NodeId> images;
    for (NodeId u = 0; u < n; ++u) {
      const NodeId d = patterns::favored_destination(n, u, j, 2);
      EXPECT_NE(d, u);
      images.insert(d);
    }
    EXPECT_EQ(images.size(), n);
  }
}

TEST(Patterns, DeterminismMixRespectsProbability) {
  const std::size_t n = 64;
  const std::size_t count = 100;
  const Workload w = patterns::determinism_mix(n, 16, 0.8, count, 2, 3);
  std::size_t favored = 0;
  std::size_t total = 0;
  for (NodeId u = 0; u < n; ++u) {
    for (const auto& cmd : w.programs[u]) {
      ++total;
      for (std::size_t j = 0; j < 2; ++j) {
        if (cmd.dst == patterns::favored_destination(n, u, j, 2)) {
          ++favored;
          break;
        }
      }
    }
  }
  EXPECT_EQ(total, n * count);
  const double frac = static_cast<double>(favored) /
                      static_cast<double>(total);
  // Random picks land on favored nodes occasionally too, so frac >= 0.8.
  EXPECT_GT(frac, 0.78);
  EXPECT_LT(frac, 0.87);
}

TEST(Patterns, DeterminismExtremes) {
  const std::size_t n = 16;
  const Workload all_det = patterns::determinism_mix(n, 16, 1.0, 20, 2, 3);
  for (NodeId u = 0; u < n; ++u) {
    for (const auto& cmd : all_det.programs[u]) {
      EXPECT_TRUE(cmd.dst == patterns::favored_destination(n, u, 0, 2) ||
                  cmd.dst == patterns::favored_destination(n, u, 1, 2));
    }
  }
}

TEST(Patterns, UniformRandomNeverSelfSends) {
  const Workload w = patterns::uniform_random(16, 8, 50, 7);
  for (NodeId u = 0; u < 16; ++u) {
    for (const auto& cmd : w.programs[u]) {
      EXPECT_NE(cmd.dst, u);
    }
  }
}

TEST(Patterns, HotspotConcentratesTraffic) {
  const std::size_t n = 32;
  const Workload w = patterns::hotspot(n, 8, 100, 5, 0.5, 7);
  std::size_t to_hot = 0;
  std::size_t total = 0;
  for (NodeId u = 0; u < n; ++u) {
    for (const auto& cmd : w.programs[u]) {
      ++total;
      to_hot += cmd.dst == 5 ? 1u : 0u;
    }
  }
  const double frac = static_cast<double>(to_hot) /
                      static_cast<double>(total);
  EXPECT_GT(frac, 0.4);
  EXPECT_LT(frac, 0.6);
}

TEST(Patterns, TransposePairsNodes) {
  const Workload w = patterns::transpose(16, 8, 1);
  // Nodes on the diagonal (0, 5, 10, 15) have no partner.
  EXPECT_TRUE(w.programs[0].empty());
  EXPECT_TRUE(w.programs[5].empty());
  // (x=1,y=0) -> node 1 sends to (x=0,y=1) -> node 4.
  ASSERT_EQ(w.programs[1].size(), 1u);
  EXPECT_EQ(w.programs[1][0].dst, 4u);
  EXPECT_EQ(w.programs[4][0].dst, 1u);
}

TEST(PatternsDeathTest, TransposeRequiresSquare) {
  EXPECT_DEATH((void)patterns::transpose(15, 8, 1), "square");
}

}  // namespace
}  // namespace pmx
