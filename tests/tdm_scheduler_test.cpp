#include "sched/tdm_scheduler.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace pmx {
namespace {

TdmScheduler::Options opts(std::size_t n, std::size_t k) {
  TdmScheduler::Options o;
  o.num_ports = n;
  o.num_slots = k;
  return o;
}

TEST(TdmScheduler, StartsEmpty) {
  TdmScheduler sched(opts(8, 4));
  EXPECT_TRUE(sched.established().none());
  EXPECT_EQ(sched.live_mux_degree(), 0u);
  EXPECT_EQ(sched.current_slot(), std::nullopt);
  EXPECT_EQ(sched.advance_slot(), std::nullopt);  // all configs empty
}

TEST(TdmScheduler, EstablishesRequestedConnection) {
  TdmScheduler sched(opts(8, 4));
  sched.set_request(1, 5, true);
  const auto pass = sched.run_pass();
  ASSERT_TRUE(pass.slot.has_value());
  EXPECT_EQ(pass.establishes, 1u);
  EXPECT_TRUE(sched.is_established(1, 5));
  EXPECT_EQ(sched.live_mux_degree(), 1u);
}

TEST(TdmScheduler, ReleasesWhenRequestDrops) {
  TdmScheduler sched(opts(8, 4));
  sched.set_request(1, 5, true);
  sched.run_pass();
  sched.set_request(1, 5, false);
  // The connection lives in slot 0; passes cycle 1,2,3,0 so run up to K
  // passes to revisit it.
  for (std::size_t i = 0; i < sched.num_slots(); ++i) {
    sched.run_pass();
  }
  EXPECT_FALSE(sched.is_established(1, 5));
  EXPECT_EQ(sched.live_mux_degree(), 0u);
}

TEST(TdmScheduler, HoldKeepsConnectionAfterRequestDrops) {
  TdmScheduler sched(opts(8, 4));
  sched.set_request(1, 5, true);
  sched.run_pass();
  sched.hold(1, 5);
  sched.set_request(1, 5, false);
  for (std::size_t i = 0; i < sched.num_slots(); ++i) {
    sched.run_pass();
  }
  EXPECT_TRUE(sched.is_established(1, 5));
  sched.unhold(1, 5);
  for (std::size_t i = 0; i < sched.num_slots(); ++i) {
    sched.run_pass();
  }
  EXPECT_FALSE(sched.is_established(1, 5));
}

TEST(TdmScheduler, ConflictSpillsToAnotherSlot) {
  // Two connections competing for output 3 end up in different slots.
  TdmScheduler sched(opts(8, 4));
  sched.set_request(0, 3, true);
  sched.set_request(1, 3, true);
  sched.run_pass();  // slot 0: one of them gets in
  sched.run_pass();  // slot 1: the other
  EXPECT_TRUE(sched.is_established(0, 3));
  EXPECT_TRUE(sched.is_established(1, 3));
  EXPECT_EQ(sched.live_mux_degree(), 2u);
  EXPECT_NE(sched.slots_of(0, 3), sched.slots_of(1, 3));
}

TEST(TdmScheduler, NoDuplicateEstablishmentAcrossSlots) {
  TdmScheduler sched(opts(8, 4));
  sched.set_request(2, 6, true);
  for (int i = 0; i < 10; ++i) {
    sched.run_pass();
  }
  EXPECT_EQ(sched.slots_of(2, 6).size(), 1u);
}

TEST(TdmScheduler, MultiSlotExtensionDuplicatesIdleCapacity) {
  auto o = opts(8, 4);
  o.multi_slot_connections = true;
  TdmScheduler sched(o);
  sched.set_request(2, 6, true);
  for (int i = 0; i < 8; ++i) {
    sched.run_pass();
  }
  // With idle slots available, the connection is replicated into all of
  // them for added bandwidth (Section 4, extension 2).
  EXPECT_EQ(sched.slots_of(2, 6).size(), 4u);
}

TEST(TdmScheduler, AdvanceSkipsEmptySlots) {
  TdmScheduler sched(opts(8, 4));
  sched.set_request(0, 1, true);
  sched.run_pass();  // connection lands in slot 0
  EXPECT_EQ(sched.advance_slot(), 0u);
  // Slots 1..3 are empty; the TDM counter skips them and wraps to 0.
  EXPECT_EQ(sched.advance_slot(), 0u);
  EXPECT_GE(sched.stats().slots_skipped, 3u);
}

TEST(TdmScheduler, RotatesAmongNonEmptySlots) {
  TdmScheduler sched(opts(8, 4));
  sched.set_request(0, 3, true);
  sched.set_request(1, 3, true);  // conflict forces two slots
  sched.run_pass();
  sched.run_pass();
  const auto s1 = sched.advance_slot();
  const auto s2 = sched.advance_slot();
  const auto s3 = sched.advance_slot();
  ASSERT_TRUE(s1 && s2 && s3);
  EXPECT_NE(*s1, *s2);
  EXPECT_EQ(*s1, *s3);  // alternates between the two non-empty slots
}

TEST(TdmScheduler, GrantsFollowActiveSlot) {
  TdmScheduler sched(opts(8, 4));
  sched.set_request(0, 3, true);
  sched.set_request(1, 3, true);
  sched.run_pass();
  sched.run_pass();
  sched.advance_slot();
  // Exactly one of the two conflicting connections is granted per slot.
  const bool g0 = sched.grant(0, 3);
  const bool g1 = sched.grant(1, 3);
  EXPECT_NE(g0, g1);
  sched.advance_slot();
  EXPECT_NE(sched.grant(0, 3), g0);
}

TEST(TdmScheduler, GrantedOutputReportsConnection) {
  TdmScheduler sched(opts(8, 2));
  sched.set_request(4, 2, true);
  sched.run_pass();
  sched.advance_slot();
  EXPECT_EQ(sched.granted_output(4), 2u);
  EXPECT_EQ(sched.granted_output(5), std::nullopt);
}

TEST(TdmScheduler, PreloadPinnedSlotServesGrants) {
  TdmScheduler sched(opts(8, 4));
  BitMatrix cfg(8);
  cfg.set(0, 1);
  cfg.set(1, 2);
  sched.preload(0, cfg, /*pinned=*/true);
  EXPECT_TRUE(sched.is_established(0, 1));
  EXPECT_EQ(sched.advance_slot(), 0u);
  EXPECT_TRUE(sched.grant(0, 1));
  EXPECT_TRUE(sched.grant(1, 2));
}

TEST(TdmScheduler, PinnedSlotNotTouchedByDynamicPasses) {
  TdmScheduler sched(opts(8, 4));
  BitMatrix cfg(8);
  cfg.set(0, 1);
  sched.preload(0, cfg, true);
  // No request for (0,1): a dynamic pass over slot 0 would release it, but
  // the slot is pinned so passes must skip it.
  for (int i = 0; i < 10; ++i) {
    const auto pass = sched.run_pass();
    if (pass.slot) {
      EXPECT_NE(*pass.slot, 0u);
    }
  }
  EXPECT_TRUE(sched.is_established(0, 1));
}

TEST(TdmScheduler, RequestCoveredByPreloadIsNotDuplicated) {
  TdmScheduler sched(opts(8, 4));
  BitMatrix cfg(8);
  cfg.set(0, 1);
  sched.preload(0, cfg, true);
  sched.set_request(0, 1, true);
  for (int i = 0; i < 8; ++i) {
    sched.run_pass();
  }
  // B* already covers the request; dynamic slots stay empty.
  EXPECT_EQ(sched.slots_of(0, 1).size(), 1u);
  EXPECT_EQ(sched.live_mux_degree(), 1u);
}

TEST(TdmScheduler, AllSlotsPinnedMeansNoDynamicScheduling) {
  TdmScheduler sched(opts(4, 2));
  BitMatrix cfg(4);
  cfg.set(0, 1);
  sched.preload(0, cfg, true);
  sched.preload(1, BitMatrix(4), true);
  sched.set_request(2, 3, true);
  const auto pass = sched.run_pass();
  EXPECT_EQ(pass.slot, std::nullopt);
  EXPECT_FALSE(sched.is_established(2, 3));
}

TEST(TdmScheduler, UnloadFreesSlot) {
  TdmScheduler sched(opts(4, 2));
  BitMatrix cfg(4);
  cfg.set(0, 1);
  sched.preload(0, cfg, true);
  sched.unload(0);
  EXPECT_FALSE(sched.is_established(0, 1));
  EXPECT_FALSE(sched.pinned(0));
}

TEST(TdmScheduler, FlushDynamicKeepsPinnedSlots) {
  TdmScheduler sched(opts(8, 4));
  BitMatrix cfg(8);
  cfg.set(0, 1);
  sched.preload(0, cfg, true);
  sched.set_request(3, 4, true);
  sched.run_pass();
  EXPECT_TRUE(sched.is_established(3, 4));
  sched.flush_dynamic();
  EXPECT_FALSE(sched.is_established(3, 4));
  EXPECT_TRUE(sched.is_established(0, 1));  // pinned survives
  EXPECT_EQ(sched.stats().flushes, 1u);
}

TEST(TdmScheduler, FlushClearsHolds) {
  TdmScheduler sched(opts(8, 4));
  sched.set_request(1, 2, true);
  sched.run_pass();
  sched.hold(1, 2);
  sched.set_request(1, 2, false);
  sched.flush_dynamic();
  for (std::size_t i = 0; i < sched.num_slots(); ++i) {
    sched.run_pass();
  }
  EXPECT_FALSE(sched.is_established(1, 2));
}

TEST(TdmScheduler, StatsAccumulate) {
  TdmScheduler sched(opts(8, 2));
  sched.set_request(0, 1, true);
  sched.set_request(1, 1, true);
  sched.run_pass();
  EXPECT_EQ(sched.stats().passes, 1u);
  EXPECT_EQ(sched.stats().establishes, 1u);
  EXPECT_EQ(sched.stats().blocked, 1u);
}

// Property: under a random request churn the scheduler never produces a
// conflicted slot, B* always equals the OR of the slots, and every request
// is eventually established when capacity allows.
class TdmSchedulerChurnTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(TdmSchedulerChurnTest, InvariantsUnderChurn) {
  const auto [n, k] = GetParam();
  TdmScheduler sched(opts(n, k));
  Rng rng(n * 1000 + k);
  for (int step = 0; step < 200; ++step) {
    const auto u = static_cast<std::size_t>(rng.below(n));
    const auto v = static_cast<std::size_t>(rng.below(n));
    sched.set_request(u, v, rng.chance(0.6));
    sched.run_pass();
    if (step % 3 == 0) {
      sched.advance_slot();
    }
    BitMatrix expected_b_star(n);
    for (std::size_t s = 0; s < k; ++s) {
      EXPECT_TRUE(sched.config(s).is_partial_permutation());
      expected_b_star |= sched.config(s);
    }
    EXPECT_EQ(sched.established(), expected_b_star);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TdmSchedulerChurnTest,
    ::testing::Combine(::testing::Values<std::size_t>(4, 8, 16),
                       ::testing::Values<std::size_t>(1, 2, 4, 8)));

TEST(TdmScheduler, SaturatedRequestsFillAllSlots) {
  // All-to-all requests from 4 nodes with K=4: after enough passes every
  // slot holds a permutation and all 16 connections are established.
  const std::size_t n = 4;
  TdmScheduler sched(opts(n, n));
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = 0; v < n; ++v) {
      sched.set_request(u, v, true);
    }
  }
  for (int i = 0; i < 64; ++i) {
    sched.run_pass();
  }
  EXPECT_EQ(sched.established().count(), n * n);
  for (std::size_t s = 0; s < n; ++s) {
    EXPECT_EQ(sched.config(s).count(), n);  // each slot a full permutation
  }
}

}  // namespace
}  // namespace pmx
