// Overload acceptance criteria (EXPERIMENTS A9): at 2.0x skewed offered
// load every paradigm completes with bounded queue occupancy, zero lost
// accounting (injected == delivered + dropped + shed, auditor-checked),
// deterministic metrics across reruns, and a finite post-burst recovery.

#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "nic/admission.hpp"
#include "traffic/arrival.hpp"

namespace pmx {
namespace {

constexpr std::uint64_t kCapacityBytes = 4096;

RunConfig overload_config(SwitchKind kind, ShedPolicy policy) {
  RunConfig config;
  config.params.num_nodes = 16;
  config.params.admission.capacity_bytes = kCapacityBytes;
  config.params.admission.policy = policy;
  config.params.fault.force_enable = true;  // arms the conservation ledger
  config.params.audit.enabled = true;
  config.params.audit.strict = true;  // an audit violation aborts the run
  config.kind = kind;
  config.starvation_slots = 8;
  config.horizon = TimeNs{1'000'000'000};  // drain deadline
  return config;
}

ArrivalParams skewed_2x(std::uint64_t seed = 0x0E71'0ADEull) {
  ArrivalParams arrival;
  arrival.offered_load = 2.0;
  arrival.rate_skew = 0.8;
  arrival.dest_skew = 0.5;
  arrival.mean_msg_bytes = 512;
  arrival.duration = TimeNs{20'000};
  arrival.seed = seed;
  return arrival;
}

double line_rate_bytes_per_ns() {
  SystemParams defaults;
  return static_cast<double>(defaults.link.bandwidth_dgbps) / 80.0;
}

class OverloadAcceptanceTest : public ::testing::TestWithParam<SwitchKind> {};

TEST_P(OverloadAcceptanceTest, TwoXSkewedOverloadCompletesWithFullLedger) {
  const Workload workload =
      open_loop(16, skewed_2x(), line_rate_bytes_per_ns());
  const RunConfig config =
      overload_config(GetParam(), ShedPolicy::kDropOldest);
  const RunResult result = run_workload(config, workload);

  // The run drains: overload never wedges a paradigm.
  EXPECT_TRUE(result.completed);

  // Zero lost accounting: every injected message resolved.
  EXPECT_EQ(result.counter("submitted"),
            result.metrics.messages + result.metrics.dropped_messages +
                result.counter("shed_messages"));
  EXPECT_GT(result.metrics.audits, 0u);
  EXPECT_EQ(result.metrics.audit_violations, 0u);

  // 2x offered load means real shedding, and the admitted fraction can be
  // at most what was offered.
  EXPECT_GT(result.metrics.shed_messages, 0u);
  EXPECT_GT(result.metrics.offered_load, 1.0);
  EXPECT_LT(result.metrics.accepted_load, result.metrics.offered_load);

  // Bounded occupancy: no source queue ever exceeded its byte budget.
  EXPECT_GT(result.metrics.queue_depth_max, 0u);
  EXPECT_LE(result.metrics.queue_depth_max, kCapacityBytes);
  EXPECT_LE(result.metrics.queue_depth_p99,
            static_cast<double>(kCapacityBytes));

  // The network drained after the burst in finite time.
  EXPECT_GE(result.metrics.recovery_after_burst_ns, 0.0);
}

TEST_P(OverloadAcceptanceTest, RerunIsDeterministic) {
  const Workload workload =
      open_loop(16, skewed_2x(), line_rate_bytes_per_ns());
  const RunConfig config =
      overload_config(GetParam(), ShedPolicy::kDropOldest);
  const RunResult a = run_workload(config, workload);
  const RunResult b = run_workload(config, workload);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.metrics.makespan, b.metrics.makespan);
  EXPECT_EQ(a.metrics.messages, b.metrics.messages);
  EXPECT_EQ(a.metrics.shed_messages, b.metrics.shed_messages);
  EXPECT_EQ(a.metrics.queue_depth_max, b.metrics.queue_depth_max);
  EXPECT_EQ(a.counters, b.counters);
}

INSTANTIATE_TEST_SUITE_P(
    Paradigms, OverloadAcceptanceTest,
    ::testing::Values(SwitchKind::kWormhole, SwitchKind::kCircuit,
                      SwitchKind::kDynamicTdm, SwitchKind::kPreloadTdm),
    [](const auto& name_info) {
      std::string name = to_string(name_info.param);
      for (char& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name;
    });

// An ON/OFF burst at twice line rate, then silence: accepted load saturates
// near capacity during the burst and the recovery metric measures the drain
// tail after the last submission.
TEST(OverloadRecovery, BurstDrainsAndRecoveryIsMeasured) {
  ArrivalParams arrival = skewed_2x();
  arrival.process = ArrivalParams::Process::kOnOff;
  arrival.rate_skew = 0.0;
  arrival.dest_skew = 0.0;
  const Workload workload = open_loop(16, arrival, line_rate_bytes_per_ns());
  const RunConfig config =
      overload_config(SwitchKind::kDynamicTdm, ShedPolicy::kDropOldest);
  const RunResult result = run_workload(config, workload);
  EXPECT_TRUE(result.completed);
  // The drain tail is strictly positive: queued backlog outlives the last
  // submission, and the makespan includes draining it.
  EXPECT_GT(result.metrics.recovery_after_burst_ns, 0.0);
  EXPECT_GT(result.metrics.queue_depth_max, 0u);
  EXPECT_LE(result.metrics.queue_depth_max, kCapacityBytes);
}

// The dynamic-TDM starvation watchdog: under heavily skewed overload the
// cold sources keep making progress (the watchdog flushes the learned
// schedule when a requesting source goes unserved too long).
TEST(OverloadStarvation, WatchdogKeepsColdSourcesMoving) {
  ArrivalParams arrival = skewed_2x();
  arrival.dest_skew = 0.9;  // nearly everything targets the hot set
  const Workload workload = open_loop(16, arrival, line_rate_bytes_per_ns());
  RunConfig config =
      overload_config(SwitchKind::kDynamicTdm, ShedPolicy::kDropOldest);
  const RunResult result = run_workload(config, workload);
  EXPECT_TRUE(result.completed);
  // Whether or not the watchdog had to fire at this scale, the run must
  // conserve every message and drain.
  EXPECT_EQ(result.counter("submitted"),
            result.metrics.messages + result.metrics.dropped_messages +
                result.counter("shed_messages"));
}

}  // namespace
}  // namespace pmx
