#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace pmx {
namespace {

TEST(Table, AlignedPlainText) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "23"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("------"), std::string::npos);
  // Columns right-aligned to the widest cell.
  EXPECT_NE(out.find("     x"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n3,4\n");
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(Table::fmt(1.23456), "1.23");
  EXPECT_EQ(Table::fmt(1.23456, 4), "1.2346");
  EXPECT_EQ(Table::fmt(std::int64_t{-5}), "-5");
  EXPECT_EQ(Table::fmt(std::uint64_t{7}), "7");
}

TEST(Table, RowCount) {
  Table t({"a"});
  EXPECT_EQ(t.num_rows(), 0u);
  t.add_row({"x"});
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TableDeathTest, RowWidthMismatch) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.add_row({"only-one"}), "width");
}

TEST(TableDeathTest, EmptyHeader) {
  EXPECT_DEATH(Table({}), "one column");
}

}  // namespace
}  // namespace pmx
