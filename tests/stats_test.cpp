#include "common/stats.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace pmx {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.sum(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(x);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of the data set above is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesCombinedStream) {
  Rng rng(5);
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform() * 10.0;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.mean(), 1.0);
}

TEST(Histogram, BucketsAndOverflow) {
  Histogram h(10.0, 5);  // buckets [0,10) ... [40,50), overflow beyond
  h.add(0.0);
  h.add(9.99);
  h.add(10.0);
  h.add(49.0);
  h.add(50.0);
  h.add(1000.0);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(4), 1u);
  EXPECT_EQ(h.overflow(), 2u);
}

TEST(Histogram, NegativeClampsToZeroBucket) {
  Histogram h(1.0, 4);
  h.add(-5.0);
  EXPECT_EQ(h.bucket(0), 1u);
}

TEST(Histogram, QuantileMedian) {
  Histogram h(1.0, 100);
  for (int i = 0; i < 100; ++i) {
    h.add(static_cast<double>(i) + 0.5);
  }
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 1.5);
}

TEST(Histogram, QuantileEmptyIsZero) {
  Histogram h(1.0, 10);
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(CounterSet, DefaultZeroAndIncrement) {
  CounterSet c;
  EXPECT_EQ(c.value("missing"), 0u);
  c.counter("sent") += 3;
  c.counter("sent") += 2;
  EXPECT_EQ(c.value("sent"), 5u);
  EXPECT_EQ(c.all().size(), 1u);
}

}  // namespace
}  // namespace pmx
