// Unit tests of the control-plane fault injector: ControlFaultParams
// validation (fail fast on nonsensical knobs), seed determinism of the
// verdict stream, scripted force_* overrides, the watchdog backoff curve,
// and the zero-rate timing-neutrality guarantee.

#include "fault/control_fault.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace pmx {
namespace {

using namespace pmx::literals;

constexpr TimeNs kSlot{100};

TEST(ControlFaultParams, DisabledByDefault) {
  const ControlFaultParams p;
  EXPECT_FALSE(p.enabled());
}

TEST(ControlFaultParams, AnyFaultSourceEnables) {
  ControlFaultParams p;
  p.loss = 0.1;
  EXPECT_TRUE(p.enabled());
  p = ControlFaultParams{};
  p.corrupt = 0.1;
  EXPECT_TRUE(p.enabled());
  p = ControlFaultParams{};
  p.delay_rate = 0.1;
  EXPECT_TRUE(p.enabled());
  p = ControlFaultParams{};
  p.grant_loss = 0.1;
  EXPECT_TRUE(p.enabled());
  p = ControlFaultParams{};
  p.release_loss = 0.1;
  EXPECT_TRUE(p.enabled());
  p = ControlFaultParams{};
  p.force_enable = true;
  EXPECT_TRUE(p.enabled());
}

TEST(ControlFaultParams, PerKindLossFallsBackToGlobal) {
  ControlFaultParams p;
  p.loss = 0.2;
  EXPECT_DOUBLE_EQ(p.effective_loss(CtrlMsg::kRequest), 0.2);
  EXPECT_DOUBLE_EQ(p.effective_loss(CtrlMsg::kGrant), 0.2);
  EXPECT_DOUBLE_EQ(p.effective_loss(CtrlMsg::kRelease), 0.2);
  p.grant_loss = 0.0;  // explicit: grants travel a reliable wire
  p.release_loss = 0.5;
  EXPECT_DOUBLE_EQ(p.effective_loss(CtrlMsg::kGrant), 0.0);
  EXPECT_DOUBLE_EQ(p.effective_loss(CtrlMsg::kRelease), 0.5);
  EXPECT_DOUBLE_EQ(p.effective_loss(CtrlMsg::kRequest), 0.2);
}

TEST(ControlFaultParams, ValidateRejectsBadKnobs) {
  ControlFaultParams p;
  p.loss = 1.5;
  EXPECT_DEATH(p.validate(kSlot), "loss rate");
  p = ControlFaultParams{};
  p.corrupt = -0.1;
  EXPECT_DEATH(p.validate(kSlot), "corruption rate");
  p = ControlFaultParams{};
  p.delay_rate = 2.0;
  EXPECT_DEATH(p.validate(kSlot), "delay rate");
  p = ControlFaultParams{};
  p.delay = TimeNs{-1};
  EXPECT_DEATH(p.validate(kSlot), "negative control delay");
  p = ControlFaultParams{};
  p.watchdog_timeout = TimeNs::zero();
  EXPECT_DEATH(p.validate(kSlot), "watchdog timeout");
  p = ControlFaultParams{};
  p.watchdog_cap = TimeNs{100};  // below the 500 ns base timeout
  EXPECT_DEATH(p.validate(kSlot), "backoff cap");
  p = ControlFaultParams{};
  p.lease = TimeNs{50};  // shorter than one slot: would expire live pairs
  EXPECT_DEATH(p.validate(kSlot), "lease");
}

TEST(ControlFaultParams, ZeroLeaseDisablesLeasesAndValidates) {
  ControlFaultParams p;
  p.lease = TimeNs::zero();
  p.validate(kSlot);  // must not die
}

TEST(ControlFaultModel, VerdictStreamIsSeedDeterministic) {
  ControlFaultParams p;
  p.loss = 0.2;
  p.corrupt = 0.1;
  p.delay_rate = 0.1;
  Simulator sim_a;
  Simulator sim_b;
  ControlFaultModel a(sim_a, p, kSlot);
  ControlFaultModel b(sim_b, p, kSlot);
  for (int i = 0; i < 2000; ++i) {
    const auto kind = static_cast<CtrlMsg>(i % 3);
    EXPECT_EQ(a.decide(kind), b.decide(kind));
  }
  EXPECT_GT(a.total_dropped(), 0u);
  EXPECT_GT(a.total_corrupted(), 0u);
  EXPECT_GT(a.total_delayed(), 0u);
  EXPECT_EQ(a.total_sent(), 2000u);
}

TEST(ControlFaultModel, ZeroRatesAlwaysDeliver) {
  Simulator sim;
  ControlFaultParams p;
  p.force_enable = true;
  ControlFaultModel cf(sim, p, kSlot);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(cf.decide(CtrlMsg::kRequest), ControlFaultModel::Verdict::kDeliver);
  }
  EXPECT_EQ(cf.total_dropped(), 0u);
}

TEST(ControlFaultModel, ScriptedFaultsOverrideWithoutConsumingRng) {
  // Two models, same seed and rates. Scripting extra faults into one must
  // not shift its random verdict stream relative to the other: the forced
  // verdicts are inserted, the seeded draws continue in lockstep.
  ControlFaultParams p;
  p.loss = 0.3;
  Simulator sim_a;
  Simulator sim_b;
  ControlFaultModel a(sim_a, p, kSlot);
  ControlFaultModel b(sim_b, p, kSlot);
  a.force_drop(CtrlMsg::kRequest, 1);
  a.force_corrupt(CtrlMsg::kRequest, 1);
  a.force_delay(CtrlMsg::kRequest, 1);
  EXPECT_EQ(a.decide(CtrlMsg::kRequest), ControlFaultModel::Verdict::kDrop);
  EXPECT_EQ(a.decide(CtrlMsg::kRequest), ControlFaultModel::Verdict::kCorrupt);
  EXPECT_EQ(a.decide(CtrlMsg::kRequest), ControlFaultModel::Verdict::kDelay);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(a.decide(CtrlMsg::kRequest), b.decide(CtrlMsg::kRequest));
  }
}

TEST(ControlFaultModel, SendSchedulesDeliveryOrDropsSilently) {
  Simulator sim;
  ControlFaultParams p;
  p.force_enable = true;
  p.delay = TimeNs{40};
  ControlFaultModel cf(sim, p, kSlot);
  std::vector<int> arrived;
  EXPECT_TRUE(cf.send(CtrlMsg::kGrant, TimeNs{10}, [&] { arrived.push_back(1); }));
  cf.force_drop(CtrlMsg::kGrant, 1);
  EXPECT_FALSE(cf.send(CtrlMsg::kGrant, TimeNs{10}, [&] { arrived.push_back(2); }));
  cf.force_delay(CtrlMsg::kGrant, 1);
  EXPECT_TRUE(cf.send(CtrlMsg::kGrant, TimeNs{10}, [&] {
    arrived.push_back(3);
    EXPECT_EQ(sim.now(), TimeNs{50});  // latency 10 + scripted delay 40
  }));
  sim.run_until(1_us);
  ASSERT_EQ(arrived.size(), 2u);
  EXPECT_EQ(arrived[0], 1);
  EXPECT_EQ(arrived[1], 3);
  EXPECT_EQ(cf.stats(CtrlMsg::kGrant).sent, 3u);
  EXPECT_EQ(cf.stats(CtrlMsg::kGrant).dropped, 1u);
  EXPECT_EQ(cf.stats(CtrlMsg::kGrant).delayed, 1u);
}

TEST(ControlFaultModel, WatchdogBackoffDoublesToCap) {
  Simulator sim;
  ControlFaultParams p;
  p.force_enable = true;
  p.watchdog_timeout = TimeNs{500};
  p.watchdog_cap = TimeNs{16'000};
  ControlFaultModel cf(sim, p, kSlot);
  EXPECT_EQ(cf.watchdog_delay(1), TimeNs{500});
  EXPECT_EQ(cf.watchdog_delay(2), TimeNs{1000});
  EXPECT_EQ(cf.watchdog_delay(3), TimeNs{2000});
  EXPECT_EQ(cf.watchdog_delay(6), TimeNs{16'000});
  EXPECT_EQ(cf.watchdog_delay(7), TimeNs{16'000});   // capped
  EXPECT_EQ(cf.watchdog_delay(40), TimeNs{16'000});  // no overflow
}

}  // namespace
}  // namespace pmx
