#include "compiled/decomposition.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "traffic/mesh.hpp"

namespace pmx {
namespace {

/// All connections covered, each exactly once, all configs conflict-free.
void check_valid(std::size_t n, const std::vector<Conn>& conns,
                 const Decomposition& d) {
  BitMatrix covered(n);
  for (const auto& cfg : d.configs) {
    EXPECT_TRUE(cfg.is_partial_permutation());
    for (std::size_t u = 0; u < n; ++u) {
      for (std::size_t v = 0; v < n; ++v) {
        if (cfg.get(u, v)) {
          EXPECT_FALSE(covered.get(u, v)) << "duplicate (" << u << "," << v
                                          << ")";
          covered.set(u, v);
        }
      }
    }
  }
  EXPECT_EQ(covered.count(), conns.size());
  for (std::size_t e = 0; e < conns.size(); ++e) {
    EXPECT_TRUE(covered.get(conns[e].src, conns[e].dst));
    ASSERT_LT(d.color_of[e], d.configs.size());
    EXPECT_TRUE(d.configs[d.color_of[e]].get(conns[e].src, conns[e].dst));
  }
}

TEST(WorkingSetDegree, EmptyIsZero) {
  EXPECT_EQ(working_set_degree(4, {}), 0u);
}

TEST(WorkingSetDegree, CountsBothDirections) {
  // Node 0 sends to 3 destinations, node 2 receives from 2 sources.
  std::vector<Conn> conns{{0, 1}, {0, 2}, {0, 3}, {1, 2}};
  EXPECT_EQ(working_set_degree(4, conns), 3u);
}

TEST(DecomposeOptimal, EmptySet) {
  const Decomposition d = decompose_optimal(4, {});
  EXPECT_EQ(d.degree(), 0u);
}

TEST(DecomposeOptimal, PermutationNeedsOneConfig) {
  const std::size_t n = 8;
  std::vector<Conn> conns;
  for (std::size_t u = 0; u < n; ++u) {
    conns.push_back({u, (u + 3) % n});
  }
  const Decomposition d = decompose_optimal(n, conns);
  EXPECT_EQ(d.degree(), 1u);
  check_valid(n, conns, d);
}

TEST(DecomposeOptimal, MeshNeighborsNeedExactlyFour) {
  // The torus neighbour working set is 4-regular; Konig coloring must hit
  // the degree bound exactly.
  const Mesh2D mesh = Mesh2D::square_ish(64);
  std::vector<Conn> conns;
  for (NodeId u = 0; u < mesh.size(); ++u) {
    for (const auto dir : Mesh2D::kDirs) {
      conns.push_back({u, mesh.neighbor(u, dir)});
    }
  }
  const Decomposition d = decompose_optimal(64, conns);
  EXPECT_EQ(d.degree(), 4u);
  check_valid(64, conns, d);
}

TEST(DecomposeOptimal, AllToAllNeedsNMinusOne) {
  const std::size_t n = 8;
  std::vector<Conn> conns;
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = 0; v < n; ++v) {
      if (u != v) {
        conns.push_back({u, v});
      }
    }
  }
  const Decomposition d = decompose_optimal(n, conns);
  EXPECT_EQ(d.degree(), n - 1);
  check_valid(n, conns, d);
  // Every config of an all-to-all decomposition is a full permutation
  // less fixed points: n-1 regular graph splits into n-1 perfect matchings
  // of size n... here each color class must have exactly n entries? No:
  // n*(n-1) edges over n-1 colors = n edges per color.
  for (const auto& cfg : d.configs) {
    EXPECT_EQ(cfg.count(), n);
  }
}

TEST(DecomposeOptimal, StarNeedsFanoutConfigs) {
  // Scatter working set: one source, many destinations -> degree = fanout,
  // one connection per config.
  const std::size_t n = 16;
  std::vector<Conn> conns;
  for (std::size_t v = 1; v < n; ++v) {
    conns.push_back({0, v});
  }
  const Decomposition d = decompose_optimal(n, conns);
  EXPECT_EQ(d.degree(), n - 1);
  check_valid(n, conns, d);
}

TEST(DecomposeOptimal, RandomGraphsHitDegreeBound) {
  Rng rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 4 + rng.below(60);
    std::vector<Conn> conns;
    BitMatrix used(n);
    const std::size_t edges = rng.below(n * 3 + 1);
    for (std::size_t e = 0; e < edges; ++e) {
      const auto u = static_cast<std::size_t>(rng.below(n));
      const auto v = static_cast<std::size_t>(rng.below(n));
      if (!used.get(u, v)) {
        used.set(u, v);
        conns.push_back({u, v});
      }
    }
    const Decomposition d = decompose_optimal(n, conns);
    EXPECT_EQ(d.degree(), working_set_degree(n, conns));
    check_valid(n, conns, d);
  }
}

TEST(DecomposeOptimalDeathTest, RejectsDuplicateConnection) {
  std::vector<Conn> conns{{0, 1}, {0, 1}};
  EXPECT_DEATH((void)decompose_optimal(4, conns), "duplicate");
}

TEST(DecomposeGreedy, ValidButPossiblySuboptimal) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 4 + rng.below(40);
    std::vector<Conn> conns;
    BitMatrix used(n);
    for (std::size_t e = 0; e < n * 2; ++e) {
      const auto u = static_cast<std::size_t>(rng.below(n));
      const auto v = static_cast<std::size_t>(rng.below(n));
      if (!used.get(u, v)) {
        used.set(u, v);
        conns.push_back({u, v});
      }
    }
    const Decomposition d = decompose_greedy(n, conns);
    check_valid(n, conns, d);
    const std::size_t lower = working_set_degree(n, conns);
    EXPECT_GE(d.degree(), lower);
    // Greedy (first-fit) edge coloring uses at most 2*degree - 1 colors.
    EXPECT_LE(d.degree(), lower > 0 ? 2 * lower - 1 : 0);
  }
}

TEST(DecomposeGreedy, PermutationStillOneConfig) {
  const std::size_t n = 8;
  std::vector<Conn> conns;
  for (std::size_t u = 0; u < n; ++u) {
    conns.push_back({u, (u + 1) % n});
  }
  EXPECT_EQ(decompose_greedy(n, conns).degree(), 1u);
}

}  // namespace
}  // namespace pmx
