// Conformance tests for per-source-port PolicySpec overrides: parsing and
// validation of `policy-port-overrides`, the per-port rank dispatch, and
// the guarantee that the override machinery is inert when it should be --
// an override list that just restates the global knob must reproduce the
// global-only run byte for byte.

#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "common/config.hpp"
#include "core/experiment.hpp"
#include "predictor/rank_fn.hpp"
#include "traffic/patterns.hpp"

namespace pmx {
namespace {

TEST(PolicyPortOverride, FromConfigParsesSortsAndLabels) {
  const Config cfg = Config::from_args(
      {"policy=timeout", "policy-timeout=200", "policy-port-overrides=7:100,3:400"});
  const PolicySpec spec = PolicySpec::from_config(cfg);
  ASSERT_EQ(spec.port_overrides.size(), 2u);
  // Parsed pairs are sorted by port regardless of CSV order.
  EXPECT_EQ(spec.port_overrides[0], (std::pair<NodeId, std::int64_t>{3, 400}));
  EXPECT_EQ(spec.port_overrides[1], (std::pair<NodeId, std::int64_t>{7, 100}));
  EXPECT_EQ(spec.label(), "timeout-200+pp2");
  EXPECT_EQ(make_rank_fn(spec)->name(), "timeout+per-port");
}

TEST(PolicyPortOverride, ValidateRejectsCapacityPoliciesAndBadValues) {
  PolicySpec lru;
  lru.policy = "lru";
  lru.port_overrides = {{1, 8}};
  // A per-port capacity would change what tracked-set overflow means.
  EXPECT_DEATH(lru.validate(), "require a horizon policy");

  PolicySpec nonpos;
  nonpos.policy = "timeout";
  nonpos.port_overrides = {{1, 0}};
  EXPECT_DEATH(nonpos.validate(), "must be positive");

  PolicySpec dup;
  dup.policy = "timeout";
  dup.port_overrides = {{1, 100}, {1, 200}};
  EXPECT_DEATH(dup.validate(), "distinct ports");

  PolicySpec unsorted;
  unsorted.policy = "timeout";
  unsorted.port_overrides = {{5, 100}, {2, 200}};
  EXPECT_DEATH(unsorted.validate(), "distinct ports");

  const Config malformed = Config::from_args({"policy-port-overrides=3-400"});
  EXPECT_DEATH((void)PolicySpec::from_config(malformed), "port:value");
}

TEST(PolicyPortOverride, DispatchRanksEachFlowByItsSourcePortKnob) {
  PolicySpec spec;
  spec.policy = "timeout";
  spec.timeout_ns = 1000;
  spec.port_overrides = {{1, 100}, {3, 5000}};
  const auto rank = make_rank_fn(spec);

  FlowState flow;
  flow.last_use = TimeNs{400};
  const EngineView view{TimeNs{900}, 0, 1};
  // Rank = idle deadline (last_use + timeout): overridden ports use their
  // own knob, everything else the global one.
  flow.conn = Conn{0, 2};
  EXPECT_EQ(rank->rank(flow, view), 1400);
  flow.conn = Conn{1, 2};
  EXPECT_EQ(rank->rank(flow, view), 500);
  flow.conn = Conn{3, 2};
  EXPECT_EQ(rank->rank(flow, view), 5400);
  // Destination port is irrelevant: overrides key on the source.
  flow.conn = Conn{2, 1};
  EXPECT_EQ(rank->rank(flow, view), 1400);
  // The horizon is shared virtual time, delegated to the global rank.
  EXPECT_EQ(rank->horizon(view), 900);
}

TEST(PolicyPortOverride, CounterOverrideDispatchesOnThreshold) {
  PolicySpec spec;
  spec.policy = "counter";
  spec.threshold = 8;
  spec.port_overrides = {{2, 64}};
  const auto rank = make_rank_fn(spec);

  FlowState flow;
  flow.last_use_epoch = 10;
  const EngineView view{TimeNs{0}, 12, 1};
  flow.conn = Conn{0, 1};
  EXPECT_EQ(rank->rank(flow, view), 18);
  flow.conn = Conn{2, 1};
  EXPECT_EQ(rank->rank(flow, view), 74);
  EXPECT_EQ(rank->horizon(view), 12);
}

RunConfig tdm_config(const PolicySpec& policy) {
  RunConfig config;
  config.params.num_nodes = 16;
  config.kind = SwitchKind::kDynamicTdm;
  config.policy = policy;
  config.horizon = TimeNs{1'000'000'000};
  return config;
}

TEST(PolicyPortOverride, GlobalValuedOverridesAreByteIdenticalToGlobalOnly) {
  const Workload workload = patterns::random_mesh(16, 256, 4, 11);
  PolicySpec global;
  global.policy = "timeout";
  global.timeout_ns = 400;
  // Overrides that restate the global knob: the dispatcher is installed
  // but every port resolves to the same deadline formula, so the run must
  // be byte-identical to the global-only configuration.
  PolicySpec restated = global;
  restated.port_overrides = {{0, 400}, {5, 400}, {9, 400}};

  const RunResult a = run_workload(tdm_config(global), workload);
  const RunResult b = run_workload(tdm_config(restated), workload);
  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(b.completed);
  EXPECT_TRUE(a.metrics == b.metrics);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.counters, b.counters);
}

TEST(PolicyPortOverride, DivergentOverrideActuallyChangesTheRun) {
  const Workload workload = patterns::random_mesh(16, 256, 4, 11);
  PolicySpec global;
  global.policy = "timeout";
  global.timeout_ns = 400;
  PolicySpec skewed = global;
  // One chatty port latches its connections 50x longer than everyone else.
  skewed.port_overrides = {{0, 20'000}};

  const RunResult a = run_workload(tdm_config(global), workload);
  const RunResult b = run_workload(tdm_config(skewed), workload);
  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(b.completed);
  EXPECT_EQ(b.metrics.messages, workload.num_messages());
  // The dispatcher must not be a no-op when the knobs differ.
  EXPECT_FALSE(a.sim_events == b.sim_events && a.counters == b.counters);
}

}  // namespace
}  // namespace pmx
