#include <gtest/gtest.h>

#include <algorithm>

#include "predictor/policy_engine.hpp"
#include "predictor/predictor.hpp"
#include "predictor/timeout_predictor.hpp"

namespace pmx {
namespace {

using namespace pmx::literals;

TEST(NoPolicy, NeverHoldsNeverEvicts) {
  PolicyEngine p("none", make_none_rank());
  EXPECT_FALSE(p.should_hold(Conn{0, 1}));
  p.on_establish(Conn{0, 1}, 0_ns);
  p.on_use(Conn{0, 1}, 10_ns);
  EXPECT_TRUE(p.collect_evictions(1000000_ns).empty());
}

TEST(NeverEvictPolicy, AlwaysHoldsNeverEvicts) {
  PolicyEngine p("never-evict", make_never_evict_rank());
  EXPECT_TRUE(p.should_hold(Conn{0, 1}));
  p.on_establish(Conn{0, 1}, 0_ns);
  EXPECT_TRUE(p.collect_evictions(1000000_ns).empty());
}

TEST(TimeoutPolicy, EvictsAfterIdlePeriod) {
  PolicyEngine p("timeout", make_timeout_rank(100_ns));
  p.on_establish(Conn{0, 1}, 0_ns);
  EXPECT_TRUE(p.collect_evictions(50_ns).empty());
  const auto evicted = p.collect_evictions(100_ns);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], (Conn{0, 1}));
  // Evicted connections are forgotten.
  EXPECT_TRUE(p.collect_evictions(1000_ns).empty());
}

TEST(TimeoutPolicy, UseResetsTheClock) {
  PolicyEngine p("timeout", make_timeout_rank(100_ns));
  p.on_establish(Conn{0, 1}, 0_ns);
  p.on_use(Conn{0, 1}, 80_ns);
  EXPECT_TRUE(p.collect_evictions(150_ns).empty());  // 70 ns since use
  EXPECT_EQ(p.collect_evictions(180_ns).size(), 1u);
}

TEST(TimeoutPolicy, ReleaseStopsTracking) {
  PolicyEngine p("timeout", make_timeout_rank(100_ns));
  p.on_establish(Conn{0, 1}, 0_ns);
  p.on_release(Conn{0, 1}, 50_ns);
  EXPECT_TRUE(p.collect_evictions(500_ns).empty());
  EXPECT_EQ(p.tracked(), 0u);
}

TEST(TimeoutPolicy, EvictionsAreSortedBySrcDst) {
  // Eviction order must not depend on hash or heap layout: the collector
  // normalizes to (src, dst) so scheduler unholds replay identically on
  // every platform.
  PolicyEngine p("timeout", make_timeout_rank(10_ns));
  const std::vector<Conn> conns{{7, 2}, {1, 9}, {7, 0}, {3, 3}, {0, 5}};
  for (const auto& c : conns) {
    p.on_establish(c, 0_ns);
  }
  const auto evicted = p.collect_evictions(100_ns);
  ASSERT_EQ(evicted.size(), conns.size());
  const std::vector<Conn> expect{{0, 5}, {1, 9}, {3, 3}, {7, 0}, {7, 2}};
  EXPECT_EQ(evicted, expect);
}

TEST(CounterPolicy, EvictionsAreSortedBySrcDst) {
  PolicyEngine p("counter", make_counter_rank(1));
  p.on_establish(Conn{9, 1}, 0_ns);
  p.on_establish(Conn{2, 4}, 0_ns);
  p.on_establish(Conn{5, 0}, 0_ns);
  p.on_use(Conn{0, 0}, 1_ns);
  p.on_use(Conn{0, 0}, 2_ns);
  auto evicted = p.collect_evictions(3_ns);
  // Conn{0,0} stays fresh; the three established conns age out in order.
  const std::vector<Conn> expect{{2, 4}, {5, 0}, {9, 1}};
  EXPECT_EQ(evicted, expect);
}

TEST(TimeoutPolicy, TracksConnectionsIndependently) {
  PolicyEngine p("timeout", make_timeout_rank(100_ns));
  p.on_establish(Conn{0, 1}, 0_ns);
  p.on_establish(Conn{2, 3}, 60_ns);
  const auto evicted = p.collect_evictions(110_ns);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], (Conn{0, 1}));
  EXPECT_EQ(p.tracked(), 1u);
}

TEST(TimeoutPolicy, FlushForgetsEverything) {
  PolicyEngine p("timeout", make_timeout_rank(100_ns));
  p.on_establish(Conn{0, 1}, 0_ns);
  p.on_establish(Conn{1, 2}, 0_ns);
  p.on_flush();
  EXPECT_EQ(p.tracked(), 0u);
  EXPECT_TRUE(p.collect_evictions(1000_ns).empty());
}

TEST(TimeoutPolicyDeathTest, RejectsNonPositiveTimeout) {
  EXPECT_DEATH(make_timeout_rank(0_ns), "positive");
}

TEST(CounterPolicy, EvictsAfterOtherUses) {
  PolicyEngine p("counter", make_counter_rank(3));
  p.on_establish(Conn{0, 1}, 0_ns);
  p.on_use(Conn{0, 1}, 1_ns);
  // Three uses of other connections ripen (0,1).
  p.on_use(Conn{2, 3}, 2_ns);
  p.on_use(Conn{4, 5}, 3_ns);
  EXPECT_TRUE(p.collect_evictions(4_ns).empty());  // only 2 other uses
  p.on_use(Conn{2, 3}, 5_ns);
  const auto evicted = p.collect_evictions(6_ns);
  ASSERT_GE(evicted.size(), 1u);
  EXPECT_TRUE(std::find(evicted.begin(), evicted.end(), Conn{0, 1}) !=
              evicted.end());
}

TEST(CounterPolicy, OwnUseResetsCounter) {
  PolicyEngine p("counter", make_counter_rank(3));
  p.on_establish(Conn{0, 1}, 0_ns);
  p.on_use(Conn{2, 3}, 1_ns);
  p.on_use(Conn{2, 3}, 2_ns);
  p.on_use(Conn{0, 1}, 3_ns);  // reset
  p.on_use(Conn{2, 3}, 4_ns);
  p.on_use(Conn{2, 3}, 5_ns);
  EXPECT_TRUE(p.collect_evictions(6_ns).empty());  // only 2 since reset
}

TEST(CounterPolicy, NoCommunicationMeansNoEviction) {
  // The paper's motivation for the counter scheme: a compute phase with no
  // communication must not age connections.
  PolicyEngine p("counter", make_counter_rank(3));
  p.on_establish(Conn{0, 1}, 0_ns);
  // Arbitrarily long "time" passes with no uses at all.
  EXPECT_TRUE(p.collect_evictions(TimeNs{1000000000}).empty());
}

TEST(CounterPolicy, ReleaseStopsTracking) {
  PolicyEngine p("counter", make_counter_rank(2));
  p.on_establish(Conn{0, 1}, 0_ns);
  p.on_release(Conn{0, 1}, 1_ns);
  p.on_use(Conn{2, 3}, 2_ns);
  p.on_use(Conn{4, 5}, 3_ns);
  EXPECT_TRUE(p.collect_evictions(4_ns).empty());
}

TEST(CounterPolicy, FlushForgetsEverything) {
  PolicyEngine p("counter", make_counter_rank(2));
  p.on_establish(Conn{0, 1}, 0_ns);
  p.on_flush();
  p.on_use(Conn{2, 3}, 1_ns);
  p.on_use(Conn{4, 5}, 2_ns);
  EXPECT_TRUE(p.collect_evictions(3_ns).empty());
  EXPECT_EQ(p.tracked(), 2u);  // only the connections used after the flush
}

TEST(CounterPolicyDeathTest, RejectsZeroThreshold) {
  EXPECT_DEATH(make_counter_rank(0), "positive");
}

TEST(LruPolicy, EvictsLeastRecentlyUsedBeyondCapacity) {
  PolicyEngine p("lru", make_lru_rank(2));
  p.on_establish(Conn{0, 1}, 0_ns);
  p.on_establish(Conn{2, 3}, 10_ns);
  EXPECT_TRUE(p.collect_evictions(20_ns).empty());  // at capacity, no evict
  p.on_establish(Conn{4, 5}, 30_ns);
  const auto evicted = p.collect_evictions(40_ns);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], (Conn{0, 1}));  // coldest entry goes
  EXPECT_EQ(p.tracked(), 2u);
}

TEST(LruPolicy, UseRefreshesRecency) {
  PolicyEngine p("lru", make_lru_rank(2));
  p.on_establish(Conn{0, 1}, 0_ns);
  p.on_establish(Conn{2, 3}, 10_ns);
  p.on_use(Conn{0, 1}, 20_ns);  // (2,3) is now the LRU entry
  p.on_establish(Conn{4, 5}, 30_ns);
  const auto evicted = p.collect_evictions(40_ns);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], (Conn{2, 3}));
}

TEST(LfuDecayPolicy, KeepsFrequentlyUsedEntries) {
  PolicyEngine p("lfu-decay", make_lfu_decay_rank(2, 1000_ns));
  p.on_establish(Conn{0, 1}, 0_ns);
  p.on_use(Conn{0, 1}, 1_ns);
  p.on_use(Conn{0, 1}, 2_ns);
  p.on_use(Conn{0, 1}, 3_ns);
  p.on_establish(Conn{2, 3}, 4_ns);
  p.on_use(Conn{2, 3}, 5_ns);
  p.on_establish(Conn{4, 5}, 6_ns);  // over capacity; (2,3) has lowest freq
  const auto evicted = p.collect_evictions(7_ns);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], (Conn{4, 5}));  // unused newcomer has freq 0
  EXPECT_TRUE(p.is_tracked(Conn{0, 1}));
}

TEST(LfuDecayPolicy, FrequencyDecaysOverTime) {
  PolicyEngine p("lfu-decay", make_lfu_decay_rank(2, 100_ns));
  // (0,1) is hot early, then goes idle for many half-lives.
  p.on_establish(Conn{0, 1}, 0_ns);
  for (int i = 1; i <= 8; ++i) {
    p.on_use(Conn{0, 1}, TimeNs{i});
  }
  // (2,3) stays warm with recent uses.
  p.on_establish(Conn{2, 3}, 10_ns);
  p.on_use(Conn{2, 3}, 2000_ns);
  p.on_use(Conn{2, 3}, 2001_ns);
  // Touch (0,1) once after the long idle gap: its old score has decayed.
  p.on_use(Conn{0, 1}, 2002_ns);
  p.on_establish(Conn{4, 5}, 2003_ns);
  p.on_use(Conn{4, 5}, 2004_ns);
  p.on_use(Conn{4, 5}, 2005_ns);
  const auto evicted = p.collect_evictions(2006_ns);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], (Conn{0, 1}));  // decayed below both warm entries
}

TEST(DeadlinePolicy, EvictsAtLifetimeRegardlessOfUse) {
  PolicyEngine p("deadline", make_deadline_rank(100_ns));
  p.on_establish(Conn{0, 1}, 0_ns);
  p.on_use(Conn{0, 1}, 90_ns);  // use does not extend the lease
  const auto evicted = p.collect_evictions(100_ns);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], (Conn{0, 1}));
}

TEST(DeadlinePolicy, ReEstablishRestartsTheLease) {
  PolicyEngine p("deadline", make_deadline_rank(100_ns));
  p.on_establish(Conn{0, 1}, 0_ns);
  p.on_establish(Conn{0, 1}, 80_ns);  // re-establish restarts the clock
  EXPECT_TRUE(p.collect_evictions(100_ns).empty());
  EXPECT_EQ(p.collect_evictions(180_ns).size(), 1u);
}

TEST(HybridPolicy, FrequencyBreaksRecencyTies) {
  // w_recency=1 with a coarse quantum: entries used in the same quantum
  // tie on recency, and the frequency term decides who is evicted.
  PolicyEngine p("hybrid", make_hybrid_rank(2, 1, 4, 1000_ns, 10000_ns));
  p.on_establish(Conn{0, 1}, 0_ns);
  p.on_use(Conn{0, 1}, 1_ns);
  p.on_use(Conn{0, 1}, 2_ns);
  p.on_establish(Conn{2, 3}, 3_ns);
  p.on_use(Conn{2, 3}, 4_ns);
  p.on_establish(Conn{4, 5}, 5_ns);
  p.on_use(Conn{4, 5}, 6_ns);
  p.on_use(Conn{4, 5}, 7_ns);
  p.on_use(Conn{4, 5}, 8_ns);
  const auto evicted = p.collect_evictions(9_ns);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], (Conn{2, 3}));  // least frequently used of the tie
}

TEST(PolicyEngine, HeapCompactsUnderChurn) {
  // Heavy re-touching of a small tracked set must not grow the lazy heap
  // without bound: stale keys are reaped once the heap passes 4x tracked.
  PolicyEngine p("timeout", make_timeout_rank(1000000_ns));
  for (int i = 0; i < 10000; ++i) {
    p.on_use(Conn{static_cast<NodeId>(i % 4), 9}, TimeNs{i});
  }
  EXPECT_EQ(p.tracked(), 4u);
  EXPECT_LE(p.heap_size(), 64u + 4u);
}

TEST(PolicyEngine, MirrorsHoldLatches) {
  PolicyEngine p("timeout", make_timeout_rank(100_ns));
  EXPECT_TRUE(p.mirrors_holds());
  p.on_establish(Conn{0, 1}, 0_ns);
  p.on_hold(Conn{0, 1}, 0_ns);
  EXPECT_TRUE(p.believes_held(Conn{0, 1}));
  EXPECT_EQ(p.held_count(), 1u);
  // Eviction drops the mirror entry with the tracked entry.
  EXPECT_EQ(p.collect_evictions(100_ns).size(), 1u);
  EXPECT_FALSE(p.believes_held(Conn{0, 1}));
  EXPECT_EQ(p.held_count(), 0u);
  // Release and flush do too.
  p.on_establish(Conn{2, 3}, 200_ns);
  p.on_hold(Conn{2, 3}, 200_ns);
  p.on_release(Conn{2, 3}, 201_ns);
  EXPECT_EQ(p.held_count(), 0u);
  p.on_hold(Conn{4, 5}, 300_ns);
  p.on_flush();
  EXPECT_EQ(p.held_count(), 0u);
}

TEST(PolicySpec, ParseAndLabelRoundTrip) {
  EXPECT_EQ(PolicySpec::parse("timeout:400").timeout_ns, 400);
  EXPECT_EQ(PolicySpec::parse("timeout:400").label(), "timeout-400");
  EXPECT_EQ(PolicySpec::parse("counter:64").threshold, 64u);
  EXPECT_EQ(PolicySpec::parse("lru:12").capacity, 12u);
  EXPECT_EQ(PolicySpec::parse("lfu-decay:8").label(), "lfu-decay-8");
  EXPECT_EQ(PolicySpec::parse("deadline:5000").lifetime_ns, 5000);
  EXPECT_EQ(PolicySpec::parse("phase:300").label(), "phase-300");
  EXPECT_EQ(PolicySpec::parse("hybrid:6").label(), "hybrid-6");
  EXPECT_EQ(PolicySpec::parse("none").label(), "none");
  EXPECT_EQ(PolicySpec::parse("never-evict").label(), "never-evict");
}

TEST(PolicySpecDeathTest, RejectsBadSpecs) {
  EXPECT_DEATH(PolicySpec::parse("frobnicate"), "unknown policy");
  EXPECT_DEATH(PolicySpec::parse("timeout:0"), "positive");
  EXPECT_DEATH(PolicySpec::parse("lru:0"), "positive");
  EXPECT_DEATH(PolicySpec::parse("none:3"), "no parameter");
  EXPECT_DEATH(PolicySpec::parse("timeout:abc"), "integer");
}

TEST(PolicyFactories, ProduceExpectedNames) {
  EXPECT_EQ(make_no_predictor()->name(), "none");
  EXPECT_EQ(make_never_evict_predictor()->name(), "never-evict");
  EXPECT_EQ(make_timeout_predictor(100_ns)->name(), "timeout");
  EXPECT_EQ(make_counter_predictor(8)->name(), "counter");
  EXPECT_EQ(make_policy(PolicySpec::parse("lru:4"))->name(), "lru");
  EXPECT_EQ(make_policy(PolicySpec::parse("lfu-decay:4"))->name(),
            "lfu-decay");
  EXPECT_EQ(make_policy(PolicySpec::parse("deadline:100"))->name(),
            "deadline");
  EXPECT_EQ(make_policy(PolicySpec::parse("hybrid:4"))->name(), "hybrid");
  EXPECT_EQ(make_policy(PolicySpec::parse("phase:100"))->name(), "phase");
}

}  // namespace
}  // namespace pmx
