#include <gtest/gtest.h>

#include "predictor/predictor.hpp"
#include "predictor/timeout_predictor.hpp"

namespace pmx {
namespace {

using namespace pmx::literals;

TEST(NoPredictor, NeverHoldsNeverEvicts) {
  NoPredictor p;
  EXPECT_FALSE(p.should_hold(Conn{0, 1}));
  p.on_establish(Conn{0, 1}, 0_ns);
  p.on_use(Conn{0, 1}, 10_ns);
  EXPECT_TRUE(p.collect_evictions(1000000_ns).empty());
}

TEST(NeverEvictPredictor, AlwaysHoldsNeverEvicts) {
  NeverEvictPredictor p;
  EXPECT_TRUE(p.should_hold(Conn{0, 1}));
  p.on_establish(Conn{0, 1}, 0_ns);
  EXPECT_TRUE(p.collect_evictions(1000000_ns).empty());
}

TEST(TimeoutPredictor, EvictsAfterIdlePeriod) {
  TimeoutPredictor p(100_ns);
  p.on_establish(Conn{0, 1}, 0_ns);
  EXPECT_TRUE(p.collect_evictions(50_ns).empty());
  const auto evicted = p.collect_evictions(100_ns);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], (Conn{0, 1}));
  // Evicted connections are forgotten.
  EXPECT_TRUE(p.collect_evictions(1000_ns).empty());
}

TEST(TimeoutPredictor, UseResetsTheClock) {
  TimeoutPredictor p(100_ns);
  p.on_establish(Conn{0, 1}, 0_ns);
  p.on_use(Conn{0, 1}, 80_ns);
  EXPECT_TRUE(p.collect_evictions(150_ns).empty());  // 70 ns since use
  EXPECT_EQ(p.collect_evictions(180_ns).size(), 1u);
}

TEST(TimeoutPredictor, ReleaseStopsTracking) {
  TimeoutPredictor p(100_ns);
  p.on_establish(Conn{0, 1}, 0_ns);
  p.on_release(Conn{0, 1}, 50_ns);
  EXPECT_TRUE(p.collect_evictions(500_ns).empty());
  EXPECT_EQ(p.tracked(), 0u);
}

TEST(TimeoutPredictor, EvictionsAreSortedBySrcDst) {
  // Eviction order must not depend on unordered_map bucket order: the
  // collector normalizes to (src, dst) so scheduler unholds replay
  // identically on every platform.
  TimeoutPredictor p(10_ns);
  const std::vector<Conn> conns{{7, 2}, {1, 9}, {7, 0}, {3, 3}, {0, 5}};
  for (const auto& c : conns) {
    p.on_establish(c, 0_ns);
  }
  const auto evicted = p.collect_evictions(100_ns);
  ASSERT_EQ(evicted.size(), conns.size());
  const std::vector<Conn> expect{{0, 5}, {1, 9}, {3, 3}, {7, 0}, {7, 2}};
  EXPECT_EQ(evicted, expect);
}

TEST(CounterPredictor, EvictionsAreSortedBySrcDst) {
  CounterPredictor p(1);
  p.on_establish(Conn{9, 1}, 0_ns);
  p.on_establish(Conn{2, 4}, 0_ns);
  p.on_establish(Conn{5, 0}, 0_ns);
  p.on_use(Conn{0, 0}, 1_ns);
  p.on_use(Conn{0, 0}, 2_ns);
  auto evicted = p.collect_evictions(3_ns);
  // Conn{0,0} stays fresh; the three established conns age out in order.
  const std::vector<Conn> expect{{2, 4}, {5, 0}, {9, 1}};
  EXPECT_EQ(evicted, expect);
}

TEST(TimeoutPredictor, TracksConnectionsIndependently) {
  TimeoutPredictor p(100_ns);
  p.on_establish(Conn{0, 1}, 0_ns);
  p.on_establish(Conn{2, 3}, 60_ns);
  const auto evicted = p.collect_evictions(110_ns);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], (Conn{0, 1}));
  EXPECT_EQ(p.tracked(), 1u);
}

TEST(TimeoutPredictor, FlushForgetsEverything) {
  TimeoutPredictor p(100_ns);
  p.on_establish(Conn{0, 1}, 0_ns);
  p.on_establish(Conn{1, 2}, 0_ns);
  p.on_flush();
  EXPECT_EQ(p.tracked(), 0u);
  EXPECT_TRUE(p.collect_evictions(1000_ns).empty());
}

TEST(TimeoutPredictorDeathTest, RejectsNonPositiveTimeout) {
  EXPECT_DEATH(TimeoutPredictor(0_ns), "positive");
}

TEST(CounterPredictor, EvictsAfterOtherUses) {
  CounterPredictor p(3);
  p.on_establish(Conn{0, 1}, 0_ns);
  p.on_use(Conn{0, 1}, 1_ns);
  // Three uses of other connections ripen (0,1).
  p.on_use(Conn{2, 3}, 2_ns);
  p.on_use(Conn{4, 5}, 3_ns);
  EXPECT_TRUE(p.collect_evictions(4_ns).empty());  // only 2 other uses
  p.on_use(Conn{2, 3}, 5_ns);
  const auto evicted = p.collect_evictions(6_ns);
  ASSERT_GE(evicted.size(), 1u);
  EXPECT_TRUE(std::find(evicted.begin(), evicted.end(), Conn{0, 1}) !=
              evicted.end());
}

TEST(CounterPredictor, OwnUseResetsCounter) {
  CounterPredictor p(3);
  p.on_establish(Conn{0, 1}, 0_ns);
  p.on_use(Conn{2, 3}, 1_ns);
  p.on_use(Conn{2, 3}, 2_ns);
  p.on_use(Conn{0, 1}, 3_ns);  // reset
  p.on_use(Conn{2, 3}, 4_ns);
  p.on_use(Conn{2, 3}, 5_ns);
  EXPECT_TRUE(p.collect_evictions(6_ns).empty());  // only 2 since reset
}

TEST(CounterPredictor, NoCommunicationMeansNoEviction) {
  // The paper's motivation for the counter scheme: a compute phase with no
  // communication must not age connections.
  CounterPredictor p(3);
  p.on_establish(Conn{0, 1}, 0_ns);
  // Arbitrarily long "time" passes with no uses at all.
  EXPECT_TRUE(p.collect_evictions(TimeNs{1000000000}).empty());
}

TEST(CounterPredictor, ReleaseStopsTracking) {
  CounterPredictor p(2);
  p.on_establish(Conn{0, 1}, 0_ns);
  p.on_release(Conn{0, 1}, 1_ns);
  p.on_use(Conn{2, 3}, 2_ns);
  p.on_use(Conn{4, 5}, 3_ns);
  EXPECT_TRUE(p.collect_evictions(4_ns).empty());
}

TEST(CounterPredictor, FlushForgetsEverything) {
  CounterPredictor p(2);
  p.on_establish(Conn{0, 1}, 0_ns);
  p.on_flush();
  p.on_use(Conn{2, 3}, 1_ns);
  p.on_use(Conn{4, 5}, 2_ns);
  EXPECT_TRUE(p.collect_evictions(3_ns).empty());
  EXPECT_EQ(p.tracked(), 2u);  // only the connections used after the flush
}

TEST(CounterPredictorDeathTest, RejectsZeroThreshold) {
  EXPECT_DEATH(CounterPredictor(0), "positive");
}

TEST(PredictorFactories, ProduceExpectedKinds) {
  EXPECT_EQ(make_no_predictor()->name(), "none");
  EXPECT_EQ(make_never_evict_predictor()->name(), "never-evict");
  EXPECT_EQ(make_timeout_predictor(100_ns)->name(), "timeout");
  EXPECT_EQ(make_counter_predictor(8)->name(), "counter");
}

}  // namespace
}  // namespace pmx
