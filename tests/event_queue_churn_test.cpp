// Churn regression for the event queue: heavy interleavings of push, cancel
// (before and after firing), and pop must preserve time order, FIFO order of
// ties, and lazy-cancel semantics -- and the tombstone set must not grow
// without bound when ids are cancelled after their events already fired
// (the NIC retransmit-timer pattern).

#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace pmx {
namespace {

TEST(EventQueueChurn, RandomizedPushCancelPopMatchesModel) {
  Rng rng(1234);
  for (int round = 0; round < 20; ++round) {
    EventQueue q;
    struct Model {
      std::int64_t time;
      std::uint64_t seq;
      bool cancelled = false;
    };
    std::vector<Model> model;
    std::vector<EventId> ids;
    std::vector<std::uint64_t> fired;

    std::uint64_t seq = 0;
    for (int op = 0; op < 500; ++op) {
      if (rng.chance(0.5) || ids.empty()) {
        const auto t = static_cast<std::int64_t>(rng.below(1000));
        const std::uint64_t my_seq = seq++;
        ids.push_back(q.push(TimeNs{t}, [&fired, my_seq] {
          fired.push_back(my_seq);
        }));
        model.push_back({t, my_seq});
      } else if (rng.chance(0.3)) {
        // Cancel a random id -- possibly one that already fired (no-op).
        const std::size_t pick = rng.below(ids.size());
        q.cancel(ids[pick]);
        model[pick].cancelled = true;
      } else if (!q.empty()) {
        auto ev = q.pop();
        ev.fn();
      }
    }
    while (!q.empty()) {
      q.pop().fn();
    }

    // Expected: every never-cancelled-while-pending event fires exactly
    // once, in (time, insertion) order among the not-yet-fired set. Build
    // the expectation from the model: events cancelled before they fired
    // are missing from `fired`.
    for (const auto& m : model) {
      const bool did_fire =
          std::find(fired.begin(), fired.end(), m.seq) != fired.end();
      if (m.cancelled) {
        // May or may not have fired (cancel could have come after the pop),
        // but never twice.
        EXPECT_LE(std::count(fired.begin(), fired.end(), m.seq), 1);
      } else {
        EXPECT_TRUE(did_fire) << "seq " << m.seq;
        EXPECT_EQ(std::count(fired.begin(), fired.end(), m.seq), 1);
      }
    }
  }
}

TEST(EventQueueChurn, DrainOrderIsTimeThenFifo) {
  EventQueue q;
  std::vector<int> order;
  Rng rng(99);
  struct Pushed {
    std::int64_t time;
    int tag;
  };
  std::vector<Pushed> pushed;
  for (int i = 0; i < 300; ++i) {
    const auto t = static_cast<std::int64_t>(rng.below(20));  // many ties
    q.push(TimeNs{t}, [&order, i] { order.push_back(i); });
    pushed.push_back({t, i});
  }
  std::int64_t last_time = -1;
  while (!q.empty()) {
    const TimeNs t = q.next_time();
    EXPECT_GE(t.ns(), last_time);
    last_time = t.ns();
    q.pop().fn();
  }
  ASSERT_EQ(order.size(), pushed.size());
  // Stable sort of the input by time is exactly the drain order.
  std::stable_sort(pushed.begin(), pushed.end(),
                   [](const Pushed& a, const Pushed& b) {
                     return a.time < b.time;
                   });
  for (std::size_t i = 0; i < pushed.size(); ++i) {
    EXPECT_EQ(order[i], pushed[i].tag) << i;
  }
}

TEST(EventQueueChurn, CancelAfterFireDoesNotAccumulateTombstones) {
  EventQueue q;
  // The retransmit pattern: push a timer, pop+run it, then cancel the stale
  // id. Thousands of such cancels must not leave the queue holding
  // thousands of tombstones (they can never match a future entry).
  for (int i = 0; i < 5000; ++i) {
    const EventId id = q.push(TimeNs{i}, [] {});
    q.pop();
    q.cancel(id);  // stale: already fired
  }
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size_including_cancelled(), 0u);
  // A fresh event still behaves normally afterwards.
  bool ran = false;
  q.push(TimeNs{1}, [&ran] { ran = true; });
  ASSERT_FALSE(q.empty());
  q.pop().fn();
  EXPECT_TRUE(ran);
}

TEST(EventQueueChurn, EmptyReflectsOnlyLiveEvents) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 64; ++i) {
    ids.push_back(q.push(TimeNs{i}, [] {}));
  }
  for (const EventId id : ids) {
    q.cancel(id);
  }
  EXPECT_TRUE(q.empty());  // all cancelled, none should surface via pop
}

TEST(EventQueueChurn, PendingCancelChurnCompactsTheHeap) {
  // The watchdog re-arm pattern: a long-lived far-future timer is pushed
  // and cancelled over and over while still pending. Lazy cancellation
  // alone would let the dead entries and their tombstones grow without
  // bound; the compaction sweep must keep both proportional to the live
  // set.
  EventQueue q;
  std::vector<EventId> live;
  for (int i = 0; i < 100; ++i) {
    live.push_back(q.push(TimeNs{1'000'000 + i}, [] {}));
  }
  for (int round = 0; round < 10'000; ++round) {
    const EventId id = q.push(TimeNs{2'000'000 + round}, [] {});
    q.cancel(id);  // cancelled while pending: a real tombstone
  }
  // 10k dead pushes against 100 live events: without compaction the heap
  // would hold ~10100 entries. With it, dead entries are swept every time
  // tombstones outnumber half the heap.
  EXPECT_LT(q.size_including_cancelled(), 500u);
  EXPECT_LT(q.tombstones(), 500u);
  // Every live event is still there and drains in order.
  std::size_t drained = 0;
  while (!q.empty()) {
    q.pop();
    ++drained;
  }
  EXPECT_EQ(drained, live.size());
}

TEST(EventQueueChurn, CompactionPreservesOrderAndCancelSemantics) {
  Rng rng(4321);
  EventQueue q;
  struct Model {
    std::int64_t time;
    std::uint64_t seq;
    bool cancelled = false;
  };
  std::vector<Model> model;
  std::vector<EventId> ids;
  std::vector<std::uint64_t> fired;
  std::uint64_t seq = 0;
  // Heavy pending-cancel churn (70% cancel rate) to force many compaction
  // sweeps, then drain and compare against the model.
  for (int op = 0; op < 20'000; ++op) {
    const auto t = static_cast<std::int64_t>(rng.below(100'000));
    const std::uint64_t my_seq = seq++;
    ids.push_back(q.push(TimeNs{t}, [&fired, my_seq] {
      fired.push_back(my_seq);
    }));
    model.push_back({t, my_seq});
    if (rng.chance(0.7)) {
      const std::size_t pick = rng.below(ids.size());
      q.cancel(ids[pick]);
      model[pick].cancelled = true;
    }
  }
  while (!q.empty()) {
    q.pop().fn();
  }
  std::vector<std::uint64_t> expected;
  for (const auto& m : model) {
    if (!m.cancelled) {
      expected.push_back(m.seq);
    }
  }
  std::stable_sort(expected.begin(), expected.end(),
                   [&model](std::uint64_t a, std::uint64_t b) {
                     return model[a].time < model[b].time;
                   });
  EXPECT_EQ(fired, expected);
  EXPECT_EQ(q.tombstones(), 0u);
}

}  // namespace
}  // namespace pmx
