#include "traffic/program.hpp"

#include <gtest/gtest.h>

#include "traffic/patterns.hpp"

namespace pmx {
namespace {

using namespace pmx::literals;

TEST(Workload, TotalBytesAndMessages) {
  Workload w;
  w.programs.resize(3);
  w.programs[0].push_back(Command::send(1, 100));
  w.programs[0].push_back(Command::compute(50_ns));
  w.programs[1].push_back(Command::send(2, 200));
  w.programs[1].push_back(Command::send(0, 300));
  EXPECT_EQ(w.total_bytes(), 600u);
  EXPECT_EQ(w.num_messages(), 3u);
}

TEST(Workload, SinglePhaseWithoutBarriers) {
  Workload w;
  w.programs.resize(2);
  w.programs[0].push_back(Command::send(1, 10));
  EXPECT_EQ(w.num_phases(), 1u);
}

TEST(Workload, PhasesCountBarriers) {
  Workload w;
  w.programs.resize(2);
  for (auto& p : w.programs) {
    p.push_back(Command::barrier());
    p.push_back(Command::barrier());
  }
  EXPECT_EQ(w.num_phases(), 3u);
}

TEST(WorkloadDeathTest, MismatchedBarrierCounts) {
  Workload w;
  w.programs.resize(2);
  w.programs[0].push_back(Command::barrier());
  EXPECT_DEATH((void)w.num_phases(), "barrier count");
}

TEST(Workload, InjectionEjectionLoads) {
  Workload w;
  w.programs.resize(3);
  w.programs[0].push_back(Command::send(2, 100));
  w.programs[0].push_back(Command::send(1, 100));
  w.programs[1].push_back(Command::send(2, 50));
  EXPECT_EQ(w.max_injection_bytes(), 200u);  // node 0 sends 200
  EXPECT_EQ(w.max_ejection_bytes(), 150u);   // node 2 receives 150
}

TEST(Workload, IdealMakespanSingleSource) {
  // One node sends 800 bytes total at 0.8 B/ns: lower bound 1000 ns.
  Workload w;
  w.programs.resize(4);
  w.programs[0].push_back(Command::send(1, 400));
  w.programs[0].push_back(Command::send(2, 400));
  EXPECT_EQ(w.ideal_makespan(0.8).ns(), 1000);
}

TEST(Workload, IdealMakespanEjectionBound) {
  // Three nodes each send 400 B to node 3: the ejection port carries 1200 B.
  Workload w;
  w.programs.resize(4);
  for (NodeId u = 0; u < 3; ++u) {
    w.programs[u].push_back(Command::send(3, 400));
  }
  EXPECT_EQ(w.ideal_makespan(0.8).ns(), 1500);
}

TEST(Workload, IdealMakespanSumsPhases) {
  // Phase 1: node 0 sends 400 B; phase 2: node 1 sends 800 B.
  // Phases are barrier-separated, so the bounds add: 500 + 1000.
  Workload w;
  w.programs.resize(2);
  w.programs[0].push_back(Command::send(1, 400));
  w.programs[0].push_back(Command::barrier());
  w.programs[1].push_back(Command::barrier());
  w.programs[1].push_back(Command::send(0, 800));
  EXPECT_EQ(w.ideal_makespan(0.8).ns(), 1500);
}

TEST(Workload, ScatterIdealEqualsRootSerialization) {
  const std::size_t n = 16;
  const Workload w = patterns::scatter(n, 64);
  // Root injects 15 * 64 bytes at 0.8 B/ns.
  EXPECT_EQ(w.ideal_makespan(0.8).ns(),
            static_cast<std::int64_t>(15 * 64 / 0.8));
}

TEST(Command, FactoryHelpers) {
  const Command s = Command::send(4, 128);
  EXPECT_EQ(s.kind, Command::Kind::kSend);
  EXPECT_EQ(s.dst, 4u);
  EXPECT_EQ(s.bytes, 128u);
  EXPECT_EQ(Command::barrier().kind, Command::Kind::kBarrier);
  EXPECT_EQ(Command::flush().kind, Command::Kind::kFlush);
  const Command c = Command::compute(500_ns);
  EXPECT_EQ(c.kind, Command::Kind::kCompute);
  EXPECT_EQ(c.delay, 500_ns);
}

}  // namespace
}  // namespace pmx
