// Seeded chaos campaign across all four switching paradigms: random control
// message loss/corruption/delay with the self-healing machinery and the
// recovery-mode auditor on. Every run must terminate with every message
// delivered, a clean final audit, and bit-identical metrics on a repeat run.

#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "traffic/patterns.hpp"

namespace pmx {
namespace {

constexpr SwitchKind kKinds[] = {
    SwitchKind::kWormhole,
    SwitchKind::kCircuit,
    SwitchKind::kDynamicTdm,
    SwitchKind::kPreloadTdm,
};

RunConfig chaos_config(SwitchKind kind, bool heal) {
  RunConfig config;
  config.params.num_nodes = 16;
  config.params.ctrl.loss = 0.15;
  config.params.ctrl.corrupt = 0.05;
  config.params.ctrl.delay_rate = 0.1;
  config.params.ctrl.heal = heal;
  config.params.fault.force_enable = true;  // arm the conservation ledger
  config.params.audit.enabled = true;
  config.params.audit.period_slots = 8;
  config.kind = kind;
  config.horizon = TimeNs{500'000'000};
  return config;
}

TEST(CtrlChaos, EveryParadigmSurvivesLossyControlPlane) {
  const Workload workload = patterns::random_mesh(16, 256, 2, 11);
  for (const SwitchKind kind : kKinds) {
    const RunResult result = run_workload(chaos_config(kind, true), workload);
    SCOPED_TRACE(to_string(kind));
    // Terminates with zero wedged NICs and zero leaked holds: everything
    // delivered and the final post-quiesce audit found nothing.
    EXPECT_TRUE(result.completed);
    EXPECT_EQ(result.metrics.messages, workload.num_messages());
    EXPECT_GT(result.metrics.ctrl_dropped, 0u);  // chaos actually happened
    EXPECT_GT(result.metrics.audits, 0u);
  }
}

TEST(CtrlChaos, CampaignIsSeedDeterministic) {
  const Workload workload = patterns::random_mesh(16, 256, 2, 11);
  for (const SwitchKind kind : kKinds) {
    const RunResult a = run_workload(chaos_config(kind, true), workload);
    const RunResult b = run_workload(chaos_config(kind, true), workload);
    SCOPED_TRACE(to_string(kind));
    EXPECT_TRUE(a.metrics == b.metrics);
    EXPECT_EQ(a.sim_events, b.sim_events);
    EXPECT_EQ(a.counters, b.counters);
  }
}

TEST(CtrlChaos, HealingOffStillTerminatesViaAuditorResync) {
  const Workload workload = patterns::random_mesh(16, 256, 1, 11);
  for (const SwitchKind kind : kKinds) {
    const RunResult result = run_workload(chaos_config(kind, false), workload);
    SCOPED_TRACE(to_string(kind));
    EXPECT_TRUE(result.completed);
    EXPECT_EQ(result.metrics.messages, workload.num_messages());
    EXPECT_EQ(result.metrics.lease_expiries, 0u);  // healing really was off
  }
}

}  // namespace
}  // namespace pmx
