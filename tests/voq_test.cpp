#include "nic/voq.hpp"

#include <gtest/gtest.h>

namespace pmx {
namespace {

Message msg(MessageId id, NodeId src, NodeId dst, std::uint64_t bytes) {
  Message m;
  m.id = id;
  m.src = src;
  m.dst = dst;
  m.bytes = bytes;
  return m;
}

TEST(VoqSet, StartsEmpty) {
  VoqSet voqs(8);
  EXPECT_EQ(voqs.num_dests(), 8u);
  EXPECT_EQ(voqs.total_depth(), 0u);
  EXPECT_EQ(voqs.total_bytes(), 0u);
  for (NodeId d = 0; d < 8; ++d) {
    EXPECT_TRUE(voqs.empty(d));
  }
  EXPECT_FALSE(voqs.pending().any());
}

TEST(VoqSet, PushRoutesToDestinationQueue) {
  VoqSet voqs(4);
  voqs.push(msg(1, 0, 2, 100));
  EXPECT_FALSE(voqs.empty(2));
  EXPECT_TRUE(voqs.empty(1));
  EXPECT_EQ(voqs.depth(2), 1u);
  EXPECT_EQ(voqs.total_bytes(), 100u);
  EXPECT_EQ(voqs.head(2).id, 1u);
  EXPECT_EQ(voqs.head_remaining(2), 100u);
}

TEST(VoqSet, PendingViewIsRequestVector) {
  VoqSet voqs(6);
  voqs.push(msg(1, 0, 5, 10));
  voqs.push(msg(2, 0, 1, 10));
  voqs.push(msg(3, 0, 5, 10));
  std::vector<NodeId> dests;
  voqs.pending().for_each_set(
      [&](std::size_t d) { dests.push_back(static_cast<NodeId>(d)); });
  EXPECT_EQ(dests, (std::vector<NodeId>{1, 5}));
  // The view is maintained incrementally: draining a queue clears its bit.
  Message completed;
  voqs.consume(1, 10, &completed);
  EXPECT_FALSE(voqs.pending().get(1));
  EXPECT_TRUE(voqs.pending().get(5));
}

TEST(VoqSet, ConsumePartialKeepsHead) {
  VoqSet voqs(4);
  voqs.push(msg(1, 0, 3, 100));
  Message completed;
  EXPECT_EQ(voqs.consume(3, 60, &completed), 60u);
  EXPECT_EQ(completed.id, 0u);  // not finished
  EXPECT_EQ(voqs.head_remaining(3), 40u);
  EXPECT_EQ(voqs.total_bytes(), 40u);
  EXPECT_EQ(voqs.depth(3), 1u);
}

TEST(VoqSet, ConsumeExactCompletesMessage) {
  VoqSet voqs(4);
  voqs.push(msg(7, 0, 3, 100));
  Message completed;
  EXPECT_EQ(voqs.consume(3, 100, &completed), 100u);
  EXPECT_EQ(completed.id, 7u);
  EXPECT_TRUE(voqs.empty(3));
  EXPECT_EQ(voqs.total_depth(), 0u);
}

TEST(VoqSet, ConsumeBudgetLargerThanHeadStopsAtMessageBoundary) {
  VoqSet voqs(4);
  voqs.push(msg(1, 0, 3, 30));
  voqs.push(msg(2, 0, 3, 50));
  Message completed;
  // consume() handles one message at a time; a 100-byte budget takes the
  // 30-byte head only.
  EXPECT_EQ(voqs.consume(3, 100, &completed), 30u);
  EXPECT_EQ(completed.id, 1u);
  EXPECT_EQ(voqs.head(3).id, 2u);
  EXPECT_EQ(voqs.total_bytes(), 50u);
}

TEST(VoqSet, FifoOrderPerDestination) {
  VoqSet voqs(4);
  voqs.push(msg(1, 0, 2, 10));
  voqs.push(msg(2, 0, 2, 10));
  voqs.push(msg(3, 0, 2, 10));
  Message completed;
  voqs.consume(2, 10, &completed);
  EXPECT_EQ(completed.id, 1u);
  voqs.consume(2, 10, &completed);
  EXPECT_EQ(completed.id, 2u);
  voqs.consume(2, 10, &completed);
  EXPECT_EQ(completed.id, 3u);
}

TEST(VoqSet, IndependentQueues) {
  VoqSet voqs(4);
  voqs.push(msg(1, 0, 1, 10));
  voqs.push(msg(2, 0, 2, 20));
  Message completed;
  voqs.consume(2, 20, &completed);
  EXPECT_EQ(completed.id, 2u);
  EXPECT_FALSE(voqs.empty(1));
  EXPECT_EQ(voqs.total_bytes(), 10u);
}

TEST(VoqSet, NullCompletedPointerAllowed) {
  VoqSet voqs(4);
  voqs.push(msg(1, 0, 1, 10));
  EXPECT_EQ(voqs.consume(1, 10, nullptr), 10u);
  EXPECT_TRUE(voqs.empty(1));
}

TEST(VoqSetDeathTest, RejectsZeroByteMessage) {
  VoqSet voqs(4);
  EXPECT_DEATH(voqs.push(msg(1, 0, 1, 0)), "zero-byte");
}

TEST(VoqSetDeathTest, RejectsOutOfRangeDestination) {
  VoqSet voqs(4);
  EXPECT_DEATH(voqs.push(msg(1, 0, 9, 10)), "out of range");
}

TEST(VoqSetDeathTest, ConsumeFromEmptyQueue) {
  VoqSet voqs(4);
  EXPECT_DEATH(voqs.consume(1, 10, nullptr), "empty");
}

}  // namespace
}  // namespace pmx
