#include "fabric/fattree.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "compiled/decomposition.hpp"

namespace pmx {
namespace {

TEST(FatTree, Geometry) {
  const FatTree tree(4, 8, 4);  // 4 leaves x 8 ports, 4 spines
  EXPECT_EQ(tree.size(), 32u);
  EXPECT_EQ(tree.leaf_of(0), 0u);
  EXPECT_EQ(tree.leaf_of(7), 0u);
  EXPECT_EQ(tree.leaf_of(8), 1u);
  EXPECT_EQ(tree.leaf_of(31), 3u);
  EXPECT_TRUE(tree.is_local(Conn{0, 7}));
  EXPECT_FALSE(tree.is_local(Conn{0, 8}));
  EXPECT_DOUBLE_EQ(tree.oversubscription(), 2.0);
}

TEST(FatTree, LocalTrafficUnconstrained) {
  // Intra-leaf permutations never touch the spines.
  const FatTree tree(4, 8, 1);  // heavily oversubscribed
  BitMatrix config(32);
  for (std::size_t leaf = 0; leaf < 4; ++leaf) {
    for (std::size_t p = 0; p < 8; ++p) {
      const std::size_t u = leaf * 8 + p;
      const std::size_t v = leaf * 8 + (p + 1) % 8;
      config.set(u, v);
    }
  }
  EXPECT_TRUE(tree.routable(config));
}

TEST(FatTree, UplinkCapacityEnforced) {
  const FatTree tree(4, 8, 2);  // 2 uplinks per leaf
  BitMatrix config(32);
  config.set(0, 8);
  config.set(1, 9);
  EXPECT_TRUE(tree.routable(config));  // exactly at capacity
  config.set(2, 10);                   // third uplink from leaf 0
  EXPECT_FALSE(tree.routable(config));
}

TEST(FatTree, DownlinkCapacityEnforced) {
  const FatTree tree(4, 8, 2);
  BitMatrix config(32);
  config.set(0, 16);   // leaf 0 -> leaf 2
  config.set(8, 17);   // leaf 1 -> leaf 2
  EXPECT_TRUE(tree.routable(config));
  config.set(24, 18);  // leaf 3 -> leaf 2: third downlink into leaf 2
  EXPECT_FALSE(tree.routable(config));
}

TEST(FatTree, FullBisectionMatchesCrossbarForPermutations) {
  // num_spines == leaf_ports: any permutation is realizable.
  const FatTree tree(4, 8, 8);
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const auto perm = rng.permutation(32);
    BitMatrix config(32);
    for (std::size_t u = 0; u < 32; ++u) {
      config.set(u, perm[u]);
    }
    EXPECT_TRUE(tree.routable(config));
  }
}

TEST(DecomposeFatTree, CoversEverythingWithinCapacity) {
  const FatTree tree(4, 8, 2);
  Rng rng(9);
  std::vector<Conn> conns;
  BitMatrix used(32);
  for (int e = 0; e < 96; ++e) {
    const Conn c{rng.below(32), rng.below(32)};
    if (!used.get(c.src, c.dst)) {
      used.set(c.src, c.dst);
      conns.push_back(c);
    }
  }
  const FatTreeDecomposition d = decompose_fattree(tree, conns);
  BitMatrix covered(32);
  for (const auto& cfg : d.configs) {
    EXPECT_TRUE(tree.routable(cfg));
    for (std::size_t u = 0; u < 32; ++u) {
      for (std::size_t v = 0; v < 32; ++v) {
        if (cfg.get(u, v)) {
          EXPECT_FALSE(covered.get(u, v));
          covered.set(u, v);
        }
      }
    }
  }
  EXPECT_EQ(covered.count(), conns.size());
}

TEST(DecomposeFatTree, OversubscriptionInflatesDegree) {
  // An all-inter-leaf permutation workload: with full bisection it fits in
  // as many configs as the crossbar needs; halving the spines roughly
  // doubles the degree.
  const std::size_t n = 32;
  std::vector<Conn> conns;
  for (std::size_t k = 1; k <= 3; ++k) {
    for (std::size_t u = 0; u < n; ++u) {
      conns.push_back(Conn{u, (u + 8 * k) % n});  // always crosses leaves
    }
  }
  // Each leaf sources 3 permutations x 8 ports = 24 inter-leaf connections;
  // with s spines per leaf a config carries at most s of them, so the
  // degree is at least 24/s.
  const std::size_t full =
      decompose_fattree(FatTree(4, 8, 8), conns).degree();
  const std::size_t half =
      decompose_fattree(FatTree(4, 8, 4), conns).degree();
  const std::size_t quarter =
      decompose_fattree(FatTree(4, 8, 2), conns).degree();
  EXPECT_EQ(full, 3u);  // crossbar degree of 3 shift permutations
  EXPECT_GE(half, 6u);
  EXPECT_GE(quarter, 12u);
  EXPECT_GT(quarter, half);
}

TEST(DecomposeFatTree, LocalTrafficFreeUnderOversubscription) {
  // Intra-leaf working sets ignore the spine bottleneck entirely.
  const FatTree tree(4, 8, 1);
  std::vector<Conn> conns;
  for (std::size_t leaf = 0; leaf < 4; ++leaf) {
    for (std::size_t p = 0; p < 8; ++p) {
      conns.push_back(
          Conn{leaf * 8 + p, leaf * 8 + (p + 1) % 8});
      conns.push_back(
          Conn{leaf * 8 + p, leaf * 8 + (p + 2) % 8});
    }
  }
  EXPECT_EQ(decompose_fattree(tree, conns).degree(), 2u);
}

TEST(DecomposeFatTree, EmptySet) {
  EXPECT_EQ(decompose_fattree(FatTree(2, 4, 2), {}).degree(), 0u);
}

TEST(FatTreeDeathTest, DegenerateConfigRejected) {
  EXPECT_DEATH(FatTree(0, 4, 2), "degenerate");
}

}  // namespace
}  // namespace pmx
