// Differential test: the word-parallel SL pass (sl_array_pass_fast) must be
// bit-identical to the gate-accurate cell-by-cell oracle (sl_array_pass_ref)
// -- same toggle matrix AND same establish/release/blocked counts -- for any
// partial-permutation slot configuration, any change-request matrix, and any
// rotated wavefront origin (a, b). Over 1000 randomized cases run here,
// including preschedule-derived requests and fault-masked ports.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/bitmatrix.hpp"
#include "common/rng.hpp"
#include "sched/presched.hpp"
#include "sched/sl_array.hpp"

namespace pmx {
namespace {

BitMatrix random_requests(Rng& rng, std::size_t n, double density) {
  BitMatrix m(n);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = 0; v < n; ++v) {
      if (rng.chance(density)) {
        m.set(u, v);
      }
    }
  }
  return m;
}

BitMatrix random_partial_permutation(Rng& rng, std::size_t n, double fill) {
  BitMatrix m(n);
  const auto perm = rng.permutation(n);
  for (std::size_t u = 0; u < n; ++u) {
    if (rng.chance(fill)) {
      m.set(u, perm[u]);
    }
  }
  return m;
}

/// Run both implementations and require bit-identical results.
void expect_identical(const BitMatrix& l, const BitMatrix& config,
                      std::size_t a, std::size_t b) {
  const SlPassResult ref = sl_array_pass_ref(l, config, a, b);
  const SlPassResult fast =
      sl_array_pass_fast(l, config, config.row_or(), config.col_or(), a, b);
  ASSERT_EQ(fast.toggles, ref.toggles)
      << "n=" << config.size() << " a=" << a << " b=" << b;
  EXPECT_EQ(fast.establishes, ref.establishes);
  EXPECT_EQ(fast.releases, ref.releases);
  EXPECT_EQ(fast.blocked, ref.blocked);
}

class SlArrayDiffTest : public ::testing::TestWithParam<std::size_t> {};

// Raw random request matrices at swept densities and slot fills, with the
// wavefront origin rotated independently in both axes.
TEST_P(SlArrayDiffTest, RandomRequestsMatchReference) {
  const std::size_t n = GetParam();
  Rng rng(n * 7919 + 101);
  const double densities[] = {0.02, 0.1, 0.5, 0.95};
  const double fills[] = {0.0, 0.3, 0.7, 1.0};
  for (const double density : densities) {
    for (const double fill : fills) {
      for (int rep = 0; rep < 6; ++rep) {
        const BitMatrix config = random_partial_permutation(rng, n, fill);
        const BitMatrix l = random_requests(rng, n, density);
        expect_identical(l, config, rng.below(n), rng.below(n));
      }
    }
  }
}

// Requests produced by the pre-scheduling logic (the shape the scheduler
// actually feeds the array: releases for dropped requests, establishes
// filtered by B*).
TEST_P(SlArrayDiffTest, PrescheduledRequestsMatchReference) {
  const std::size_t n = GetParam();
  Rng rng(n * 104729 + 7);
  for (int rep = 0; rep < 12; ++rep) {
    const BitMatrix config = random_partial_permutation(rng, n, 0.5);
    const BitMatrix requests = random_requests(rng, n, 0.15);
    const BitMatrix l = preschedule(requests, config, config);
    expect_identical(l, config, rng.below(n), rng.below(n));
  }
}

// Fault interaction: some ports are masked (their request rows/columns are
// forced to zero, exactly what the scheduler does for faulted links) while
// the slot may still hold connections on those ports ("stuck" cells awaiting
// forced release). The establish scan must still agree with the oracle.
TEST_P(SlArrayDiffTest, MaskedPortsMatchReference) {
  const std::size_t n = GetParam();
  Rng rng(n * 31337 + 3);
  for (int rep = 0; rep < 12; ++rep) {
    const BitMatrix config = random_partial_permutation(rng, n, 0.6);
    BitMatrix l = random_requests(rng, n, 0.2);
    // Mask a few input and output ports.
    BitVector down_out(n);
    for (std::size_t p = 0; p < n; ++p) {
      if (rng.chance(0.2)) {  // down input port: no requests from row p
        l.set_row(p, BitVector(n));
      }
      if (rng.chance(0.2)) {
        down_out.set(p);
      }
    }
    for (std::size_t u = 0; u < n; ++u) {
      BitVector row = l.row(u);
      row.and_not(down_out);  // down output port: no requests to column
      l.set_row(u, row);
    }
    expect_identical(l, config, rng.below(n), rng.below(n));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SlArrayDiffTest,
                         ::testing::Values(1, 2, 3, 8, 31, 63, 64, 65, 128));

// Exhaustive origin sweep at one small size: every (a, b) pair.
TEST(SlArrayDiff, AllOriginsSmall) {
  constexpr std::size_t n = 9;
  Rng rng(42);
  for (int rep = 0; rep < 4; ++rep) {
    const BitMatrix config = random_partial_permutation(rng, n, 0.5);
    const BitMatrix l = random_requests(rng, n, 0.3);
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = 0; b < n; ++b) {
        expect_identical(l, config, a, b);
      }
    }
  }
}

}  // namespace
}  // namespace pmx
