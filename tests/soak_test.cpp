// Long-running randomized soak: inject bursty random traffic into the
// dynamic TDM network over many thousands of slots while sampling global
// invariants. The scheduler's internal PMX_CHECKs (partial-permutation
// configurations, B* consistency) stay armed throughout.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "nic/admission.hpp"
#include "predictor/phase_predictor.hpp"
#include "predictor/timeout_predictor.hpp"
#include "sim/simulator.hpp"
#include "switching/circuit.hpp"
#include "switching/tdm.hpp"
#include "switching/wormhole.hpp"

namespace pmx {
namespace {

using namespace pmx::literals;

class TdmSoakTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, bool>> {};

TEST_P(TdmSoakTest, InvariantsHoldUnderRandomChurn) {
  const auto [seed, multi_slot] = GetParam();
  Simulator sim;
  SystemParams params;
  params.num_nodes = 16;
  params.mux_degree = 4;
  TdmNetwork::Options options;
  options.multi_slot_connections = multi_slot;
  options.predictor = make_timeout_predictor(300_ns);
  TdmNetwork net(sim, params, std::move(options));

  Rng rng(seed);
  std::uint64_t submitted_bytes = 0;
  std::uint64_t submitted_count = 0;

  // Bursty injector: every 50-500 ns, one node enqueues 1-4 messages.
  std::function<void()> inject = [&] {
    if (sim.now() > 300'000_ns) {
      return;  // stop injecting; let the network drain
    }
    const auto u = static_cast<NodeId>(rng.below(16));
    const auto burst = 1 + rng.below(4);
    for (std::uint64_t i = 0; i < burst; ++i) {
      auto v = static_cast<NodeId>(rng.below(15));
      if (v >= u) {
        ++v;
      }
      const std::uint64_t bytes = 8 * (1 + rng.below(64));
      net.submit(u, v, bytes);
      submitted_bytes += bytes;
      ++submitted_count;
    }
    sim.schedule_after(TimeNs{static_cast<std::int64_t>(50 + rng.below(450))},
                       inject);
  };
  sim.schedule_after(0_ns, inject);

  // Invariant sampler: every 10 slots.
  std::uint64_t samples = 0;
  std::function<void()> sample = [&] {
    ++samples;
    const auto& sched = net.scheduler();
    // Conservation: everything submitted is delivered or still queued (or
    // in flight for at most one slot's worth per connection, which is
    // covered by queued_bytes since consumption happens at delivery
    // scheduling time).
    EXPECT_LE(net.delivered_bytes() + net.queued_bytes(), submitted_bytes);
    // B* is the OR of the slots and can't exceed total capacity.
    EXPECT_LE(sched.established().count(), 16u * params.mux_degree);
    // Live multiplexing degree bounded by K.
    EXPECT_LE(sched.live_mux_degree(), params.mux_degree);
    if (sim.now() < 400'000_ns) {
      sim.schedule_after(1_us, sample);
    }
  };
  sim.schedule_after(500_ns, sample);

  sim.run_until(600_us);

  EXPECT_GT(samples, 300u);
  EXPECT_EQ(net.records().size(), submitted_count);
  EXPECT_EQ(net.delivered_bytes(), submitted_bytes);
  EXPECT_EQ(net.queued_bytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Churn, TdmSoakTest,
    ::testing::Combine(::testing::Values<std::uint64_t>(1, 2, 3),
                       ::testing::Bool()));

TEST(TdmSoak, PhasePredictorSurvivesChurn) {
  Simulator sim;
  SystemParams params;
  params.num_nodes = 16;
  TdmNetwork::Options options;
  options.predictor = make_phase_predictor(500_ns, 2_us, 0.3);
  TdmNetwork net(sim, params, std::move(options));
  Rng rng(99);
  std::uint64_t submitted = 0;
  // Alternate between two disjoint communication phases every ~20 us.
  std::function<void()> inject = [&] {
    if (sim.now() > 200'000_ns) {
      return;
    }
    const bool phase_a = (sim.now().ns() / 20'000) % 2 == 0;
    const auto u = static_cast<NodeId>(rng.below(8) + (phase_a ? 0 : 8));
    const auto v = static_cast<NodeId>((u + 1 + rng.below(3)) % 8 +
                                       (phase_a ? 0 : 8));
    if (u != v) {
      net.submit(u, v, 64);
      ++submitted;
    }
    sim.schedule_after(TimeNs{static_cast<std::int64_t>(100 + rng.below(200))},
                       inject);
  };
  sim.schedule_after(0_ns, inject);
  sim.run_until(400_us);
  EXPECT_EQ(net.records().size(), submitted);
  // The working set flips between disjoint halves: the phase predictor
  // should have fired at least once.
  EXPECT_GT(net.counters().value("auto_flushes"), 0u);
}

// Bursty churn against a network with finite VOQ capacity: the admission
// controller sheds under the bursts, yet the occupancy invariant (queued
// backlog bounded by the armed budget) and the conservation ledger
// (submitted == delivered + shed) hold at every sample and at drain.
template <typename NetT>
void bounded_churn_soak(Simulator& sim, NetT& net, std::uint64_t seed,
                        std::size_t nodes, std::uint64_t capacity_bytes) {
  Rng rng(seed);
  std::function<void()> inject = [&] {
    if (sim.now() > 300'000_ns) {
      return;  // stop injecting; let the network drain
    }
    const auto u = static_cast<NodeId>(rng.below(nodes));
    const auto burst = 1 + rng.below(4);
    for (std::uint64_t i = 0; i < burst; ++i) {
      auto v = static_cast<NodeId>(rng.below(nodes - 1));
      if (v >= u) {
        ++v;
      }
      const std::uint64_t bytes = 8 * (1 + rng.below(64));
      // Open-loop injector: a shed message is simply gone (the outcome says
      // so); nothing retries, exactly like the overload campaign.
      net.try_submit(u, v, bytes);
    }
    sim.schedule_after(TimeNs{static_cast<std::int64_t>(50 + rng.below(450))},
                       inject);
  };
  sim.schedule_after(0_ns, inject);

  std::uint64_t samples = 0;
  std::function<void()> sample = [&] {
    ++samples;
    // Conservation mid-flight: everything submitted is delivered, shed, or
    // still inside a bounded queue / the active transfer.
    ASSERT_GE(net.submitted_bytes(),
              net.delivered_bytes() + net.shed_bytes());
    const std::uint64_t in_network =
        net.submitted_bytes() - net.delivered_bytes() - net.shed_bytes();
    // Bounded occupancy: per-source budget plus one in-flight message.
    EXPECT_LE(in_network, nodes * (capacity_bytes + 512));
    if (sim.now() < 400'000_ns) {
      sim.schedule_after(1_us, sample);
    }
  };
  sim.schedule_after(500_ns, sample);

  sim.run_until(600_us);

  EXPECT_GT(samples, 300u);
  EXPECT_GT(net.shed_messages(), 0u);  // the bursts really did overflow
  EXPECT_EQ(net.delivered_count() + net.shed_messages(),
            net.submitted_count());
  EXPECT_EQ(net.delivered_bytes() + net.shed_bytes(), net.submitted_bytes());
}

class BoundedSoakTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static SystemParams bounded_params() {
    SystemParams params;
    params.num_nodes = 16;
    params.admission.capacity_bytes = 1024;
    params.admission.policy = ShedPolicy::kDropOldest;
    return params;
  }
};

TEST_P(BoundedSoakTest, CircuitDrainsUnderBurstyChurn) {
  Simulator sim;
  const SystemParams params = bounded_params();
  CircuitNetwork net(sim, params, CircuitNetwork::Options{});
  bounded_churn_soak(sim, net, GetParam(), params.num_nodes,
                     params.admission.capacity_bytes);
}

TEST_P(BoundedSoakTest, WormholeDrainsUnderBurstyChurn) {
  Simulator sim;
  const SystemParams params = bounded_params();
  WormholeNetwork net(sim, params);
  bounded_churn_soak(sim, net, GetParam(), params.num_nodes,
                     params.admission.capacity_bytes);
}

INSTANTIATE_TEST_SUITE_P(Churn, BoundedSoakTest,
                         ::testing::Values<std::uint64_t>(7, 8, 9));

}  // namespace
}  // namespace pmx
