#include "predictor/working_set.hpp"

#include <gtest/gtest.h>

#include "predictor/phase_predictor.hpp"

namespace pmx {
namespace {

using namespace pmx::literals;

TEST(WorkingSetTracker, CountsDistinctConnections) {
  WorkingSetTracker tracker(1000_ns);
  tracker.observe(Conn{0, 1}, 10_ns);
  tracker.observe(Conn{0, 1}, 20_ns);
  tracker.observe(Conn{2, 3}, 30_ns);
  EXPECT_EQ(tracker.size(), 2u);
}

TEST(WorkingSetTracker, WindowSpansTwoEpochs) {
  WorkingSetTracker tracker(100_ns);
  tracker.observe(Conn{0, 1}, 10_ns);
  tracker.observe(Conn{2, 3}, 120_ns);  // next epoch
  // Both connections are still in the (two-epoch) window.
  EXPECT_EQ(tracker.size(), 2u);
  tracker.observe(Conn{4, 5}, 230_ns);  // rolls again: (0,1) ages out
  EXPECT_EQ(tracker.size(), 2u);
}

TEST(WorkingSetTracker, DegreeIsMultiplexingRequirement) {
  WorkingSetTracker tracker(1000_ns);
  tracker.observe(Conn{0, 1}, 1_ns);
  tracker.observe(Conn{0, 2}, 2_ns);
  tracker.observe(Conn{0, 3}, 3_ns);
  tracker.observe(Conn{5, 3}, 4_ns);
  // Node 0 fans out to 3 destinations -> degree 3.
  EXPECT_EQ(tracker.degree(8), 3u);
}

TEST(WorkingSetTracker, StablePatternDoesNotShift) {
  WorkingSetTracker tracker(100_ns, 0.5);
  for (std::int64_t t = 0; t < 1000; t += 10) {
    tracker.observe(Conn{0, 1}, TimeNs{t});
    tracker.observe(Conn{2, 3}, TimeNs{t});
  }
  EXPECT_FALSE(tracker.phase_shifted(TimeNs{1000}));
  EXPECT_GT(tracker.last_similarity(), 0.9);
}

TEST(WorkingSetTracker, DetectsPhaseChange) {
  WorkingSetTracker tracker(100_ns, 0.5);
  // Phase A for 3 epochs.
  for (std::int64_t t = 0; t < 300; t += 10) {
    tracker.observe(Conn{0, 1}, TimeNs{t});
    tracker.observe(Conn{2, 3}, TimeNs{t});
  }
  EXPECT_FALSE(tracker.phase_shifted(TimeNs{295}));
  // Phase B: disjoint working set.
  for (std::int64_t t = 300; t < 600; t += 10) {
    tracker.observe(Conn{4, 5}, TimeNs{t});
    tracker.observe(Conn{6, 7}, TimeNs{t});
  }
  EXPECT_TRUE(tracker.phase_shifted(TimeNs{600}));
  // Flag clears after reading.
  EXPECT_FALSE(tracker.phase_shifted(TimeNs{600}));
}

TEST(WorkingSetTracker, EmptyEpochsDoNotShift) {
  // Idle periods (computation phases) must not look like phase changes.
  WorkingSetTracker tracker(100_ns, 0.5);
  tracker.observe(Conn{0, 1}, 10_ns);
  EXPECT_FALSE(tracker.phase_shifted(TimeNs{10'000}));
}

TEST(WorkingSetTracker, EpochsCompletedAdvances) {
  WorkingSetTracker tracker(100_ns);
  tracker.observe(Conn{0, 1}, 10_ns);
  tracker.observe(Conn{0, 1}, 450_ns);
  EXPECT_EQ(tracker.epochs_completed(), 4u);
}

TEST(PhasePredictor, EvictsLikeTimeout) {
  const auto p = make_phase_predictor(100_ns, 1000_ns);
  p->on_establish(Conn{0, 1}, 0_ns);
  EXPECT_TRUE(p->should_hold(Conn{0, 1}));
  EXPECT_TRUE(p->collect_evictions(50_ns).empty());
  EXPECT_EQ(p->collect_evictions(150_ns).size(), 1u);
}

TEST(PhasePredictor, RecommendsFlushOnWorkingSetShift) {
  const auto p = make_phase_predictor(10000_ns, 100_ns, 0.5);
  for (std::int64_t t = 0; t < 300; t += 10) {
    p->on_use(Conn{0, 1}, TimeNs{t});
  }
  EXPECT_FALSE(p->recommend_flush(TimeNs{295}));
  for (std::int64_t t = 300; t < 600; t += 10) {
    p->on_use(Conn{4, 5}, TimeNs{t});
  }
  EXPECT_TRUE(p->recommend_flush(TimeNs{600}));
  EXPECT_FALSE(p->recommend_flush(TimeNs{600}));  // one-shot
}

TEST(PhasePredictor, FactoryProducesPhaseKind) {
  EXPECT_EQ(make_phase_predictor(100_ns, 1000_ns)->name(), "phase");
}

TEST(WorkingSetTrackerDeathTest, RejectsBadParameters) {
  EXPECT_DEATH(WorkingSetTracker(0_ns), "positive");
  EXPECT_DEATH(WorkingSetTracker(100_ns, 1.5), "threshold");
}

}  // namespace
}  // namespace pmx
