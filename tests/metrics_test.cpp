#include "core/metrics.hpp"

#include <gtest/gtest.h>

#include "core/driver.hpp"
#include "sim/simulator.hpp"
#include "switching/circuit.hpp"
#include "traffic/patterns.hpp"

namespace pmx {
namespace {

SystemParams small_params(std::size_t n = 4) {
  SystemParams p;
  p.num_nodes = n;
  return p;
}

TEST(Metrics, EmptyRunYieldsZeros) {
  Simulator sim;
  CircuitNetwork net(sim, small_params());
  Workload w;
  w.programs.resize(4);
  const RunMetrics m = compute_metrics(w, net);
  EXPECT_EQ(m.messages, 0u);
  EXPECT_EQ(m.total_bytes, 0u);
  EXPECT_EQ(m.efficiency, 0.0);
}

TEST(Metrics, SingleTransferEfficiency) {
  Simulator sim;
  CircuitNetwork net(sim, small_params());
  Workload w;
  w.programs.resize(4);
  w.programs[0].push_back(Command::send(1, 800));
  TrafficDriver driver(sim, net, w);
  driver.start();
  sim.run();
  const RunMetrics m = compute_metrics(w, net);
  EXPECT_EQ(m.messages, 1u);
  EXPECT_EQ(m.total_bytes, 800u);
  // Ideal: 800 B / 0.8 B/ns = 1000 ns. Actual: 250 establishment + 1000
  // transfer + 110 drain = 1360 ns.
  EXPECT_EQ(m.makespan.ns(), 1360);
  EXPECT_NEAR(m.efficiency, 1000.0 / 1360.0, 1e-9);
  EXPECT_NEAR(m.throughput, 800.0 / 1360.0, 1e-9);
}

TEST(Metrics, LatencyStatistics) {
  Simulator sim;
  CircuitNetwork net(sim, small_params());
  Workload w;
  w.programs.resize(4);
  w.programs[0].push_back(Command::send(1, 80));
  w.programs[2].push_back(Command::send(3, 80));
  TrafficDriver driver(sim, net, w);
  driver.start();
  sim.run();
  const RunMetrics m = compute_metrics(w, net);
  // Both transfers are identical and uncontended.
  EXPECT_EQ(m.avg_latency_ns, m.max_latency_ns);
  EXPECT_EQ(m.p99_latency_ns, m.max_latency_ns);
  EXPECT_GT(m.avg_latency_ns, 0.0);
}

TEST(Metrics, EfficiencyNeverExceedsOne) {
  Simulator sim;
  CircuitNetwork net(sim, small_params(8));
  const Workload w = patterns::uniform_random(8, 1024, 4, 3);
  TrafficDriver driver(sim, net, w);
  driver.start();
  sim.run();
  const RunMetrics m = compute_metrics(w, net);
  EXPECT_LE(m.efficiency, 1.0);
  EXPECT_GT(m.efficiency, 0.0);
}

}  // namespace
}  // namespace pmx
