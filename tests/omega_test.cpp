#include "fabric/omega.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "compiled/decomposition.hpp"

namespace pmx {
namespace {

TEST(OmegaNetwork, SizesAndStages) {
  EXPECT_EQ(OmegaNetwork(2).stages(), 1u);
  EXPECT_EQ(OmegaNetwork(8).stages(), 3u);
  EXPECT_EQ(OmegaNetwork(128).stages(), 7u);
}

TEST(OmegaNetworkDeathTest, RejectsNonPowerOfTwo) {
  EXPECT_DEATH(OmegaNetwork(12), "power of two");
}

TEST(OmegaNetwork, RouteEndsAtDestination) {
  const OmegaNetwork omega(16);
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    const auto src = static_cast<std::size_t>(rng.below(16));
    const auto dst = static_cast<std::size_t>(rng.below(16));
    const auto lines = omega.route(src, dst);
    ASSERT_EQ(lines.size(), omega.stages());
    EXPECT_EQ(lines.back(), dst);
    for (std::size_t s = 0; s < lines.size(); ++s) {
      EXPECT_EQ(lines[s], omega.line_after_stage(src, dst, s));
    }
  }
}

TEST(OmegaNetwork, IdentityPermutationIsRoutable) {
  // The identity is a classic Omega-routable permutation.
  const std::size_t n = 16;
  const OmegaNetwork omega(n);
  BitMatrix identity(n);
  for (std::size_t u = 0; u < n; ++u) {
    identity.set(u, u);
  }
  EXPECT_TRUE(omega.routable(identity));
}

TEST(OmegaNetwork, UniformShiftsAreRoutable) {
  // Cyclic shifts sigma(u) = u + k are routable through an Omega network.
  const std::size_t n = 16;
  const OmegaNetwork omega(n);
  for (std::size_t k = 0; k < n; ++k) {
    BitMatrix shift(n);
    for (std::size_t u = 0; u < n; ++u) {
      shift.set(u, (u + k) % n);
    }
    EXPECT_TRUE(omega.routable(shift)) << "shift " << k;
  }
}

TEST(OmegaNetwork, KnownBlockingPermutationDetected) {
  // The Omega network cannot route every permutation; with n inputs it
  // realizes only 2^(n/2 * log2 n) of n! permutations. Verify some random
  // permutation at n=16 is reported blocked (brute-search for one).
  const std::size_t n = 16;
  const OmegaNetwork omega(n);
  Rng rng(7);
  bool found_blocked = false;
  for (int trial = 0; trial < 50 && !found_blocked; ++trial) {
    const auto perm = rng.permutation(n);
    BitMatrix config(n);
    for (std::size_t u = 0; u < n; ++u) {
      config.set(u, perm[u]);
    }
    found_blocked = !omega.routable(config);
  }
  EXPECT_TRUE(found_blocked);
}

TEST(OmegaNetwork, ConflictMatchesRoutability) {
  const std::size_t n = 8;
  const OmegaNetwork omega(n);
  Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    const Conn a{rng.below(n), rng.below(n)};
    Conn b{rng.below(n), rng.below(n)};
    if (a.src == b.src || a.dst == b.dst) {
      continue;  // crossbar-infeasible pair
    }
    BitMatrix config(n);
    config.set(a.src, a.dst);
    config.set(b.src, b.dst);
    EXPECT_EQ(!omega.conflict(a, b), omega.routable(config));
  }
}

TEST(OmegaNetwork, SingleConnectionAlwaysRoutable) {
  const std::size_t n = 32;
  const OmegaNetwork omega(n);
  Rng rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    BitMatrix config(n);
    config.set(rng.below(n), rng.below(n));
    EXPECT_TRUE(omega.routable(config));
  }
}

TEST(DecomposeOmega, CoversEveryConnectionExactlyOnce) {
  const std::size_t n = 16;
  const OmegaNetwork omega(n);
  Rng rng(17);
  std::vector<Conn> conns;
  BitMatrix used(n);
  for (std::size_t e = 0; e < n * 3; ++e) {
    const Conn c{rng.below(n), rng.below(n)};
    if (!used.get(c.src, c.dst)) {
      used.set(c.src, c.dst);
      conns.push_back(c);
    }
  }
  const OmegaDecomposition d = decompose_omega(omega, conns);
  BitMatrix covered(n);
  for (const auto& cfg : d.configs) {
    EXPECT_TRUE(omega.routable(cfg));
    for (std::size_t u = 0; u < n; ++u) {
      for (std::size_t v = 0; v < n; ++v) {
        if (cfg.get(u, v)) {
          EXPECT_FALSE(covered.get(u, v));
          covered.set(u, v);
        }
      }
    }
  }
  EXPECT_EQ(covered.count(), conns.size());
}

TEST(DecomposeOmega, NeedsAtLeastCrossbarDegree) {
  // The Omega constraint is strictly tighter than the crossbar constraint:
  // its multiplexing degree is never below Konig's, and for most working
  // sets it is strictly above.
  const std::size_t n = 32;
  const OmegaNetwork omega(n);
  Rng rng(19);
  std::size_t strictly_above = 0;
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Conn> conns;
    BitMatrix used(n);
    for (std::size_t e = 0; e < n * 4; ++e) {
      const Conn c{rng.below(n), rng.below(n)};
      if (!used.get(c.src, c.dst)) {
        used.set(c.src, c.dst);
        conns.push_back(c);
      }
    }
    const std::size_t crossbar = decompose_optimal(n, conns).degree();
    const std::size_t mux = decompose_omega(omega, conns).degree();
    EXPECT_GE(mux, crossbar);
    strictly_above += mux > crossbar ? 1u : 0u;
  }
  EXPECT_GT(strictly_above, 5u);
}

TEST(DecomposeOmega, ShiftWorkingSetStaysCheap) {
  // A working set made of cyclic shifts decomposes into exactly one config
  // per shift on the Omega network too.
  const std::size_t n = 16;
  const OmegaNetwork omega(n);
  std::vector<Conn> conns;
  for (std::size_t k = 1; k <= 4; ++k) {
    for (std::size_t u = 0; u < n; ++u) {
      conns.push_back(Conn{u, (u + k) % n});
    }
  }
  const OmegaDecomposition d = decompose_omega(omega, conns);
  EXPECT_EQ(d.degree(), 4u);
}

TEST(DecomposeOmega, EmptySet) {
  const OmegaNetwork omega(8);
  EXPECT_EQ(decompose_omega(omega, {}).degree(), 0u);
}

}  // namespace
}  // namespace pmx
