#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

namespace pmx {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += a.next() == b.next() ? 1 : 0;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.below(1), 0u);
  }
}

TEST(Rng, BelowCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.below(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusiveBounds) {
  Rng rng(13);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto x = rng.range(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    saw_lo |= x == -3;
    saw_hi |= x == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIsInHalfOpenUnitInterval) {
  Rng rng(17);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;  // pmx-lint: allow(float-accum)
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceFrequencyTracksProbability) {
  Rng rng(23);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) {
    hits += rng.chance(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / 20000.0, 0.3, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(29);
  double sum = 0;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) {
    const double x = rng.exponential(100.0);
    EXPECT_GE(x, 0.0);
    sum += x;  // pmx-lint: allow(float-accum)
  }
  EXPECT_NEAR(sum / kSamples, 100.0, 3.0);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(31);
  const auto p = rng.permutation(100);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Rng, PermutationIsShuffled) {
  Rng rng(37);
  const auto p = rng.permutation(100);
  std::vector<std::size_t> identity(100);
  std::iota(identity.begin(), identity.end(), std::size_t{0});
  EXPECT_NE(p, identity);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(41);
  Rng child = parent.split();
  // The child stream should not replay the parent stream.
  Rng parent2(41);
  (void)parent2.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += child.next() == parent.next() ? 1 : 0;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ShuffleKeepsElements) {
  Rng rng(43);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(std::span<int>{v});
  std::ranges::sort(v);
  EXPECT_EQ(v, sorted);
}

}  // namespace
}  // namespace pmx
