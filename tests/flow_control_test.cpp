// End-to-end flow control (Section 2: circuits need "only end-to-end flow
// control"): finite receive buffers with credit-based backpressure on the
// dynamic TDM network.

#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "switching/tdm.hpp"

namespace pmx {
namespace {

using namespace pmx::literals;

SystemParams small_params(std::size_t n = 8) {
  SystemParams p;
  p.num_nodes = n;
  return p;
}

TEST(FlowControl, UnlimitedBufferHasNoStalls) {
  Simulator sim;
  TdmNetwork net(sim, small_params());
  net.submit(0, 1, 4096);
  sim.run_until(100_us);
  EXPECT_EQ(net.counters().value("backpressure_stalls"), 0u);
  EXPECT_EQ(net.receiver_occupancy(1), 0u);
}

TEST(FlowControl, SlowReceiverThrottlesSender) {
  // Receiver drains 16 B/slot while the sender could push 64 B/slot: the
  // transfer must take ~4x longer than the unthrottled case.
  const auto makespan = [](std::uint64_t buffer, std::uint64_t drain) {
    Simulator sim;
    TdmNetwork::Options options;
    options.receiver_buffer_bytes = buffer;
    options.receiver_drain_per_slot = drain;
    TdmNetwork net(sim, small_params(), std::move(options));
    net.submit(0, 1, 2048);
    sim.run_until(2000_us);
    EXPECT_EQ(net.queued_bytes(), 0u);
    return net.last_delivery();
  };
  const TimeNs fast = makespan(0, 0);        // unlimited
  const TimeNs slow = makespan(128, 16);     // 16 B/slot sink
  EXPECT_GT(slow.ns(), 3 * fast.ns());
}

TEST(FlowControl, StallsAreCounted) {
  Simulator sim;
  TdmNetwork::Options options;
  options.receiver_buffer_bytes = 64;
  options.receiver_drain_per_slot = 8;
  TdmNetwork net(sim, small_params(), std::move(options));
  net.submit(0, 1, 1024);
  sim.run_until(2000_us);
  EXPECT_GT(net.counters().value("backpressure_stalls"), 0u);
  EXPECT_EQ(net.queued_bytes(), 0u);  // still completes
}

TEST(FlowControl, OccupancyNeverExceedsBuffer) {
  Simulator sim;
  TdmNetwork::Options options;
  options.receiver_buffer_bytes = 128;
  options.receiver_drain_per_slot = 16;
  TdmNetwork net(sim, small_params(), std::move(options));
  for (NodeId u = 0; u < 4; ++u) {
    net.submit(u, 7, 512);  // four senders into one slow receiver
  }
  // Sample the occupancy every slot while traffic flows.
  bool done = false;
  std::function<void()> sample = [&] {
    EXPECT_LE(net.receiver_occupancy(7), 128u);
    if (!done) {
      sim.schedule_after(100_ns, sample);
    }
  };
  sim.schedule_after(50_ns, sample);
  sim.run_until(500_us);
  done = true;
  sim.run_until(501_us);
  EXPECT_EQ(net.queued_bytes(), 0u);
}

TEST(FlowControl, FastDrainMatchesUnlimited) {
  // A drain rate >= line rate never throttles.
  const auto run = [](std::uint64_t buffer) {
    Simulator sim;
    TdmNetwork::Options options;
    options.receiver_buffer_bytes = buffer;
    options.receiver_drain_per_slot = 64;
    TdmNetwork net(sim, small_params(), std::move(options));
    net.submit(0, 1, 2048);
    sim.run_until(1000_us);
    return net.last_delivery();
  };
  EXPECT_EQ(run(0), run(4096));
}

TEST(FlowControl, ZeroBufferMeansUnlimitedEvenWithZeroDrain) {
  // receiver_buffer_bytes == 0 disables flow control entirely; the drain
  // rate is then irrelevant (even 0) and nothing may stall or deadlock.
  Simulator sim;
  TdmNetwork::Options options;
  options.receiver_buffer_bytes = 0;
  options.receiver_drain_per_slot = 0;
  TdmNetwork net(sim, small_params(), std::move(options));
  net.submit(0, 1, 4096);
  sim.run_until(1000_us);
  EXPECT_EQ(net.queued_bytes(), 0u);
  EXPECT_EQ(net.counters().value("backpressure_stalls"), 0u);
  EXPECT_EQ(net.receiver_occupancy(1), 0u);
}

TEST(FlowControl, BufferOfExactlyOneSlotPayloadDoesNotDeadlock) {
  // The smallest legal buffer: one slot payload. The sender can fill it in
  // a single slot and must then wait for the drain; with a slow drain this
  // is the tightest credit loop the system supports.
  SystemParams p = small_params();
  const std::uint64_t payload = p.slot_payload_bytes();
  Simulator sim;
  TdmNetwork::Options options;
  options.receiver_buffer_bytes = payload;  // boundary: exactly one slot
  options.receiver_drain_per_slot = 8;
  TdmNetwork net(sim, p, std::move(options));
  net.submit(0, 1, 1024);
  sim.run_until(5000_us);
  EXPECT_EQ(net.queued_bytes(), 0u) << "credit loop deadlocked";
  EXPECT_GT(net.counters().value("backpressure_stalls"), 0u);
}

TEST(FlowControl, MinimalDrainRateStillCompletes) {
  // drain == 1 byte/slot is pathological but legal; the transfer crawls
  // yet must finish without wedging or underflowing credits.
  SystemParams p = small_params();
  Simulator sim;
  TdmNetwork::Options options;
  options.receiver_buffer_bytes = p.slot_payload_bytes();
  options.receiver_drain_per_slot = 1;
  TdmNetwork net(sim, p, std::move(options));
  net.submit(0, 1, 128);
  sim.run_until(20'000_us);
  EXPECT_EQ(net.queued_bytes(), 0u);
  EXPECT_EQ(net.delivered_count(), 1u);
}

TEST(FlowControl, CreditsNeverUnderflowAtBoundaryBuffer) {
  // Several senders hammer one receiver whose buffer is exactly one slot
  // payload. If credits ever underflowed, occupancy would exceed the
  // buffer (the credit subtraction rx_buffer - occupancy would wrap).
  SystemParams p = small_params();
  const std::uint64_t payload = p.slot_payload_bytes();
  Simulator sim;
  TdmNetwork::Options options;
  options.receiver_buffer_bytes = payload;
  options.receiver_drain_per_slot = 4;
  TdmNetwork net(sim, p, std::move(options));
  for (NodeId u = 0; u < 4; ++u) {
    net.submit(u, 7, 256);
  }
  bool done = false;
  std::function<void()> sample = [&] {
    ASSERT_LE(net.receiver_occupancy(7), payload);
    if (!done) {
      sim.schedule_after(100_ns, sample);
    }
  };
  sim.schedule_after(50_ns, sample);
  sim.run_until(10'000_us);
  done = true;
  sim.run_until(10'001_us);
  EXPECT_EQ(net.queued_bytes(), 0u);
}

TEST(FlowControlDeathTest, BufferSmallerThanSlotPayloadRejected) {
  Simulator sim;
  TdmNetwork::Options options;
  options.receiver_buffer_bytes = 32;  // < 64-byte slot payload
  EXPECT_DEATH(TdmNetwork net(sim, small_params(), std::move(options)),
               "deadlock");
}

TEST(FlowControlDeathTest, FiniteBufferNeedsDrain) {
  Simulator sim;
  TdmNetwork::Options options;
  options.receiver_buffer_bytes = 256;
  options.receiver_drain_per_slot = 0;
  EXPECT_DEATH(TdmNetwork net(sim, small_params(), std::move(options)),
               "drain rate");
}

}  // namespace
}  // namespace pmx
