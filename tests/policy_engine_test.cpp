// Randomized differential test for the PolicyEngine's lazy-heap core: every
// policy is driven through long random event histories and checked, after
// every collection, against a naive O(n^2) reference evictor that shares
// nothing with the engine but the RankFn contract (linear scans instead of
// a heap, a plain vector instead of hash maps). Any divergence in eviction
// batches, tracked sets or hold mirrors between the two implementations
// fails with the offending seed in the message.
//
// The op mix includes the hostile schedules the control-plane layers
// produce: port-fault release storms (every connection on a port force-
// released at once), resync-style repeated collections at one timestamp,
// hold latches on already-evicted connections (the "held forever" quirk),
// and flushes.

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "predictor/policy_engine.hpp"

namespace pmx {
namespace {

using namespace pmx::literals;

/// Connections compared by (src, dst): the reference keeps its state in a
/// sorted std::map, so its scans are deterministic by construction.
struct ConnLess {
  bool operator()(const Conn& a, const Conn& b) const {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  }
};

/// Naive reference evictor: same RankFn contract, O(n^2) collection by
/// repeated linear minimum scans. Mirrors the engine's documented upsert
/// semantics (touch before the generic field refresh, epoch-before-mark,
/// rank-neutral hold latches) without sharing any code with the heap.
class ReferenceEvictor {
 public:
  ReferenceEvictor(std::unique_ptr<RankFn> rank, TimeNs idle_ttl)
      : rank_(std::move(rank)), idle_ttl_(idle_ttl) {}

  void on_establish(const Conn& c, TimeNs now) { upsert(c, now, Op::kEst); }
  void on_use(const Conn& c, TimeNs now) {
    ++use_epoch_;
    upsert(c, now, Op::kUse);
  }
  void on_release(const Conn& c) {
    entries_.erase(c);
    held_.erase(c);
  }
  void on_hold(const Conn& c, TimeNs now) {
    held_[c] = true;
    upsert(c, now, Op::kHold);
  }
  void on_flush() {
    entries_.clear();
    held_.clear();
  }

  std::vector<Conn> collect_evictions(TimeNs now) {
    const EngineView v{now, use_epoch_, entries_.size()};
    std::vector<Conn> evict;
    if (idle_ttl_ > 0_ns) {
      for (auto it = entries_.begin(); it != entries_.end();) {
        if (it->second.last_use.ns() + idle_ttl_.ns() <= now.ns()) {
          evict.push_back(it->first);
          held_.erase(it->first);
          it = entries_.erase(it);
        } else {
          ++it;
        }
      }
    }
    const Rank horizon = rank_->horizon(v);
    if (horizon != kNoHorizon) {
      // Repeated full scans for the minimum, evicting while expired.
      while (!entries_.empty()) {
        const auto min = min_entry(v);
        if (rank_->rank(min->second, v) > horizon) {
          break;
        }
        evict.push_back(min->first);
        held_.erase(min->first);
        entries_.erase(min);
      }
    }
    const std::size_t cap = rank_->capacity();
    if (cap > 0) {
      while (entries_.size() > cap) {
        const auto min = min_entry(v);
        evict.push_back(min->first);
        held_.erase(min->first);
        entries_.erase(min);
      }
    }
    std::sort(evict.begin(), evict.end(), [](const Conn& a, const Conn& b) {
      return a.src != b.src ? a.src < b.src : a.dst < b.dst;
    });
    return evict;
  }

  [[nodiscard]] std::size_t tracked() const { return entries_.size(); }
  [[nodiscard]] std::size_t held_count() const { return held_.size(); }
  [[nodiscard]] bool believes_held(const Conn& c) const {
    return held_.contains(c);
  }
  [[nodiscard]] std::vector<Conn> tracked_conns() const {
    std::vector<Conn> out;
    for (const auto& [c, s] : entries_) {
      out.push_back(c);
    }
    return out;
  }

 private:
  enum class Op { kEst, kUse, kHold };
  using Map = std::map<Conn, FlowState, ConnLess>;

  void upsert(const Conn& c, TimeNs now, Op op) {
    const EngineView v{now, use_epoch_, entries_.size()};
    auto it = entries_.find(c);
    if (it == entries_.end()) {
      FlowState fresh;
      fresh.conn = c;
      fresh.established = now;
      fresh.last_use = now;
      fresh.last_use_epoch = use_epoch_;
      it = entries_.emplace(c, fresh).first;
    } else if (op == Op::kHold) {
      return;  // latching an already-tracked entry is rank-neutral
    }
    FlowState& s = it->second;
    rank_->touch(s, v, op == Op::kUse);
    if (op == Op::kEst) {
      s.established = now;
    }
    s.last_use = now;
    s.last_use_epoch = use_epoch_;
    if (op == Op::kUse) {
      ++s.uses;
    }
  }

  /// Lowest (rank, src, dst) by linear scan; the map's key order breaks
  /// rank ties in (src, dst) order for free.
  Map::iterator min_entry(const EngineView& v) {
    auto best = entries_.begin();
    Rank best_rank = rank_->rank(best->second, v);
    for (auto it = std::next(best); it != entries_.end(); ++it) {
      const Rank r = rank_->rank(it->second, v);
      if (r < best_rank) {
        best = it;
        best_rank = r;
      }
    }
    return best;
  }

  std::unique_ptr<RankFn> rank_;
  TimeNs idle_ttl_;
  Map entries_;
  std::map<Conn, bool, ConnLess> held_;
  std::uint64_t use_epoch_ = 0;
};

struct DifferentialCase {
  std::string policy_token;
  std::int64_t idle_ttl_ns = 0;  ///< engine valve (capacity policies)
};

std::unique_ptr<RankFn> case_rank(const DifferentialCase& c) {
  return make_rank_fn(PolicySpec::parse(c.policy_token));
}

/// One random history: engine and reference receive identical event streams
/// and must agree on every eviction batch, tracked set and hold mirror.
void run_history(const DifferentialCase& case_, std::uint64_t seed) {
  constexpr std::size_t kNodes = 8;
  PolicyEngine engine("diff", case_rank(case_), nullptr,
                      TimeNs{case_.idle_ttl_ns});
  ReferenceEvictor reference(case_rank(case_), TimeNs{case_.idle_ttl_ns});

  Rng rng(seed);
  TimeNs now{0};
  const auto random_conn = [&] {
    return Conn{static_cast<NodeId>(rng.below(kNodes)),
                static_cast<NodeId>(rng.below(kNodes))};
  };

  const std::size_t ops = 120 + rng.below(120);
  for (std::size_t op = 0; op < ops; ++op) {
    now = now + TimeNs{rng.range(0, 80)};  // bursts share timestamps
    const std::uint64_t pick = rng.below(100);
    if (pick < 30) {
      const Conn c = random_conn();
      engine.on_establish(c, now);
      reference.on_establish(c, now);
    } else if (pick < 60) {
      const Conn c = random_conn();
      engine.on_use(c, now);
      reference.on_use(c, now);
    } else if (pick < 68) {
      const Conn c = random_conn();
      engine.on_release(c, now);
      reference.on_release(c);
    } else if (pick < 76) {
      // Hold latch -- sometimes for a connection long since evicted (the
      // "held forever" quirk the scheduler can produce under lossy
      // control); the predictor must start tracking it again.
      const Conn c = random_conn();
      engine.on_hold(c, now);
      reference.on_hold(c, now);
    } else if (pick < 82) {
      // Port-fault release storm: every connection touching one node is
      // force-released in one burst, like set_port_fault does.
      const NodeId port = static_cast<NodeId>(rng.below(kNodes));
      for (const Conn& c : reference.tracked_conns()) {
        if (c.src == port || c.dst == port) {
          engine.on_release(c, now);
          reference.on_release(c);
        }
      }
    } else if (pick < 86) {
      engine.on_flush();
      reference.on_flush();
    } else {
      // Collection; with probability ~1/3 collect twice at the same
      // timestamp (resync interleaving) -- the second batch must be empty
      // on both sides.
      const auto got = engine.collect_evictions(now);
      const auto want = reference.collect_evictions(now);
      ASSERT_EQ(got, want) << case_.policy_token << " seed " << seed;
      if (rng.below(3) == 0) {
        const auto again = engine.collect_evictions(now);
        const auto ref_again = reference.collect_evictions(now);
        ASSERT_EQ(again, ref_again) << case_.policy_token << " seed " << seed;
      }
    }
    ASSERT_EQ(engine.tracked(), reference.tracked())
        << case_.policy_token << " seed " << seed;
    ASSERT_EQ(engine.held_count(), reference.held_count())
        << case_.policy_token << " seed " << seed;
  }
  // Final drain: advance far enough that every horizon policy expires
  // everything it ever will, and compare the terminal batches.
  now = now + TimeNs{100000};
  ASSERT_EQ(engine.collect_evictions(now), reference.collect_evictions(now))
      << case_.policy_token << " seed " << seed;
  ASSERT_EQ(engine.tracked(), reference.tracked())
      << case_.policy_token << " seed " << seed;
}

class PolicyDifferential
    : public ::testing::TestWithParam<DifferentialCase> {};

TEST_P(PolicyDifferential, MatchesNaiveReferenceAcrossSeeds) {
  // 1000+ random histories per policy; each history is a couple of hundred
  // events, so the whole sweep stays well under a second per policy.
  for (std::uint64_t seed = 1; seed <= 1200; ++seed) {
    run_history(GetParam(), seed);
    if (::testing::Test::HasFatalFailure()) {
      return;  // the seed is in the assertion message; stop at the first
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyDifferential,
    ::testing::Values(DifferentialCase{"none"},
                      DifferentialCase{"never-evict"},
                      DifferentialCase{"timeout:100"},
                      DifferentialCase{"counter:6"},
                      DifferentialCase{"lru:5"},
                      DifferentialCase{"lru:5", 900},
                      DifferentialCase{"lfu-decay:5"},
                      DifferentialCase{"lfu-decay:5", 900},
                      DifferentialCase{"deadline:500"},
                      DifferentialCase{"hybrid:5"},
                      DifferentialCase{"hybrid:5", 900}),
    [](const ::testing::TestParamInfo<DifferentialCase>& param) {
      std::string name = param.param.policy_token;
      for (char& c : name) {
        if (c == ':' || c == '-') {
          c = '_';
        }
      }
      return name + (param.param.idle_ttl_ns > 0 ? "_ttl" : "");
    });

}  // namespace
}  // namespace pmx
