#include "common/config.hpp"

#include "common/log.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace pmx {
namespace {

TEST(Config, FromArgsParsesPairs) {
  const Config c = Config::from_args({"nodes=128", "mux=4", "name=fig4"});
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.get_uint("nodes", 0), 128u);
  EXPECT_EQ(c.get_int("mux", 0), 4);
  EXPECT_EQ(c.get_string("name", ""), "fig4");
}

TEST(Config, FromArgsRejectsMalformedTokens) {
  EXPECT_THROW((void)Config::from_args({"nodes"}), std::runtime_error);
  EXPECT_THROW((void)Config::from_args({"=5"}), std::runtime_error);
}

TEST(Config, FromTextIgnoresCommentsAndBlanks) {
  const Config c = Config::from_text(R"(
# a comment
nodes = 64   # trailing
  ratio=0.5
)");
  EXPECT_EQ(c.get_uint("nodes", 0), 64u);
  EXPECT_DOUBLE_EQ(c.get_double("ratio", 0.0), 0.5);
}

TEST(Config, FromTextRejectsMalformedLine) {
  EXPECT_THROW((void)Config::from_text("just a line\n"), std::runtime_error);
}

TEST(Config, FallbacksUsedWhenKeyAbsent) {
  const Config c;
  EXPECT_EQ(c.get_int("missing", -7), -7);
  EXPECT_EQ(c.get_uint("missing", 9), 9u);
  EXPECT_EQ(c.get_string("missing", "x"), "x");
  EXPECT_TRUE(c.get_bool("missing", true));
  EXPECT_DOUBLE_EQ(c.get_double("missing", 2.5), 2.5);
}

TEST(Config, TypedGettersValidate) {
  const Config c = Config::from_args({"n=12x", "u=-3", "d=1.2.3", "b=maybe"});
  EXPECT_THROW((void)c.get_int("n", 0), std::runtime_error);
  EXPECT_THROW((void)c.get_uint("u", 0), std::runtime_error);
  EXPECT_THROW((void)c.get_double("d", 0.0), std::runtime_error);
  EXPECT_THROW((void)c.get_bool("b", false), std::runtime_error);
}

TEST(Config, BoolAcceptsCommonSpellings) {
  const Config c =
      Config::from_args({"a=true", "b=false", "c=1", "d=0", "e=yes", "f=no"});
  EXPECT_TRUE(c.get_bool("a", false));
  EXPECT_FALSE(c.get_bool("b", true));
  EXPECT_TRUE(c.get_bool("c", false));
  EXPECT_FALSE(c.get_bool("d", true));
  EXPECT_TRUE(c.get_bool("e", false));
  EXPECT_FALSE(c.get_bool("f", true));
}

TEST(Config, NegativeIntParses) {
  const Config c = Config::from_args({"x=-42"});
  EXPECT_EQ(c.get_int("x", 0), -42);
}

TEST(Config, UnreadKeysCatchTypos) {
  const Config c = Config::from_args({"nodes=8", "tpyo=1"});
  (void)c.get_uint("nodes", 0);
  EXPECT_EQ(c.unread_keys(), (std::vector<std::string>{"tpyo"}));
}

TEST(Config, LastValueWins) {
  Config c;
  c.set("k", "1");
  c.set("k", "2");
  EXPECT_EQ(c.get_int("k", 0), 2);
}

TEST(Logger, LevelGateAndSink) {
  std::ostringstream sink;
  Logger& log = Logger::instance();
  const LogLevel old_level = log.level();
  log.set_sink(&sink);
  log.set_level(LogLevel::kInfo);
  const auto before = log.messages_written();
  PMX_LOG_DEBUG << "invisible";
  PMX_LOG_INFO << "visible " << 42;
  PMX_LOG_ERROR << "also visible";
  log.set_sink(nullptr);
  log.set_level(old_level);
  EXPECT_EQ(log.messages_written() - before, 2u);
  EXPECT_NE(sink.str().find("[info] visible 42"), std::string::npos);
  EXPECT_EQ(sink.str().find("invisible"), std::string::npos);
}

TEST(Logger, OffSilencesEverything) {
  std::ostringstream sink;
  Logger& log = Logger::instance();
  const LogLevel old_level = log.level();
  log.set_sink(&sink);
  log.set_level(LogLevel::kOff);
  PMX_LOG_ERROR << "nope";
  log.set_sink(nullptr);
  log.set_level(old_level);
  EXPECT_TRUE(sink.str().empty());
}

}  // namespace
}  // namespace pmx
