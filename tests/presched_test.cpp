#include "sched/presched.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace pmx {
namespace {

// Table 1, row by row.
TEST(PrescheduleCell, NotRequestedNotRealized) {
  // R=0, B(s)=0 -> L=0 regardless of B*.
  EXPECT_FALSE(preschedule_cell(false, false, false));
  EXPECT_FALSE(preschedule_cell(false, true, false));
}

TEST(PrescheduleCell, NotRequestedButRealizedInSlot) {
  // R=0, B(s)=1 -> L=1 (should release).
  EXPECT_TRUE(preschedule_cell(false, false, true));
  EXPECT_TRUE(preschedule_cell(false, true, true));
}

TEST(PrescheduleCell, RequestedAndRealizedSomewhere) {
  // R=1, B*=1 -> L=0 (already established; X on B(s)).
  EXPECT_FALSE(preschedule_cell(true, true, false));
  EXPECT_FALSE(preschedule_cell(true, true, true));
}

TEST(PrescheduleCell, RequestedNotRealizedAnywhere) {
  // R=1, B*=0, B(s)=0 -> L=1 (should establish).
  EXPECT_TRUE(preschedule_cell(true, false, false));
}

TEST(Preschedule, MatrixMatchesCellwiseEvaluation) {
  const std::size_t n = 16;
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    BitMatrix r(n);
    BitMatrix b_s(n);
    // Build a random valid slot config (partial permutation) and random
    // requests; B* must contain B(s).
    const auto perm = rng.permutation(n);
    for (std::size_t u = 0; u < n; ++u) {
      if (rng.chance(0.4)) {
        b_s.set(u, perm[u]);
      }
      for (std::size_t v = 0; v < n; ++v) {
        if (rng.chance(0.2)) {
          r.set(u, v);
        }
      }
    }
    BitMatrix b_star = b_s;
    for (std::size_t u = 0; u < n; ++u) {
      if (rng.chance(0.1)) {
        b_star.set(u, (perm[u] + 3) % n);  // extra connections in other slots
      }
    }
    const BitMatrix l = preschedule(r, b_star, b_s);
    for (std::size_t u = 0; u < n; ++u) {
      for (std::size_t v = 0; v < n; ++v) {
        EXPECT_EQ(l.get(u, v),
                  preschedule_cell(r.get(u, v), b_star.get(u, v),
                                   b_s.get(u, v)))
            << "mismatch at (" << u << "," << v << ")";
      }
    }
  }
}

TEST(Preschedule, NoRequestsReleasesWholeSlot) {
  BitMatrix r(4);
  BitMatrix b_s(4);
  b_s.set(0, 1);
  b_s.set(2, 3);
  const BitMatrix b_star = b_s;
  const BitMatrix l = preschedule(r, b_star, b_s);
  EXPECT_EQ(l, b_s);  // exactly the realized connections flagged for release
}

TEST(Preschedule, AllRequestedAllEstablishedIsQuiescent) {
  BitMatrix r(4);
  r.set(0, 1);
  r.set(2, 3);
  const BitMatrix b_s = r;
  const BitMatrix b_star = r;
  const BitMatrix l = preschedule(r, b_star, b_s);
  EXPECT_TRUE(l.none());
}

TEST(Preschedule, RequestRealizedInAnotherSlotIsNotReestablished) {
  BitMatrix r(4);
  r.set(1, 2);
  BitMatrix b_s(4);           // this slot is empty
  BitMatrix b_star(4);
  b_star.set(1, 2);           // realized in a different slot
  const BitMatrix l = preschedule(r, b_star, b_s);
  EXPECT_TRUE(l.none());
}

}  // namespace
}  // namespace pmx
