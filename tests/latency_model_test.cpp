#include "sched/latency_model.hpp"

#include <gtest/gtest.h>

namespace pmx {
namespace {

TEST(SchedulerLatencyModel, PaperPointsArePresent) {
  const auto& pts = SchedulerLatencyModel::paper_table3();
  ASSERT_EQ(pts.size(), 6u);
  EXPECT_EQ(pts[0].n, 4u);
  EXPECT_EQ(pts[0].fpga_ns, 34.0);
  EXPECT_EQ(pts[5].n, 128u);
  EXPECT_EQ(pts[5].fpga_ns, 385.0);
}

TEST(SchedulerLatencyModel, FitIsCloseToEveryPaperRow) {
  SchedulerLatencyModel model;
  for (const auto& p : SchedulerLatencyModel::paper_table3()) {
    const double predicted = model.fpga_ns(p.n);
    // Allow a few ns of fit error per row; Table 3 is noisy synthesis data.
    EXPECT_NEAR(predicted, p.fpga_ns, 8.0) << "N=" << p.n;
  }
  EXPECT_LT(model.rms_error(), 5.0);
}

TEST(SchedulerLatencyModel, LatencyGrowsMonotonically) {
  SchedulerLatencyModel model;
  double prev = 0.0;
  for (std::size_t n = 2; n <= 512; n *= 2) {
    const double cur = model.fpga_ns(n);
    EXPECT_GT(cur, prev) << "N=" << n;
    prev = cur;
  }
}

TEST(SchedulerLatencyModel, LinearTermDominatesAsymptotically) {
  // Section 4: "the scheduling delay should be linearly proportional to the
  // system size N". Doubling a large N should roughly double the latency.
  SchedulerLatencyModel model;
  const double r = model.fpga_ns(4096) / model.fpga_ns(2048);
  EXPECT_GT(r, 1.8);
  EXPECT_LT(r, 2.1);
}

TEST(SchedulerLatencyModel, AsicAnchorsTo80nsAt128) {
  // The paper: "we conservatively chose the ASIC performance to be 80 ns for
  // a 128x128 scheduler (about 5x better)".
  SchedulerLatencyModel model;
  EXPECT_NEAR(model.asic_ns(128), 80.0, 2.0);
  EXPECT_EQ(model.asic_latency(128).ns(), 80);
}

TEST(SchedulerLatencyModel, AsicIsUniformlyFasterThanFpga) {
  SchedulerLatencyModel model;
  for (std::size_t n = 4; n <= 1024; n *= 2) {
    EXPECT_LT(model.asic_ns(n), model.fpga_ns(n) / 4.0);
  }
}

TEST(SchedulerLatencyModel, PositiveCoefficientsForGrowthTerms) {
  SchedulerLatencyModel model;
  EXPECT_GT(model.c1(), 0.0);  // log tree depth term
  EXPECT_GT(model.c2(), 0.0);  // wavefront term
}

}  // namespace
}  // namespace pmx
