#include <gtest/gtest.h>

#include <vector>

#include "sim/clock.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"

namespace pmx {
namespace {

using namespace pmx::literals;

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> order;
  q.push(30_ns, [&] { order.push_back(3); });
  q.push(10_ns, [&] { order.push_back(1); });
  q.push(20_ns, [&] { order.push_back(2); });
  while (!q.empty()) {
    q.pop().fn();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SimultaneousEventsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(5_ns, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) {
    q.pop().fn();
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.push(10_ns, [&] { fired = true; });
  q.push(20_ns, [] {});
  q.cancel(id);
  EXPECT_EQ(q.next_time(), 20_ns);
  while (!q.empty()) {
    q.pop().fn();
  }
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelUnknownIdIsNoop) {
  EventQueue q;
  q.cancel(9999);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, EmptyAfterAllCancelled) {
  EventQueue q;
  const EventId a = q.push(1_ns, [] {});
  const EventId b = q.push(2_ns, [] {});
  q.cancel(a);
  q.cancel(b);
  EXPECT_TRUE(q.empty());
}

TEST(Simulator, AdvancesTime) {
  Simulator sim;
  TimeNs seen = TimeNs::zero();
  sim.schedule_at(100_ns, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, 100_ns);
  EXPECT_EQ(sim.now(), 100_ns);
  EXPECT_EQ(sim.events_processed(), 1u);
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator sim;
  TimeNs inner = TimeNs::zero();
  sim.schedule_at(50_ns, [&] {
    sim.schedule_after(25_ns, [&] { inner = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(inner, 75_ns);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule_at(TimeNs{i * 10}, [&] { ++count; });
  }
  sim.run_until(50_ns);
  EXPECT_EQ(count, 5);  // events at 10..50 inclusive
  EXPECT_EQ(sim.now(), 50_ns);
  sim.run();
  EXPECT_EQ(count, 10);
}

TEST(Simulator, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulator sim;
  sim.run_until(1000_ns);
  EXPECT_EQ(sim.now(), 1000_ns);
}

TEST(Simulator, StopExitsLoop) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule_at(TimeNs{i}, [&] {
      ++count;
      if (count == 3) {
        sim.stop();
      }
    });
  }
  sim.run();
  EXPECT_EQ(count, 3);
}

TEST(Simulator, CancelScheduledEvent) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(10_ns, [&] { fired = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Clock, TicksAtPeriod) {
  Simulator sim;
  std::vector<std::int64_t> ticks;
  Clock clock(sim, 100_ns, [&] {
    ticks.push_back(sim.now().ns());
    if (ticks.size() == 4) {
      clock.stop();
    }
  });
  clock.start();
  sim.run();
  EXPECT_EQ(ticks, (std::vector<std::int64_t>{0, 100, 200, 300}));
}

TEST(Clock, PhaseOffsetsFirstTick) {
  Simulator sim;
  std::vector<std::int64_t> ticks;
  Clock clock(sim, 100_ns, [&] {
    ticks.push_back(sim.now().ns());
    if (ticks.size() == 2) {
      clock.stop();
    }
  });
  clock.start(30_ns);
  sim.run();
  EXPECT_EQ(ticks, (std::vector<std::int64_t>{30, 130}));
}

TEST(Clock, StopBeforeStartIsSafe) {
  Simulator sim;
  Clock clock(sim, 10_ns, [] {});
  clock.stop();  // no-op
  EXPECT_FALSE(clock.running());
}

TEST(Clock, DestructorCancelsPendingTick) {
  Simulator sim;
  int ticks = 0;
  {
    Clock clock(sim, 10_ns, [&] { ++ticks; });
    clock.start();
  }  // destroyed before any tick
  sim.run();
  EXPECT_EQ(ticks, 0);
}

TEST(TimeNs, Arithmetic) {
  EXPECT_EQ((10_ns + 20_ns).ns(), 30);
  EXPECT_EQ((50_ns - 20_ns).ns(), 30);
  EXPECT_EQ((10_ns * 3).ns(), 30);
  EXPECT_EQ(100_ns / 30_ns, 3);
  EXPECT_EQ((100_ns % 30_ns).ns(), 10);
  EXPECT_LT(10_ns, 20_ns);
  EXPECT_EQ((1_us).ns(), 1000);
}

}  // namespace
}  // namespace pmx
