#include "core/driver.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "switching/wormhole.hpp"
#include "traffic/patterns.hpp"

namespace pmx {
namespace {

using namespace pmx::literals;

SystemParams small_params(std::size_t n = 4) {
  SystemParams p;
  p.num_nodes = n;
  return p;
}

TEST(TrafficDriver, RunsSimpleWorkloadToCompletion) {
  Simulator sim;
  WormholeNetwork net(sim, small_params());
  Workload w;
  w.programs.resize(4);
  w.programs[0].push_back(Command::send(1, 64));
  w.programs[1].push_back(Command::send(2, 64));
  TrafficDriver driver(sim, net, w);
  driver.start();
  sim.run();
  EXPECT_TRUE(driver.finished());
  EXPECT_EQ(driver.messages_submitted(), 2u);
  EXPECT_EQ(driver.messages_delivered(), 2u);
}

TEST(TrafficDriver, EagerModeOverlapsANodesSends) {
  // In eager mode the second send is handed to the NIC one NIC cycle after
  // the first, long before the first completes.
  Simulator sim;
  WormholeNetwork net(sim, small_params());
  Workload w;
  w.programs.resize(4);
  w.programs[0].push_back(Command::send(1, 2048));
  w.programs[0].push_back(Command::send(2, 64));
  TrafficDriver driver(sim, net, w, SendMode::kEager);
  driver.start();
  sim.run();
  ASSERT_EQ(net.records().size(), 2u);
  TimeNs small_submit{};
  for (const auto& rec : net.records()) {
    if (rec.msg.dst == 2) {
      small_submit = rec.msg.submit_time;
    }
  }
  EXPECT_EQ(small_submit.ns(), 10);  // one NIC cycle after the first
}

TEST(TrafficDriver, BlockingModeSerializesANodesSends) {
  Simulator sim;
  WormholeNetwork net(sim, small_params());
  Workload w;
  w.programs.resize(4);
  w.programs[0].push_back(Command::send(1, 2048));
  w.programs[0].push_back(Command::send(2, 64));
  TrafficDriver driver(sim, net, w, SendMode::kBlocking);
  driver.start();
  sim.run();
  ASSERT_EQ(net.records().size(), 2u);
  TimeNs big_send_done{};
  TimeNs small_submit{};
  for (const auto& rec : net.records()) {
    if (rec.msg.dst == 1) {
      big_send_done = rec.send_done;
    } else {
      small_submit = rec.msg.submit_time;
    }
  }
  EXPECT_EQ(small_submit, big_send_done);
}

TEST(TrafficDriver, BarrierWaitsForAllNodesAndDrain) {
  Simulator sim;
  WormholeNetwork net(sim, small_params());
  Workload w;
  w.programs.resize(4);
  for (auto& p : w.programs) {
    p.push_back(Command::barrier());
  }
  w.programs[0].insert(w.programs[0].begin(), Command::send(1, 4096));
  w.programs[2].push_back(Command::send(3, 64));  // phase-2 send
  TrafficDriver driver(sim, net, w);
  driver.start();
  sim.run();
  EXPECT_TRUE(driver.finished());
  ASSERT_EQ(net.records().size(), 2u);
  // The phase-2 message was submitted only after the phase-1 message was
  // fully delivered.
  TimeNs phase1_delivered{};
  TimeNs phase2_submit{};
  for (const auto& rec : net.records()) {
    if (rec.msg.src == 0) {
      phase1_delivered = rec.delivered;
    } else {
      phase2_submit = rec.msg.submit_time;
    }
  }
  EXPECT_GE(phase2_submit, phase1_delivered);
}

TEST(TrafficDriver, PhaseCounterAdvancesAtBarrier) {
  Simulator sim;
  WormholeNetwork net(sim, small_params());
  Workload w;
  w.programs.resize(4);
  for (auto& p : w.programs) {
    p.push_back(Command::barrier());
    p.push_back(Command::barrier());
  }
  TrafficDriver driver(sim, net, w);
  driver.start();
  sim.run();
  EXPECT_TRUE(driver.finished());
  for (NodeId u = 0; u < 4; ++u) {
    EXPECT_EQ(driver.current_phase(u), 2u);
  }
}

TEST(TrafficDriver, MessagesCarryPhaseTag) {
  Simulator sim;
  WormholeNetwork net(sim, small_params());
  Workload w;
  w.programs.resize(4);
  for (auto& p : w.programs) {
    p.push_back(Command::barrier());
  }
  w.programs[1].push_back(Command::send(0, 64));
  TrafficDriver driver(sim, net, w);
  driver.start();
  sim.run();
  ASSERT_EQ(net.records().size(), 1u);
  EXPECT_EQ(net.records()[0].msg.phase, 1u);
}

TEST(TrafficDriver, ComputeDelaysNextCommand) {
  Simulator sim;
  WormholeNetwork net(sim, small_params());
  Workload w;
  w.programs.resize(4);
  w.programs[0].push_back(Command::compute(5_us));
  w.programs[0].push_back(Command::send(1, 64));
  TrafficDriver driver(sim, net, w);
  driver.start();
  sim.run();
  ASSERT_EQ(net.records().size(), 1u);
  EXPECT_EQ(net.records()[0].msg.submit_time.ns(), 5000);
}

TEST(TrafficDriver, FlushForwardsHintWithoutBlocking) {
  Simulator sim;
  WormholeNetwork net(sim, small_params());
  Workload w;
  w.programs.resize(4);
  w.programs[0].push_back(Command::flush());
  w.programs[0].push_back(Command::send(1, 64));
  TrafficDriver driver(sim, net, w);
  driver.start();
  sim.run();
  EXPECT_TRUE(driver.finished());
  EXPECT_EQ(net.records()[0].msg.submit_time.ns(), 0);
}

TEST(TrafficDriver, EmptyWorkloadFinishesImmediately) {
  Simulator sim;
  WormholeNetwork net(sim, small_params());
  Workload w;
  w.programs.resize(4);
  TrafficDriver driver(sim, net, w);
  driver.start();
  sim.run();
  EXPECT_TRUE(driver.finished());
  EXPECT_EQ(sim.now(), 0_ns);
}

TEST(TrafficDriverDeathTest, RejectsNodeCountMismatch) {
  Simulator sim;
  WormholeNetwork net(sim, small_params(4));
  Workload w;
  w.programs.resize(8);
  EXPECT_DEATH(TrafficDriver(sim, net, w), "node count");
}

}  // namespace
}  // namespace pmx
