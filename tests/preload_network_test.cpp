#include "switching/preload_tdm.hpp"

#include <gtest/gtest.h>

#include "compiled/plan.hpp"
#include "core/driver.hpp"
#include "sim/simulator.hpp"
#include "traffic/patterns.hpp"

namespace pmx {
namespace {

using namespace pmx::literals;

SystemParams small_params(std::size_t n = 8, std::size_t k = 4) {
  SystemParams p;
  p.num_nodes = n;
  p.mux_degree = k;
  return p;
}

/// Run a workload through the preload network via the driver.
struct PreloadRun {
  Simulator sim;
  PreloadTdmNetwork net;
  TrafficDriver driver;

  PreloadRun(const SystemParams& params, const Workload& workload)
      : net(sim, params, compile_workload(workload)),
        driver(sim, net, workload) {
    driver.start();
  }
};

TEST(PreloadTdm, DrainsOrderedMesh) {
  const Workload w = patterns::ordered_mesh(16, 128, 2);
  PreloadRun run(small_params(16), w);
  run.sim.run_until(1000_us);
  EXPECT_TRUE(run.driver.finished());
  EXPECT_EQ(run.net.records().size(), w.num_messages());
  EXPECT_EQ(run.net.queued_bytes(), 0u);
  // The 4-config mesh plan fits in K=4 slots: loaded exactly once each.
  EXPECT_EQ(run.net.counters().value("config_loads"), 4u);
  EXPECT_EQ(run.net.counters().value("stall_preemptions"), 0u);
}

TEST(PreloadTdm, StreamsScatterConfigsThroughFourSlots) {
  const std::size_t n = 16;
  const Workload w = patterns::scatter(n, 64);
  PreloadRun run(small_params(n), w);
  run.sim.run_until(1000_us);
  EXPECT_TRUE(run.driver.finished());
  // 15 one-connection configs streamed through 4 registers.
  EXPECT_GE(run.net.counters().value("config_loads"), 15u);
}

TEST(PreloadTdm, HandlesTwoPhases) {
  const Workload w = patterns::two_phase(8, 64, 5);
  PreloadRun run(small_params(8), w);
  run.sim.run_until(1000_us);
  EXPECT_TRUE(run.driver.finished());
  EXPECT_EQ(run.net.current_phase(), 1u);
  EXPECT_GE(run.net.counters().value("phase_advances"), 1u);
}

TEST(PreloadTdm, RandomTrafficCompletesViaDemandOrStallRecovery) {
  const Workload w = patterns::uniform_random(16, 96, 6, 13);
  PreloadRun run(small_params(16), w);
  run.sim.run_until(5000_us);
  EXPECT_TRUE(run.driver.finished());
  EXPECT_EQ(run.net.records().size(), w.num_messages());
}

TEST(PreloadTdm, NoSchedulerPassesEverRun) {
  // Pure compiled communication: the SL array is never exercised.
  const Workload w = patterns::ordered_mesh(16, 64, 1);
  PreloadRun run(small_params(16), w);
  run.sim.run_until(1000_us);
  EXPECT_EQ(run.net.scheduler().stats().passes, 0u);
  EXPECT_EQ(run.net.scheduler().stats().establishes, 0u);
}

TEST(PreloadTdm, PhaseBudgetsAreExact) {
  const Workload w = patterns::ordered_mesh(8, 100, 3);
  const CompiledPlan plan = compile_workload(w);
  std::uint64_t budget = 0;
  for (const auto& phase : plan.phases) {
    for (const auto b : phase.config_bytes) {
      budget += b;
    }
  }
  EXPECT_EQ(budget, w.total_bytes());
  PreloadRun run(small_params(8), w);
  run.sim.run_until(1000_us);
  EXPECT_TRUE(run.driver.finished());
  EXPECT_EQ(run.net.delivered_bytes(), budget);
}

TEST(PreloadTdmDeathTest, RejectsUnplannedPair) {
  const Workload w = patterns::ordered_mesh(8, 64, 1);
  Simulator sim;
  PreloadTdmNetwork net(sim, small_params(8), compile_workload(w));
  // In the 4x2 torus, node 0's neighbours are {1, 3, 4}; (0,2) is not in
  // the compiled working set.
  EXPECT_DEATH(net.submit(0, 2, 64), "missing from compiled plan");
}

TEST(PreloadTdm, DeterministicReplay) {
  const Workload w = patterns::uniform_random(8, 64, 4, 3);
  const auto run_once = [&] {
    PreloadRun run(small_params(8), w);
    run.sim.run_until(1000_us);
    std::vector<std::int64_t> times;
    for (const auto& rec : run.net.records()) {
      times.push_back(rec.delivered.ns());
    }
    return times;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace pmx
