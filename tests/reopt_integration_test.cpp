// End-to-end tests of the online re-optimization service loop on the
// dynamic TDM paradigm: the optimizer must beat the compiled static
// preload plan on churning demand, keep the conservation ledger clean,
// stay byte-deterministic across reruns, survive a fully lossy reconfig
// channel without wedging, and roll poison proposals back.

#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "traffic/arrival.hpp"
#include "traffic/patterns.hpp"

namespace pmx {
namespace {

/// Open-loop arrivals with 85% of traffic on a hot set that rotates every
/// 10 us -- the churning demand profile of ablation A10.
Workload churned_skew(std::size_t nodes) {
  ArrivalParams arrival;
  arrival.offered_load = 0.35;
  arrival.dest_skew = 0.85;
  arrival.hot_rotate_period = TimeNs{10'000};
  arrival.duration = TimeNs{60'000};
  arrival.seed = 99;
  SystemParams defaults;
  const double rate = static_cast<double>(defaults.link.bandwidth_dgbps) / 80.0;
  return open_loop(nodes, arrival, rate);
}

RunConfig reopt_config(SwitchKind kind, std::size_t nodes,
                       bool enable_reopt) {
  RunConfig config;
  config.params.num_nodes = nodes;
  if (enable_reopt) {
    config.params.reopt.period_slots = 16;
    config.params.reopt.ewma_shift = 1;
  }
  config.params.fault.force_enable = true;  // arm the conservation ledger
  config.params.audit.enabled = true;
  config.params.audit.strict = false;
  config.kind = kind;
  config.starvation_slots = 8;
  config.horizon = TimeNs{1'000'000'000};
  return config;
}

TEST(ReoptIntegration, OptimizerBeatsCompiledPreloadPlanUnderChurn) {
  const std::size_t nodes = 32;
  const Workload workload = churned_skew(nodes);
  const RunResult online = run_workload(
      reopt_config(SwitchKind::kDynamicTdm, nodes, true), workload);
  const RunResult compiled = run_workload(
      reopt_config(SwitchKind::kPreloadTdm, nodes, false), workload);
  ASSERT_TRUE(online.completed);
  ASSERT_TRUE(compiled.completed);
  EXPECT_GT(online.metrics.reopt_applies, 0u);
  // Acceptance gate: the online loop beats the static compiled plan by at
  // least 10% goodput when the demand pattern churns underneath it.
  EXPECT_GE(online.metrics.goodput, 1.1 * compiled.metrics.goodput);
}

TEST(ReoptIntegration, ServiceLoopKeepsConservationLedgerClean) {
  const std::size_t nodes = 32;
  const Workload workload = churned_skew(nodes);
  const RunResult result = run_workload(
      reopt_config(SwitchKind::kDynamicTdm, nodes, true), workload);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.metrics.messages, workload.num_messages());
  EXPECT_GT(result.metrics.reopt_solves, 0u);
  EXPECT_GT(result.metrics.reopt_applies, 0u);
  EXPECT_EQ(result.metrics.audit_violations, 0u);
  EXPECT_GT(result.metrics.audits, 0u);
}

TEST(ReoptIntegration, MetricsAreByteIdenticalAcrossReruns) {
  const std::size_t nodes = 16;
  const Workload workload = churned_skew(nodes);
  const RunConfig config =
      reopt_config(SwitchKind::kDynamicTdm, nodes, true);
  const RunResult a = run_workload(config, workload);
  const RunResult b = run_workload(config, workload);
  EXPECT_TRUE(a.metrics == b.metrics);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.counters, b.counters);
}

TEST(ReoptIntegration, PoisonProposalsAreRolledBackAndTrafficRecovers) {
  const Workload workload = patterns::random_mesh(16, 256, 4, 5);
  RunConfig config = reopt_config(SwitchKind::kDynamicTdm, 16, true);
  config.params.reopt.chaos_empty_every = 2;
  const RunResult result = run_workload(config, workload);
  // Every other proposal pins a demandless permutation into all K slots;
  // the probation guard must detect the collapse, roll back to the stashed
  // tables, and the run must still deliver everything cleanly.
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.metrics.messages, workload.num_messages());
  EXPECT_GT(result.metrics.reopt_rollbacks, 0u);
  EXPECT_EQ(result.metrics.audit_violations, 0u);
  EXPECT_GT(result.metrics.reopt_dip_duration_ns, 0.0);
}

TEST(ReoptIntegration, RollbackRestoresPreApplyGoodput) {
  const Workload workload = patterns::random_mesh(16, 256, 4, 5);
  RunConfig chaos = reopt_config(SwitchKind::kDynamicTdm, 16, true);
  chaos.params.reopt.chaos_empty_every = 2;
  const RunResult poisoned = run_workload(chaos, workload);
  const RunResult clean = run_workload(
      reopt_config(SwitchKind::kDynamicTdm, 16, true), workload);
  ASSERT_TRUE(poisoned.completed);
  ASSERT_TRUE(clean.completed);
  // The poison windows cost time (dip accounting above), but after each
  // rollback the fabric must return to useful service: same delivery count
  // and the same total bytes as the clean run, at a goodput that is
  // stalled-probation-windows away from clean, not collapsed.
  EXPECT_EQ(poisoned.metrics.total_bytes, clean.metrics.total_bytes);
  EXPECT_GT(poisoned.metrics.goodput, 0.25 * clean.metrics.goodput);
}

TEST(ReoptIntegration, FullyLossyReconfigChannelSkipsNotWedges) {
  const Workload workload = patterns::random_mesh(16, 256, 2, 5);
  RunConfig config = reopt_config(SwitchKind::kDynamicTdm, 16, true);
  config.params.ctrl.force_enable = true;
  config.params.ctrl.reconfig_loss = 1.0;  // every reconfig command lost
  const RunResult result = run_workload(config, workload);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.metrics.messages, workload.num_messages());
  // Lost commands are skipped reconfigurations, retried next tick -- the
  // fabric never sees a single apply and never wedges waiting for one.
  EXPECT_GT(result.metrics.reopt_cmds_lost, 0u);
  EXPECT_EQ(result.metrics.reopt_applies, 0u);
  EXPECT_EQ(result.metrics.reopt_rollbacks, 0u);
}

TEST(ReoptIntegration, FullDeliveryAtQuarterControlLossWithHealing) {
  const Workload workload = patterns::random_mesh(64, 512, 2, 7);
  ASSERT_EQ(workload.num_messages(), 512u);
  RunConfig config = reopt_config(SwitchKind::kDynamicTdm, 64, true);
  config.params.ctrl.loss = 0.25;  // heal stays on (default)
  const RunResult result = run_workload(config, workload);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.metrics.messages, 512u);
  EXPECT_GT(result.metrics.ctrl_dropped, 0u);
  EXPECT_EQ(result.metrics.audit_violations, 0u);
}

TEST(ReoptIntegration, DemandRankedPreloadFillStaysDeterministic) {
  const std::size_t nodes = 16;
  const Workload workload = churned_skew(nodes);
  const RunConfig config =
      reopt_config(SwitchKind::kPreloadTdm, nodes, true);
  const RunResult a = run_workload(config, workload);
  const RunResult b = run_workload(config, workload);
  ASSERT_TRUE(a.completed);
  EXPECT_TRUE(a.metrics == b.metrics);
  EXPECT_EQ(a.counters, b.counters);
}

}  // namespace
}  // namespace pmx
