// The parallel sweep runner's contract: every index runs exactly once,
// results come back in index order, and the output is identical for any
// jobs count (the property the --jobs flag on the bench harnesses relies
// on for byte-identical tables).

#include "core/sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/experiment.hpp"
#include "traffic/patterns.hpp"

namespace pmx {
namespace {

TEST(Sweep, ResolveJobs) {
  EXPECT_GE(resolve_jobs(0), 1u);  // 0 = hardware concurrency, at least 1
  EXPECT_EQ(resolve_jobs(1), 1u);
  EXPECT_EQ(resolve_jobs(7), 7u);
}

TEST(Sweep, EmptySweepReturnsEmpty) {
  const auto r = sweep_map<int>(0, [](std::size_t) { return 1; });
  EXPECT_TRUE(r.empty());
}

TEST(Sweep, ResultsAreInIndexOrder) {
  for (const std::size_t jobs : {1u, 2u, 4u, 16u}) {
    const SweepOptions options{jobs};
    const auto r = sweep_map<std::size_t>(
        100, [](std::size_t i) { return i * i + 1; }, options);
    ASSERT_EQ(r.size(), 100u);
    for (std::size_t i = 0; i < r.size(); ++i) {
      EXPECT_EQ(r[i], i * i + 1) << "jobs=" << jobs;
    }
  }
}

TEST(Sweep, EveryIndexRunsExactlyOnce) {
  std::vector<std::atomic<int>> hits(257);
  const SweepOptions options{4};
  const auto r = sweep_map<int>(
      hits.size(),
      [&](std::size_t i) {
        hits[i].fetch_add(1);
        return 0;
      },
      options);
  ASSERT_EQ(r.size(), hits.size());
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(Sweep, MoreJobsThanPointsIsFine) {
  const SweepOptions options{32};
  const auto r =
      sweep_map<std::size_t>(3, [](std::size_t i) { return i; }, options);
  EXPECT_EQ(r, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(Sweep, ExceptionPropagatesToCaller) {
  for (const std::size_t jobs : {1u, 4u}) {
    const SweepOptions options{jobs};
    EXPECT_THROW(sweep_map<int>(
                     16,
                     [](std::size_t i) -> int {
                       if (i == 7) {
                         throw std::runtime_error("boom");
                       }
                       return 0;
                     },
                     options),
                 std::runtime_error)
        << "jobs=" << jobs;
  }
}

// End-to-end determinism: the same simulation sweep produces identical
// metrics whether it runs inline or across worker threads. This is the
// test-level counterpart of diffing `bench_fig4 --jobs 1` against
// `--jobs N`.
TEST(Sweep, SimulationSweepIsDeterministicAcrossJobCounts) {
  constexpr std::size_t kPoints = 8;
  const auto point = [](std::size_t i) {
    const Workload workload = patterns::random_mesh(16, 128, 1, 11 + i);
    RunConfig config;
    config.params.num_nodes = 16;
    config.kind =
        (i % 2 == 0) ? SwitchKind::kDynamicTdm : SwitchKind::kPreloadTdm;
    return run_workload(config, workload);
  };
  const std::vector<RunResult> serial =
      run_sweep(kPoints, point, SweepOptions{1});
  const std::vector<RunResult> parallel =
      run_sweep(kPoints, point, SweepOptions{4});
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < kPoints; ++i) {
    EXPECT_EQ(serial[i].completed, parallel[i].completed) << i;
    EXPECT_EQ(serial[i].sim_events, parallel[i].sim_events) << i;
    EXPECT_EQ(serial[i].metrics.efficiency, parallel[i].metrics.efficiency)
        << i;
    EXPECT_EQ(serial[i].metrics.messages, parallel[i].metrics.messages) << i;
    EXPECT_EQ(serial[i].counters, parallel[i].counters) << i;
  }
}

}  // namespace
}  // namespace pmx
