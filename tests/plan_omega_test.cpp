#include <gtest/gtest.h>

#include "compiled/plan.hpp"
#include "core/driver.hpp"
#include "fabric/omega.hpp"
#include "sim/simulator.hpp"
#include "switching/preload_tdm.hpp"
#include "traffic/patterns.hpp"

namespace pmx {
namespace {

using namespace pmx::literals;

TEST(CompileWorkloadOmega, ConfigsAreOmegaRoutable) {
  const std::size_t n = 16;
  const OmegaNetwork omega(n);
  const Workload w = patterns::uniform_random(n, 64, 5, 3);
  const CompiledPlan plan = compile_workload_omega(w, omega);
  for (const auto& phase : plan.phases) {
    for (const auto& cfg : phase.configs) {
      EXPECT_TRUE(omega.routable(cfg));
    }
  }
}

TEST(CompileWorkloadOmega, DegreeAtLeastCrossbar) {
  const std::size_t n = 32;
  const OmegaNetwork omega(n);
  const Workload w = patterns::uniform_random(n, 64, 6, 5);
  const CompiledPlan xbar = compile_workload(w);
  const CompiledPlan mesh = compile_workload_omega(w, omega);
  EXPECT_GE(mesh.max_degree(), xbar.max_degree());
}

TEST(CompileWorkloadOmega, ShiftPatternsCostNothingExtra) {
  // The staggered all-to-all is made of uniform shifts, which the Omega
  // network routes without blocking: identical degree to the crossbar.
  const std::size_t n = 16;
  const OmegaNetwork omega(n);
  const Workload w = patterns::all_to_all(n, 64);
  EXPECT_EQ(compile_workload_omega(w, omega).max_degree(),
            compile_workload(w).max_degree());
}

TEST(CompileWorkloadOmega, BudgetsMatchWorkload) {
  const std::size_t n = 16;
  const OmegaNetwork omega(n);
  const Workload w = patterns::random_mesh(n, 96, 2, 9);
  const CompiledPlan plan = compile_workload_omega(w, omega);
  std::uint64_t total = 0;
  for (const auto& phase : plan.phases) {
    for (const auto b : phase.config_bytes) {
      total += b;
    }
  }
  EXPECT_EQ(total, w.total_bytes());
}

TEST(CompileWorkloadOmega, PlanRunsOnPreloadNetwork) {
  // An Omega-constrained plan drives the preload network end to end; the
  // network streams the (more numerous) configurations through K slots.
  const std::size_t n = 16;
  const OmegaNetwork omega(n);
  const Workload w = patterns::random_mesh(n, 128, 1, 11);
  SystemParams params;
  params.num_nodes = n;
  Simulator sim;
  PreloadTdmNetwork net(sim, params, compile_workload_omega(w, omega));
  TrafficDriver driver(sim, net, w);
  driver.start();
  sim.run_until(5000_us);
  EXPECT_TRUE(driver.finished());
  EXPECT_EQ(net.records().size(), w.num_messages());
}

TEST(CompileWorkloadOmegaDeathTest, NodeCountMismatch) {
  const OmegaNetwork omega(8);
  const Workload w = patterns::scatter(16, 64);
  EXPECT_DEATH((void)compile_workload_omega(w, omega), "node count");
}

}  // namespace
}  // namespace pmx
