#include <gtest/gtest.h>

#include "fabric/crossbar.hpp"
#include "fabric/link.hpp"

namespace pmx {
namespace {

using namespace pmx::literals;

TEST(LinkModel, PaperFlitTime) {
  // 8-byte flit at 6.4 Gb/s is exactly 10 ns (Section 5).
  LinkModel link;
  EXPECT_EQ(link.serialization(8), 10_ns);
}

TEST(LinkModel, PaperSlotPayload) {
  // "during a 1 us slot, 125 bytes ... per serial Gb/s link": at 6.4 Gb/s a
  // 100 ns window carries 80 bytes.
  LinkModel link;
  EXPECT_EQ(link.serialization(80), 100_ns);
  EXPECT_EQ(link.bytes_in(100_ns), 80u);
  EXPECT_EQ(link.bytes_in(80_ns), 64u);
}

TEST(LinkModel, SerializationRoundsUp) {
  LinkModel link;
  // 1 byte = 1.25 ns -> rounds up to 2 ns.
  EXPECT_EQ(link.serialization(1), 2_ns);
  EXPECT_EQ(link.serialization(0), 0_ns);
}

TEST(LinkModel, BytesInNonPositiveWindow) {
  LinkModel link;
  EXPECT_EQ(link.bytes_in(0_ns), 0u);
  EXPECT_EQ(link.bytes_in(TimeNs{-5}), 0u);
}

TEST(LinkModel, SegmentLatency) {
  // 30 ns p2s + 20 ns wire + 30 ns s2p = 80 ns: the "cable delay" the paper
  // charges for sending a circuit request to the scheduler.
  LinkModel link;
  EXPECT_EQ(link.segment_latency(), 80_ns);
}

TEST(LinkModel, ThroughPassiveSwitch) {
  // NIC -> switch -> NIC point-to-point head latency 30+20+0+20+30 = 100 ns.
  LinkModel link;
  EXPECT_EQ(link.through_passive_switch(0_ns), 100_ns);
  EXPECT_EQ(link.through_passive_switch(10_ns), 110_ns);
}

TEST(LinkModel, CustomBandwidth) {
  LinkModel::Params p;
  p.bandwidth_dgbps = 10;  // 1 Gb/s
  LinkModel link(p);
  // 125 bytes in 1 us at 1 Gb/s (the paper's example).
  EXPECT_EQ(link.bytes_in(1_us), 125u);
}

TEST(Crossbar, HopDelayByKind) {
  EXPECT_EQ(Crossbar(4, FabricKind::kDigital).hop_delay(), 10_ns);
  EXPECT_EQ(Crossbar(4, FabricKind::kLvds).hop_delay(), 0_ns);
  EXPECT_EQ(Crossbar(4, FabricKind::kOptical).hop_delay(), 0_ns);
}

TEST(Crossbar, StartsDisconnected) {
  Crossbar xbar(8, FabricKind::kLvds);
  for (std::size_t u = 0; u < 8; ++u) {
    EXPECT_EQ(xbar.output_of(u), std::nullopt);
    EXPECT_EQ(xbar.input_of(u), std::nullopt);
  }
}

TEST(Crossbar, LoadConnects) {
  Crossbar xbar(4, FabricKind::kLvds);
  BitMatrix cfg(4);
  cfg.set(0, 2);
  cfg.set(3, 1);
  xbar.load(cfg);
  EXPECT_TRUE(xbar.connected(0, 2));
  EXPECT_FALSE(xbar.connected(0, 1));
  EXPECT_EQ(xbar.output_of(0), 2u);
  EXPECT_EQ(xbar.input_of(2), 0u);
  EXPECT_EQ(xbar.output_of(3), 1u);
  EXPECT_EQ(xbar.output_of(1), std::nullopt);
}

TEST(Crossbar, StageDoesNotTakeEffectUntilCommit) {
  Crossbar xbar(4, FabricKind::kLvds);
  BitMatrix cfg(4);
  cfg.set(1, 1);
  xbar.stage(cfg);
  EXPECT_FALSE(xbar.connected(1, 1));  // still the old (empty) config
  xbar.commit();
  EXPECT_TRUE(xbar.connected(1, 1));
}

TEST(Crossbar, ReconfigurationCountsOnlyChanges) {
  Crossbar xbar(4, FabricKind::kLvds);
  BitMatrix cfg(4);
  cfg.set(0, 0);
  xbar.load(cfg);
  xbar.load(cfg);  // identical: commit but no reconfiguration
  EXPECT_EQ(xbar.commits(), 2u);
  EXPECT_EQ(xbar.reconfigurations(), 1u);
  BitMatrix other(4);
  other.set(0, 1);
  xbar.load(other);
  EXPECT_EQ(xbar.reconfigurations(), 2u);
}

TEST(CrossbarDeathTest, RejectsConflictedConfiguration) {
  Crossbar xbar(4, FabricKind::kLvds);
  BitMatrix bad(4);
  bad.set(0, 1);
  bad.set(2, 1);  // two inputs on output 1
  EXPECT_DEATH(xbar.stage(bad), "partial permutation");
}

}  // namespace
}  // namespace pmx
