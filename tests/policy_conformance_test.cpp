// Conformance-differential suite for the policy-engine refactor: the
// timeout/counter/phase/none/never-evict policies, reimplemented as rank
// functions over the PolicyEngine core, must reproduce the pre-refactor
// predictors *byte for byte*. The goldens in tests/golden/runs were
// captured from the old TimeoutPredictor/CounterPredictor/PhasePredictor
// implementations before the rewrite; each scenario's full RunResult
// fingerprint (every metric at %.17g plus every counter) is compared
// against its golden here. A single changed eviction decision anywhere in
// a run cascades into the makespan and event counts, so any behavioral
// drift in the engine fails loudly.
//
// The chaos-mesh scenarios layer lossy control, random link faults and the
// recovery-mode auditor on top, freezing the predictor's interaction with
// forced releases and resyncs as well.

#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "golden/fingerprint.hpp"
#include "golden/scenarios.hpp"

namespace pmx {
namespace {

PolicySpec scenario_policy(const golden::Scenario& s) {
  PolicySpec spec;
  spec.policy = s.policy;
  if (s.timeout_ns != 0) {
    spec.timeout_ns = s.timeout_ns;
  }
  if (s.threshold != 0) {
    spec.threshold = s.threshold;
  }
  if (s.phase_epoch_ns != 0) {
    spec.phase_epoch_ns = s.phase_epoch_ns;
  }
  spec.validate();
  return spec;
}

std::string read_golden(const std::string& id) {
  const std::string path = std::string(PMX_GOLDEN_DIR) + "/" + id + ".txt";
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing golden: " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

class PolicyConformance
    : public ::testing::TestWithParam<golden::Scenario> {};

TEST_P(PolicyConformance, MatchesPreRefactorGolden) {
  const golden::Scenario& s = GetParam();
  RunConfig config;
  golden::apply_scenario_base(config, s);
  config.policy = scenario_policy(s);
  const RunResult result = run_workload(config, golden::scenario_workload(s));
  EXPECT_EQ(golden::fingerprint(s.id, result), read_golden(s.id)) << s.id;
}

INSTANTIATE_TEST_SUITE_P(
    Goldens, PolicyConformance,
    ::testing::ValuesIn(golden::conformance_scenarios()),
    [](const ::testing::TestParamInfo<golden::Scenario>& param) {
      std::string name = param.param.id;
      for (char& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name;
    });

}  // namespace
}  // namespace pmx
