#include "common/bitmatrix.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace pmx {
namespace {

TEST(BitMatrix, ConstructZero) {
  BitMatrix m(8);
  EXPECT_EQ(m.size(), 8u);
  EXPECT_EQ(m.count(), 0u);
  EXPECT_TRUE(m.none());
}

TEST(BitMatrix, SetGetToggle) {
  BitMatrix m(4);
  m.set(1, 2);
  EXPECT_TRUE(m.get(1, 2));
  EXPECT_FALSE(m.get(2, 1));
  m.toggle(1, 2);
  EXPECT_FALSE(m.get(1, 2));
  m.toggle(3, 3);
  EXPECT_TRUE(m.get(3, 3));
}

TEST(BitMatrix, RowXorFlipsMaskedBits) {
  BitMatrix m(70);
  m.set(3, 0);
  m.set(3, 69);
  BitVector r(70);
  r.set(0);   // clears an existing bit
  r.set(64);  // sets a fresh bit in the second word
  m.row_xor(3, r);
  EXPECT_FALSE(m.get(3, 0));
  EXPECT_TRUE(m.get(3, 64));
  EXPECT_TRUE(m.get(3, 69));
  EXPECT_EQ(m.row(3).count(), 2u);
}

TEST(BitMatrix, RowColAny) {
  BitMatrix m(6);
  m.set(2, 5);
  EXPECT_TRUE(m.row_any(2));
  EXPECT_FALSE(m.row_any(3));
  EXPECT_TRUE(m.col_any(5));
  EXPECT_FALSE(m.col_any(2));
}

TEST(BitMatrix, RowOrIsAiVector) {
  // AI_u = OR of row u: "input u is connected to some output".
  BitMatrix m(4);
  m.set(0, 1);
  m.set(3, 2);
  const BitVector ai = m.row_or();
  EXPECT_TRUE(ai.get(0));
  EXPECT_FALSE(ai.get(1));
  EXPECT_FALSE(ai.get(2));
  EXPECT_TRUE(ai.get(3));
}

TEST(BitMatrix, ColOrIsAoVector) {
  // AO_v = OR of column v: "output v is driven by some input".
  BitMatrix m(4);
  m.set(0, 1);
  m.set(3, 2);
  const BitVector ao = m.col_or();
  EXPECT_FALSE(ao.get(0));
  EXPECT_TRUE(ao.get(1));
  EXPECT_TRUE(ao.get(2));
  EXPECT_FALSE(ao.get(3));
}

TEST(BitMatrix, PartialPermutationAccepts) {
  BitMatrix m(4);
  EXPECT_TRUE(m.is_partial_permutation());  // empty is valid
  m.set(0, 1);
  m.set(1, 0);
  m.set(3, 3);
  EXPECT_TRUE(m.is_partial_permutation());
}

TEST(BitMatrix, PartialPermutationRejectsRowConflict) {
  BitMatrix m(4);
  m.set(0, 1);
  m.set(0, 2);  // input 0 drives two outputs
  EXPECT_FALSE(m.is_partial_permutation());
}

TEST(BitMatrix, PartialPermutationRejectsColConflict) {
  BitMatrix m(4);
  m.set(0, 1);
  m.set(2, 1);  // two inputs drive output 1
  EXPECT_FALSE(m.is_partial_permutation());
}

TEST(BitMatrix, OrIsBStarAggregation) {
  // B* = B(0) | B(1) | ... as in Section 4.
  BitMatrix b0(4);
  BitMatrix b1(4);
  b0.set(0, 1);
  b1.set(2, 3);
  b1.set(0, 1);
  const BitMatrix b_star = b0 | b1;
  EXPECT_TRUE(b_star.get(0, 1));
  EXPECT_TRUE(b_star.get(2, 3));
  EXPECT_EQ(b_star.count(), 2u);
}

TEST(BitMatrix, AndMasking) {
  BitMatrix a(4);
  BitMatrix b(4);
  a.set(1, 1);
  a.set(2, 2);
  b.set(1, 1);
  EXPECT_EQ((a & b).count(), 1u);
}

TEST(BitMatrix, SetRowReplacesRow) {
  BitMatrix m(4);
  BitVector r(4);
  r.set(0);
  r.set(3);
  m.set_row(2, r);
  EXPECT_TRUE(m.get(2, 0));
  EXPECT_TRUE(m.get(2, 3));
  EXPECT_EQ(m.count(), 2u);
}

TEST(BitMatrix, ResetClearsEverything) {
  BitMatrix m(5);
  m.set(1, 1);
  m.set(4, 0);
  m.reset();
  EXPECT_TRUE(m.none());
}

TEST(BitMatrix, ToStringLayout) {
  BitMatrix m(3);
  m.set(0, 2);
  m.set(2, 0);
  EXPECT_EQ(m.to_string(), "001\n000\n100\n");
}

// Property: a random full permutation is always a valid partial permutation,
// and adding any duplicate row/column entry invalidates it.
class BitMatrixPermutationTest : public ::testing::TestWithParam<std::size_t> {
};

TEST_P(BitMatrixPermutationTest, RandomPermutationIsValid) {
  const std::size_t n = GetParam();
  Rng rng(n + 42);
  const auto perm = rng.permutation(n);
  BitMatrix m(n);
  for (std::size_t u = 0; u < n; ++u) {
    m.set(u, perm[u]);
  }
  EXPECT_TRUE(m.is_partial_permutation());
  EXPECT_EQ(m.count(), n);
  // Every AI and AO bit must be set for a full permutation.
  EXPECT_EQ(m.row_or().count(), n);
  EXPECT_EQ(m.col_or().count(), n);
  // Corrupt it.
  const std::size_t u = static_cast<std::size_t>(rng.below(n));
  m.set(u, (perm[u] + 1) % n);
  EXPECT_FALSE(m.is_partial_permutation());
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitMatrixPermutationTest,
                         ::testing::Values(2, 3, 8, 16, 64, 128));

}  // namespace
}  // namespace pmx
