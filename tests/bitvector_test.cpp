#include "common/bitvector.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace pmx {
namespace {

TEST(BitVector, DefaultIsEmpty) {
  BitVector v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.empty());
  EXPECT_TRUE(v.none());
}

TEST(BitVector, ConstructAllZero) {
  BitVector v(100);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_EQ(v.count(), 0u);
  EXPECT_TRUE(v.none());
  EXPECT_FALSE(v.any());
}

TEST(BitVector, ConstructAllOne) {
  BitVector v(100, true);
  EXPECT_EQ(v.count(), 100u);
  EXPECT_TRUE(v.any());
  EXPECT_FALSE(v.none());
}

TEST(BitVector, AllOneTailIsTrimmed) {
  // 65 bits spans two words; the second word must not carry stray bits.
  BitVector v(65, true);
  EXPECT_EQ(v.count(), 65u);
  v.clear(64);
  EXPECT_EQ(v.count(), 64u);
}

TEST(BitVector, SetGetClear) {
  BitVector v(128);
  v.set(0);
  v.set(63);
  v.set(64);
  v.set(127);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(63));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(127));
  EXPECT_FALSE(v.get(1));
  EXPECT_EQ(v.count(), 4u);
  v.clear(63);
  EXPECT_FALSE(v.get(63));
  EXPECT_EQ(v.count(), 3u);
}

TEST(BitVector, ResetAndFill) {
  BitVector v(70);
  v.set(3);
  v.reset();
  EXPECT_TRUE(v.none());
  v.fill();
  EXPECT_EQ(v.count(), 70u);
}

TEST(BitVector, FindFirst) {
  BitVector v(200);
  EXPECT_EQ(v.find_first(), 200u);
  v.set(150);
  EXPECT_EQ(v.find_first(), 150u);
  v.set(7);
  EXPECT_EQ(v.find_first(), 7u);
}

TEST(BitVector, FindNext) {
  BitVector v(200);
  v.set(10);
  v.set(64);
  v.set(199);
  EXPECT_EQ(v.find_next(0), 10u);
  EXPECT_EQ(v.find_next(10), 10u);
  EXPECT_EQ(v.find_next(11), 64u);
  EXPECT_EQ(v.find_next(65), 199u);
  EXPECT_EQ(v.find_next(200), 200u);
}

TEST(BitVector, FindNextWrap) {
  BitVector v(100);
  v.set(5);
  EXPECT_EQ(v.find_next_wrap(50), 5u);  // wraps around
  EXPECT_EQ(v.find_next_wrap(5), 5u);
  EXPECT_EQ(v.find_next_wrap(0), 5u);
  BitVector empty(100);
  EXPECT_EQ(empty.find_next_wrap(3), 100u);
}

TEST(BitVector, BitwiseOps) {
  BitVector a(80);
  BitVector b(80);
  a.set(1);
  a.set(2);
  b.set(2);
  b.set(3);
  EXPECT_EQ((a | b).count(), 3u);
  EXPECT_EQ((a & b).count(), 1u);
  EXPECT_EQ((a ^ b).count(), 2u);
  EXPECT_TRUE((a & b).get(2));
}

TEST(BitVector, Equality) {
  BitVector a(50);
  BitVector b(50);
  EXPECT_EQ(a, b);
  a.set(10);
  EXPECT_NE(a, b);
  b.set(10);
  EXPECT_EQ(a, b);
}

TEST(BitVector, ToString) {
  BitVector v(5);
  v.set(1);
  v.set(4);
  EXPECT_EQ(v.to_string(), "01001");
}

TEST(BitVector, FlipTogglesAcrossWordBoundaries) {
  BitVector v(130);
  for (const std::size_t i : {0u, 63u, 64u, 127u, 128u, 129u}) {
    v.flip(i);
    EXPECT_TRUE(v.get(i)) << i;
    v.flip(i);
    EXPECT_FALSE(v.get(i)) << i;
  }
  EXPECT_TRUE(v.none());
}

TEST(BitVector, AndNotClearsMaskedBits) {
  BitVector a(130);
  BitVector b(130);
  a.set(1);
  a.set(64);
  a.set(129);
  b.set(64);
  b.set(100);  // clearing an unset bit is a no-op
  a.and_not(b);
  EXPECT_TRUE(a.get(1));
  EXPECT_FALSE(a.get(64));
  EXPECT_TRUE(a.get(129));
  EXPECT_EQ(a.count(), 2u);
}

TEST(BitVector, Intersects) {
  BitVector a(200);
  BitVector b(200);
  EXPECT_FALSE(a.intersects(b));
  a.set(70);
  b.set(71);
  EXPECT_FALSE(a.intersects(b));
  b.set(70);
  EXPECT_TRUE(a.intersects(b));
  EXPECT_TRUE(b.intersects(a));
  // Overlap only in the final partial word.
  BitVector c(200);
  BitVector d(200);
  c.set(199);
  d.set(199);
  EXPECT_TRUE(c.intersects(d));
}

TEST(BitVector, FindNextAndNot) {
  BitVector v(200);
  BitVector mask(200);
  v.set(10);
  v.set(64);
  v.set(199);
  mask.set(10);
  mask.set(199);
  EXPECT_EQ(v.find_next_and_not(mask, 0), 64u);   // 10 is masked
  EXPECT_EQ(v.find_next_and_not(mask, 64), 64u);  // from is inclusive
  EXPECT_EQ(v.find_next_and_not(mask, 65), 200u);  // 199 is masked
  mask.clear(10);
  EXPECT_EQ(v.find_next_and_not(mask, 0), 10u);
  EXPECT_EQ(v.find_next_and_not(mask, 200), 200u);  // from == size()
  BitVector empty_mask(200);
  EXPECT_EQ(v.find_next_and_not(empty_mask, 11), 64u);
}

TEST(BitVector, ForEachSetVisitsSetBitsInOrder) {
  BitVector v(150);
  v.set(0);
  v.set(63);
  v.set(64);
  v.set(149);
  std::vector<std::size_t> visited;
  v.for_each_set([&](std::size_t i) { visited.push_back(i); });
  EXPECT_EQ(visited, (std::vector<std::size_t>{0, 63, 64, 149}));
}

// Property: count() equals the number of get()==true positions for random
// contents at awkward sizes around word boundaries.
class BitVectorPropertyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitVectorPropertyTest, CountMatchesEnumeration) {
  const std::size_t n = GetParam();
  Rng rng(n * 7919 + 13);
  BitVector v(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.chance(0.3)) {
      v.set(i);
    }
  }
  std::size_t manual = 0;
  for (std::size_t i = 0; i < n; ++i) {
    manual += v.get(i) ? 1u : 0u;
  }
  EXPECT_EQ(v.count(), manual);
}

TEST_P(BitVectorPropertyTest, FindIterationVisitsExactlySetBits) {
  const std::size_t n = GetParam();
  Rng rng(n * 104729 + 1);
  BitVector v(n);
  std::vector<std::size_t> expected;
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.chance(0.2)) {
      v.set(i);
      expected.push_back(i);
    }
  }
  std::vector<std::size_t> visited;
  for (std::size_t i = v.find_first(); i < n; i = v.find_next(i + 1)) {
    visited.push_back(i);
  }
  EXPECT_EQ(visited, expected);
}

TEST_P(BitVectorPropertyTest, ForEachSetMatchesFindIteration) {
  const std::size_t n = GetParam();
  Rng rng(n * 31337 + 5);
  BitVector v(n);
  BitVector mask(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.chance(0.25)) {
      v.set(i);
    }
    if (rng.chance(0.5)) {
      mask.set(i);
    }
  }
  std::vector<std::size_t> via_find;
  for (std::size_t i = v.find_first(); i < n; i = v.find_next(i + 1)) {
    via_find.push_back(i);
  }
  std::vector<std::size_t> via_for_each;
  v.for_each_set([&](std::size_t i) { via_for_each.push_back(i); });
  EXPECT_EQ(via_for_each, via_find);

  // find_next_and_not agrees with the materialized equivalent at every
  // starting offset.
  const BitVector expected = v & (BitVector(n, true) ^ mask);
  for (std::size_t from = 0; from <= n; ++from) {
    EXPECT_EQ(v.find_next_and_not(mask, from), expected.find_next(from))
        << "from=" << from;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitVectorPropertyTest,
                         ::testing::Values(1, 2, 63, 64, 65, 127, 128, 129,
                                           200, 1000));

}  // namespace
}  // namespace pmx
