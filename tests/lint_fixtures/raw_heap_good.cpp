// Fixture: sorted containers and plain sorts must not trip raw-heap; a
// push_heap mentioned only in this comment must not either.
#include <algorithm>
#include <vector>

void order(std::vector<int>& v) {
  std::sort(v.begin(), v.end());
}

int take_min(std::vector<int>& v) {
  const int top = v.front();
  v.erase(v.begin());
  return top;
}
