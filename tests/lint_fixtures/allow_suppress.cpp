// Fixture: the allow() escape hatch suppresses exactly the annotated line.
struct Node {
  int value = 0;
};

Node* first() { return new Node(); }  // pmx-lint: allow(raw-new)
Node* second() { return new Node(); }
// A mismatched rule name must not suppress:
Node* third() { return new Node(); }  // pmx-lint: allow(raw-rand)
