// Good: every growth call is either gated behind an explicit capacity
// verdict (visible within the guard window) or carries an allow comment
// stating the structural bound. Draining a queue is always fine.
#include <cstdint>
#include <deque>

struct Message {
  std::uint64_t bytes = 0;
};

class BoundedNic {
 public:
  bool try_submit(const Message& msg) {
    if (total_bytes_ + msg.bytes > capacity_bytes_) {
      return false;  // shed: the caller settles the drop
    }
    fifo_.push_back(msg);
    total_bytes_ += msg.bytes;
    return true;
  }

  void park(const Message& msg) {
    // Structurally bounded: at most one parked message per source.
    parked_.push_back(msg);  // pmx-lint: allow(unbounded-queue)
  }

  void drain() {
    while (!fifo_.empty()) {
      total_bytes_ -= fifo_.front().bytes;
      fifo_.pop_front();
    }
  }

 private:
  std::uint64_t total_bytes_ = 0;
  std::uint64_t capacity_bytes_ = 4096;
  std::deque<Message> fifo_;
  std::deque<Message> parked_;
};
