// Fixture: pmx::Rng use and near-miss identifiers must not trip raw-rand.
#include "common/rng.hpp"

int good_draw(pmx::Rng& rng) { return static_cast<int>(rng.below(10)); }
// Identifiers merely containing the banned names are fine:
int operand_count = 0;
int randomized_total(int grand) { return grand + operand_count; }
// Mentions in comments are fine: std::rand(), time(NULL), std::mt19937.
const char* kDoc = "calls std::rand() internally";  // string literal is fine
std::int64_t runtime(std::int64_t t) { return t; }  // 'time(' needs a seed arg
