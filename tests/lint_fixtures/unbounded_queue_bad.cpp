// Bad: NIC-style queues that grow with no capacity verdict anywhere in
// sight. Under overload these wedge the simulation or eat unbounded
// memory; every growth call below must trip unbounded-queue.
#include <cstdint>
#include <deque>
#include <vector>

struct Message {
  std::uint64_t bytes = 0;
  std::size_t dst = 0;
};

class LeakyNic {
 public:
  void submit(const Message& msg) {
    fifo_.push_back(msg);
    lanes_[msg.dst].emplace_back(msg);
  }

  void requeue(const Message& msg) { fifo_.push_front(msg); }

 private:
  std::deque<Message> fifo_;
  std::vector<std::deque<Message>> lanes_;
};
