// Fixture: raw priority queues and <algorithm> heap primitives trip
// raw-heap (rank ordering belongs in PolicyEngine, event ordering in
// EventQueue).
#include <algorithm>
#include <queue>
#include <vector>

std::priority_queue<int> shadow_scheduler;

void heapify(std::vector<int>& v) {
  std::make_heap(v.begin(), v.end());
}

int take_min(std::vector<int>& v) {
  std::pop_heap(v.begin(), v.end());
  const int top = v.back();
  v.pop_back();
  return top;
}
