#pragma once

// core (layer 5) -> switching (layer 4) and compiled (layer 3): down-rank.
#include "compiled/plan.hpp"
#include "switching/fab.hpp"

namespace fix {
inline int top() { return fab() + plan(); }
}  // namespace fix
