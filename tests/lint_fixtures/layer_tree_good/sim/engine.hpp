#pragma once

// sim (layer 1) -> common (layer 0): down-rank, legal.
#include "common/util.hpp"

namespace fix {
inline int engine() { return util(); }
}  // namespace fix
