#pragma once

// compiled -> traffic is the one DECLARED intra-layer edge (both layer 3):
// compiled schedules are built from traffic descriptions. Legal only
// because the contract names it in INTRA_LAYER_EDGES.
#include "traffic/gen.hpp"

namespace fix {
inline int plan() { return gen(); }
}  // namespace fix
