#pragma once

// sched (layer 2) -> sim (layer 1) and common (layer 0): both down-rank.
#include "common/util.hpp"
#include "sim/engine.hpp"

namespace fix {
inline int arb() { return engine() + util(); }
}  // namespace fix
