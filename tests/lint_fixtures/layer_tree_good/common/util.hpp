#pragma once

namespace fix {
inline int util() { return 0; }
}  // namespace fix
