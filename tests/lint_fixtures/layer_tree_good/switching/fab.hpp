#pragma once

// switching (layer 4) -> sched (layer 2): down-rank, legal.
#include "sched/arb.hpp"

namespace fix {
inline int fab() { return arb(); }
}  // namespace fix
