#pragma once

#include "common/util.hpp"

namespace fix {
inline int gen() { return util(); }
}  // namespace fix
