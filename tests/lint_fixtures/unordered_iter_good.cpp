// Fixture: ordered containers and lookups must not trip unordered-iter.
#include <cstdint>
#include <map>
#include <unordered_set>
#include <vector>

std::uint64_t stable_order(const std::unordered_set<std::uint64_t>& members) {
  std::map<int, int> table{{1, 2}};
  std::vector<std::uint64_t> items{3, 4};
  std::uint64_t acc = 0;
  for (const auto& [k, v] : table) {  // std::map iterates in key order
    acc += static_cast<std::uint64_t>(k + v);
  }
  for (const auto x : items) {
    acc += x + (members.contains(x) ? 1u : 0u);  // lookup, not iteration
  }
  return acc;
}
