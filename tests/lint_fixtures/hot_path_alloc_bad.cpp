// Bad: a `// pmx-hot` kernel that allocates on every call. Heap traffic in
// the per-event path dominates simulator throughput; each of the four
// allocating lines inside drain() must trip hot-path-alloc. The identical
// cold() function below carries no annotation and must not be flagged.
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

struct Entry {
  std::uint64_t id = 0;
};

class Drainer {
 public:
  // pmx-hot
  std::uint64_t drain(std::uint64_t id) {
    Entry* e = new Entry{id};
    std::function<void()> cb = [e] { (void)e; };
    std::string label = std::to_string(id);
    log_.push_back(id);
    cb();
    delete e;
    return id + label.size();
  }

  std::uint64_t cold(std::uint64_t id) {
    log_.push_back(id);
    return id;
  }

 private:
  std::vector<std::uint64_t> log_;
};
