// Good: time comes from the simulation's virtual clock, configuration from
// explicit parameters, and the only host clock is a monotonic one timing a
// benchmark loop -- legal here because this file is not under src/ (the
// test suite re-lints it under a src/ path to show the scoped rule fires).
#include <chrono>
#include <cstdint>

struct Sim {
  std::uint64_t now_ns = 0;
  std::uint64_t now() const { return now_ns; }
};

inline std::uint64_t deadline(const Sim& sim, std::uint64_t timeout_ns) {
  return sim.now() + timeout_ns;
}

inline double bench_seconds() {
  const auto t0 = std::chrono::steady_clock::now();
  volatile std::uint64_t sink = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    sink += i;
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}
