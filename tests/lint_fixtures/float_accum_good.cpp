// Fixture: integral accumulation and float assignment must not trip
// float-accum.
#include <cstdint>

std::int64_t integral_accounting(const std::int64_t* samples, int n) {
  std::int64_t acc = 0;
  std::uint64_t bytes = 0;
  for (int i = 0; i < n; ++i) {
    acc += samples[i];
    bytes += static_cast<std::uint64_t>(samples[i]);
  }
  double ratio = 0.0;
  ratio = static_cast<double>(acc) / 2.0;  // plain assignment is fine
  return acc + static_cast<std::int64_t>(ratio) +
         static_cast<std::int64_t>(bytes);
}
