// Fixture: header without #pragma once trips include-guard.
namespace lint_fixture {
inline int unguarded() { return 1; }
}  // namespace lint_fixture
