// Fixture: #pragma once within the first lines satisfies include-guard.
#pragma once

namespace lint_fixture {
inline int guarded() { return 2; }
}  // namespace lint_fixture
