// Bad: host wall-clock and environment reads. A simulation whose results
// depend on when or where it ran cannot be reproduced from its seed; every
// line below must trip wallclock.
#include <chrono>
#include <cstdlib>
#include <ctime>

struct RunStamp {
  long long wall = 0;
  long long fine = 0;
  const char* trace = nullptr;
};

inline RunStamp stamp() {
  RunStamp s;
  s.wall = std::chrono::system_clock::now().time_since_epoch().count();
  timespec ts{};
  clock_gettime(CLOCK_REALTIME, &ts);
  s.fine = ts.tv_sec;
  s.trace = std::getenv("PMX_TRACE");
  time_t now = 0;
  time(&now);
  return s;
}
