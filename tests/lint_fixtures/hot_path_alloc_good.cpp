// Good: the hot kernel only touches pre-reserved storage and plain
// arithmetic; the container it grows is reserve()d in the constructor, so
// steady-state pushes never reallocate. The cold helper may build strings
// and allocate freely -- it carries no pmx-hot annotation.
#include <cstdint>
#include <string>
#include <vector>

class Drainer {
 public:
  explicit Drainer(std::size_t expected) { log_.reserve(expected); }

  // pmx-hot
  std::uint64_t drain(std::uint64_t id) {
    log_.push_back(id);
    total_ += id;
    return total_;
  }

  std::string report() const {
    return "drained " + std::to_string(log_.size());
  }

 private:
  std::vector<std::uint64_t> log_;
  std::uint64_t total_ = 0;
};
