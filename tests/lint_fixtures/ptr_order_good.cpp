// Good: the same registry keyed on stable integer ids, and the sort
// compares a value field instead of the pointers themselves. Identical
// behavior on every run regardless of where the heap lands.
#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

struct Conn {
  std::uint64_t id = 0;
};

struct Registry {
  std::unordered_map<std::uint64_t, int> credits;
  std::set<std::uint64_t> parked;
  std::map<std::uint64_t, Conn> by_id;
};

inline void order(std::vector<Conn*>& v) {
  // Same shape as the bad fixture's sort, but the comparator orders a
  // stable value field, not the addresses. Kept on one line so the
  // analyzer's comparator check actually inspects (and passes) it.
  std::sort(v.begin(), v.end(), [](const Conn* a, const Conn* b) { return a->id < b->id; });
}
