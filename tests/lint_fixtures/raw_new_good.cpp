// Fixture: smart pointers, deleted functions, and comments must not trip
// raw-new.
#include <memory>
#include <vector>

struct Node {
  int value = 0;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;
  Node() = default;
};

std::unique_ptr<Node> owned() { return std::make_unique<Node>(); }
std::vector<int> pooled(int n) {
  // a new vector each call; "delete" appears only in this comment
  return std::vector<int>(static_cast<unsigned>(n));
}
