// Bad: iteration and lookup order keyed on raw pointer values. Heap
// addresses change run to run under ASLR, so any behavior that flows from
// these containers (or the address-comparing sort) is nondeterministic.
// Every line below must trip ptr-order.
#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

struct Conn {
  int id = 0;
};

struct Registry {
  std::unordered_map<Conn*, int> credits;
  std::set<Conn*> parked;
  std::size_t fingerprint(Conn* c) { return std::hash<Conn*>{}(c); }
};

inline void order(std::vector<Conn*>& v) {
  std::sort(v.begin(), v.end(), [](const Conn* a, const Conn* b) { return a < b; });
}
