// Fixture: iterating unordered containers trips unordered-iter.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

std::uint64_t bucket_order_leak() {
  std::unordered_map<int, int> table;
  std::unordered_set<std::uint64_t> members;
  std::uint64_t acc = 0;
  for (const auto& [k, v] : table) {
    acc = acc * 31 + static_cast<std::uint64_t>(k + v);
  }
  for (auto it = members.begin(); it != members.end(); ++it) {
    acc = acc * 31 + *it;
  }
  return acc;
}
