#pragma once

// Violation: sched (layer 2) reaching UP into core (layer 5). Dependencies
// may only point down the layer ranks.
#include "core/top.hpp"

namespace fix {
inline int uses_core() { return top(); }
}  // namespace fix
