#pragma once

// Violation: 'plugins' is not a module the layer contract declares, so the
// analyzer reports the module itself (once, at line 1) rather than each of
// its includes.
#include "common/util.hpp"

namespace fix {
inline int ext() { return util(); }
}  // namespace fix
