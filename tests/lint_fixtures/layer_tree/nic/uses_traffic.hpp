#pragma once

// Violation: nic and traffic share layer 3, and (nic, traffic) is not a
// declared intra-layer edge -- siblings may not include each other unless
// the contract names the edge explicitly.
#include "traffic/gen.hpp"

namespace fix {
inline int uses_traffic() { return gen(); }
}  // namespace fix
