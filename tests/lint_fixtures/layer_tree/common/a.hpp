#pragma once

// Half of a two-file include cycle (a <-> b): the analyzer must report the
// pair as one include-cycle finding anchored at the lexicographically first
// member (this file).
#include "common/b.hpp"

namespace fix {
inline int a() { return b_value + 1; }
}  // namespace fix
