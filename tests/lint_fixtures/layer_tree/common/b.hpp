#pragma once

// Other half of the a <-> b include cycle.
#include "common/a.hpp"

namespace fix {
inline constexpr int b_value = 41;
}  // namespace fix
