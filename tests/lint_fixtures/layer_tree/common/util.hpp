#pragma once

// Leaf vocabulary header: includes nothing, everyone may include it.
namespace fix {
inline int util() { return 0; }
}  // namespace fix
