#pragma once

// Legal: core (layer 5) reaching down to common (layer 0).
#include "common/util.hpp"

namespace fix {
inline int top() { return util(); }
}  // namespace fix
