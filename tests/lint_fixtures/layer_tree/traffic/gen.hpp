#pragma once

// Legal: traffic (layer 3) reaching down to common (layer 0).
#include "common/util.hpp"

namespace fix {
inline int gen() { return util(); }
}  // namespace fix
