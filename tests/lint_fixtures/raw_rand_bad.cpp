// Fixture: every line here trips the raw-rand rule.
#include <cstdlib>
#include <ctime>
#include <random>

int bad_rand() { return std::rand(); }
void bad_srand() { srand(42); }
unsigned bad_seed() { return static_cast<unsigned>(time(nullptr)); }
std::mt19937 bad_engine{std::random_device{}()};
