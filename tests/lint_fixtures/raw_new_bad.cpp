// Fixture: raw new/delete expressions trip raw-new.
struct Node {
  int value = 0;
};

Node* leak_prone() { return new Node(); }
void manual_free(Node* n) { delete n; }
int* array_alloc(int n) { return new int[static_cast<unsigned>(n)]; }
void array_free(int* p) { delete[] p; }
