// Fixture: float/double accumulation trips float-accum outside whitelist.
struct Tally {
  double total_ns = 0.0;
};

double slot_accounting(const double* samples, int n) {
  double acc = 0.0;
  float small = 0.0F;
  for (int i = 0; i < n; ++i) {
    acc += samples[i];
    small -= static_cast<float>(samples[i]);
  }
  return acc + static_cast<double>(small);
}
