// Unit tests for the control-layer pieces of the re-optimization service
// loop: the integer-EWMA demand estimator (including a 500-seed randomized
// differential against a naive dense recount with lossy counter delivery)
// and the budgeted greedy slot optimizer.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/bitmatrix.hpp"
#include "common/rng.hpp"
#include "control/demand_estimator.hpp"
#include "control/slot_optimizer.hpp"

namespace pmx {
namespace {

TEST(DemandEstimator, EwmaConvergesToSteadySampleAndDecaysToZero) {
  DemandEstimator est(4, /*ewma_shift=*/2);
  for (int i = 0; i < 64; ++i) {
    est.observe(0, 1, 1000);
    est.roll();
  }
  // Steady-state EWMA equals the per-window sample (up to fixed-point
  // truncation from the floor division of the signed gap).
  EXPECT_NEAR(static_cast<double>(est.demand(0, 1)), 1000.0, 1.0);
  for (int i = 0; i < 200; ++i) {
    est.roll();  // empty windows: decay
  }
  EXPECT_EQ(est.demand(0, 1), 0u);
  EXPECT_TRUE(est.snapshot().empty());
}

TEST(DemandEstimator, SnapshotIsIndexOrderedAndSkipsZeroPairs) {
  DemandEstimator est(4, 1);
  est.observe(2, 0, 4096);
  est.observe(0, 3, 4096);
  est.observe(1, 2, 4096);
  est.roll();
  const auto snap = est.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].src, 0u);
  EXPECT_EQ(snap[0].dst, 3u);
  EXPECT_EQ(snap[1].src, 1u);
  EXPECT_EQ(snap[1].dst, 2u);
  EXPECT_EQ(snap[2].src, 2u);
  EXPECT_EQ(snap[2].dst, 0u);
}

TEST(DemandEstimator, ObservationOrderWithinWindowIsIrrelevant) {
  DemandEstimator a(4, 3);
  DemandEstimator b(4, 3);
  a.observe(0, 1, 100);
  a.observe(2, 3, 7);
  a.observe(0, 1, 23);
  b.observe(2, 3, 7);
  b.observe(0, 1, 23);
  b.observe(0, 1, 100);
  a.roll();
  b.roll();
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = 0; v < 4; ++v) {
      EXPECT_EQ(a.raw(u, v), b.raw(u, v));
    }
  }
}

/// 500-seed randomized differential: the estimator against a naive dense
/// recount that re-derives every EWMA from the full observation log. Each
/// observation is delivered "lossily" -- dropped with seed-dependent
/// probability before it reaches either implementation -- modeling lost
/// counter updates on the control channel: both sides must agree on
/// whatever subset actually arrived.
TEST(DemandEstimator, RandomizedDifferentialAgainstNaiveRecount) {
  constexpr std::size_t kSeeds = 500;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    Rng rng(seed * 0x9E3779B97F4A7C15ull);
    const std::size_t n = 2 + rng.below(6);
    const auto shift = static_cast<std::uint32_t>(1 + rng.below(8));
    const double drop = rng.uniform() * 0.5;
    DemandEstimator est(n, shift);

    // windows[w] holds the dense per-pair byte totals that survived loss.
    std::vector<std::vector<std::uint64_t>> windows;
    const std::size_t rolls = 1 + rng.below(20);
    for (std::size_t w = 0; w < rolls; ++w) {
      std::vector<std::uint64_t> dense(n * n, 0);
      const std::size_t events = rng.below(40);
      for (std::size_t e = 0; e < events; ++e) {
        const NodeId u = static_cast<NodeId>(rng.below(n));
        const NodeId v = static_cast<NodeId>(rng.below(n));
        const std::uint64_t bytes = rng.below(1u << 20);
        if (rng.chance(drop)) {
          continue;  // counter update lost in transit
        }
        est.observe(u, v, bytes);
        dense[u * n + v] += bytes;
      }
      est.roll();
      windows.push_back(std::move(dense));
    }

    // Naive recount: replay the surviving log through the published EWMA
    // definition, one pair at a time.
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = 0; v < n; ++v) {
        std::int64_t ewma = 0;
        for (const auto& dense : windows) {
          const auto target =
              static_cast<std::int64_t>(dense[u * n + v]
                                        << DemandEstimator::kFracBits);
          ewma += (target - ewma) >> shift;
        }
        ASSERT_EQ(est.raw(u, v), static_cast<std::uint64_t>(ewma))
            << "seed " << seed << " pair (" << u << "," << v << ")";
      }
    }
  }
}

SlotOptimizer::Options opt_options(std::size_t n, std::size_t k) {
  SlotOptimizer::Options o;
  o.num_nodes = n;
  o.num_slots = k;
  o.change_penalty = 4;
  o.work_budget = 64;
  return o;
}

TEST(SlotOptimizer, CoversDisjointDemandInOneSlot) {
  const SlotOptimizer opt(opt_options(4, 2));
  std::vector<DemandEstimator::Demand> demand{
      {0, 1, 100}, {1, 2, 90}, {2, 3, 80}, {3, 0, 70}};
  const auto p = opt.solve(demand, {});
  EXPECT_EQ(p.covered, 340u);
  // A full permutation fits one partial-permutation table.
  for (const auto& d : demand) {
    EXPECT_TRUE(p.tables[0].get(d.src, d.dst));
  }
  EXPECT_TRUE(p.tables[1].none());
}

TEST(SlotOptimizer, PortConflictsSpillIntoLaterSlots) {
  const SlotOptimizer opt(opt_options(4, 3));
  // Three sources all want destination 0: one crosspoint per slot.
  std::vector<DemandEstimator::Demand> demand{
      {1, 0, 100}, {2, 0, 90}, {3, 0, 80}};
  const auto p = opt.solve(demand, {});
  EXPECT_EQ(p.covered, 270u);
  EXPECT_TRUE(p.tables[0].get(1, 0));
  EXPECT_TRUE(p.tables[1].get(2, 0));
  EXPECT_TRUE(p.tables[2].get(3, 0));
}

TEST(SlotOptimizer, CrosspointStabilityKeepsLivePairsInTheirHomeSlot) {
  const SlotOptimizer opt(opt_options(4, 2));
  // (0, 1) currently lives in slot 1; the proposal must keep it there even
  // though greedy placement alone would pick slot 0.
  std::vector<BitMatrix> current(2, BitMatrix(4));
  current[1].set(0, 1);
  std::vector<DemandEstimator::Demand> demand{{0, 1, 100}, {0, 2, 50}};
  const auto p = opt.solve(demand, current);
  EXPECT_TRUE(p.tables[1].get(0, 1));
  EXPECT_TRUE(p.tables[0].get(0, 2));
  // Only the new pair costs a change.
  EXPECT_EQ(p.changed, 1u);
}

TEST(SlotOptimizer, WorkBudgetTruncatesTheTail) {
  SlotOptimizer::Options o = opt_options(8, 1);
  o.work_budget = 2;
  const SlotOptimizer opt(o);
  std::vector<DemandEstimator::Demand> demand{
      {0, 1, 10}, {1, 2, 90}, {2, 3, 80}, {3, 4, 70}};
  const auto p = opt.solve(demand, {});
  EXPECT_EQ(p.pairs_examined, 2u);
  // The two heaviest pairs survive the cut, index order breaks the tie.
  EXPECT_EQ(p.covered, 170u);
  EXPECT_TRUE(p.tables[0].get(1, 2));
  EXPECT_TRUE(p.tables[0].get(2, 3));
  EXPECT_FALSE(p.tables[0].get(0, 1));
}

TEST(SlotOptimizer, SolveIsDeterministic) {
  const SlotOptimizer opt(opt_options(6, 3));
  Rng rng(77);
  std::vector<DemandEstimator::Demand> demand;
  for (int i = 0; i < 24; ++i) {
    demand.push_back({static_cast<NodeId>(rng.below(6)),
                      static_cast<NodeId>(rng.below(6)), rng.below(1000)});
  }
  std::vector<BitMatrix> current(3, BitMatrix(6));
  current[0].set(1, 4);
  current[2].set(3, 2);
  const auto a = opt.solve(demand, current);
  const auto b = opt.solve(demand, current);
  EXPECT_EQ(a.covered, b.covered);
  EXPECT_EQ(a.changed, b.changed);
  EXPECT_EQ(a.score, b.score);
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(a.tables[s], b.tables[s]);
  }
}

TEST(SlotOptimizer, ScoreAccountsChangePenaltyAgainstBaseline) {
  const SlotOptimizer opt(opt_options(4, 1));
  std::vector<BitMatrix> current(1, BitMatrix(4));
  current[0].set(0, 1);
  std::vector<DemandEstimator::Demand> demand{{0, 1, 100}};
  // Stable demand: proposal re-places the live crosspoint, zero changes.
  const auto stable = opt.solve(demand, current);
  EXPECT_EQ(stable.changed, 0u);
  EXPECT_EQ(stable.score, 100);
  EXPECT_EQ(opt.baseline_score(demand, current), 100);
  // Shifted demand: one add plus one drop, each costing the penalty.
  std::vector<DemandEstimator::Demand> moved{{2, 3, 100}};
  const auto shifted = opt.solve(moved, current);
  EXPECT_EQ(shifted.changed, 2u);
  EXPECT_EQ(shifted.score, 100 - 2 * 4);
  EXPECT_EQ(opt.baseline_score(moved, current), 0);
}

}  // namespace
}  // namespace pmx
