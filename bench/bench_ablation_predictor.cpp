// Ablation A3: eviction predictor policy (Section 3.2). Compares
// no-prediction (release on request drop), the paper's time-out predictor
// at several horizons, the usage-counter predictor, and never-evict, on
// workloads with different reuse behaviour.
//
// Usage: bench_ablation_predictor [--nodes N] [--bytes B] [--jobs J]

#include <iostream>
#include <vector>

#include "common/config.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"
#include "core/sweep.hpp"
#include "traffic/patterns.hpp"

int main(int argc, char** argv) {
  std::size_t nodes = 64;
  std::uint64_t bytes = 256;
  const pmx::Config cfg = pmx::Config::from_cli(argc, argv);
  nodes = cfg.get_uint("nodes", nodes);
  bytes = cfg.get_uint("bytes", bytes);
  const pmx::SweepOptions sweep{cfg.get_uint("jobs", 1)};
  cfg.fail_unread("bench_ablation_predictor");

  // PolicySpec tokens; the row labels are the specs' labels, which match
  // the pre-engine table ("timeout-100", "counter-64", ...) exactly.
  std::vector<pmx::PolicySpec> predictors;
  for (const char* token :
       {"none", "timeout:100", "timeout:200", "timeout:800", "phase:200",
        "counter:64", "counter:512", "never-evict"}) {
    predictors.push_back(pmx::PolicySpec::parse(token));
  }

  struct NamedWorkload {
    std::string name;
    pmx::Workload workload;
  };
  const std::vector<NamedWorkload> workloads{
      {"scatter", pmx::patterns::scatter(nodes, bytes)},
      {"random-mesh", pmx::patterns::random_mesh(nodes, bytes, 2, 7)},
      {"two-phase", pmx::patterns::two_phase(nodes, bytes, 7)},
  };

  const std::size_t per_predictor = workloads.size();
  const std::vector<pmx::RunResult> results = pmx::run_sweep(
      predictors.size() * per_predictor,
      [&](std::size_t i) {
        pmx::RunConfig config;
        config.params.num_nodes = nodes;
        config.kind = pmx::SwitchKind::kDynamicTdm;
        config.policy = predictors[i / per_predictor];
        config.multi_slot_connections = true;
        return pmx::run_workload(config,
                                 workloads[i % per_predictor].workload);
      },
      sweep);

  std::cout << "Ablation A3: eviction predictor policy (" << nodes
            << " nodes, " << bytes
            << "-byte messages, dynamic TDM K=4)\n\n";
  std::vector<std::string> headers{"predictor"};
  for (const auto& [name, workload] : workloads) {
    headers.push_back(name);
  }
  pmx::Table table(std::move(headers));
  for (std::size_t p = 0; p < predictors.size(); ++p) {
    std::vector<std::string> row{predictors[p].label()};
    for (std::size_t w = 0; w < workloads.size(); ++w) {
      const pmx::RunResult& result = results[p * per_predictor + w];
      row.push_back(result.completed
                        ? pmx::Table::fmt(result.metrics.efficiency, 3)
                        : std::string("DNF"));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  return 0;
}
