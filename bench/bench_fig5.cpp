// Figure 5 reproduction: combining preloaded communication patterns with
// dynamic scheduling. A multiplexing degree of three; k of the three slots
// are pinned with the statically known pattern (each node's two favored
// destinations form two permutations); the remaining 3-k slots schedule
// dynamically. Each node issues `count` sends: with probability d
// ("determinism") to a favored destination, otherwise to a uniformly random
// node. d sweeps 50%..100%.
//
// Usage: bench_fig5 [--nodes N] [--bytes B] [--count C] [--csv]
//        [--multislot] [--timeout NS] [--jobs J]
// Unknown options abort with exit status 2.

#include <iostream>
#include <vector>

#include "common/bitmatrix.hpp"
#include "common/config.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"
#include "core/sweep.hpp"
#include "traffic/patterns.hpp"

namespace {

bool g_multi_slot = false;
std::int64_t g_timeout_ns = 200;

/// Permutation configuration for favored-destination set j.
pmx::BitMatrix favored_config(std::size_t nodes, std::size_t j,
                              std::size_t favored) {
  pmx::BitMatrix config(nodes);
  for (pmx::NodeId u = 0; u < nodes; ++u) {
    config.set(u, pmx::patterns::favored_destination(nodes, u, j, favored));
  }
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const pmx::Config cfg = pmx::Config::from_cli(argc, argv);
  const std::size_t nodes = cfg.get_uint("nodes", 128);
  const std::uint64_t bytes = cfg.get_uint("bytes", 64);
  const std::size_t count = cfg.get_uint("count", 64);
  const bool csv = cfg.get_bool("csv", false);
  g_multi_slot = cfg.get_bool("multislot", g_multi_slot);
  g_timeout_ns = cfg.get_int("timeout", g_timeout_ns);
  const pmx::SweepOptions sweep{cfg.get_uint("jobs", 1)};
  cfg.fail_unread("bench_fig5");
  constexpr std::size_t kFavored = 2;
  constexpr std::size_t kMuxDegree = 3;  // "A multiplexing degree of three"

  std::cout << "Figure 5: preload + dynamic scheduling (" << nodes
            << " nodes, K=" << kMuxDegree << ", " << bytes
            << "-byte messages, " << count << " sends/node)\n\n";

  constexpr std::uint64_t kSeeds = 3;  // average to damp workload noise
  // Flatten (determinism pct, pinned count, seed) into independent points.
  std::vector<int> pcts;
  for (int pct = 50; pct <= 100; pct += 5) {
    pcts.push_back(pct);
  }
  constexpr std::size_t kPinnedCounts = 3;  // k = 0, 1, 2 preloaded slots
  const std::size_t per_pct = kPinnedCounts * kSeeds;
  const std::vector<pmx::RunResult> results = pmx::run_sweep(
      pcts.size() * per_pct,
      [&](std::size_t i) {
        const int pct = pcts[i / per_pct];
        const std::size_t k = (i % per_pct) / kSeeds;
        const std::uint64_t seed = i % kSeeds + 1;
        const pmx::Workload workload = pmx::patterns::determinism_mix(
            nodes, bytes, static_cast<double>(pct) / 100.0, count, kFavored,
            seed * 1000 + static_cast<std::uint64_t>(pct));
        pmx::RunConfig config;
        config.params.num_nodes = nodes;
        config.params.mux_degree = kMuxDegree;
        config.kind = pmx::SwitchKind::kDynamicTdm;
        config.policy.policy = "timeout";
        config.policy.timeout_ns = g_timeout_ns;
        config.multi_slot_connections = g_multi_slot;
        for (std::size_t j = 0; j < k; ++j) {
          config.pinned_configs.push_back(favored_config(nodes, j, kFavored));
        }
        return pmx::run_workload(config, workload);
      },
      sweep);

  pmx::Table table({"determinism", "0-preload/3-dynamic",
                    "1-preload/2-dynamic", "2-preload/1-dynamic"});
  for (std::size_t p = 0; p < pcts.size(); ++p) {
    std::vector<std::string> row{std::to_string(pcts[p]) + "%"};
    for (std::size_t k = 0; k < kPinnedCounts; ++k) {
      double sum = 0.0;
      bool ok = true;
      for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
        const pmx::RunResult& result =
            results[p * per_pct + k * kSeeds + seed];
        ok = ok && result.completed;
        // Derived statistic over a fixed seed order: reproducible.
        sum += result.metrics.efficiency;  // pmx-lint: allow(float-accum)
      }
      row.push_back(ok ? pmx::Table::fmt(sum / kSeeds, 3)
                       : std::string("DNF"));
    }
    table.add_row(std::move(row));
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\nefficiency = serialization lower bound / achieved "
               "makespan\n";
  return 0;
}
