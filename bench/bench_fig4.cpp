// Figure 4 reproduction: bandwidth efficiency vs message size (8..2048 B)
// for the four test patterns (Scatter, Random Mesh, Ordered Mesh, Two Phase)
// under Wormhole, Circuit, Dynamic TDM (K=4, timeout predictor) and Preload
// TDM (K=4).
//
// Usage: bench_fig4 [--nodes N] [--csv] [--timeout NS] [--multislot|
//        --no-multislot] [--policy NAME[:PARAM]] [--counter-predictor]
//        [--no-predictor] [--jobs J] [--seed S]
// Unknown options abort with exit status 2.
// --policy selects any PolicySpec policy (timeout, counter, lru, lfu-decay,
// deadline, phase, hybrid, none, never-evict); the legacy
// --counter-predictor/--no-predictor flags are shorthands.
//
// Every (pattern, size, paradigm) point is an independent simulation, so
// the sweep fans out across --jobs threads; results are assembled in index
// order and the printed tables are byte-identical for any J.

#include <iostream>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"
#include "core/sweep.hpp"
#include "traffic/patterns.hpp"

namespace {

using pmx::RunConfig;
using pmx::SwitchKind;
using pmx::Workload;

struct Pattern {
  std::string name;
  Workload (*make)(std::size_t nodes, std::uint64_t bytes);
};

// Workload seed; overridable with --seed so sweeps over seeds stay fully
// Config-driven (rng audit: no hardcoded engine seeds outside Config).
std::uint64_t g_seed = 7;

Workload make_scatter(std::size_t nodes, std::uint64_t bytes) {
  return pmx::patterns::scatter(nodes, bytes);
}
Workload make_random_mesh(std::size_t nodes, std::uint64_t bytes) {
  return pmx::patterns::random_mesh(nodes, bytes, /*rounds=*/2, g_seed);
}
Workload make_ordered_mesh(std::size_t nodes, std::uint64_t bytes) {
  return pmx::patterns::ordered_mesh(nodes, bytes, /*rounds=*/2);
}
Workload make_two_phase(std::size_t nodes, std::uint64_t bytes) {
  return pmx::patterns::two_phase(nodes, bytes, g_seed);
}

bool g_multi_slot = true;
pmx::PolicySpec g_policy{};

RunConfig config_for(SwitchKind kind, std::size_t nodes) {
  RunConfig config;
  config.params.num_nodes = nodes;
  config.params.mux_degree = 4;  // Figure 4: multiplexing degree of four
  config.kind = kind;
  config.policy = g_policy;
  config.multi_slot_connections = g_multi_slot;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const pmx::Config cfg = pmx::Config::from_cli(argc, argv);
  const std::size_t nodes = cfg.get_uint("nodes", 128);
  const bool csv = cfg.get_bool("csv", false);
  g_seed = cfg.get_uint("seed", g_seed);
  g_multi_slot = cfg.get_bool("multislot", g_multi_slot) &&
                 !cfg.get_bool("no-multislot", false);
  std::string policy = cfg.get_string("policy", "timeout");
  if (cfg.get_bool("counter-predictor", false)) {
    policy = "counter";
  }
  if (cfg.get_bool("no-predictor", false)) {
    policy = "none";
  }
  g_policy = pmx::PolicySpec::parse(policy);
  g_policy.timeout_ns = cfg.get_int("timeout", g_policy.timeout_ns);
  g_policy.validate();
  const pmx::SweepOptions sweep{cfg.get_uint("jobs", 1)};
  cfg.fail_unread("bench_fig4");

  const std::vector<Pattern> patterns{
      {"scatter", make_scatter},
      {"random-mesh", make_random_mesh},
      {"ordered-mesh", make_ordered_mesh},
      {"two-phase", make_two_phase},
  };
  const std::vector<SwitchKind> kinds{
      SwitchKind::kWormhole, SwitchKind::kCircuit, SwitchKind::kDynamicTdm,
      SwitchKind::kPreloadTdm};
  const std::vector<std::uint64_t> sizes{8, 16, 32, 64, 128, 256, 512, 1024,
                                         2048};

  // Flatten the (pattern, size, kind) cube into independent sweep points;
  // every point rebuilds its workload from the index, so it is a pure
  // function of i and the tables below come out identical for any --jobs.
  const std::size_t per_pattern = sizes.size() * kinds.size();
  const std::vector<pmx::RunResult> results = pmx::run_sweep(
      patterns.size() * per_pattern,
      [&](std::size_t i) {
        const Pattern& pattern = patterns[i / per_pattern];
        const std::uint64_t bytes = sizes[(i % per_pattern) / kinds.size()];
        const SwitchKind kind = kinds[i % kinds.size()];
        return pmx::run_workload(config_for(kind, nodes),
                                 pattern.make(nodes, bytes));
      },
      sweep);

  std::cout << "Figure 4: bandwidth efficiency vs message size (" << nodes
            << " nodes, K=4)\n";
  for (std::size_t p = 0; p < patterns.size(); ++p) {
    std::vector<std::string> headers{"bytes"};
    for (const auto kind : kinds) {
      headers.push_back(pmx::to_string(kind));
    }
    pmx::Table table(std::move(headers));
    for (std::size_t s = 0; s < sizes.size(); ++s) {
      std::vector<std::string> row{pmx::Table::fmt(sizes[s])};
      for (std::size_t k = 0; k < kinds.size(); ++k) {
        const pmx::RunResult& result =
            results[p * per_pattern + s * kinds.size() + k];
        row.push_back(result.completed
                          ? pmx::Table::fmt(result.metrics.efficiency, 3)
                          : std::string("DNF"));
      }
      table.add_row(std::move(row));
    }
    std::cout << "\n== " << patterns[p].name << " ==\n";
    if (csv) {
      table.print_csv(std::cout);
    } else {
      table.print(std::cout);
    }
  }
  return 0;
}
