// Ablation A1: multiplexing degree sweep. How does the number of TDM slots
// K affect dynamic and preloaded switching on the mesh and all-to-all
// patterns? (Section 2's tradeoff: K must cover the working set, but every
// extra populated slot dilutes per-connection bandwidth.)
//
// Usage: bench_ablation_mux [--nodes N] [--bytes B]

#include <iostream>
#include <vector>

#include "common/config.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"
#include "traffic/patterns.hpp"

int main(int argc, char** argv) {
  std::size_t nodes = 64;
  std::uint64_t bytes = 512;
  const pmx::Config cfg = pmx::Config::from_cli(argc, argv);
  nodes = cfg.get_uint("nodes", nodes);
  bytes = cfg.get_uint("bytes", bytes);
  cfg.fail_unread("bench_ablation_mux");

  struct NamedWorkload {
    std::string name;
    pmx::Workload workload;
  };
  const std::vector<NamedWorkload> workloads{
      {"random-mesh", pmx::patterns::random_mesh(nodes, bytes, 2, 7)},
      {"all-to-all", pmx::patterns::all_to_all(nodes, bytes)},
      {"uniform", pmx::patterns::uniform_random(nodes, bytes, 8, 7)},
  };

  std::cout << "Ablation A1: efficiency vs multiplexing degree K (" << nodes
            << " nodes, " << bytes << "-byte messages)\n";
  for (const auto& [name, workload] : workloads) {
    pmx::Table table({"K", "dynamic-tdm", "preload-tdm"});
    for (const std::size_t k : {1u, 2u, 4u, 8u, 16u}) {
      std::vector<std::string> row{pmx::Table::fmt(
          static_cast<std::uint64_t>(k))};
      for (const auto kind :
           {pmx::SwitchKind::kDynamicTdm, pmx::SwitchKind::kPreloadTdm}) {
        pmx::RunConfig config;
        config.params.num_nodes = nodes;
        config.params.mux_degree = k;
        config.kind = kind;
        config.multi_slot_connections = true;
        const auto result = pmx::run_workload(config, workload);
        row.push_back(result.completed
                          ? pmx::Table::fmt(result.metrics.efficiency, 3)
                          : std::string("DNF"));
      }
      table.add_row(std::move(row));
    }
    std::cout << "\n== " << name << " ==\n";
    table.print(std::cout);
  }
  return 0;
}
