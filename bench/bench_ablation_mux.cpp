// Ablation A1: multiplexing degree sweep. How does the number of TDM slots
// K affect dynamic and preloaded switching on the mesh and all-to-all
// patterns? (Section 2's tradeoff: K must cover the working set, but every
// extra populated slot dilutes per-connection bandwidth.)
//
// Usage: bench_ablation_mux [--nodes N] [--bytes B] [--jobs J]

#include <iostream>
#include <vector>

#include "common/config.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"
#include "core/sweep.hpp"
#include "traffic/patterns.hpp"

int main(int argc, char** argv) {
  std::size_t nodes = 64;
  std::uint64_t bytes = 512;
  const pmx::Config cfg = pmx::Config::from_cli(argc, argv);
  nodes = cfg.get_uint("nodes", nodes);
  bytes = cfg.get_uint("bytes", bytes);
  const pmx::SweepOptions sweep{cfg.get_uint("jobs", 1)};
  cfg.fail_unread("bench_ablation_mux");

  struct NamedWorkload {
    std::string name;
    pmx::Workload workload;
  };
  const std::vector<NamedWorkload> workloads{
      {"random-mesh", pmx::patterns::random_mesh(nodes, bytes, 2, 7)},
      {"all-to-all", pmx::patterns::all_to_all(nodes, bytes)},
      {"uniform", pmx::patterns::uniform_random(nodes, bytes, 8, 7)},
  };
  const std::vector<std::size_t> degrees{1, 2, 4, 8, 16};
  const std::vector<pmx::SwitchKind> kinds{pmx::SwitchKind::kDynamicTdm,
                                           pmx::SwitchKind::kPreloadTdm};

  const std::size_t per_workload = degrees.size() * kinds.size();
  const std::vector<pmx::RunResult> results = pmx::run_sweep(
      workloads.size() * per_workload,
      [&](std::size_t i) {
        pmx::RunConfig config;
        config.params.num_nodes = nodes;
        config.params.mux_degree =
            degrees[(i % per_workload) / kinds.size()];
        config.kind = kinds[i % kinds.size()];
        config.multi_slot_connections = true;
        return pmx::run_workload(config,
                                 workloads[i / per_workload].workload);
      },
      sweep);

  std::cout << "Ablation A1: efficiency vs multiplexing degree K (" << nodes
            << " nodes, " << bytes << "-byte messages)\n";
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    pmx::Table table({"K", "dynamic-tdm", "preload-tdm"});
    for (std::size_t d = 0; d < degrees.size(); ++d) {
      std::vector<std::string> row{pmx::Table::fmt(
          static_cast<std::uint64_t>(degrees[d]))};
      for (std::size_t k = 0; k < kinds.size(); ++k) {
        const pmx::RunResult& result =
            results[w * per_workload + d * kinds.size() + k];
        row.push_back(result.completed
                          ? pmx::Table::fmt(result.metrics.efficiency, 3)
                          : std::string("DNF"));
      }
      table.add_row(std::move(row));
    }
    std::cout << "\n== " << workloads[w].name << " ==\n";
    table.print(std::cout);
  }
  return 0;
}
