// Ablation A8: the programmable policy axis. Every rank-function policy the
// PolicyEngine supports -- the paper's timeout/counter predictors, the new
// capacity policies (LRU, LFU-with-decay, weighted hybrid), the
// deadline-aware lease, and the phase-predictive self-flusher -- on three
// workloads with different reuse structure: a random mesh (high locality),
// a scatter (no reuse), and a hotspot-skewed mix (one hot destination).
//
// Usage: bench_ablation_policy [--nodes N] [--bytes B]
//        [--policies a,b:1,c] [--csv] [--jobs J]
// --policies is a CSV of PolicySpec tokens (NAME[:PARAM]); the defaults
// cover every known policy. Tables are byte-identical for any --jobs.

#include <iostream>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"
#include "core/sweep.hpp"
#include "traffic/patterns.hpp"

int main(int argc, char** argv) {
  const pmx::Config cfg = pmx::Config::from_cli(argc, argv);
  const std::size_t nodes = cfg.get_uint("nodes", 64);
  const std::uint64_t bytes = cfg.get_uint("bytes", 256);
  const bool csv = cfg.get_bool("csv", false);
  const std::vector<std::string> tokens = cfg.get_csv(
      "policies",
      {"none", "timeout:200", "counter:64", "lru:12", "lfu-decay:12",
       "deadline:1000", "phase:200", "hybrid:12", "never-evict"});
  const pmx::SweepOptions sweep{cfg.get_uint("jobs", 1)};
  cfg.fail_unread("bench_ablation_policy");

  std::vector<pmx::PolicySpec> policies;
  for (const std::string& token : tokens) {
    policies.push_back(pmx::PolicySpec::parse(token));
  }

  struct NamedWorkload {
    std::string name;
    pmx::Workload workload;
  };
  const std::vector<NamedWorkload> workloads{
      {"random-mesh", pmx::patterns::random_mesh(nodes, bytes, 2, 7)},
      {"scatter", pmx::patterns::scatter(nodes, bytes)},
      {"hotspot-skewed",
       pmx::patterns::hotspot(nodes, bytes, 8, 0, 0.35, 11)},
  };

  const std::size_t per_policy = workloads.size();
  const std::vector<pmx::RunResult> results = pmx::run_sweep(
      policies.size() * per_policy,
      [&](std::size_t i) {
        pmx::RunConfig config;
        config.params.num_nodes = nodes;
        config.kind = pmx::SwitchKind::kDynamicTdm;
        config.policy = policies[i / per_policy];
        config.multi_slot_connections = true;
        return pmx::run_workload(config,
                                 workloads[i % per_policy].workload);
      },
      sweep);

  std::cout << "Ablation A8: rank-function policy engine (" << nodes
            << " nodes, " << bytes
            << "-byte messages, dynamic TDM K=4)\n\n";

  const auto print_metric = [&](const std::string& title, auto cell) {
    std::vector<std::string> headers{"policy"};
    for (const auto& [name, workload] : workloads) {
      headers.push_back(name);
    }
    pmx::Table table(std::move(headers));
    for (std::size_t p = 0; p < policies.size(); ++p) {
      std::vector<std::string> row{policies[p].label()};
      for (std::size_t w = 0; w < workloads.size(); ++w) {
        row.push_back(cell(results[p * per_policy + w]));
      }
      table.add_row(std::move(row));
    }
    std::cout << "== " << title << " ==\n";
    if (csv) {
      table.print_csv(std::cout);
    } else {
      table.print(std::cout);
    }
    std::cout << "\n";
  };

  print_metric("efficiency", [](const pmx::RunResult& r) {
    return r.completed ? pmx::Table::fmt(r.metrics.efficiency, 3)
                       : std::string("DNF");
  });
  print_metric("evictions", [](const pmx::RunResult& r) {
    return pmx::Table::fmt(r.counter("evictions"));
  });
  return 0;
}
