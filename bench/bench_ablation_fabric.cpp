// Ablation A4: crossbar vs Omega multistage fabric.
//
// Section 4 notes the fabric can be a multistage network at the price of
// "limited permutation capabilities". This harness quantifies that price:
// the multiplexing degree each fabric needs to realize a working set
// without conflict, and the end-to-end preloaded-TDM efficiency when the
// compiled plan respects the Omega constraints (same slot count K).
//
// Usage: bench_ablation_fabric [--nodes N] [--bytes B]

#include <iostream>
#include <vector>

#include "common/config.hpp"
#include "common/table.hpp"
#include "compiled/plan.hpp"
#include "core/driver.hpp"
#include "core/metrics.hpp"
#include "fabric/fattree.hpp"
#include "fabric/omega.hpp"
#include "sim/simulator.hpp"
#include "switching/preload_tdm.hpp"
#include "traffic/patterns.hpp"

namespace {

double run_preload(const pmx::Workload& w, pmx::CompiledPlan plan,
                   std::size_t nodes) {
  pmx::SystemParams params;
  params.num_nodes = nodes;
  pmx::Simulator sim;
  pmx::PreloadTdmNetwork net(sim, params, std::move(plan));
  pmx::TrafficDriver driver(sim, net, w);
  driver.start();
  sim.run_until(pmx::TimeNs{50'000'000});
  if (!driver.finished()) {
    return -1.0;
  }
  return pmx::compute_metrics(w, net).efficiency;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t nodes = 64;
  std::uint64_t bytes = 256;
  const pmx::Config cfg = pmx::Config::from_cli(argc, argv);
  nodes = cfg.get_uint("nodes", nodes);
  bytes = cfg.get_uint("bytes", bytes);
  cfg.fail_unread("bench_ablation_fabric");
  const pmx::OmegaNetwork omega(nodes);
  // Fat tree: 8 leaves, 2:1 oversubscription.
  const std::size_t leaves = 8;
  const pmx::FatTree tree(leaves, nodes / leaves, nodes / leaves / 2);

  struct NamedWorkload {
    std::string name;
    pmx::Workload workload;
  };
  const std::vector<NamedWorkload> workloads{
      {"ordered-mesh", pmx::patterns::ordered_mesh(nodes, bytes, 2)},
      {"random-mesh", pmx::patterns::random_mesh(nodes, bytes, 2, 7)},
      {"uniform", pmx::patterns::uniform_random(nodes, bytes, 6, 7)},
      {"all-to-all", pmx::patterns::all_to_all(nodes, bytes)},
  };

  std::cout << "Ablation A4: crossbar vs Omega multistage fabric (" << nodes
            << " nodes, " << omega.stages() << " stages, " << bytes
            << "-byte messages, preload TDM K=4)\n\n";
  pmx::Table table({"workload", "xbar deg", "omega deg", "fattree deg",
                    "xbar eff", "omega eff", "fattree eff"});
  for (const auto& [name, w] : workloads) {
    pmx::CompiledPlan xbar_plan = pmx::compile_workload(w);
    pmx::CompiledPlan omega_plan = pmx::compile_workload_omega(w, omega);
    pmx::CompiledPlan tree_plan = pmx::compile_workload_fattree(w, tree);
    const std::size_t xbar_deg = xbar_plan.max_degree();
    const std::size_t omega_deg = omega_plan.max_degree();
    const std::size_t tree_deg = tree_plan.max_degree();
    const double xbar_eff = run_preload(w, std::move(xbar_plan), nodes);
    const double omega_eff = run_preload(w, std::move(omega_plan), nodes);
    const double tree_eff = run_preload(w, std::move(tree_plan), nodes);
    const auto cell = [](double e) {
      return e < 0 ? std::string("DNF") : pmx::Table::fmt(e, 3);
    };
    table.add_row({name,
                   pmx::Table::fmt(static_cast<std::uint64_t>(xbar_deg)),
                   pmx::Table::fmt(static_cast<std::uint64_t>(omega_deg)),
                   pmx::Table::fmt(static_cast<std::uint64_t>(tree_deg)),
                   cell(xbar_eff), cell(omega_eff), cell(tree_eff)});
  }
  table.print(std::cout);
  std::cout << "\ndegree = configurations needed to realize the working set "
               "without conflict\n(Omega pays for blocking stages; the "
               "2:1-oversubscribed fat tree pays on inter-leaf traffic)\n";
  return 0;
}
