// Ablation A4: crossbar vs Omega multistage fabric.
//
// Section 4 notes the fabric can be a multistage network at the price of
// "limited permutation capabilities". This harness quantifies that price:
// the multiplexing degree each fabric needs to realize a working set
// without conflict, and the end-to-end preloaded-TDM efficiency when the
// compiled plan respects the Omega constraints (same slot count K).
//
// Usage: bench_ablation_fabric [--nodes N] [--bytes B] [--jobs J]

#include <iostream>
#include <vector>

#include "common/config.hpp"
#include "common/table.hpp"
#include "compiled/plan.hpp"
#include "core/driver.hpp"
#include "core/metrics.hpp"
#include "core/sweep.hpp"
#include "fabric/fattree.hpp"
#include "fabric/omega.hpp"
#include "sim/simulator.hpp"
#include "switching/preload_tdm.hpp"
#include "traffic/patterns.hpp"

namespace {

double run_preload(const pmx::Workload& w, pmx::CompiledPlan plan,
                   std::size_t nodes) {
  pmx::SystemParams params;
  params.num_nodes = nodes;
  pmx::Simulator sim;
  pmx::PreloadTdmNetwork net(sim, params, std::move(plan));
  pmx::TrafficDriver driver(sim, net, w);
  driver.start();
  sim.run_until(pmx::TimeNs{50'000'000});
  if (!driver.finished()) {
    return -1.0;
  }
  return pmx::compute_metrics(w, net).efficiency;
}

/// One (workload, fabric) point: plan degree + end-to-end efficiency.
struct FabricPoint {
  std::size_t degree = 0;
  double efficiency = -1.0;
};

}  // namespace

int main(int argc, char** argv) {
  std::size_t nodes = 64;
  std::uint64_t bytes = 256;
  const pmx::Config cfg = pmx::Config::from_cli(argc, argv);
  nodes = cfg.get_uint("nodes", nodes);
  bytes = cfg.get_uint("bytes", bytes);
  const pmx::SweepOptions sweep{cfg.get_uint("jobs", 1)};
  cfg.fail_unread("bench_ablation_fabric");
  const pmx::OmegaNetwork omega(nodes);
  // Fat tree: 8 leaves, 2:1 oversubscription.
  const std::size_t leaves = 8;
  const pmx::FatTree tree(leaves, nodes / leaves, nodes / leaves / 2);

  struct NamedWorkload {
    std::string name;
    pmx::Workload workload;
  };
  const std::vector<NamedWorkload> workloads{
      {"ordered-mesh", pmx::patterns::ordered_mesh(nodes, bytes, 2)},
      {"random-mesh", pmx::patterns::random_mesh(nodes, bytes, 2, 7)},
      {"uniform", pmx::patterns::uniform_random(nodes, bytes, 6, 7)},
      {"all-to-all", pmx::patterns::all_to_all(nodes, bytes)},
  };

  // Flatten (workload, fabric) — plan compilation dominates some points, so
  // each point compiles its own plan inside the sweep body.
  constexpr std::size_t kFabrics = 3;  // xbar, omega, fattree
  const std::vector<FabricPoint> points = pmx::sweep_map<FabricPoint>(
      workloads.size() * kFabrics,
      [&](std::size_t i) {
        const pmx::Workload& w = workloads[i / kFabrics].workload;
        pmx::CompiledPlan plan = [&] {
          switch (i % kFabrics) {
            case 0:
              return pmx::compile_workload(w);
            case 1:
              return pmx::compile_workload_omega(w, omega);
            default:
              return pmx::compile_workload_fattree(w, tree);
          }
        }();
        FabricPoint point;
        point.degree = plan.max_degree();
        point.efficiency = run_preload(w, std::move(plan), nodes);
        return point;
      },
      sweep);

  std::cout << "Ablation A4: crossbar vs Omega multistage fabric (" << nodes
            << " nodes, " << omega.stages() << " stages, " << bytes
            << "-byte messages, preload TDM K=4)\n\n";
  pmx::Table table({"workload", "xbar deg", "omega deg", "fattree deg",
                    "xbar eff", "omega eff", "fattree eff"});
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    const FabricPoint& xbar = points[w * kFabrics + 0];
    const FabricPoint& om = points[w * kFabrics + 1];
    const FabricPoint& ft = points[w * kFabrics + 2];
    const auto cell = [](double e) {
      return e < 0 ? std::string("DNF") : pmx::Table::fmt(e, 3);
    };
    table.add_row(
        {workloads[w].name,
         pmx::Table::fmt(static_cast<std::uint64_t>(xbar.degree)),
         pmx::Table::fmt(static_cast<std::uint64_t>(om.degree)),
         pmx::Table::fmt(static_cast<std::uint64_t>(ft.degree)),
         cell(xbar.efficiency), cell(om.efficiency), cell(ft.efficiency)});
  }
  table.print(std::cout);
  std::cout << "\ndegree = configurations needed to realize the working set "
               "without conflict\n(Omega pays for blocking stages; the "
               "2:1-oversubscribed fat tree pays on inter-leaf traffic)\n";
  return 0;
}
