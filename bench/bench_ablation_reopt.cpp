// Ablation A10: online slot-table re-optimization campaign. Three
// campaigns:
//
//   mux rotation  -- each source interleaves eager sends to m=3 partner
//                   destinations (three overlapping permutations: exactly
//                   the multiplexed demand K=4 configuration registers
//                   exist for), and the partner set rotates every epoch.
//                   Compares the reactive baseline, a static plan compiled
//                   from the first epoch's demand and pinned for the whole
//                   run, and the online service loop. On a fixed partner
//                   set the static plan is competitive; under rotation it
//                   goes stale -- its pinned registers cover nothing and
//                   all live traffic squeezes through the one reactive
//                   slot -- and the online loop must beat it on goodput.
//   skewed churn  -- open-loop arrivals with 85% of traffic on a two-node
//                   hot set that rotates (traffic/arrival churn knob).
//                   Ejection ports, not tables, bound this workload; the
//                   rows check the service loop does not regress it and
//                   that the demand-ranked preload fill rides along.
//   chaos         -- closed-loop random mesh with the reconfig command on
//                   the lossy control channel (lost commands are skipped
//                   reconfigurations), plus a poison-proposal row where
//                   every other proposal pins a demandless full
//                   permutation into all K slots: the probation guard must
//                   detect the goodput collapse and roll back, and every
//                   message must still be delivered.
//
// Every run arms the zero-rate fault layer and the slot auditor, so the
// conservation ledger (injected == delivered + dropped + in-flight) is
// checked at the end of each row. Everything is seeded: running this
// binary twice prints identical tables, at any --jobs value.
//
// Usage: bench_ablation_reopt [--nodes N] [--epochs E] [--epoch-ns NS]
//                             [--period SLOTS] [--seed S] [--jobs J]

#include <cstdint>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/bitmatrix.hpp"
#include "common/config.hpp"
#include "common/table.hpp"
#include "control/slot_optimizer.hpp"
#include "core/experiment.hpp"
#include "core/sweep.hpp"
#include "traffic/arrival.hpp"
#include "traffic/patterns.hpp"

namespace {

struct Scenario {
  std::string label;
  pmx::SwitchKind kind = pmx::SwitchKind::kDynamicTdm;
  pmx::ReoptParams reopt;               ///< disabled unless period_slots set
  std::vector<pmx::BitMatrix> pinned;   ///< static-plan rows
  pmx::ControlFaultParams ctrl;         ///< chaos rows
};

/// Rotating multiplexed-permutation workload: every epoch, node u holds m
/// concurrent partner destinations u + base + 1 .. u + base + m (mod n,
/// self excluded), i.e. m overlapping full permutations, and interleaves
/// `rounds` eager sends to each of them paced across the epoch. With
/// `rotate` the base advances by m every epoch, so which permutations are
/// live churns while the offered load stays constant. Fully deterministic:
/// no randomness at all.
pmx::Workload rotating_mux(std::size_t n, std::size_t m, std::uint64_t bytes,
                           std::size_t rounds, std::size_t epochs,
                           pmx::TimeNs epoch_len, bool rotate,
                           pmx::TimeNs nic_cycle) {
  pmx::Workload workload;
  workload.programs.resize(n);
  const std::int64_t issue =
      nic_cycle.ns() * static_cast<std::int64_t>(m);
  const std::int64_t gap =
      epoch_len.ns() / static_cast<std::int64_t>(rounds) - issue;
  PMX_CHECK(gap > 0, "epoch too short for the per-round send issue time");
  for (pmx::NodeId u = 0; u < n; ++u) {
    pmx::Program& prog = workload.programs[u];
    prog.reserve(epochs * rounds * (m + 1));
    for (std::size_t e = 0; e < epochs; ++e) {
      const std::size_t base = rotate ? e * m : 0;
      for (std::size_t r = 0; r < rounds; ++r) {
        for (std::size_t j = 1; j <= m; ++j) {
          // Offsets stay in [1, n-1], so a partner is never the source.
          const std::size_t offset = 1 + (base + j - 1) % (n - 1);
          prog.push_back(pmx::Command::send(
              static_cast<pmx::NodeId>((u + offset) % n), bytes));
        }
        prog.push_back(pmx::Command::compute(pmx::TimeNs{gap}));
      }
    }
  }
  return workload;
}

/// Aggregate (src, dst) send bytes whose issue instant falls inside the
/// first `window` ns of the programs -- the demand profile a static
/// compile-time plan would be built from.
std::vector<pmx::DemandEstimator::Demand> first_window_demand(
    const pmx::Workload& workload, pmx::TimeNs window) {
  const std::size_t n = workload.num_nodes();
  std::vector<std::uint64_t> bytes(n * n, 0);
  for (pmx::NodeId u = 0; u < n; ++u) {
    pmx::TimeNs t = pmx::TimeNs::zero();
    for (const pmx::Command& cmd : workload.programs[u]) {
      if (cmd.kind == pmx::Command::Kind::kCompute) {
        t = t + cmd.delay;
      } else if (cmd.kind == pmx::Command::Kind::kSend && t < window) {
        bytes[u * n + cmd.dst] += cmd.bytes;
      }
    }
  }
  std::vector<pmx::DemandEstimator::Demand> demand;
  for (pmx::NodeId u = 0; u < n; ++u) {
    for (pmx::NodeId v = 0; v < n; ++v) {
      if (bytes[u * n + v] > 0) {
        demand.push_back({u, v, bytes[u * n + v]});
      }
    }
  }
  return demand;
}

/// One-shot static plan over K-1 registers (the last register stays with
/// the reactive scheduler, mirroring the online service's reserve).
std::vector<pmx::BitMatrix> static_plan(
    const std::vector<pmx::DemandEstimator::Demand>& demand, std::size_t n,
    std::size_t mux_degree) {
  pmx::SlotOptimizer::Options opt;
  opt.num_nodes = n;
  opt.num_slots = mux_degree - 1;
  opt.work_budget = 256;
  const pmx::SlotOptimizer optimizer(opt);
  std::vector<pmx::BitMatrix> tables = optimizer.solve(demand, {}).tables;
  while (!tables.empty() && tables.back().none()) {
    tables.pop_back();
  }
  return tables;
}

pmx::RunResult run(const Scenario& scenario, std::size_t nodes,
                   const pmx::Workload& workload) {
  pmx::RunConfig config;
  config.params.num_nodes = nodes;
  config.params.reopt = scenario.reopt;
  config.params.ctrl = scenario.ctrl;
  // Zero-rate fault layer + auditor: the conservation ledger is checked in
  // recovery mode at the end of every run (timing-neutral, A6 "clean").
  config.params.fault.force_enable = true;
  config.params.audit.enabled = true;
  config.params.audit.strict = false;
  config.kind = scenario.kind;
  config.pinned_configs = scenario.pinned;
  config.starvation_slots = 8;  // skewed demand must not starve cold sources
  config.horizon = pmx::TimeNs{1'000'000'000};
  return pmx::run_workload(config, workload);
}

std::string delivery_cell(const pmx::RunResult& r, std::size_t messages) {
  if (!r.completed) {
    return "DNF";
  }
  return pmx::Table::fmt(static_cast<std::uint64_t>(r.metrics.messages)) +
         "/" + pmx::Table::fmt(static_cast<std::uint64_t>(messages));
}

void print_tracking_table(const std::string& title,
                          const std::vector<Scenario>& rows,
                          const std::vector<pmx::RunResult>& results,
                          std::size_t offset, std::size_t messages) {
  pmx::Table table({"scenario", "delivered", "goodput B/ns", "solves",
                    "applies", "rollbacks", "apply p50 ns", "ranked",
                    "violations"});
  for (std::size_t s = 0; s < rows.size(); ++s) {
    const pmx::RunResult& r = results[offset + s];
    table.add_row({rows[s].label, delivery_cell(r, messages),
                   pmx::Table::fmt(r.metrics.goodput, 4),
                   pmx::Table::fmt(r.metrics.reopt_solves),
                   pmx::Table::fmt(r.metrics.reopt_applies),
                   pmx::Table::fmt(r.metrics.reopt_rollbacks),
                   pmx::Table::fmt(r.metrics.reopt_apply_latency_p50_ns, 0),
                   pmx::Table::fmt(r.counter("reopt_ranked_loads")),
                   pmx::Table::fmt(r.metrics.audit_violations)});
  }
  std::cout << "\n== " << title << " ==\n";
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const pmx::Config cfg = pmx::Config::from_cli(argc, argv);
  const std::size_t nodes = cfg.get_uint("nodes", 32);
  const std::size_t epochs = cfg.get_uint("epochs", 6);
  const std::int64_t epoch_ns =
      static_cast<std::int64_t>(cfg.get_uint("epoch-ns", 10'000));
  const std::size_t period = cfg.get_uint("period", 16);
  const std::uint64_t seed = cfg.get_uint("seed", 0xA1'0BEEFull);
  const pmx::SweepOptions sweep{cfg.get_uint("jobs", 1)};
  cfg.fail_unread("bench_ablation_reopt");

  pmx::SystemParams defaults;
  const double rate =
      static_cast<double>(defaults.link.bandwidth_dgbps) / 80.0;
  const pmx::TimeNs reopt_window =
      defaults.slot_length * static_cast<std::int64_t>(period);

  pmx::ReoptParams reopt;
  reopt.period_slots = period;
  reopt.ewma_shift = 1;  // demand churns every epoch: favor fresh windows

  std::vector<pmx::Workload> workloads;
  std::vector<std::vector<Scenario>> campaigns;

  // --- Campaign 1: multiplexed demand, fixed vs rotating partner sets ------
  // m=3 overlapping permutations fill the K-1=3 plannable registers
  // exactly. The static plan is always compiled from the first epoch.
  const std::size_t kPartners = 3;
  for (const bool rotate : {false, true}) {
    const pmx::Workload workload =
        rotating_mux(nodes, kPartners, 256, 6, epochs,
                     pmx::TimeNs{epoch_ns}, rotate, defaults.nic_cycle);
    const std::vector<pmx::BitMatrix> plan =
        static_plan(first_window_demand(workload, reopt_window), nodes,
                    defaults.mux_degree);
    std::vector<Scenario> rows;
    rows.push_back({"reactive", pmx::SwitchKind::kDynamicTdm, {}, {}, {}});
    rows.push_back(
        {"static-plan", pmx::SwitchKind::kDynamicTdm, {}, plan, {}});
    rows.push_back(
        {"online-reopt", pmx::SwitchKind::kDynamicTdm, reopt, {}, {}});
    rows.push_back({"preload", pmx::SwitchKind::kPreloadTdm, {}, {}, {}});
    rows.push_back(
        {"preload+rank", pmx::SwitchKind::kPreloadTdm, reopt, {}, {}});
    workloads.push_back(workload);
    campaigns.push_back(std::move(rows));
  }

  // --- Campaign 2: skewed open-loop arrivals with hot-set churn ------------
  // 85% of traffic on a rotating two-node hot set: ejection-port bound, so
  // the rows check robustness (no regression, bounded applies), not a win.
  const std::vector<std::int64_t> churns{0, 10'000};
  for (const std::int64_t churn : churns) {
    pmx::ArrivalParams arrival;
    arrival.offered_load = 0.35;
    arrival.dest_skew = 0.85;
    arrival.hot_rotate_period = pmx::TimeNs{churn};
    arrival.duration = pmx::TimeNs{static_cast<std::int64_t>(epochs) *
                                   epoch_ns};
    arrival.seed = seed;
    const pmx::Workload workload = pmx::open_loop(nodes, arrival, rate);
    const std::vector<pmx::BitMatrix> plan =
        static_plan(first_window_demand(workload, reopt_window), nodes,
                    defaults.mux_degree);
    std::vector<Scenario> rows;
    rows.push_back({"reactive", pmx::SwitchKind::kDynamicTdm, {}, {}, {}});
    rows.push_back(
        {"static-plan", pmx::SwitchKind::kDynamicTdm, {}, plan, {}});
    rows.push_back(
        {"online-reopt", pmx::SwitchKind::kDynamicTdm, reopt, {}, {}});
    rows.push_back({"preload", pmx::SwitchKind::kPreloadTdm, {}, {}, {}});
    rows.push_back(
        {"preload+rank", pmx::SwitchKind::kPreloadTdm, reopt, {}, {}});
    workloads.push_back(workload);
    campaigns.push_back(std::move(rows));
  }

  // --- Campaign 3: chaos (lossy reconfig channel, poison proposals) --------
  const pmx::Workload mesh = pmx::patterns::random_mesh(64, 512, 2, 7);
  {
    std::vector<Scenario> rows;
    pmx::ControlFaultParams loss25;
    loss25.seed = static_cast<std::uint32_t>(seed);
    loss25.loss = 0.25;
    pmx::ControlFaultParams clean;
    clean.seed = static_cast<std::uint32_t>(seed);
    clean.force_enable = true;  // loss 0.0: machinery overhead only
    pmx::ReoptParams chaos = reopt;
    chaos.chaos_empty_every = 2;  // every other proposal is poison
    rows.push_back(
        {"reopt clean", pmx::SwitchKind::kDynamicTdm, reopt, {}, clean});
    rows.push_back(
        {"reopt loss25", pmx::SwitchKind::kDynamicTdm, reopt, {}, loss25});
    rows.push_back(
        {"reopt poison", pmx::SwitchKind::kDynamicTdm, chaos, {}, clean});
    workloads.push_back(mesh);
    campaigns.push_back(std::move(rows));
  }

  std::vector<std::size_t> offsets;
  std::size_t total = 0;
  for (const auto& rows : campaigns) {
    offsets.push_back(total);
    total += rows.size();
  }
  const std::vector<pmx::RunResult> results = pmx::sweep_map<pmx::RunResult>(
      total,
      [&](std::size_t i) {
        std::size_t c = campaigns.size() - 1;
        while (offsets[c] > i) {
          --c;
        }
        return run(campaigns[c][i - offsets[c]], workloads[c].num_nodes(),
                   workloads[c]);
      },
      sweep);

  std::cout << "Ablation A10: online slot-table re-optimization (" << nodes
            << " nodes, " << epochs << " epochs of " << epoch_ns
            << " ns, period " << period << " slots, seed " << seed << ")\n";

  print_tracking_table("mux demand, fixed partner set", campaigns[0],
                       results, offsets[0], workloads[0].num_messages());
  print_tracking_table("mux demand, partners rotate every epoch",
                       campaigns[1], results, offsets[1],
                       workloads[1].num_messages());
  for (std::size_t c = 0; c < churns.size(); ++c) {
    print_tracking_table(
        "skewed arrivals, hot-set churn " + std::to_string(churns[c]) + " ns",
        campaigns[2 + c], results, offsets[2 + c],
        workloads[2 + c].num_messages());
  }

  {
    const std::size_t c = campaigns.size() - 1;
    pmx::Table table({"scenario", "delivered", "goodput B/ns", "solves",
                      "proposals", "applies", "rollbacks", "cmds lost",
                      "invalidated", "resyncs", "violations"});
    for (std::size_t s = 0; s < campaigns[c].size(); ++s) {
      const pmx::RunResult& r = results[offsets[c] + s];
      table.add_row({campaigns[c][s].label,
                     delivery_cell(r, mesh.num_messages()),
                     pmx::Table::fmt(r.metrics.goodput, 4),
                     pmx::Table::fmt(r.metrics.reopt_solves),
                     pmx::Table::fmt(r.metrics.reopt_proposals),
                     pmx::Table::fmt(r.metrics.reopt_applies),
                     pmx::Table::fmt(r.metrics.reopt_rollbacks),
                     pmx::Table::fmt(r.metrics.reopt_cmds_lost),
                     pmx::Table::fmt(r.metrics.reopt_invalidated_ctrl),
                     pmx::Table::fmt(r.metrics.resyncs),
                     pmx::Table::fmt(r.metrics.audit_violations)});
    }
    std::cout << "\n== chaos: lossy reconfig channel, poison proposals ("
              << mesh.num_messages() << " messages) ==\n";
    table.print(std::cout);
  }
  return 0;
}
