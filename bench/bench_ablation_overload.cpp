// Ablation A9: overload robustness campaign. Open-loop arrival traffic
// (no barriers, no drain feedback) offers 0.5x to 2.0x of per-port line
// rate to all four paradigms with bounded VOQs and admission control
// armed. Two campaigns:
//
//   load sweep   -- offered load x {uniform, skewed, bursty} arrivals under
//                   a fixed shed policy: accepted load tracks offered load
//                   up to saturation then plateaus; queue depth stays
//                   bounded by the capacity; every run completes with
//                   injected == delivered + shed (auditor-checked).
//   policy sweep -- 2.0x skewed overload across every shed policy
//                   (tail-drop, drop-newest, drop-oldest, deadline,
//                   backpressure): who sheds what, and what backpressure
//                   costs in processor stall time instead.
//
// Everything is seeded: running this binary twice prints identical tables,
// at any --jobs value.
//
// Usage: bench_ablation_overload [--nodes N] [--bytes B] [--duration NS]
//                                [--capacity BYTES] [--seed S] [--jobs J]

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"
#include "core/sweep.hpp"
#include "nic/admission.hpp"
#include "traffic/arrival.hpp"

namespace {

constexpr pmx::SwitchKind kKinds[] = {
    pmx::SwitchKind::kWormhole,
    pmx::SwitchKind::kCircuit,
    pmx::SwitchKind::kDynamicTdm,
    pmx::SwitchKind::kPreloadTdm,
};
constexpr std::size_t kNumKinds = std::size(kKinds);

struct Scenario {
  std::string label;
  pmx::ArrivalParams arrival;
  pmx::ShedPolicy policy = pmx::ShedPolicy::kDropOldest;
};

struct ScenarioResult {
  bool completed = false;
  pmx::RunMetrics metrics;
};

ScenarioResult run(pmx::SwitchKind kind, const Scenario& scenario,
                   std::uint64_t capacity, std::size_t nodes,
                   const pmx::Workload& workload) {
  pmx::RunConfig config;
  config.params.num_nodes = nodes;
  config.params.admission.capacity_bytes = capacity;
  config.params.admission.policy = scenario.policy;
  // Conservation is audited over the full ledger: injected == delivered +
  // dropped + shed + in-flight. The zero-rate fault layer arms the ledger
  // without perturbing timing (ablation A6 "clean").
  config.params.fault.force_enable = true;
  config.params.audit.enabled = true;
  config.params.audit.strict = false;
  config.kind = kind;
  // Dynamic TDM arms the starvation watchdog: under skewed overload a cold
  // source must not be crowded out of the schedule forever.
  config.starvation_slots = 8;
  config.horizon = pmx::TimeNs{1'000'000'000};  // drain deadline
  const pmx::RunResult result = pmx::run_workload(config, workload);
  return {result.completed, result.metrics};
}

void print_table(const std::string& title,
                 const std::vector<ScenarioResult>& results,
                 std::size_t scenario_idx) {
  pmx::Table table({"paradigm", "done", "offered", "accepted", "shed msgs",
                    "bp stall ns", "depth p99", "depth max", "recover ns",
                    "tput B/ns"});
  for (std::size_t k = 0; k < kNumKinds; ++k) {
    const ScenarioResult& r = results[scenario_idx * kNumKinds + k];
    const pmx::RunMetrics& m = r.metrics;
    table.add_row({pmx::to_string(kKinds[k]), r.completed ? "yes" : "DNF",
                   pmx::Table::fmt(m.offered_load, 3),
                   pmx::Table::fmt(m.accepted_load, 3),
                   pmx::Table::fmt(static_cast<std::uint64_t>(m.shed_messages)),
                   pmx::Table::fmt(m.backpressure_stall_ns),
                   pmx::Table::fmt(m.queue_depth_p99, 0),
                   pmx::Table::fmt(m.queue_depth_max),
                   pmx::Table::fmt(m.recovery_after_burst_ns, 0),
                   pmx::Table::fmt(m.throughput, 4)});
  }
  std::cout << "\n== " << title << " ==\n";
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const pmx::Config cfg = pmx::Config::from_cli(argc, argv);
  const std::size_t nodes = cfg.get_uint("nodes", 16);
  const std::uint64_t bytes = cfg.get_uint("bytes", 512);
  const std::int64_t duration =
      static_cast<std::int64_t>(cfg.get_uint("duration", 50'000));
  const std::uint64_t capacity = cfg.get_uint("capacity", 4096);
  const std::uint64_t seed = cfg.get_uint("seed", 0x0E71'0ADEull);
  const pmx::SweepOptions sweep{cfg.get_uint("jobs", 1)};
  cfg.fail_unread("bench_ablation_overload");

  pmx::SystemParams defaults;
  const double rate =
      static_cast<double>(defaults.link.bandwidth_dgbps) / 80.0;

  // Campaign 1: offered-load sweep x traffic shape, fixed drop-oldest.
  const std::vector<double> loads{0.5, 1.0, 1.5, 2.0};
  std::vector<Scenario> scenarios;
  for (const double load : loads) {
    for (const char* shape : {"uniform", "skewed", "bursty"}) {
      Scenario s;
      s.label = shape + std::string(" x") + pmx::Table::fmt(load, 1);
      s.arrival.offered_load = load;
      s.arrival.mean_msg_bytes = bytes;
      s.arrival.duration = pmx::TimeNs{duration};
      s.arrival.seed = seed;
      if (shape == std::string("skewed")) {
        s.arrival.rate_skew = 0.8;
        s.arrival.dest_skew = 0.5;
      } else if (shape == std::string("bursty")) {
        s.arrival.process = pmx::ArrivalParams::Process::kOnOff;
      }
      scenarios.push_back(std::move(s));
    }
  }
  const std::size_t load_scenarios = scenarios.size();

  // Campaign 2: every shed policy at 2.0x skewed overload.
  for (const pmx::ShedPolicy policy :
       {pmx::ShedPolicy::kTailDrop, pmx::ShedPolicy::kDropNewest,
        pmx::ShedPolicy::kDropOldest, pmx::ShedPolicy::kDeadline,
        pmx::ShedPolicy::kBackpressure}) {
    Scenario s;
    s.label = "policy " + pmx::to_string(policy);
    s.arrival.offered_load = 2.0;
    s.arrival.rate_skew = 0.8;
    s.arrival.dest_skew = 0.5;
    s.arrival.mean_msg_bytes = bytes;
    s.arrival.duration = pmx::TimeNs{duration};
    s.arrival.seed = seed;
    s.policy = policy;
    scenarios.push_back(std::move(s));
  }

  // Workloads are a pure function of the arrival params: generate each once
  // so every paradigm sees byte-identical programs.
  std::vector<pmx::Workload> workloads;
  workloads.reserve(scenarios.size());
  for (const Scenario& s : scenarios) {
    workloads.push_back(pmx::open_loop(nodes, s.arrival, rate));
  }

  std::cout << "Ablation A9: overload robustness campaign (" << nodes
            << " nodes, " << bytes << "-byte messages, " << duration
            << " ns injection window, " << capacity
            << "-byte source queues, seed " << seed << ")\n";

  const std::vector<ScenarioResult> results = pmx::sweep_map<ScenarioResult>(
      scenarios.size() * kNumKinds,
      [&](std::size_t i) {
        return run(kKinds[i % kNumKinds], scenarios[i / kNumKinds], capacity,
                   nodes, workloads[i / kNumKinds]);
      },
      sweep);

  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    const char* campaign = s < load_scenarios ? "load sweep, " : "2.0x skewed, ";
    print_table(campaign + scenarios[s].label, results, s);
  }
  return 0;
}
