// Ablation A2: slot length and guard band. The guard band (fabric
// reconfiguration + grant-line skew, Section 4) is a fixed tax per slot:
// longer slots amortize it but coarsen the multiplexing granularity.
//
// Usage: bench_ablation_slot [--nodes N] [--bytes B]

#include <iostream>
#include <vector>

#include "common/config.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"
#include "traffic/patterns.hpp"

int main(int argc, char** argv) {
  std::size_t nodes = 64;
  std::uint64_t bytes = 512;
  const pmx::Config cfg = pmx::Config::from_cli(argc, argv);
  nodes = cfg.get_uint("nodes", nodes);
  bytes = cfg.get_uint("bytes", bytes);
  cfg.fail_unread("bench_ablation_slot");
  const pmx::Workload workload =
      pmx::patterns::random_mesh(nodes, bytes, 2, 7);

  std::cout << "Ablation A2: efficiency vs slot length and guard band ("
            << nodes << " nodes, random mesh, " << bytes
            << "-byte messages, dynamic TDM K=4)\n\n";
  pmx::Table table({"slot(ns)", "guard(ns)", "payload(B)", "efficiency"});
  for (const std::int64_t slot : {50, 100, 200, 400, 1000}) {
    for (const std::int64_t guard : {0L, slot / 10, slot / 5, slot * 2 / 5}) {
      pmx::RunConfig config;
      config.params.num_nodes = nodes;
      config.params.slot_length = pmx::TimeNs{slot};
      config.params.guard_band = pmx::TimeNs{guard};
      config.kind = pmx::SwitchKind::kDynamicTdm;
      config.multi_slot_connections = true;
      const auto result = pmx::run_workload(config, workload);
      table.add_row(
          {pmx::Table::fmt(slot), pmx::Table::fmt(guard),
           pmx::Table::fmt(config.params.slot_payload_bytes()),
           result.completed ? pmx::Table::fmt(result.metrics.efficiency, 3)
                            : std::string("DNF")});
    }
  }
  table.print(std::cout);

  // Second sweep: end-to-end flow control. How fast must the receiving
  // processor drain its input buffer before backpressure stops mattering?
  std::cout << "\nEnd-to-end flow control: receive buffer & drain rate "
               "(same workload)\n\n";
  pmx::Table flow({"buffer(B)", "drain(B/slot)", "efficiency",
                   "backpressure stalls"});
  for (const std::uint64_t buffer : {128ULL, 256ULL, 1024ULL}) {
    for (const std::uint64_t drain : {16ULL, 32ULL, 64ULL}) {
      pmx::RunConfig config;
      config.params.num_nodes = nodes;
      config.kind = pmx::SwitchKind::kDynamicTdm;
      config.multi_slot_connections = true;
      config.receiver_buffer_bytes = buffer;
      config.receiver_drain_per_slot = drain;
      const auto result = pmx::run_workload(config, workload);
      flow.add_row(
          {pmx::Table::fmt(buffer), pmx::Table::fmt(drain),
           result.completed ? pmx::Table::fmt(result.metrics.efficiency, 3)
                            : std::string("DNF"),
           pmx::Table::fmt(result.counter("backpressure_stalls"))});
    }
  }
  flow.print(std::cout);
  return 0;
}
