// Ablation A2: slot length and guard band. The guard band (fabric
// reconfiguration + grant-line skew, Section 4) is a fixed tax per slot:
// longer slots amortize it but coarsen the multiplexing granularity.
//
// Usage: bench_ablation_slot [--nodes N] [--bytes B] [--jobs J]

#include <iostream>
#include <utility>
#include <vector>

#include "common/config.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"
#include "core/sweep.hpp"
#include "traffic/patterns.hpp"

int main(int argc, char** argv) {
  std::size_t nodes = 64;
  std::uint64_t bytes = 512;
  const pmx::Config cfg = pmx::Config::from_cli(argc, argv);
  nodes = cfg.get_uint("nodes", nodes);
  bytes = cfg.get_uint("bytes", bytes);
  const pmx::SweepOptions sweep{cfg.get_uint("jobs", 1)};
  cfg.fail_unread("bench_ablation_slot");
  const pmx::Workload workload =
      pmx::patterns::random_mesh(nodes, bytes, 2, 7);

  std::cout << "Ablation A2: efficiency vs slot length and guard band ("
            << nodes << " nodes, random mesh, " << bytes
            << "-byte messages, dynamic TDM K=4)\n\n";
  std::vector<std::pair<std::int64_t, std::int64_t>> timings;
  for (const std::int64_t slot : {50, 100, 200, 400, 1000}) {
    for (const std::int64_t guard : {0L, slot / 10, slot / 5, slot * 2 / 5}) {
      timings.emplace_back(slot, guard);
    }
  }
  const auto timing_config = [&](std::size_t i) {
    pmx::RunConfig config;
    config.params.num_nodes = nodes;
    config.params.slot_length = pmx::TimeNs{timings[i].first};
    config.params.guard_band = pmx::TimeNs{timings[i].second};
    config.kind = pmx::SwitchKind::kDynamicTdm;
    config.multi_slot_connections = true;
    return config;
  };
  const std::vector<pmx::RunResult> timing_results = pmx::run_sweep(
      timings.size(),
      [&](std::size_t i) {
        return pmx::run_workload(timing_config(i), workload);
      },
      sweep);

  pmx::Table table({"slot(ns)", "guard(ns)", "payload(B)", "efficiency"});
  for (std::size_t i = 0; i < timings.size(); ++i) {
    const pmx::RunResult& result = timing_results[i];
    table.add_row(
        {pmx::Table::fmt(timings[i].first), pmx::Table::fmt(timings[i].second),
         pmx::Table::fmt(timing_config(i).params.slot_payload_bytes()),
         result.completed ? pmx::Table::fmt(result.metrics.efficiency, 3)
                          : std::string("DNF")});
  }
  table.print(std::cout);

  // Second sweep: end-to-end flow control. How fast must the receiving
  // processor drain its input buffer before backpressure stops mattering?
  std::cout << "\nEnd-to-end flow control: receive buffer & drain rate "
               "(same workload)\n\n";
  std::vector<std::pair<std::uint64_t, std::uint64_t>> flows;
  for (const std::uint64_t buffer : {128ULL, 256ULL, 1024ULL}) {
    for (const std::uint64_t drain : {16ULL, 32ULL, 64ULL}) {
      flows.emplace_back(buffer, drain);
    }
  }
  const std::vector<pmx::RunResult> flow_results = pmx::run_sweep(
      flows.size(),
      [&](std::size_t i) {
        pmx::RunConfig config;
        config.params.num_nodes = nodes;
        config.kind = pmx::SwitchKind::kDynamicTdm;
        config.multi_slot_connections = true;
        config.receiver_buffer_bytes = flows[i].first;
        config.receiver_drain_per_slot = flows[i].second;
        return pmx::run_workload(config, workload);
      },
      sweep);

  pmx::Table flow({"buffer(B)", "drain(B/slot)", "efficiency",
                   "backpressure stalls"});
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const pmx::RunResult& result = flow_results[i];
    flow.add_row(
        {pmx::Table::fmt(flows[i].first), pmx::Table::fmt(flows[i].second),
         result.completed ? pmx::Table::fmt(result.metrics.efficiency, 3)
                          : std::string("DNF"),
         pmx::Table::fmt(result.counter("backpressure_stalls"))});
  }
  flow.print(std::cout);
  return 0;
}
