// Ablation A7: control-plane chaos campaign. The data plane is perfect; the
// *control* plane (request/grant/release wires between NICs and scheduler)
// loses messages at increasing rates. Two campaigns over the same random
// nearest-neighbour workload, all four paradigms:
//
//   self-healing -- grant watchdog + scheduler lease on, slot auditor in
//                   recovery mode. Goodput degrades gracefully with the loss
//                   rate while every run still delivers everything; the
//                   rerequest/lease columns show who paid for it.
//   auditor rescue -- healing OFF at a fixed loss rate: lost messages wedge
//                   NICs and leak requests until the periodic slot audit
//                   catches the divergence and forces a full resync. The
//                   resync count and recovery latency measure the auditor as
//                   the only safety net.
//
// Everything is seeded: running this binary twice prints identical tables,
// at any --jobs value.
//
// Usage: bench_ablation_ctrl [--nodes N] [--bytes B] [--rounds R] [--seed S]
//                            [--loss P] [--period SLOTS] [--jobs J]

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"
#include "core/sweep.hpp"
#include "traffic/patterns.hpp"

namespace {

constexpr pmx::SwitchKind kKinds[] = {
    pmx::SwitchKind::kWormhole,
    pmx::SwitchKind::kCircuit,
    pmx::SwitchKind::kDynamicTdm,
    pmx::SwitchKind::kPreloadTdm,
};

struct ScenarioResult {
  bool completed = false;
  pmx::RunMetrics metrics;
};

ScenarioResult run(pmx::SwitchKind kind, const pmx::ControlFaultParams& ctrl,
                   std::size_t period_slots, std::size_t nodes,
                   const pmx::Workload& workload) {
  pmx::RunConfig config;
  config.params.num_nodes = nodes;
  config.params.ctrl = ctrl;
  // Arm the data-plane reliability layer with zero rates so the auditor's
  // conservation check covers the full injected = delivered + dropped +
  // in-flight ledger (timing-neutral, see ablation A6 "clean").
  config.params.fault.force_enable = true;
  config.params.audit.enabled = true;
  config.params.audit.period_slots = period_slots;
  config.params.audit.strict = false;  // recovery mode: resync, don't abort
  config.kind = kind;
  config.horizon = pmx::TimeNs{1'000'000'000};  // 1 s: survives heavy loss
  const pmx::RunResult result = pmx::run_workload(config, workload);
  return {result.completed, result.metrics};
}

std::string delivery_cell(const ScenarioResult& r, std::size_t messages) {
  if (!r.completed) {
    return "DNF";
  }
  return pmx::Table::fmt(static_cast<std::uint64_t>(r.metrics.messages)) +
         "/" + pmx::Table::fmt(static_cast<std::uint64_t>(messages));
}

}  // namespace

int main(int argc, char** argv) {
  const pmx::Config cfg = pmx::Config::from_cli(argc, argv);
  const std::size_t nodes = cfg.get_uint("nodes", 64);
  const std::uint64_t bytes = cfg.get_uint("bytes", 512);
  const std::size_t rounds = cfg.get_uint("rounds", 2);
  const std::uint32_t seed =
      static_cast<std::uint32_t>(cfg.get_uint("seed", 0xC7A15EEDu));
  const double rescue_loss = cfg.get_double("loss", 0.1);
  const std::size_t period = cfg.get_uint("period", 16);
  const pmx::SweepOptions sweep{cfg.get_uint("jobs", 1)};
  cfg.fail_unread("bench_ablation_ctrl");

  const pmx::Workload workload =
      pmx::patterns::random_mesh(nodes, bytes, rounds, 7);
  const std::size_t messages = workload.num_messages();

  std::cout << "Ablation A7: control-plane chaos campaign (" << nodes
            << " nodes, " << bytes << "-byte messages, " << messages
            << " messages, seed " << seed << ", audit every " << period
            << " slots)\n";

  // Campaign 1: loss sweep with self-healing on. Campaign 2: fixed loss with
  // healing off (auditor resync is the only recovery). Flattened to
  // (scenario, kind) for the sweep; scenarios stay in print order.
  const std::vector<double> losses{0.0, 0.02, 0.1, 0.25};
  std::vector<pmx::ControlFaultParams> scenarios;
  for (const double loss : losses) {
    pmx::ControlFaultParams ctrl;
    ctrl.seed = seed;
    ctrl.loss = loss;
    ctrl.force_enable = true;  // loss 0.0 measures the machinery overhead
    scenarios.push_back(ctrl);
  }
  {
    pmx::ControlFaultParams rescue;
    rescue.seed = seed;
    rescue.loss = rescue_loss;
    rescue.heal = false;  // no watchdog, no lease: only the auditor saves us
    scenarios.push_back(rescue);
  }

  constexpr std::size_t kNumKinds = std::size(kKinds);
  const std::vector<ScenarioResult> results = pmx::sweep_map<ScenarioResult>(
      scenarios.size() * kNumKinds,
      [&](std::size_t i) {
        return run(kKinds[i % kNumKinds], scenarios[i / kNumKinds], period,
                   nodes, workload);
      },
      sweep);
  const auto scenario_result = [&](std::size_t s,
                                   std::size_t k) -> const ScenarioResult& {
    return results[s * kNumKinds + k];
  };

  // --- Campaign 1: self-healing under increasing control loss --------------
  for (std::size_t s = 0; s < losses.size(); ++s) {
    pmx::Table table({"paradigm", "delivered", "goodput B/ns", "ctrl msgs",
                      "ctrl lost", "rerequests", "lease exp", "resyncs"});
    for (std::size_t k = 0; k < kNumKinds; ++k) {
      const ScenarioResult& r = scenario_result(s, k);
      table.add_row({pmx::to_string(kKinds[k]), delivery_cell(r, messages),
                     pmx::Table::fmt(r.metrics.goodput, 4),
                     pmx::Table::fmt(r.metrics.ctrl_messages),
                     pmx::Table::fmt(r.metrics.ctrl_dropped),
                     pmx::Table::fmt(r.metrics.ctrl_rerequests),
                     pmx::Table::fmt(r.metrics.lease_expiries),
                     pmx::Table::fmt(r.metrics.resyncs)});
    }
    std::cout << "\n== self-healing, control loss " << losses[s] << " ==\n";
    table.print(std::cout);
  }

  // --- Campaign 2: healing off, auditor resync as the only recovery --------
  {
    pmx::Table table({"paradigm", "delivered", "audits", "violations",
                      "resyncs", "recover mean ns", "recover max ns"});
    for (std::size_t k = 0; k < kNumKinds; ++k) {
      const ScenarioResult& r = scenario_result(losses.size(), k);
      table.add_row({pmx::to_string(kKinds[k]), delivery_cell(r, messages),
                     pmx::Table::fmt(r.metrics.audits),
                     pmx::Table::fmt(r.metrics.audit_violations),
                     pmx::Table::fmt(r.metrics.resyncs),
                     pmx::Table::fmt(r.metrics.resync_latency_mean_ns, 0),
                     pmx::Table::fmt(r.metrics.resync_latency_max_ns, 0)});
    }
    std::cout << "\n== auditor rescue (healing off, control loss "
              << rescue_loss << ") ==\n";
    table.print(std::cout);
  }
  return 0;
}
