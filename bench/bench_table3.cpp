// Table 3 reproduction: latency of the scheduling circuit vs system size.
//
// The paper synthesized the SL-array scheduler onto an Altera Stratix FPGA;
// we cannot synthesize hardware, so this harness reports (a) the analytic
// latency model fitted to the paper's own measurements (c0 + c1*log2 N +
// c2*N: OR-reduction trees + availability wavefront), (b) the derived ASIC
// estimate (the paper's "about 5x better", anchored at 80 ns for 128x128),
// and (c) a software micro-timing of the gate-accurate SL array pass as a
// sanity check that the combinational work indeed scales ~N^2 with an O(N)
// critical path.

#include <chrono>
#include <iostream>
#include <vector>

#include "common/bitmatrix.hpp"
#include "common/config.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/sweep.hpp"
#include "sched/latency_model.hpp"
#include "sched/presched.hpp"
#include "sched/sl_array.hpp"

namespace {

/// Median-of-3 wall time for one full SL pass (preschedule + wavefront) on
/// a random half-loaded request state.
double sw_pass_us(std::size_t n) {
  pmx::Rng rng(n);
  pmx::BitMatrix config(n);
  pmx::BitMatrix requests(n);
  const auto perm = rng.permutation(n);
  for (std::size_t u = 0; u < n; ++u) {
    if (rng.chance(0.5)) {
      config.set(u, perm[u]);
    }
    for (std::size_t v = 0; v < n; ++v) {
      if (rng.chance(0.1)) {
        requests.set(u, v);
      }
    }
  }
  double best = 1e18;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    constexpr int kIters = 50;
    std::size_t sink = 0;
    for (int i = 0; i < kIters; ++i) {
      const pmx::BitMatrix l = pmx::preschedule(requests, config, config);
      const auto pass = pmx::sl_array_pass(l, config, static_cast<std::size_t>(i) % n, static_cast<std::size_t>(i) % n);
      sink += pass.establishes;
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double us =
        std::chrono::duration<double, std::micro>(t1 - t0).count() / kIters;
    if (sink != static_cast<std::size_t>(-1) && us < best) {
      best = us;
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  // --jobs parallelizes the software micro-timing points (the timing
  // columns are wall-clock measurements, so absolute numbers can shift a
  // little when points share cores; the model columns are exact either way).
  const pmx::Config cfg = pmx::Config::from_cli(argc, argv);
  const pmx::SweepOptions sweep{cfg.get_uint("jobs", 1)};
  cfg.fail_unread("bench_table3");
  pmx::SchedulerLatencyModel model;
  std::cout << "Table 3: latency of the scheduling circuit\n"
            << "model: fpga(N) = " << pmx::Table::fmt(model.c0()) << " + "
            << pmx::Table::fmt(model.c1()) << "*log2(N) + "
            << pmx::Table::fmt(model.c2()) << "*N   (rms error "
            << pmx::Table::fmt(model.rms_error()) << " ns)\n\n";

  std::vector<std::size_t> ns;
  for (const auto& point : pmx::SchedulerLatencyModel::paper_table3()) {
    ns.push_back(point.n);
  }
  ns.push_back(256);  // extrapolation beyond the paper's table
  ns.push_back(512);
  const std::vector<double> sw_us = pmx::sweep_map<double>(
      ns.size(), [&](std::size_t i) { return sw_pass_us(ns[i]); }, sweep);

  pmx::Table table({"N", "paper FPGA (ns)", "model FPGA (ns)",
                    "model ASIC (ns)", "sw pass (us)"});
  const auto paper = pmx::SchedulerLatencyModel::paper_table3();
  for (std::size_t i = 0; i < ns.size(); ++i) {
    const std::size_t n = ns[i];
    table.add_row({pmx::Table::fmt(static_cast<std::uint64_t>(n)),
                   i < paper.size() ? pmx::Table::fmt(paper[i].fpga_ns, 0)
                                    : std::string("-"),
                   pmx::Table::fmt(model.fpga_ns(n), 1),
                   pmx::Table::fmt(model.asic_ns(n), 1),
                   pmx::Table::fmt(sw_us[i], 2)});
  }
  table.print(std::cout);
  std::cout << "\nsimulation uses asic(128) = "
            << model.asic_latency(128).ns()
            << " ns as the scheduler pass latency (paper Section 5)\n";
  return 0;
}
