// Micro-benchmarks (google-benchmark) for the simulation kernels: bit-matrix
// reductions, the gate-accurate scheduler pass, working-set decomposition,
// the event queue, and an end-to-end small simulation.

#include <benchmark/benchmark.h>

#include "common/bitmatrix.hpp"
#include "common/rng.hpp"
#include "compiled/decomposition.hpp"
#include "fabric/fattree.hpp"
#include "fabric/omega.hpp"
#include "core/experiment.hpp"
#include "core/sweep.hpp"
#include "sched/presched.hpp"
#include "sched/sl_array.hpp"
#include "sched/tdm_scheduler.hpp"
#include "sim/event_queue.hpp"
#include "traffic/patterns.hpp"

namespace {

using namespace pmx::literals;

pmx::BitMatrix random_matrix(std::size_t n, double density,
                             std::uint64_t seed) {
  pmx::Rng rng(seed);
  pmx::BitMatrix m(n);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = 0; v < n; ++v) {
      if (rng.chance(density)) {
        m.set(u, v);
      }
    }
  }
  return m;
}

pmx::BitMatrix random_permutation_config(std::size_t n, double fill,
                                         std::uint64_t seed) {
  pmx::Rng rng(seed);
  pmx::BitMatrix m(n);
  const auto perm = rng.permutation(n);
  for (std::size_t u = 0; u < n; ++u) {
    if (rng.chance(fill)) {
      m.set(u, perm[u]);
    }
  }
  return m;
}

void BM_BitMatrixColOr(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const pmx::BitMatrix m = random_matrix(n, 0.05, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.col_or());
  }
}
BENCHMARK(BM_BitMatrixColOr)->Arg(32)->Arg(128)->Arg(512);

void BM_BitMatrixIsPartialPermutation(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const pmx::BitMatrix m = random_permutation_config(n, 0.8, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.is_partial_permutation());
  }
}
BENCHMARK(BM_BitMatrixIsPartialPermutation)->Arg(32)->Arg(128)->Arg(512);

void BM_Preschedule(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const pmx::BitMatrix r = random_matrix(n, 0.1, 3);
  const pmx::BitMatrix config = random_permutation_config(n, 0.5, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pmx::preschedule(r, config, config));
  }
}
BENCHMARK(BM_Preschedule)->Arg(32)->Arg(128)->Arg(512);

void BM_SlArrayPass(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const pmx::BitMatrix r = random_matrix(n, 0.1, 5);
  const pmx::BitMatrix config = random_permutation_config(n, 0.5, 6);
  const pmx::BitMatrix l = pmx::preschedule(r, config, config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pmx::sl_array_pass(l, config, 0, 0));
  }
}
BENCHMARK(BM_SlArrayPass)->Arg(32)->Arg(128)->Arg(512);

// Same workload through the cell-by-cell reference oracle. The ratio
// BM_SlArrayPassRef / BM_SlArrayPass is the word-parallel speedup tracked
// in BENCH_micro.json.
void BM_SlArrayPassRef(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const pmx::BitMatrix r = random_matrix(n, 0.1, 5);
  const pmx::BitMatrix config = random_permutation_config(n, 0.5, 6);
  const pmx::BitMatrix l = pmx::preschedule(r, config, config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pmx::sl_array_pass_ref(l, config, 0, 0));
  }
}
BENCHMARK(BM_SlArrayPassRef)->Arg(32)->Arg(128)->Arg(512);

void BM_SchedulerFullPass(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  pmx::TdmScheduler::Options options;
  options.num_ports = n;
  options.num_slots = 4;
  pmx::TdmScheduler sched(options);
  pmx::Rng rng(7);
  for (std::size_t u = 0; u < n; ++u) {
    for (int j = 0; j < 4; ++j) {
      sched.set_request(u, rng.below(n), true);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched.run_pass());
  }
}
BENCHMARK(BM_SchedulerFullPass)->Arg(32)->Arg(128);

void BM_DecomposeOptimal(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  // Degree-4 working set (mesh-like).
  std::vector<pmx::Conn> conns;
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t d = 1; d <= 4; ++d) {
      conns.push_back(pmx::Conn{u, (u + d) % n});
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(pmx::decompose_optimal(n, conns));
  }
}
BENCHMARK(BM_DecomposeOptimal)->Arg(32)->Arg(128)->Arg(512);

void BM_DecomposeGreedy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<pmx::Conn> conns;
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t d = 1; d <= 4; ++d) {
      conns.push_back(pmx::Conn{u, (u + d) % n});
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(pmx::decompose_greedy(n, conns));
  }
}
BENCHMARK(BM_DecomposeGreedy)->Arg(32)->Arg(128)->Arg(512);

void BM_OmegaRoutable(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const pmx::OmegaNetwork omega(n);
  const pmx::BitMatrix config = random_permutation_config(n, 0.8, 21);
  for (auto _ : state) {
    benchmark::DoNotOptimize(omega.routable(config));
  }
}
BENCHMARK(BM_OmegaRoutable)->Arg(32)->Arg(128)->Arg(512);

void BM_DecomposeOmega(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const pmx::OmegaNetwork omega(n);
  std::vector<pmx::Conn> conns;
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t d = 1; d <= 4; ++d) {
      conns.push_back(pmx::Conn{u, (u + d) % n});
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(pmx::decompose_omega(omega, conns));
  }
}
BENCHMARK(BM_DecomposeOmega)->Arg(32)->Arg(128);

void BM_FatTreeDecompose(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const pmx::FatTree tree(8, n / 8, n / 16);
  std::vector<pmx::Conn> conns;
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t d = 1; d <= 4; ++d) {
      conns.push_back(pmx::Conn{u, (u + d * (n / 8)) % n});
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(pmx::decompose_fattree(tree, conns));
  }
}
BENCHMARK(BM_FatTreeDecompose)->Arg(32)->Arg(128);

void BM_EventQueueChurn(benchmark::State& state) {
  pmx::Rng rng(11);
  for (auto _ : state) {
    pmx::EventQueue q;
    for (int i = 0; i < 1000; ++i) {
      q.push(pmx::TimeNs{static_cast<std::int64_t>(rng.below(100000))},
             [] {});
    }
    while (!q.empty()) {
      q.pop();
    }
  }
}
BENCHMARK(BM_EventQueueChurn);

void BM_EndToEndRandomMesh(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const pmx::Workload workload = pmx::patterns::random_mesh(n, 256, 1, 3);
  for (auto _ : state) {
    pmx::RunConfig config;
    config.params.num_nodes = n;
    config.kind = pmx::SwitchKind::kDynamicTdm;
    benchmark::DoNotOptimize(pmx::run_workload(config, workload));
  }
}
BENCHMARK(BM_EndToEndRandomMesh)->Arg(16)->Arg(64)->Unit(
    benchmark::kMillisecond);

// Sweep-runner scaling: 16 small independent end-to-end runs distributed
// over Arg(0) worker threads. On a multi-core host the jobs=4 point should
// approach 4x the jobs=1 rate; on a single core it measures pure overhead.
void BM_SweepRunner(benchmark::State& state) {
  const auto jobs = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kPoints = 16;
  const pmx::SweepOptions options{jobs};
  for (auto _ : state) {
    const auto results = pmx::run_sweep(
        kPoints,
        [&](std::size_t i) {
          const pmx::Workload workload =
              pmx::patterns::random_mesh(32, 256, 1, 3 + i);
          pmx::RunConfig config;
          config.params.num_nodes = 32;
          config.kind = pmx::SwitchKind::kDynamicTdm;
          return pmx::run_workload(config, workload);
        },
        options);
    benchmark::DoNotOptimize(results.size());
  }
}
BENCHMARK(BM_SweepRunner)->Arg(1)->Arg(2)->Arg(4)->Unit(
    benchmark::kMillisecond);

}  // namespace
