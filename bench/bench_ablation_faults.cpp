// Ablation A6: fault tolerance. How gracefully does each switching paradigm
// degrade when the fabric misbehaves? Three scenarios over the same random
// nearest-neighbour workload:
//
//   clean      -- fault layer force-enabled but every rate zero (measures the
//                 overhead of the reliability machinery itself: none).
//   bit errors -- transient corruption at increasing BER; goodput stays at
//                 100% delivery while wire throughput absorbs the retransmit
//                 tax.
//   hard fault -- links die on an exponential MTBF timeline and are repaired;
//                 the scheduler masks dead ports and connections re-establish
//                 after repair.
//
// Everything is seeded: running this binary twice prints identical tables.
//
// Usage: bench_ablation_faults [--nodes N] [--bytes B] [--rounds R]
//                              [--seed S] [--mtbf NS] [--repair NS]
//                              [--jobs J]

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"
#include "core/sweep.hpp"
#include "traffic/patterns.hpp"

namespace {

constexpr pmx::SwitchKind kKinds[] = {
    pmx::SwitchKind::kWormhole,
    pmx::SwitchKind::kCircuit,
    pmx::SwitchKind::kDynamicTdm,
    pmx::SwitchKind::kPreloadTdm,
};

struct ScenarioResult {
  bool completed = false;
  pmx::RunMetrics metrics;
};

ScenarioResult run(pmx::SwitchKind kind, const pmx::FaultParams& fault,
                   std::size_t nodes, const pmx::Workload& workload) {
  pmx::RunConfig config;
  config.params.num_nodes = nodes;
  config.params.fault = fault;
  config.kind = kind;
  config.horizon = pmx::TimeNs{1'000'000'000};  // 1 s: plenty for repairs
  const pmx::RunResult result = pmx::run_workload(config, workload);
  return {result.completed, result.metrics};
}

std::string delivery_cell(const ScenarioResult& r, std::size_t messages) {
  if (!r.completed) {
    return "DNF";
  }
  const std::size_t ok = r.metrics.messages;
  return pmx::Table::fmt(static_cast<std::uint64_t>(ok)) + "/" +
         pmx::Table::fmt(static_cast<std::uint64_t>(messages));
}

}  // namespace

int main(int argc, char** argv) {
  const pmx::Config cfg = pmx::Config::from_cli(argc, argv);
  const std::size_t nodes = cfg.get_uint("nodes", 64);
  const std::uint64_t bytes = cfg.get_uint("bytes", 512);
  const std::size_t rounds = cfg.get_uint("rounds", 2);
  const std::uint32_t seed =
      static_cast<std::uint32_t>(cfg.get_uint("seed", 0x5EEDF417u));
  // Per-link MTBF comparable to the run's makespan (tens of microseconds),
  // so the hard-fault scenario actually exercises repairs; real hardware
  // rates would never fire inside one benchmark run.
  const pmx::TimeNs mtbf{static_cast<std::int64_t>(
      cfg.get_uint("mtbf", 100'000))};
  const pmx::TimeNs repair{static_cast<std::int64_t>(
      cfg.get_uint("repair", 20'000))};
  const pmx::SweepOptions sweep{cfg.get_uint("jobs", 1)};
  cfg.fail_unread("bench_ablation_faults");

  const pmx::Workload workload =
      pmx::patterns::random_mesh(nodes, bytes, rounds, 7);
  const std::size_t messages = workload.num_messages();

  std::cout << "Ablation A6: graceful degradation under faults (" << nodes
            << " nodes, " << bytes << "-byte messages, " << messages
            << " messages, seed " << seed << ")\n";

  // Five fault scenarios (clean, three BERs, hard faults), four paradigms
  // each. Flattened to (scenario, kind) for the sweep; scenarios stay in
  // print order.
  const std::vector<double> bers{1e-5, 1e-4, 5e-4};
  std::vector<pmx::FaultParams> scenarios;
  {
    pmx::FaultParams clean;
    clean.seed = seed;
    clean.force_enable = true;
    scenarios.push_back(clean);
    for (const double ber : bers) {
      pmx::FaultParams fault;
      fault.seed = seed;
      fault.ber = ber;
      scenarios.push_back(fault);
    }
    pmx::FaultParams hard;
    hard.seed = seed;
    hard.link_mtbf = mtbf;
    hard.link_repair = repair;
    hard.max_link_faults = 16;
    scenarios.push_back(hard);
  }
  constexpr std::size_t kNumKinds = std::size(kKinds);
  const std::vector<ScenarioResult> results =
      pmx::sweep_map<ScenarioResult>(
          scenarios.size() * kNumKinds,
          [&](std::size_t i) {
            return run(kKinds[i % kNumKinds], scenarios[i / kNumKinds],
                       nodes, workload);
          },
          sweep);
  const auto scenario_result = [&](std::size_t s,
                                   std::size_t k) -> const ScenarioResult& {
    return results[s * kNumKinds + k];
  };

  // --- Scenario 1: reliability layer on, nothing ever fails ---------------
  {
    pmx::Table table({"paradigm", "delivered", "goodput B/ns", "wire B/ns",
                      "retransmits"});
    for (std::size_t k = 0; k < kNumKinds; ++k) {
      const ScenarioResult& r = scenario_result(0, k);
      table.add_row({pmx::to_string(kKinds[k]), delivery_cell(r, messages),
                     pmx::Table::fmt(r.metrics.goodput, 4),
                     pmx::Table::fmt(r.metrics.wire_throughput, 4),
                     pmx::Table::fmt(r.metrics.retransmits)});
    }
    std::cout << "\n== clean (fault layer armed, zero rates) ==\n";
    table.print(std::cout);
  }

  // --- Scenario 2: transient bit errors, increasing BER -------------------
  for (std::size_t b = 0; b < bers.size(); ++b) {
    pmx::Table table({"paradigm", "delivered", "goodput B/ns", "wire B/ns",
                      "retransmits", "corrupt", "dup"});
    for (std::size_t k = 0; k < kNumKinds; ++k) {
      const ScenarioResult& r = scenario_result(1 + b, k);
      table.add_row({pmx::to_string(kKinds[k]), delivery_cell(r, messages),
                     pmx::Table::fmt(r.metrics.goodput, 4),
                     pmx::Table::fmt(r.metrics.wire_throughput, 4),
                     pmx::Table::fmt(r.metrics.retransmits),
                     pmx::Table::fmt(r.metrics.crc_corruptions),
                     pmx::Table::fmt(r.metrics.duplicates)});
    }
    std::cout << "\n== bit errors, BER " << bers[b] << " ==\n";
    table.print(std::cout);
  }

  // --- Scenario 3: hard link faults with repair ---------------------------
  {
    pmx::Table table({"paradigm", "delivered", "faults", "forced rel",
                      "recover mean ns", "recover max ns"});
    for (std::size_t k = 0; k < kNumKinds; ++k) {
      const ScenarioResult& r = scenario_result(1 + bers.size(), k);
      table.add_row(
          {pmx::to_string(kKinds[k]), delivery_cell(r, messages),
           pmx::Table::fmt(static_cast<std::uint64_t>(r.metrics.link_faults)),
           pmx::Table::fmt(
               static_cast<std::uint64_t>(r.metrics.forced_releases)),
           pmx::Table::fmt(r.metrics.recovery_mean_ns, 0),
           pmx::Table::fmt(r.metrics.recovery_max_ns, 0)});
    }
    std::cout << "\n== hard link faults (MTBF " << mtbf.ns() << " ns, repair "
              << repair.ns() << " ns) ==\n";
    table.print(std::cout);
  }
  return 0;
}
