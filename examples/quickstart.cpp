// Quickstart: simulate one workload under all four switching paradigms and
// compare bandwidth efficiency -- the experiment style of the paper's
// Figure 4, at a glance.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [nodes] [bytes]

#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "core/experiment.hpp"
#include "traffic/patterns.hpp"

int main(int argc, char** argv) {
  const std::size_t nodes =
      argc > 1 ? static_cast<std::size_t>(std::strtoull(argv[1], nullptr, 10))
               : 32;
  const std::uint64_t bytes =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 256;

  // A nearest-neighbour workload: every node sends to its four torus
  // neighbours twice, in random order (no predictability).
  const pmx::Workload workload = pmx::patterns::random_mesh(
      nodes, bytes, /*rounds=*/2, /*seed=*/42);

  std::cout << "pmx quickstart: " << nodes << " nodes, " << bytes
            << "-byte messages, " << workload.num_messages()
            << " messages total\n\n";

  pmx::Table table({"paradigm", "efficiency", "makespan(us)", "avg lat(ns)",
                    "p99 lat(ns)"});

  for (const pmx::SwitchKind kind :
       {pmx::SwitchKind::kWormhole, pmx::SwitchKind::kCircuit,
        pmx::SwitchKind::kDynamicTdm, pmx::SwitchKind::kPreloadTdm}) {
    pmx::RunConfig config;
    config.params.num_nodes = nodes;
    config.kind = kind;
    const pmx::RunResult result = pmx::run_workload(config, workload);
    if (!result.completed) {
      std::cerr << "run did not complete: " << pmx::to_string(kind) << "\n";
      return 1;
    }
    table.add_row({pmx::to_string(kind),
                   pmx::Table::fmt(result.metrics.efficiency),
                   pmx::Table::fmt(result.metrics.makespan.us()),
                   pmx::Table::fmt(result.metrics.avg_latency_ns, 0),
                   pmx::Table::fmt(result.metrics.p99_latency_ns, 0)});
  }

  table.print(std::cout);
  std::cout << "\nefficiency = serialization lower bound / achieved makespan "
               "(1.0 = bottleneck link never idle)\n";
  return 0;
}
