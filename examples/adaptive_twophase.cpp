// Dynamic prediction and compiler flush hints on a phase-changing workload
// (Section 3.2 / 3.3).
//
// The workload alternates between a global all-to-all phase and a local
// nearest-neighbour phase. A predictor that latches connections helps
// inside a phase but poisons the slot registers across the phase boundary;
// the compiler knows where the boundary is and can insert a flush. This
// example compares:
//   * reactive TDM (no prediction),
//   * timeout predictor,
//   * timeout predictor + compiler flush at each phase boundary,
//   * the self-flushing phase predictor (Section 3.3 without compiler
//     help: it watches the working set and flushes on its own).
//
//   ./build/examples/adaptive_twophase [nodes] [bytes]

#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "core/experiment.hpp"
#include "traffic/mesh.hpp"
#include "traffic/patterns.hpp"

namespace {

pmx::Workload phased_workload(std::size_t nodes, std::uint64_t bytes,
                              bool with_flush) {
  pmx::Workload w = pmx::patterns::two_phase(nodes, bytes, /*seed=*/11);
  if (with_flush) {
    // The "compiler" inserts a flush right after the barrier separating the
    // phases (Section 3.3: points of change in communication locality).
    for (auto& program : w.programs) {
      for (std::size_t i = 0; i < program.size(); ++i) {
        if (program[i].kind == pmx::Command::Kind::kBarrier) {
          program.insert(program.begin() + static_cast<std::ptrdiff_t>(i + 1),
                         pmx::Command::flush());
          break;
        }
      }
    }
  }
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t nodes =
      argc > 1 ? static_cast<std::size_t>(std::strtoull(argv[1], nullptr, 10))
               : 64;
  const std::uint64_t bytes =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 128;

  std::cout << "two-phase workload (all-to-all, then random nearest "
               "neighbour): "
            << nodes << " nodes, " << bytes << "-byte messages\n\n";

  struct Setup {
    std::string label;
    std::string policy;
    bool flush;
  };
  const Setup setups[] = {
      {"reactive (no predictor)", "none", false},
      {"timeout predictor", "timeout", false},
      {"timeout + compiler flush", "timeout", true},
      {"phase predictor (self-flush)", "phase", false},
      {"never-evict", "never-evict", false},
      {"never-evict + compiler flush", "never-evict", true},
  };

  pmx::Table table({"scheme", "efficiency", "makespan(us)", "evictions",
                    "flushes", "auto_flushes"});
  for (const auto& setup : setups) {
    pmx::RunConfig config;
    config.params.num_nodes = nodes;
    config.kind = pmx::SwitchKind::kDynamicTdm;
    config.policy.policy = setup.policy;
    config.policy.timeout_ns = 400;
    const pmx::Workload workload =
        phased_workload(nodes, bytes, setup.flush);
    const auto result = pmx::run_workload(config, workload);
    table.add_row({setup.label,
                   result.completed
                       ? pmx::Table::fmt(result.metrics.efficiency)
                       : std::string("DNF"),
                   pmx::Table::fmt(result.metrics.makespan.us()),
                   pmx::Table::fmt(result.counter("evictions")),
                   pmx::Table::fmt(result.counter("flushes")),
                   pmx::Table::fmt(result.counter("auto_flushes"))});
  }
  table.print(std::cout);
  return 0;
}
