// Explore fabric constraints: how expensive is a working set to realize on
// a crossbar vs an Omega multistage network, and what does that do to
// preloaded-TDM performance?
//
// Accepts key=value arguments (see common/config.hpp):
//
//   ./build/examples/fabric_explorer nodes=64 pattern=uniform count=8
//       bytes=256 seed=7
//
// pattern: mesh | uniform | alltoall | scatter | transpose

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/table.hpp"
#include "compiled/plan.hpp"
#include "core/driver.hpp"
#include "core/metrics.hpp"
#include "fabric/fattree.hpp"
#include "fabric/omega.hpp"
#include "sim/simulator.hpp"
#include "switching/preload_tdm.hpp"
#include "traffic/patterns.hpp"

namespace {

pmx::Workload make_pattern(const std::string& name, std::size_t nodes,
                           std::uint64_t bytes, std::size_t count,
                           std::uint64_t seed) {
  if (name == "mesh") {
    return pmx::patterns::random_mesh(nodes, bytes, count, seed);
  }
  if (name == "alltoall") {
    return pmx::patterns::all_to_all(nodes, bytes);
  }
  if (name == "scatter") {
    return pmx::patterns::scatter(nodes, bytes);
  }
  if (name == "transpose") {
    return pmx::patterns::transpose(nodes, bytes, count);
  }
  return pmx::patterns::uniform_random(nodes, bytes, count, seed);
}

double run_preload(const pmx::Workload& w, pmx::CompiledPlan plan,
                   std::size_t nodes) {
  pmx::SystemParams params;
  params.num_nodes = nodes;
  pmx::Simulator sim;
  pmx::PreloadTdmNetwork net(sim, params, std::move(plan));
  pmx::TrafficDriver driver(sim, net, w);
  driver.start();
  sim.run_until(pmx::TimeNs{50'000'000});
  return driver.finished() ? pmx::compute_metrics(w, net).efficiency : -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  pmx::Config config;
  try {
    config = pmx::Config::from_args(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  const std::size_t nodes = config.get_uint("nodes", 64);
  const std::uint64_t bytes = config.get_uint("bytes", 256);
  const std::size_t count = config.get_uint("count", 8);
  const std::uint64_t seed = config.get_uint("seed", 7);
  const std::string pattern = config.get_string("pattern", "uniform");
  const std::size_t leaves =
      config.get_uint("leaves", nodes >= 32 ? 8 : 2);
  const std::size_t spines = config.get_uint(
      "spines", std::max<std::size_t>(1, nodes / leaves / 2));
  config.fail_unread("fabric_explorer");

  const pmx::Workload w = make_pattern(pattern, nodes, bytes, count, seed);
  const pmx::OmegaNetwork omega(nodes);

  std::cout << "fabric explorer: pattern=" << pattern << " nodes=" << nodes
            << " (" << omega.stages() << "-stage Omega), "
            << w.num_messages() << " messages of " << bytes << " B\n\n";

  if (nodes % leaves != 0) {
    std::cerr << "nodes must be a multiple of leaves\n";
    return 2;
  }
  const pmx::FatTree tree(leaves, nodes / leaves, spines);

  pmx::CompiledPlan xbar = pmx::compile_workload(w);
  pmx::CompiledPlan greedy = pmx::compile_workload(w, /*optimal=*/false);
  pmx::CompiledPlan mesh = pmx::compile_workload_omega(w, omega);
  pmx::CompiledPlan ft = pmx::compile_workload_fattree(w, tree);

  pmx::Table table({"fabric/decomposition", "mux degree", "preload-tdm eff"});
  const std::size_t xd = xbar.max_degree();
  const std::size_t gd = greedy.max_degree();
  const std::size_t od = mesh.max_degree();
  const double xe = run_preload(w, std::move(xbar), nodes);
  const double ge = run_preload(w, std::move(greedy), nodes);
  const double oe = run_preload(w, std::move(mesh), nodes);
  const auto cell = [](double e) {
    return e < 0 ? std::string("DNF") : pmx::Table::fmt(e, 3);
  };
  table.add_row({"crossbar / Konig-optimal",
                 pmx::Table::fmt(static_cast<std::uint64_t>(xd)), cell(xe)});
  table.add_row({"crossbar / greedy first-fit",
                 pmx::Table::fmt(static_cast<std::uint64_t>(gd)), cell(ge)});
  table.add_row({"Omega multistage",
                 pmx::Table::fmt(static_cast<std::uint64_t>(od)), cell(oe)});
  const std::size_t fd = ft.max_degree();
  const double fe = run_preload(w, std::move(ft), nodes);
  table.add_row({"fat tree (" + std::to_string(leaves) + " leaves, " +
                     std::to_string(spines) + " spines)",
                 pmx::Table::fmt(static_cast<std::uint64_t>(fd)), cell(fe)});
  table.print(std::cout);
  std::cout << "\nmux degree = configurations needed to realize the working "
               "set without conflict\n";
  return 0;
}
