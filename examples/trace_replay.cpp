// Replay a communication trace from a "command file" (the simulator input
// format of Section 5) under any switching paradigm.
//
//   ./build/examples/trace_replay <command-file> [paradigm]
//   ./build/examples/trace_replay --demo [paradigm]
//
// paradigm: wormhole | circuit | dynamic-tdm | preload-tdm (default)
//
// With --demo, a small pipeline-pattern trace is generated, written to
// /tmp/pmx_demo.trace, and replayed -- use it as a template for hand-written
// traces.

#include <cstring>
#include <iostream>
#include <sstream>
#include <string>

#include "common/table.hpp"
#include "core/experiment.hpp"
#include "traffic/command_file.hpp"

namespace {

const char* kDemoTrace = R"(# pmx demo trace: 8-stage software pipeline
# stage i streams blocks to stage i+1, with a barrier between halves
nodes 8
node 0
send 1 512
send 1 512
barrier
send 1 256
node 1
send 2 512
send 2 512
barrier
send 2 256
node 2
send 3 512
send 3 512
barrier
send 3 256
node 3
send 4 512
send 4 512
barrier
send 4 256
node 4
send 5 512
send 5 512
barrier
send 5 256
node 5
send 6 512
send 6 512
barrier
send 6 256
node 6
send 7 512
send 7 512
barrier
send 7 256
node 7
send 0 512
send 0 512
barrier
send 0 256
)";

pmx::SwitchKind parse_kind(const std::string& s) {
  if (s == "wormhole") {
    return pmx::SwitchKind::kWormhole;
  }
  if (s == "circuit") {
    return pmx::SwitchKind::kCircuit;
  }
  if (s == "dynamic-tdm") {
    return pmx::SwitchKind::kDynamicTdm;
  }
  return pmx::SwitchKind::kPreloadTdm;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: trace_replay <command-file>|--demo [paradigm]\n";
    return 2;
  }

  pmx::Workload workload;
  try {
    if (std::strcmp(argv[1], "--demo") == 0) {
      workload = pmx::command_file::parse_string(kDemoTrace);
      pmx::command_file::save("/tmp/pmx_demo.trace", workload);
      std::cout << "demo trace written to /tmp/pmx_demo.trace\n";
    } else {
      workload = pmx::command_file::load(argv[1]);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }

  const pmx::SwitchKind kind =
      parse_kind(argc > 2 ? argv[2] : "preload-tdm");

  std::cout << "replaying " << workload.num_messages() << " messages ("
            << workload.total_bytes() << " bytes) over "
            << workload.num_nodes() << " nodes on " << pmx::to_string(kind)
            << "\n\n";

  pmx::RunConfig config;
  config.params.num_nodes = workload.num_nodes();
  config.kind = kind;
  const auto result = pmx::run_workload(config, workload);
  if (!result.completed) {
    std::cerr << "run did not complete before the horizon\n";
    return 1;
  }

  pmx::Table table({"metric", "value"});
  table.add_row({"makespan (us)", pmx::Table::fmt(result.metrics.makespan.us())});
  table.add_row({"efficiency", pmx::Table::fmt(result.metrics.efficiency)});
  table.add_row({"avg latency (ns)",
                 pmx::Table::fmt(result.metrics.avg_latency_ns, 0)});
  table.add_row({"p99 latency (ns)",
                 pmx::Table::fmt(result.metrics.p99_latency_ns, 0)});
  table.add_row({"messages", pmx::Table::fmt(
                                 static_cast<std::uint64_t>(
                                     result.metrics.messages))});
  table.print(std::cout);

  std::cout << "\ncounters:\n";
  for (const auto& [name, value] : result.counters) {
    std::cout << "  " << name << " = " << value << "\n";
  }
  return 0;
}
