// Compiled communication on a 2D stencil (heat-diffusion style) code.
//
// A stencil sweep exchanges halos with the four mesh neighbours every
// iteration -- exactly the regular, compile-time-known pattern Section 3.1
// targets. This example builds the per-iteration workload, lets the
// "compiler" (compile_workload) decompose each phase's working set into
// conflict-free crossbar configurations, and runs it on the preloading TDM
// network; for contrast it also runs reactive TDM and wormhole.
//
//   ./build/examples/stencil_preload [nodes] [halo_bytes] [iterations]

#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "compiled/plan.hpp"
#include "core/experiment.hpp"
#include "traffic/mesh.hpp"
#include "traffic/program.hpp"

namespace {

/// Halo exchange with a barrier after each iteration (the stencil's update
/// step needs all halos before computing).
pmx::Workload stencil_workload(std::size_t nodes, std::uint64_t halo_bytes,
                               std::size_t iterations) {
  const pmx::Mesh2D mesh = pmx::Mesh2D::square_ish(nodes);
  pmx::Workload w;
  w.programs.resize(nodes);
  for (std::size_t iter = 0; iter < iterations; ++iter) {
    for (pmx::NodeId u = 0; u < nodes; ++u) {
      for (const auto dir : pmx::Mesh2D::kDirs) {
        w.programs[u].push_back(
            pmx::Command::send(mesh.neighbor(u, dir), halo_bytes));
      }
      // Local stencil update: 2 us of computation per iteration.
      using namespace pmx::literals;
      w.programs[u].push_back(pmx::Command::compute(2_us));
    }
    for (pmx::NodeId u = 0; u < nodes; ++u) {
      w.programs[u].push_back(pmx::Command::barrier());
    }
  }
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t nodes =
      argc > 1 ? static_cast<std::size_t>(std::strtoull(argv[1], nullptr, 10))
               : 64;
  const std::uint64_t halo = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                      : 1024;
  const std::size_t iters =
      argc > 3 ? static_cast<std::size_t>(std::strtoull(argv[3], nullptr, 10))
               : 4;

  const pmx::Workload workload = stencil_workload(nodes, halo, iters);
  const pmx::Mesh2D mesh = pmx::Mesh2D::square_ish(nodes);
  std::cout << "2D stencil halo exchange: " << mesh.width() << "x"
            << mesh.height() << " torus, " << halo << "-byte halos, " << iters
            << " iterations\n\n";

  // What the "compiler" sees: one phase per iteration, each decomposing
  // into exactly 4 configurations (the four neighbour permutations).
  const pmx::CompiledPlan plan = pmx::compile_workload(workload);
  std::cout << "compiled plan: " << plan.num_phases()
            << " phases, max multiplexing degree " << plan.max_degree()
            << "\n\n";

  pmx::Table table({"paradigm", "efficiency", "makespan(us)"});
  for (const auto kind :
       {pmx::SwitchKind::kPreloadTdm, pmx::SwitchKind::kDynamicTdm,
        pmx::SwitchKind::kWormhole}) {
    pmx::RunConfig config;
    config.params.num_nodes = nodes;
    config.kind = kind;
    config.multi_slot_connections = true;
    const auto result = pmx::run_workload(config, workload);
    table.add_row({pmx::to_string(kind),
                   result.completed
                       ? pmx::Table::fmt(result.metrics.efficiency)
                       : std::string("DNF"),
                   pmx::Table::fmt(result.metrics.makespan.us())});
  }
  table.print(std::cout);
  std::cout << "\n(efficiency counts only communication; the 2 us compute "
               "steps inflate every paradigm's makespan equally)\n";
  return 0;
}
