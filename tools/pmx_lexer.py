#!/usr/bin/env python3
"""Shared lexing, finding, and baseline machinery for pmx-lint and
pmx-analyze.

Both analyzers operate on the same view of a C++ source file: per-line code
with comment and string bodies blanked out (so prose never trips a rule and
string contents never hide one), plus per-line comment text from which the
single suppression mechanism -- ``// pmx-lint: allow(<rule>)`` on the
offending line -- is parsed. Findings carry a fingerprint (rule + normalized
source line) so committed baselines survive unrelated edits that move a
known finding up or down a file.

Baseline JSON schema (shared by both tools):

    {"findings": [{"file": ..., "rule": ..., "fingerprint": ...,
                   "justification": "why this is acknowledged"}, ...]}

``justification`` is optional for pmx-lint compatibility; pmx-analyze
refuses baselines whose entries do not carry one (the architecture contract
may only be suspended with a written reason).
"""

from __future__ import annotations

import hashlib
import json
import re
from pathlib import Path

SOURCE_EXTENSIONS = (".hpp", ".cpp")
DEFAULT_ROOTS = ("src", "bench", "tests", "examples", "tools")
# Fixture corpus intentionally violates every rule; never lint it as code.
EXCLUDED_PARTS = ("lint_fixtures",)

ALLOW_RE = re.compile(r"pmx-lint:\s*allow\(([a-zA-Z0-9_,\s-]+)\)")


class Finding:
    __slots__ = ("path", "line", "rule", "message", "code")

    def __init__(self, path: str, line: int, rule: str, message: str, code: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message
        self.code = code

    def fingerprint(self) -> str:
        normalized = " ".join(self.code.split())
        digest = hashlib.sha1(
            f"{self.rule}\x00{normalized}".encode()
        ).hexdigest()
        return digest[:16]

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str):
    """Return (code_lines, comment_lines): per-line source with comments and
    string/char literal bodies blanked out, and per-line comment text (for
    allow() extraction). Handles //, /* */, "...", '...', and R"(...)"."""
    code = []
    comments = []
    code_line: list[str] = []
    comment_line: list[str] = []
    i = 0
    n = len(text)
    state = "code"  # code | line_comment | block_comment | string | char | raw
    raw_delim = ""
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "\n":
            code.append("".join(code_line))
            comments.append("".join(comment_line))
            code_line, comment_line = [], []
            if state == "line_comment":
                state = "code"
            i += 1
            continue
        if state == "code":
            if ch == "/" and nxt == "/":
                state = "line_comment"
                i += 2
                continue
            if ch == "/" and nxt == "*":
                state = "block_comment"
                i += 2
                continue
            if ch == "R" and nxt == '"':
                m = re.match(r'R"([^(\s]*)\(', text[i:])
                if m:
                    raw_delim = m.group(1)
                    state = "raw"
                    code_line.append('R""')
                    i += len(m.group(0))
                    continue
            if ch == '"':
                state = "string"
                code_line.append('"')
                i += 1
                continue
            if ch == "'":
                state = "char"
                code_line.append("'")
                i += 1
                continue
            code_line.append(ch)
            i += 1
        elif state == "line_comment":
            comment_line.append(ch)
            i += 1
        elif state == "block_comment":
            if ch == "*" and nxt == "/":
                state = "code"
                i += 2
            else:
                comment_line.append(ch)
                i += 1
        elif state == "string":
            if ch == "\\":
                i += 2
            elif ch == '"':
                code_line.append('"')
                state = "code"
                i += 1
            else:
                i += 1
        elif state == "char":
            if ch == "\\":
                i += 2
            elif ch == "'":
                code_line.append("'")
                state = "code"
                i += 1
            else:
                i += 1
        elif state == "raw":
            end = f'){raw_delim}"'
            if text.startswith(end, i):
                state = "code"
                i += len(end)
            else:
                i += 1
    if code_line or comment_line or (text and not text.endswith("\n")):
        code.append("".join(code_line))
        comments.append("".join(comment_line))
    return code, comments


def allowed_rules(comment: str) -> set[str]:
    rules: set[str] = set()
    for m in ALLOW_RE.finditer(comment):
        for rule in m.group(1).split(","):
            rules.add(rule.strip())
    return rules


class LexedFile:
    """One source file, lexed once and shared by every pass."""

    __slots__ = ("path", "rel", "code", "comments", "raw")

    def __init__(self, path: Path, rel: str):
        text = path.read_text(encoding="utf-8")
        self.path = path
        self.rel = rel
        self.code, self.comments = strip_comments_and_strings(text)
        self.raw = text.splitlines()

    def allow(self, lineno: int) -> set[str]:
        if 0 < lineno <= len(self.comments):
            return allowed_rules(self.comments[lineno - 1])
        return set()

    def source_line(self, lineno: int) -> str:
        if 0 < lineno <= len(self.raw):
            return self.raw[lineno - 1]
        return ""

    def emit(self, findings: list[Finding], lineno: int, rule: str,
             message: str) -> None:
        if rule in self.allow(lineno):
            return
        findings.append(
            Finding(self.rel, lineno, rule, message, self.source_line(lineno)))


def discover(root: Path, paths: list[str],
             default_roots=DEFAULT_ROOTS) -> list[Path]:
    """Explicit file arguments are always analyzed; directory walks skip the
    fixture corpus (which violates every rule on purpose)."""
    files: list[Path] = []
    targets = paths if paths else list(default_roots)
    for target in targets:
        p = (root / target) if not Path(target).is_absolute() else Path(target)
        if p.is_file():
            files.append(p)
        elif p.is_dir():
            files.extend(
                f
                for ext in SOURCE_EXTENSIONS
                for f in sorted(p.rglob(f"*{ext}"))
                if not any(part in EXCLUDED_PARTS for part in f.parts)
            )
    return files


def load_baseline(path: Path, require_justification: bool = False):
    """Return {key: count} of acknowledged findings. With
    require_justification, raise ValueError on entries lacking a written
    reason (the analyze contract: debt must be justified, not just listed).
    """
    data = json.loads(path.read_text(encoding="utf-8"))
    counts: dict[str, int] = {}
    for entry in data.get("findings", []):
        if require_justification and not entry.get("justification", "").strip():
            raise ValueError(
                f"baseline entry for {entry.get('file')} [{entry.get('rule')}]"
                " has no justification; the architecture contract may only be"
                " suspended with a written reason")
        key = f"{entry['file']}\x00{entry['rule']}\x00{entry['fingerprint']}"
        counts[key] = counts.get(key, 0) + 1
    return counts


def write_baseline(path: Path, findings: list[Finding],
                   with_justification: bool = False) -> None:
    payload = {
        "findings": [
            dict(
                {"file": fi.path, "rule": fi.rule,
                 "fingerprint": fi.fingerprint()},
                **({"justification": ""} if with_justification else {}),
            )
            for fi in findings
        ]
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def subtract_baseline(findings: list[Finding], baseline) -> list[Finding]:
    """Return only the findings not fingerprint-matched by the baseline."""
    remaining = dict(baseline)
    fresh: list[Finding] = []
    for fi in findings:
        key = f"{fi.path}\x00{fi.rule}\x00{fi.fingerprint()}"
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
        else:
            fresh.append(fi)
    return fresh
