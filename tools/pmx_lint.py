#!/usr/bin/env python3
"""pmx-lint: line-local determinism & hygiene rules for the pmx codebase.

The reproduction's correctness claims rest on bit-exact determinism: gate
counts, the SL fast/ref differential oracle, and the byte-identical
``--jobs N`` sweep all assume no hidden nondeterminism. This linter rejects
the source-level patterns that historically break that contract:

  raw-rand       direct std::rand / srand / time() seeding / std::random_device
                 / std::mt19937 use anywhere outside src/common/rng.{hpp,cpp}.
                 All randomness must flow through pmx::Rng (xoshiro256**),
                 whose output is platform-independent.
  unordered-iter iteration over a std::unordered_map / std::unordered_set.
                 Bucket order is implementation-defined, so any loop over an
                 unordered container can leak nondeterministic ordering into
                 output or event order. Commutative folds (count, max, set
                 union) are safe: annotate them with an allow comment.
  float-accum    += / -= accumulation into float/double outside the
                 whitelisted analytic-model files. Slot and latency
                 *accounting* must stay integral (TimeNs / byte counts);
                 floating point is reserved for derived statistics.
  raw-new        raw `new` / `delete` expressions. Ownership goes through
                 containers and smart pointers; raw allocation invites leaks
                 the ASan tier then has to chase.
  raw-heap       std::priority_queue or the <algorithm> heap primitives
                 (push_heap/pop_heap/make_heap/sort_heap/is_heap) anywhere
                 outside src/predictor/policy_engine.* and
                 src/sim/event_queue.*. Priority ordering is a determinism
                 hot-spot (heaps are not stable); rank-ordered scheduling
                 must go through the PolicyEngine and event ordering through
                 the EventQueue, both of which carry total-order
                 tie-breakers.
  unbounded-queue
                 growth calls (push_back / push_front / emplace_back /
                 emplace_front / push / emplace) on std::deque / std::queue /
                 std::list typed names inside src/nic and src/switching with
                 no capacity check in sight (same line or the three preceding
                 code lines). Overload robustness rests on every NIC and
                 switch queue being bounded: growth must sit behind an
                 explicit capacity verdict (VoqSet::would_overflow, the
                 admission controller) or carry an allow comment stating the
                 structural bound.
  include-guard  headers must open with `#pragma once`.

Escape hatch: a finding on line N is suppressed by appending
``// pmx-lint: allow(<rule>)`` to line N (and only line N). Multiple rules:
``allow(rule-a, rule-b)``. For the file-level include-guard rule the allow
comment must sit on line 1.

Baseline mode: ``--baseline FILE`` loads a committed JSON baseline and only
*new* findings (not fingerprint-matched by the baseline) fail the run;
``--write-baseline FILE`` records the current findings. Fingerprints hash the
rule plus the whitespace-normalized source line, so unrelated edits moving a
known finding up or down a file do not break CI.

The whole-program passes (layer contract, include cycles, determinism taint,
hot-path allocation) live in pmx_analyze.py, which also runs these rules:
``pmx_analyze.py`` is the single entry point covering everything. The lexer,
Finding/fingerprint, allow() parsing, and baseline machinery are shared via
pmx_lexer.py, so there is exactly one suppression mechanism.

Exit status: 0 when no (new) findings, 1 when findings remain, 2 on usage
errors.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

from pmx_lexer import (  # noqa: F401  (re-exported for importers)
    DEFAULT_ROOTS,
    Finding,
    allowed_rules,
    discover,
    load_baseline,
    strip_comments_and_strings,
    subtract_baseline,
    write_baseline,
)

# Files allowed to touch raw randomness primitives: the Rng wrapper itself.
RAW_RAND_EXEMPT = ("src/common/rng.hpp", "src/common/rng.cpp")

# The two sanctioned priority-queue cores: the policy engine (rank-ordered
# eviction with a (rank, src, dst) total order) and the simulator's event
# queue. Everything else must route priority ordering through them.
RAW_HEAP_EXEMPT = (
    "src/predictor/policy_engine.hpp",
    "src/predictor/policy_engine.cpp",
    "src/sim/event_queue.hpp",
    "src/sim/event_queue.cpp",
)

# Analytic-model / statistics files where floating-point accumulation is the
# point (latency closed forms, Welford stats, derived run metrics). Slot and
# event accounting elsewhere must stay integral.
FLOAT_ACCUM_WHITELIST = (
    "src/sched/latency_model.hpp",
    "src/sched/latency_model.cpp",
    "src/common/stats.hpp",
    "src/common/stats.cpp",
    "src/core/metrics.hpp",
    "src/core/metrics.cpp",
    # Stochastic arrival-process model: continuous-time exponential draws,
    # quantized to TimeNs only at the program boundary.
    "src/traffic/arrival.hpp",
    "src/traffic/arrival.cpp",
)

# The queue-discipline layers where every queue must be bounded: the NIC
# (VOQs, admission) and the switch paradigms. Queue growth elsewhere (test
# scaffolding, tooling) is out of scope for unbounded-queue.
UNBOUNDED_QUEUE_ROOTS = ("src/nic/", "src/switching/")

RAW_RAND_RE = re.compile(
    r"(?<![\w:])(?:std::)?"
    r"(?:rand|srand|random_device|mt19937(?:_64)?|minstd_rand0?|default_random_engine)"
    r"(?![\w])"
    r"|(?<![\w:])(?:std::)?time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"
)

UNORDERED_DECL_RE = re.compile(
    r"unordered_(?:map|set|multimap|multiset)\s*<[^;{}]*?>[\s&*]*"
    r"(?:const\s+)?([A-Za-z_]\w*)\s*(?:[;={,)]|$)"
)
RANGE_FOR_RE = re.compile(r"\bfor\s*\(([^;]*?):([^)]*)\)")
ITER_LOOP_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\.\s*(?:begin|cbegin)\s*\(\s*\)")

FLOAT_DECL_RE = re.compile(
    r"\b(?:double|float)\b[\s&*]*(?:const\s+)?([A-Za-z_]\w*)\s*(?:[;={,)]|$)"
)
COMPOUND_ASSIGN_RE = re.compile(r"(?:^|[^\w.])([A-Za-z_]\w*)\s*[+-]=")

RAW_HEAP_RE = re.compile(
    r"\b(?:std::)?priority_queue\s*<"
    r"|\b(?:std::)?(?:push_heap|pop_heap|make_heap|sort_heap"
    r"|is_heap(?:_until)?)\s*\("
)

QUEUE_DECL_RE = re.compile(
    r"\b(?:std::)?(?:deque|queue|list)\s*<[^;{}]*?>[\s&*]*"
    r"(?:const\s+)?([A-Za-z_]\w*)\s*(?:[;={,)]|$)"
)
QUEUE_GROW_RE = re.compile(
    r"\b([A-Za-z_]\w*)\s*(?:\[[^\]]*\]\s*)?\.\s*"
    r"(?:push_back|push_front|emplace_back|emplace_front|push|emplace)\s*\("
)
# Capacity-verdict vocabulary: a growth call is considered guarded when one
# of these appears on the growth line or the three preceding code lines
# (comments are stripped, so prose claiming boundedness does not count).
QUEUE_GUARD_RE = re.compile(
    r"\b(?:would_overflow|capacity\w*|max_bytes\w*|max_msgs\w*"
    r"|admit\w*|try_submit)\b"
)
QUEUE_GUARD_WINDOW = 3

NEW_RE = re.compile(r"(?<!\boperator )\bnew\b\s*(?:\(|[A-Za-z_:<])")
DELETE_RE = re.compile(r"(?<!\boperator )(?<!=\s)(?<!= )\bdelete\b(?!\s*;)")

PRAGMA_ONCE_RE = re.compile(r"^\s*#\s*pragma\s+once\b")

RULES = {
    "raw-rand": "raw randomness primitive; use pmx::Rng from src/common/rng.hpp",
    "unordered-iter": "iteration over unordered container leaks bucket order; "
    "iterate a sorted/stable structure or allow() a commutative fold",
    "float-accum": "floating-point accumulation outside analytic-model "
    "whitelist; keep slot/latency accounting integral",
    "raw-new": "raw new/delete; use containers or smart pointers",
    "raw-heap": "raw priority queue / heap primitive outside the sanctioned "
    "cores; route rank ordering through PolicyEngine and event ordering "
    "through EventQueue",
    "unbounded-queue": "queue growth without a capacity check; gate it "
    "behind an explicit capacity verdict (VoqSet::would_overflow, the "
    "admission controller) or allow() a structurally bounded site",
    "include-guard": "header does not start with #pragma once",
}


def collect_names(pattern: re.Pattern, lines) -> set[str]:
    names: set[str] = set()
    for line in lines:
        for m in pattern.finditer(line):
            names.add(m.group(1))
    return names


def paired_header_lines(path: Path) -> list[str]:
    """For foo.cpp, also scan foo.hpp so member declarations are visible."""
    if path.suffix != ".cpp":
        return []
    header = path.with_suffix(".hpp")
    if not header.is_file():
        return []
    code, _ = strip_comments_and_strings(header.read_text(encoding="utf-8"))
    return code


def range_expr_name(expr: str) -> str:
    """Final identifier of a range expression: `obj.member_` -> `member_`."""
    m = re.search(r"([A-Za-z_]\w*)\s*$", expr.strip())
    return m.group(1) if m else ""


def unbounded_queue_in_scope(rel: str) -> bool:
    """The rule polices the queue-discipline layers. Explicit file arguments
    outside the standard roots (the fixture corpus under test) are always in
    scope so the rule itself stays testable."""
    posix = rel.replace("\\", "/")
    if posix.startswith(UNBOUNDED_QUEUE_ROOTS):
        return True
    return posix.split("/", 1)[0] not in DEFAULT_ROOTS


def lint_file(path: Path, rel: str, rules: set[str]) -> list[Finding]:
    text = path.read_text(encoding="utf-8")
    code_lines, comment_lines = strip_comments_and_strings(text)
    raw_lines = text.splitlines()
    findings: list[Finding] = []

    def emit(lineno: int, rule: str, message: str):
        comment = comment_lines[lineno - 1] if lineno - 1 < len(comment_lines) else ""
        if rule in allowed_rules(comment):
            return
        src = raw_lines[lineno - 1] if lineno - 1 < len(raw_lines) else ""
        findings.append(Finding(rel, lineno, rule, message, src))

    if "raw-rand" in rules and rel not in RAW_RAND_EXEMPT:
        for idx, line in enumerate(code_lines, 1):
            if RAW_RAND_RE.search(line):
                emit(idx, "raw-rand", RULES["raw-rand"])

    if "unordered-iter" in rules:
        scope = code_lines + paired_header_lines(path)
        unordered_names = collect_names(UNORDERED_DECL_RE, scope)
        for idx, line in enumerate(code_lines, 1):
            for m in RANGE_FOR_RE.finditer(line):
                if range_expr_name(m.group(2)) in unordered_names:
                    emit(idx, "unordered-iter", RULES["unordered-iter"])
            for m in ITER_LOOP_RE.finditer(line):
                if m.group(1) in unordered_names:
                    emit(idx, "unordered-iter", RULES["unordered-iter"])

    if "float-accum" in rules and rel not in FLOAT_ACCUM_WHITELIST:
        scope = code_lines + paired_header_lines(path)
        float_names = collect_names(FLOAT_DECL_RE, scope)
        for idx, line in enumerate(code_lines, 1):
            for m in COMPOUND_ASSIGN_RE.finditer(line):
                if m.group(1) in float_names:
                    emit(idx, "float-accum", RULES["float-accum"])

    if "unbounded-queue" in rules and unbounded_queue_in_scope(rel):
        scope = code_lines + paired_header_lines(path)
        queue_names = collect_names(QUEUE_DECL_RE, scope)
        for idx, line in enumerate(code_lines, 1):
            for m in QUEUE_GROW_RE.finditer(line):
                if m.group(1) not in queue_names:
                    continue
                lookback = code_lines[max(0, idx - 1 - QUEUE_GUARD_WINDOW):idx]
                if any(QUEUE_GUARD_RE.search(l) for l in lookback):
                    continue
                emit(idx, "unbounded-queue", RULES["unbounded-queue"])

    if "raw-new" in rules:
        for idx, line in enumerate(code_lines, 1):
            if NEW_RE.search(line) or DELETE_RE.search(line):
                emit(idx, "raw-new", RULES["raw-new"])

    if "raw-heap" in rules and rel not in RAW_HEAP_EXEMPT:
        for idx, line in enumerate(code_lines, 1):
            if RAW_HEAP_RE.search(line):
                emit(idx, "raw-heap", RULES["raw-heap"])

    if "include-guard" in rules and path.suffix == ".hpp":
        has_pragma = any(PRAGMA_ONCE_RE.match(line) for line in code_lines[:5])
        if not has_pragma:
            comment = comment_lines[0] if comment_lines else ""
            if "include-guard" not in allowed_rules(comment):
                findings.append(
                    Finding(rel, 1, "include-guard", RULES["include-guard"],
                            raw_lines[0] if raw_lines else "")
                )

    return findings


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="pmx-lint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint "
                             f"(default: {', '.join(DEFAULT_ROOTS)})")
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--rules",
                        help="comma-separated rule subset to run")
    parser.add_argument("--baseline", metavar="FILE",
                        help="JSON baseline; only new findings fail")
    parser.add_argument("--write-baseline", metavar="FILE",
                        help="write current findings as the new baseline")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-finding output")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, doc in RULES.items():
            print(f"{rule:15s} {doc}")
        return 0

    active = set(RULES)
    if args.rules:
        active = {r.strip() for r in args.rules.split(",")}
        unknown = active - set(RULES)
        if unknown:
            print(f"pmx-lint: unknown rule(s): {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2

    root = Path(args.root).resolve()
    files = discover(root, args.paths)
    if not files:
        print("pmx-lint: no source files found", file=sys.stderr)
        return 2

    findings: list[Finding] = []
    for f in files:
        try:
            rel = str(f.resolve().relative_to(root))
        except ValueError:
            rel = str(f)
        findings.extend(lint_file(f, rel, active))

    if args.write_baseline:
        write_baseline(Path(args.write_baseline), findings)
        print(f"pmx-lint: wrote baseline with {len(findings)} finding(s) "
              f"to {args.write_baseline}")
        return 0

    if args.baseline:
        findings = subtract_baseline(findings,
                                     load_baseline(Path(args.baseline)))

    if not args.quiet:
        for fi in findings:
            print(fi)
    label = "new finding(s)" if args.baseline else "finding(s)"
    print(f"pmx-lint: {len(findings)} {label} in {len(files)} file(s)",
          file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
