#!/usr/bin/env python3
"""Fixture-driven tests for pmx-lint.

Each rule has one good and one bad fixture under tests/lint_fixtures/; the
bad fixture must produce findings for exactly that rule, the good fixture
none. The allow_suppress fixture checks that `// pmx-lint: allow(<rule>)`
suppresses exactly one line and only for the named rule. Run directly or via
ctest (registered as pmx_lint_fixtures).
"""

import json
import sys
import tempfile
import unittest
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "lint_fixtures"

sys.path.insert(0, str(REPO_ROOT / "tools"))
import pmx_lint  # noqa: E402


def lint(name: str, rules=None):
    path = FIXTURES / name
    assert path.is_file(), f"missing fixture {path}"
    active = set(rules) if rules else set(pmx_lint.RULES)
    return pmx_lint.lint_file(path, name, active)


class RuleFixtures(unittest.TestCase):
    def assert_rule(self, bad: str, good: str, rule: str, bad_count: int):
        bad_findings = lint(bad)
        self.assertEqual(
            sorted({f.rule for f in bad_findings}), [rule],
            f"{bad} should only trip {rule}: {[str(f) for f in bad_findings]}")
        self.assertEqual(
            len(bad_findings), bad_count,
            f"{bad}: {[str(f) for f in bad_findings]}")
        good_findings = lint(good)
        self.assertEqual(
            good_findings, [],
            f"{good} should be clean: {[str(f) for f in good_findings]}")

    def test_raw_rand(self):
        # Four offending lines (line 9 holds two primitives but findings are
        # line-granular, matching the allow() escape hatch).
        self.assert_rule("raw_rand_bad.cpp", "raw_rand_good.cpp",
                         "raw-rand", 4)

    def test_unordered_iter(self):
        self.assert_rule("unordered_iter_bad.cpp", "unordered_iter_good.cpp",
                         "unordered-iter", 2)

    def test_float_accum(self):
        self.assert_rule("float_accum_bad.cpp", "float_accum_good.cpp",
                         "float-accum", 2)

    def test_raw_new(self):
        self.assert_rule("raw_new_bad.cpp", "raw_new_good.cpp", "raw-new", 4)

    def test_include_guard(self):
        self.assert_rule("include_guard_bad.hpp", "include_guard_good.hpp",
                         "include-guard", 1)

    def test_unbounded_queue(self):
        # Three offending growth calls: push_back, emplace_back through a
        # vector-of-deques index, and push_front. The good fixture shows the
        # two sanctioned shapes: a capacity verdict within the guard window
        # and an allow() comment stating a structural bound.
        self.assert_rule("unbounded_queue_bad.cpp", "unbounded_queue_good.cpp",
                         "unbounded-queue", 3)

    def test_raw_heap(self):
        # Three offending lines: the priority_queue declaration, make_heap,
        # and pop_heap.
        self.assert_rule("raw_heap_bad.cpp", "raw_heap_good.cpp",
                         "raw-heap", 3)


class AllowEscapeHatch(unittest.TestCase):
    def test_allow_suppresses_exactly_one_line(self):
        findings = lint("allow_suppress.cpp")
        # Three raw-new violations: line 6 is allowed, line 7 has no allow,
        # line 9's allow names the wrong rule. Exactly two must survive.
        self.assertEqual(len(findings), 2,
                         [str(f) for f in findings])
        self.assertEqual({f.rule for f in findings}, {"raw-new"})
        self.assertEqual(sorted(f.line for f in findings), [7, 9])


class FloatAccumWhitelist(unittest.TestCase):
    def test_whitelisted_analytic_files_are_exempt(self):
        stats = REPO_ROOT / "src" / "common" / "stats.cpp"
        findings = pmx_lint.lint_file(stats, "src/common/stats.cpp",
                                      {"float-accum"})
        self.assertEqual(findings, [])
        # The same content linted under a non-whitelisted name must trip.
        findings = pmx_lint.lint_file(stats, "src/common/stats_copy.cpp",
                                      {"float-accum"})
        self.assertGreater(len(findings), 0)


class RawRandExemption(unittest.TestCase):
    def test_rng_wrapper_is_exempt(self):
        rng = REPO_ROOT / "src" / "common" / "rng.cpp"
        self.assertEqual(
            pmx_lint.lint_file(rng, "src/common/rng.cpp", {"raw-rand"}), [])


class RawHeapExemption(unittest.TestCase):
    def test_sanctioned_heap_cores_are_exempt(self):
        # The policy engine and the event queue ARE the sanctioned heaps;
        # the same content under any other path must trip.
        for rel in ("src/predictor/policy_engine.cpp",
                    "src/sim/event_queue.hpp"):
            path = REPO_ROOT / rel
            self.assertEqual(
                pmx_lint.lint_file(path, rel, {"raw-heap"}), [], rel)
        engine = REPO_ROOT / "src" / "predictor" / "policy_engine.cpp"
        findings = pmx_lint.lint_file(
            engine, "src/predictor/engine_copy.cpp", {"raw-heap"})
        self.assertGreater(len(findings), 0)


class BaselineMode(unittest.TestCase):
    def test_baseline_masks_known_findings_only(self):
        bad = str(FIXTURES / "raw_new_bad.cpp")
        with tempfile.TemporaryDirectory() as tmp:
            baseline = Path(tmp) / "baseline.json"
            rc = pmx_lint.main([bad, "--root", str(REPO_ROOT), "--quiet",
                                "--write-baseline", str(baseline)])
            self.assertEqual(rc, 0)
            payload = json.loads(baseline.read_text())
            self.assertEqual(len(payload["findings"]), 4)
            # All findings known -> exit 0.
            rc = pmx_lint.main([bad, "--root", str(REPO_ROOT), "--quiet",
                                "--baseline", str(baseline)])
            self.assertEqual(rc, 0)
            # A new violation not in the baseline -> exit 1.
            extra = Path(tmp) / "extra.cpp"
            extra.write_text("int* fresh() { return new int; }\n")
            rc = pmx_lint.main([bad, str(extra), "--root", str(REPO_ROOT),
                                "--quiet", "--baseline", str(baseline)])
            self.assertEqual(rc, 1)


class RepoIsClean(unittest.TestCase):
    def test_default_roots_have_no_new_findings(self):
        # The committed baseline is empty: the tree owes no acknowledged
        # debt, and any finding at all fails this test.
        baseline = REPO_ROOT / "tools" / "pmx_lint_baseline.json"
        rc = pmx_lint.main(["--root", str(REPO_ROOT), "--quiet",
                            "--baseline", str(baseline)])
        self.assertEqual(rc, 0)


if __name__ == "__main__":
    unittest.main(verbosity=2)
