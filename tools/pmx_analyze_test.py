#!/usr/bin/env python3
"""Fixture-driven tests for pmx-analyze.

Per-file rules (ptr-order, wallclock, hot-path-alloc) follow the pmx-lint
convention: one bad and one good fixture each under tests/lint_fixtures/.
The include-graph rules (layer-violation, include-cycle) are exercised on
two miniature src trees, layer_tree/ (three violations and one cycle) and
layer_tree_good/ (clean, including the declared compiled->traffic edge).
The repo's own module graph is pinned by a golden DOT snapshot. Run
directly or via ctest (registered as pmx_analyze_fixtures).
"""

import json
import sys
import tempfile
import unittest
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "lint_fixtures"
GOLDEN_DOT = REPO_ROOT / "tests" / "golden" / "include_graph.dot"

sys.path.insert(0, str(REPO_ROOT / "tools"))
import pmx_analyze  # noqa: E402
import pmx_lexer  # noqa: E402


def analyze(name: str, rel: str | None = None):
    path = FIXTURES / name
    assert path.is_file(), f"missing fixture {path}"
    return pmx_analyze.analyze_file(path, rel or name,
                                    set(pmx_analyze.ANALYZE_FILE_RULES))


def graph_findings(tree: str):
    graph = pmx_analyze.IncludeGraph(FIXTURES / tree)
    findings = []
    pmx_analyze.layer_pass(graph, findings, f"{tree}/")
    pmx_analyze.cycle_pass(graph, findings, f"{tree}/")
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return graph, findings


class RuleFixtures(unittest.TestCase):
    def assert_rule(self, bad: str, good: str, rule: str, bad_count: int):
        bad_findings = analyze(bad)
        self.assertEqual(
            sorted({f.rule for f in bad_findings}), [rule],
            f"{bad} should only trip {rule}: {[str(f) for f in bad_findings]}")
        self.assertEqual(
            len(bad_findings), bad_count,
            f"{bad}: {[str(f) for f in bad_findings]}")
        good_findings = analyze(good)
        self.assertEqual(
            good_findings, [],
            f"{good} should be clean: {[str(f) for f in good_findings]}")

    def test_ptr_order(self):
        # Pointer-keyed unordered_map, pointer-keyed set, std::hash of a
        # pointer type, and a sort comparator ordering raw addresses.
        self.assert_rule("ptr_order_bad.cpp", "ptr_order_good.cpp",
                         "ptr-order", 4)

    def test_wallclock(self):
        # system_clock, clock_gettime, getenv, and bare time(&now).
        self.assert_rule("wallclock_bad.cpp", "wallclock_good.cpp",
                         "wallclock", 4)

    def test_hot_path_alloc(self):
        # Inside the one pmx-hot region: raw new, std::function
        # construction, string building, and un-reserved container growth.
        # The identical un-annotated cold() function is not flagged.
        self.assert_rule("hot_path_alloc_bad.cpp", "hot_path_alloc_good.cpp",
                         "hot-path-alloc", 4)


class MonotonicClockScope(unittest.TestCase):
    def test_steady_clock_banned_only_under_src(self):
        # The good wallclock fixture times a bench loop with steady_clock:
        # legal outside src/, but the same bytes under a library path must
        # trip the scoped monotonic-clock arm of the wallclock rule.
        findings = analyze("wallclock_good.cpp",
                           rel="src/sim/wallclock_good.cpp")
        self.assertEqual({f.rule for f in findings}, {"wallclock"})
        self.assertEqual(len(findings), 2, [str(f) for f in findings])


class AllowEscapeHatch(unittest.TestCase):
    def test_allow_comment_suppresses_analyzer_rules(self):
        # The single repo-wide suppression mechanism (// pmx-lint:
        # allow(<rule>)) applies to analyzer rules exactly as to lint rules.
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "env.cpp"
            path.write_text(
                '#include <cstdlib>\n'
                'const char* a() { return std::getenv("PMX_TRACE"); }'
                '  // pmx-lint: allow(wallclock)\n'
                'const char* b() { return std::getenv("PMX_SEED"); }'
                '  // pmx-lint: allow(ptr-order)\n')
            findings = pmx_analyze.analyze_file(path, "env.cpp",
                                                {"wallclock"})
            # Line 2 is allowed; line 3's allow names the wrong rule.
            self.assertEqual([f.line for f in findings], [3],
                             [str(f) for f in findings])


class LayerContractFixtures(unittest.TestCase):
    def test_bad_tree_reports_violations_and_cycle(self):
        _, findings = graph_findings("layer_tree")
        by_rule = {}
        for f in findings:
            by_rule.setdefault(f.rule, []).append(f)
        self.assertEqual(sorted(by_rule), ["include-cycle",
                                           "layer-violation"])
        # One up-rank include, one undeclared sibling edge, one undeclared
        # module (reported once at line 1, not per include).
        paths = sorted(f.path for f in by_rule["layer-violation"])
        self.assertEqual(paths, ["layer_tree/nic/uses_traffic.hpp",
                                 "layer_tree/plugins/ext.hpp",
                                 "layer_tree/sched/uses_core.hpp"])
        # The a <-> b cycle is one finding anchored at the first member.
        cycles = by_rule["include-cycle"]
        self.assertEqual(len(cycles), 1, [str(f) for f in cycles])
        self.assertEqual(cycles[0].path, "layer_tree/common/a.hpp")
        self.assertIn("common/a.hpp", cycles[0].message)
        self.assertIn("common/b.hpp", cycles[0].message)

    def test_good_tree_is_clean(self):
        graph, findings = graph_findings("layer_tree_good")
        self.assertEqual(findings, [], [str(f) for f in findings])
        # The declared intra-layer edge is present and allowed, proving the
        # clean result is not vacuous.
        self.assertIn(("compiled", "traffic"), graph.module_edges)


class ContractValidation(unittest.TestCase):
    def test_declared_contract_is_acyclic(self):
        pmx_analyze.validate_contract()  # must not raise

    def test_cyclic_intra_layer_edges_rejected(self):
        original = pmx_analyze.INTRA_LAYER_EDGES
        try:
            pmx_analyze.INTRA_LAYER_EDGES = frozenset(
                {("compiled", "traffic"), ("traffic", "compiled")})
            with self.assertRaises(ValueError):
                pmx_analyze.validate_contract()
        finally:
            pmx_analyze.INTRA_LAYER_EDGES = original


class GoldenIncludeGraph(unittest.TestCase):
    def test_module_graph_matches_golden_snapshot(self):
        graph = pmx_analyze.IncludeGraph(REPO_ROOT / "src")
        self.assertEqual(
            pmx_analyze.render_dot(graph), GOLDEN_DOT.read_text(),
            "module-level include graph changed; review the new edges and "
            "regenerate with: python3 tools/pmx_analyze.py --root . "
            "--rules layer-violation,include-cycle "
            "--dot tests/golden/include_graph.dot")

    def test_repo_architecture_is_clean(self):
        graph = pmx_analyze.IncludeGraph(REPO_ROOT / "src")
        findings = []
        pmx_analyze.layer_pass(graph, findings, "src/")
        pmx_analyze.cycle_pass(graph, findings, "src/")
        self.assertEqual(findings, [], [str(f) for f in findings])


class BaselineJustification(unittest.TestCase):
    def test_analyzer_baseline_entries_require_justification(self):
        with tempfile.TemporaryDirectory() as tmp:
            baseline = Path(tmp) / "baseline.json"
            entry = {"fingerprint": "0" * 16, "rule": "wallclock",
                     "file": "x.cpp", "line": 1, "justification": ""}
            baseline.write_text(json.dumps({"findings": [entry]}))
            with self.assertRaises(ValueError):
                pmx_lexer.load_baseline(baseline, require_justification=True)
            entry["justification"] = "host clock feeds a log banner only"
            baseline.write_text(json.dumps({"findings": [entry]}))
            loaded = pmx_lexer.load_baseline(baseline,
                                             require_justification=True)
            self.assertEqual(len(loaded), 1)


class CliGate(unittest.TestCase):
    def seeded_tree(self, tmp: Path) -> Path:
        (tmp / "src" / "common").mkdir(parents=True)
        (tmp / "src" / "sched").mkdir()
        (tmp / "src" / "core").mkdir()
        (tmp / "src" / "common" / "util.hpp").write_text(
            "#pragma once\n")
        (tmp / "src" / "core" / "top.hpp").write_text(
            '#pragma once\n#include "common/util.hpp"\n')
        (tmp / "src" / "sched" / "bad.hpp").write_text(
            '#pragma once\n#include "core/top.hpp"\n')
        return tmp

    def test_seeded_violation_fails_then_baselines(self):
        with tempfile.TemporaryDirectory() as tmpdir:
            root = self.seeded_tree(Path(tmpdir))
            argv = ["--root", str(root), "--quiet", "--no-lint"]
            self.assertEqual(pmx_analyze.main(argv), 1)
            baseline = root / "baseline.json"
            self.assertEqual(
                pmx_analyze.main(argv + ["--write-baseline", str(baseline)]),
                0)
            # Freshly written baselines carry empty justification fields and
            # are rejected until a human fills them in.
            self.assertEqual(
                pmx_analyze.main(argv + ["--baseline", str(baseline)]), 2)
            payload = json.loads(baseline.read_text())
            for entry in payload["findings"]:
                entry["justification"] = "grandfathered; tracked in ISSUE"
            baseline.write_text(json.dumps(payload))
            self.assertEqual(
                pmx_analyze.main(argv + ["--baseline", str(baseline)]), 0)


class RepoIsClean(unittest.TestCase):
    def test_full_tree_has_no_new_findings(self):
        # The committed analyzer baseline is empty: graph passes, taint
        # passes, and every pmx-lint rule must come back clean on the whole
        # repo (fixtures excluded by discovery).
        baseline = REPO_ROOT / "tools" / "pmx_analyze_baseline.json"
        rc = pmx_analyze.main(["--root", str(REPO_ROOT), "--quiet",
                               "--baseline", str(baseline)])
        self.assertEqual(rc, 0)


if __name__ == "__main__":
    unittest.main(verbosity=2)
